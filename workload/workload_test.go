package workload

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 1, 8, 1); err == nil {
		t.Error("zero records accepted")
	}
	if _, err := NewUniform(10, 0, 8, 1); err == nil {
		t.Error("zero updates accepted")
	}
	if _, err := NewUniform(10, 1, 0, 1); err == nil {
		t.Error("zero record size accepted")
	}
	if _, err := NewUniform(3, 4, 8, 1); err == nil {
		t.Error("more updates than records accepted")
	}
}

func TestUniformDistinctRecordsAndFreshValues(t *testing.T) {
	g, err := NewUniform(100, 5, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		spec := g.Next()
		if len(spec.Updates) != 5 {
			t.Fatalf("txn %d has %d updates", i, len(spec.Updates))
		}
		inTxn := map[uint64]bool{}
		for _, u := range spec.Updates {
			if u.Record >= 100 {
				t.Fatalf("record %d out of range", u.Record)
			}
			if inTxn[u.Record] {
				t.Fatalf("txn %d repeats record %d", i, u.Record)
			}
			inTxn[u.Record] = true
			v := binary.LittleEndian.Uint64(u.Value)
			if seen[v] {
				t.Fatalf("value %d repeated", v)
			}
			seen[v] = true
		}
	}
}

func TestZipfSkew(t *testing.T) {
	if _, err := NewZipf(100, 5, 16, 1.0, 1); err == nil {
		t.Error("skew ≤ 1 accepted")
	}
	g, err := NewZipf(1000, 1, 16, 1.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		counts[g.Next().Updates[0].Record]++
	}
	// Record 0 should be by far the hottest under Zipf.
	if counts[0] < n/10 {
		t.Errorf("record 0 hit %d of %d times; distribution not skewed", counts[0], n)
	}
	for rid := range counts {
		if rid >= 1000 {
			t.Errorf("record %d out of range", rid)
		}
	}
}

// mapTxn is an in-memory Txn for exercising Bank without the engine.
type mapTxn map[uint64][]byte

func (m mapTxn) Read(rid uint64) ([]byte, error) {
	v, ok := m[rid]
	if !ok {
		return nil, errors.New("missing record")
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

func (m mapTxn) Write(rid uint64, data []byte) error {
	v := make([]byte, len(data))
	copy(v, data)
	m[rid] = v
	return nil
}

func TestBankValidation(t *testing.T) {
	if _, err := NewBank(1, 8, 10, 1); err == nil {
		t.Error("single account accepted")
	}
	if _, err := NewBank(2, 4, 10, 1); err == nil {
		t.Error("record too small accepted")
	}
	if _, err := NewBank(2, 8, -1, 1); err == nil {
		t.Error("negative balance accepted")
	}
}

func TestBankTransfersPreserveTotal(t *testing.T) {
	b, err := NewBank(16, 32, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := mapTxn{}
	if err := b.InitTxn(m); err != nil {
		t.Fatal(err)
	}
	want := b.ExpectedTotal()
	if got, _ := b.Total(m.Read); got != want {
		t.Fatalf("initial total %d, want %d", got, want)
	}
	for i := 0; i < 500; i++ {
		from, to, amt := b.RandomTransfer()
		if from == to {
			t.Fatal("transfer to self")
		}
		if err := b.Transfer(m, from, to, amt); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.Total(m.Read)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("total after transfers = %d, want %d", got, want)
	}
	// No account overdrawn.
	for a := 0; a < b.NumAccounts(); a++ {
		rec, _ := m.Read(uint64(a))
		if Balance(rec) < 0 {
			t.Errorf("account %d overdrawn: %d", a, Balance(rec))
		}
	}
}

func TestBankNeverOverdraws(t *testing.T) {
	b, err := NewBank(2, 8, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := mapTxn{}
	if err := b.InitTxn(m); err != nil {
		t.Fatal(err)
	}
	// Ask for more than the balance: it moves only what exists.
	if err := b.Transfer(m, 0, 1, 1000); err != nil {
		t.Fatal(err)
	}
	r0, _ := m.Read(0)
	r1, _ := m.Read(1)
	if Balance(r0) != 0 || Balance(r1) != 20 {
		t.Errorf("balances = %d/%d, want 0/20", Balance(r0), Balance(r1))
	}
}

// TestBankTransferQuick property-tests the invariant over arbitrary
// transfer sequences.
func TestBankTransferQuick(t *testing.T) {
	b, err := NewBank(8, 8, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	m := mapTxn{}
	if err := b.InitTxn(m); err != nil {
		t.Fatal(err)
	}
	f := func(fromRaw, toRaw uint8, amt int16) bool {
		from := uint64(fromRaw) % 8
		to := uint64(toRaw) % 8
		if from == to {
			return true
		}
		a := int64(amt)
		if a < 0 {
			a = -a
		}
		if err := b.Transfer(m, from, to, a); err != nil {
			return false
		}
		total, err := b.Total(m.Read)
		return err == nil && total == b.ExpectedTotal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
