// Package workload generates transaction loads for driving the database
// engine and benchmarks. The Uniform generator reproduces the paper's load
// model (Section 2.5: identical transactions updating N_ru distinct
// records chosen uniformly); Zipf adds the skewed-access extension, and
// Bank provides an invariant-checked transfer workload for recovery
// demonstrations.
package workload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// Update is one record update: a record ID and its new image.
type Update struct {
	Record uint64
	Value  []byte
}

// TxnSpec describes one generated transaction.
type TxnSpec struct {
	Updates []Update
}

// Generator produces transaction specifications.
type Generator interface {
	// Next returns the next transaction. The returned spec (including the
	// value slices) is invalidated by the following call.
	Next() TxnSpec
}

// Uniform is the paper's load model: each transaction updates a fixed
// number of distinct records drawn uniformly from the database.
type Uniform struct {
	numRecords    int
	updatesPerTxn int
	recordBytes   int
	rng           *rand.Rand
	seq           uint64
	spec          TxnSpec
}

// NewUniform returns a uniform generator over numRecords records, writing
// updatesPerTxn distinct records of recordBytes each per transaction.
func NewUniform(numRecords, updatesPerTxn, recordBytes int, seed int64) (*Uniform, error) {
	if numRecords <= 0 || updatesPerTxn <= 0 || recordBytes <= 0 {
		return nil, fmt.Errorf("workload: invalid uniform spec %d/%d/%d", numRecords, updatesPerTxn, recordBytes)
	}
	if updatesPerTxn > numRecords {
		return nil, errors.New("workload: more distinct updates per transaction than records")
	}
	u := &Uniform{
		numRecords:    numRecords,
		updatesPerTxn: updatesPerTxn,
		recordBytes:   recordBytes,
		rng:           rand.New(rand.NewSource(seed)),
	}
	u.initSpec()
	return u, nil
}

func (u *Uniform) initSpec() {
	u.spec.Updates = make([]Update, u.updatesPerTxn)
	for i := range u.spec.Updates {
		u.spec.Updates[i].Value = make([]byte, u.recordBytes)
	}
}

// Next implements Generator: distinct uniform records with a fresh value
// stamped from a sequence number (so every write is distinguishable).
func (u *Uniform) Next() TxnSpec {
	chosen := make(map[uint64]bool, u.updatesPerTxn)
	for i := range u.spec.Updates {
		var rid uint64
		for {
			rid = uint64(u.rng.Intn(u.numRecords))
			if !chosen[rid] {
				break
			}
		}
		chosen[rid] = true
		u.seq++
		u.spec.Updates[i].Record = rid
		binary.LittleEndian.PutUint64(u.spec.Updates[i].Value, u.seq)
	}
	return u.spec
}

// Zipf generates skewed record updates (an extension beyond the paper's
// uniform assumption; skew concentrates dirtiness in few segments, which
// favours partial checkpoints).
type Zipf struct {
	updatesPerTxn int
	recordBytes   int
	rng           *rand.Rand
	zipf          *rand.Zipf
	seq           uint64
	spec          TxnSpec
}

// NewZipf returns a Zipf-skewed generator; s > 1 controls the skew (larger
// is more skewed).
func NewZipf(numRecords, updatesPerTxn, recordBytes int, s float64, seed int64) (*Zipf, error) {
	if numRecords <= 0 || updatesPerTxn <= 0 || recordBytes <= 0 {
		return nil, fmt.Errorf("workload: invalid zipf spec %d/%d/%d", numRecords, updatesPerTxn, recordBytes)
	}
	if s <= 1 {
		return nil, errors.New("workload: zipf skew must be > 1")
	}
	rng := rand.New(rand.NewSource(seed))
	z := &Zipf{
		updatesPerTxn: updatesPerTxn,
		recordBytes:   recordBytes,
		rng:           rng,
		zipf:          rand.NewZipf(rng, s, 1, uint64(numRecords-1)),
	}
	z.spec.Updates = make([]Update, updatesPerTxn)
	for i := range z.spec.Updates {
		z.spec.Updates[i].Value = make([]byte, recordBytes)
	}
	return z, nil
}

// Next implements Generator. Records need not be distinct (hot records
// repeat by design).
func (z *Zipf) Next() TxnSpec {
	for i := range z.spec.Updates {
		z.seq++
		z.spec.Updates[i].Record = z.zipf.Uint64()
		binary.LittleEndian.PutUint64(z.spec.Updates[i].Value, z.seq)
	}
	return z.spec
}

// Txn is the transactional surface the Bank helper needs; engine and
// public-API transactions satisfy it.
type Txn interface {
	Read(rid uint64) ([]byte, error)
	Write(rid uint64, data []byte) error
}

// Bank is a transfer workload over fixed-balance accounts. The sum of all
// balances is invariant under Transfer, which makes torn recovery
// immediately visible: if a crash could break transaction atomicity, the
// total would drift.
type Bank struct {
	numAccounts    int
	recordBytes    int
	initialBalance int64
	rng            *rand.Rand
}

// NewBank describes numAccounts accounts, each initialized (by InitTxn) to
// initialBalance, stored in records of recordBytes (≥ 8).
func NewBank(numAccounts int, recordBytes int, initialBalance int64, seed int64) (*Bank, error) {
	if numAccounts < 2 {
		return nil, errors.New("workload: bank needs at least 2 accounts")
	}
	if recordBytes < 8 {
		return nil, errors.New("workload: bank records must hold an int64 balance")
	}
	if initialBalance < 0 {
		return nil, errors.New("workload: negative initial balance")
	}
	return &Bank{
		numAccounts:    numAccounts,
		recordBytes:    recordBytes,
		initialBalance: initialBalance,
		rng:            rand.New(rand.NewSource(seed)),
	}, nil
}

// NumAccounts returns the account count.
func (b *Bank) NumAccounts() int { return b.numAccounts }

// ExpectedTotal returns the invariant total balance.
func (b *Bank) ExpectedTotal() int64 {
	return b.initialBalance * int64(b.numAccounts)
}

// InitTxn writes every account's initial balance inside tx.
func (b *Bank) InitTxn(tx Txn) error {
	buf := make([]byte, b.recordBytes)
	for a := 0; a < b.numAccounts; a++ {
		binary.LittleEndian.PutUint64(buf, uint64(b.initialBalance))
		if err := tx.Write(uint64(a), buf); err != nil {
			return err
		}
	}
	return nil
}

// Balance decodes an account record.
func Balance(rec []byte) int64 {
	return int64(binary.LittleEndian.Uint64(rec))
}

// RandomTransfer picks a random (from, to, amount) triple.
func (b *Bank) RandomTransfer() (from, to uint64, amount int64) {
	from = uint64(b.rng.Intn(b.numAccounts))
	to = uint64(b.rng.Intn(b.numAccounts - 1))
	if to >= from {
		to++
	}
	amount = 1 + int64(b.rng.Intn(100))
	return from, to, amount
}

// Transfer moves up to amount from one account to another inside tx,
// never overdrawing (an insufficient balance moves what is available).
func (b *Bank) Transfer(tx Txn, from, to uint64, amount int64) error {
	fr, err := tx.Read(from)
	if err != nil {
		return err
	}
	tr, err := tx.Read(to)
	if err != nil {
		return err
	}
	fb, tb := Balance(fr), Balance(tr)
	if amount > fb {
		amount = fb
	}
	fb -= amount
	tb += amount
	fbuf := make([]byte, b.recordBytes)
	tbuf := make([]byte, b.recordBytes)
	binary.LittleEndian.PutUint64(fbuf, uint64(fb))
	binary.LittleEndian.PutUint64(tbuf, uint64(tb))
	if err := tx.Write(from, fbuf); err != nil {
		return err
	}
	return tx.Write(to, tbuf)
}

// Total sums every account balance through read (a point-in-time check;
// run it when no transfers are in flight).
func (b *Bank) Total(read func(rid uint64) ([]byte, error)) (int64, error) {
	var total int64
	for a := 0; a < b.numAccounts; a++ {
		rec, err := read(uint64(a))
		if err != nil {
			return 0, err
		}
		total += Balance(rec)
	}
	return total, nil
}
