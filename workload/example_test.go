package workload_test

import (
	"fmt"

	"mmdb/workload"
)

// ExampleUniform generates the paper's load model: transactions of N_ru
// distinct uniform record updates.
func ExampleUniform() {
	gen, err := workload.NewUniform(1000, 5, 32, 42)
	if err != nil {
		panic(err)
	}
	txn := gen.Next()
	fmt.Println("updates per transaction:", len(txn.Updates))
	distinct := map[uint64]bool{}
	for _, u := range txn.Updates {
		distinct[u.Record] = true
	}
	fmt.Println("records distinct:", len(distinct) == len(txn.Updates))
	// Output:
	// updates per transaction: 5
	// records distinct: true
}

// ExampleBank shows the invariant-checked transfer workload.
func ExampleBank() {
	bank, err := workload.NewBank(8, 32, 100, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println("expected total:", bank.ExpectedTotal())
	from, to, amount := bank.RandomTransfer()
	fmt.Println("transfer distinct accounts:", from != to, "amount in range:", amount > 0 && amount <= 100)
	// Output:
	// expected total: 800
	// transfer distinct accounts: true amount in range: true
}
