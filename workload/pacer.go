package workload

import (
	"errors"
	"math/rand"
	"time"
)

// Pacer shapes a transaction stream to a target arrival rate, matching the
// paper's load model (transactions "arrive at the system at the rate of λ
// transactions per second"). Poisson mode draws exponential inter-arrival
// gaps; uniform mode spaces arrivals evenly.
type Pacer struct {
	ratePerSec float64
	poisson    bool
	rng        *rand.Rand
	next       time.Time
	now        func() time.Time
	sleep      func(time.Duration)
}

// NewPacer returns a pacer for ratePerSec arrivals per second. poisson
// selects exponential inter-arrival times (the paper's implied arrival
// process); otherwise arrivals are evenly spaced.
func NewPacer(ratePerSec float64, poisson bool, seed int64) (*Pacer, error) {
	if ratePerSec <= 0 {
		return nil, errors.New("workload: pacer rate must be positive")
	}
	return &Pacer{
		ratePerSec: ratePerSec,
		poisson:    poisson,
		rng:        rand.New(rand.NewSource(seed)),
		now:        time.Now,
		sleep:      time.Sleep,
	}, nil
}

// gap returns the next inter-arrival time.
func (p *Pacer) gap() time.Duration {
	if p.poisson {
		return time.Duration(p.rng.ExpFloat64() / p.ratePerSec * float64(time.Second))
	}
	return time.Duration(float64(time.Second) / p.ratePerSec)
}

// Wait blocks until the next arrival instant and returns it. A pacer that
// has fallen behind (the caller is slower than the target rate) returns
// immediately without accumulating unbounded debt: the schedule restarts
// from now once the backlog exceeds one second.
func (p *Pacer) Wait() time.Time {
	now := p.now()
	if p.next.IsZero() {
		p.next = now
	}
	if d := p.next.Sub(now); d > 0 {
		p.sleep(d)
	} else if -d > time.Second {
		// Too far behind: shed the backlog rather than bursting.
		p.next = now
	}
	at := p.next
	p.next = p.next.Add(p.gap())
	return at
}

// TxnClass describes one class in a multi-class load: a generator plus a
// relative weight.
type TxnClass struct {
	Weight float64
	Gen    Generator
}

// Mixed draws transactions from several classes with probability
// proportional to their weights — a relaxation of the paper's
// "all transactions are identical" assumption (Section 2.5).
type Mixed struct {
	classes []TxnClass
	total   float64
	rng     *rand.Rand
}

// NewMixed builds a mixed generator from at least one weighted class.
func NewMixed(seed int64, classes ...TxnClass) (*Mixed, error) {
	if len(classes) == 0 {
		return nil, errors.New("workload: mixed load needs at least one class")
	}
	total := 0.0
	for i, c := range classes {
		if c.Weight <= 0 {
			return nil, errors.New("workload: class weights must be positive")
		}
		if c.Gen == nil {
			return nil, errors.New("workload: nil generator in class")
		}
		total += c.Weight
		_ = i
	}
	return &Mixed{
		classes: classes,
		total:   total,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// Next implements Generator.
func (m *Mixed) Next() TxnSpec {
	x := m.rng.Float64() * m.total
	for _, c := range m.classes {
		x -= c.Weight
		if x < 0 {
			return c.Gen.Next()
		}
	}
	return m.classes[len(m.classes)-1].Gen.Next()
}
