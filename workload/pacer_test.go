package workload

import (
	"testing"
	"time"
)

// fakeClock drives a Pacer without real sleeping.
type fakeClock struct {
	t     time.Time
	slept time.Duration
}

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) sleep(d time.Duration) {
	c.slept += d
	c.t = c.t.Add(d)
}

func pacerWithClock(t *testing.T, rate float64, poisson bool) (*Pacer, *fakeClock) {
	t.Helper()
	p, err := NewPacer(rate, poisson, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := &fakeClock{t: time.Unix(1000, 0)}
	p.now = c.now
	p.sleep = c.sleep
	return p, c
}

func TestPacerValidation(t *testing.T) {
	if _, err := NewPacer(0, false, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPacer(-5, true, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestUniformPacerSpacing(t *testing.T) {
	p, c := pacerWithClock(t, 100, false) // 10ms apart
	var times []time.Time
	for i := 0; i < 5; i++ {
		times = append(times, p.Wait())
	}
	for i := 1; i < len(times); i++ {
		if gap := times[i].Sub(times[i-1]); gap != 10*time.Millisecond {
			t.Errorf("gap %d = %v, want 10ms", i, gap)
		}
	}
	if c.slept == 0 {
		t.Error("pacer never slept")
	}
}

func TestPoissonPacerMeanRate(t *testing.T) {
	p, _ := pacerWithClock(t, 1000, true)
	start := p.Wait()
	var last time.Time
	const n = 2000
	for i := 0; i < n; i++ {
		last = p.Wait()
	}
	mean := last.Sub(start).Seconds() / n
	if mean < 0.0008 || mean > 0.0012 {
		t.Errorf("mean inter-arrival %.5fs, want ≈0.001s", mean)
	}
}

func TestPacerShedsBacklog(t *testing.T) {
	p, c := pacerWithClock(t, 1000, false)
	p.Wait()
	// The caller stalls for 5 seconds: the pacer must not burst 5000
	// arrivals to catch up.
	c.t = c.t.Add(5 * time.Second)
	before := c.slept
	for i := 0; i < 10; i++ {
		p.Wait()
	}
	if c.slept-before > 50*time.Millisecond {
		t.Errorf("pacer slept %v while behind schedule", c.slept-before)
	}
	// After shedding, pacing resumes.
	p.Wait()
	if c.slept == before {
		t.Error("pacer never resumed pacing after shedding backlog")
	}
}

func TestMixedGenerator(t *testing.T) {
	small, err := NewUniform(100, 1, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewUniform(100, 8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMixed(7, TxnClass{Weight: 3, Gen: small}, TxnClass{Weight: 1, Gen: big})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[len(m.Next().Updates)]++
	}
	if counts[1]+counts[8] != n {
		t.Fatalf("unexpected transaction sizes: %v", counts)
	}
	frac := float64(counts[1]) / n
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("small-class fraction %.3f, want ≈0.75", frac)
	}
}

func TestMixedValidation(t *testing.T) {
	if _, err := NewMixed(1); err == nil {
		t.Error("empty class list accepted")
	}
	g, _ := NewUniform(10, 1, 8, 1)
	if _, err := NewMixed(1, TxnClass{Weight: 0, Gen: g}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewMixed(1, TxnClass{Weight: 1, Gen: nil}); err == nil {
		t.Error("nil generator accepted")
	}
}
