package mmdb

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestConfigValidate: Validate reports the same errors Open would,
// without touching the filesystem.
func TestConfigValidate(t *testing.T) {
	cfg := testConfig(t, FuzzyCopy)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	bad := cfg
	bad.Dir = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty Dir accepted")
	}
	bad = cfg
	bad.Algorithm = Algorithm(42)
	if err := bad.Validate(); err == nil {
		t.Error("unknown algorithm accepted")
	}
	bad = cfg
	bad.CheckpointParallelism = -3
	if err := bad.Validate(); err == nil {
		t.Error("negative CheckpointParallelism accepted")
	}
	bad = cfg
	bad.RecoveryParallelism = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative RecoveryParallelism accepted")
	}
	bad = cfg
	bad.Algorithm = FastFuzzy
	bad.StableLogTail = false
	if err := bad.Validate(); err == nil {
		t.Error("FASTFUZZY without a stable log tail accepted")
	}
}

// TestParseAlgorithmErrorListsNames: the public parser's error enumerates
// all eight valid names.
func TestParseAlgorithmErrorListsNames(t *testing.T) {
	_, err := ParseAlgorithm("SLOWCOPY")
	if err == nil {
		t.Fatal("unknown algorithm name parsed")
	}
	for _, a := range Algorithms {
		if !strings.Contains(err.Error(), a.String()) {
			t.Errorf("error %q does not list %v", err, a)
		}
	}
}

// TestDBExecContext: the context-aware transaction API refuses cancelled
// contexts and otherwise behaves like Exec.
func TestDBExecContext(t *testing.T) {
	db, err := Open(testConfig(t, FuzzyCopy))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = db.ExecContext(ctx, func(tx *Txn) error { return tx.Write(1, []byte("no")) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecContext(cancelled) = %v, want context.Canceled", err)
	}

	if err := db.ExecContext(context.Background(), func(tx *Txn) error {
		return tx.Write(1, []byte("yes"))
	}); err != nil {
		t.Fatal(err)
	}
	got, err := db.ReadRecord(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:3]) != "yes" {
		t.Errorf("read back %q", got[:3])
	}
}

// TestDBCheckpointContext: CheckpointContext is cancellable up front and
// completes normally with a live context.
func TestDBCheckpointContext(t *testing.T) {
	cfg := testConfig(t, FuzzyCopy)
	cfg.CheckpointParallelism = 4
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Exec(func(tx *Txn) error { return tx.Write(0, []byte("x")) }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.CheckpointContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CheckpointContext(cancelled) = %v, want context.Canceled", err)
	}
	res, err := db.CheckpointContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsFlushed == 0 {
		t.Error("checkpoint flushed nothing")
	}
}

// TestDBRecoverContext: recovery is cancellable up front and between
// phases, and a cancelled recovery leaves the directory recoverable —
// RecoverContext(Background) afterwards behaves exactly like Recover
// (which is defined as RecoverContext with context.Background()).
func TestDBRecoverContext(t *testing.T) {
	cfg := testConfig(t, FuzzyCopy)
	cfg.RecoveryParallelism = 4
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx *Txn) error { return tx.Write(9, []byte("pre")) }); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx *Txn) error { return tx.Write(11, []byte("post")) }); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RecoverContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RecoverContext(cancelled) = %v, want context.Canceled", err)
	}
	if _, _, err := OpenOrRecoverContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("OpenOrRecoverContext(cancelled) = %v, want context.Canceled", err)
	}

	// A cancelled recovery must not have consumed the directory.
	db2, rep, err := RecoverContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !rep.UsedCheckpoint || rep.Parallelism != 4 {
		t.Fatalf("recovery report = %+v", rep)
	}
	for rid, want := range map[uint64]string{9: "pre", 11: "post"} {
		got, err := db2.ReadRecord(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got[:len(want)]) != want {
			t.Errorf("record %d = %q, want %q", rid, got[:len(want)], want)
		}
	}
}

// TestOpenOrRecoverContextFreshDir: the open path is not cancellable, so
// a cancelled ctx still opens a fresh database.
func TestOpenOrRecoverContextFreshDir(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db, rep, err := OpenOrRecoverContext(ctx, testConfig(t, COUCopy))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if rep != nil {
		t.Errorf("fresh open produced a recovery report: %+v", rep)
	}
}
