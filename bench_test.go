// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Section 4), plus live-engine benchmarks. Figure benchmarks
// report the reproduced quantities as custom metrics (instr/txn,
// recovery-s, p-restart) so `go test -bench` regenerates the numbers
// recorded in EXPERIMENTS.md.
package mmdb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mmdb/analytic"
	"mmdb/sim"
	"mmdb/workload"
)

// BenchmarkTable2Defaults prices the paper's default parameter set
// (Tables 2a–2d) and reports the derived quantities the other figures
// build on.
func BenchmarkTable2Defaults(b *testing.B) {
	p := analytic.DefaultParams()
	for i := 0; i < b.N; i++ {
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.NumSegments(), "N_seg")
	b.ReportMetric(p.UpdateRate(), "updates/s")
	b.ReportMetric(p.SegmentIOTime()*1e3, "t_seg-ms")
	b.ReportMetric(p.FlushRate(), "flush/s")
}

// benchFigurePoint evaluates one (algorithm, options) point per iteration
// and reports the paper's two metrics.
func benchFigurePoint(b *testing.B, p analytic.Params, o analytic.Options) {
	b.Helper()
	var r *analytic.Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = analytic.Evaluate(p, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.OverheadPerTxn, "instr/txn")
	b.ReportMetric(r.RecoverySeconds, "recovery-s")
	b.ReportMetric(r.PRestart, "p-restart")
}

// BenchmarkFigure4a reproduces Figure 4a: per-algorithm processor overhead
// and recovery time at the defaults with checkpoints back-to-back.
func BenchmarkFigure4a(b *testing.B) {
	p := analytic.DefaultParams()
	for _, alg := range []analytic.Algorithm{
		analytic.FuzzyCopy, analytic.TwoColorFlush, analytic.TwoColorCopy,
		analytic.COUFlush, analytic.COUCopy,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			benchFigurePoint(b, p, analytic.Options{Algorithm: alg})
		})
	}
}

// BenchmarkFigure4b reproduces Figure 4b's trade-off curves: overhead and
// recovery for 2CCOPY/COUCOPY across interval multiples at 1× and 2× disk
// bandwidth.
func BenchmarkFigure4b(b *testing.B) {
	p := analytic.DefaultParams()
	for _, bw := range []int{1, 2} {
		pp := p
		pp.NDisks = p.NDisks * float64(bw)
		for _, alg := range []analytic.Algorithm{analytic.TwoColorCopy, analytic.COUCopy} {
			for _, factor := range []float64{1, 2, 4, 8} {
				o := analytic.Options{Algorithm: alg}
				base, err := analytic.Evaluate(pp, o)
				if err != nil {
					b.Fatal(err)
				}
				o.IntervalSeconds = base.MinDurationSeconds * factor
				b.Run(fmt.Sprintf("%s/%dx-disks/interval-%.0fx", alg, bw, factor), func(b *testing.B) {
					benchFigurePoint(b, pp, o)
				})
			}
		}
	}
}

// BenchmarkFigure4c reproduces Figure 4c: overhead per transaction across
// the load sweep for every algorithm.
func BenchmarkFigure4c(b *testing.B) {
	p := analytic.DefaultParams()
	for _, lam := range analytic.DefaultLoadSweep {
		pp := p
		pp.Lambda = lam
		for _, alg := range []analytic.Algorithm{
			analytic.FuzzyCopy, analytic.TwoColorFlush, analytic.TwoColorCopy,
			analytic.COUFlush, analytic.COUCopy,
		} {
			b.Run(fmt.Sprintf("lambda-%.0f/%s", lam, alg), func(b *testing.B) {
				benchFigurePoint(b, pp, analytic.Options{Algorithm: alg})
			})
		}
	}
}

// BenchmarkFigure4d reproduces Figure 4d: overhead across segment sizes,
// both checkpoints-ASAP (solid) and a fixed 300 s interval (dotted).
func BenchmarkFigure4d(b *testing.B) {
	p := analytic.DefaultParams()
	for _, seg := range analytic.DefaultSegmentSweep {
		pp := p
		pp.SSeg = seg
		for _, alg := range []analytic.Algorithm{
			analytic.TwoColorFlush, analytic.TwoColorCopy, analytic.COUCopy,
		} {
			for _, mode := range []struct {
				name     string
				interval float64
			}{{"asap", 0}, {"fixed300", analytic.Figure4dFixedInterval}} {
				b.Run(fmt.Sprintf("sseg-%.0f/%s/%s", seg, alg, mode.name), func(b *testing.B) {
					benchFigurePoint(b, pp, analytic.Options{Algorithm: alg, IntervalSeconds: mode.interval})
				})
			}
		}
	}
}

// BenchmarkFigure4e reproduces Figure 4e: overhead with a stable log tail,
// adding FASTFUZZY.
func BenchmarkFigure4e(b *testing.B) {
	p := analytic.DefaultParams()
	for _, alg := range analytic.Algorithms {
		b.Run(alg.String(), func(b *testing.B) {
			benchFigurePoint(b, p, analytic.Options{Algorithm: alg, StableTail: true})
		})
	}
}

// BenchmarkPRestart reproduces the Section 4 restart-probability
// computation at the default operating point, for both retry models.
func BenchmarkPRestart(b *testing.B) {
	p := analytic.DefaultParams()
	for _, retry := range []analytic.RetryModel{analytic.IndependentRetries, analytic.CorrelatedRetries} {
		b.Run(retry.String(), func(b *testing.B) {
			benchFigurePoint(b, p, analytic.Options{Algorithm: analytic.TwoColorCopy, Retry: retry})
		})
	}
}

// BenchmarkSimFigure4a cross-checks Figure 4a on the discrete-event
// simulator (scaled database so each iteration is quick).
func BenchmarkSimFigure4a(b *testing.B) {
	p := analytic.DefaultParams()
	p.SDB = 4096 * 512
	p.SSeg = 4096
	p.Lambda = 500
	for _, alg := range []analytic.Algorithm{
		analytic.FuzzyCopy, analytic.TwoColorCopy, analytic.COUCopy,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			var r *sim.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = sim.Run(sim.Config{
					Params:  p,
					Options: analytic.Options{Algorithm: alg},
					Seed:    int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.OverheadPerTxn, "instr/txn")
			b.ReportMetric(r.RecoverySeconds, "recovery-s")
			b.ReportMetric(r.PRestart, "p-restart")
		})
	}
}

// BenchmarkSimSkew measures the skewed-access extension: segments written
// per checkpoint under uniform vs Zipf load.
func BenchmarkSimSkew(b *testing.B) {
	p := analytic.DefaultParams()
	p.SDB = 4096 * 512
	p.SSeg = 4096
	p.Lambda = 200
	for _, skew := range []float64{0, 1.2, 1.5} {
		skew := skew
		name := "uniform"
		if skew > 0 {
			name = fmt.Sprintf("zipf-%.1f", skew)
		}
		b.Run(name, func(b *testing.B) {
			var r *sim.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = sim.Run(sim.Config{
					Params:  p,
					Options: analytic.Options{Algorithm: analytic.FuzzyCopy},
					Seed:    int64(i + 1),
					Skew:    skew,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.SegmentsPerCheckpoint, "segs/ckpt")
			b.ReportMetric(r.MeanDurationSeconds, "duration-s")
		})
	}
}

// --- Live-engine benchmarks -------------------------------------------

func benchConfig(b *testing.B, alg Algorithm) Config {
	b.Helper()
	cfg := Config{
		Dir:         b.TempDir(),
		NumRecords:  1 << 14,
		RecordBytes: 128,
		Algorithm:   alg,
	}
	if alg == FastFuzzy {
		cfg.StableLogTail = true
	}
	return cfg
}

// BenchmarkTxnCommit measures the end-to-end commit path of the live
// engine (async group commit, no checkpointer running).
func BenchmarkTxnCommit(b *testing.B) {
	cfg := benchConfig(b, FuzzyCopy)
	cfg.GroupCommitInterval = time.Millisecond
	db, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	gen, err := workload.NewUniform(cfg.NumRecords, 5, cfg.RecordBytes, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := gen.Next()
		err := db.Exec(func(tx *Txn) error {
			for _, u := range spec.Updates {
				if err := tx.Write(u.Record, u.Value); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogicalVsPhysicalCommit compares the live engine's commit path
// with after-image logging vs operation logging, reporting log volume per
// transaction (the logical-logging advantage of Section 3.2).
func BenchmarkLogicalVsPhysicalCommit(b *testing.B) {
	for _, mode := range []string{"physical", "logical"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			cfg := benchConfig(b, COUCopy)
			cfg.GroupCommitInterval = time.Millisecond
			db, err := Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			img := make([]byte, cfg.RecordBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rid := uint64(i % cfg.NumRecords)
				err := db.Exec(func(tx *Txn) error {
					if mode == "logical" {
						return tx.ApplyOp(rid, OpAdd64, Add64Operand(1))
					}
					return tx.Write(rid, img)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Close flushes the tail so LogBytes is complete.
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}
			st := db.Stats()
			if st.TxnsCommitted > 0 {
				// The logical-logging advantage: bytes of log per txn.
				b.ReportMetric(float64(st.LogBytes)/float64(st.TxnsCommitted), "log-B/txn")
			}
		})
	}
}

// BenchmarkEngineCheckpointers measures a full checkpoint of a uniformly
// dirtied database under each algorithm on the live engine, reporting the
// modeled instruction cost alongside wall time.
func BenchmarkEngineCheckpointers(b *testing.B) {
	for _, alg := range Algorithms {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			cfg := benchConfig(b, alg)
			db, err := Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			gen, err := workload.NewUniform(cfg.NumRecords, 5, cfg.RecordBytes, 2)
			if err != nil {
				b.Fatal(err)
			}
			dirty := func() {
				for t := 0; t < 200; t++ {
					spec := gen.Next()
					err := db.Exec(func(tx *Txn) error {
						for _, u := range spec.Updates {
							if err := tx.Write(u.Record, u.Value); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			dirty()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dirty()
				b.StartTimer()
				if _, err := db.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := db.Stats()
			if st.Checkpoints > 0 {
				b.ReportMetric(float64(st.SegmentsFlushed)/float64(st.Checkpoints), "segs/ckpt")
			}
			if perTxn, _, _, err := analytic.MeasuredOverhead(analytic.DefaultParams(), db.MeasuredCounts()); err == nil {
				b.ReportMetric(perTxn, "instr/txn")
			}
		})
	}
}

// BenchmarkCompactionAblation measures the log-size effect of the
// after-checkpoint head compaction: the same workload with and without
// it, reporting the final on-disk log size.
func BenchmarkCompactionAblation(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		disabled := disabled
		name := "compaction-on"
		if disabled {
			name = "compaction-off"
		}
		b.Run(name, func(b *testing.B) {
			var logMB float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(b, FuzzyCopy)
				cfg.DisableLogCompaction = disabled
				db, err := Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				gen, err := workload.NewUniform(cfg.NumRecords, 5, cfg.RecordBytes, 9)
				if err != nil {
					b.Fatal(err)
				}
				for round := 0; round < 4; round++ {
					for t := 0; t < 100; t++ {
						spec := gen.Next()
						err := db.Exec(func(tx *Txn) error {
							for _, u := range spec.Updates {
								if err := tx.Write(u.Record, u.Value); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							b.Fatal(err)
						}
					}
					if _, err := db.Checkpoint(); err != nil {
						b.Fatal(err)
					}
				}
				dir := db.Dir()
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				fi, err := os.Stat(filepath.Join(dir, "redo.log"))
				if err != nil {
					b.Fatal(err)
				}
				logMB = float64(fi.Size()) / 1e6
			}
			b.ReportMetric(logMB, "log-MB")
		})
	}
}

// BenchmarkRecovery measures crash recovery of the live engine: load the
// backup copy and replay the log tail.
func BenchmarkRecovery(b *testing.B) {
	cfg := benchConfig(b, COUCopy)
	cfg.SyncCommit = true
	db, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewUniform(cfg.NumRecords, 5, cfg.RecordBytes, 3)
	if err != nil {
		b.Fatal(err)
	}
	for t := 0; t < 500; t++ {
		spec := gen.Next()
		err := db.Exec(func(tx *Txn) error {
			for _, u := range spec.Updates {
				if err := tx.Write(u.Record, u.Value); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for t := 0; t < 500; t++ { // log tail to replay
		spec := gen.Next()
		err := db.Exec(func(tx *Txn) error {
			for _, u := range spec.Updates {
				if err := tx.Write(u.Record, u.Value); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Crash(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep *RecoveryReport
	for i := 0; i < b.N; i++ {
		db2, r, err := Recover(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep = r
		b.StopTimer()
		if err := db2.Crash(); err != nil { // leave the files for the next iteration
			b.Fatal(err)
		}
		b.StartTimer()
	}
	if rep != nil {
		b.ReportMetric(float64(rep.UpdatesApplied), "updates-replayed")
		b.ReportMetric(float64(rep.SegmentsLoaded), "segs-loaded")
	}
}
