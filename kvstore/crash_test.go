package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mmdb"
	"mmdb/internal/faultfs"
)

// TestCrashRecoverEndToEnd drives the kv layer against the fault
// injector: a seeded Put/Delete workload with checkpoints crashes at an
// injected point, then the store is reopened and every acknowledged
// write must be visible (and every failed one absent). This is the
// user-facing analogue of the engine-level crash matrix.
func TestCrashRecoverEndToEnd(t *testing.T) {
	// Per-point trigger hits: log writes accumulate per transaction,
	// backup writes only once per dirty segment per checkpoint.
	points := map[faultfs.Point]uint64{"wal.write": 12, "backup.write": 4, "backup.meta.rename": 12}
	if testing.Short() {
		points = map[faultfs.Point]uint64{"wal.write": 12}
	}
	for point, atHit := range points {
		point, atHit := point, atHit
		t.Run(string(point), func(t *testing.T) {
			t.Parallel()
			const seed = 31
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			inj := faultfs.New(seed)
			inj.Arm(faultfs.Rule{Point: point, Kind: faultfs.Crash, AtHit: atHit})
			cfg := mmdb.Config{
				Dir: dir, NumRecords: 128, RecordBytes: 128,
				Algorithm: mmdb.COUCopy, SyncCommit: true,
				FS: inj.FS(nil),
			}
			kv, _, err := Open(cfg)
			if err != nil {
				t.Fatalf("seed %d: open: %v", seed, err)
			}

			// oracle maps key -> value for every acknowledged Put; deleted
			// keys are removed on acknowledged Delete.
			oracle := map[string]string{}
			for i := 0; i < 400 && !inj.Halted(); i++ {
				key := fmt.Sprintf("key-%03d", rng.Intn(60))
				if rng.Intn(5) == 0 {
					ok, derr := kv.Delete(bg, []byte(key))
					if derr == nil && ok {
						delete(oracle, key)
					}
					continue
				}
				val := fmt.Sprintf("val-%d-%d", i, rng.Int63())
				if perr := kv.Put(bg, []byte(key), []byte(val)); perr == nil {
					oracle[key] = val
				} else if !errors.Is(perr, faultfs.ErrInjectedCrash) &&
					!errors.Is(perr, mmdb.ErrStopped) && !errors.Is(perr, mmdb.ErrCommitInDoubt) {
					t.Fatalf("seed %d: Put %s: %v", seed, key, perr)
				}
				if i%37 == 0 {
					_, _ = kv.Checkpoint() // tolerated: may hit the fault
				}
			}
			if !inj.Halted() {
				t.Fatalf("seed %d: fault at %s never fired", seed, point)
			}
			_ = kv.Crash()

			rcfg := cfg
			rcfg.FS = nil
			rkv, rep, err := Open(rcfg)
			if err != nil {
				t.Fatalf("seed %d: recovery: %v", seed, err)
			}
			defer rkv.Close()
			if rep == nil {
				t.Fatalf("seed %d: reopen after crash did not recover", seed)
			}
			for key, want := range oracle {
				got, found, gerr := rkv.Get(bg, []byte(key))
				if gerr != nil {
					t.Fatalf("seed %d: Get %s: %v", seed, key, gerr)
				}
				if !found || string(got) != want {
					t.Fatalf("seed %d: %s = %q (found=%v), want %q", seed, key, got, found, want)
				}
			}
			// No resurrected keys: everything visible must be in the oracle
			// or the single possible in-doubt write.
			extra := 0
			if err := rkv.Scan(nil, func(key, val []byte) bool {
				if _, ok := oracle[string(key)]; !ok {
					extra++
				}
				return true
			}); err != nil {
				t.Fatalf("seed %d: scan: %v", seed, err)
			}
			if extra > 1 {
				t.Fatalf("seed %d: %d unacknowledged keys resurrected", seed, extra)
			}
		})
	}
}
