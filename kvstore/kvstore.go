// Package kvstore is an ordered key-value store built on the mmdb engine:
// the adoption layer a downstream user reaches for when records addressed
// by integer ID are too raw.
//
// Keys map to fixed-size mmdb records through a T-tree index (package
// index). Following main-memory database practice ([Lehm87a], cited by
// the paper), the index is volatile: it is never checkpointed or logged,
// and is rebuilt from the recovered primary data when the store opens.
// Every Put and Delete is a single mmdb transaction, so each operation is
// atomic across crashes, and the store inherits the engine's checkpoint
// algorithm, durability mode, and recovery machinery unchanged.
package kvstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mmdb"
	"mmdb/index"
	"mmdb/internal/obs"
)

// getSampleEvery is the Get-latency sampling period (must be a power of
// two): mmdb_kvstore_get_seconds holds every getSampleEvery-th call.
const getSampleEvery = 16

// Record layout within one mmdb record:
//
//	[1 flag][2 key length][2 value length][key][value]
//
// flag 0 = free, 1 = used. A zeroed record is a free slot, which is what
// deletion writes — so the initial (all-zero) database is all free slots.
const (
	flagFree = 0
	flagUsed = 1
	hdrBytes = 5
)

// Errors returned by the store.
var (
	// ErrFull reports that every record slot is occupied.
	ErrFull = errors.New("kvstore: store is full")
	// ErrKeyTooLarge and ErrValueTooLarge report an entry that cannot fit
	// in one record.
	ErrKeyTooLarge   = errors.New("kvstore: key too large")
	ErrValueTooLarge = errors.New("kvstore: key+value too large for the record size")
	// ErrEmptyKey rejects zero-length keys.
	ErrEmptyKey = errors.New("kvstore: empty key")
)

// Local is the in-process implementation of Store: an ordered,
// crash-recoverable key-value store embedded in the calling process.
// The network client (package client) implements the same interface
// over TCP, so callers written against Store run on either.
//
// Beyond the Store interface, Local offers ordered Scans, direct
// engine access (DB), and crash simulation — capabilities that don't
// survive a network hop.
type Local struct {
	db *mmdb.DB

	// Operation latency histograms, registered on the database's metrics
	// registry at Open and immutable afterwards (lock-free to observe).
	getH, putH, delH, scanH, batchH *obs.Histogram
	// getTick counts Gets for clock sampling. Get is the one
	// sub-microsecond operation, where two clock reads would dominate on
	// hosts with a slow clock source, so only every getSampleEvery-th
	// call is timed; the other ops include a log commit (or a full
	// traversal) that dwarfs the clock reads and are timed exactly.
	getTick atomic.Uint64

	// getBuf is a single-slot pool of one full-size record buffer for the
	// Get fast path: a reader swaps it out, reads into it, and parks it
	// back. Concurrent Gets that miss the slot allocate a replacement, so
	// correctness never waits on the pool.
	getBuf atomic.Pointer[[]byte]

	mu sync.RWMutex // lockorder:level=5
	// idx is the volatile key → record-ID index. guarded_by:mu
	idx *index.TTree
	// free holds free record slots (LIFO). guarded_by:mu
	free []uint64
	// putBuf is the reusable record-encoding buffer for Put, which runs
	// under the exclusive lock. guarded_by:mu
	putBuf []byte
}

// MaxKeyBytes is the largest supported key.
const MaxKeyBytes = 1 << 16 / 2 // bounded well below the u16 length field

// Open opens (or recovers) the key-value store described by cfg and
// rebuilds its index from the primary data. The recovery report is nil
// for a fresh store.
func Open(cfg mmdb.Config) (*Local, *mmdb.RecoveryReport, error) {
	db, rep, err := mmdb.OpenOrRecover(cfg)
	if err != nil {
		return nil, nil, err
	}
	s := &Local{db: db}
	s.putBuf = make([]byte, db.RecordBytes()) //nolint:lockcheck // s is not shared until Open returns
	rb := make([]byte, db.RecordBytes())
	s.getBuf.Store(&rb)
	reg := db.MetricsRegistry()
	s.getH = reg.Histogram("mmdb_kvstore_get_seconds", "Get latency (sampled: every 16th call).", obs.ScaleNanosToSeconds)
	s.putH = reg.Histogram("mmdb_kvstore_put_seconds", "Put latency (including the commit).", obs.ScaleNanosToSeconds)
	s.delH = reg.Histogram("mmdb_kvstore_delete_seconds", "Delete latency (including the commit).", obs.ScaleNanosToSeconds)
	s.scanH = reg.Histogram("mmdb_kvstore_scan_seconds", "Scan/ScanReverse latency for the whole traversal.", obs.ScaleNanosToSeconds)
	s.batchH = reg.Histogram("mmdb_kvstore_batch_seconds", "Update (batch) latency (including the commit).", obs.ScaleNanosToSeconds)
	s.mu.Lock()
	err = s.rebuild()
	s.mu.Unlock()
	if err != nil {
		return nil, nil, errors.Join(err, db.Close())
	}
	return s, rep, nil
}

// rebuild scans every record and reconstructs the index and free list —
// the post-recovery index build of a main-memory database.
// lockcheck:held s.mu
func (s *Local) rebuild() error {
	s.idx = index.New(0)
	s.free = s.free[:0]
	n := s.db.NumRecords()
	// Free slots are pushed in descending ID order so allocation hands
	// out ascending IDs, keeping early segments hot.
	for rid := n - 1; rid >= 0; rid-- {
		rec, err := s.db.ReadRecord(uint64(rid))
		if err != nil {
			return err
		}
		key, _, used, err := decode(rec)
		if err != nil {
			return fmt.Errorf("kvstore: rebuild: record %d: %w", rid, err)
		}
		if !used {
			s.free = append(s.free, uint64(rid))
			continue
		}
		s.idx.Insert(key, uint64(rid))
	}
	return nil
}

func encode(dst []byte, key, val []byte) {
	for i := range dst {
		dst[i] = 0
	}
	dst[0] = flagUsed
	binary.LittleEndian.PutUint16(dst[1:], uint16(len(key)))
	binary.LittleEndian.PutUint16(dst[3:], uint16(len(val)))
	copy(dst[hdrBytes:], key)
	copy(dst[hdrBytes+len(key):], val)
}

func decode(rec []byte) (key, val []byte, used bool, err error) {
	if len(rec) < hdrBytes {
		return nil, nil, false, errors.New("record too small")
	}
	switch rec[0] {
	case flagFree:
		return nil, nil, false, nil
	case flagUsed:
	default:
		return nil, nil, false, fmt.Errorf("bad flag %d", rec[0])
	}
	kl := int(binary.LittleEndian.Uint16(rec[1:]))
	vl := int(binary.LittleEndian.Uint16(rec[3:]))
	if hdrBytes+kl+vl > len(rec) || kl == 0 {
		return nil, nil, false, fmt.Errorf("bad lengths %d/%d", kl, vl)
	}
	return rec[hdrBytes : hdrBytes+kl], rec[hdrBytes+kl : hdrBytes+kl+vl], true, nil
}

// capacity checks that key/val fit one record.
func (s *Local) capacityCheck(key, val []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > MaxKeyBytes {
		return ErrKeyTooLarge
	}
	if hdrBytes+len(key)+len(val) > s.db.RecordBytes() {
		return ErrValueTooLarge
	}
	return nil
}

// Put stores val under key (inserting or replacing) as one atomic,
// durable transaction. The record image is encoded into the store's
// reusable putBuf and committed through the engine's closure-free
// ExecWrite, so a Put that replaces an existing key allocates nothing.
//
// ctx is honored at entry only: the commit itself is a single
// already-bounded engine transaction, and checking between lock and
// commit would tear the operation's atomicity guarantees for nothing.
//
// perf:hotpath(write path: encode into the shared buffer, one transaction per Put)
func (s *Local) Put(ctx context.Context, key, val []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.capacityCheck(key, val); err != nil {
		return err
	}
	defer s.putH.ObserveSince(time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	rid, exists := s.idx.Get(key)
	if !exists {
		if len(s.free) == 0 {
			return ErrFull
		}
		rid = s.free[len(s.free)-1]
	}
	encode(s.putBuf, key, val)
	if err := s.db.ExecWrite(rid, s.putBuf); err != nil {
		return err
	}
	if !exists {
		s.free = s.free[:len(s.free)-1]
		s.idx.Insert(key, rid)
	}
	return nil
}

// Get returns a copy of the value stored under key.
//
// The body is deliberately defer-free: the latency sample is conditional
// (every getSampleEvery-th call), and a conditional defer is heap-
// allocated by the compiler, which would put an allocation on the read
// fast path for nothing. The one allocation left is the returned copy,
// which the API contract requires.
//
// perf:hotpath(read fast path: index probe + one record copy)
func (s *Local) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	var began time.Time
	sampled := s.getTick.Add(1)&(getSampleEvery-1) == 0
	if sampled {
		began = time.Now()
	}
	s.mu.RLock()
	rid, ok := s.idx.Get(key)
	if !ok {
		s.mu.RUnlock()
		if sampled {
			s.getH.ObserveSince(began)
		}
		return nil, false, nil
	}
	// Swap the shared read buffer out of its slot; a concurrent Get that
	// finds the slot empty allocates a replacement, which is parked on the
	// way out and serves future readers.
	bp := s.getBuf.Swap(nil)
	if bp == nil {
		rb := make([]byte, s.db.RecordBytes()) // alloc:allowed(pool miss under concurrent Gets; the buffer is parked for reuse on the way out)
		bp = &rb
	}
	rec := *bp
	err := s.db.ReadRecordInto(rid, rec)
	if err != nil {
		s.getBuf.Store(bp)
		s.mu.RUnlock()
		if sampled {
			s.getH.ObserveSince(began)
		}
		return nil, false, err
	}
	_, val, used, derr := decode(rec)
	if derr != nil || !used {
		s.getBuf.Store(bp)
		s.mu.RUnlock()
		return nil, false, fmt.Errorf("kvstore: index points at invalid record %d: %v", rid, derr)
	}
	out := make([]byte, len(val)) // alloc:allowed(the returned value copy is caller-owned by API contract)
	copy(out, val)
	s.getBuf.Store(bp)
	s.mu.RUnlock()
	if sampled {
		s.getH.ObserveSince(began)
	}
	return out, true, nil
}

// Delete removes key, reporting whether it was present. The slot is
// zeroed in one atomic transaction (through the closure-free ExecWrite;
// a zero record is a free slot) and returned to the free list.
func (s *Local) Delete(ctx context.Context, key []byte) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if len(key) == 0 {
		return false, ErrEmptyKey
	}
	defer s.delH.ObserveSince(time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	rid, ok := s.idx.Get(key)
	if !ok {
		return false, nil
	}
	if err := s.db.ExecWrite(rid, nil); err != nil {
		return false, err
	}
	s.idx.Delete(key)
	s.free = append(s.free, rid)
	return true, nil
}

// Scan calls fn for each entry with key >= from (all entries when from is
// nil) in ascending key order until fn returns false. The key and value
// slices are only valid during the call. Mutating the store from fn
// deadlocks.
func (s *Local) Scan(from []byte, fn func(key, val []byte) bool) error {
	defer s.scanH.ObserveSince(time.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	var scanErr error
	s.idx.Ascend(from, func(key []byte, rid uint64) bool {
		rec, err := s.db.ReadRecord(rid)
		if err != nil {
			scanErr = err
			return false
		}
		k, v, used, err := decode(rec)
		if err != nil || !used {
			scanErr = fmt.Errorf("kvstore: scan: invalid record %d: %v", rid, err)
			return false
		}
		return fn(k, v)
	})
	return scanErr
}

// ScanReverse calls fn for each entry with key <= from (all entries when
// from is nil) in descending key order until fn returns false.
func (s *Local) ScanReverse(from []byte, fn func(key, val []byte) bool) error {
	defer s.scanH.ObserveSince(time.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	var scanErr error
	s.idx.Descend(from, func(key []byte, rid uint64) bool {
		rec, err := s.db.ReadRecord(rid)
		if err != nil {
			scanErr = err
			return false
		}
		k, v, used, err := decode(rec)
		if err != nil || !used {
			scanErr = fmt.Errorf("kvstore: scan: invalid record %d: %v", rid, err)
			return false
		}
		return fn(k, v)
	})
	return scanErr
}

// Len returns the number of stored entries.
func (s *Local) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.Len()
}

// Free returns the number of free record slots.
func (s *Local) Free() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.free)
}

// Checkpoint forces one checkpoint of the underlying database.
func (s *Local) Checkpoint() (*mmdb.CheckpointResult, error) { return s.db.Checkpoint() }

// EngineStats exposes the underlying engine counters (Local only; the
// interface-level Stats carries them inside a ShardStats).
func (s *Local) EngineStats() mmdb.Stats { return s.db.Stats() }

// Stats reports the store's shape as a single-shard StoreStats.
func (s *Local) Stats(ctx context.Context) (StoreStats, error) {
	if err := ctx.Err(); err != nil {
		return StoreStats{}, err
	}
	return StoreStats{Shards: []ShardStats{{
		Shard:  0,
		Len:    s.Len(),
		Free:   s.Free(),
		Engine: s.db.Stats(),
	}}}, nil
}

// DB exposes the underlying database (e.g., for raw record access or the
// checkpoint loop controls).
func (s *Local) DB() *mmdb.DB { return s.db }

// Close closes the underlying database.
func (s *Local) Close() error { return s.db.Close() }

// Crash simulates a system failure of the underlying database (the index
// is volatile and simply discarded); reopen with Open.
func (s *Local) Crash() error { return s.db.Crash() }
