package kvstore

import (
	"testing"
)

// TestPutAllocationFree pins the Put overwrite path at zero heap
// allocations per operation: the record encodes into the store's shared
// putBuf and commits through the engine's closure-free ExecWrite.
func TestPutAllocationFree(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()

	key, val := []byte("alloc-key"), []byte("alloc-value")
	for i := 0; i < 64; i++ {
		if err := s.Put(bg, key, val); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(512, func() {
		if err := s.Put(bg, key, val); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Put (overwrite): %v allocs/op, want 0", allocs)
	}
}

// TestGetAllocationBudget pins Get at exactly one allocation per call:
// the caller-owned value copy required by the API contract. The record
// read itself goes through the parked read buffer and ReadRecordInto.
func TestGetAllocationBudget(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()

	key, val := []byte("alloc-key"), []byte("alloc-value")
	if err := s.Put(bg, key, val); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, _, err := s.Get(bg, key); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(512, func() {
		if _, _, err := s.Get(bg, key); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 1 {
		t.Errorf("Get: %v allocs/op, want exactly 1 (the returned value copy)", allocs)
	}
}
