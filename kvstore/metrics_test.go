package kvstore

import (
	"fmt"
	"testing"
)

// TestOpLatencyMetrics checks that the store registers its operation
// histograms on the database's registry under the kvstore namespace and
// that each operation records a sample.
func TestOpLatencyMetrics(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()

	if err := s.Put(bg, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Get latency is sampled every getSampleEvery-th call, so issue a full
	// sampling period to guarantee at least one recorded sample.
	for i := 0; i < getSampleEvery; i++ {
		if _, _, err := s.Get(bg, []byte("k")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Scan(nil, func(_, _ []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(bg, func(b *BatchBuilder) error { return b.Put([]byte("k2"), []byte("v2")) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(bg, []byte("k")); err != nil {
		t.Fatal(err)
	}

	reg := s.DB().MetricsRegistry()
	want := map[string]uint64{
		"mmdb_kvstore_put_seconds":    1,
		"mmdb_kvstore_get_seconds":    1,
		"mmdb_kvstore_scan_seconds":   1,
		"mmdb_kvstore_batch_seconds":  1,
		"mmdb_kvstore_delete_seconds": 1,
	}
	for name, min := range want {
		h := reg.FindHistogram(name)
		if h == nil {
			t.Errorf("histogram %s not registered", name)
			continue
		}
		if h.Count() < min {
			t.Errorf("%s count = %d, want >= %d", name, h.Count(), min)
		}
	}
}

// TestStatsRaceWithOps hammers Stats and TraceEvents from the kvstore
// layer while operations run; meaningful under -race (the race gate
// includes ./kvstore/...).
func TestStatsRaceWithOps(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			key := []byte(fmt.Sprintf("key-%03d", i%20))
			if err := s.Put(bg, key, []byte("v")); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			if _, _, err := s.Get(bg, key); err != nil {
				t.Errorf("Get: %v", err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		_ = s.EngineStats()
		_ = s.DB().MetricsRegistry().Gather()
		_ = s.DB().TraceEvents()
	}
}
