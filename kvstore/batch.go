package kvstore

import (
	"fmt"
	"sort"
	"time"

	"mmdb"
)

// Batch stages multiple Put/Delete operations to be applied as one atomic
// mmdb transaction: after a crash either all of the batch's effects are
// recovered or none are.
type Batch struct {
	s   *Store
	ops []batchOp
}

type batchOp struct {
	key    []byte
	val    []byte
	delete bool
}

// Put stages an insert or replace.
func (b *Batch) Put(key, val []byte) error {
	if err := b.s.capacityCheck(key, val); err != nil {
		return err
	}
	b.ops = append(b.ops, batchOp{
		key: append([]byte(nil), key...),
		val: append([]byte(nil), val...),
	})
	return nil
}

// Delete stages a removal (absent keys are ignored at apply time).
func (b *Batch) Delete(key []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
	return nil
}

// Len returns the number of staged operations.
func (b *Batch) Len() int { return len(b.ops) }

// Update builds a batch with fn and applies it atomically. An error from
// fn (or from the underlying transaction) applies nothing.
func (s *Store) Update(fn func(b *Batch) error) error {
	b := &Batch{s: s}
	if err := fn(b); err != nil {
		return err
	}
	if len(b.ops) == 0 {
		return nil
	}
	defer s.batchH.ObserveSince(time.Now())

	s.mu.Lock()
	defer s.mu.Unlock()

	// Resolve each key to its final effect (later operations win), then
	// assign record slots: existing keys keep theirs, fresh inserts draw
	// from the free list. Slots freed by this batch's deletes become
	// available only after the batch — reusing them inside the batch
	// would write the same record twice in one transaction with an
	// order-dependent outcome.
	final := map[string]batchOp{}
	var order []string
	for _, op := range b.ops {
		k := string(op.key)
		if _, seen := final[k]; !seen {
			order = append(order, k)
		}
		final[k] = op
	}
	sort.Strings(order) // deterministic slot assignment

	type plannedOp struct {
		op    batchOp
		rid   uint64
		fresh bool // newly allocated slot (index insert on success)
		drop  bool // existing key deleted (index delete on success)
	}
	var plan []plannedOp
	freeTop := len(s.free)
	for _, k := range order {
		op := final[k]
		rid, exists := s.idx.Get(op.key)
		switch {
		case op.delete && !exists:
			continue
		case op.delete:
			plan = append(plan, plannedOp{op: op, rid: rid, drop: true})
		case exists:
			plan = append(plan, plannedOp{op: op, rid: rid})
		default:
			if freeTop == 0 {
				return fmt.Errorf("%w (batch needs more free slots; slots it deletes free up only afterwards)", ErrFull)
			}
			freeTop--
			plan = append(plan, plannedOp{op: op, rid: s.free[freeTop], fresh: true})
		}
	}

	// One transaction applies every record image.
	rec := make([]byte, s.db.RecordBytes())
	err := s.db.Exec(func(tx *mmdb.Txn) error {
		for _, p := range plan {
			if p.op.delete {
				if err := tx.Write(p.rid, nil); err != nil {
					return err
				}
				continue
			}
			encode(rec, p.op.key, p.op.val)
			if err := tx.Write(p.rid, rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Commit the in-memory view.
	s.free = s.free[:freeTop]
	for _, p := range plan {
		switch {
		case p.drop:
			s.idx.Delete(p.op.key)
			s.free = append(s.free, p.rid)
		case p.fresh:
			s.idx.Insert(p.op.key, p.rid)
		}
	}
	return nil
}
