package kvstore

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mmdb"
)

// Batch applies ops as one atomic mmdb transaction: after a crash
// either all of the batch's effects are recovered or none are. Each op
// is validated up front (capacity, empty keys) before anything is
// staged; later ops on the same key win.
func (s *Local) Batch(ctx context.Context, ops []Op) error {
	for i, op := range ops {
		if op.Delete {
			if len(op.Key) == 0 {
				return fmt.Errorf("kvstore: batch op %d: %w", i, ErrEmptyKey)
			}
			continue
		}
		if err := s.capacityCheck(op.Key, op.Val); err != nil {
			return fmt.Errorf("kvstore: batch op %d: %w", i, err)
		}
	}
	if len(ops) == 0 {
		return nil
	}
	defer s.batchH.ObserveSince(time.Now())

	s.mu.Lock()
	defer s.mu.Unlock()

	// Resolve each key to its final effect (later operations win), then
	// assign record slots: existing keys keep theirs, fresh inserts draw
	// from the free list. Slots freed by this batch's deletes become
	// available only after the batch — reusing them inside the batch
	// would write the same record twice in one transaction with an
	// order-dependent outcome.
	final := map[string]Op{}
	var order []string
	for _, op := range ops {
		k := string(op.Key)
		if _, seen := final[k]; !seen {
			order = append(order, k)
		}
		final[k] = op
	}
	sort.Strings(order) // deterministic slot assignment

	type plannedOp struct {
		op    Op
		rid   uint64
		fresh bool // newly allocated slot (index insert on success)
		drop  bool // existing key deleted (index delete on success)
	}
	var plan []plannedOp
	freeTop := len(s.free)
	for _, k := range order {
		op := final[k]
		rid, exists := s.idx.Get(op.Key)
		switch {
		case op.Delete && !exists:
			continue
		case op.Delete:
			plan = append(plan, plannedOp{op: op, rid: rid, drop: true})
		case exists:
			plan = append(plan, plannedOp{op: op, rid: rid})
		default:
			if freeTop == 0 {
				return fmt.Errorf("%w (batch needs more free slots; slots it deletes free up only afterwards)", ErrFull)
			}
			freeTop--
			plan = append(plan, plannedOp{op: op, rid: s.free[freeTop], fresh: true})
		}
	}

	// One transaction applies every record image.
	rec := make([]byte, s.db.RecordBytes())
	err := s.db.ExecContext(ctx, func(tx *mmdb.Txn) error {
		for _, p := range plan {
			if p.op.Delete {
				if err := tx.Write(p.rid, nil); err != nil {
					return err
				}
				continue
			}
			encode(rec, p.op.Key, p.op.Val)
			if err := tx.Write(p.rid, rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Commit the in-memory view.
	s.free = s.free[:freeTop]
	for _, p := range plan {
		switch {
		case p.drop:
			s.idx.Delete(p.op.Key)
			s.free = append(s.free, p.rid)
		case p.fresh:
			s.idx.Insert(p.op.Key, p.rid)
		}
	}
	return nil
}

// BatchBuilder stages Put/Delete operations for Local.Update: the
// ergonomic way to build a Batch incrementally, with per-op validation
// at stage time.
type BatchBuilder struct {
	s   *Local
	ops []Op
}

// Put stages an insert or replace.
func (b *BatchBuilder) Put(key, val []byte) error {
	if err := b.s.capacityCheck(key, val); err != nil {
		return err
	}
	b.ops = append(b.ops, Op{
		Key: append([]byte(nil), key...),
		Val: append([]byte(nil), val...),
	})
	return nil
}

// Delete stages a removal (absent keys are ignored at apply time).
func (b *BatchBuilder) Delete(key []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	b.ops = append(b.ops, Op{Key: append([]byte(nil), key...), Delete: true})
	return nil
}

// Len returns the number of staged operations.
func (b *BatchBuilder) Len() int { return len(b.ops) }

// Update builds a batch with fn and applies it atomically through
// Batch. An error from fn (or from the underlying transaction) applies
// nothing.
func (s *Local) Update(ctx context.Context, fn func(b *BatchBuilder) error) error {
	b := &BatchBuilder{s: s}
	if err := fn(b); err != nil {
		return err
	}
	return s.Batch(ctx, b.ops)
}
