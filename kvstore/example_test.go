package kvstore_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"mmdb"
	"mmdb/kvstore"
)

// Example shows the ordered key-value layer: puts, an atomic batch, a
// range scan, a crash, and recovery with the index rebuilt from the
// recovered records.
func Example() {
	dir, err := os.MkdirTemp("", "kv-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := mmdb.Config{
		Dir:         dir,
		NumRecords:  1024,
		RecordBytes: 128,
		Algorithm:   mmdb.COUCopy,
		SyncCommit:  true,
	}
	ctx := context.Background()
	store, _, err := kvstore.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if err := store.Put(ctx, []byte("user/ada"), []byte("analyst")); err != nil {
		log.Fatal(err)
	}
	// An atomic multi-key batch: all-or-nothing across crashes.
	err = store.Update(ctx, func(b *kvstore.BatchBuilder) error {
		if err := b.Put([]byte("user/bob"), []byte("builder")); err != nil {
			return err
		}
		return b.Put([]byte("user/cyn"), []byte("curator"))
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// Crash and reopen: records recover from backup+log, the index is
	// rebuilt from them.
	if err := store.Crash(); err != nil {
		log.Fatal(err)
	}
	store2, _, err := kvstore.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer store2.Close()

	_ = store2.Scan([]byte("user/"), func(k, v []byte) bool {
		fmt.Printf("%s = %s\n", k, v)
		return true
	})
	// Output:
	// user/ada = analyst
	// user/bob = builder
	// user/cyn = curator
}
