// Package storetest is the interface-level conformance suite for
// kvstore.Store: one set of behavioral tests every implementation —
// the in-process Local store, the sharded Router, the mmdbd network
// client — must pass. An implementation wires itself in with one line:
//
//	storetest.Run(t, func(t *testing.T) kvstore.Store { ... })
//
// The factory is called once per subtest and must return an empty
// store with capacity for at least a few hundred small entries; the
// suite closes each store itself. Record capacity must be at least
// 64 bytes and at most 32 KiB so the size-limit probes behave.
package storetest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mmdb/kvstore"
)

// Run exercises the full Store contract against stores built by open.
func Run(t *testing.T, open func(t *testing.T) kvstore.Store) {
	t.Run("PutGetDelete", func(t *testing.T) { testPutGetDelete(t, open(t)) })
	t.Run("Overwrite", func(t *testing.T) { testOverwrite(t, open(t)) })
	t.Run("ErrorContract", func(t *testing.T) { testErrorContract(t, open(t)) })
	t.Run("Batch", func(t *testing.T) { testBatch(t, open(t)) })
	t.Run("BatchLastWins", func(t *testing.T) { testBatchLastWins(t, open(t)) })
	t.Run("Stats", func(t *testing.T) { testStats(t, open(t)) })
	t.Run("ValueOwnership", func(t *testing.T) { testValueOwnership(t, open(t)) })
	t.Run("Concurrent", func(t *testing.T) { testConcurrent(t, open(t)) })
	t.Run("ContextCancelled", func(t *testing.T) { testContextCancelled(t, open(t)) })
}

func closeStore(t *testing.T, s kvstore.Store) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func testPutGetDelete(t *testing.T, s kvstore.Store) {
	defer closeStore(t, s)
	ctx := context.Background()

	if _, ok, err := s.Get(ctx, []byte("absent")); err != nil || ok {
		t.Fatalf("Get(absent) = ok %v err %v, want false nil", ok, err)
	}
	if err := s.Put(ctx, []byte("k1"), []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := s.Get(ctx, []byte("k1"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("Get(k1) = %q ok %v err %v, want v1 true nil", v, ok, err)
	}

	// Empty (nil) values are legal and distinct from absence.
	if err := s.Put(ctx, []byte("k2"), nil); err != nil {
		t.Fatalf("Put(k2, nil): %v", err)
	}
	if v, ok, err := s.Get(ctx, []byte("k2")); err != nil || !ok || len(v) != 0 {
		t.Fatalf("Get(k2) = %q ok %v err %v, want empty true nil", v, ok, err)
	}

	existed, err := s.Delete(ctx, []byte("k1"))
	if err != nil || !existed {
		t.Fatalf("Delete(k1) = %v, %v, want true nil", existed, err)
	}
	if _, ok, err := s.Get(ctx, []byte("k1")); err != nil || ok {
		t.Fatalf("Get(k1) after Delete = ok %v err %v, want absent", ok, err)
	}
	if existed, err := s.Delete(ctx, []byte("k1")); err != nil || existed {
		t.Fatalf("second Delete(k1) = %v, %v, want false nil", existed, err)
	}
}

func testOverwrite(t *testing.T, s kvstore.Store) {
	defer closeStore(t, s)
	ctx := context.Background()
	key := []byte("key")
	for i := 0; i < 10; i++ {
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := s.Put(ctx, key, val); err != nil {
			t.Fatalf("Put #%d: %v", i, err)
		}
		got, ok, err := s.Get(ctx, key)
		if err != nil || !ok || !bytes.Equal(got, val) {
			t.Fatalf("Get after Put #%d = %q ok %v err %v", i, got, ok, err)
		}
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Len() != 1 {
		t.Errorf("Len after overwrites = %d, want 1", st.Len())
	}
}

func testErrorContract(t *testing.T, s kvstore.Store) {
	defer closeStore(t, s)
	ctx := context.Background()

	if err := s.Put(ctx, nil, []byte("v")); !errors.Is(err, kvstore.ErrEmptyKey) {
		t.Errorf("Put(nil key) err = %v, want ErrEmptyKey", err)
	}
	if _, err := s.Delete(ctx, nil); !errors.Is(err, kvstore.ErrEmptyKey) {
		t.Errorf("Delete(nil key) err = %v, want ErrEmptyKey", err)
	}
	if err := s.Batch(ctx, []kvstore.Op{{Key: nil, Delete: true}}); !errors.Is(err, kvstore.ErrEmptyKey) {
		t.Errorf("Batch(delete nil key) err = %v, want ErrEmptyKey", err)
	}
	// A value no supported record size can hold must be rejected, and
	// must not destroy the store.
	huge := bytes.Repeat([]byte("x"), 64<<10)
	if err := s.Put(ctx, []byte("k"), huge); !errors.Is(err, kvstore.ErrValueTooLarge) {
		t.Errorf("Put(64KiB val) err = %v, want ErrValueTooLarge", err)
	}
	if err := s.Put(ctx, []byte("k"), []byte("fits")); err != nil {
		t.Fatalf("Put after rejected Put: %v", err)
	}
	if v, ok, err := s.Get(ctx, []byte("k")); err != nil || !ok || !bytes.Equal(v, []byte("fits")) {
		t.Fatalf("Get after rejected Put = %q ok %v err %v", v, ok, err)
	}
}

func testBatch(t *testing.T, s kvstore.Store) {
	defer closeStore(t, s)
	ctx := context.Background()

	if err := s.Batch(ctx, nil); err != nil {
		t.Fatalf("empty Batch: %v", err)
	}

	if err := s.Put(ctx, []byte("old"), []byte("stale")); err != nil {
		t.Fatal(err)
	}
	ops := []kvstore.Op{
		{Key: []byte("a"), Val: []byte("1")},
		{Key: []byte("b"), Val: []byte("2")},
		{Key: []byte("old"), Delete: true},
		{Key: []byte("never-there"), Delete: true}, // absent: ignored
	}
	if err := s.Batch(ctx, ops); err != nil {
		t.Fatalf("Batch: %v", err)
	}
	for _, want := range []struct{ k, v string }{{"a", "1"}, {"b", "2"}} {
		v, ok, err := s.Get(ctx, []byte(want.k))
		if err != nil || !ok || string(v) != want.v {
			t.Errorf("Get(%s) = %q ok %v err %v, want %q", want.k, v, ok, err, want.v)
		}
	}
	if _, ok, err := s.Get(ctx, []byte("old")); err != nil || ok {
		t.Errorf("Get(old) after batched delete = ok %v err %v, want absent", ok, err)
	}
}

func testBatchLastWins(t *testing.T, s kvstore.Store) {
	defer closeStore(t, s)
	ctx := context.Background()
	ops := []kvstore.Op{
		{Key: []byte("k"), Val: []byte("first")},
		{Key: []byte("k"), Delete: true},
		{Key: []byte("k"), Val: []byte("last")},
	}
	if err := s.Batch(ctx, ops); err != nil {
		t.Fatalf("Batch: %v", err)
	}
	v, ok, err := s.Get(ctx, []byte("k"))
	if err != nil || !ok || string(v) != "last" {
		t.Fatalf("Get(k) = %q ok %v err %v, want \"last\"", v, ok, err)
	}

	// ... and a trailing delete wins over earlier puts.
	ops = []kvstore.Op{
		{Key: []byte("k"), Val: []byte("resurrected")},
		{Key: []byte("k"), Delete: true},
	}
	if err := s.Batch(ctx, ops); err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if _, ok, err := s.Get(ctx, []byte("k")); err != nil || ok {
		t.Fatalf("Get(k) after trailing delete = ok %v err %v, want absent", ok, err)
	}
}

func testStats(t *testing.T, s kvstore.Store) {
	defer closeStore(t, s)
	ctx := context.Background()

	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if len(st.Shards) == 0 {
		t.Fatal("Stats reports no shards")
	}
	if st.Len() != 0 {
		t.Errorf("fresh store Len = %d, want 0", st.Len())
	}
	free0 := st.Free()

	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Put(ctx, []byte(fmt.Sprintf("key-%03d", i)), []byte("v")); err != nil {
			t.Fatalf("Put #%d: %v", i, err)
		}
	}
	st, err = s.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Len() != n {
		t.Errorf("Len = %d, want %d", st.Len(), n)
	}
	if got := free0 - st.Free(); got != n {
		t.Errorf("Free dropped by %d, want %d", got, n)
	}
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Errorf("Shards[%d].Shard = %d, want shard order", i, sh.Shard)
		}
	}
}

func testValueOwnership(t *testing.T, s kvstore.Store) {
	defer closeStore(t, s)
	ctx := context.Background()

	// The store must not alias the caller's buffers: mutating them after
	// the call must not change stored data...
	key := []byte("owned")
	val := []byte("immutable")
	if err := s.Put(ctx, key, val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X'
	got, _, err := s.Get(ctx, key)
	if err != nil || string(got) != "immutable" {
		t.Fatalf("stored value aliased the caller's buffer: %q (%v)", got, err)
	}
	// ...and the returned copy is caller-owned: mutating it must not
	// change what a second Get sees.
	got[0] = 'Y'
	again, _, err := s.Get(ctx, key)
	if err != nil || string(again) != "immutable" {
		t.Fatalf("returned value aliases store memory: %q (%v)", again, err)
	}
}

func testConcurrent(t *testing.T, s kvstore.Store) {
	defer closeStore(t, s)
	ctx := context.Background()

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		// goleak:joins wg.Wait below
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("w%d-%03d", w, i))
				if err := s.Put(ctx, k, k); err != nil {
					errs <- fmt.Errorf("Put %s: %w", k, err)
					return
				}
				if _, _, err := s.Get(ctx, k); err != nil {
					errs <- fmt.Errorf("Get %s: %w", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Len() != writers*perWriter {
		t.Errorf("Len = %d, want %d", st.Len(), writers*perWriter)
	}
}

func testContextCancelled(t *testing.T, s kvstore.Store) {
	defer closeStore(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, context.Canceled) {
		t.Errorf("Put(cancelled ctx) err = %v, want context.Canceled", err)
	}
	if _, _, err := s.Get(ctx, []byte("k")); !errors.Is(err, context.Canceled) {
		t.Errorf("Get(cancelled ctx) err = %v, want context.Canceled", err)
	}
	// The store stays usable with a live context.
	if err := s.Put(context.Background(), []byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put after cancelled op: %v", err)
	}
}
