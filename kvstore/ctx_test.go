package kvstore

import "context"

// bg is the context test call sites thread through the Store API.
var bg = context.Background()
