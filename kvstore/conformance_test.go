package kvstore_test

import (
	"testing"

	"mmdb"
	"mmdb/kvstore"
	"mmdb/kvstore/storetest"
)

// TestLocalConformance runs the shared Store interface suite against
// the in-process implementation. The network client and the sharded
// router run the identical suite in their own packages.
func TestLocalConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) kvstore.Store {
		s, _, err := kvstore.Open(mmdb.Config{
			Dir:         t.TempDir(),
			NumRecords:  1024,
			RecordBytes: 128,
			Algorithm:   mmdb.COUCopy,
			SyncCommit:  true,
		})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return s
	})
}
