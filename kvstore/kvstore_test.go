package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mmdb"
)

func testConfig(t *testing.T) mmdb.Config {
	t.Helper()
	return mmdb.Config{
		Dir:         t.TempDir(),
		NumRecords:  512,
		RecordBytes: 64,
		Algorithm:   mmdb.COUCopy,
		SyncCommit:  true,
	}
}

func mustOpen(t *testing.T, cfg mmdb.Config) *Local {
	t.Helper()
	s, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()

	if err := s.Put(bg, []byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(bg, []byte("beta"), []byte("two")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get(bg, []byte("alpha"))
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("Get alpha = %q %v %v", v, ok, err)
	}
	if _, ok, _ := s.Get(bg, []byte("gamma")); ok {
		t.Error("absent key found")
	}
	// Replace.
	if err := s.Put(bg, []byte("alpha"), []byte("uno")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = s.Get(bg, []byte("alpha"))
	if string(v) != "uno" {
		t.Errorf("replaced value = %q", v)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	// Delete.
	deleted, err := s.Delete(bg, []byte("alpha"))
	if err != nil || !deleted {
		t.Fatalf("Delete = %v %v", deleted, err)
	}
	if deleted, _ := s.Delete(bg, []byte("alpha")); deleted {
		t.Error("double delete")
	}
	if _, ok, _ := s.Get(bg, []byte("alpha")); ok {
		t.Error("deleted key still visible")
	}
	if s.Len() != 1 {
		t.Errorf("Len after delete = %d", s.Len())
	}
}

func TestValidation(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()
	if err := s.Put(bg, nil, []byte("x")); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("empty key: %v", err)
	}
	big := bytes.Repeat([]byte("k"), 64)
	if err := s.Put(bg, big, nil); !errors.Is(err, ErrValueTooLarge) {
		t.Errorf("oversized entry: %v", err)
	}
	if err := s.Put(bg, []byte("k"), bytes.Repeat([]byte("v"), 60)); !errors.Is(err, ErrValueTooLarge) {
		t.Errorf("oversized value: %v", err)
	}
	if _, err := s.Delete(bg, nil); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("delete empty key: %v", err)
	}
	// Exactly-fitting entry works (64 - 5 header = 59).
	if err := s.Put(bg, []byte("kk"), bytes.Repeat([]byte("v"), 57)); err != nil {
		t.Errorf("exact fit rejected: %v", err)
	}
}

func TestFullStore(t *testing.T) {
	cfg := testConfig(t)
	cfg.NumRecords = 8
	s := mustOpen(t, cfg)
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Put(bg, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(bg, []byte("overflow"), []byte("v")); !errors.Is(err, ErrFull) {
		t.Fatalf("overflow err = %v", err)
	}
	// Replacing an existing key still works at capacity.
	if err := s.Put(bg, []byte("k03"), []byte("w")); err != nil {
		t.Errorf("replace at capacity: %v", err)
	}
	// Deleting frees a slot.
	if _, err := s.Delete(bg, []byte("k00")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(bg, []byte("reborn"), []byte("v")); err != nil {
		t.Errorf("put after delete: %v", err)
	}
	if s.Free() != 0 {
		t.Errorf("Free = %d", s.Free())
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()
	keys := []string{"ant", "bee", "cat", "dog", "eel", "fox"}
	for i, k := range keys {
		if err := s.Put(bg, []byte(k), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := s.Scan(nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(got) || len(got) != len(keys) {
		t.Errorf("scan = %v", got)
	}
	got = nil
	if err := s.Scan([]byte("cow"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 2
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "dog" || got[1] != "eel" {
		t.Errorf("bounded scan = %v", got)
	}
}

func TestScanReverse(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()
	keys := []string{"ant", "bee", "cat", "dog"}
	for i, k := range keys {
		if err := s.Put(bg, []byte(k), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := s.ScanReverse(nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"dog", "cat", "bee", "ant"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reverse scan = %v", got)
		}
	}
	got = nil
	if err := s.ScanReverse([]byte("cow"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 2
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "cat" || got[1] != "bee" {
		t.Fatalf("bounded reverse scan = %v", got)
	}
}

// TestKVRandomizedSoak drives put/delete/batch/scan/crash cycles against
// a map oracle — the key-value layer's version of the engine soak.
func TestKVRandomizedSoak(t *testing.T) {
	cfg := testConfig(t)
	cfg.NumRecords = 256
	s := mustOpen(t, cfg)
	rng := rand.New(rand.NewSource(99))
	oracle := map[string]string{}
	keyOf := func() string { return fmt.Sprintf("k%03d", rng.Intn(300)) }

	steps := 600
	if testing.Short() {
		steps = 150
	}
	for step := 0; step < steps; step++ {
		switch r := rng.Intn(100); {
		case r < 45: // put
			k, v := keyOf(), fmt.Sprintf("v%d", rng.Int63())
			err := s.Put(bg, []byte(k), []byte(v))
			if errors.Is(err, ErrFull) {
				continue
			}
			if err != nil {
				t.Fatalf("step %d put: %v", step, err)
			}
			oracle[k] = v
		case r < 60: // delete
			k := keyOf()
			if _, err := s.Delete(bg, []byte(k)); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(oracle, k)
		case r < 72: // batch
			type kv struct{ k, v string }
			var puts []kv
			var dels []string
			err := s.Update(bg, func(b *BatchBuilder) error {
				for j := 0; j < 1+rng.Intn(4); j++ {
					if rng.Intn(3) == 0 {
						k := keyOf()
						if err := b.Delete([]byte(k)); err != nil {
							return err
						}
						dels = append(dels, k)
					} else {
						k, v := keyOf(), fmt.Sprintf("b%d", rng.Int63())
						if err := b.Put([]byte(k), []byte(v)); err != nil {
							return err
						}
						puts = append(puts, kv{k, v})
					}
				}
				return nil
			})
			if errors.Is(err, ErrFull) {
				continue
			}
			if err != nil {
				t.Fatalf("step %d batch: %v", step, err)
			}
			// Batches apply last-op-wins per key; our puts/dels lists
			// preserve call order within each kind but not across kinds,
			// so replay deletes-then-puts only when the key sets are
			// disjoint and otherwise resync from the store (which is the
			// batch-order authority).
			disjoint := true
			putKeys := map[string]bool{}
			for _, p := range puts {
				putKeys[p.k] = true
			}
			for _, d := range dels {
				if putKeys[d] {
					disjoint = false
					break
				}
			}
			if disjoint {
				for _, d := range dels {
					delete(oracle, d)
				}
				for _, p := range puts {
					oracle[p.k] = p.v
				}
			} else {
				touched := map[string]bool{}
				for _, p := range puts {
					touched[p.k] = true
				}
				for _, d := range dels {
					touched[d] = true
				}
				for k := range touched {
					v, ok, err := s.Get(bg, []byte(k))
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						oracle[k] = string(v)
					} else {
						delete(oracle, k)
					}
				}
			}
		case r < 92: // get
			k := keyOf()
			v, ok, err := s.Get(bg, []byte(k))
			if err != nil {
				t.Fatal(err)
			}
			want, exists := oracle[k]
			if ok != exists || (ok && string(v) != want) {
				t.Fatalf("step %d: Get(%q) = %q/%v, want %q/%v", step, k, v, ok, want, exists)
			}
		default: // crash + reopen
			if err := s.Crash(); err != nil {
				t.Fatal(err)
			}
			var err error
			s, _, err = Open(cfg)
			if err != nil {
				t.Fatalf("step %d reopen: %v", step, err)
			}
			if s.Len() != len(oracle) {
				t.Fatalf("step %d: Len %d, oracle %d", step, s.Len(), len(oracle))
			}
		}
	}
	// Final full comparison.
	if s.Len() != len(oracle) {
		t.Fatalf("final Len %d, oracle %d", s.Len(), len(oracle))
	}
	for k, want := range oracle {
		v, ok, err := s.Get(bg, []byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("final Get(%q) = %q/%v/%v", k, v, ok, err)
		}
	}
	s.Close()
}

// TestCrashRecoveryRebuildsIndex is the package's central property: after
// a crash, Open rebuilds the volatile index from the recovered records
// and the store equals the committed history.
func TestCrashRecoveryRebuildsIndex(t *testing.T) {
	cfg := testConfig(t)
	s := mustOpen(t, cfg)
	rng := rand.New(rand.NewSource(5))
	oracle := map[string]string{}

	mutate := func(n int) {
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(200))
			if rng.Intn(4) == 0 {
				if _, err := s.Delete(bg, []byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(oracle, k)
			} else {
				v := fmt.Sprintf("val-%d", rng.Int63())
				if err := s.Put(bg, []byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			}
		}
	}
	verify := func() {
		if s.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle %d", s.Len(), len(oracle))
		}
		for k, want := range oracle {
			v, ok, err := s.Get(bg, []byte(k))
			if err != nil || !ok || string(v) != want {
				t.Fatalf("Get(%q) = %q %v %v, want %q", k, v, ok, err, want)
			}
		}
		// Scan agrees with a sorted oracle.
		want := make([]string, 0, len(oracle))
		for k := range oracle {
			want = append(want, k)
		}
		sort.Strings(want)
		i := 0
		if err := s.Scan(nil, func(k, v []byte) bool {
			if i >= len(want) || string(k) != want[i] || string(v) != oracle[want[i]] {
				t.Fatalf("scan mismatch at %d: %q", i, k)
			}
			i++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if i != len(want) {
			t.Fatalf("scan visited %d of %d", i, len(want))
		}
	}

	for cycle := 0; cycle < 3; cycle++ {
		mutate(120)
		if cycle == 1 {
			if _, err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		verify()
		if err := s.Crash(); err != nil {
			t.Fatal(err)
		}
		var rep *mmdb.RecoveryReport
		var err error
		s, rep, err = Open(cfg)
		if err != nil {
			t.Fatalf("cycle %d reopen: %v", cycle, err)
		}
		if rep == nil {
			t.Fatal("expected a recovery report on reopen")
		}
		verify()
	}
	s.Close()
}

func TestGracefulReopen(t *testing.T) {
	cfg := testConfig(t)
	s := mustOpen(t, cfg)
	if err := s.Put(bg, []byte("persist"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok, err := s2.Get(bg, []byte("persist"))
	if err != nil || !ok || string(v) != "yes" {
		t.Fatalf("after reopen: %q %v %v", v, ok, err)
	}
}

func TestGetCopiesValue(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()
	if err := s.Put(bg, []byte("k"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := s.Get(bg, []byte("k"))
	v[0] = 'X'
	v2, _, _ := s.Get(bg, []byte("k"))
	if string(v2) != "value" {
		t.Error("store corrupted through returned value")
	}
}

func TestBinaryKeysAndValues(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()
	key := []byte{0x00, 0xFF, 0x10, 0x00}
	val := []byte{0x00, 0x01, 0x02, 0x00, 0xFF}
	if err := s.Put(bg, key, val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(bg, key)
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("binary round trip: %v %v %v", got, ok, err)
	}
	// Empty value is legal.
	if err := s.Put(bg, []byte("emptyval"), nil); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = s.Get(bg, []byte("emptyval"))
	if !ok || len(got) != 0 {
		t.Errorf("empty value round trip: %v %v", got, ok)
	}
}

func TestStatsAndDBPassthrough(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()
	if err := s.Put(bg, []byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if s.EngineStats().TxnsCommitted == 0 {
		t.Error("no transactions recorded")
	}
	if s.DB() == nil || s.DB().NumRecords() != 512 {
		t.Error("DB passthrough broken")
	}
}
