package kvstore

import (
	"errors"
	"fmt"
	"testing"
)

func TestBatchBasics(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()
	if err := s.Put(bg, []byte("old"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	err := s.Update(bg, func(b *BatchBuilder) error {
		if err := b.Put([]byte("a"), []byte("A")); err != nil {
			return err
		}
		if err := b.Put([]byte("b"), []byte("B")); err != nil {
			return err
		}
		if err := b.Put([]byte("old"), []byte("2")); err != nil { // replace
			return err
		}
		if err := b.Delete([]byte("missing")); err != nil { // no-op
			return err
		}
		if b.Len() != 4 {
			t.Errorf("Len = %d", b.Len())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "A", "b": "B", "old": "2"} {
		v, ok, err := s.Get(bg, []byte(k))
		if err != nil || !ok || string(v) != want {
			t.Errorf("Get(%q) = %q %v %v", k, v, ok, err)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestBatchLastOperationWins(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()
	err := s.Update(bg, func(b *BatchBuilder) error {
		_ = b.Put([]byte("k"), []byte("first"))
		_ = b.Delete([]byte("k"))
		return b.Put([]byte("k"), []byte("last"))
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := s.Get(bg, []byte("k"))
	if !ok || string(v) != "last" {
		t.Errorf("final value = %q %v", v, ok)
	}
	// And the other way: ending in delete.
	err = s.Update(bg, func(b *BatchBuilder) error {
		_ = b.Put([]byte("k"), []byte("again"))
		return b.Delete([]byte("k"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(bg, []byte("k")); ok {
		t.Error("key survived final delete")
	}
}

func TestBatchErrorAppliesNothing(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()
	boom := errors.New("boom")
	err := s.Update(bg, func(b *BatchBuilder) error {
		_ = b.Put([]byte("x"), []byte("1"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok, _ := s.Get(bg, []byte("x")); ok {
		t.Error("failed batch applied a put")
	}
	// Validation failures surface immediately.
	err = s.Update(bg, func(b *BatchBuilder) error { return b.Put(nil, nil) })
	if !errors.Is(err, ErrEmptyKey) {
		t.Errorf("err = %v", err)
	}
}

func TestBatchFullStore(t *testing.T) {
	cfg := testConfig(t)
	cfg.NumRecords = 4
	s := mustOpen(t, cfg)
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.Put(bg, []byte{byte('a' + i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// One slot left: a batch needing two fresh slots fails entirely, even
	// though it also deletes (freed slots are post-batch).
	err := s.Update(bg, func(b *BatchBuilder) error {
		_ = b.Delete([]byte("a"))
		_ = b.Put([]byte("x"), nil)
		return b.Put([]byte("y"), nil)
	})
	if !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if _, ok, _ := s.Get(bg, []byte("a")); !ok {
		t.Error("failed batch deleted a key")
	}
	// A batch that fits succeeds.
	err = s.Update(bg, func(b *BatchBuilder) error {
		_ = b.Delete([]byte("a"))
		return b.Put([]byte("x"), nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Free() != 1 {
		t.Errorf("Len/Free = %d/%d", s.Len(), s.Free())
	}
}

// TestBatchCrashAtomicity: a committed batch is fully recovered; the
// store state after crash+reopen matches key-by-key.
func TestBatchCrashAtomicity(t *testing.T) {
	cfg := testConfig(t)
	s := mustOpen(t, cfg)
	if err := s.Put(bg, []byte("seed"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	err := s.Update(bg, func(b *BatchBuilder) error {
		for i := 0; i < 10; i++ {
			if err := b.Put([]byte(fmt.Sprintf("batch-%02d", i)), []byte("v")); err != nil {
				return err
			}
		}
		return b.Delete([]byte("seed"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("recovered Len = %d, want 10 (batch must be all-or-nothing)", s2.Len())
	}
	if _, ok, _ := s2.Get(bg, []byte("seed")); ok {
		t.Error("batched delete lost")
	}
	for i := 0; i < 10; i++ {
		if _, ok, _ := s2.Get(bg, []byte(fmt.Sprintf("batch-%02d", i))); !ok {
			t.Errorf("batched put %d lost", i)
		}
	}
}

func TestEmptyBatchIsNoop(t *testing.T) {
	s := mustOpen(t, testConfig(t))
	defer s.Close()
	before := s.EngineStats().TxnsCommitted
	if err := s.Update(bg, func(b *BatchBuilder) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if s.EngineStats().TxnsCommitted != before {
		t.Error("empty batch ran a transaction")
	}
}
