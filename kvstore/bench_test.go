package kvstore

import (
	"fmt"
	"testing"

	"mmdb"
)

func benchStore(b *testing.B) *Local {
	b.Helper()
	s, _, err := Open(mmdb.Config{
		Dir:         b.TempDir(),
		NumRecords:  1 << 16,
		RecordBytes: 128,
		Algorithm:   mmdb.COUCopy,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func BenchmarkPut(b *testing.B) {
	s := benchStore(b)
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("key-%08d", i%(1<<15))
		if err := s.Put(bg, []byte(key), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s := benchStore(b)
	val := make([]byte, 64)
	const n = 1 << 12
	for i := 0; i < n; i++ {
		if err := s.Put(bg, []byte(fmt.Sprintf("key-%08d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := s.Get(bg, []byte(fmt.Sprintf("key-%08d", i%n)))
		if err != nil || !ok {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexRebuild measures the post-recovery index build — the cost
// main-memory databases pay for never checkpointing their indexes.
func BenchmarkIndexRebuild(b *testing.B) {
	s := benchStore(b)
	val := make([]byte, 64)
	const n = 1 << 13
	for i := 0; i < n; i++ {
		if err := s.Put(bg, []byte(fmt.Sprintf("key-%08d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.rebuild(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "entries")
}
