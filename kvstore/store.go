package kvstore

import (
	"context"

	"mmdb"
)

// Op is one operation of a Store.Batch: a Put of Val under Key, or —
// when Delete is set — a removal of Key (Val is ignored). Within one
// batch, later operations on the same key win.
type Op struct {
	Key    []byte
	Val    []byte
	Delete bool
}

// ShardStats describes one shard of a Store: its keyspace occupancy and
// the underlying engine's counters. A Local store is one shard; a
// sharded router or a network client reports one entry per shard.
type ShardStats struct {
	Shard int `json:"shard"`
	// Len is the number of stored entries; Free the remaining slots.
	Len  int `json:"len"`
	Free int `json:"free"`
	// Engine carries the shard's engine counters (commits, checkpoints,
	// WAL bytes, recovery timings, ...).
	Engine mmdb.Stats `json:"engine"`
}

// StoreStats is the Stats result of any Store implementation: one
// ShardStats per shard, in shard order.
type StoreStats struct {
	Shards []ShardStats `json:"shards"`
}

// Len totals the stored entries across shards.
func (st StoreStats) Len() int {
	n := 0
	for _, sh := range st.Shards {
		n += sh.Len
	}
	return n
}

// Free totals the free slots across shards.
func (st StoreStats) Free() int {
	n := 0
	for _, sh := range st.Shards {
		n += sh.Free
	}
	return n
}

// Store is the transport-agnostic key-value API: the same contract is
// served by the in-process Local store, the sharded Router, and the
// mmdbd network client, so callers, tests, and benchmarks written
// against it run on any of the three unchanged.
//
// Contract, beyond the method docs:
//
//   - Get returns a caller-owned copy; ok=false with nil error means
//     the key is absent.
//   - Put and Delete are each one atomic, durable operation.
//   - Batch applies its operations atomically per shard; whether the
//     batch is atomic ACROSS shards depends on the implementation
//     (Local: fully atomic; Router/client: per-shard atomic only — see
//     the Router docs). Later ops on the same key win.
//   - Empty keys are rejected with ErrEmptyKey; oversized entries with
//     ErrKeyTooLarge/ErrValueTooLarge; a full keyspace with ErrFull.
//   - ctx cancellation makes an operation return early with ctx's
//     error; an operation that already committed is not undone.
type Store interface {
	Get(ctx context.Context, key []byte) (val []byte, ok bool, err error)
	Put(ctx context.Context, key, val []byte) error
	Delete(ctx context.Context, key []byte) (existed bool, err error)
	Batch(ctx context.Context, ops []Op) error
	Stats(ctx context.Context) (StoreStats, error)
	Close() error
}

// Local is the reference Store implementation.
var _ Store = (*Local)(nil)
