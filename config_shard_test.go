package mmdb

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func shardedConfig(t *testing.T, shards int) Config {
	t.Helper()
	return Config{
		Dir:                t.TempDir(),
		NumRecords:         1024,
		RecordBytes:        64,
		Algorithm:          COUCopy,
		Shards:             shards,
		CheckpointInterval: 400 * time.Millisecond,
	}
}

func TestShardConfigDerivation(t *testing.T) {
	cfg := shardedConfig(t, 4)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate(sharded): %v", err)
	}
	for shard := 0; shard < 4; shard++ {
		sc, err := cfg.ShardConfig(shard)
		if err != nil {
			t.Fatalf("ShardConfig(%d): %v", shard, err)
		}
		if want := filepath.Join(cfg.Dir, ShardDirName(shard)); sc.Dir != want {
			t.Errorf("shard %d Dir = %q, want %q", shard, sc.Dir, want)
		}
		if sc.NumRecords != 256 {
			t.Errorf("shard %d NumRecords = %d, want 256", shard, sc.NumRecords)
		}
		if sc.Shards != 0 {
			t.Errorf("shard %d Shards = %d, want 0 (single engine)", shard, sc.Shards)
		}
		if want := time.Duration(shard) * 100 * time.Millisecond; sc.CheckpointStagger != want {
			t.Errorf("shard %d CheckpointStagger = %v, want %v", shard, sc.CheckpointStagger, want)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("shard %d config invalid: %v", shard, err)
		}
	}
}

// TestShardConfigUnshardedIdentity pins the upgrade path: Shards 0 and 1
// must both derive a config identical to the original (same Dir, no
// subdirectory, same geometry), so existing databases open unchanged.
func TestShardConfigUnshardedIdentity(t *testing.T) {
	for _, shards := range []int{0, 1} {
		cfg := shardedConfig(t, shards)
		sc, err := cfg.ShardConfig(0)
		if err != nil {
			t.Fatalf("Shards=%d ShardConfig(0): %v", shards, err)
		}
		want := cfg
		want.Shards = 0 // 1 normalizes to 0; the layout is the same
		if !reflect.DeepEqual(sc, want) {
			t.Errorf("Shards=%d ShardConfig(0) = %+v, want original config", shards, sc)
		}
		if _, err := cfg.ShardConfig(1); err == nil {
			t.Errorf("Shards=%d ShardConfig(1) succeeded, want error", shards)
		}
	}
}

func TestShardConfigErrors(t *testing.T) {
	cfg := shardedConfig(t, 4)

	neg := cfg
	neg.Shards = -1
	if err := neg.Validate(); err == nil {
		t.Error("Validate(Shards=-1) succeeded")
	}
	if _, err := neg.ShardConfig(0); err == nil {
		t.Error("ShardConfig on negative Shards succeeded")
	}

	if _, err := cfg.ShardConfig(-1); err == nil {
		t.Error("ShardConfig(-1) succeeded")
	}
	if _, err := cfg.ShardConfig(4); err == nil {
		t.Error("ShardConfig(4) of 4 shards succeeded")
	}

	odd := cfg
	odd.Shards = 3 // 1024 % 3 != 0
	if err := odd.Validate(); err == nil {
		t.Error("Validate(1024 records / 3 shards) succeeded")
	}
}

// TestOpenRejectsShardedConfig: a DB is one engine; sharded configs are
// the router's job. Open must say so rather than silently serving 1/N
// of the keyspace.
func TestOpenRejectsShardedConfig(t *testing.T) {
	cfg := shardedConfig(t, 4)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open(Shards=4) succeeded, want error")
	}
	if _, _, err := Recover(cfg); err == nil {
		t.Fatal("Recover(Shards=4) succeeded, want error")
	}
}
