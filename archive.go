package mmdb

import (
	"io"

	"mmdb/internal/inspect"
)

// Archive writes a self-contained dump of the database directory's most
// recent complete checkpoint, plus exactly the log suffix its recovery
// needs, to w. The database must not be open. (Section 2.7 of the paper:
// dumping the backup database is easy in an MMDBMS because the
// checkpointer's disk layout is predictable.)
//
// It returns the number of segments and log bytes archived.
func Archive(dir string, w io.Writer) (segments int, logBytes int64, err error) {
	return inspect.Archive(dir, w)
}

// ArchiveRestoreInfo summarizes a RestoreArchive.
type ArchiveRestoreInfo struct {
	// CheckpointID and Algorithm identify the restored checkpoint.
	CheckpointID uint64
	Algorithm    string
	// Segments and LogBytes are the restored volumes.
	Segments int
	LogBytes int64
}

// RestoreArchive materializes an archive produced by Archive as a
// recoverable database directory at dir, which must not already hold a
// database. Open the result with Recover or OpenOrRecover.
func RestoreArchive(src io.Reader, dir string) (*ArchiveRestoreInfo, error) {
	info, err := inspect.RestoreArchive(src, dir)
	if err != nil {
		return nil, err
	}
	return &ArchiveRestoreInfo{
		CheckpointID: info.Checkpoint.ID,
		Algorithm:    info.Checkpoint.Algorithm,
		Segments:     info.Segments,
		LogBytes:     info.LogBytes,
	}, nil
}
