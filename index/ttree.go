// Package index implements a T-tree, the classic main-memory database
// index of Lehman & Carey cited in the paper's introduction ([Lehm85a]:
// index structures designed for memory-resident data). A T-tree is an
// AVL-balanced binary tree whose nodes each hold a small sorted array of
// entries, combining the storage efficiency of arrays with the update
// locality of trees.
//
// The index maps ordered byte-string keys to record IDs. It is a volatile
// structure: main-memory databases do not checkpoint their indexes — they
// rebuild them from the recovered primary data after a failure (the
// approach of [Lehm87a]), which is what mmdb/kvstore does on recovery.
//
// The tree is not safe for concurrent use; callers serialize access.
package index

import (
	"bytes"
	"fmt"
)

// DefaultOrder is the default maximum number of entries per node.
const DefaultOrder = 32

// minInternalFill is the entry count deletions try to maintain in
// internal nodes by borrowing from a subtree. Unlike the original
// T-tree's special rotations, this implementation lets a rotation
// transiently promote a sparser leaf to an internal node — an occupancy
// matter only; ordering and balance are unaffected.
const minInternalFill = 2

type entry struct {
	key []byte
	val uint64
}

type node struct {
	parent, left, right *node
	height              int // AVL height: leaves are 1
	items               []entry
}

func (n *node) min() []byte { return n.items[0].key }
func (n *node) max() []byte { return n.items[len(n.items)-1].key }

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node) balance() int { return height(n.left) - height(n.right) }

func (n *node) recalc() {
	lh, rh := height(n.left), height(n.right)
	if lh > rh {
		n.height = lh + 1
	} else {
		n.height = rh + 1
	}
}

func (n *node) isLeaf() bool { return n.left == nil && n.right == nil }

// search returns the index of key in n.items and whether it is present
// (binary search).
func (n *node) search(key []byte) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(n.items[mid].key, key) {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// insertAt places e into n.items at position i.
//
// alloc:allowed(node-array growth is amortized and bounded by the tree order)
func (n *node) insertAt(i int, e entry) {
	n.items = append(n.items, entry{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = e
}

// removeAt deletes the entry at position i and returns it.
func (n *node) removeAt(i int) entry {
	e := n.items[i]
	copy(n.items[i:], n.items[i+1:])
	n.items = n.items[:len(n.items)-1]
	return e
}

// TTree is an ordered index from byte-string keys to uint64 values.
// The zero value is not usable; construct with New.
type TTree struct {
	root  *node
	order int
	size  int
}

// New returns an empty T-tree holding up to order entries per node
// (DefaultOrder if order <= 0; a minimum of 2 is enforced).
func New(order int) *TTree {
	if order <= 0 {
		order = DefaultOrder
	}
	if order < 2 {
		order = 2
	}
	return &TTree{order: order}
}

// Len returns the number of entries.
func (t *TTree) Len() int { return t.size }

// Height returns the tree height (0 when empty).
func (t *TTree) Height() int { return height(t.root) }

// Order returns the per-node capacity.
func (t *TTree) Order() int { return t.order }

// Get returns the value stored under key.
func (t *TTree) Get(key []byte) (uint64, bool) {
	n := t.root
	for n != nil {
		switch {
		case bytes.Compare(key, n.min()) < 0:
			n = n.left
		case bytes.Compare(key, n.max()) > 0:
			n = n.right
		default:
			if i, ok := n.search(key); ok {
				return n.items[i].val, true
			}
			return 0, false
		}
	}
	return 0, false
}

// Insert stores val under key, replacing any existing value; it reports
// whether a value was replaced. The key bytes are copied.
//
// alloc:allowed(index maintenance: inserted keys are copied by API contract and node growth is amortized tree structure)
func (t *TTree) Insert(key []byte, val uint64) (replaced bool) {
	if t.root == nil {
		t.root = &node{height: 1, items: []entry{{key: cloneKey(key), val: val}}}
		t.size = 1
		return false
	}
	n := t.root
	for {
		switch {
		case bytes.Compare(key, n.min()) < 0:
			if n.left == nil {
				// Fell off the tree: key belongs before this node.
				if len(n.items) < t.order {
					n.insertAt(0, entry{key: cloneKey(key), val: val})
				} else {
					t.attachChild(n, &n.left, entry{key: cloneKey(key), val: val})
				}
				t.size++
				return false
			}
			n = n.left
		case bytes.Compare(key, n.max()) > 0:
			if n.right == nil {
				if len(n.items) < t.order {
					n.insertAt(len(n.items), entry{key: cloneKey(key), val: val})
				} else {
					t.attachChild(n, &n.right, entry{key: cloneKey(key), val: val})
				}
				t.size++
				return false
			}
			n = n.right
		default:
			// n is the bounding node.
			i, ok := n.search(key)
			if ok {
				n.items[i].val = val
				return true
			}
			if len(n.items) < t.order {
				n.insertAt(i, entry{key: cloneKey(key), val: val})
				t.size++
				return false
			}
			// Full bounding node: push out its minimum to the left
			// subtree (every left-subtree key is below the old minimum,
			// so the spill becomes that subtree's maximum).
			spill := n.removeAt(0)
			n.insertAt(i-1, entry{key: cloneKey(key), val: val})
			t.insertSpill(n, spill)
			t.size++
			return false
		}
	}
}

// attachChild creates a new child of parent at slot (which must be nil)
// holding e, then rebalances.
//
// alloc:allowed(a new tree node per split is the index's amortized growth)
func (t *TTree) attachChild(parent *node, slot **node, e entry) {
	child := &node{parent: parent, height: 1, items: []entry{e}}
	*slot = child
	t.rebalanceFrom(parent)
}

// insertSpill inserts the entry pushed out of full node n's low end: it
// becomes the maximum of n's left subtree.
func (t *TTree) insertSpill(n *node, spill entry) {
	if n.left == nil {
		t.attachChild(n, &n.left, spill)
		return
	}
	// Rightmost node of the left subtree.
	g := n.left
	for g.right != nil {
		g = g.right
	}
	if len(g.items) < t.order {
		g.insertAt(len(g.items), spill)
		return
	}
	t.attachChild(g, &g.right, spill)
}

// Delete removes key and reports whether it was present.
func (t *TTree) Delete(key []byte) bool {
	n := t.root
	for n != nil {
		switch {
		case bytes.Compare(key, n.min()) < 0:
			n = n.left
		case bytes.Compare(key, n.max()) > 0:
			n = n.right
		default:
			i, ok := n.search(key)
			if !ok {
				return false
			}
			n.removeAt(i)
			t.size--
			t.repair(n)
			return true
		}
	}
	return false
}

// repair restores node-occupancy and tree-shape invariants after a
// removal from n.
func (t *TTree) repair(n *node) {
	if !n.isLeaf() && len(n.items) < minInternalFill {
		// Borrow the closest entry from a subtree: the maximum of the
		// left subtree (greatest lower bound) or the minimum of the right
		// subtree (least upper bound).
		if n.left != nil {
			g := n.left
			for g.right != nil {
				g = g.right
			}
			n.insertAt(0, g.removeAt(len(g.items)-1))
			t.repair(g)
			return
		}
		g := n.right
		for g.left != nil {
			g = g.left
		}
		n.insertAt(len(n.items), g.removeAt(0))
		t.repair(g)
		return
	}
	if len(n.items) == 0 {
		t.unlink(n)
	}
}

// unlink removes the (empty, at-most-one-child) node n from the tree and
// rebalances. A node emptied by repair is a leaf or has exactly one
// child: internal nodes with two children always refill via repair.
func (t *TTree) unlink(n *node) {
	child := n.left
	if child == nil {
		child = n.right
	}
	if child != nil {
		child.parent = n.parent
	}
	switch {
	case n.parent == nil:
		t.root = child
	case n.parent.left == n:
		n.parent.left = child
	default:
		n.parent.right = child
	}
	if n.parent != nil {
		t.rebalanceFrom(n.parent)
	}
}

// rebalanceFrom recomputes heights and applies AVL rotations from n to
// the root.
func (t *TTree) rebalanceFrom(n *node) {
	for n != nil {
		n.recalc()
		switch b := n.balance(); {
		case b > 1:
			if n.left.balance() < 0 {
				t.rotateLeft(n.left)
			}
			n = t.rotateRight(n)
		case b < -1:
			if n.right.balance() > 0 {
				t.rotateRight(n.right)
			}
			n = t.rotateLeft(n)
		}
		n = n.parent
	}
}

// rotateRight rotates the subtree rooted at n right and returns the new
// subtree root.
func (t *TTree) rotateRight(n *node) *node {
	l := n.left
	t.replaceChild(n, l)
	n.left = l.right
	if n.left != nil {
		n.left.parent = n
	}
	l.right = n
	n.parent = l
	n.recalc()
	l.recalc()
	return l
}

// rotateLeft rotates the subtree rooted at n left and returns the new
// subtree root.
func (t *TTree) rotateLeft(n *node) *node {
	r := n.right
	t.replaceChild(n, r)
	n.right = r.left
	if n.right != nil {
		n.right.parent = n
	}
	r.left = n
	n.parent = r
	n.recalc()
	r.recalc()
	return r
}

// replaceChild points n's parent at repl instead of n.
func (t *TTree) replaceChild(n, repl *node) {
	repl.parent = n.parent
	switch {
	case n.parent == nil:
		t.root = repl
	case n.parent.left == n:
		n.parent.left = repl
	default:
		n.parent.right = repl
	}
}

// Min returns the smallest key and its value.
func (t *TTree) Min() (key []byte, val uint64, ok bool) {
	n := t.root
	if n == nil {
		return nil, 0, false
	}
	for n.left != nil {
		n = n.left
	}
	return cloneKey(n.min()), n.items[0].val, true
}

// Max returns the largest key and its value.
func (t *TTree) Max() (key []byte, val uint64, ok bool) {
	n := t.root
	if n == nil {
		return nil, 0, false
	}
	for n.right != nil {
		n = n.right
	}
	return cloneKey(n.max()), n.items[len(n.items)-1].val, true
}

// Ascend calls fn for each entry with key >= from (every entry when from
// is nil) in ascending key order, stopping when fn returns false. fn must
// not modify the tree; the key slice is only valid during the call.
func (t *TTree) Ascend(from []byte, fn func(key []byte, val uint64) bool) {
	t.ascend(t.root, from, fn)
}

func (t *TTree) ascend(n *node, from []byte, fn func([]byte, uint64) bool) bool {
	if n == nil {
		return true
	}
	// The left subtree holds only keys below n.min; skip it when the
	// lower bound already excludes them.
	if from == nil || bytes.Compare(from, n.min()) < 0 {
		if !t.ascend(n.left, from, fn) {
			return false
		}
	}
	start := 0
	if from != nil {
		start, _ = n.search(from)
	}
	for i := start; i < len(n.items); i++ {
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	// The right subtree holds only keys above n.max, all of which are at
	// or above any lower bound that reached this node.
	return t.ascend(n.right, from, fn)
}

// Descend calls fn for each entry with key <= from (every entry when from
// is nil) in descending key order, stopping when fn returns false. fn
// must not modify the tree; the key slice is only valid during the call.
func (t *TTree) Descend(from []byte, fn func(key []byte, val uint64) bool) {
	t.descend(t.root, from, fn)
}

func (t *TTree) descend(n *node, from []byte, fn func([]byte, uint64) bool) bool {
	if n == nil {
		return true
	}
	// The right subtree holds only keys above n.max; skip it when the
	// upper bound already excludes them.
	if from == nil || bytes.Compare(from, n.max()) > 0 {
		if !t.descend(n.right, from, fn) {
			return false
		}
	}
	end := len(n.items)
	if from != nil {
		i, ok := n.search(from)
		if ok {
			end = i + 1
		} else {
			end = i
		}
	}
	for i := end - 1; i >= 0; i-- {
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	// The left subtree holds only keys below n.min, all of which are at
	// or below any upper bound that reached this node.
	return t.descend(n.left, from, fn)
}

// CheckInvariants validates the tree's structural invariants: AVL
// balance, correct heights, parent links, per-node ordering, node-range
// ordering (left < min, max < right), capacity bounds, internal-node
// minimum fill, and the entry count. It exists for tests.
func (t *TTree) CheckInvariants() error {
	count := 0
	var last []byte
	haveLast := false
	var check func(n *node, parent *node) (int, error)
	check = func(n, parent *node) (int, error) {
		if n == nil {
			return 0, nil
		}
		if n.parent != parent {
			return 0, fmt.Errorf("index: bad parent pointer at node %q", n.min())
		}
		if len(n.items) == 0 {
			return 0, fmt.Errorf("index: empty node in tree")
		}
		if len(n.items) > t.order {
			return 0, fmt.Errorf("index: node over capacity: %d > %d", len(n.items), t.order)
		}
		lh, err := check(n.left, n)
		if err != nil {
			return 0, err
		}
		for i, e := range n.items {
			if haveLast && bytes.Compare(last, e.key) >= 0 {
				return 0, fmt.Errorf("index: order violation at %q (item %d)", e.key, i)
			}
			last = e.key
			haveLast = true
			count++
		}
		rh, err := check(n.right, n)
		if err != nil {
			return 0, err
		}
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if n.height != h {
			return 0, fmt.Errorf("index: stale height %d, want %d", n.height, h)
		}
		if lh-rh > 1 || rh-lh > 1 {
			return 0, fmt.Errorf("index: AVL violation: balance %d", lh-rh)
		}
		return h, nil
	}
	if _, err := check(t.root, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("index: size %d, counted %d", t.size, count)
	}
	return nil
}

// alloc:allowed(the index owns its key copies by API contract)
func cloneKey(k []byte) []byte {
	out := make([]byte, len(k))
	copy(out, k)
	return out
}
