package index

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func benchKeys(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, rng.Uint64())
		keys[i] = k
	}
	return keys
}

func BenchmarkTTreeInsert(b *testing.B) {
	keys := benchKeys(b.N, 1)
	tr := New(DefaultOrder)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i], uint64(i))
	}
}

func BenchmarkTTreeGet(b *testing.B) {
	const n = 1 << 16
	keys := benchKeys(n, 2)
	tr := New(DefaultOrder)
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Get(keys[i%n]); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkTTreeDelete(b *testing.B) {
	keys := benchKeys(b.N, 3)
	tr := New(DefaultOrder)
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Delete(keys[i])
	}
}

func BenchmarkTTreeAscend(b *testing.B) {
	const n = 1 << 16
	keys := benchKeys(n, 4)
	tr := New(DefaultOrder)
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Ascend(nil, func([]byte, uint64) bool {
			count++
			return true
		})
		if count != tr.Len() {
			b.Fatalf("visited %d", count)
		}
	}
	b.ReportMetric(float64(n), "entries/scan")
}
