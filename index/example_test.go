package index_test

import (
	"fmt"

	"mmdb/index"
)

// Example shows ordered insertion, lookup, and range iteration.
func Example() {
	tree := index.New(0)
	for i, name := range []string{"cherry", "apple", "banana", "damson"} {
		tree.Insert([]byte(name), uint64(i))
	}
	if rid, ok := tree.Get([]byte("banana")); ok {
		fmt.Println("banana ->", rid)
	}
	tree.Delete([]byte("cherry"))
	tree.Ascend([]byte("b"), func(key []byte, rid uint64) bool {
		fmt.Printf("%s (record %d)\n", key, rid)
		return true
	})
	// Output:
	// banana -> 2
	// banana (record 2)
	// damson (record 3)
}
