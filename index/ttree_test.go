package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func mustInvariants(t *testing.T, tr *TTree) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Order() != DefaultOrder {
		t.Errorf("default order = %d", tr.Order())
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Error("empty tree has size/height")
	}
	if _, ok := tr.Get(key(1)); ok {
		t.Error("Get on empty tree")
	}
	if tr.Delete(key(1)) {
		t.Error("Delete on empty tree")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree")
	}
	n := 0
	tr.Ascend(nil, func([]byte, uint64) bool { n++; return true })
	if n != 0 {
		t.Error("Ascend visited entries in empty tree")
	}
	mustInvariants(t, tr)
}

func TestInsertGetBasic(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		if replaced := tr.Insert(key(i), uint64(i*10)); replaced {
			t.Fatalf("fresh insert %d reported replace", i)
		}
		mustInvariants(t, tr)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v != uint64(i*10) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := tr.Get(key(100)); ok {
		t.Error("Get of absent key succeeded")
	}
	// Replace updates in place.
	if !tr.Insert(key(50), 999) {
		t.Error("replace not reported")
	}
	if v, _ := tr.Get(key(50)); v != 999 {
		t.Errorf("replaced value = %d", v)
	}
	if tr.Len() != 100 {
		t.Error("replace changed size")
	}
}

func TestInsertOrderIndependence(t *testing.T) {
	orders := [][]int{
		ascending(200), descending(200), shuffled(200, 1), shuffled(200, 2),
	}
	for oi, order := range orders {
		tr := New(4)
		for _, i := range order {
			tr.Insert(key(i), uint64(i))
		}
		mustInvariants(t, tr)
		var got []int
		tr.Ascend(nil, func(k []byte, v uint64) bool {
			got = append(got, int(binary.BigEndian.Uint64(k)))
			return true
		})
		if len(got) != 200 || !sort.IntsAreSorted(got) {
			t.Fatalf("order %d: ascend output wrong (%d entries)", oi, len(got))
		}
	}
}

func ascending(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func descending(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

func shuffled(n int, seed int64) []int {
	out := ascending(n)
	rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New(8)
	const n = 8192
	for i := 0; i < n; i++ {
		tr.Insert(key(i), uint64(i))
	}
	mustInvariants(t, tr)
	// 8192 entries at 8/node = 1024 nodes; AVL height ≤ 1.44·log2(1024)+1 ≈ 15.
	if h := tr.Height(); h > 16 {
		t.Errorf("height %d for %d nodes; not balanced", h, n/8)
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := New(4)
	for i := 0; i < 64; i++ {
		tr.Insert(key(i), uint64(i))
	}
	for i := 0; i < 64; i += 2 {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
		mustInvariants(t, tr)
	}
	if tr.Len() != 32 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 64; i++ {
		_, ok := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
	if tr.Delete(key(0)) {
		t.Error("double delete succeeded")
	}
	// Drain entirely.
	for i := 1; i < 64; i += 2 {
		if !tr.Delete(key(i)) {
			t.Fatalf("drain Delete(%d) failed", i)
		}
		mustInvariants(t, tr)
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Error("tree not empty after drain")
	}
}

func TestMinMax(t *testing.T) {
	tr := New(4)
	for _, i := range shuffled(100, 3) {
		tr.Insert(key(i), uint64(i))
	}
	if k, v, ok := tr.Min(); !ok || !bytes.Equal(k, key(0)) || v != 0 {
		t.Errorf("Min = %v %d %v", k, v, ok)
	}
	if k, v, ok := tr.Max(); !ok || !bytes.Equal(k, key(99)) || v != 99 {
		t.Errorf("Max = %v %d %v", k, v, ok)
	}
}

func TestAscendFrom(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i += 2 { // even keys only
		tr.Insert(key(i), uint64(i))
	}
	collect := func(from []byte, limit int) []int {
		var out []int
		tr.Ascend(from, func(k []byte, v uint64) bool {
			out = append(out, int(binary.BigEndian.Uint64(k)))
			return limit <= 0 || len(out) < limit
		})
		return out
	}
	got := collect(key(10), 5)
	want := []int{10, 12, 14, 16, 18}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("from exact key: got %v", got)
		}
	}
	// From a key between entries.
	got = collect(key(11), 3)
	want = []int{12, 14, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("from between keys: got %v", got)
		}
	}
	// Past the end.
	if got := collect(key(1000), 0); len(got) != 0 {
		t.Errorf("from past end: %v", got)
	}
	// Full scan count.
	if got := collect(nil, 0); len(got) != 50 {
		t.Errorf("full scan found %d", len(got))
	}
}

func TestDescend(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i += 2 {
		tr.Insert(key(i), uint64(i))
	}
	collect := func(from []byte, limit int) []int {
		var out []int
		tr.Descend(from, func(k []byte, v uint64) bool {
			out = append(out, int(binary.BigEndian.Uint64(k)))
			return limit <= 0 || len(out) < limit
		})
		return out
	}
	got := collect(nil, 4)
	want := []int{98, 96, 94, 92}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("descend from max: %v", got)
		}
	}
	// Inclusive exact upper bound.
	got = collect(key(10), 3)
	want = []int{10, 8, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("descend from exact key: %v", got)
		}
	}
	// Between keys.
	got = collect(key(11), 3)
	want = []int{10, 8, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("descend from between keys: %v", got)
		}
	}
	// Below the minimum: nothing.
	if got := collect([]byte{0}, 0); len(got) != 0 {
		t.Fatalf("descend below min: %v", got)
	}
	// Full reverse equals reversed full forward.
	fwd := collect(nil, 0)
	// (collect uses Descend; build forward separately.)
	var asc []int
	tr.Ascend(nil, func(k []byte, _ uint64) bool {
		asc = append(asc, int(binary.BigEndian.Uint64(k)))
		return true
	})
	if len(fwd) != len(asc) {
		t.Fatalf("lengths differ: %d vs %d", len(fwd), len(asc))
	}
	for i := range asc {
		if fwd[i] != asc[len(asc)-1-i] {
			t.Fatal("descend is not reversed ascend")
		}
	}
}

func TestKeysAreCopied(t *testing.T) {
	tr := New(4)
	k := []byte("mutable")
	tr.Insert(k, 1)
	k[0] = 'X'
	if _, ok := tr.Get([]byte("mutable")); !ok {
		t.Error("tree affected by caller mutating the key slice")
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := New(4)
	keys := []string{"", "a", "aa", "ab", "b", "ba", "z", "zz", "zzz"}
	for i, k := range keys {
		tr.Insert([]byte(k), uint64(i))
	}
	mustInvariants(t, tr)
	var got []string
	tr.Ascend(nil, func(k []byte, _ uint64) bool {
		got = append(got, string(k))
		return true
	})
	if !sort.StringsAreSorted(got) || len(got) != len(keys) {
		t.Errorf("ascend order: %q", got)
	}
}

// TestRandomizedAgainstOracle runs random insert/delete/get/scan mixes
// against a map+sort oracle, checking invariants throughout.
func TestRandomizedAgainstOracle(t *testing.T) {
	for _, order := range []int{2, 3, 8, 32} {
		order := order
		t.Run(fmt.Sprintf("order-%d", order), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(order)))
			tr := New(order)
			oracle := map[string]uint64{}
			const keySpace = 500
			for step := 0; step < 4000; step++ {
				k := key(rng.Intn(keySpace))
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // insert
					v := rng.Uint64()
					replaced := tr.Insert(k, v)
					_, existed := oracle[string(k)]
					if replaced != existed {
						t.Fatalf("step %d: replaced=%v existed=%v", step, replaced, existed)
					}
					oracle[string(k)] = v
				case 4, 5, 6: // delete
					deleted := tr.Delete(k)
					_, existed := oracle[string(k)]
					if deleted != existed {
						t.Fatalf("step %d: deleted=%v existed=%v", step, deleted, existed)
					}
					delete(oracle, string(k))
				default: // get
					v, ok := tr.Get(k)
					want, existed := oracle[string(k)]
					if ok != existed || (ok && v != want) {
						t.Fatalf("step %d: get mismatch", step)
					}
				}
				if step%200 == 0 {
					mustInvariants(t, tr)
					if tr.Len() != len(oracle) {
						t.Fatalf("step %d: size %d, oracle %d", step, tr.Len(), len(oracle))
					}
				}
			}
			mustInvariants(t, tr)
			// Final full-order comparison.
			want := make([]string, 0, len(oracle))
			for k := range oracle {
				want = append(want, k)
			}
			sort.Strings(want)
			i := 0
			tr.Ascend(nil, func(k []byte, v uint64) bool {
				if i >= len(want) || string(k) != want[i] || v != oracle[want[i]] {
					t.Fatalf("scan mismatch at %d", i)
				}
				i++
				return true
			})
			if i != len(want) {
				t.Fatalf("scan visited %d of %d", i, len(want))
			}
		})
	}
}

// TestInsertDeleteQuick is a testing/quick property: for any operation
// sequence encoded as bytes, the tree matches a map oracle.
func TestInsertDeleteQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New(3)
		oracle := map[string]uint64{}
		for _, op := range ops {
			k := key(int(op % 64))
			if op&0x8000 != 0 {
				tr.Delete(k)
				delete(oracle, string(k))
			} else {
				tr.Insert(k, uint64(op))
				oracle[string(k)] = uint64(op)
			}
		}
		if tr.CheckInvariants() != nil || tr.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := tr.Get([]byte(k))
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
