# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; `make lint` is the full static-analysis gate.

GO ?= go
MMDBLINT := bin/mmdblint

.PHONY: all build test race vet mmdblint lint lint-concurrency fmt clean crashmatrix fuzz bench trace mmdbd-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race gate CI requires: the concurrent core under the race detector.
race:
	$(GO) test -race ./internal/... ./kvstore/...

vet:
	$(GO) vet ./...

# The crash matrix: every checkpoint algorithm × every named crash point
# (internal/faultfs) × {serial, 4-worker} checkpoint/recovery pipelines
# (TestCrashMatrixParallel arms the per-worker crash points), recovered
# and checked against the committed-transaction oracle, under the race
# detector. The -tags slow soak (TestCrashMatrixSoak) multiplies seeds
# and workload length.
crashmatrix:
	$(GO) test -race -run 'TestCrash|TestCommitInDoubt|TestRecoveryParallelEquivalence' ./internal/testbed/ ./kvstore/

# The benchmark matrix: ckptbench across all eight checkpoint algorithms
# with an end-of-run crash, each run serially and with a 4-worker
# checkpoint/recovery pipeline, writing the schema'd measured-vs-analytic
# result file (commit latency quantiles, per-phase recovery times, the
# parallel-vs-serial comparison, and the run priced against the paper's
# model). CI uploads the file as an artifact. Tune BENCH_TXNS for a
# longer run, BENCH_PARALLEL for other pool widths.
BENCH_TXNS ?= 20000
BENCH_PARALLEL ?= 1,4
BENCH_SHARDS ?= 4
bench:
	$(GO) run ./cmd/ckptbench -matrix -crash -txns $(BENCH_TXNS) -parallel $(BENCH_PARALLEL) -json BENCH_ckpt.json
	$(GO) run ./cmd/ckptbench -shards $(BENCH_SHARDS) -crash -txns $(BENCH_TXNS) -append -json BENCH_ckpt.json

# A traced run: one synchronous-commit workload with every commit traced
# (SpanSampleEvery=1), exporting the flight recorder's span ring and
# lifecycle events as Chrome trace-event JSON — open TRACE_OUT in
# chrome://tracing or https://ui.perfetto.dev. Commit trees (wal_append,
# group_commit_flush, interference phases) and checkpoint trees
# (quiesce, per-segment flushes) land on per-tree tracks. Tune
# TRACE_ALG/TRACE_TXNS for other algorithms or longer tails.
TRACE_OUT ?= trace.json
TRACE_ALG ?= COUCOPY
TRACE_TXNS ?= 5000
trace:
	$(GO) run ./cmd/ckptbench -alg $(TRACE_ALG) -sync -txns $(TRACE_TXNS) -trace $(TRACE_OUT)

# End-to-end smoke of the server binary: build cmd/mmdbd, boot it on an
# ephemeral port, drive traffic through the network client (mmdb/client
# over the netproto frame protocol), then SIGTERM it and require a
# clean exit. CI runs this on every push.
mmdbd-smoke:
	$(GO) test -v -run TestMmdbdSmoke ./cmd/mmdbd/

# Short fuzz runs of the WAL reader targets; the checked-in corpus and
# seeds alone also run as part of `make test`.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFrame -fuzztime 15s ./internal/netproto/
	$(GO) test -run '^$$' -fuzz FuzzReadRecord -fuzztime 15s ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzRecover -fuzztime 15s ./internal/wal/

# mmdblint is the repo's own go/analysis suite: the syntactic analyzers
# (lockcheck, detcheck, errcheckwal, lsncheck), the flow-sensitive ones
# (walorder, lockorder, unlockcheck, goleakcheck), and the cross-package
# concurrency-discipline ones (atomiccheck, ctxcheck — the latter
# interprocedural over lint/callgraph facts). It runs as a go vet tool;
# add -json after the vettool flag for machine-readable diagnostics.
mmdblint:
	$(GO) build -o $(MMDBLINT) ./cmd/mmdblint

# Just the three concurrency-discipline analyzers (goroutine lifecycle,
# atomics, context propagation) — the fast loop while working on
# concurrent code.
lint-concurrency: mmdblint
	$(GO) vet -vettool=$(abspath $(MMDBLINT)) -goleakcheck -atomiccheck -ctxcheck ./...

# The hot-path allocation discipline: the alloccheck sweep (every
# function reachable from a perf:hotpath root allocation-free or
# reasoned), then the AllocsPerRun guards that pin the certified paths
# at runtime. The compiler oracle (go build -gcflags=-m agreement) is
# deliberately excluded here — it tracks toolchain drift and runs as an
# allow-failure CI job instead.
lint-perf: mmdblint
	$(GO) vet -vettool=$(abspath $(MMDBLINT)) -alloccheck ./...
	$(GO) test -run 'TestRepo|Allocation' ./lint/alloccheck/ ./internal/engine/ ./internal/wal/ ./kvstore/

# ./... covers examples/ too — the example programs are held to the same
# invariants as the engine.
lint: vet mmdblint
	$(GO) vet -vettool=$(abspath $(MMDBLINT)) ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it)"; \
	fi
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

clean:
	rm -rf bin
