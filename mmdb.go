// Package mmdb is a memory-resident database with asynchronous
// checkpointing, reproducing Kenneth Salem and Hector Garcia-Molina,
// "Checkpointing Memory-Resident Databases" (Princeton CS-TR-126-87 /
// ICDE 1989).
//
// The database holds fixed-size records entirely in main memory; for
// crash recovery it maintains a redo-only log and two ping-pong backup
// copies on disk, updated continuously by one of six checkpoint
// algorithms from the paper:
//
//	FUZZYCOPY  fuzzy checkpoints through an I/O buffer with LSN checks
//	FASTFUZZY  direct fuzzy flushes (requires a stable log tail)
//	2CFLUSH    Pu's black/white locking, flush while locked
//	2CCOPY     Pu's black/white locking, copy then flush
//	COUFLUSH   copy-on-update snapshots, flush while latched
//	COUCOPY    copy-on-update snapshots, copy then flush
//
// Typical use:
//
//	db, err := mmdb.Open(mmdb.Config{
//		Dir:         dir,
//		NumRecords:  1 << 20,
//		RecordBytes: 128,
//		Algorithm:   mmdb.COUCopy,
//	})
//	...
//	err = db.Exec(func(tx *mmdb.Txn) error {
//		v, err := tx.Read(42)
//		if err != nil {
//			return err
//		}
//		return tx.Write(42, mutate(v))
//	})
//
// After a crash, mmdb.Recover (or mmdb.OpenOrRecover) rebuilds the
// in-memory database from the newest complete backup copy plus the log.
//
// The companion packages mmdb/analytic and mmdb/sim implement the paper's
// analytic performance model and a discrete-event simulator; see DESIGN.md
// and EXPERIMENTS.md for the reproduced figures.
package mmdb

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"mmdb/analytic"
	"mmdb/internal/engine"
	"mmdb/internal/obs"
)

// Errors surfaced by the database. ErrCheckpointConflict aborts a
// transaction that touched both colors during a two-color checkpoint; the
// transaction should simply be retried (Exec does so automatically).
var (
	ErrCheckpointConflict        = engine.ErrCheckpointConflict
	ErrTxnDone                   = engine.ErrTxnDone
	ErrStopped                   = engine.ErrStopped
	ErrDeadlock                  = engine.ErrDeadlock
	ErrExistingDatabase          = engine.ErrExistingDatabase
	ErrLogicalLoggingUnsupported = engine.ErrLogicalLoggingUnsupported
	ErrUnknownOperation          = engine.ErrUnknownOperation
	ErrCommitInDoubt             = engine.ErrCommitInDoubt
)

// Logical (operation) logging: with a copy-on-update checkpoint algorithm
// the log may carry operations instead of after images (the paper's
// Section 3.2 advantage of consistent backups). OpCode identifies an
// operation; OpFunc applies one to a record image in place.
type (
	OpCode = engine.OpCode
	OpFunc = engine.OpFunc
)

// Built-in logical operations.
const (
	// OpAdd64 adds an 8-byte two's-complement delta to the little-endian
	// uint64 at offset 0 of the record.
	OpAdd64 = engine.OpAdd64
	// OpStoreAt overwrites part of a record (operand: 2-byte offset +
	// bytes).
	OpStoreAt = engine.OpStoreAt
)

// Add64Operand encodes a delta for OpAdd64.
func Add64Operand(delta int64) []byte { return engine.Add64Operand(delta) }

// StoreAtOperand encodes an offset+bytes operand for OpStoreAt.
func StoreAtOperand(offset int, data []byte) []byte { return engine.StoreAtOperand(offset, data) }

// Stats is a snapshot of engine activity counters; see the field
// documentation in the engine package.
type Stats = engine.Stats

// CheckpointResult summarizes one completed checkpoint.
type CheckpointResult = engine.CheckpointResult

// RecoveryReport describes what crash recovery did.
type RecoveryReport = engine.RecoveryReport

// DB is an open memory-resident database.
type DB struct {
	e   *engine.Engine
	cfg Config
}

// Open creates a new database in cfg.Dir. It fails with
// ErrExistingDatabase if the directory already holds recoverable state.
func Open(cfg Config) (*DB, error) {
	p, err := cfg.engineParams()
	if err != nil {
		return nil, err
	}
	e, err := engine.Open(p)
	if err != nil {
		return nil, err
	}
	return &DB{e: e, cfg: cfg}, nil
}

// Recover rebuilds the database in cfg.Dir from its backup copies and log
// after a crash, returning the running database and a recovery report.
// It is RecoverContext with context.Background().
func Recover(cfg Config) (*DB, *RecoveryReport, error) {
	return RecoverContext(context.Background(), cfg)
}

// RecoverContext is Recover with cancellation: ctx is observed between
// backup segments and between log records, never mid-segment or
// mid-record. A cancelled recovery returns ctx's error and leaves the
// on-disk state recoverable — re-running recovery later is always safe.
func RecoverContext(ctx context.Context, cfg Config) (*DB, *RecoveryReport, error) {
	p, err := cfg.engineParams()
	if err != nil {
		return nil, nil, err
	}
	e, rep, err := engine.RecoverContext(ctx, p)
	if err != nil {
		return nil, nil, err
	}
	return &DB{e: e, cfg: cfg}, rep, nil
}

// OpenOrRecover opens a fresh database, or recovers an existing one. The
// report is nil when a fresh database was created. It is
// OpenOrRecoverContext with context.Background().
func OpenOrRecover(cfg Config) (*DB, *RecoveryReport, error) {
	return OpenOrRecoverContext(context.Background(), cfg)
}

// OpenOrRecoverContext is OpenOrRecover with cancellation of the
// recovery path; opening a fresh database is quick and not cancellable.
func OpenOrRecoverContext(ctx context.Context, cfg Config) (*DB, *RecoveryReport, error) {
	db, err := Open(cfg)
	if err == nil {
		return db, nil, nil
	}
	if !errors.Is(err, ErrExistingDatabase) {
		return nil, nil, err
	}
	return RecoverContext(ctx, cfg)
}

// Begin starts a transaction. The returned Txn must be finished with
// Commit or Abort and used from a single goroutine.
func (db *DB) Begin() (*Txn, error) {
	tx, err := db.e.Begin()
	if err != nil {
		return nil, err
	}
	return &Txn{inner: tx}, nil
}

// Exec runs fn in a transaction, committing on nil return and retrying
// automatically when a checkpoint conflict or deadlock timeout aborts it.
// It is ExecContext with context.Background().
func (db *DB) Exec(fn func(tx *Txn) error) error {
	return db.ExecContext(context.Background(), fn)
}

// ExecContext is Exec with cancellation: ctx is observed before the first
// attempt and between automatic retries, so a transaction restarted
// indefinitely by checkpoint conflicts or deadlock timeouts can be
// abandoned. An attempt already executing is never interrupted mid-flight.
func (db *DB) ExecContext(ctx context.Context, fn func(tx *Txn) error) error {
	return db.e.ExecContext(ctx, func(inner *engine.Txn) error {
		return fn(&Txn{inner: inner})
	})
}

// Checkpoint runs one checkpoint to completion and returns its summary.
// Checkpoints serialize; with AutoCheckpoint enabled this queues behind
// the loop's current checkpoint. It is CheckpointContext with
// context.Background().
func (db *DB) Checkpoint() (*CheckpointResult, error) {
	return db.e.Checkpoint()
}

// CheckpointContext is Checkpoint with cancellation: ctx is observed
// between segments (serial sweeps) and between worker batches (parallel
// sweeps). A cancelled checkpoint leaves the target backup copy
// incomplete — the same state a crash mid-checkpoint leaves — and
// recovery falls back to the other ping-pong copy.
func (db *DB) CheckpointContext(ctx context.Context) (*CheckpointResult, error) {
	return db.e.CheckpointContext(ctx)
}

// StartCheckpointLoop begins continuous checkpointing at the configured
// interval (back-to-back if zero).
func (db *DB) StartCheckpointLoop() { db.e.StartCheckpointLoop() }

// StopCheckpointLoop halts continuous checkpointing, waiting for an
// in-progress checkpoint.
func (db *DB) StopCheckpointLoop() { db.e.StopCheckpointLoop() }

// ExecWrite commits a single-record update as one transaction without
// the closure of Exec: begin, write, commit, with the engine recycling
// the transaction object. Retries on checkpoint conflicts and
// deadlocks, like Exec.
//
// perf:hotpath(closure-free single-record write+commit)
func (db *DB) ExecWrite(rid uint64, data []byte) error {
	return db.e.ExecWrite(rid, data)
}

// ReadRecord returns the committed value of record rid without
// transactional isolation (use a Txn for isolated reads).
func (db *DB) ReadRecord(rid uint64) ([]byte, error) {
	buf := make([]byte, db.e.RecordBytes())
	if err := db.e.ReadRecord(rid, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadRecordInto reads the committed value of record rid into dst,
// which must be at least RecordBytes long. It is ReadRecord without the
// allocation: the caller owns and reuses the buffer.
//
// perf:hotpath(allocation-free committed read into a caller buffer)
func (db *DB) ReadRecordInto(rid uint64, dst []byte) error {
	return db.e.ReadRecord(rid, dst)
}

// Stats returns a snapshot of activity counters.
func (db *DB) Stats() Stats { return db.e.Stats() }

// Observability types, re-exported from the internal obs package: the
// per-database metrics registry (atomic counters, gauges, and lock-free
// latency histograms), the lifecycle-event records its tracer dumps, the
// causal latency-attribution spans, and the watchdog's slow-op captures.
type (
	MetricsRegistry = obs.Registry
	TraceEvent      = obs.Event
	Span            = obs.Span
	SlowOp          = obs.SlowOp
)

// Metrics returns an http.Handler serving the database's metrics:
// Prometheus text format by default, JSON with ?format=json (add
// &events=1 for the lifecycle-event ring, &spans=1 for the span ring,
// &slow=1 for watchdog captures), and Chrome trace-event JSON with
// ?format=chrome (load it in chrome://tracing or Perfetto). Mount it on
// any mux, e.g. http.Handle("/metrics", db.Metrics()).
func (db *DB) Metrics() http.Handler {
	return obs.Handler(db.e.MetricsRegistry(), db.e.Tracer(), db.e.Spans(), db.e.Watchdog())
}

// Spans dumps the completed latency-attribution spans currently retained
// by the engine's span ring: sampled commit trees (lock-wait, WAL-append,
// group-commit-flush, and checkpoint-interference phases) plus every
// checkpoint and recovery tree, oldest first.
func (db *DB) Spans() []Span { return db.e.SpanEvents() }

// SlowOps returns the slow-op watchdog's retained captures — operations
// that exceeded their configured threshold, each with the offending span
// tree — slowest first. Empty unless SlowOpCommitThreshold or
// SlowOpCheckpointThreshold is set.
func (db *DB) SlowOps() []SlowOp { return db.e.SlowOps() }

// MetricsRegistry returns the database's metrics registry. Callers may
// register their own mmdb_-prefixed metrics alongside the engine's
// (kvstore registers its operation latencies here).
func (db *DB) MetricsRegistry() *MetricsRegistry { return db.e.MetricsRegistry() }

// TraceEvents dumps the lifecycle events currently retained by the
// engine's bounded tracer (transaction begin/commit/abort/restart,
// checkpoint begin/segment/end, compaction, recovery phases), oldest
// first. Cheap enough to call for postmortems on a live database.
func (db *DB) TraceEvents() []TraceEvent { return db.e.TraceEvents() }

// MeasuredCounts converts the database's activity counters into the
// analytic model's Counts, for pricing a live run in the paper's
// instructions-per-transaction metric via analytic.MeasuredOverhead.
func (db *DB) MeasuredCounts() analytic.Counts {
	st := db.Stats()
	cfg := db.cfg.withDefaults()
	return analytic.Counts{
		TxnsCommitted:      st.TxnsCommitted,
		ColorAborts:        st.ColorRestarts,
		RecordsWritten:     st.RecordsWritten,
		SegmentsFlushed:    st.SegmentsFlushed,
		LSNWaits:           st.LSNWaits,
		CheckpointerCopies: st.CheckpointerCopies,
		COUCopies:          st.COUCopies,
		ZigzagFlips:        st.ZigzagFlips,
		Checkpoints:        st.Checkpoints,
		SegmentsTotal:      uint64(db.NumSegments()),
		SegmentWords:       float64(cfg.SegmentBytes) / 4,
		Algorithm:          db.cfg.Algorithm,
		Full:               db.cfg.FullCheckpoints,
		StableTail:         db.cfg.StableLogTail,
	}
}

// NumRecords returns the database's record count.
func (db *DB) NumRecords() int { return db.e.NumRecords() }

// RecordBytes returns the record size in bytes.
func (db *DB) RecordBytes() int { return db.e.RecordBytes() }

// NumSegments returns the number of checkpoint segments.
func (db *DB) NumSegments() int { return db.e.NumSegments() }

// Dir returns the database directory.
func (db *DB) Dir() string { return db.e.Dir() }

// Config returns the configuration the database was opened with.
func (db *DB) Config() Config { return db.cfg }

// Close stops checkpointing, flushes the log, and closes the files.
func (db *DB) Close() error { return db.e.Close() }

// Crash simulates a system failure: volatile state (the in-memory
// database and, without a stable tail, the unflushed log) is discarded,
// leaving only the on-disk backup copies and durable log for Recover. It
// exists for recovery testing and demonstrations.
func (db *DB) Crash() error { return db.e.Crash() }

// String implements fmt.Stringer.
func (db *DB) String() string {
	return fmt.Sprintf("mmdb.DB{%v, %d records × %dB}", db.cfg.Algorithm, db.NumRecords(), db.RecordBytes())
}

// Txn is a shadow-copy transaction: reads see committed state (plus the
// transaction's own writes); writes are buffered and installed atomically
// at Commit. Redo-only logging makes Commit durable per the configured
// commit mode.
type Txn struct {
	inner *engine.Txn
}

// ID returns the transaction identifier.
func (tx *Txn) ID() uint64 { return tx.inner.ID() }

// Read returns a copy of record rid as this transaction sees it.
func (tx *Txn) Read(rid uint64) ([]byte, error) { return tx.inner.Read(rid) }

// Write stages an update of record rid (≤ RecordBytes; shorter images are
// zero-padded on install).
func (tx *Txn) Write(rid uint64, data []byte) error { return tx.inner.Write(rid, data) }

// ApplyOp stages a logical update: the operation is applied to the
// transaction's view immediately, but the log carries only the operation
// code and operand. Requires a copy-on-update algorithm (COUFlush or
// COUCopy); other algorithms return ErrLogicalLoggingUnsupported.
func (tx *Txn) ApplyOp(rid uint64, code OpCode, operand []byte) error {
	return tx.inner.ApplyOp(rid, code, operand)
}

// Commit installs the transaction's updates and releases its locks.
func (tx *Txn) Commit() error { return tx.inner.Commit() }

// Abort abandons the transaction.
func (tx *Txn) Abort() { tx.inner.Abort() }
