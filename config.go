package mmdb

import (
	"fmt"
	"path/filepath"
	"time"

	"mmdb/analytic"
	"mmdb/internal/engine"
	"mmdb/internal/faultfs"
	"mmdb/internal/simdisk"
	"mmdb/internal/storage"
)

// Algorithm selects a checkpoint algorithm; it is shared with the
// analytic model and simulator packages.
type Algorithm = analytic.Algorithm

// The eight checkpoint algorithms: the paper's six plus the ZIGZAG and
// HOURGLASS extensions (see the package documentation).
const (
	FuzzyCopy     = analytic.FuzzyCopy
	FastFuzzy     = analytic.FastFuzzy
	TwoColorFlush = analytic.TwoColorFlush
	TwoColorCopy  = analytic.TwoColorCopy
	COUFlush      = analytic.COUFlush
	COUCopy       = analytic.COUCopy
	Zigzag        = analytic.Zigzag
	Hourglass     = analytic.Hourglass
)

// Algorithms lists every algorithm in the paper's presentation order,
// derived from the engine's enumeration so the two cannot drift: every
// algorithm the engine implements must have an analytic counterpart with
// the same paper name, or init panics.
var Algorithms = func() []Algorithm {
	engAlgs := engine.AllAlgorithms()
	algs := make([]Algorithm, len(engAlgs))
	for i, ea := range engAlgs {
		a, err := analytic.Parse(ea.String())
		if err != nil {
			panic(fmt.Sprintf("mmdb: engine algorithm %v has no analytic counterpart: %v", ea, err))
		}
		algs[i] = a
	}
	return algs
}()

// ParseAlgorithm resolves a case-insensitive paper name ("COUCOPY",
// "2cflush", ...) to an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) { return analytic.Parse(name) }

// Config describes a database. Dir, NumRecords, RecordBytes and Algorithm
// are required; everything else has sensible defaults.
type Config struct {
	// Dir is the directory holding the redo log and the two backup
	// database copies.
	Dir string

	// NumRecords is the number of fixed-size records.
	NumRecords int
	// RecordBytes is the record size (the paper's S_rec).
	RecordBytes int
	// SegmentBytes is the checkpoint transfer unit (the paper's S_seg); it
	// must be a multiple of RecordBytes. Default: 256 records per segment.
	SegmentBytes int

	// Algorithm selects the checkpoint algorithm.
	Algorithm Algorithm
	// FullCheckpoints writes every segment each checkpoint instead of only
	// those dirtied since the target copy's previous checkpoint.
	FullCheckpoints bool
	// StableLogTail simulates stable RAM holding the unflushed log: every
	// commit is durable immediately and FASTFUZZY becomes legal.
	StableLogTail bool

	// SyncCommit makes Commit wait for log durability. Default is the
	// paper's asynchronous group commit: commits return once logged in
	// memory, and durability follows within GroupCommitInterval (or at the
	// next checkpoint's write-ahead flush).
	SyncCommit bool
	// GroupCommitInterval is the background log-flush period. Zero
	// disables the background flusher.
	GroupCommitInterval time.Duration
	// SyncOnFlush fsyncs the log file on each flush.
	SyncOnFlush bool

	// CheckpointInterval is the begin-to-begin checkpoint period for the
	// checkpoint loop; zero checkpoints back-to-back.
	CheckpointInterval time.Duration
	// AutoCheckpoint starts the checkpoint loop on Open/Recover.
	AutoCheckpoint bool
	// CheckpointDirtyFraction, when in (0,1], makes the checkpoint loop
	// start early once that fraction of segments is dirty for the next
	// backup copy, bounding checkpoint size under bursty loads while
	// CheckpointInterval bounds the recovery log span.
	CheckpointDirtyFraction float64

	// LockTimeout bounds lock waits (deadlock resolution); expired waits
	// abort the transaction with ErrDeadlock.
	LockTimeout time.Duration

	// Operations registers custom logical operations for Txn.ApplyOp
	// (codes must not collide with the built-ins). Recovery replays
	// logical records, so pass the same map when reopening the database.
	Operations map[OpCode]OpFunc

	// DisableLogCompaction keeps the whole log on disk instead of dropping
	// the head no recovery can need after each checkpoint.
	DisableLogCompaction bool

	// CheckpointParallelism is the number of concurrent segment copy/flush
	// workers each checkpoint sweep fans out to. Zero resolves to
	// min(GOMAXPROCS, 8); 1 runs the original serial sweeps. Each
	// algorithm's per-segment protocol is preserved — only the write-ahead
	// LSN wait and the ping-pong metadata commit are shared barriers (see
	// DESIGN.md §15).
	CheckpointParallelism int

	// RecoveryParallelism is the number of concurrent backup-load stripe
	// readers and partitioned redo-apply workers recovery uses. Zero
	// resolves to min(GOMAXPROCS, 8); 1 recovers serially. The recovered
	// image is byte-identical at any setting.
	RecoveryParallelism int

	// HourglassWindow is the HOURGLASS old-copy window W: the number of
	// preallocated segment buffers available to writers for old-version
	// preservation. Writers needing a buffer when all W are in use wait
	// for the checkpointer to free one. Zero resolves to the engine
	// default (4); ignored by every other algorithm.
	HourglassWindow int

	// ThrottleCheckpointIO paces checkpoint segment writes as if they went
	// to the paper's disk bank (Table 2b: 30 ms seek, 3 µs/word, 20
	// disks), with the modeled delays divided by ThrottleSpeedup. It lets
	// experiments reproduce the paper's checkpoint-duration arithmetic on
	// local files. Zero speedup with throttling enabled means 1 (real
	// modeled time).
	ThrottleCheckpointIO bool
	ThrottleSpeedup      float64

	// ThrottlePerStream, with ThrottleCheckpointIO, charges each flushing
	// worker the full single-device service time instead of the
	// fully-overlapped bank share: K checkpoint workers then model K
	// synchronous disk streams, which is how parallel checkpoints buy
	// bandwidth from the bank (see engine.Throttle.PerStream).
	ThrottlePerStream bool

	// FS, when non-nil, is the filesystem the log and backup copies are
	// written through. Crash tests inject a faultfs.Injector here (see
	// internal/faultfs); nil means the OS directly.
	FS FS

	// CheckpointSegmentHook, if set, runs after the checkpointer finishes
	// each segment; returning an error aborts that checkpoint. worker is
	// the sweep worker that processed the segment (always 0 when
	// CheckpointParallelism is 1). It exists for fault injection (crashing
	// between segment flushes).
	CheckpointSegmentHook func(checkpointID uint64, worker, segIdx int) error

	// SpanSampleEvery samples the latency-attribution span tracer: one in
	// every SpanSampleEvery transactions records a full commit span tree
	// (lock waits, WAL append, group-commit flush, checkpoint
	// interference), exportable as a Chrome trace via ?format=chrome or
	// `mmdbctl trace`. Zero resolves to the engine default (8); 1 traces
	// every transaction; negative disables span tracing. Checkpoint and
	// recovery spans are always recorded. The mmdb_commit_attr_* phase
	// histograms are unaffected by sampling.
	SpanSampleEvery int

	// SlowOpCommitThreshold arms the slow-op watchdog: a commit slower
	// than this captures a flight-recorder dump of its span tree,
	// retrievable via DB.SlowOps or the metrics endpoint's ?slow=1. Zero
	// disables the commit watchdog.
	SlowOpCommitThreshold time.Duration

	// SlowOpCheckpointThreshold is the watchdog threshold for whole
	// checkpoints. Zero disables the checkpoint watchdog.
	SlowOpCheckpointThreshold time.Duration

	// Shards hash-partitions the keyspace across this many independent
	// engines, each with its own subdirectory (shard-000, shard-001, ...),
	// WAL, lock manager, and staggered checkpoint loop. 0 and 1 both mean
	// a single unsharded engine with the exact on-disk layout of earlier
	// versions (no subdirectory). Values above 1 are driven by the shard
	// router (internal/shard, served by cmd/mmdbd); DB.Open itself runs
	// one engine and rejects them. NumRecords must divide evenly across
	// the shards. Derive each shard's engine config with ShardConfig.
	Shards int

	// CheckpointStagger delays the checkpoint loop's first checkpoint,
	// phase-shifting otherwise identical schedules. The shard router
	// derives it per shard as shard*CheckpointInterval/Shards so N
	// shards hit the backup device at evenly spaced offsets;
	// single-engine configs rarely set it.
	CheckpointStagger time.Duration
}

// FS is the filesystem abstraction the storage layer writes through,
// re-exported for fault-injection tests (see internal/faultfs).
type FS = faultfs.FS

// DefaultRecordsPerSegment sizes segments when SegmentBytes is zero.
const DefaultRecordsPerSegment = 256

// withDefaults fills defaulted fields.
func (c Config) withDefaults() Config {
	if c.SegmentBytes == 0 {
		c.SegmentBytes = c.RecordBytes * DefaultRecordsPerSegment
	}
	return c
}

// Validate checks the configuration without opening anything: geometry,
// algorithm (including the FASTFUZZY stable-tail requirement), intervals,
// parallelism, throttle, sharding, and operation registrations. Open and
// Recover run the same checks; calling Validate first lets callers fail
// fast on assembled configs before touching the directory.
func (c Config) Validate() error {
	if c.Shards > 1 {
		// A sharded config is valid iff each derived per-shard config
		// is; shard 0 stands for all of them (they differ only in Dir
		// and stagger).
		sc, err := c.ShardConfig(0)
		if err != nil {
			return err
		}
		_, err = sc.engineParams()
		return err
	}
	_, err := c.engineParams()
	return err
}

// ShardDirName is the subdirectory of Config.Dir holding one shard's
// engine state (log + backup copies) when Shards > 1.
func ShardDirName(shard int) string { return fmt.Sprintf("shard-%03d", shard) }

// ShardConfig derives the single-engine configuration of one shard: its
// own subdirectory, an even slice of the records, and a checkpoint
// schedule phase-shifted by shard*CheckpointInterval/Shards. With
// Shards <= 1 it returns c unchanged (same Dir, same layout), so a
// sharded caller over a Shards:1 config is byte-compatible with the
// plain single-engine database.
func (c Config) ShardConfig(shard int) (Config, error) {
	if c.Shards < 0 {
		return Config{}, fmt.Errorf("mmdb: negative Shards %d", c.Shards)
	}
	n := c.Shards
	if n <= 1 {
		if shard != 0 {
			return Config{}, fmt.Errorf("mmdb: shard %d of an unsharded config", shard)
		}
		c.Shards = 0
		return c, nil
	}
	if shard < 0 || shard >= n {
		return Config{}, fmt.Errorf("mmdb: shard %d out of range [0,%d)", shard, n)
	}
	if c.NumRecords%n != 0 {
		return Config{}, fmt.Errorf("mmdb: NumRecords %d does not divide across %d shards", c.NumRecords, n)
	}
	sc := c
	sc.Shards = 0
	sc.Dir = filepath.Join(c.Dir, ShardDirName(shard))
	sc.NumRecords = c.NumRecords / n
	sc.CheckpointStagger = time.Duration(shard) * c.CheckpointInterval / time.Duration(n)
	return sc, nil
}

// engineAlgorithm maps the public algorithm enumeration to the engine's.
func engineAlgorithm(a Algorithm) (engine.Algorithm, error) {
	switch a {
	case FuzzyCopy:
		return engine.FuzzyCopy, nil
	case FastFuzzy:
		return engine.FastFuzzy, nil
	case TwoColorFlush:
		return engine.TwoColorFlush, nil
	case TwoColorCopy:
		return engine.TwoColorCopy, nil
	case COUFlush:
		return engine.COUFlush, nil
	case COUCopy:
		return engine.COUCopy, nil
	case Zigzag:
		return engine.Zigzag, nil
	case Hourglass:
		return engine.Hourglass, nil
	default:
		return 0, fmt.Errorf("mmdb: unknown algorithm %v", a)
	}
}

// engineParams converts the public configuration to engine parameters.
func (c Config) engineParams() (engine.Params, error) {
	c = c.withDefaults()
	if c.Shards < 0 {
		return engine.Params{}, fmt.Errorf("mmdb: negative Shards %d", c.Shards)
	}
	if c.Shards > 1 {
		return engine.Params{}, fmt.Errorf("mmdb: Shards %d: a DB is one engine; open sharded configs through the shard router (cmd/mmdbd or ShardConfig per shard)", c.Shards)
	}
	alg, err := engineAlgorithm(c.Algorithm)
	if err != nil {
		return engine.Params{}, err
	}
	p := engine.Params{
		Dir: c.Dir,
		Storage: storage.Config{
			NumRecords:   c.NumRecords,
			RecordBytes:  c.RecordBytes,
			SegmentBytes: c.SegmentBytes,
		},
		Algorithm:               alg,
		Full:                    c.FullCheckpoints,
		StableTail:              c.StableLogTail,
		SyncCommit:              c.SyncCommit,
		LogFlushInterval:        c.GroupCommitInterval,
		CheckpointInterval:      c.CheckpointInterval,
		AutoCheckpoint:          c.AutoCheckpoint,
		LockTimeout:             c.LockTimeout,
		SyncOnFlush:             c.SyncOnFlush,
		Operations:              c.Operations,
		DisableLogCompaction:    c.DisableLogCompaction,
		CheckpointDirtyFraction: c.CheckpointDirtyFraction,
		CheckpointParallelism:   c.CheckpointParallelism,
		RecoveryParallelism:     c.RecoveryParallelism,
		HourglassWindow:         c.HourglassWindow,
		FS:                      c.FS,
		SegmentHook:             c.CheckpointSegmentHook,

		SpanSampleEvery:           c.SpanSampleEvery,
		SlowOpCommitThreshold:     c.SlowOpCommitThreshold,
		SlowOpCheckpointThreshold: c.SlowOpCheckpointThreshold,
		CheckpointStagger:         c.CheckpointStagger,
	}
	if c.ThrottleCheckpointIO {
		speedup := c.ThrottleSpeedup
		if speedup == 0 {
			speedup = 1
		}
		p.CheckpointThrottle = &engine.Throttle{
			Disks:     simdisk.Default(),
			Speedup:   speedup,
			PerStream: c.ThrottlePerStream,
		}
	}
	if err := p.Validate(); err != nil {
		return engine.Params{}, err
	}
	return p, nil
}
