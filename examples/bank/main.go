// Bank: concurrent transfer transactions under continuous checkpointing,
// repeatedly crashed and recovered. The sum of all balances is invariant
// under transfers, so any violation of transaction atomicity across a
// crash is immediately visible.
//
// This is the motivating scenario of the paper's fuzzy-checkpoint
// discussion (Section 3.1): a transfer updates two records; a fuzzy
// checkpoint may capture one and miss the other, and recovery must repair
// the difference from the redo log.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"mmdb"
	"mmdb/workload"
)

const (
	accounts       = 512
	initialBalance = 1_000
	transferors    = 4
	transfersEach  = 500
	crashCycles    = 3
)

func main() {
	dir, err := os.MkdirTemp("", "mmdb-bank-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := mmdb.Config{
		Dir:                dir,
		NumRecords:         accounts,
		RecordBytes:        32,
		Algorithm:          mmdb.FuzzyCopy, // fuzzy backups: recovery must repair them
		SyncCommit:         true,
		AutoCheckpoint:     true,
		CheckpointInterval: 0, // back-to-back, maximum fuzz
	}

	bank, err := workload.NewBank(accounts, cfg.RecordBytes, initialBalance, 42)
	if err != nil {
		log.Fatal(err)
	}

	db, err := mmdb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Exec(func(tx *mmdb.Txn) error { return bank.InitTxn(tx) }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bank open: %d accounts × %d, expected total %d\n",
		accounts, initialBalance, bank.ExpectedTotal())

	for cycle := 1; cycle <= crashCycles; cycle++ {
		var wg sync.WaitGroup
		for w := 0; w < transferors; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < transfersEach; i++ {
					from, to, amt := bank.RandomTransfer()
					err := db.Exec(func(tx *mmdb.Txn) error {
						return bank.Transfer(tx, from, to, amt)
					})
					if err != nil {
						log.Printf("transfer: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()

		st := db.Stats()
		fmt.Printf("cycle %d: %d txns committed, %d checkpoints, %d segments flushed — crashing\n",
			cycle, st.TxnsCommitted, st.Checkpoints, st.SegmentsFlushed)
		if err := db.Crash(); err != nil {
			log.Fatal(err)
		}

		var rep *mmdb.RecoveryReport
		db, rep, err = mmdb.Recover(cfg)
		if err != nil {
			log.Fatal(err)
		}
		total, err := bank.Total(db.ReadRecord)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if total != bank.ExpectedTotal() {
			status = "VIOLATED"
		}
		fmt.Printf("cycle %d: recovered (ckpt %d, %d updates replayed); total %d — invariant %s\n",
			cycle, rep.CheckpointID, rep.UpdatesApplied, total, status)
		if status != "OK" {
			os.Exit(1)
		}
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all cycles passed: transfers stayed atomic across every crash")

	logicalPhase()
}

// logicalPhase repeats the experiment with copy-on-update checkpoints and
// logical (operation) logging: each transfer logs two 8-byte deltas
// instead of two full record images — the log-volume advantage of
// consistent backups the paper points out in Section 3.2.
func logicalPhase() {
	dir, err := os.MkdirTemp("", "mmdb-bank-logical-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := mmdb.Config{
		Dir:                dir,
		NumRecords:         accounts,
		RecordBytes:        32,
		Algorithm:          mmdb.COUCopy, // logical logging needs consistent backups
		SyncCommit:         true,
		AutoCheckpoint:     true,
		CheckpointInterval: 0,
	}
	db, err := mmdb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bank, err := workload.NewBank(accounts, cfg.RecordBytes, initialBalance, 43)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Exec(func(tx *mmdb.Txn) error { return bank.InitTxn(tx) }); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < transferors*transfersEach; i++ {
		from, to, amt := bank.RandomTransfer()
		err := db.Exec(func(tx *mmdb.Txn) error {
			// Pure delta transfer: two operation records, no images. (No
			// overdraft check — the invariant is the sum, and deltas
			// cancel exactly.)
			if err := tx.ApplyOp(from, mmdb.OpAdd64, mmdb.Add64Operand(-amt)); err != nil {
				return err
			}
			return tx.ApplyOp(to, mmdb.OpAdd64, mmdb.Add64Operand(amt))
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	st := db.Stats()
	if err := db.Crash(); err != nil {
		log.Fatal(err)
	}
	db2, rep, err := mmdb.Recover(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := db2.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	total, err := bank.Total(db2.ReadRecord)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlogical-logging phase: %d transfers as OpAdd64 deltas (%d logical records), "+
		"%d replayed at recovery; total %d — invariant %s\n",
		transferors*transfersEach, st.LogicalOps, rep.LogicalReplayed, total,
		map[bool]string{true: "OK", false: "VIOLATED"}[total == bank.ExpectedTotal()])
	if total != bank.ExpectedTotal() {
		os.Exit(1)
	}
}
