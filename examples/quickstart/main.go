// Quickstart: open a memory-resident database, commit transactions, take a
// checkpoint, crash, and recover — the full lifecycle of the paper's
// system in one page.
package main

import (
	"fmt"
	"log"
	"os"

	"mmdb"
)

func main() {
	dir, err := os.MkdirTemp("", "mmdb-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := mmdb.Config{
		Dir:         dir,
		NumRecords:  4096,
		RecordBytes: 64,
		Algorithm:   mmdb.COUCopy, // transaction-consistent backups at fuzzy cost
		SyncCommit:  true,
	}
	db, err := mmdb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("opened", db)

	// A read-modify-write transaction; Exec commits on nil return and
	// retries automatically if a checkpoint conflict aborts it.
	err = db.Exec(func(tx *mmdb.Txn) error {
		if err := tx.Write(1, []byte("alpha")); err != nil {
			return err
		}
		v, err := tx.Read(1) // sees its own write
		if err != nil {
			return err
		}
		return tx.Write(2, append(v[:5:5], []byte("-beta")...))
	})
	if err != nil {
		log.Fatal(err)
	}

	// Checkpoint: the backup database on disk catches up asynchronously.
	res, err := db.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint %d (%v) flushed %d segments into copy %d\n",
		res.ID, res.Algorithm, res.SegmentsFlushed, res.TargetCopy)

	// One more committed transaction after the checkpoint: recovery must
	// replay it from the redo log.
	if err := db.Exec(func(tx *mmdb.Txn) error {
		return tx.Write(3, []byte("post-checkpoint"))
	}); err != nil {
		log.Fatal(err)
	}

	// Crash: the primary (in-memory) database is gone.
	if err := db.Crash(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("crashed: memory lost; backup copies and log remain")

	// Recover: newest complete backup copy + forward redo scan.
	db2, rep, err := mmdb.Recover(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := db2.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Printf("recovered from checkpoint %d: %d segments loaded, %d updates replayed\n",
		rep.CheckpointID, rep.SegmentsLoaded, rep.UpdatesApplied)

	for _, rid := range []uint64{1, 2, 3} {
		v, err := db2.ReadRecord(rid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("record %d = %q\n", rid, trimZeros(v))
	}
}

func trimZeros(b []byte) []byte {
	i := len(b)
	for i > 0 && b[i-1] == 0 {
		i--
	}
	return b[:i]
}
