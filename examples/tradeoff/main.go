// Tradeoff: a live-engine miniature of Figure 4b. For a range of
// checkpoint intervals, the example runs the same transaction load, then
// crashes and recovers, reporting the two sides of the trade-off the paper
// tunes with the checkpoint duration:
//
//   - checkpointer work during normal processing (segments flushed,
//     checkpoint count) — which falls as the interval grows, and
//   - recovery work (log records scanned, updates replayed) — which grows
//     with it, because a longer interval leaves more log to replay.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"mmdb"
	"mmdb/workload"
)

const (
	records  = 16384
	txns     = 3000
	perTxn   = 5
	recBytes = 64
)

func main() {
	intervals := []time.Duration{
		0, // back-to-back: minimum recovery work, maximum checkpoint work
		20 * time.Millisecond,
		100 * time.Millisecond,
		500 * time.Millisecond,
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "interval\tckpts\tsegs flushed\tlog replayed (records)\tupdates reapplied\trecovery")
	for _, iv := range intervals {
		row, err := runAt(iv)
		if err != nil {
			log.Fatalf("interval %v: %v", iv, err)
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	fmt.Println("\nlonger intervals: less checkpoint work, more log to replay at recovery (Figure 4b's trade-off)")
}

func runAt(interval time.Duration) (string, error) {
	dir, err := os.MkdirTemp("", "mmdb-tradeoff-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)

	cfg := mmdb.Config{
		Dir:                dir,
		NumRecords:         records,
		RecordBytes:        recBytes,
		Algorithm:          mmdb.COUCopy,
		SyncCommit:         true,
		AutoCheckpoint:     true,
		CheckpointInterval: interval,
	}
	db, err := mmdb.Open(cfg)
	if err != nil {
		return "", err
	}

	gen, err := workload.NewUniform(records, perTxn, recBytes, 7)
	if err != nil {
		return "", err
	}
	for i := 0; i < txns; i++ {
		spec := gen.Next()
		err := db.Exec(func(tx *mmdb.Txn) error {
			for _, u := range spec.Updates {
				if err := tx.Write(u.Record, u.Value); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return "", err
		}
	}
	st := db.Stats()
	if err := db.Crash(); err != nil {
		return "", err
	}

	start := time.Now()
	db2, rep, err := mmdb.Recover(cfg)
	if err != nil {
		return "", err
	}
	rtime := time.Since(start)
	if err := db2.Close(); err != nil {
		return "", err
	}

	return fmt.Sprintf("%v\t%d\t%d\t%d\t%d\t%v",
		interval, st.Checkpoints, st.SegmentsFlushed,
		rep.RecordsScanned, rep.UpdatesApplied, rtime.Round(time.Microsecond)), nil
}
