// Inventory: an order-processing workload (each order decrements the stock
// of several products) run against the live engine under every checkpoint
// algorithm — a miniature of Figure 4a measured on the real system instead
// of the analytic model.
//
// For each algorithm the example reports the measured restart probability,
// checkpoint activity, and the run priced in the paper's instructions-per-
// transaction metric via analytic.MeasuredOverhead.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"mmdb"
	"mmdb/analytic"
)

const (
	products      = 8192
	initialStock  = 1_000_000
	orders        = 4000
	linesPerOrder = 5 // matches the paper's N_ru
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\torders/s\tp_restart\tckpts\tsegs flushed\tCOU copies\tinstr/txn (modeled)")
	for _, alg := range mmdb.Algorithms {
		line, err := runAlgorithm(alg)
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		fmt.Fprintln(w, line)
	}
	w.Flush()
	fmt.Println("\n(the two-color rows pay for rerun orders; COU rows buy consistency with old-version copies)")
}

func runAlgorithm(alg mmdb.Algorithm) (row string, err error) {
	dir, err := os.MkdirTemp("", "mmdb-inventory-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)

	cfg := mmdb.Config{
		Dir:                dir,
		NumRecords:         products,
		RecordBytes:        64,
		Algorithm:          alg,
		StableLogTail:      alg == mmdb.FastFuzzy,
		SyncCommit:         true,
		AutoCheckpoint:     true,
		CheckpointInterval: 0,
	}
	db, err := mmdb.Open(cfg)
	if err != nil {
		return "", err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			row, err = "", cerr
		}
	}()

	// Stock every product.
	const batch = 1024
	for base := 0; base < products; base += batch {
		base := base
		err := db.Exec(func(tx *mmdb.Txn) error {
			var buf [8]byte
			for p := base; p < base+batch && p < products; p++ {
				binary.LittleEndian.PutUint64(buf[:], initialStock)
				if err := tx.Write(uint64(p), buf[:]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return "", err
		}
	}

	// Process orders: each decrements the stock of linesPerOrder products.
	rng := rand.New(rand.NewSource(int64(alg)))
	start := time.Now()
	for o := 0; o < orders; o++ {
		items := make([]uint64, linesPerOrder)
		for i := range items {
			items[i] = uint64(rng.Intn(products))
		}
		qty := uint64(1 + rng.Intn(5))
		err := db.Exec(func(tx *mmdb.Txn) error {
			for _, p := range items {
				rec, err := tx.Read(p)
				if err != nil {
					return err
				}
				stock := binary.LittleEndian.Uint64(rec)
				if stock < qty {
					continue // out of stock; skip the line
				}
				binary.LittleEndian.PutUint64(rec, stock-qty)
				if err := tx.Write(p, rec); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return "", err
		}
	}
	elapsed := time.Since(start).Seconds()
	db.StopCheckpointLoop()

	st := db.Stats()
	perTxn, _, _, err := analytic.MeasuredOverhead(analytic.DefaultParams(), db.MeasuredCounts())
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%v\t%.0f\t%.4f\t%d\t%d\t%d\t%.0f",
		alg, float64(orders)/elapsed, st.PRestart(), st.Checkpoints,
		st.SegmentsFlushed, st.COUCopies, perTxn), nil
}
