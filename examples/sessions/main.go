// Sessions: an ordered key-value workload on mmdb/kvstore — a web session
// store with expiry scans — demonstrating the adoption layer: T-tree
// indexed keys over checkpointed records, with the index rebuilt from the
// recovered data after a crash (indexes are never checkpointed, the
// main-memory database way).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mmdb"
	"mmdb/kvstore"
)

func main() {
	dir, err := os.MkdirTemp("", "mmdb-sessions-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := mmdb.Config{
		Dir:            dir,
		NumRecords:     4096,
		RecordBytes:    128,
		Algorithm:      mmdb.COUCopy,
		SyncCommit:     true,
		AutoCheckpoint: true,
	}
	ctx := context.Background()
	store, _, err := kvstore.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Sessions keyed by expiry-then-ID so an ordered scan finds the ones
	// to evict first.
	put := func(expiry int, id, user string) {
		key := fmt.Sprintf("%08d/%s", expiry, id)
		if err := store.Put(ctx, []byte(key), []byte(user)); err != nil {
			log.Fatal(err)
		}
	}
	put(1030, "s-91", "ana")
	put(1010, "s-17", "bob")
	put(1060, "s-33", "cho")
	put(1010, "s-42", "dee")
	put(1090, "s-05", "eli")
	fmt.Printf("stored %d sessions (%d slots free)\n", store.Len(), store.Free())

	// Evict everything expiring before t=1050: an ordered prefix scan.
	var evict [][]byte
	if err := store.Scan(nil, func(k, v []byte) bool {
		if string(k[:8]) >= "00001050" {
			return false
		}
		evict = append(evict, append([]byte(nil), k...))
		return true
	}); err != nil {
		log.Fatal(err)
	}
	for _, k := range evict {
		if _, err := store.Delete(ctx, k); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("evicted %s\n", k)
	}

	// Crash. The T-tree index vanishes with main memory; the records
	// survive in the backup copies + log.
	if err := store.Crash(); err != nil {
		log.Fatal(err)
	}
	store2, rep, err := kvstore.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := store2.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Printf("recovered (checkpoint %d, %d updates replayed); index rebuilt with %d sessions:\n",
		rep.CheckpointID, rep.UpdatesApplied, store2.Len())
	if err := store2.Scan(nil, func(k, v []byte) bool {
		fmt.Printf("  %s -> %s\n", k, v)
		return true
	}); err != nil {
		log.Fatal(err)
	}
}
