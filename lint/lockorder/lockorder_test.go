package lockorder_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/lockorder"
)

// TestLockorder covers, per package:
//
//   - lockpkg: declared-level violations, cycles among unleveled
//     classes, annotated wrappers, held seeds (class and expression
//     forms), closure seeds, and the false-positive regressions
//     (release-before-acquire, TryLock, deferred unlock);
//   - lockc: the three-package chain — locka's levels and wrapper
//     annotations and lockb's observed edges all arrive as facts.
func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "lockpkg", "lockc")
}
