package lockorder_test

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/lockorder"
)

// TestRepoLockGraphConsistency audits the real repository: it loads the
// engine and its dependencies through the analysistest Loader, computes
// the cross-package lockorder facts exactly as the vet tool does, and
// asserts that the statically derived lock graph agrees with the
// discipline internal/lockmgr/deadlock.go's runtime detector relies on:
//
//   - the checkpoint paths close no lock-order cycle (the analyzer
//     reports nothing on any audited package, and an independent DFS
//     over the merged edge set finds the graph acyclic);
//   - the edges the paper's checkpointers actually take are present —
//     silence because facts failed to propagate would otherwise be
//     indistinguishable from silence because the code is clean;
//   - the detector's documented nesting holds: grantLocked takes waitMu
//     inside a shard lock (shard.mu → waitMu), and the reverse edge
//     never appears, because cycleFrom snapshots the waits-for map and
//     releases waitMu before touching any shard.
func TestRepoLockGraphConsistency(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	ld := analysistest.NewLoader("", map[string]string{"mmdb": root})
	audited := []string{
		"mmdb/internal/engine",
		"mmdb/internal/lockmgr",
		"mmdb/internal/wal",
		"mmdb/internal/storage",
		"mmdb/internal/obs",
		"mmdb/kvstore",
	}
	for _, pkg := range audited {
		if err := ld.Load(pkg); err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
	}

	// The analyzer itself must be clean on every audited package.
	for _, pkg := range audited {
		diags, err := ld.Check(lockorder.Analyzer, pkg)
		if err != nil {
			t.Fatalf("checking %s: %v", pkg, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %v: %s", pkg, ld.Fset().Position(d.Pos), d.Message)
		}
	}

	// Merge the facts into one graph, as a cross-package run would.
	raws, err := ld.Facts(lockorder.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	levels := make(map[string]int)
	edgeSet := make(map[[2]string]bool)
	adj := make(map[string][]string)
	for pkg, raw := range raws {
		var f lockorder.Facts
		if err := json.Unmarshal(raw, &f); err != nil {
			t.Fatalf("decoding %s facts: %v", pkg, err)
		}
		for cls, lvl := range f.Levels {
			levels[cls] = lvl
		}
		for _, e := range f.Edges {
			k := [2]string{e.From, e.To}
			if !edgeSet[k] {
				edgeSet[k] = true
				adj[e.From] = append(adj[e.From], e.To)
			}
		}
	}
	if len(edgeSet) == 0 {
		t.Fatal("no lock-acquisition edges derived; fact propagation is broken")
	}

	// The checkpoint paths must contribute their known edges.
	const (
		ckptMu  = "mmdb/internal/engine.Engine.ckptMu"
		txnMu   = "mmdb/internal/engine.Engine.txnMu"
		regMu   = "mmdb/internal/obs.Registry.mu"
		table   = "mmdb/internal/lockmgr.Manager.table"
		shardMu = "mmdb/internal/lockmgr.shard.mu"
		waitMu  = "mmdb/internal/lockmgr.Manager.waitMu"
		segMu   = "mmdb/internal/storage.Segment.RWMutex"
		logMu   = "mmdb/internal/wal.Log.mu"
	)
	wantEdges := [][2]string{
		{ckptMu, txnMu},   // quiesce / fuzzy begin marker under ckptMu
		{txnMu, logMu},    // begin-checkpoint Append under txnMu (and Txn.Write)
		{ckptMu, logMu},   // log force during checkpoint begin/end
		{ckptMu, table},   // two-color checkpointer's S locks
		{table, segMu},    // segment latch under the checkpointer's S lock
		{table, logMu},    // 2CFLUSH LSN wait while the S lock is held
		{ckptMu, segMu},   // sweeps latch segments under ckptMu
		{shardMu, waitMu}, // grantLocked clears waits-for edges in-shard
	}
	for _, e := range wantEdges {
		if !edgeSet[e] {
			t.Errorf("expected lock-order edge %s -> %s missing from the derived graph", e[0], e[1])
		}
	}

	// The runtime detector's safety argument (deadlock.go: cycleFrom
	// snapshots under waitMu, releases it, then takes shard locks one at
	// a time) must be visible statically as the absence of the reverse
	// edge.
	if edgeSet[[2]string{waitMu, shardMu}] {
		t.Errorf("edge %s -> %s contradicts the deadlock detector's lock discipline", waitMu, shardMu)
	}

	// obs.Registry.mu (level 95) must stay a leaf: Gather copies the
	// metric slices under the lock and evaluates value funcs only after
	// releasing it, precisely so those funcs may take engine-side locks.
	// An edge leaving Registry.mu would reopen that inversion.
	for e := range edgeSet {
		if e[0] == regMu {
			t.Errorf("edge %s -> %s: obs.Registry.mu must remain a leaf lock", e[0], e[1])
		}
	}

	// Declared levels strictly increase along every edge.
	for e := range edgeSet {
		lf, okF := levels[e[0]]
		lt, okT := levels[e[1]]
		if okF && okT && lf >= lt {
			t.Errorf("edge %s (level %d) -> %s (level %d) violates the declared order", e[0], lf, e[1], lt)
		}
	}

	// And the merged graph is acyclic, independently of the analyzer's
	// own cycle reporting.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(n string, path []string) error
	visit = func(n string, path []string) error {
		color[n] = gray
		for _, next := range adj[n] {
			switch color[next] {
			case gray:
				return fmt.Errorf("lock-order cycle: %v -> %s", append(path, n), next)
			case white:
				if err := visit(next, append(path, n)); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for n := range adj {
		if color[n] == white {
			if err := visit(n, nil); err != nil {
				t.Error(err)
			}
		}
	}
}
