// Package lockb is the middle of the chain: it imports locka, orders
// its own classes after locka's, and exports the resulting edges as
// facts for lockc to check against.
package lockb

import (
	"sync"

	"locka"
)

type B struct {
	mu sync.Mutex // lockorder:level=200
}

// WithBoth orders the root (100) before b (200): consistent, and the
// edge it draws is exported in this package's facts.
func WithBoth(m *locka.Mu, b *B) {
	m.Acquire()
	b.mu.Lock()
	b.mu.Unlock()
	m.Release()
}

// Hold takes b's lock.
// lockorder:acquires B.mu
func (b *B) Hold() { b.mu.Lock() }

// Unhold drops it.
// lockorder:releases B.mu
func (b *B) Unhold() { b.mu.Unlock() }

type C struct {
	mu sync.Mutex
}

// Hold takes c's lock.
// lockorder:acquires C.mu
func (c *C) Hold() { c.mu.Lock() }

// Unhold drops it.
// lockorder:releases C.mu
func (c *C) Unhold() { c.mu.Unlock() }

// RawThenC orders locka.Raw before C; neither has a level, so only the
// cycle check can catch a reversal downstream.
func RawThenC(r *locka.Raw, c *C) {
	r.Mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	r.Mu.Unlock()
}
