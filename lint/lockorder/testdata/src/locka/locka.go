// Package locka is the root of the three-package facts chain: it
// declares the leveled root class and the annotated wrappers that
// acquire it. Its facts must reach lockc through lockb's re-export.
package locka

import "sync"

type Mu struct {
	mu sync.Mutex // lockorder:level=100
}

// Acquire takes the root lock.
// lockorder:acquires Mu.mu
func (m *Mu) Acquire() { m.mu.Lock() }

// Release drops it.
// lockorder:releases Mu.mu
func (m *Mu) Release() { m.mu.Unlock() }

// Raw has no declared level; its ordering is covered only by the
// cross-package cycle check.
type Raw struct {
	Mu sync.Mutex
}
