// Package lockpkg exercises the single-package lockorder cases: the
// declared-level total order, cycle detection among unleveled classes,
// annotated acquire/release wrappers, held seeds (both the lockorder
// class form and the lockcheck expression form), closures, and the
// false-positive regressions (release-before-acquire, TryLock,
// deferred unlocks).
package lockpkg

import "sync"

type A struct {
	mu sync.Mutex // lockorder:level=10
}

type B struct {
	mu sync.Mutex // lockorder:level=20
}

// goodOrder acquires in increasing level order: no diagnostic.
func goodOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// badOrder acquires level 10 while holding level 20.
func badOrder(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `acquires lockpkg\.A\.mu \(lockorder:level=10\) while holding lockpkg\.B\.mu \(lockorder:level=20\)`
	a.mu.Unlock()
	b.mu.Unlock()
}

// releaseThenAcquire is the false-positive regression for the may-held
// set: b is released before a is taken, so nothing is held at the
// acquisition and no edge is drawn.
func releaseThenAcquire(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// C and D have no declared levels; their ordering is checked purely by
// cycle detection.
type C struct {
	mu sync.Mutex
}

type D struct {
	mu sync.Mutex
}

// cycleFirst orders C before D. Together with cycleSecond this closes a
// C↔D cycle; the report lands on the first edge seen (this one).
func cycleFirst(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock() // want `creates a lock-order cycle`
	d.mu.Unlock()
	c.mu.Unlock()
}

// cycleSecond orders D before C.
func cycleSecond(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}

type E struct {
	mu sync.Mutex
}

type F struct {
	mu sync.Mutex
}

// tryTakesF is the TryLock false-positive regression: a try cannot
// block, so holding E while try-locking F draws no E→F edge, and
// fThenE's reverse ordering below is not a cycle.
func tryTakesF(e *E, f *F) {
	e.mu.Lock()
	if f.mu.TryLock() {
		f.mu.Unlock()
	}
	e.mu.Unlock()
}

func fThenE(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Unlock()
}

type G struct {
	mu sync.Mutex // lockorder:level=110
}

type H struct {
	mu sync.Mutex // lockorder:level=120
}

// deferStillHeld checks that a deferred unlock is not treated as
// releasing at its syntactic position: h stays held, so acquiring g
// (a lower level) is a real violation.
func deferStillHeld(g *G, h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	g.mu.Lock() // want `acquires lockpkg\.G\.mu \(lockorder:level=110\) while holding lockpkg\.H\.mu \(lockorder:level=120\)`
	g.mu.Unlock()
}

// lockedHelper is entered with g's mutex held, seeded through the
// lockcheck expression form; acquiring h above it is consistent.
// lockcheck:held g.mu
func lockedHelper(g *G, h *H) {
	h.mu.Lock()
	h.mu.Unlock()
}

// Registry is a keyed table of logical locks — not a sync.Mutex, so its
// class is declared rather than derived.
//
// lockorder:declare Registry.keys level=50
type Registry struct {
	m map[string]bool
}

// Acquire takes one keyed lock.
// lockorder:acquires Registry.keys
func (r *Registry) Acquire(k string) {}

// Release drops it.
// lockorder:releases Registry.keys
func (r *Registry) Release(k string) {}

// useRegistry orders A (10) before the keyed class (50) through the
// annotated wrappers: consistent, and transient — after Release the
// class is no longer held.
func useRegistry(a *A, b *B, r *Registry) {
	a.mu.Lock()
	r.Acquire("k")
	r.Release("k")
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// underKeys is entered with the keyed class held (lockorder:held class
// form); level 10 under level 50 violates the declared order.
// lockorder:held Registry.keys
func underKeys(a *A) {
	a.mu.Lock() // want `acquires lockpkg\.A\.mu \(lockorder:level=10\) while holding lockpkg\.Registry\.keys \(lockorder:level=50\)`
	a.mu.Unlock()
}

type M struct {
	mu sync.Mutex // lockorder:level=210
}

type N struct {
	mu sync.Mutex // lockorder:level=220
}

// closureHeld seeds a closure from the comment on the statement that
// creates it.
func closureHeld(m *M, n *N) {
	// lockorder:held N.mu
	handle := func() {
		m.mu.Lock() // want `acquires lockpkg\.M\.mu \(lockorder:level=210\) while holding lockpkg\.N\.mu \(lockorder:level=220\)`
		m.mu.Unlock()
	}
	handle()
}
