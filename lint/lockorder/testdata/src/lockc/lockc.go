// Package lockc is the end of the three-package chain: locka's levels
// and wrapper annotations and lockb's observed edges all arrive here as
// facts, two packages away from where they were declared.
package lockc

import (
	"locka"
	"lockb"
)

// levelsTravel acquires the root (level 100, declared in locka, taken
// through locka's annotated wrapper) while holding b (level 200,
// declared in lockb).
func levelsTravel(m *locka.Mu, b *lockb.B) {
	b.Hold()
	m.Acquire() // want `acquires locka\.Mu\.mu \(lockorder:level=100\) while holding lockb\.B\.mu \(lockorder:level=200\)`
	m.Release()
	b.Unhold()
}

// edgesTravel acquires Raw while holding C: lockb's exported Raw→C edge
// makes this a cross-package cycle even though no level is declared.
func edgesTravel(r *locka.Raw, c *lockb.C) {
	c.Hold()
	r.Mu.Lock() // want `acquiring locka\.Raw\.Mu while holding lockb\.C\.mu creates a lock-order cycle`
	r.Mu.Unlock()
	c.Unhold()
}
