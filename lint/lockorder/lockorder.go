// Package lockorder builds a cross-package lock-acquisition graph and
// reports potential deadlocks: cycles in the graph, and violations of a
// declared total order. It is the static complement of
// internal/lockmgr's runtime waits-for detector — the runtime detector
// covers the keyed record/segment locks (which alias dynamically), this
// analyzer covers the latches and mutexes the checkpointers interleave
// with them.
//
// # Lock classes
//
// A lock class names a mutex field by its owning type:
// "mmdb/internal/engine.Engine.txnMu", or an embedded latch,
// "mmdb/internal/storage.Segment.RWMutex". Classes are derived from
// type information at sync.(RW)Mutex call sites; non-mutex lock tables
// (the lock manager's logical locks) are introduced by annotation.
// Class names in annotations are absolute when they contain a '/' and
// otherwise relative to the annotating package ("Manager.table" inside
// internal/lockmgr means "mmdb/internal/lockmgr.Manager.table").
//
// # Annotation vocabulary
//
//   - "lockorder:level=N" in a mutex field's comment declares its place
//     in the total order: along any path, acquired levels must strictly
//     increase.
//   - "lockorder:declare <class> level=N" declares a class that is not
//     a sync mutex field (the lock manager's table of logical locks).
//   - "lockorder:acquires <class>" / "lockorder:releases <class>" on a
//     function says a call to it takes/drops the class (Manager.Lock,
//     wal.Log.Append, ...). A function carrying both is transient: the
//     call orders the class against everything held, but does not leave
//     it held.
//   - "lockorder:held <class>" on a function (or, for a closure, in a
//     comment on the statement that creates it) seeds the analysis:
//     callers invoke it with the class held. The existing
//     "lockcheck:held <expr>" annotations seed the same way, with the
//     expression resolved against the receiver and parameters.
//
// # How edges are found
//
// Per function, a forward may-held dataflow over the lint/cfg graph
// tracks the set of classes possibly held; acquiring class B with A
// held adds edge A→B. TryLock acquisitions join the held set but draw
// no incoming edge (a try cannot block, so it cannot close a wait
// cycle). Deferred and goroutine-launching statements contribute no
// lock effects at their syntactic position. Edges are exported as
// .vetx facts and merged across packages, so a cycle spanning engine,
// lockmgr and storage is visible from whichever package contributes its
// closing edge.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"mmdb/lint/analysis"
	"mmdb/lint/cfg"
	"mmdb/lint/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name:         "lockorder",
	Doc:          "builds the cross-package lock-acquisition graph; reports cycles and declared-level violations",
	ExtractFacts: extractFacts,
	ExportFacts:  exportFacts,
	Run:          run,
}

// Facts is one package's contribution to the global lock graph.
type Facts struct {
	// Levels maps a class to its declared lockorder:level.
	Levels map[string]int `json:"levels,omitempty"`
	// Edges are the acquired-while-holding pairs observed in this
	// package, with a printable position for cross-package reports.
	Edges []Edge `json:"edges,omitempty"`
	// Funcs maps "Recv.Name" (or "Name") to its lock annotations.
	Funcs map[string]FuncAnno `json:"funcs,omitempty"`
}

type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Pos  string `json:"pos"`
}

type FuncAnno struct {
	Acquires []string `json:"acquires,omitempty"`
	Releases []string `json:"releases,omitempty"`
	Held     []string `json:"held,omitempty"`
}

var (
	levelRe    = regexp.MustCompile(`lockorder:level=(\d+)`)
	declareRe  = regexp.MustCompile(`lockorder:declare\s+(\S+)\s+level=(\d+)`)
	funcAnnoRe = regexp.MustCompile(`lockorder:(acquires|releases|held)\s+(\S+)`)
	heldExprRe = regexp.MustCompile(`lockcheck:held\s+(.+)`)
)

// resolveClass makes a class name absolute: names with a '/' already
// are; anything else belongs to the annotating package.
func resolveClass(pkgPath, name string) string {
	if strings.Contains(name, "/") {
		return name
	}
	return pkgPath + "." + name
}

// shortClass trims the directory part for readable messages.
func shortClass(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		return class[i+1:]
	}
	return class
}

// extractFacts gathers the syntactic annotations: levels, declares, and
// per-function acquire/release/held lists. Edges need types and are
// added by exportFacts.
func extractFacts(fset *token.FileSet, pkgPath string, files []*ast.File) any {
	f := &Facts{Levels: map[string]int{}, Funcs: map[string]FuncAnno{}}
	for _, file := range files {
		if strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		// Field levels: a lockorder:level=N in a struct field's doc or
		// line comment names the class <pkg>.<Type>.<field>.
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					lvl, ok := levelFrom(field.Doc, field.Comment)
					if !ok {
						continue
					}
					for _, name := range fieldNames(field) {
						f.Levels[pkgPath+"."+ts.Name.Name+"."+name] = lvl
					}
				}
			}
			// Declared classes may sit on the type's doc comment.
			addDeclares(f, pkgPath, gd.Doc)
		}
		// ...or anywhere else in the file.
		for _, cg := range file.Comments {
			addDeclares(f, pkgPath, cg)
		}
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			if anno, ok := parseFuncAnno(pkgPath, fn.Doc.Text()); ok {
				f.Funcs[funcKey(fn)] = anno
			}
		}
	}
	if len(f.Levels) == 0 && len(f.Funcs) == 0 {
		return nil
	}
	return f
}

func addDeclares(f *Facts, pkgPath string, cg *ast.CommentGroup) {
	if cg == nil {
		return
	}
	for _, m := range declareRe.FindAllStringSubmatch(cg.Text(), -1) {
		lvl, err := strconv.Atoi(m[2])
		if err == nil {
			f.Levels[resolveClass(pkgPath, m[1])] = lvl
		}
	}
}

func levelFrom(groups ...*ast.CommentGroup) (int, bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		if m := levelRe.FindStringSubmatch(cg.Text()); m != nil {
			lvl, err := strconv.Atoi(m[1])
			if err == nil {
				return lvl, true
			}
		}
	}
	return 0, false
}

// fieldNames lists a field's names; an embedded field contributes its
// type's base name ("RWMutex" for sync.RWMutex).
func fieldNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		var out []string
		for _, n := range field.Names {
			out = append(out, n.Name)
		}
		return out
	}
	t := field.Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.SelectorExpr:
			return []string{tt.Sel.Name}
		case *ast.Ident:
			return []string{tt.Name}
		default:
			return nil
		}
	}
}

func parseFuncAnno(pkgPath, doc string) (FuncAnno, bool) {
	var anno FuncAnno
	found := false
	for _, m := range funcAnnoRe.FindAllStringSubmatch(doc, -1) {
		cls := resolveClass(pkgPath, m[2])
		found = true
		switch m[1] {
		case "acquires":
			anno.Acquires = append(anno.Acquires, cls)
		case "releases":
			anno.Releases = append(anno.Releases, cls)
		case "held":
			anno.Held = append(anno.Held, cls)
		}
	}
	return anno, found
}

func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return id.Name + "." + fn.Name.Name
			}
			return fn.Name.Name
		}
	}
}

// exportFacts emits the syntactic facts plus the typed edge set.
func exportFacts(pass *analysis.Pass) any {
	f, _ := extractFacts(pass.Fset, pass.Pkg.Path(), pass.Files).(*Facts)
	if f == nil {
		f = &Facts{}
	}
	c, err := newComputer(pass)
	if err != nil {
		return f
	}
	for _, e := range c.computeEdges() {
		f.Edges = append(f.Edges, Edge{From: e.From, To: e.To, Pos: pass.Fset.Position(e.Pos).String()})
	}
	if len(f.Levels) == 0 && len(f.Funcs) == 0 && len(f.Edges) == 0 {
		return nil
	}
	return f
}

type localEdge struct {
	From, To string
	Pos      token.Pos
}

func run(pass *analysis.Pass) error {
	c, err := newComputer(pass)
	if err != nil {
		return err
	}
	local := c.computeEdges()

	// Merge the global levels first: an edge that violates them gets its
	// own diagnostic and is kept OUT of the cycle graph, so the innocent
	// reverse-ordered edge elsewhere is not reported as a "cycle" too.
	levels := make(map[string]int)
	var imported []Edge
	own := pass.Pkg.Path()
	for pkgPath := range pass.Facts {
		var f Facts
		if ok, err := pass.DecodeFacts(pkgPath, &f); err != nil {
			return err
		} else if !ok {
			continue
		}
		for cls, lvl := range f.Levels {
			levels[cls] = lvl
		}
		if pkgPath == own {
			continue // own edges were just recomputed with real positions
		}
		imported = append(imported, f.Edges...)
	}
	violates := func(from, to string) bool {
		lf, okF := levels[from]
		lt, okT := levels[to]
		return okF && okT && lf >= lt
	}

	adj := make(map[string][]string)
	edgeSeen := make(map[[2]string]bool)
	addEdge := func(from, to string) {
		k := [2]string{from, to}
		if !violates(from, to) && !edgeSeen[k] {
			edgeSeen[k] = true
			adj[from] = append(adj[from], to)
		}
	}
	for _, e := range imported {
		addEdge(e.From, e.To)
	}
	for _, e := range local {
		addEdge(e.From, e.To)
	}

	// Declared-level check: along local edges, levels must strictly
	// increase.
	reported := make(map[[2]string]bool)
	for _, e := range local {
		if !violates(e.From, e.To) {
			continue
		}
		k := [2]string{e.From, e.To}
		if reported[k] {
			continue
		}
		reported[k] = true
		pass.Reportf(e.Pos, "acquires %s (lockorder:level=%d) while holding %s (lockorder:level=%d); declared levels must strictly increase",
			shortClass(e.To), levels[e.To], shortClass(e.From), levels[e.From])
	}

	// Cycle check: a local edge A→B closes a cycle if B already reaches
	// A through the merged graph. Each distinct cycle is reported once,
	// at its first local closing edge.
	cycleSeen := make(map[string]bool)
	for _, e := range local {
		if reported[[2]string{e.From, e.To}] {
			continue // the level diagnostic already covers this edge
		}
		path := findPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		// cyc is closed: From, To, ..., From.
		cyc := append([]string{e.From}, path...)
		var names []string
		for _, cls := range cyc {
			names = append(names, shortClass(cls))
		}
		sorted := append([]string(nil), names[:len(names)-1]...)
		sort.Strings(sorted)
		key := strings.Join(sorted, "→")
		if cycleSeen[key] {
			continue
		}
		cycleSeen[key] = true
		pass.Reportf(e.Pos, "acquiring %s while holding %s creates a lock-order cycle: %s",
			shortClass(e.To), shortClass(e.From), strings.Join(names, " → "))
	}
	return nil
}

// findPath returns a shortest node path from from to to (inclusive), or
// nil.
func findPath(adj map[string][]string, from, to string) []string {
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, next := range adj[n] {
			if _, ok := prev[next]; ok {
				continue
			}
			prev[next] = n
			if next == to {
				var path []string
				for at := to; ; at = prev[at] {
					path = append([]string{at}, path...)
					if at == from {
						return path
					}
				}
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// computer walks one package's functions, deriving lock classes and
// acquisition edges with type information.
type computer struct {
	pass  *analysis.Pass
	facts map[string]*Facts // every visible package's facts, own included
	edges []localEdge
	seen  map[[2]string]bool
}

func newComputer(pass *analysis.Pass) (*computer, error) {
	c := &computer{pass: pass, facts: make(map[string]*Facts), seen: make(map[[2]string]bool)}
	for pkgPath := range pass.Facts {
		var f Facts
		if ok, err := pass.DecodeFacts(pkgPath, &f); err != nil {
			return nil, err
		} else if ok {
			c.facts[pkgPath] = &f
		}
	}
	// The pass may predate this package's own fact extraction (the
	// analysistest harness always includes it; a by-hand Package might
	// not). Ensure the own annotations are visible.
	own := pass.Pkg.Path()
	if _, ok := c.facts[own]; !ok {
		if f, _ := extractFacts(pass.Fset, own, pass.Files).(*Facts); f != nil {
			c.facts[own] = f
		}
	}
	return c, nil
}

func (c *computer) computeEdges() []localEdge {
	for _, f := range c.pass.Files {
		if analysis.IsTestFile(c.pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkFunc(fn.Name.Name, fn.Body, c.seedsOf(fn))
			for _, li := range funcLitsWithStmts(fn.Body) {
				c.checkFunc(fn.Name.Name+".func", li.lit.Body, c.litSeeds(f, li.stmt))
			}
		}
	}
	return c.edges
}

// seedsOf resolves a function's entry-held classes from its
// lockorder:held and lockcheck:held annotations.
func (c *computer) seedsOf(fn *ast.FuncDecl) map[string]bool {
	held := make(map[string]bool)
	if f := c.facts[c.pass.Pkg.Path()]; f != nil {
		for _, cls := range f.Funcs[funcKey(fn)].Held {
			held[cls] = true
		}
	}
	if fn.Doc != nil {
		for _, m := range heldExprRe.FindAllStringSubmatch(fn.Doc.Text(), -1) {
			expr := strings.TrimSpace(m[1])
			if i := strings.IndexAny(expr, " \t"); i >= 0 {
				expr = expr[:i]
			}
			if cls := c.resolveHeldExpr(fn, expr); cls != "" {
				held[cls] = true
			}
		}
	}
	return held
}

// litSeeds reads lockorder:held annotations from the comments attached
// to the statement that creates a closure.
func (c *computer) litSeeds(file *ast.File, stmt ast.Stmt) map[string]bool {
	held := make(map[string]bool)
	if stmt == nil {
		return held
	}
	start := c.pass.Fset.Position(stmt.Pos())
	for _, cg := range file.Comments {
		end := c.pass.Fset.Position(cg.End())
		// The comment group immediately above the statement (its "doc").
		if end.Filename != start.Filename || end.Line != start.Line-1 {
			continue
		}
		for _, m := range funcAnnoRe.FindAllStringSubmatch(cg.Text(), -1) {
			if m[1] == "held" {
				held[resolveClass(c.pass.Pkg.Path(), m[2])] = true
			}
		}
	}
	return held
}

// resolveHeldExpr maps a lockcheck:held expression ("e.txnMu", "sh.mu",
// bare "s") to a lock class via the receiver's and parameters' types.
func (c *computer) resolveHeldExpr(fn *ast.FuncDecl, expr string) string {
	parts := strings.Split(expr, ".")
	var base types.Type
	fields := []*ast.FieldList{fn.Recv, fn.Type.Params}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if name.Name == parts[0] {
					if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
						base = obj.Type()
					}
				}
			}
		}
	}
	named := derefNamed(base)
	if named == nil {
		return ""
	}
	if len(parts) == 1 {
		// Bare receiver: the type embeds (or is) the mutex.
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Embedded() && isSyncMutex(f.Type()) {
					return className(named, f)
				}
			}
		}
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == parts[1] {
			return className(named, f)
		}
	}
	return ""
}

// checkFunc runs the may-held dataflow over one body and records the
// acquisition edges.
func (c *computer) checkFunc(name string, body *ast.BlockStmt, seeds map[string]bool) {
	g := cfg.New(name, body)
	res := dataflow.Solve(g, dataflow.Problem{
		Dir:      dataflow.Forward,
		Boundary: func() any { return cloneSet(seeds) },
		Top:      func() any { return map[string]bool{} },
		Merge: func(a, b any) any {
			out := cloneSet(a.(map[string]bool))
			for k := range b.(map[string]bool) {
				out[k] = true
			}
			return out
		},
		Transfer: func(b *cfg.Block, in any) any {
			held := cloneSet(in.(map[string]bool))
			for _, n := range b.Nodes {
				c.applyNode(n, held, 0)
			}
			return held
		},
		Equal: func(a, b any) bool { return equalSet(a.(map[string]bool), b.(map[string]bool)) },
	})
	for _, b := range g.Blocks {
		held := cloneSet(res.In[b].(map[string]bool))
		for _, n := range b.Nodes {
			c.applyNode(n, held, 1)
		}
	}
}

// applyNode applies a node's lock effects to held; mode 1 also records
// edges. Deferred and go statements contribute nothing at their
// syntactic position (a deferred unlock runs at function exit, not
// here).
func (c *computer) applyNode(n ast.Node, held map[string]bool, mode int) {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	for _, call := range calls(n) {
		c.applyCall(call, held, mode)
	}
}

func (c *computer) applyCall(call *ast.CallExpr, held map[string]bool, mode int) {
	if cls, op, isSync := c.syncOp(call); isSync {
		if cls == "" {
			return // unresolvable lock expression: cannot track
		}
		switch op {
		case "Lock", "RLock":
			if mode == 1 {
				c.recordEdges(held, cls, call.Pos())
			}
			held[cls] = true
		case "TryLock", "TryRLock":
			held[cls] = true // cannot block: no incoming edge
		case "Unlock", "RUnlock":
			delete(held, cls)
		}
		return
	}
	anno, ok := c.calleeAnno(call)
	if !ok {
		return
	}
	for _, cls := range anno.Acquires {
		if mode == 1 {
			c.recordEdges(held, cls, call.Pos())
		}
		held[cls] = true
	}
	for _, cls := range anno.Releases {
		delete(held, cls)
	}
}

func (c *computer) recordEdges(held map[string]bool, to string, pos token.Pos) {
	for from := range held {
		if from == to {
			continue // reacquiring the same keyed class (lock table rows)
		}
		k := [2]string{from, to}
		if c.seen[k] {
			continue
		}
		c.seen[k] = true
		c.edges = append(c.edges, localEdge{From: from, To: to, Pos: pos})
	}
}

// syncOp reports whether call is a sync.(RW)Mutex operation, with the
// lock's class ("" when unresolvable) and the method name.
func (c *computer) syncOp(call *ast.CallExpr) (cls, op string, isSync bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	return c.lockClass(sel), fn.Name(), true
}

// lockClass names the mutex a sync method call operates on: either the
// selected expression is the mutex field itself (e.mu.Lock), or the
// method is promoted from an embedded mutex (seg.Lock) and the class is
// found by walking the selection's index path.
func (c *computer) lockClass(sel *ast.SelectorExpr) string {
	if selection := c.pass.TypesInfo.Selections[sel]; selection != nil && len(selection.Index()) > 1 {
		owner := derefNamed(selection.Recv())
		if owner == nil {
			return ""
		}
		idx := selection.Index()
		for _, i := range idx[:len(idx)-1] {
			st, ok := owner.Underlying().(*types.Struct)
			if !ok || i >= st.NumFields() {
				return ""
			}
			f := st.Field(i)
			if isSyncMutex(f.Type()) {
				return className(owner, f)
			}
			owner = derefNamed(f.Type())
			if owner == nil {
				return ""
			}
		}
		return ""
	}
	return c.exprClass(sel.X)
}

// exprClass names the lock class of a mutex-typed expression.
func (c *computer) exprClass(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.exprClass(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.exprClass(e.X)
		}
	case *ast.SelectorExpr:
		selection := c.pass.TypesInfo.Selections[e]
		if selection == nil || selection.Kind() != types.FieldVal {
			return ""
		}
		owner := derefNamed(selection.Recv())
		if owner == nil {
			return ""
		}
		idx := selection.Index()
		for n, i := range idx {
			st, ok := owner.Underlying().(*types.Struct)
			if !ok || i >= st.NumFields() {
				return ""
			}
			f := st.Field(i)
			if n == len(idx)-1 {
				return className(owner, f)
			}
			owner = derefNamed(f.Type())
			if owner == nil {
				return ""
			}
		}
	case *ast.Ident:
		if v, ok := c.pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			!v.IsField() && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name() // package-level mutex
		}
	}
	return ""
}

// calleeAnno looks up the called function's lockorder annotations
// through the fact map.
func (c *computer) calleeAnno(call *ast.CallExpr) (FuncAnno, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	default:
		return FuncAnno{}, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return FuncAnno{}, false
	}
	f := c.facts[fn.Pkg().Path()]
	if f == nil {
		return FuncAnno{}, false
	}
	key := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		named := derefNamed(recv.Type())
		if named == nil {
			return FuncAnno{}, false
		}
		key = named.Obj().Name() + "." + key
	}
	anno, ok := f.Funcs[key]
	return anno, ok
}

func className(owner *types.Named, f *types.Var) string {
	pkg := owner.Obj().Pkg()
	if pkg == nil {
		return ""
	}
	return fmt.Sprintf("%s.%s.%s", pkg.Path(), owner.Obj().Name(), f.Name())
}

func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func isSyncMutex(t types.Type) bool {
	named := derefNamed(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func equalSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// calls lists the call expressions under n in source order, skipping
// function literals (each gets its own graph).
func calls(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			out = append(out, call)
		}
		return true
	})
	return out
}

type litInfo struct {
	lit  *ast.FuncLit
	stmt ast.Stmt
}

// funcLitsWithStmts pairs each function literal under body with its
// nearest enclosing statement, so annotations written above
// "handle := func(...) {...}" attach to the closure.
func funcLitsWithStmts(body *ast.BlockStmt) []litInfo {
	var out []litInfo
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			var stmt ast.Stmt
			for i := len(stack) - 1; i >= 0; i-- {
				if s, ok := stack[i].(ast.Stmt); ok {
					stmt = s
					break
				}
			}
			out = append(out, litInfo{lit: lit, stmt: stmt})
		}
		stack = append(stack, n)
		return true
	})
	return out
}
