// Package top exercises alloccheck: perf:hotpath roots,
// interprocedural site reporting, cross-package facts, CHA
// devirtualization, exemptions, and annotation hygiene.
package top

import "allocmod/dep"

// CommitClean is a hot root whose candidate allocations are all proved
// stack-resident — the constant-size make locally, and the &Rec{...}
// across the package boundary via dep.Consume's non-leaking
// parameter fact.
//
// perf:hotpath(the commit path runs at memory speed)
func CommitClean(n int) int {
	r := &dep.Rec{N: n}
	b := make([]byte, 64)
	b[0] = byte(n)
	return dep.Consume(r) + len(b)
}

// CommitDirty allocates locally and through a helper.
//
// perf:hotpath
func CommitDirty(n int) []byte {
	out := make([]byte, n) // want `allocation on a hot path: make \[\]byte \(non-constant size\)`
	grow(&out)
	return out
}

func grow(p *[]byte) {
	*p = append(*p, 0) // want `allocation on a hot path: append`
}

// ReadPath reaches an allocating function in another package; the
// finding is reported here, at the root, with the path.
//
// perf:hotpath
func ReadPath(n int) int { // want `hot path .* reaches allocation site\(s\) in allocmod/dep\.Alloc`
	return len(dep.Alloc(n))
}

// Enc is devirtualized by CHA to its one implementation.
type Enc interface{ EncOne(dst []byte) int }

type fixedEnc struct{ v byte }

func (e fixedEnc) EncOne(dst []byte) int { dst[0] = e.v; return 1 }

// HotIface resolves to the allocation-free fixedEnc.EncOne: no
// finding — the false-positive regression for interface calls.
//
// perf:hotpath
func HotIface(e Enc, dst []byte) int {
	return e.EncOne(dst)
}

// Enc2's single implementation allocates; CHA must find it.
type Enc2 interface{ EncTwo(dst []byte) int }

type growEnc struct{}

func (growEnc) EncTwo(dst []byte) int {
	dst = append(dst, 1) // want `allocation on a hot path: append`
	return len(dst)
}

// HotIfaceDirty reaches the allocating implementation through the
// interface.
//
// perf:hotpath
func HotIfaceDirty(e Enc2, dst []byte) int { return e.EncTwo(dst) }

// scratch allocates by design and is exempted as a whole.
//
// alloc:allowed(pool refill, amortized across commits)
func scratch(n int) []byte { return make([]byte, n) }

// HotExempt allocates only through reasoned exemptions: no findings.
//
// perf:hotpath
func HotExempt(n int) int {
	b := scratch(n)
	s := make([]byte, n) // alloc:allowed(pool miss refill, amortized)
	return len(b) + len(s)
}

// HotCold allocates only on the error path: cold sites are not
// reported.
//
// perf:hotpath
func HotCold(b []byte, n int) (int, error) {
	if n < 0 {
		return 0, &rangeErr{got: n}
	}
	return len(b) + n, nil
}

type rangeErr struct{ got int }

func (e *rangeErr) Error() string { return "out of range" }

// reasonless is missing its reason.
//
// alloc:allowed
func reasonless(n int) []byte { // want `needs a reason`
	return make([]byte, n)
}

func siteBare(n int) []byte {
	return make([]byte, n) /* alloc:allowed */ // want `alloc:allowed needs a reason`
}
