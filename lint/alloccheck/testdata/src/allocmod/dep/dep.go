// Package dep is the dependency side of the alloccheck fixtures:
// its escape facts (param-leak vectors, allocation sites) must travel
// to allocmod through the fact channel.
package dep

// Rec is a record handed across the package boundary.
type Rec struct{ N int }

// Consume reads the record without retaining it: callers' &Rec{...}
// stay on their stacks.
func Consume(r *Rec) int { return r.N }

var kept *Rec

// Keep retains its argument.
func Keep(r *Rec) { kept = r }

// Alloc allocates unconditionally; hot callers must not reach it.
func Alloc(n int) []byte {
	return make([]byte, n)
}
