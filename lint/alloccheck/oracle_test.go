package alloccheck

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// oraclePkgs are the packages whose zero-allocation claims matter most;
// the oracle diffs the analyzer's allocation sites against the
// compiler's own escape analysis for exactly these.
var oraclePkgs = []string{"mmdb/internal/wal", "mmdb/internal/obs"}

// heapRe matches the compiler's heap verdicts from -gcflags=-m.
var heapRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*escapes to heap.*)$`)

// movedRe matches stack-to-heap moves of address-taken locals — a form
// the escape lattice models through the pointer's destination rather
// than as a site of its own, so it is logged, never failed.
var movedRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (moved to heap.*)$`)

// inlineRe matches the compiler's record of an inlined call: verdicts
// for allocations inside the inlined body are attributed to this call
// position, not to the callee's own source line.
var inlineRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: inlining call to (.+)$`)

// modulePkgNames are the module's package basenames, used to tell an
// inlined module-internal callee (attribution drift) from an inlined
// stdlib callee (allocation outside the module-scoped lattice).
var modulePkgNames = map[string]bool{
	"mmdb": true, "obs": true, "faultfs": true, "storage": true,
	"wal": true, "lockmgr": true, "index": true, "engine": true,
	"kvstore": true, "ckpt": true,
}

// TestOracleCompilerEscapeAgreement cross-checks lint/escape against
// the compiler (go build -gcflags=-m) at function granularity: a
// function where the analyzer recorded zero allocation sites is
// "claimed clean", and a compiler heap verdict inside a claimed-clean
// function is a soundness miss that fails the test. Verdicts inside
// functions the analyzer already knows allocate are agreement — the
// exact line can differ (multi-line variadic calls attribute each
// boxed argument to its own line; inlined stdlib calls attribute the
// callee's allocation to the call site). Package-scope initializers
// are outside any function and are logged only. CI runs this as an
// allow-failure job: compiler releases move their escape analysis,
// and this test tracks the drift rather than gating merges on it.
func TestOracleCompilerEscapeAgreement(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}

	args := []string{"build", "-gcflags=-m"}
	for _, pkg := range oraclePkgs {
		args = append(args, "./"+strings.TrimPrefix(pkg, "mmdb/"))
	}
	cmd := exec.Command(goBin, args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m: %v\n%s", err, out)
	}

	// The analyzer's site lines: file → set of lines holding at least
	// one site (cold and exempted included — the oracle asks "did we
	// see the allocation", not "did we report it"). Site positions
	// travel in the serialized facts as "file:line:col" strings.
	ld := newRepoLoader(t)
	byPkg, err := ld.Facts(Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	siteLines := make(map[string]map[int]bool)
	funcHasSites := make(map[string]bool) // "Recv.Name" / "Name" → has ≥1 site
	for _, pkg := range oraclePkgs {
		var f Facts
		if err := json.Unmarshal(byPkg[pkg], &f); err != nil {
			t.Fatalf("decoding %s facts: %v", pkg, err)
		}
		if f.Escape == nil {
			t.Fatalf("%s: no escape facts", pkg)
		}
		for name, fi := range f.Escape.Funcs {
			if len(fi.Sites) > 0 {
				// Fact keys are "pkgpath.Recv.Name"; index by the
				// path-free tail so inlined-callee names match.
				funcHasSites[strings.TrimPrefix(name, pkg+".")] = true
			}
			for _, s := range fi.Sites {
				parts := strings.Split(s.Posn, ":")
				if len(parts) < 3 {
					continue
				}
				file := strings.Join(parts[:len(parts)-2], ":")
				n, err := strconv.Atoi(parts[len(parts)-2])
				if err != nil {
					continue
				}
				if siteLines[file] == nil {
					siteLines[file] = make(map[int]bool)
				}
				siteLines[file][n] = true
			}
		}
	}

	// Inlined callees by "file:line": a heap verdict at an inlining
	// position belongs to the callee's body, not the enclosing function.
	inlined := make(map[string][]string)
	for _, line := range strings.Split(string(out), "\n") {
		m := inlineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		callee := strings.NewReplacer("(*", "", ")", "").Replace(m[3])
		inlined[m[1]+":"+m[2]] = append(inlined[m[1]+":"+m[2]], callee)
	}

	spans := funcSpans(t, root)
	misses, lineAgreed, funcAgreed := 0, 0, 0
	for _, line := range strings.Split(string(out), "\n") {
		if m := movedRe.FindStringSubmatch(line); m != nil {
			t.Logf("unmodeled (address-taken local): %s", line)
			continue
		}
		m := heapRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := filepath.Join(root, m[1])
		n, _ := strconv.Atoi(m[2])
		if siteLines[file][n] {
			lineAgreed++
			continue
		}
		// No site on the exact line: excuse the verdict if the
		// enclosing function has sites elsewhere — it is not claimed
		// clean, so the analyzer's answer for it is already "allocates".
		sp, in := enclosing(spans[file], n)
		if !in {
			t.Logf("package-scope initializer (outside any function): %s", line)
			continue
		}
		hasSite := false
		for l := sp.start; l <= sp.end; l++ {
			if siteLines[file][l] {
				hasSite = true
				break
			}
		}
		if hasSite {
			funcAgreed++
			t.Logf("line-attribution drift inside allocating %s: %s", sp.name, line)
			continue
		}
		// A verdict at an inlining position belongs to the inlined
		// callee: if a module-internal callee has sites of its own the
		// analyzer did account for the allocation (at the callee's real
		// line); an extra-module callee's body is outside the
		// module-scoped lattice entirely — the AllocsPerRun guards are
		// the runtime backstop for those.
		excused := false
		for _, callee := range inlined[m[1]+":"+m[2]] {
			head, _, qualified := strings.Cut(callee, ".")
			if qualified && head[0] >= 'a' && head[0] <= 'z' && !modulePkgNames[head] {
				t.Logf("allocation inside inlined stdlib callee %s (outside the module lattice): %s", callee, line)
				excused = true
				break
			}
			if funcHasSites[callee] {
				funcAgreed++
				t.Logf("allocation attributed to inlined %s, which the analyzer sites at its own line: %s", callee, line)
				excused = true
				break
			}
		}
		if excused {
			continue
		}
		misses++
		t.Errorf("compiler found a heap allocation inside %s, which the analyzer claims allocation-free: %s", sp.name, line)
	}
	t.Logf("oracle: %d verdicts matched a site line, %d landed in known-allocating functions, %d soundness misses", lineAgreed, funcAgreed, misses)
	if lineAgreed == 0 {
		t.Fatal("oracle matched nothing: the -m output or fact positions are not being parsed")
	}
}

// fnSpan is one function declaration's line extent.
type fnSpan struct {
	name       string
	start, end int
}

// funcSpans parses the oracle packages' non-test sources and returns,
// per file, the declared functions' line spans.
func funcSpans(t *testing.T, root string) map[string][]fnSpan {
	t.Helper()
	out := make(map[string][]fnSpan)
	fset := token.NewFileSet()
	for _, pkg := range oraclePkgs {
		dir := filepath.Join(root, strings.TrimPrefix(pkg, "mmdb"))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				name := fn.Name.Name
				if fn.Recv != nil && len(fn.Recv.List) > 0 {
					if id := recvIdent(fn.Recv.List[0].Type); id != "" {
						name = id + "." + name
					}
				}
				out[path] = append(out[path], fnSpan{
					name:  name,
					start: fset.Position(fn.Pos()).Line,
					end:   fset.Position(fn.End()).Line,
				})
			}
		}
	}
	return out
}

// enclosing finds the span containing the given line.
func enclosing(spans []fnSpan, line int) (fnSpan, bool) {
	for _, sp := range spans {
		if line >= sp.start && line <= sp.end {
			return sp, true
		}
	}
	return fnSpan{}, false
}
