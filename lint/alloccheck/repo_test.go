package alloccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmdb/lint/analysis/analysistest"
)

// allocAudited are the packages on the engine's hot paths, dependency
// order: a package's facts must exist before its dependents are
// checked.
var allocAudited = []string{
	"mmdb/internal/obs",
	"mmdb/internal/faultfs",
	"mmdb/internal/storage",
	"mmdb/internal/wal",
	"mmdb/internal/lockmgr",
	"mmdb/index",
	"mmdb/internal/engine",
	"mmdb",
	"mmdb/kvstore",
}

// minAuditedAnnotations is a tripwire: the load-bearing scan below must
// discover at least this many alloc:allowed annotations. If a refactor
// moves exempted code out of the audited packages, this fails instead
// of the scan silently auditing nothing.
const minAuditedAnnotations = 20

// TestRepoHotPathsAllocationFree runs alloccheck over the real engine
// stack: every function reachable from a perf:hotpath root is
// allocation-free or carries a reasoned exemption, and no exemption is
// missing its reason.
func TestRepoHotPathsAllocationFree(t *testing.T) {
	ld := newRepoLoader(t)
	for _, pkg := range allocAudited {
		diags, err := ld.Check(Analyzer, pkg)
		if err != nil {
			t.Fatalf("checking %s: %v", pkg, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %v: %s", pkg, ld.Fset().Position(d.Pos), d.Message)
		}
	}
}

// TestRepoRootsAnnotated pins the perf:hotpath root set: the paper's
// hot paths must stay annotated, or reachability silently audits
// nothing.
func TestRepoRootsAnnotated(t *testing.T) {
	wantRoots := []string{
		"mmdb/internal/wal.Log.Append",
		"mmdb/internal/engine.Txn.Write",
		"mmdb/internal/engine.Txn.Commit",
		"mmdb/internal/engine.Engine.ExecWrite",
		"mmdb/internal/lockmgr.Manager.Lock",
		"mmdb/internal/lockmgr.Manager.TryLock",
		"mmdb/internal/lockmgr.Manager.Unlock",
		"mmdb/internal/lockmgr.Manager.ReleaseAll",
		"mmdb/internal/obs.Histogram.Observe",
		"mmdb/internal/obs.Histogram.ObserveSince",
		"mmdb/internal/obs.Tracer.Record",
		"mmdb.DB.ExecWrite",
		"mmdb.DB.ReadRecordInto",
		"mmdb/kvstore.Local.Get",
		"mmdb/kvstore.Local.Put",
	}
	roots := make(map[string]bool)
	for pkg, fns := range scanAnnotations(t) {
		for fn, a := range fns {
			if a.isRoot {
				roots[pkg+"."+fn] = true
			}
		}
	}
	for _, r := range wantRoots {
		if !roots[r] {
			t.Errorf("perf:hotpath root %s is missing", r)
		}
	}
}

// TestRepoExemptionsAreLoadBearing re-runs the sweep with exemption
// recognition disabled and requires every alloc:allowed annotation in
// the audited packages to make at least one site resurface — at the
// annotated line (site exemptions) or inside the annotated function
// (doc exemptions). An annotation that suppresses nothing is dead
// documentation and must be deleted.
func TestRepoExemptionsAreLoadBearing(t *testing.T) {
	exemptionsEnabled = false
	defer func() { exemptionsEnabled = true }()

	ld := newRepoLoader(t)
	var blob strings.Builder
	for _, pkg := range allocAudited {
		diags, err := ld.Check(Analyzer, pkg)
		if err != nil {
			t.Fatalf("checking %s: %v", pkg, err)
		}
		for _, d := range diags {
			fmt.Fprintf(&blob, "%v: %s\n", ld.Fset().Position(d.Pos), d.Message)
		}
	}
	all := blob.String()
	// Both diagnostic positions and cross-package messages cite sites as
	// absolute "file:line:col", so a substring probe finds either form.
	lineHit := func(file string, line int) bool {
		return strings.Contains(all, fmt.Sprintf("%s:%d:", file, line))
	}

	audited := 0
	for _, fns := range scanAnnotations(t) {
		for name, a := range fns {
			if a.allowedLine > 0 { // function-level exemption
				audited++
				hit := false
				for l := a.bodyStart; l <= a.bodyEnd; l++ {
					if lineHit(a.file, l) {
						hit = true
						break
					}
				}
				if !hit {
					t.Errorf("function-level alloc:allowed on %s (%s:%d) is not load-bearing: no site resurfaced with exemptions disabled", name, a.file, a.allowedLine)
				}
			}
			for _, l := range a.siteLines {
				audited++
				if !lineHit(a.file, l) && !lineHit(a.file, l+1) {
					t.Errorf("site alloc:allowed at %s:%d is not load-bearing: no site resurfaced with exemptions disabled", a.file, l)
				}
			}
		}
	}
	if audited < minAuditedAnnotations {
		t.Fatalf("annotation scan found only %d alloc:allowed annotations (want ≥ %d): the audit is not covering the repository", audited, minAuditedAnnotations)
	}
}

// annotated describes one function's annotations in the source scan.
type annotated struct {
	file        string
	isRoot      bool
	allowedLine int // doc-comment alloc:allowed line; 0 = none
	bodyStart   int
	bodyEnd     int
	siteLines   []int // inline alloc:allowed comment lines within the function
}

// scanAnnotations parses the audited packages' non-test sources and
// returns, per package, each annotated function's perf:hotpath /
// alloc:allowed state, plus inline site-exemption comment lines
// (attributed to the enclosing function; file-scope comments are
// attributed to a pseudo-entry per file).
func scanAnnotations(t *testing.T) map[string]map[string]annotated {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]map[string]annotated)
	for _, pkg := range allocAudited {
		dir := filepath.Join(root, strings.TrimPrefix(pkg, "mmdb"))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		fns := make(map[string]annotated)
		fset := token.NewFileSet()
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			docs := make(map[*ast.CommentGroup]bool)
			type span struct {
				name       string
				start, end int
			}
			var spans []span
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn.Doc != nil {
					docs[fn.Doc] = true
				}
				name := fn.Name.Name
				if fn.Recv != nil && len(fn.Recv.List) > 0 {
					if id := recvIdent(fn.Recv.List[0].Type); id != "" {
						name = id + "." + name
					}
				}
				a := annotated{
					file:      path,
					bodyStart: fset.Position(fn.Pos()).Line,
					bodyEnd:   fset.Position(fn.End()).Line,
				}
				if fn.Doc != nil {
					if _, found := hotpathDirective(fn.Doc.Text()); found {
						a.isRoot = true
					}
					if _, found, _ := allowedDirective(fn.Doc.Text()); found {
						a.allowedLine = fset.Position(fn.Doc.Pos()).Line
					}
				}
				fns[name] = a
				spans = append(spans, span{name, a.bodyStart, a.bodyEnd})
			}
			for _, cg := range f.Comments {
				if docs[cg] {
					continue
				}
				for _, c := range cg.List {
					if _, found, _ := allowedDirective(c.Text); !found {
						continue
					}
					line := fset.Position(c.Pos()).Line
					owner := ""
					for _, sp := range spans {
						if line >= sp.start && line <= sp.end {
							owner = sp.name
							break
						}
					}
					if owner == "" {
						owner = "file:" + e.Name()
					}
					a := fns[owner]
					if a.file == "" {
						a.file = path
					}
					a.siteLines = append(a.siteLines, line)
					fns[owner] = a
				}
			}
		}
		out[pkg] = fns
	}
	return out
}

// recvIdent extracts the receiver type name from a receiver type expr.
func recvIdent(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvIdent(e.X)
	case *ast.IndexExpr:
		return recvIdent(e.X)
	}
	return ""
}

func newRepoLoader(t *testing.T) *analysistest.Loader {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("repository root not found: %v", err)
	}
	ld := analysistest.NewLoader("", map[string]string{"mmdb": root})
	for _, pkg := range allocAudited {
		if err := ld.Load(pkg); err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
	}
	return ld
}
