// Package alloccheck enforces hot-path allocation discipline. The
// paper's premise is that the transaction path runs at memory speed;
// ROADMAP item 4 names the failure mode: avoidable heap traffic on
// commit/WAL/lock paths. This analyzer makes the discipline a build
// gate instead of a benchmark regression hunt:
//
//   - A function annotated "perf:hotpath" (optionally
//     "perf:hotpath(note)") in its doc comment is a hot-path root:
//     Exec/commit, wal.Append and the flush encoding, lockmgr
//     acquire/release, obs histogram record, kvstore Get/Put.
//
//   - Every function reachable from a root over the merged
//     lint/callgraph facts (go-spawn edges excluded — a goroutine's
//     allocations are its own budget) must be allocation-free per
//     lint/escape, or carry a reasoned "alloc:allowed(reason)"
//     exemption — on the function doc (whole function) or as a comment
//     on/above the specific site. Reasons are mandatory; a reasonless
//     bare exemption is itself a diagnostic.
//
//   - Cold sites (reachable only from panic exits or error returns,
//     per the cfg classification in lint/escape) are not reported:
//     fmt.Errorf on a failure path is fine, allocation on the success
//     path is not.
//
// Escape facts (parameter-leak vectors and remaining sites) travel
// between packages in .vetx files, so engine's &wal.Record{...} handed
// to wal's non-leaking Append is proved stack-resident across the
// package boundary, and a hot root in kvstore sees allocation sites
// three packages down.
//
// Test files are exempt. A test-only oracle (oracle_test.go)
// cross-checks the verdicts against the compiler's own escape analysis
// (go build -gcflags=-m): a function this analyzer calls
// allocation-free in which the compiler finds a heap escape fails the
// test; the reverse (our conservatism) is logged, not failed.
package alloccheck

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"mmdb/lint/analysis"
	"mmdb/lint/callgraph"
	"mmdb/lint/escape"
)

var Analyzer = &analysis.Analyzer{
	Name:        "alloccheck",
	Doc:         "checks that functions reachable from perf:hotpath roots are allocation-free or carry reasoned alloc:allowed exemptions",
	ExportFacts: exportFacts,
	Run:         run,
}

// Facts is one package's contribution: per-function annotation state
// and unexempted hot sites, the full escape summary (param-leak
// vectors feed dependents' escape analyses), and the call-graph slice.
type Facts struct {
	Funcs  map[string]FuncFact `json:"funcs,omitempty"`
	Escape *escape.Facts       `json:"escape,omitempty"`
	CG     *callgraph.Facts    `json:"cg,omitempty"`
}

// FuncFact describes one declared function.
type FuncFact struct {
	// IsRoot marks a perf:hotpath annotation; Root carries its note.
	IsRoot bool   `json:"isRoot,omitempty"`
	Root   string `json:"root,omitempty"`
	// IsAllowed marks a function-level alloc:allowed; Allowed is the
	// reason.
	IsAllowed bool   `json:"isAllowed,omitempty"`
	Allowed   string `json:"allowed,omitempty"`
	// Sites are printable "pos: kind: desc" strings for the hot
	// (non-cold), unexempted allocation sites remaining in the function.
	Sites []string `json:"sites,omitempty"`
}

// exemptionsEnabled is lowered only by tests, to prove the repository's
// exemption annotations are load-bearing: with them ignored, every
// exempted site must resurface through the sweep.
var exemptionsEnabled = true

var (
	hotpathRe = regexp.MustCompile(`^perf:hotpath(?:\(([^)]*)\))?`)
	allowedRe = regexp.MustCompile(`^alloc:allowed\(([^)]*)\)`)
)

// trimCommentLine strips comment markers and surrounding space from one
// line of comment text, leaving the would-be directive at the front.
func trimCommentLine(line string) string {
	line = strings.TrimSpace(line)
	line = strings.TrimPrefix(line, "//")
	line = strings.TrimPrefix(line, "/*")
	line = strings.TrimPrefix(line, "*")
	return strings.TrimSpace(line)
}

// allowedDirective scans comment text for an alloc:allowed annotation.
// The annotation must be in directive position — opening a comment line
// — so prose that merely mentions alloc:allowed (documentation, the
// analyzer's own sources) is not an annotation. found reports an
// annotation; bare reports it lacks the required (reason).
func allowedDirective(text string) (reason string, found, bare bool) {
	for _, line := range strings.Split(text, "\n") {
		line = trimCommentLine(line)
		if !strings.HasPrefix(line, "alloc:allowed") {
			continue
		}
		if m := allowedRe.FindStringSubmatch(line); m != nil {
			return strings.TrimSpace(m[1]), true, false
		}
		return "", true, true
	}
	return "", false, false
}

// hotpathDirective scans comment text for a perf:hotpath root
// annotation, directive position only.
func hotpathDirective(text string) (note string, found bool) {
	for _, line := range strings.Split(text, "\n") {
		line = trimCommentLine(line)
		if m := hotpathRe.FindStringSubmatch(line); m != nil {
			return strings.TrimSpace(m[1]), true
		}
	}
	return "", false
}

// localFunc is the in-memory, position-bearing form of FuncFact.
type localFunc struct {
	decl    *ast.FuncDecl
	root    *string // perf:hotpath note; nil = not a root
	allowed *string // function-level alloc:allowed reason; nil = absent
	// hot are the function's non-cold, non-site-exempted sites.
	hot []escape.Site
}

// siteExemption is one alloc:allowed comment at a specific line.
type siteExemption struct {
	pos    token.Pos
	reason string
}

type state struct {
	esc   *escape.Facts
	funcs map[string]*localFunc
	// exempts maps "filename:line" (the comment's line) to the
	// exemption; a site matches on its own line or the line above.
	exempts map[string]*siteExemption
}

// analyze computes the package's escape facts (seeded with every
// dependency's exported escape summary), annotation state, and
// per-function remaining hot sites.
func analyze(pass *analysis.Pass) (*state, error) {
	deps := make(map[string]*escape.Facts)
	for pkgPath := range pass.Facts {
		var f Facts
		if ok, err := pass.DecodeFacts(pkgPath, &f); err != nil {
			return nil, err
		} else if ok && f.Escape != nil {
			deps[pkgPath] = f.Escape
		}
	}
	st := &state{
		esc:     escape.Compute(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo, deps),
		funcs:   make(map[string]*localFunc),
		exempts: make(map[string]*siteExemption),
	}

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Function doc comments carry function-level annotations and are
		// excluded from the site-exemption comment scan.
		docs := make(map[*ast.CommentGroup]bool)
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Doc != nil {
				docs[fn.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			if docs[cg] {
				continue
			}
			for _, c := range cg.List {
				if reason, found, _ := allowedDirective(c.Text); found {
					p := pass.Fset.Position(c.Pos())
					key := p.Filename + ":" + strconv.Itoa(p.Line)
					st.exempts[key] = &siteExemption{pos: c.Pos(), reason: reason}
				}
			}
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lf := &localFunc{decl: fn}
			if fn.Doc != nil {
				doc := fn.Doc.Text()
				if note, found := hotpathDirective(doc); found {
					lf.root = &note
				}
				if reason, found, _ := allowedDirective(doc); found {
					lf.allowed = &reason
				}
			}
			key := callgraph.DeclKey(pass.Pkg.Path(), fn)
			st.funcs[key] = lf

			if lf.allowed != nil && *lf.allowed != "" && exemptionsEnabled {
				continue // whole function exempt
			}
			for _, site := range st.esc.Funcs[key].Sites {
				if site.Cold {
					continue
				}
				if exemptionsEnabled && st.siteExempt(pass.Fset, site) {
					continue
				}
				lf.hot = append(lf.hot, site)
			}
		}
	}
	return st, nil
}

// siteExempt reports whether a reasoned alloc:allowed comment covers
// the site's line (same line or the line above).
func (st *state) siteExempt(fset *token.FileSet, site escape.Site) bool {
	p := fset.Position(site.Pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		if e, ok := st.exempts[p.Filename+":"+strconv.Itoa(line)]; ok && e.reason != "" {
			return true
		}
	}
	return false
}

func exportFacts(pass *analysis.Pass) any {
	st, err := analyze(pass)
	if err != nil {
		return nil
	}
	f := &Facts{
		Funcs:  make(map[string]FuncFact, len(st.funcs)),
		Escape: st.esc,
		CG:     callgraph.Compute(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo),
	}
	for key, lf := range st.funcs {
		ff := FuncFact{}
		if lf.root != nil {
			ff.IsRoot, ff.Root = true, *lf.root
		}
		if lf.allowed != nil && *lf.allowed != "" && exemptionsEnabled {
			ff.IsAllowed, ff.Allowed = true, *lf.allowed
		}
		for _, site := range lf.hot {
			ff.Sites = append(ff.Sites, site.Posn+": "+string(site.Kind)+": "+site.Desc)
		}
		if ff.IsRoot || ff.IsAllowed || len(ff.Sites) > 0 {
			f.Funcs[key] = ff
		}
	}
	return f
}

func run(pass *analysis.Pass) error {
	st, err := analyze(pass)
	if err != nil {
		return err
	}

	// Annotation hygiene: every exemption carries a reason.
	for _, lf := range st.funcs {
		if lf.allowed != nil && *lf.allowed == "" {
			pass.Reportf(lf.decl.Pos(), "alloc:allowed needs a reason: alloc:allowed(<why this allocation is acceptable on a hot path>)")
		}
	}
	for _, e := range st.exempts {
		if e.reason == "" {
			pass.Reportf(e.pos, "alloc:allowed needs a reason: alloc:allowed(<why this allocation is acceptable on a hot path>)")
		}
	}

	// Merge every package's facts and walk the call graph from this
	// package's perf:hotpath roots (synchronous edges only).
	merged := make(map[string]FuncFact)
	cgs := make(map[string]*callgraph.Facts)
	for pkgPath := range pass.Facts {
		var f Facts
		if ok, err := pass.DecodeFacts(pkgPath, &f); err != nil {
			return err
		} else if ok {
			for k, ff := range f.Funcs {
				merged[k] = ff
			}
			cgs[pkgPath] = f.CG
		}
	}
	// The own package's facts are recomputed fresh (the pass's fact map
	// may hold a stale or absent self-entry).
	if own, _ := exportFacts(pass).(*Facts); own != nil {
		for k, ff := range own.Funcs {
			merged[k] = ff
		}
		cgs[pass.Pkg.Path()] = own.CG
	}
	graph := callgraph.Merge(cgs)

	var entries []string
	for key, lf := range st.funcs {
		if lf.root != nil {
			entries = append(entries, key)
		}
	}
	sort.Strings(entries)

	ownPrefix := pass.Pkg.Path() + "."
	reported := make(map[string]bool) // func key → already reported here
	for _, entry := range entries {
		reach := graph.Reachable(entry, false)
		reach[entry] = true // the root's own body is on the hot path
		var keys []string
		for k := range reach {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, callee := range keys {
			if reported[callee] {
				continue
			}
			ff, ok := merged[callee]
			if !ok || ff.IsAllowed || len(ff.Sites) == 0 {
				continue
			}
			reported[callee] = true
			var path string
			if callee == entry {
				path = strings.TrimPrefix(entry, ownPrefix)
			} else {
				path = strings.Join(graph.Path(entry, callee, false), " → ")
			}
			if lf, local := st.funcs[callee]; local {
				// Report at each site when it lives in this package.
				for _, site := range lf.hot {
					pass.Reportf(site.Pos, "allocation on a hot path: %s [%s], reachable from perf:hotpath root %s (%s); make it allocation-free or annotate the site or function with alloc:allowed(reason)",
						site.Desc, site.Kind, strings.TrimPrefix(entry, ownPrefix), path)
				}
				continue
			}
			pass.Reportf(st.funcs[entry].decl.Pos(), "hot path %s reaches allocation site(s) in %s: %s; make them allocation-free or annotate alloc:allowed(reason)",
				path, callee, strings.Join(ff.Sites, "; "))
		}
	}
	return nil
}
