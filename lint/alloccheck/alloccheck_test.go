package alloccheck_test

import (
	"testing"

	"mmdb/lint/alloccheck"
	"mmdb/lint/analysis/analysistest"
)

func TestAllocCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), alloccheck.Analyzer,
		"allocmod/dep", "allocmod/top")
}
