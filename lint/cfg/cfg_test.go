package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"mmdb/lint/cfg"
)

// build parses src (a complete file) and returns the CFG of its first
// function declaration.
func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return cfg.New(fn.Name.Name, fn.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// blockOf returns the block containing a call to the named function,
// e.g. blockOf(g, "mark") finds the block with a `mark(...)` statement.
func blockOf(t *testing.T, g *cfg.Graph, name string) *cfg.Block {
	t.Helper()
	var found *cfg.Block
	for _, bl := range g.Blocks {
		for _, n := range bl.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = bl
				}
				return true
			})
		}
	}
	if found == nil {
		t.Fatalf("no block calls %s in:\n%s", name, g)
	}
	return found
}

func hasEdge(from, to *cfg.Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// reaches reports whether to is reachable from from along Succs edges.
func reaches(from, to *cfg.Block) bool {
	seen := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestIfElseBothReturn(t *testing.T) {
	g := build(t, `package p
func f(c bool) int {
	if c {
		return 1
	} else {
		return 2
	}
	dead()
	return 3
}
func dead() {}`)
	d := blockOf(t, g, "dead")
	if len(d.Preds) != 0 {
		t.Errorf("statement after if/else-both-return should be unreachable, got %d preds", len(d.Preds))
	}
	// Exit has the two return edges plus possibly the dead return.
	if len(g.Exit.Preds) < 2 {
		t.Errorf("exit should have >=2 preds, got %d\n%s", len(g.Exit.Preds), g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	before()
	if c {
		inside()
	}
	after()
}
func before(); func inside(); func after()`)
	b, in, a := blockOf(t, g, "before"), blockOf(t, g, "inside"), blockOf(t, g, "after")
	if !hasEdge(b, in) {
		t.Errorf("missing cond->then edge\n%s", g)
	}
	if !reaches(b, a) || !reaches(in, a) {
		t.Errorf("after() must be reachable via both arms\n%s", g)
	}
	// The skip edge: before's block must also reach after without going
	// through inside.
	skip := false
	for _, s := range b.Succs {
		if s != in && reaches(s, a) {
			skip = true
		}
	}
	if !skip {
		t.Errorf("missing else-less skip edge\n%s", g)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	g := build(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		body()
	}
	after()
}
func body(); func after()`)
	bb := blockOf(t, g, "body")
	ab := blockOf(t, g, "after")
	if !reaches(bb, bb) {
		t.Errorf("loop body should reach itself via the back edge\n%s", g)
	}
	if !reaches(bb, ab) {
		t.Errorf("loop body should reach the loop exit\n%s", g)
	}
	if !reaches(g.Entry, ab) {
		t.Errorf("after() unreachable\n%s", g)
	}
}

func TestInfiniteLoopOnlyBreakExits(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	for {
		if c {
			break
		}
		body()
	}
	after()
}
func body(); func after()`)
	ab := blockOf(t, g, "after")
	if !reaches(g.Entry, ab) {
		t.Errorf("break should be the exit of for{}\n%s", g)
	}

	g2 := build(t, `package p
func f() {
	for {
		body()
	}
	after()
}
func body(); func after()`)
	ab2 := blockOf(t, g2, "after")
	if reaches(g2.Entry, ab2) {
		t.Errorf("for{} without break must not fall through\n%s", g2)
	}
}

func TestLabeledBreakNestedLoop(t *testing.T) {
	g := build(t, `package p
func f(m, n int) {
outer:
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				break outer
			}
			inner()
		}
		mid()
	}
	after()
}
func inner(); func mid(); func after()`)
	in := blockOf(t, g, "inner")
	ab := blockOf(t, g, "after")
	if !reaches(in, ab) {
		t.Errorf("labeled break should exit both loops\n%s", g)
	}
	// The labeled break must NOT pass through mid() on its way out: find
	// the break's block and check its successor skips the outer loop.
	var brk *cfg.Block
	for _, bl := range g.Blocks {
		for _, n := range bl.Nodes {
			if bs, ok := n.(*ast.BranchStmt); ok && bs.Label != nil {
				brk = bl
			}
		}
	}
	if brk == nil {
		t.Fatalf("no break block\n%s", g)
	}
	mid := blockOf(t, g, "mid")
	for _, s := range brk.Succs {
		if reaches(s, mid) {
			t.Errorf("break outer must not re-enter the outer loop body\n%s", g)
		}
	}
}

func TestLabeledContinue(t *testing.T) {
	g := build(t, `package p
func f(m, n int) {
outer:
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue outer
			}
			inner()
		}
	}
	after()
}
func inner(); func after()`)
	in := blockOf(t, g, "inner")
	if !reaches(in, in) {
		t.Errorf("continue outer keeps looping; inner must stay reachable from itself\n%s", g)
	}
	if !reaches(g.Entry, blockOf(t, g, "after")) {
		t.Errorf("after() unreachable\n%s", g)
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	before()
loop:
	body()
	if c {
		goto done
	}
	goto loop
done:
	after()
}
func before(); func body(); func after()`)
	bb := blockOf(t, g, "body")
	ab := blockOf(t, g, "after")
	if !reaches(bb, bb) {
		t.Errorf("backward goto must form a cycle\n%s", g)
	}
	if !reaches(bb, ab) {
		t.Errorf("forward goto must reach done\n%s", g)
	}
	if !reaches(g.Entry, ab) {
		t.Errorf("after() unreachable from entry\n%s", g)
	}
}

func TestPanicEdge(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	if c {
		panic("boom")
	}
	after()
}
func after()`)
	var panicBlk *cfg.Block
	for _, bl := range g.Blocks {
		if bl.Kind == cfg.KindPanic {
			panicBlk = bl
		}
	}
	if panicBlk == nil {
		t.Fatalf("no panic block\n%s", g)
	}
	if !hasEdge(panicBlk, g.Exit) {
		t.Errorf("panic block must edge to exit\n%s", g)
	}
	if reaches(panicBlk, blockOf(t, g, "after")) {
		t.Errorf("panic must not fall through to after()\n%s", g)
	}
}

func TestDeferRecorded(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	defer cleanup()
	if c {
		defer extra()
	}
	after()
}
func cleanup(); func extra(); func after()`)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 defers, got %d", len(g.Defers))
	}
	// First defer registers on the entry path; second inside the if arm.
	if g.Defers[0].Block == nil || g.Defers[1].Block == nil {
		t.Fatal("defer blocks not recorded")
	}
	if g.Defers[0].Block == g.Defers[1].Block {
		t.Errorf("defers in different arms must be in different blocks\n%s", g)
	}
	// The conditional defer's block must not be on every path: entry must
	// reach exit without it.
	seen := map[*cfg.Block]bool{g.Defers[1].Block: true} // treat as removed
	var walk func(b *cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	if !walk(g.Entry) {
		t.Errorf("conditional defer should not dominate exit\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, `package p
func f(x int) {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		def()
	}
	after()
}
func one(); func two(); func def(); func after()`)
	one, two := blockOf(t, g, "one"), blockOf(t, g, "two")
	if !hasEdge(one, two) {
		t.Errorf("fallthrough must edge to the next case body\n%s", g)
	}
	for _, name := range []string{"one", "two", "def"} {
		if !reaches(blockOf(t, g, name), blockOf(t, g, "after")) {
			t.Errorf("case %s must reach after()\n%s", name, g)
		}
	}
}

func TestSwitchNoDefaultSkips(t *testing.T) {
	g := build(t, `package p
func f(x int) {
	before()
	switch x {
	case 1:
		one()
	}
	after()
}
func before(); func one(); func after()`)
	b, one, a := blockOf(t, g, "before"), blockOf(t, g, "one"), blockOf(t, g, "after")
	// Without a default the switch head must have a skip edge to done.
	skip := false
	for _, s := range b.Succs {
		if s != one && reaches(s, a) {
			skip = true
		}
	}
	if !skip {
		t.Errorf("switch without default needs a skip edge\n%s", g)
	}
}

func TestTypeSwitch(t *testing.T) {
	g := build(t, `package p
func f(x interface{}) {
	switch x.(type) {
	case int:
		one()
	case string:
		two()
	}
	after()
}
func one(); func two(); func after()`)
	for _, name := range []string{"one", "two", "after"} {
		if !reaches(g.Entry, blockOf(t, g, name)) {
			t.Errorf("%s unreachable\n%s", name, g)
		}
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `package p
func f(a, b chan int) {
	select {
	case <-a:
		one()
	case v := <-b:
		_ = v
		two()
	}
	after()
}
func one(); func two(); func after()`)
	one, two, a := blockOf(t, g, "one"), blockOf(t, g, "two"), blockOf(t, g, "after")
	if one == two {
		t.Errorf("comm clauses must get distinct blocks\n%s", g)
	}
	if !reaches(one, a) || !reaches(two, a) {
		t.Errorf("both clauses must reach after()\n%s", g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := build(t, `package p
func f(xs []int) {
	for _, x := range xs {
		if x < 0 {
			continue
		}
		body()
	}
	after()
}
func body(); func after()`)
	bb := blockOf(t, g, "body")
	if !reaches(bb, bb) {
		t.Errorf("range body should loop\n%s", g)
	}
	if !reaches(g.Entry, blockOf(t, g, "after")) {
		t.Errorf("after() unreachable\n%s", g)
	}
}

func TestEarlyReturnSkipsRest(t *testing.T) {
	g := build(t, `package p
func f(c bool) error {
	if c {
		return nil
	}
	rest()
	return nil
}
func rest()`)
	if len(g.Exit.Preds) < 2 {
		t.Errorf("both returns should edge to exit\n%s", g)
	}
	if !reaches(g.Entry, blockOf(t, g, "rest")) {
		t.Errorf("rest() must stay reachable on the no-return path\n%s", g)
	}
}

func TestFuncLitNotDescended(t *testing.T) {
	g := build(t, `package p
func f() {
	g := func() {
		panic("inner")
	}
	g()
	after()
}
func after()`)
	for _, bl := range g.Blocks {
		if bl.Kind == cfg.KindPanic {
			t.Errorf("panic inside a FuncLit must not create a panic edge in the outer graph\n%s", g)
		}
	}
	if !reaches(g.Entry, blockOf(t, g, "after")) {
		t.Errorf("after() unreachable\n%s", g)
	}
}

func TestSelectWithDefault(t *testing.T) {
	g := build(t, `package p
func f(a chan int) {
	before()
	select {
	case <-a:
		one()
	default:
		def()
	}
	after()
}
func before(); func one(); func def(); func after()`)
	one, d, a := blockOf(t, g, "one"), blockOf(t, g, "def"), blockOf(t, g, "after")
	if one == d {
		t.Errorf("default must get its own block\n%s", g)
	}
	if !reaches(g.Entry, d) {
		t.Errorf("default clause unreachable\n%s", g)
	}
	if !reaches(one, a) || !reaches(d, a) {
		t.Errorf("both the comm clause and default must reach after()\n%s", g)
	}
}

func TestLabeledBreakSelect(t *testing.T) {
	g := build(t, `package p
func f(a chan int, n int) {
	for i := 0; i < n; i++ {
	recv:
		select {
		case <-a:
			break recv
		case <-a:
			skipped()
		}
		mid()
	}
	after()
}
func skipped(); func mid(); func after()`)
	mid := blockOf(t, g, "mid")
	// break recv exits only the select: control continues with mid(),
	// still inside the loop.
	var brk *cfg.Block
	for _, bl := range g.Blocks {
		for _, n := range bl.Nodes {
			if bs, ok := n.(*ast.BranchStmt); ok && bs.Label != nil {
				brk = bl
			}
		}
	}
	if brk == nil {
		t.Fatalf("no labeled break block\n%s", g)
	}
	if !reaches(brk, mid) {
		t.Errorf("break recv must fall through to mid(), not exit the loop\n%s", g)
	}
	if !reaches(mid, mid) {
		t.Errorf("loop must still iterate after the labeled select\n%s", g)
	}
	if !reaches(g.Entry, blockOf(t, g, "after")) {
		t.Errorf("after() unreachable\n%s", g)
	}
}

func TestLabeledBreakSwitch(t *testing.T) {
	g := build(t, `package p
func f(x, n int) {
	for i := 0; i < n; i++ {
	sw:
		switch x {
		case 1:
			break sw
		case 2:
			two()
		}
		mid()
	}
	after()
}
func two(); func mid(); func after()`)
	mid := blockOf(t, g, "mid")
	var brk *cfg.Block
	for _, bl := range g.Blocks {
		for _, n := range bl.Nodes {
			if bs, ok := n.(*ast.BranchStmt); ok && bs.Label != nil {
				brk = bl
			}
		}
	}
	if brk == nil {
		t.Fatalf("no labeled break block\n%s", g)
	}
	if !reaches(brk, mid) {
		t.Errorf("break sw must fall through to mid(), not exit the loop\n%s", g)
	}
	if !reaches(blockOf(t, g, "two"), mid) {
		t.Errorf("case body must reach mid()\n%s", g)
	}
}
