// Package cfg builds intra-procedural control-flow graphs from go/ast,
// for the flow-sensitive mmdblint analyzers. The repository builds
// offline, so it cannot use golang.org/x/tools/go/cfg; this package
// provides the same service in the same spirit: one Graph per function
// body, basic blocks holding statements and the sub-expressions that
// drive control flow, and explicit edges for every construct the
// checkpointing code uses — if/for/range/switch/select, labeled break
// and continue, goto, early return, and panic.
//
// Conventions:
//
//   - Compound statements are decomposed: a block's Nodes list contains
//     simple statements and the init/condition/tag expressions of the
//     control statements, never an if/for/switch node itself, so an
//     analyzer that walks Nodes with ast.Inspect visits each expression
//     exactly once.
//   - There is a single synthetic Exit block. Return statements edge to
//     it, falling off the end of the body edges to it, and a statement
//     that is syntactically a call to the predeclared panic edges to it
//     too (the "panic edge": on that path only deferred calls run).
//     Blocks whose terminator is a panic are marked KindPanic so
//     analyzers can distinguish unwinding exits from normal ones.
//   - Deferred calls are not modeled as edges (they run in LIFO order at
//     every exit, which no static edge placement represents faithfully).
//     Instead each defer is recorded in Graph.Defers together with the
//     block that registers it; analyzers decide what a defer covers,
//     typically by asking whether its block dominates Exit (see
//     lint/dataflow.Dominators).
//   - Function literals are not descended into: a FuncLit body has its
//     own control flow and must be given its own Graph.
//
// Unreachable code (statements after a terminator) is kept in blocks
// with no predecessors rather than dropped, so analyzers still see its
// nodes but no dataflow facts reach them.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block kinds, for debugging and for analyzers that care about how a
// block terminates.
const (
	KindEntry = "entry"
	KindExit  = "exit"
	KindPanic = "panic" // terminated by a call to the predeclared panic
	KindBody  = "body"
)

// Block is one basic block.
type Block struct {
	Index int
	Kind  string
	// Nodes are the block's statements and control sub-expressions in
	// execution order.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// DeferInfo records one defer statement and the block that registers it.
type DeferInfo struct {
	Stmt  *ast.DeferStmt
	Block *Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Name   string
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	Defers []DeferInfo
}

// New builds the control-flow graph of a function body. name is used
// only for diagnostics and String.
func New(name string, body *ast.BlockStmt) *Graph {
	g := &Graph{Name: name}
	b := &builder{g: g, labels: make(map[string]*Block)}
	g.Entry = b.newBlock(KindEntry)
	g.Exit = b.newBlock(KindExit)
	b.cur = g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, g.Exit)
	}
	return g
}

// String renders the graph for tests and debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s:\n", g.Name)
	for _, bl := range g.Blocks {
		fmt.Fprintf(&sb, "  b%d(%s):", bl.Index, bl.Kind)
		for _, s := range bl.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label    string // enclosing statement label, "" if none
	brk      *Block // break target
	cont     *Block // continue target; nil for switch/select
	isSelect bool
}

type builder struct {
	g      *builder_graph
	cur    *Block // nil while the current point is unreachable
	frames []frame
	labels map[string]*Block // goto/label targets
	// pendingLabel is the label of a LabeledStmt whose direct statement
	// is about to be built (so its loop registers the label for labeled
	// break/continue).
	pendingLabel string
	// fallTarget is the next case body while building a switch clause.
	fallTarget *Block
}

// builder_graph aliases Graph so the builder reads naturally.
type builder_graph = Graph

func (b *builder) newBlock(kind string) *Block {
	bl := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, bl)
	return bl
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, starting a fresh unreachable
// block if control cannot reach this point.
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock(KindBody) // unreachable: no predecessors
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending statement label.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	if _, isLabeled := s.(*ast.LabeledStmt); !isLabeled {
		defer func() { b.pendingLabel = "" }()
	}
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur.Kind = KindPanic
			b.edge(b.cur, b.g.Exit)
			b.cur = nil
		}

	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt:
		b.add(s)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, DeferInfo{Stmt: s, Block: b.cur})

	case *ast.GoStmt:
		b.add(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, lb)
		}
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		b.selectStmt(s)

	default:
		// Unknown statement kinds (future Go versions) are treated as
		// straight-line.
		b.add(s)
	}
}

// branch handles break/continue/goto/fallthrough.
func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	if b.cur == nil {
		return
	}
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.edge(b.cur, f.brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont == nil {
				continue // switch/select: continue targets the loop outside
			}
			if label == "" || f.label == label {
				b.edge(b.cur, f.cont)
				break
			}
		}
	case token.GOTO:
		b.edge(b.cur, b.labelBlock(label))
	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			b.edge(b.cur, b.fallTarget)
		}
	}
	b.cur = nil
}

func (b *builder) labelBlock(name string) *Block {
	if bl, ok := b.labels[name]; ok {
		return bl
	}
	bl := b.newBlock("label." + name)
	b.labels[name] = bl
	return bl
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	cond := b.cur
	if cond == nil {
		cond = b.newBlock(KindBody)
	}
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	b.edge(cond, then)
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	} else {
		b.edge(cond, done)
	}
	b.cur = then
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	b.add(s.Init)
	head := b.newBlock("for.head")
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = head
	b.add(s.Cond)
	head = b.cur // add may not move blocks, but stay safe
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, done) // for{} without a condition exits only via break
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.frames = append(b.frames, frame{label: label, brk: done, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.edge(b.cur, head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = head
	b.add(s.X) // the ranged-over expression; per-iteration key/value
	// assignment carries no control flow of its own
	head = b.cur
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edge(head, body)
	b.edge(head, done)
	b.frames = append(b.frames, frame{label: label, brk: done, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// switchStmt builds expression and type switches; assign is the type
// switch's `x := y.(type)` statement.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.add(init)
	b.add(tag)
	b.add(assign)
	head := b.cur
	if head == nil {
		head = b.newBlock(KindBody)
	}
	done := b.newBlock("switch.done")
	b.frames = append(b.frames, frame{label: label, brk: done})

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		bodies[i] = b.newBlock("case.body")
		b.edge(head, bodies[i])
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, cc := range clauses {
		b.cur = bodies[i]
		if i+1 < len(clauses) {
			b.fallTarget = bodies[i+1]
		} else {
			b.fallTarget = nil
		}
		b.stmtList(cc.Body)
		b.fallTarget = nil
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	if head == nil {
		head = b.newBlock(KindBody)
	}
	done := b.newBlock("select.done")
	b.frames = append(b.frames, frame{label: label, brk: done, isSelect: true})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock("comm.body")
		b.edge(head, cb)
		b.cur = cb
		b.stmt(cc.Comm)
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	// select{} with no clauses blocks forever: done keeps no edge from
	// head and is unreachable unless a clause falls through.
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// isPanicCall reports whether e is syntactically a call to the
// predeclared panic. (A shadowed panic would be misclassified; the
// repository does not shadow it.)
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
