package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"mmdb/lint/cfg"
	"mmdb/lint/dataflow"
)

func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return cfg.New(fn.Name.Name, fn.Body)
		}
	}
	t.Fatal("no function")
	return nil
}

func blockOf(t *testing.T, g *cfg.Graph, name string) *cfg.Block {
	t.Helper()
	for _, bl := range g.Blocks {
		for _, n := range bl.Nodes {
			var found bool
			ast.Inspect(n, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return bl
			}
		}
	}
	t.Fatalf("no block calls %s in:\n%s", name, g)
	return nil
}

// callsIn reports whether the block contains a call to name.
func callsIn(b *cfg.Block, name string) bool {
	for _, n := range b.Nodes {
		var found bool
		ast.Inspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// coverage is the walorder-shaped problem: forward must-analysis where
// cover() establishes the fact and Merge is AND.
func coverage() dataflow.Problem {
	return dataflow.Problem{
		Dir:      dataflow.Forward,
		Boundary: func() any { return false },
		Top:      func() any { return true }, // optimistic for must-analysis
		Merge:    func(a, b any) any { return a.(bool) && b.(bool) },
		Transfer: func(b *cfg.Block, in any) any {
			if callsIn(b, "cover") {
				return true
			}
			return in
		},
		Equal: func(a, b any) bool { return a == b },
	}
}

func TestForwardMustBothBranches(t *testing.T) {
	// cover() on both arms: the join is covered.
	g := build(t, `package p
func f(c bool) {
	if c {
		cover()
	} else {
		cover()
	}
	sink()
}
func cover(); func sink()`)
	res := dataflow.Solve(g, coverage())
	if got := res.In[blockOf(t, g, "sink")]; got != true {
		t.Errorf("sink In = %v, want covered (both branches cover)", got)
	}
}

func TestForwardMustOneBranchOnly(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	if c {
		cover()
	}
	sink()
}
func cover(); func sink()`)
	res := dataflow.Solve(g, coverage())
	if got := res.In[blockOf(t, g, "sink")]; got != false {
		t.Errorf("sink In = %v, want uncovered (skip edge bypasses cover)", got)
	}
}

func TestForwardMustLoop(t *testing.T) {
	// cover() before the loop survives the back edge.
	g := build(t, `package p
func f(n int) {
	cover()
	for i := 0; i < n; i++ {
		sink()
	}
}
func cover(); func sink()`)
	res := dataflow.Solve(g, coverage())
	if got := res.In[blockOf(t, g, "sink")]; got != true {
		t.Errorf("sink In = %v, want covered across the loop head", got)
	}

	// cover() only inside the loop body does NOT cover the body's own
	// entry (the first iteration arrives uncovered).
	g2 := build(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		sink()
		cover()
	}
}
func cover(); func sink()`)
	res2 := dataflow.Solve(g2, coverage())
	if got := res2.In[blockOf(t, g2, "sink")]; got != false {
		t.Errorf("sink In = %v, want uncovered on the first iteration", got)
	}
}

func TestBackwardLiveness(t *testing.T) {
	// A backward may-analysis: "does a call to use() lie ahead?".
	g := build(t, `package p
func f(c bool) {
	first()
	if c {
		use()
	}
	last()
}
func first(); func use(); func last()`)
	prob := dataflow.Problem{
		Dir:      dataflow.Backward,
		Boundary: func() any { return false },
		Top:      func() any { return false },
		Merge:    func(a, b any) any { return a.(bool) || b.(bool) },
		Transfer: func(b *cfg.Block, in any) any {
			if callsIn(b, "use") {
				return true
			}
			return in
		},
		Equal: func(a, b any) bool { return a == b },
	}
	res := dataflow.Solve(g, prob)
	if got := res.Out[blockOf(t, g, "first")]; got != true {
		t.Errorf("first Out = %v, want use-ahead on some path", got)
	}
	if got := res.Out[blockOf(t, g, "last")]; got != false {
		t.Errorf("last Out = %v, want no use ahead", got)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	top()
	if c {
		left()
	} else {
		right()
	}
	bottom()
}
func top(); func left(); func right(); func bottom()`)
	idom := dataflow.Dominators(g)
	topB, leftB, rightB, botB := blockOf(t, g, "top"), blockOf(t, g, "left"), blockOf(t, g, "right"), blockOf(t, g, "bottom")
	if !dataflow.Dominates(idom, topB, botB) {
		t.Error("top must dominate bottom")
	}
	if dataflow.Dominates(idom, leftB, botB) || dataflow.Dominates(idom, rightB, botB) {
		t.Error("neither arm dominates the join")
	}
	if !dataflow.Dominates(idom, g.Entry, g.Exit) {
		t.Error("entry must dominate exit")
	}
	if !dataflow.Dominates(idom, botB, botB) {
		t.Error("a block dominates itself")
	}
}

func TestDominatorsLoop(t *testing.T) {
	g := build(t, `package p
func f(n int) {
	pre()
	for i := 0; i < n; i++ {
		body()
	}
	post()
}
func pre(); func body(); func post()`)
	idom := dataflow.Dominators(g)
	preB, bodyB, postB := blockOf(t, g, "pre"), blockOf(t, g, "body"), blockOf(t, g, "post")
	if !dataflow.Dominates(idom, preB, bodyB) || !dataflow.Dominates(idom, preB, postB) {
		t.Error("code before the loop dominates body and exit")
	}
	if dataflow.Dominates(idom, bodyB, postB) {
		t.Error("a conditional loop body must not dominate the loop exit")
	}
}

func TestDominatorsGotoCycle(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	pre()
loop:
	body()
	if c {
		goto loop
	}
	post()
}
func pre(); func body(); func post()`)
	idom := dataflow.Dominators(g)
	preB, bodyB, postB := blockOf(t, g, "pre"), blockOf(t, g, "body"), blockOf(t, g, "post")
	if !dataflow.Dominates(idom, preB, postB) {
		t.Error("pre dominates post across the goto cycle")
	}
	if !dataflow.Dominates(idom, bodyB, postB) {
		t.Error("the goto loop's body is on every path to post")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	g := build(t, `package p
func f() {
	return
	dead()
}
func dead()`)
	idom := dataflow.Dominators(g)
	deadB := blockOf(t, g, "dead")
	if dataflow.Dominates(idom, deadB, g.Exit) {
		t.Error("unreachable code must not dominate exit")
	}
	if _, ok := idom[deadB]; ok {
		t.Error("unreachable block should be absent from the idom tree")
	}
}

func TestDeferDominanceScenario(t *testing.T) {
	// The unlockcheck pattern: a defer registered unconditionally at the
	// top dominates Exit; one inside a branch does not.
	g := build(t, `package p
func f(c bool) {
	defer all()
	if c {
		defer some()
	}
}
func all(); func some()`)
	idom := dataflow.Dominators(g)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 defers, got %d", len(g.Defers))
	}
	if !dataflow.Dominates(idom, g.Defers[0].Block, g.Exit) {
		t.Error("top-level defer must dominate exit")
	}
	if dataflow.Dominates(idom, g.Defers[1].Block, g.Exit) {
		t.Error("conditional defer must not dominate exit")
	}
}
