// Package dataflow provides a generic iterative dataflow solver and a
// dominance computation over lint/cfg graphs. It is the second half of
// the flow-sensitive layer under mmdblint's analyzers and is designed
// to be reused by future ones: an analyzer states its lattice (top,
// boundary, merge, equality) and a per-block transfer function, and
// Solve iterates a worklist to the fixed point.
//
// The two analyses the checkpointing invariants need are both
// expressible this way:
//
//   - walorder's "is this write covered by a durable WAL position on
//     every path" is a forward must-analysis (Merge = AND);
//   - unlockcheck's "which latches might still be held here" is a
//     forward may-analysis over multisets (Merge = max).
//
// Dominators is separate from Solve because its consumers want the
// relation, not a lattice: unlockcheck credits a deferred Unlock only
// if the block registering the defer dominates Exit (i.e. the defer is
// armed on every path out of the function).
package dataflow

import "mmdb/lint/cfg"

// Direction of a dataflow problem.
type Direction int

const (
	Forward  Direction = iota // facts flow Entry -> Exit along Succs
	Backward                  // facts flow Exit -> Entry along Preds
)

// Problem describes one dataflow analysis over a graph. The fact type
// is opaque to the solver; Transfer and Merge must not mutate their
// inputs (return fresh values or share immutable state).
type Problem struct {
	Dir Direction
	// Boundary is the fact at the boundary block (Entry for Forward,
	// Exit for Backward).
	Boundary func() any
	// Top is the initial optimistic fact for every other block; it is
	// also the in-fact of unreachable blocks at the fixed point.
	Top func() any
	// Merge combines the facts arriving over two edges.
	Merge func(a, b any) any
	// Transfer computes the block's out-fact (forward) or in-fact
	// (backward) from the fact entering it.
	Transfer func(b *cfg.Block, in any) any
	// Equal reports whether two facts are equal (fixed-point test).
	Equal func(a, b any) bool
}

// Result holds the per-block fixed point. For a Forward problem, In is
// the fact before the block's first node and Out the fact after its
// last; for Backward the roles mirror (In is the fact "after" in
// execution order).
type Result struct {
	In  map[*cfg.Block]any
	Out map[*cfg.Block]any
}

// Solve iterates p over g to a fixed point and returns the per-block
// facts. Termination is the analyzer's responsibility: Merge must be
// monotone over a lattice of finite height (all mmdblint problems use
// booleans or bounded counters).
func Solve(g *cfg.Graph, p Problem) *Result {
	res := &Result{
		In:  make(map[*cfg.Block]any, len(g.Blocks)),
		Out: make(map[*cfg.Block]any, len(g.Blocks)),
	}
	boundary := g.Entry
	if p.Dir == Backward {
		boundary = g.Exit
	}
	for _, b := range g.Blocks {
		if b == boundary {
			res.In[b] = p.Boundary()
		} else {
			res.In[b] = p.Top()
		}
		res.Out[b] = p.Transfer(b, res.In[b])
	}

	inEdges := func(b *cfg.Block) []*cfg.Block {
		if p.Dir == Forward {
			return b.Preds
		}
		return b.Succs
	}
	outEdges := func(b *cfg.Block) []*cfg.Block {
		if p.Dir == Forward {
			return b.Succs
		}
		return b.Preds
	}

	// Seed the worklist with every block; iterate until stable.
	work := make([]*cfg.Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make(map[*cfg.Block]bool, len(g.Blocks))
	for _, b := range work {
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		in := res.In[b]
		if b != boundary {
			preds := inEdges(b)
			if len(preds) > 0 {
				merged := res.Out[preds[0]]
				for _, p2 := range preds[1:] {
					merged = p.Merge(merged, res.Out[p2])
				}
				in = merged
			}
		}
		out := p.Transfer(b, in)
		res.In[b] = in
		if !p.Equal(out, res.Out[b]) {
			res.Out[b] = out
			for _, s := range outEdges(b) {
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return res
}

// Dominators computes the immediate-dominator tree of g's blocks
// reachable from Entry, using the Cooper–Harvey–Kennedy iterative
// algorithm over a reverse postorder. The returned map sends each
// reachable block to its immediate dominator; Entry maps to itself, and
// unreachable blocks are absent.
func Dominators(g *cfg.Graph) map[*cfg.Block]*cfg.Block {
	// Reverse postorder of the reachable subgraph.
	var post []*cfg.Block
	seen := make(map[*cfg.Block]bool, len(g.Blocks))
	var dfs func(b *cfg.Block)
	dfs = func(b *cfg.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	rpo := make([]*cfg.Block, len(post))
	order := make(map[*cfg.Block]int, len(post))
	for i := range post {
		rpo[len(post)-1-i] = post[i]
	}
	for i, b := range rpo {
		order[b] = i
	}

	idom := make(map[*cfg.Block]*cfg.Block, len(rpo))
	idom[g.Entry] = g.Entry
	intersect := func(a, b *cfg.Block) *cfg.Block {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var newIdom *cfg.Block
			for _, p := range b.Preds {
				if _, ok := idom[p]; !ok {
					continue // pred not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom tree (every
// path from Entry to b passes through a). A block dominates itself.
// Blocks unreachable from Entry dominate nothing and are dominated by
// nothing.
func Dominates(idom map[*cfg.Block]*cfg.Block, a, b *cfg.Block) bool {
	if _, ok := idom[a]; !ok {
		return false
	}
	for {
		if b == a {
			return true
		}
		parent, ok := idom[b]
		if !ok || parent == b {
			return false
		}
		b = parent
	}
}
