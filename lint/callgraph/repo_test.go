package callgraph_test

import (
	"path/filepath"
	"strings"
	"testing"

	"mmdb/lint/callgraph"
)

// TestRepoCallGraph audits the real repository: it computes per-package
// call-graph facts for the engine and its dependencies exactly as
// ctxcheck's fact pipeline does, merges them, and pins the edges the
// concurrency analyzers depend on. A refactor that breaks extraction
// (silently dropping edges) would otherwise read as "everything is
// clean" to every fact consumer.
func TestRepoCallGraph(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	facts := loadFacts(t, map[string]string{"mmdb": root},
		"mmdb/internal/engine",
		"mmdb/internal/lockmgr",
		"mmdb/internal/wal",
		"mmdb/internal/storage",
	)
	g := callgraph.Merge(facts)

	const (
		exec     = "mmdb/internal/engine.Engine.Exec"
		execCtx  = "mmdb/internal/engine.Engine.ExecContext"
		begin    = "mmdb/internal/engine.Engine.Begin"
		commit   = "mmdb/internal/engine.Txn.Commit"
		ckptCtx  = "mmdb/internal/engine.Engine.CheckpointContext"
		sweepPar = "mmdb/internal/engine.Engine.sweepParallel"
		sweepFF  = "mmdb/internal/engine.Engine.sweepFastFuzzyParallel"
		fanOut   = "mmdb/internal/engine.fanOut"
		flushSeg = "mmdb/internal/engine.Engine.flushSegment"
		quiesce  = "mmdb/internal/engine.Engine.quiesce"
		ckptLoop = "mmdb/internal/engine.Engine.checkpointLoop"
		startCL  = "mmdb/internal/engine.Engine.StartCheckpointLoop"
		walApp   = "mmdb/internal/wal.Log.Append"
	)

	// Direct edges on the transaction path.
	for _, e := range [][2]string{{exec, execCtx}, {execCtx, begin}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing direct edge %s -> %s", e[0], e[1])
		}
	}

	// The commit path: ExecContext synchronously reaches Txn.Commit and,
	// through it, the WAL append.
	syncFromExec := g.Reachable(execCtx, false)
	for _, want := range []string{commit, walApp} {
		if !syncFromExec[want] {
			t.Errorf("ExecContext should synchronously reach %s", want)
		}
	}

	// The checkpoint path: CheckpointContext drives the parallel sweeps,
	// the fan-out join, and the per-segment flush without crossing a
	// goroutine boundary — the flush closures run on fanOut's workers,
	// but statically they are attributed to the sweep that declares
	// them, which is what lets ctxcheck hold the sweeps accountable.
	syncFromCkpt := g.Reachable(ckptCtx, false)
	for _, want := range []string{sweepPar, sweepFF, fanOut, flushSeg, quiesce, walApp} {
		if !syncFromCkpt[want] {
			t.Errorf("CheckpointContext should synchronously reach %s", want)
		}
	}

	// The background checkpoint loop is spawned, never called: it must
	// be invisible to synchronous reachability (this is what keeps
	// ctxcheck from charging CheckpointContext with the loop's blocking
	// waits) and visible once go edges are included.
	if syncFromCkpt[ckptLoop] {
		t.Errorf("checkpointLoop must not be synchronously reachable from CheckpointContext")
	}
	if g.Reachable(startCL, false)[ckptLoop] {
		t.Errorf("checkpointLoop must not be synchronously reachable from StartCheckpointLoop")
	}
	if !g.Reachable(startCL, true)[ckptLoop] {
		t.Errorf("StartCheckpointLoop should reach checkpointLoop across the go edge")
	}

	// Path reconstruction agrees with reachability and stays inside the
	// module.
	path := g.Path(ckptCtx, flushSeg, false)
	if len(path) < 2 {
		t.Fatalf("no path CheckpointContext -> flushSegment")
	}
	for _, n := range path {
		if !strings.HasPrefix(n, "mmdb") && !strings.HasPrefix(n, "iface:mmdb") {
			t.Errorf("path node %q escapes the module (path %v)", n, path)
		}
	}
}
