// Package callgraph computes a conservative intra-module call graph
// for one type-checked package at a time, in a form that travels
// through the .vetx fact pipeline: the per-package Facts are plain
// JSON, and Merge stitches every visible package's contribution into
// one Graph with reachability queries. It is a support library like
// lint/cfg and lint/dataflow, not an analyzer itself — ctxcheck embeds
// its Facts in its own fact payload, and the repo regression tests
// query it directly.
//
// # Nodes and keys
//
// A node is a declared function, keyed the way lockorder keys
// annotations but package-qualified: "mmdb/internal/engine.Engine.Begin"
// for a method (the receiver's named type, pointerness ignored),
// "mmdb/internal/wal.Open" for a package function. Function literals do
// not get nodes of their own: calls made inside a closure are
// attributed to the declared function whose body lexically contains it.
// That matches how the engine uses closures — the worker bodies passed
// to fanOut are part of the sweep that builds them — and keeps keys
// stable for tests and annotations.
//
// # Edges
//
// An edge is recorded per syntactic call site whose callee resolves
// statically through types.Info.Uses: direct calls, method calls on
// concrete receivers, and qualified package calls. Calls through
// function-typed variables are dropped (conservatively unresolvable).
// A call on an interface-typed receiver becomes an edge to the pseudo
// node "iface:<pkg>.<Iface>.<Method>"; CHA-style resolution happens at
// merge time via Impls. An edge crosses a goroutine boundary (Go=true)
// when the call is the operand of a go statement or occurs inside a
// closure spawned by one; ctxcheck excludes such edges from context
// reachability, because a spawned goroutine owns its own lifecycle.
//
// Only intra-module callees are kept: a callee belongs to the module
// when its package path shares the caller's first path segment
// ("mmdb/..."). Standard-library calls are never edges.
//
// # CHA implementations
//
// For every named type declared in the package, Impls records which
// module-visible interface methods the type (or its pointer) satisfies,
// as pairs iface:pkg.I.M → pkg.T.M. Merging the pairs from every
// package closes interface calls over all implementations the module
// can see — class-hierarchy analysis, sound for an intra-module graph
// because a type cannot satisfy a module interface without being
// declared in some package of the audit set.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mmdb/lint/analysis"
)

// Facts is one package's contribution to the module call graph.
type Facts struct {
	Funcs []Func `json:"funcs,omitempty"`
	Edges []Edge `json:"edges,omitempty"`
	Impls []Impl `json:"impls,omitempty"`
}

// Func records one declared function or method.
type Func struct {
	Key string `json:"key"`
	Pos string `json:"pos,omitempty"`
}

// Edge is one resolved call site.
type Edge struct {
	Caller string `json:"caller"`
	Callee string `json:"callee"` // function key, or "iface:" pseudo node
	Pos    string `json:"pos,omitempty"`
	// Go marks a call that crosses a goroutine boundary: the operand of
	// a go statement, or any call inside a closure spawned by one.
	Go bool `json:"go,omitempty"`
}

// Impl records that a named type's method satisfies an interface
// method: calls to Iface may dispatch to Impl.
type Impl struct {
	Iface string `json:"iface"`
	Impl  string `json:"impl"`
}

// Compute builds the package's call-graph facts, or nil when the
// package contributes nothing. It never fails: what cannot be resolved
// is simply absent from the edge set.
func Compute(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Facts {
	c := &computer{
		fset:   fset,
		pkg:    pkg,
		info:   info,
		module: moduleOf(pkg.Path()),
		seen:   make(map[Edge]bool),
		facts:  &Facts{},
	}
	for _, f := range files {
		if analysis.IsTestFile(fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			caller := DeclKey(pkg.Path(), fn)
			c.facts.Funcs = append(c.facts.Funcs, Func{Key: caller, Pos: fset.Position(fn.Pos()).String()})
			c.walk(caller, fn.Body, false)
		}
	}
	c.implementations()
	if len(c.facts.Funcs) == 0 && len(c.facts.Edges) == 0 && len(c.facts.Impls) == 0 {
		return nil
	}
	return c.facts
}

type computer struct {
	fset   *token.FileSet
	pkg    *types.Package
	info   *types.Info
	module string
	seen   map[Edge]bool
	facts  *Facts
}

// walk records the call edges under n, attributed to caller. spawned
// is true inside closures launched by a go statement; edges found
// there cross the goroutine boundary.
func (c *computer) walk(caller string, n ast.Node, spawned bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned callee — and everything inside a spawned
			// closure — runs on the new goroutine; the call's arguments
			// still evaluate on this one.
			c.call(caller, n.Call, true)
			for _, a := range n.Call.Args {
				c.walk(caller, a, spawned)
			}
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				c.walk(caller, lit.Body, true)
			}
			return false
		case *ast.CallExpr:
			c.call(caller, n, spawned)
			return true
		}
		return true
	})
}

func (c *computer) call(caller string, call *ast.CallExpr, spawned bool) {
	callee := c.callee(call)
	if callee == "" {
		return
	}
	key := Edge{Caller: caller, Callee: callee, Go: spawned}
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.facts.Edges = append(c.facts.Edges, Edge{
		Caller: caller,
		Callee: callee,
		Pos:    c.fset.Position(call.Pos()).String(),
		Go:     spawned,
	})
}

// callee resolves a call's static target to a node key, or "".
func (c *computer) callee(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := c.info.Uses[fun].(*types.Func); ok {
			return c.moduleKey(FuncKey(fn))
		}
	case *ast.SelectorExpr:
		fn, ok := c.info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return ""
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return ""
		}
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
			named := derefNamed(recv.Type())
			if named == nil || named.Obj().Pkg() == nil ||
				moduleOf(named.Obj().Pkg().Path()) != c.module {
				// The declaring interface lives outside the module, but
				// the method may be promoted into a module interface by
				// embedding (faultfs.File embeds io.WriterAt): the
				// call-site receiver's static type then names the module
				// interface the Impls table is keyed by.
				named = derefNamed(c.info.TypeOf(fun.X))
				if named == nil || !types.IsInterface(named) ||
					named.Obj().Pkg() == nil ||
					moduleOf(named.Obj().Pkg().Path()) != c.module {
					return ""
				}
			}
			return "iface:" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return c.moduleKey(FuncKey(fn))
	}
	return ""
}

// moduleKey keeps key only when it belongs to the caller's module.
func (c *computer) moduleKey(key string) string {
	if key == "" || keyModule(key) != c.module {
		return ""
	}
	return key
}

// moduleOf returns a package path's first segment, the module root all
// intra-module packages share.
func moduleOf(pkgPath string) string {
	if i := strings.IndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[:i]
	}
	return pkgPath
}

// keyModule extracts the module root from a node key
// ("mmdb/internal/wal.Open" → "mmdb", "a.Foo" → "a").
func keyModule(key string) string {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i]
	}
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return key
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// DeclKey names a declared function: pkg.Recv.Name or pkg.Name —
// the node key its CallExpr edges use.
func DeclKey(pkgPath string, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return pkgPath + "." + fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return pkgPath + "." + id.Name + "." + fn.Name.Name
			}
			return pkgPath + "." + fn.Name.Name
		}
	}
}

// FuncKey names a types.Func the same way declKey names its
// declaration. It returns "" for functions that cannot be keyed
// (no package, unnamed receiver type).
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		named := derefNamed(recv.Type())
		if named == nil || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	if named != nil {
		// An instantiated generic's methods belong to the origin.
		named = named.Origin()
	}
	return named
}

// implementations records the CHA pairs: every interface visible from
// this package (module-internal, including the package itself) matched
// against every named type the package declares.
func (c *computer) implementations() {
	ifaces := c.moduleInterfaces()
	scope := c.pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		for _, iface := range ifaces {
			it, _ := iface.typ.Underlying().(*types.Interface)
			if it == nil || it.NumMethods() == 0 {
				continue
			}
			var impl types.Type = named
			if !types.Implements(impl, it) {
				impl = types.NewPointer(named)
				if !types.Implements(impl, it) {
					continue
				}
			}
			for i := 0; i < it.NumMethods(); i++ {
				m := it.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
				mf, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				key := FuncKey(mf)
				if key == "" {
					continue
				}
				c.facts.Impls = append(c.facts.Impls, Impl{
					Iface: "iface:" + iface.key + "." + m.Name(),
					Impl:  key,
				})
			}
		}
	}
	sort.Slice(c.facts.Impls, func(i, j int) bool {
		a, b := c.facts.Impls[i], c.facts.Impls[j]
		if a.Iface != b.Iface {
			return a.Iface < b.Iface
		}
		return a.Impl < b.Impl
	})
}

type ifaceInfo struct {
	key string // pkg.Name
	typ *types.Named
}

// moduleInterfaces lists the named interfaces declared in this package
// and in every module-internal package it (transitively) imports.
func (c *computer) moduleInterfaces() []ifaceInfo {
	var out []ifaceInfo
	seen := map[*types.Package]bool{}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if seen[p] || moduleOf(p.Path()) != c.module {
			return
		}
		seen[p] = true
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || !types.IsInterface(named) {
				continue
			}
			out = append(out, ifaceInfo{key: p.Path() + "." + name, typ: named})
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	visit(c.pkg)
	return out
}

// Merge combines per-package facts into one queryable graph. Interface
// pseudo nodes gain an out-edge to each recorded implementation.
func Merge(all map[string]*Facts) *Graph {
	g := &Graph{
		adj:  make(map[string][]Edge),
		seen: make(map[Edge]bool),
	}
	for _, f := range all {
		if f == nil {
			continue
		}
		for _, e := range f.Edges {
			g.add(e)
		}
		for _, im := range f.Impls {
			g.add(Edge{Caller: im.Iface, Callee: im.Impl})
		}
	}
	return g
}

// Graph is a merged call graph.
type Graph struct {
	adj  map[string][]Edge
	seen map[Edge]bool
}

func (g *Graph) add(e Edge) {
	key := Edge{Caller: e.Caller, Callee: e.Callee, Go: e.Go}
	if g.seen[key] {
		return
	}
	g.seen[key] = true
	g.adj[e.Caller] = append(g.adj[e.Caller], e)
}

// Edges returns the out-edges of a node.
func (g *Graph) Edges(from string) []Edge { return g.adj[from] }

// HasEdge reports a direct edge from caller to callee (of any kind).
func (g *Graph) HasEdge(caller, callee string) bool {
	for _, e := range g.adj[caller] {
		if e.Callee == callee {
			return true
		}
	}
	return false
}

// Reachable returns every node reachable from from, following
// interface pseudo edges, and goroutine-crossing edges only when
// includeGo is set.
func (g *Graph) Reachable(from string, includeGo bool) map[string]bool {
	out := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[n] {
			if e.Go && !includeGo {
				continue
			}
			if !out[e.Callee] {
				out[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return out
}

// Path returns a shortest node path from from to to (inclusive), or
// nil when to is unreachable. Goroutine-crossing edges are followed
// only when includeGo is set.
func (g *Graph) Path(from, to string, includeGo bool) []string {
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[n] {
			if e.Go && !includeGo {
				continue
			}
			if _, ok := prev[e.Callee]; ok {
				continue
			}
			prev[e.Callee] = n
			if e.Callee == to {
				var path []string
				for at := to; ; at = prev[at] {
					path = append([]string{at}, path...)
					if at == from {
						return path
					}
				}
			}
			queue = append(queue, e.Callee)
		}
	}
	return nil
}

// Nodes returns every node that has at least one out-edge, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.adj))
	for n := range g.adj {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
