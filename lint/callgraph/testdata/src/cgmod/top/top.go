// Package top is the caller side of the callgraph fixture: every edge
// shape the computer must classify appears once in Run.
package top

import (
	"strings"

	"cgmod/leaf"
)

func Run(s leaf.Store) {
	s.Put("a")       // interface call → iface pseudo edge
	_ = s.Close()    // promoted from embedded io.Closer → module iface edge
	step()           // direct call, same package
	st := leaf.New() // direct call, cross package
	st.Put("b")      // concrete method call
	go worker()      // spawned named function: Go edge
	go func() {
		step2() // call inside a spawned closure: Go edge
	}()
	f := func() { step3() } // plain closure: attributed to Run, not spawned
	f()
	go worker2(mk()) // mk() evaluates on this goroutine, worker2 on the new one
	_ = strings.ToUpper("x")
}

func step()             {}
func step2()            {}
func step3()            {}
func worker()           {}
func worker2(*leaf.Mem) {}
func mk() *leaf.Mem     { return leaf.New() }
