// Package leaf is the callee side of the callgraph fixture: it
// declares an interface, a concrete implementation, and plain
// functions for the importing package to call.
package leaf

import "io"

// Store is implemented by Mem; calls through it must resolve via the
// CHA Impls pairs. The embedded io.Closer checks promoted methods: a
// call to Store.Close declares io.Closer as its receiver, but the
// edge must still land on the module interface node.
type Store interface {
	io.Closer
	Put(k string)
	Get(k string) string
}

type Mem struct{ m map[string]string }

func (s *Mem) Put(k string)        { record(k) }
func (s *Mem) Close() error        { return nil }
func (s *Mem) Get(k string) string { return s.m[k] }

func record(string) {}

func New() *Mem { return &Mem{m: map[string]string{}} }
