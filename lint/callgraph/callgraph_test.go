package callgraph_test

import (
	"encoding/json"
	"strings"
	"testing"

	"mmdb/lint/analysis"
	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/callgraph"
)

// probe is a minimal analyzer whose only job is to push Compute's
// output through the fact pipeline, the same way ctxcheck embeds it.
var probe = &analysis.Analyzer{
	Name: "cgprobe",
	Doc:  "exports callgraph facts for tests",
	ExportFacts: func(p *analysis.Pass) any {
		return callgraph.Compute(p.Fset, p.Files, p.Pkg, p.TypesInfo)
	},
	Run: func(*analysis.Pass) error { return nil },
}

// loadFacts loads the fixture packages and returns the per-package
// callgraph facts.
func loadFacts(t *testing.T, modules map[string]string, pkgs ...string) map[string]*callgraph.Facts {
	t.Helper()
	root := ""
	if modules == nil {
		root = analysistest.TestData() + "/src"
	}
	ld := analysistest.NewLoader(root, modules)
	for _, pkg := range pkgs {
		if err := ld.Load(pkg); err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
	}
	raws, err := ld.Facts(probe)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*callgraph.Facts)
	for pkg, raw := range raws {
		var f callgraph.Facts
		if err := json.Unmarshal(raw, &f); err != nil {
			t.Fatalf("decoding %s facts: %v", pkg, err)
		}
		out[pkg] = &f
	}
	return out
}

func TestComputeEdges(t *testing.T) {
	facts := loadFacts(t, nil, "cgmod/leaf", "cgmod/top")

	top := facts["cgmod/top"]
	if top == nil {
		t.Fatal("no facts for cgmod/top")
	}
	type edge struct {
		callee string
		goEdge bool
	}
	got := make(map[edge]bool)
	for _, e := range top.Edges {
		if e.Caller == "cgmod/top.Run" {
			got[edge{e.Callee, e.Go}] = true
		}
	}
	wantEdges := []edge{
		{"iface:cgmod/leaf.Store.Put", false},   // interface call
		{"iface:cgmod/leaf.Store.Close", false}, // promoted from embedded io.Closer
		{"cgmod/top.step", false},               // direct call
		{"cgmod/leaf.New", false},               // cross-package call
		{"cgmod/leaf.Mem.Put", false},           // concrete method call
		{"cgmod/top.worker", true},              // go named function
		{"cgmod/top.step2", true},               // call inside spawned closure
		{"cgmod/top.step3", false},              // plain closure attributed to Run
		{"cgmod/top.worker2", true},             // spawned with evaluated args
		{"cgmod/top.mk", false},                 // go-stmt argument runs here
	}
	for _, w := range wantEdges {
		if !got[w] {
			t.Errorf("missing edge Run -> %s (go=%v); have %v", w.callee, w.goEdge, got)
		}
	}
	for e := range got {
		if strings.HasPrefix(e.callee, "strings.") {
			t.Errorf("standard-library edge leaked into the graph: %s", e.callee)
		}
	}

	leaf := facts["cgmod/leaf"]
	if leaf == nil {
		t.Fatal("no facts for cgmod/leaf")
	}
	implSeen := make(map[callgraph.Impl]bool)
	for _, im := range leaf.Impls {
		implSeen[im] = true
	}
	for _, m := range []string{"Put", "Get", "Close"} {
		im := callgraph.Impl{Iface: "iface:cgmod/leaf.Store." + m, Impl: "cgmod/leaf.Mem." + m}
		if !implSeen[im] {
			t.Errorf("missing CHA pair %v; have %v", im, leaf.Impls)
		}
	}
}

func TestMergeReachability(t *testing.T) {
	facts := loadFacts(t, nil, "cgmod/leaf", "cgmod/top")
	g := callgraph.Merge(facts)

	// Interface calls resolve through the merged Impls: Run reaches the
	// concrete Put body and its callee without following any go edge.
	sync := g.Reachable("cgmod/top.Run", false)
	for _, want := range []string{"cgmod/leaf.Mem.Put", "cgmod/leaf.record", "cgmod/top.step3"} {
		if !sync[want] {
			t.Errorf("Run should reach %s without crossing a goroutine boundary", want)
		}
	}
	// Spawned work is invisible until go edges are included.
	for _, spawned := range []string{"cgmod/top.worker", "cgmod/top.step2"} {
		if sync[spawned] {
			t.Errorf("Run must not reach %s via synchronous edges", spawned)
		}
	}
	all := g.Reachable("cgmod/top.Run", true)
	for _, spawned := range []string{"cgmod/top.worker", "cgmod/top.step2", "cgmod/top.worker2"} {
		if !all[spawned] {
			t.Errorf("Run should reach %s when go edges are included", spawned)
		}
	}

	path := g.Path("cgmod/top.Run", "cgmod/leaf.record", false)
	if len(path) == 0 {
		t.Fatal("no path Run -> leaf.record")
	}
	if path[0] != "cgmod/top.Run" || path[len(path)-1] != "cgmod/leaf.record" {
		t.Errorf("malformed path %v", path)
	}
	if g.Path("cgmod/top.Run", "cgmod/top.worker", false) != nil {
		t.Error("path to spawned worker must require includeGo")
	}
	if !g.HasEdge("cgmod/top.Run", "cgmod/top.step") {
		t.Error("HasEdge(Run, step) = false")
	}
}
