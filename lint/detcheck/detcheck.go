// Package detcheck enforces determinism in the simulation and analytic
// packages (sim, analytic, internal/simdisk): their output backs the
// paper's Figures 4a–4e and must reproduce bit-for-bit, so they may not
// consult wall-clock time, the global math/rand source, or emit output
// in map-iteration order.
//
// In a deterministic package, detcheck reports:
//
//   - calls to time.Now, time.Since, or time.Until — inject the
//     simulation clock instead;
//   - calls to package-level math/rand (and math/rand/v2) functions,
//     which draw from the shared global source — use a seeded
//     *rand.Rand (rand.New(rand.NewSource(seed))) instead; and
//   - range statements over maps whose body appends to a slice or calls
//     a fmt function, i.e. produces ordered output from unordered
//     iteration — collect and sort the keys first.
//
// Order-insensitive map loops (counting, summing into integers, building
// another map) are not flagged. Test files are skipped so benchmarks may
// time themselves. A justified exception (e.g. a commutative float
// accumulation) can be silenced with //nolint:detcheck.
package detcheck

import (
	"go/ast"
	"go/types"
	"path"

	"mmdb/lint/analysis"
)

// Analyzer is the detcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detcheck",
	Doc:  "forbid wall-clock time, global math/rand, and map-order-dependent output in deterministic packages",
	Run:  run,
}

// DeterministicPkgs names the packages (by import-path base) whose
// output must be reproducible.
var DeterministicPkgs = map[string]bool{
	"sim":      true,
	"analytic": true,
	"simdisk":  true,
}

// bannedTime are the time functions that read the wall clock.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand are the math/rand package-level functions that construct
// independent generators rather than drawing from the global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !DeterministicPkgs[path.Base(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods are fine; the bans are on package-level functions
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to time.%s in deterministic package %s; use the injected clock",
				fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to global %s.%s in deterministic package %s; use a seeded *rand.Rand",
				path.Base(fn.Pkg().Path()), fn.Name(), pass.Pkg.Name())
		}
	}
}

// checkMapRange flags map iteration whose body emits ordered output.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
		return
	}
	ordered := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || ordered {
			return !ordered
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				ordered = true
				return false
			}
		}
		if fn := callee(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			ordered = true
			return false
		}
		return true
	})
	if ordered {
		pass.Reportf(rng.Pos(),
			"map iteration order feeds ordered output in deterministic package %s; sort the keys first",
			pass.Pkg.Name())
	}
}

// callee resolves the called function or method, or nil.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
