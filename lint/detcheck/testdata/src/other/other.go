// Package other is not on the deterministic list: wall-clock time,
// the global rand source, and map-order output are all allowed here.
package other

import (
	"math/rand"
	"time"
)

func Wall() time.Time { return time.Now() }

func Draw() float64 { return rand.Float64() }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
