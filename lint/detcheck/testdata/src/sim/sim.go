package sim

import (
	"fmt"
	"math/rand"
	"time"
)

func wall() time.Time {
	return time.Now() // want `call to time\.Now in deterministic package sim`
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want `call to time\.Since in deterministic package sim`
}

func draw() float64 {
	return rand.Float64() // want `call to global rand\.Float64 in deterministic package sim`
}

// seeded constructs an independent generator: allowed.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// drawFrom uses an injected generator: methods are never flagged.
func drawFrom(r *rand.Rand) float64 { return r.Float64() }

func names(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order feeds ordered output in deterministic package sim`
		out = append(out, k)
	}
	return out
}

// total folds into an integer: order-insensitive, allowed.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func dump(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds ordered output in deterministic package sim`
		fmt.Println(k, v)
	}
}

// noisy carries a justification, so the diagnostic is suppressed.
func noisy() time.Time {
	return time.Now() //nolint:detcheck // debug timestamp, not simulation state
}

// use keeps the unexported helpers referenced.
var (
	_ = wall
	_ = elapsed
	_ = draw
	_ = seeded
	_ = drawFrom
	_ = names
	_ = total
	_ = dump
	_ = noisy
)
