package detcheck_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/detcheck"
)

// Test covers the three bans (wall clock, global math/rand, ordered
// output from map iteration) inside a deterministic package, and — as
// false-positive regressions — seeded generators, injected *rand.Rand
// methods, order-insensitive map loops, and the same banned calls in a
// package that is not on the deterministic list.
func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detcheck.Analyzer, "sim", "other")
}
