// Package walorder enforces the write-ahead rule of Salem &
// Garcia-Molina Section 3 flow-sensitively: every segment/backup disk
// write must be covered, on every control-flow path leading to it, by a
// durable WAL position — a log force (Flush) or an LSN wait
// (WaitDurable) — established earlier in the same function.
//
// The analyzer is annotation-driven so the rule crosses packages:
//
//   - "walorder:write" in a function's doc comment marks it as a disk
//     write sink (backup.Store.WriteSegment, Engine.flushSegment).
//     Calls inside a sink wrapper itself are exempt; the coverage
//     obligation transfers to its callers.
//   - "walorder:covers" marks a function whose call establishes
//     coverage (wal.Log.Flush, wal.Log.WaitDurable, Engine.waitLSN).
//   - "walorder:stable-tail <reason>" exempts writes: in a function's
//     doc it exempts the whole body (the COU sweep, whose snapshot was
//     made durable by the begin-checkpoint log force), and in a comment
//     on a call's line it exempts that call (FASTFUZZY's direct flush,
//     which Section 4 licenses only under a stable log tail). The
//     reason is mandatory, like //nolint reasons.
//
// Both marks travel as syntactic facts through .vetx files, so the
// engine's sweeps are checked against annotations that live in
// internal/backup and internal/wal.
//
// Coverage is a forward must-dataflow problem (lint/dataflow), not a
// single-node dominance query: Engine.Checkpoint forces the log on two
// different branches, and a write after the join is covered because
// BOTH arms cover it, though neither dominates it.
package walorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mmdb/lint/analysis"
	"mmdb/lint/cfg"
	"mmdb/lint/dataflow"
)

const (
	markWrite      = "walorder:write"
	markCovers     = "walorder:covers"
	markStableTail = "walorder:stable-tail"
)

// Facts maps "RecvType.Method" (or "Func" for plain functions) to its
// role, "write" or "covers".
type Facts map[string]string

var Analyzer = &analysis.Analyzer{
	Name:         "walorder",
	Doc:          "checks that disk writes are covered by a durable WAL position on every path (write-ahead rule)",
	ExtractFacts: extractFacts,
	Run:          run,
}

func extractFacts(fset *token.FileSet, pkgPath string, files []*ast.File) any {
	facts := make(Facts)
	for _, f := range files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if ok && fn.Doc != nil {
				text := fn.Doc.Text()
				switch {
				case strings.Contains(text, markWrite):
					facts[funcKey(fn)] = "write"
				case strings.Contains(text, markCovers):
					facts[funcKey(fn)] = "covers"
				}
			}
		}
	}
	if len(facts) == 0 {
		return nil
	}
	return facts
}

// funcKey is the syntactic fact key of a declaration: "Recv.Name" for
// methods, "Name" for functions.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return id.Name + "." + fn.Name.Name
			}
			return fn.Name.Name
		}
	}
}

func run(pass *analysis.Pass) error {
	facts, err := decodeFacts(pass)
	if err != nil {
		return err
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		exemptLines := stableTailLines(pass, f)
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			stableAll, isSink := false, false
			if fn.Doc != nil {
				stableAll = strings.Contains(fn.Doc.Text(), markStableTail)
				isSink = strings.Contains(fn.Doc.Text(), markWrite)
			}
			ck := &checker{pass: pass, facts: facts, stableAll: stableAll, isSink: isSink, exemptLines: exemptLines}
			ck.checkFunc(fn.Name.Name, fn.Body)
			// Closures share the enclosing function's exemptions (the
			// annotation vocabulary has no place to hang a doc comment on
			// a literal) but have their own control flow, hence their own
			// graphs with a fresh uncovered entry.
			for _, lit := range funcLits(fn.Body) {
				ck.checkFunc(fn.Name.Name+".func", lit.Body)
			}
		}
	}
	return nil
}

// decodeFacts gathers every package's walorder facts visible to this
// pass, own package included.
func decodeFacts(pass *analysis.Pass) (map[string]Facts, error) {
	out := make(map[string]Facts)
	for pkgPath := range pass.Facts {
		var f Facts
		if ok, err := pass.DecodeFacts(pkgPath, &f); err != nil {
			return nil, err
		} else if ok {
			out[pkgPath] = f
		}
	}
	return out, nil
}

// stableTailLines records which lines carry a stable-tail marker,
// reporting any marker that lacks its mandatory reason.
func stableTailLines(pass *analysis.Pass, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, markStableTail)
			if idx < 0 {
				continue
			}
			lines[pass.Fset.Position(c.Pos()).Line] = true
			rest := c.Text[idx+len(markStableTail):]
			if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
				rest = rest[:nl]
			}
			rest = strings.TrimSuffix(strings.TrimSpace(rest), "*/")
			if strings.TrimSpace(rest) == "" {
				pass.Reportf(c.Pos(), "%s needs a reason: say why the log tail is stable here", markStableTail)
			}
		}
	}
	return lines
}

type checker struct {
	pass        *analysis.Pass
	facts       map[string]Facts
	stableAll   bool
	isSink      bool
	exemptLines map[int]bool
}

// checkFunc solves coverage over one body and reports uncovered writes.
func (ck *checker) checkFunc(name string, body *ast.BlockStmt) {
	g := cfg.New(name, body)
	res := dataflow.Solve(g, dataflow.Problem{
		Dir:      dataflow.Forward,
		Boundary: func() any { return false },
		Top:      func() any { return true }, // optimistic: must-analysis
		Merge:    func(a, b any) any { return a.(bool) && b.(bool) },
		Transfer: func(b *cfg.Block, in any) any {
			covered := in.(bool)
			for _, n := range b.Nodes {
				for _, call := range calls(n) {
					if ck.roleOf(call) == "covers" {
						covered = true
					}
				}
			}
			return covered
		},
		Equal: func(a, b any) bool { return a == b },
	})
	for _, b := range g.Blocks {
		covered := res.In[b].(bool)
		for _, n := range b.Nodes {
			for _, call := range calls(n) {
				switch ck.roleOf(call) {
				case "covers":
					covered = true
				case "write":
					ck.checkWrite(call, covered)
				}
			}
		}
	}
}

func (ck *checker) checkWrite(call *ast.CallExpr, covered bool) {
	if covered || ck.isSink || ck.stableAll {
		return
	}
	if ck.exemptLines[ck.pass.Fset.Position(call.Pos()).Line] {
		return
	}
	_, key := ck.callee(call)
	ck.pass.Reportf(call.Pos(),
		"disk write %s (walorder:write) is not covered by a durable WAL position on every path to it; force the log first, or annotate %s with the reason the log tail is stable",
		key, markStableTail)
}

// roleOf returns "write", "covers", or "".
func (ck *checker) roleOf(call *ast.CallExpr) string {
	pkgPath, key := ck.callee(call)
	if key == "" {
		return ""
	}
	return ck.facts[pkgPath][key]
}

// callee resolves a call to its declaring package path and fact key.
func (ck *checker) callee(call *ast.CallExpr) (pkgPath, key string) {
	fun := call.Fun
	for {
		if p, ok := fun.(*ast.ParenExpr); ok {
			fun = p.X
		} else {
			break
		}
	}
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = ck.pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		obj = ck.pass.TypesInfo.Uses[fn.Sel]
	default:
		return "", ""
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return "", ""
	}
	key = f.Name()
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", ""
		}
		key = named.Obj().Name() + "." + key
	}
	return f.Pkg().Path(), key
}

// calls lists the call expressions under n in source order, not
// descending into function literals (each literal gets its own graph).
func calls(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			out = append(out, call)
		}
		return true
	})
	return out
}

// funcLits collects every function literal under body, including nested
// ones (each is analyzed as its own graph).
func funcLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
		}
		return true
	})
	return out
}
