// Package waldep exports walorder facts for the cross-package case:
// sinks and covers declared here must bind call sites in waluse.
package waldep

type Log struct{}

// Force forces the log tail to disk.
// walorder:covers
func (l *Log) Force() {}

type Backup struct{}

// WriteSegment writes one segment image to the backup disk.
// walorder:write
func (b *Backup) WriteSegment(data []byte) {}
