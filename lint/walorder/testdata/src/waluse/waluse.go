// Package waluse consumes waldep's walorder facts: both the sink and
// the covering call are declared in the other package.
package waluse

import "waldep"

func good(l *waldep.Log, b *waldep.Backup, data []byte) {
	l.Force()
	b.WriteSegment(data)
}

func bad(b *waldep.Backup, data []byte) {
	b.WriteSegment(data) // want `disk write Backup\.WriteSegment \(walorder:write\) is not covered by a durable WAL position`
}
