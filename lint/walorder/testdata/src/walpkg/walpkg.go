// Package walpkg exercises walorder's coverage dataflow within one
// package: sinks, covers, branches, loops, closures, and both
// stable-tail exemption forms.
package walpkg

type Log struct{}

// Force forces the log tail to disk.
// walorder:covers
func (l *Log) Force() {}

// Wait blocks until lsn is durable.
// walorder:covers
func (l *Log) Wait(lsn int) {}

type Store struct{ log *Log }

// writeSegment writes one segment image to the backup disk.
// walorder:write
func (s *Store) writeSegment(data []byte) {}

// flushAll is itself a sink wrapper: the write inside is exempt, the
// coverage obligation transfers to flushAll's callers.
// walorder:write
func (s *Store) flushAll(data []byte) {
	s.writeSegment(data)
}
