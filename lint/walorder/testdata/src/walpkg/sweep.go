package walpkg

func (s *Store) covered(data []byte) {
	s.log.Force()
	s.writeSegment(data)
}

func (s *Store) uncovered(data []byte) {
	s.writeSegment(data) // want `disk write Store\.writeSegment \(walorder:write\) is not covered by a durable WAL position`
}

// bothBranches is the false-positive regression that mandates a must-
// dataflow merge rather than single-node dominance: each arm covers the
// join, though neither covering call dominates the write.
func (s *Store) bothBranches(c bool, data []byte) {
	if c {
		s.log.Force()
	} else {
		s.log.Wait(1)
	}
	s.writeSegment(data)
}

func (s *Store) oneBranchOnly(c bool, data []byte) {
	if c {
		s.log.Force()
	}
	s.writeSegment(data) // want `is not covered by a durable WAL position`
}

// errCheckedWait mirrors the FUZZYCOPY shape: the covering call sits in
// an if-init whose error path returns.
func (s *Store) errCheckedWait(data []byte) error {
	if err := s.wait(); err != nil {
		return err
	}
	s.writeSegment(data)
	return nil
}

// wait returns once the log is durable.
// walorder:covers
func (s *Store) wait() error { return nil }

func (s *Store) perIterationCover(data []byte) {
	for i := 0; i < 3; i++ {
		s.log.Wait(i)
		s.writeSegment(data)
	}
}

func (s *Store) coverAfterWrite(data []byte) {
	for i := 0; i < 3; i++ {
		s.writeSegment(data) // want `is not covered by a durable WAL position`
		s.log.Wait(i)
	}
}

func (s *Store) closureUncovered(data []byte) {
	flush := func() {
		// A literal's body is its own graph with a fresh uncovered
		// entry: when it runs is not visible statically.
		s.writeSegment(data) // want `is not covered by a durable WAL position`
	}
	s.log.Force()
	flush()
}

func (s *Store) closureCovered(data []byte) {
	flush := func() {
		s.log.Force()
		s.writeSegment(data)
	}
	flush()
}

// stableWhole is exempt as a whole, the COU-sweep form.
// walorder:stable-tail fixture: the snapshot predates the begin-checkpoint log force
func (s *Store) stableWhole(data []byte) {
	s.writeSegment(data)
}

func (s *Store) stableLine(c bool, data []byte) {
	if c {
		s.writeSegment(data) // walorder:stable-tail fixture: direct flush licensed by a stable tail
	}
	s.log.Force()
	s.writeSegment(data)
}

func (s *Store) stableNoReason(data []byte) {
	s.writeSegment(data) /* walorder:stable-tail */ // want `walorder:stable-tail needs a reason`
}
