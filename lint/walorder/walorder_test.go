package walorder_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/walorder"
)

// TestWalorder covers, per package:
//
//   - walpkg: coverage through branches (the both-branches FP
//     regression), loops, error-checked waits, closures, sink wrappers,
//     and both stable-tail exemption forms incl. the mandatory reason;
//   - waluse: the cross-package facts case — sink and cover are
//     declared in waldep and travel as facts.
func TestWalorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), walorder.Analyzer, "walpkg", "waluse")
}
