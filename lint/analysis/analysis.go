// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics.
//
// The repository builds offline (no module proxy), so it cannot vendor
// x/tools; this package provides just enough of the same shape — Analyzer,
// Pass, Diagnostic, a vet-protocol driver (package unitchecker), and a
// fixture harness (package analysistest) — for the mmdblint analyzers. The
// deliberate differences from x/tools:
//
//   - Facts are package-keyed JSON, not per-object gob: an analyzer may
//     supply an ExtractFacts hook that runs over a parsed (but not
//     type-checked) dependency, and optionally an ExportFacts hook that
//     refines them with type information when a driver has it. The
//     unitchecker propagates both through go vet's .vetx files.
//   - Suppression is built in: a trailing "//nolint:name1,name2 // reason"
//     comment silences diagnostics on its line. The reason is mandatory:
//     a bare suppression is itself reported (analyzer name "nolint").
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -<name> enable flags,
	// and //nolint:<name> suppressions. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string

	// ExtractFacts, if non-nil, computes package-level facts from parsed
	// source. It runs on the current package and (via the unitchecker's
	// .vetx plumbing) on its dependencies, without type information, and
	// must return a JSON-serializable value or nil when the package
	// contributes nothing.
	ExtractFacts func(fset *token.FileSet, pkgPath string, files []*ast.File) any

	// ExportFacts, if non-nil, computes package-level facts with type
	// information. When a driver can type-check a dependency it calls
	// ExportFacts instead of keeping ExtractFacts' result; when it cannot
	// (no export data for the pass, e.g. a package outside the module),
	// the syntactic facts stand. The pass's Facts map holds the
	// dependencies' facts, so typed facts may build on imported ones.
	// ExportFacts must not call Pass.Report (reports are dropped) and
	// must return a JSON-serializable value or nil.
	ExportFacts func(*Pass) any

	// Run performs the check on one type-checked package.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts maps a package import path to this analyzer's encoded facts
	// for that package: the current package, its dependencies, and —
	// transitively, because each vet pass re-exports the facts it
	// imported — their dependencies.
	Facts map[string]json.RawMessage

	report func(Diagnostic)
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DecodeFacts unmarshals the analyzer's facts for pkgPath into out and
// reports whether any were present.
func (p *Pass) DecodeFacts(pkgPath string, out any) (bool, error) {
	raw, ok := p.Facts[pkgPath]
	if !ok || len(raw) == 0 {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("%s: bad facts for %q: %v", p.Analyzer.Name, pkgPath, err)
	}
	return true, nil
}

// Diagnostic is one finding, tied to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// NewTypesInfo returns a types.Info with every map allocated, as the
// drivers pass to types.Config.Check.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
