package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. Drivers
// (the unitchecker and analysistest) construct it; Run consumes it.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Facts maps analyzer name → package path → encoded facts.
	Facts map[string]map[string]json.RawMessage
}

// Run applies each analyzer to pkg and returns the surviving diagnostics
// (suppressions applied) sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	suppr := buildSuppressions(pkg.Fset, pkg.Files)
	// Reasoned-suppression rule: a //nolint directive must say why. These
	// diagnostics bypass the suppression table on purpose — a bare
	// //nolint would otherwise silence its own finding; the only way to
	// clear it is to write the reason.
	out := reasonlessNolints(pkg.Files)
	for _, a := range analyzers {
		facts := pkg.Facts[a.Name]
		if facts == nil {
			facts = make(map[string]json.RawMessage)
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
		}
		pass.report = func(d Diagnostic) {
			d.Analyzer = a.Name
			if !suppr.suppressed(pkg.Fset, d) {
				out = append(out, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ExtractAllFacts runs every analyzer's ExtractFacts hook over a parsed
// package and returns the non-nil results encoded, keyed by analyzer name.
func ExtractAllFacts(analyzers []*Analyzer, fset *token.FileSet, pkgPath string, files []*ast.File) (map[string]json.RawMessage, error) {
	out := make(map[string]json.RawMessage)
	for _, a := range analyzers {
		if a.ExtractFacts == nil {
			continue
		}
		v := a.ExtractFacts(fset, pkgPath, files)
		if v == nil {
			continue
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("%s: encoding facts for %q: %v", a.Name, pkgPath, err)
		}
		out[a.Name] = raw
	}
	return out, nil
}

// ExportAllFacts runs every analyzer's typed ExportFacts hook over a
// type-checked package and returns the non-nil results encoded, keyed by
// analyzer name. facts carries the already-gathered facts (analyzer →
// package → encoded), so typed hooks can see their dependencies'.
func ExportAllFacts(analyzers []*Analyzer, pkg *Package) (map[string]json.RawMessage, error) {
	out := make(map[string]json.RawMessage)
	for _, a := range analyzers {
		if a.ExportFacts == nil {
			continue
		}
		deps := pkg.Facts[a.Name]
		if deps == nil {
			deps = make(map[string]json.RawMessage)
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     deps,
			report:    func(Diagnostic) {}, // facts passes do not report
		}
		v := a.ExportFacts(pass)
		if v == nil {
			continue
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("%s: encoding typed facts for %q: %v", a.Name, pkg.Path, err)
		}
		out[a.Name] = raw
	}
	return out, nil
}

// nolintRe matches "nolint" optionally followed by ":name1,name2" at the
// start of a comment's text.
var nolintRe = regexp.MustCompile(`^nolint(?::([\w,]+))?\b`)

// suppressions records, per file and line, which analyzers are silenced.
// The empty string key means "all analyzers".
type suppressions map[string]map[int]map[string]bool

func buildSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := nolintRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := s[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					s[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					byLine[pos.Line] = names
				}
				if m[1] == "" {
					names[""] = true
				} else {
					for _, n := range strings.Split(m[1], ",") {
						names[n] = true
					}
				}
			}
		}
	}
	return s
}

// reasonlessNolints reports every //nolint directive that lacks the
// mandatory trailing "// reason". The accepted form is
//
//	//nolint:name1,name2 // why this finding is safe to silence
//
// mirroring DESIGN.md's suppression convention: the next reader should
// never have to reverse-engineer why a finding was waved through.
func reasonlessNolints(files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := nolintRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				rest := strings.TrimSpace(text[len(m[0]):])
				if strings.HasPrefix(rest, "//") && strings.TrimSpace(rest[2:]) != "" {
					continue // reasoned: //nolint:name // reason
				}
				what := "//nolint"
				if m[1] != "" {
					what += ":" + m[1]
				}
				out = append(out, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "nolint",
					Message:  fmt.Sprintf("%s needs a reason: write %s // <why this is safe>", what, what),
				})
			}
		}
	}
	return out
}

func (s suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	names := s[pos.Filename][pos.Line]
	return names[""] || names[d.Analyzer]
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Several mmdblint analyzers restrict themselves to non-test code.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
