package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"mmdb/lint/analysis"
)

// runSrc applies analyzers to a single-file package parsed from src.
// (Fixture files can't express a bare //nolint — a trailing "// want"
// comment would itself read as the reason — so this feature is tested
// against in-memory sources.)
func runSrc(t *testing.T, src string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags, err := analysis.Run(&analysis.Package{
		Path:  "p",
		Fset:  fset,
		Files: []*ast.File{f},
	}, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

func TestNolintWithoutReasonIsReported(t *testing.T) {
	diags := runSrc(t, `package p

func f() int {
	return 1 //nolint:lockcheck
}
`)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "nolint" {
		t.Errorf("analyzer = %q, want nolint", d.Analyzer)
	}
	if !strings.Contains(d.Message, "//nolint:lockcheck needs a reason") {
		t.Errorf("message = %q", d.Message)
	}
}

func TestBareNolintDoesNotSuppressItself(t *testing.T) {
	// A reasonless //nolint (no names: suppress everything) must still be
	// reported — otherwise it would silence its own finding.
	diags := runSrc(t, `package p

func f() int {
	return 1 //nolint
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "nolint" {
		t.Fatalf("want the nolint diagnostic to survive its own suppression, got %v", diags)
	}
}

func TestNolintEmptyReasonIsReported(t *testing.T) {
	diags := runSrc(t, `package p

func f() int {
	return 1 //nolint:lockcheck //
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "nolint" {
		t.Fatalf("want a diagnostic for the empty reason, got %v", diags)
	}
}

func TestReasonedNolintIsClean(t *testing.T) {
	diags := runSrc(t, `package p

func f() int {
	return 1 //nolint:lockcheck // not shared yet
}

func g() int {
	return 2 //nolint:lockcheck,detcheck // two analyzers, one reason
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics for reasoned suppressions, got %v", diags)
	}
}

func TestReasonedNolintStillSuppresses(t *testing.T) {
	// The reason requirement must not break suppression itself: a
	// reasoned //nolint:flag silences the flag analyzer's finding.
	flag := &analysis.Analyzer{
		Name: "flag",
		Doc:  "reports every return statement (test stub)",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if r, ok := n.(*ast.ReturnStmt); ok {
						pass.Reportf(r.Pos(), "return found")
					}
					return true
				})
			}
			return nil
		},
	}
	diags := runSrc(t, `package p

func f() int {
	return 1 //nolint:flag // fixture: suppression carries its reason
}

func g() int {
	return 2
}
`, flag)
	if len(diags) != 1 {
		t.Fatalf("want only g's finding, got %v", diags)
	}
	if diags[0].Analyzer != "flag" {
		t.Errorf("analyzer = %q, want flag", diags[0].Analyzer)
	}
}
