// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against "// want" comments, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// Each fixture package lives in testdata/src/<name> and is loaded with
// the source importer: standard-library imports are type-checked from
// GOROOT source (the offline build has no export data for x/tools-style
// loaders), and imports of sibling fixture packages resolve within
// testdata/src, which is how cross-package facts are exercised.
//
// Expectation syntax, on the line where a diagnostic is expected:
//
//	x.f = 1 // want "without holding" "second diagnostic regexp"
//
// Every diagnostic must match exactly one want pattern on its line and
// vice versa.
//
// The Loader is exported so tests can also point it at real packages:
// NewLoader with a module map (e.g. "mmdb" → the repository root) loads
// production packages through the same pipeline, which is how the
// lockorder/deadlock.go consistency regression test audits the actual
// engine.
package analysistest

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mmdb/lint/analysis"
)

// TestData returns the absolute path of the caller's testdata directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each named fixture package from dir/src and applies the
// analyzer, reporting mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		if err := runOne(dir, a, name); err != nil {
			t.Errorf("%s/%s: %v", a.Name, name, err)
		}
	}
}

func runOne(dir string, a *analysis.Analyzer, name string) error {
	ld := NewLoader(filepath.Join(dir, "src"), nil)
	if err := ld.Load(name); err != nil {
		return fmt.Errorf("loading fixture: %v", err)
	}
	diags, err := ld.Check(a, name)
	if err != nil {
		return err
	}
	return checkWants(ld.fset, ld.loaded[name].files, diags)
}

// want is one expectation parsed from a "// want" comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// parseWants extracts expectations from the fixture's comments.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(text[len("want"):])
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						return nil, fmt.Errorf("%v: malformed want pattern %q", pos, rest)
					}
					end := findStringEnd(rest)
					if end < 0 {
						return nil, fmt.Errorf("%v: unterminated want pattern %q", pos, rest)
					}
					lit := rest[:end]
					rest = strings.TrimSpace(rest[end:])
					s, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%v: bad want literal %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%v: bad want regexp %q: %v", pos, s, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: s})
				}
			}
		}
	}
	return wants, nil
}

// findStringEnd returns the index just past the Go string literal at the
// start of s, or -1.
func findStringEnd(s string) int {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			return i + 1
		}
	}
	return -1
}

// checkWants matches diagnostics against expectations 1:1 per line.
func checkWants(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) error {
	wants, err := parseWants(fset, files)
	if err != nil {
		return err
	}
	var errs []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			errs = append(errs, fmt.Sprintf("%v: unexpected diagnostic: %s", pos, d.Message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			errs = append(errs, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw))
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return fmt.Errorf("%s", strings.Join(errs, "\n"))
	}
	return nil
}

// loadedPkg is one parsed+type-checked package.
type loadedPkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// Loader parses and type-checks packages with the source importer.
// Imports resolve, in order: within the fixture root, through the
// module map, then from GOROOT source. _test.go files are skipped, so
// real repository packages load too.
type Loader struct {
	root     string            // fixture root (testdata/src); "" disables
	modules  map[string]string // module path prefix → directory
	fset     *token.FileSet
	loaded   map[string]*loadedPkg
	order    []string // load-completion order = a topological order of imports
	loading  map[string]bool
	fallback types.ImporterFrom
}

// NewLoader returns a Loader rooted at root (fixture imports) with the
// given module map, e.g. {"mmdb": "/path/to/repo"} to resolve
// "mmdb/internal/wal" against the real tree.
func NewLoader(root string, modules map[string]string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		root:    root,
		modules: modules,
		fset:    fset,
		loaded:  make(map[string]*loadedPkg),
		loading: make(map[string]bool),
		// The source importer needs our FileSet so positions in fixture
		// diagnostics stay coherent.
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Fset returns the loader's file set.
func (ld *Loader) Fset() *token.FileSet { return ld.fset }

// Load parses and type-checks the package (and, recursively, its
// fixture/module imports).
func (ld *Loader) Load(path string) error {
	_, err := ld.load(path)
	return err
}

// dirFor maps an import path to a directory, or "".
func (ld *Loader) dirFor(path string) string {
	if ld.root != "" {
		if dir := filepath.Join(ld.root, path); dirExists(dir) {
			return dir
		}
	}
	for prefix, dir := range ld.modules {
		if path == prefix {
			return dir
		}
		if strings.HasPrefix(path, prefix+"/") {
			return filepath.Join(dir, strings.TrimPrefix(path, prefix+"/"))
		}
	}
	return ""
}

// Import implements types.Importer.
func (ld *Loader) Import(path string) (*types.Package, error) {
	if ld.dirFor(path) != "" {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.types, nil
	}
	return ld.fallback.ImportFrom(path, ld.root, 0)
}

func (ld *Loader) load(path string) (*loadedPkg, error) {
	if lp, ok := ld.loaded[path]; ok {
		return lp, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := ld.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("cannot resolve %q (not under %s or the module map)", path, ld.root)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	tc := &types.Config{Importer: ld, Error: func(error) {}}
	info := analysis.NewTypesInfo()
	pkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", path, err)
	}
	lp := &loadedPkg{files: files, types: pkg, info: info}
	ld.loaded[path] = lp
	// Imports load before their importer finishes, so ld.order is a
	// topological order — exactly what dependency-ordered typed fact
	// computation needs.
	ld.order = append(ld.order, path)
	return lp, nil
}

// Facts computes analyzer a's facts for every loaded package in
// dependency order, running the typed ExportFacts hook (when declared)
// with the facts accumulated so far — the same pipeline the unitchecker
// drives through .vetx files.
func (ld *Loader) Facts(a *analysis.Analyzer) (map[string]json.RawMessage, error) {
	byPkg := make(map[string]json.RawMessage)
	for _, path := range ld.order {
		lp := ld.loaded[path]
		own, err := analysis.ExtractAllFacts([]*analysis.Analyzer{a}, ld.fset, path, lp.files)
		if err != nil {
			return nil, err
		}
		if raw, ok := own[a.Name]; ok {
			byPkg[path] = raw
		}
		if a.ExportFacts == nil {
			continue
		}
		typed, err := analysis.ExportAllFacts([]*analysis.Analyzer{a}, &analysis.Package{
			Path:  path,
			Fset:  ld.fset,
			Files: lp.files,
			Types: lp.types,
			Info:  lp.info,
			Facts: map[string]map[string]json.RawMessage{a.Name: byPkg},
		})
		if err != nil {
			return nil, err
		}
		if raw, ok := typed[a.Name]; ok {
			byPkg[path] = raw
		}
	}
	return byPkg, nil
}

// Check runs the analyzer on one loaded package with full facts and
// returns its diagnostics.
func (ld *Loader) Check(a *analysis.Analyzer, path string) ([]analysis.Diagnostic, error) {
	lp, ok := ld.loaded[path]
	if !ok {
		return nil, fmt.Errorf("package %q not loaded", path)
	}
	facts, err := ld.Facts(a)
	if err != nil {
		return nil, err
	}
	return analysis.Run(&analysis.Package{
		Path:  path,
		Fset:  ld.fset,
		Files: lp.files,
		Types: lp.types,
		Info:  lp.info,
		Facts: map[string]map[string]json.RawMessage{a.Name: facts},
	}, []*analysis.Analyzer{a})
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}
