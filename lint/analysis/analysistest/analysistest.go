// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against "// want" comments, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// Each fixture package lives in testdata/src/<name> and is loaded with
// the source importer: standard-library imports are type-checked from
// GOROOT source (the offline build has no export data for x/tools-style
// loaders), and imports of sibling fixture packages resolve within
// testdata/src, which is how cross-package facts are exercised.
//
// Expectation syntax, on the line where a diagnostic is expected:
//
//	x.f = 1 // want "without holding" "second diagnostic regexp"
//
// Every diagnostic must match exactly one want pattern on its line and
// vice versa.
package analysistest

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mmdb/lint/analysis"
)

// TestData returns the absolute path of the caller's testdata directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each named fixture package from dir/src and applies the
// analyzer, reporting mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		if err := runOne(dir, a, name); err != nil {
			t.Errorf("%s/%s: %v", a.Name, name, err)
		}
	}
}

func runOne(dir string, a *analysis.Analyzer, name string) error {
	ld := newLoader(filepath.Join(dir, "src"))
	lp, err := ld.load(name)
	if err != nil {
		return fmt.Errorf("loading fixture: %v", err)
	}

	// Facts for the fixture package and everything it pulled in from
	// testdata/src (mirroring what the unitchecker assembles from .vetx).
	factsByPkg := make(map[string]json.RawMessage)
	for path, dep := range ld.loaded {
		f, err := analysis.ExtractAllFacts([]*analysis.Analyzer{a}, ld.fset, path, dep.files)
		if err != nil {
			return err
		}
		if raw, ok := f[a.Name]; ok {
			factsByPkg[path] = raw
		}
	}

	diags, err := analysis.Run(&analysis.Package{
		Path:  name,
		Fset:  ld.fset,
		Files: lp.files,
		Types: lp.types,
		Info:  lp.info,
		Facts: map[string]map[string]json.RawMessage{a.Name: factsByPkg},
	}, []*analysis.Analyzer{a})
	if err != nil {
		return err
	}
	return checkWants(ld.fset, lp.files, diags)
}

// want is one expectation parsed from a "// want" comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// parseWants extracts expectations from the fixture's comments.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(text[len("want"):])
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						return nil, fmt.Errorf("%v: malformed want pattern %q", pos, rest)
					}
					end := findStringEnd(rest)
					if end < 0 {
						return nil, fmt.Errorf("%v: unterminated want pattern %q", pos, rest)
					}
					lit := rest[:end]
					rest = strings.TrimSpace(rest[end:])
					s, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%v: bad want literal %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%v: bad want regexp %q: %v", pos, s, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: s})
				}
			}
		}
	}
	return wants, nil
}

// findStringEnd returns the index just past the Go string literal at the
// start of s, or -1.
func findStringEnd(s string) int {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			return i + 1
		}
	}
	return -1
}

// checkWants matches diagnostics against expectations 1:1 per line.
func checkWants(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) error {
	wants, err := parseWants(fset, files)
	if err != nil {
		return err
	}
	var errs []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			errs = append(errs, fmt.Sprintf("%v: unexpected diagnostic: %s", pos, d.Message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			errs = append(errs, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw))
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return fmt.Errorf("%s", strings.Join(errs, "\n"))
	}
	return nil
}

// loadedPkg is one parsed+type-checked fixture package.
type loadedPkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader resolves imports from testdata/src first and falls back to the
// GOROOT source importer for everything else.
type loader struct {
	root     string
	fset     *token.FileSet
	loaded   map[string]*loadedPkg
	loading  map[string]bool
	fallback types.ImporterFrom
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		fset:    fset,
		loaded:  make(map[string]*loadedPkg),
		loading: make(map[string]bool),
		// The source importer needs our FileSet so positions in fixture
		// diagnostics stay coherent.
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.root, path); dirExists(dir) {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.types, nil
	}
	return ld.fallback.ImportFrom(path, ld.root, 0)
}

func (ld *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := ld.loaded[path]; ok {
		return lp, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through fixture %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	tc := &types.Config{Importer: ld, Error: func(error) {}}
	info := analysis.NewTypesInfo()
	pkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", path, err)
	}
	lp := &loadedPkg{files: files, types: pkg, info: info}
	ld.loaded[path] = lp
	return lp, nil
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}
