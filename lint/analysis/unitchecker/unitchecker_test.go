package unitchecker

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmdb/lint/analysis"
)

// chainAnalyzer exports each package's exported function names as facts
// and, on the package under analysis, reports every fact it can see
// from package chain/a — so a diagnostic on chain/c proves A's facts
// crossed two .vetx hops.
var chainAnalyzer = &analysis.Analyzer{
	Name: "chainfact",
	Doc:  "test analyzer: propagates exported function names as facts",
	ExtractFacts: func(fset *token.FileSet, pkgPath string, files []*ast.File) any {
		var names []string
		for _, f := range files {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.IsExported() {
					names = append(names, fn.Name.Name)
				}
			}
		}
		if names == nil {
			return nil
		}
		return names
	},
	Run: func(pass *analysis.Pass) error {
		var fromA []string
		if _, err := pass.DecodeFacts("chain/a", &fromA); err != nil {
			return err
		}
		for _, name := range fromA {
			pass.Reportf(pass.Files[0].Pos(), "saw fact %s from chain/a", name)
		}
		return nil
	},
}

// writeCfg marshals a vet.cfg to dir and returns its path.
func writeCfg(t *testing.T, dir, name string, cfg Config) string {
	t.Helper()
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// setupChain builds the three-package scenario go vet would produce for
// a module where c imports b imports a: two VetxOnly dependency passes,
// then the target pass on c whose PackageVetx names ONLY b's file — if
// c still sees a's facts, b re-exported them.
func setupChain(t *testing.T) (cCfgPath, cVetxPath string) {
	t.Helper()
	dir := t.TempDir()
	aGo := writeFile(t, dir, "a.go", "package a\n\nfunc FromA() {}\n")
	bGo := writeFile(t, dir, "b.go", "package b\n\nfunc FromB() {}\n")
	cGo := writeFile(t, dir, "c.go", "package c\n\nfunc FromC() {}\n")
	aVetx := filepath.Join(dir, "a.vetx")
	bVetx := filepath.Join(dir, "b.vetx")
	cVetx := filepath.Join(dir, "c.vetx")

	all := []*analysis.Analyzer{chainAnalyzer}
	aCfg := writeCfg(t, dir, "a.cfg", Config{
		ImportPath: "chain/a", ModulePath: "chain", GoFiles: []string{aGo},
		VetxOnly: true, VetxOutput: aVetx,
	})
	if _, err := run(aCfg, all, all, false); err != nil {
		t.Fatalf("pass a: %v", err)
	}
	bCfg := writeCfg(t, dir, "b.cfg", Config{
		ImportPath: "chain/b", ModulePath: "chain", GoFiles: []string{bGo},
		VetxOnly: true, VetxOutput: bVetx,
		PackageVetx: map[string]string{"chain/a": aVetx},
	})
	if _, err := run(bCfg, all, all, false); err != nil {
		t.Fatalf("pass b: %v", err)
	}
	cCfgPath = writeCfg(t, dir, "c.cfg", Config{
		ImportPath: "chain/c", ModulePath: "chain", GoFiles: []string{cGo},
		VetxOutput: cVetx,
		// Deliberately only the direct dependency: a's facts must arrive
		// via b's re-export.
		PackageVetx: map[string]string{"chain/b": bVetx},
	})
	return cCfgPath, cVetx
}

func TestVetxThreePackageChain(t *testing.T) {
	cCfg, cVetx := setupChain(t)
	diags, err := run(cCfg, []*analysis.Analyzer{chainAnalyzer}, []*analysis.Analyzer{chainAnalyzer}, false)
	if err != nil {
		t.Fatalf("pass c: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "saw fact FromA from chain/a") {
		t.Fatalf("c did not consume a's facts through b's re-export; diags = %v", diags)
	}

	// c's own .vetx must carry all three packages' facts onward.
	raw, err := os.ReadFile(cVetx)
	if err != nil {
		t.Fatal(err)
	}
	var v vetx
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	byPkg := v["chainfact"]
	for _, pkg := range []string{"chain/a", "chain/b", "chain/c"} {
		if _, ok := byPkg[pkg]; !ok {
			t.Errorf("c.vetx missing facts for %s (have %v)", pkg, keys(byPkg))
		}
	}
}

func TestJSONOutputMode(t *testing.T) {
	cCfg, _ := setupChain(t)

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	diags, runErr := run(cCfg, []*analysis.Analyzer{chainAnalyzer}, []*analysis.Analyzer{chainAnalyzer}, true)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("pass c: %v", runErr)
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}

	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 JSON line, got %d: %q", len(lines), buf.String())
	}
	var jd jsonDiagnostic
	if err := json.Unmarshal([]byte(lines[0]), &jd); err != nil {
		t.Fatalf("bad JSON line %q: %v", lines[0], err)
	}
	if !strings.HasSuffix(jd.File, "c.go") || jd.Line != 1 {
		t.Errorf("position = %s:%d, want c.go:1", jd.File, jd.Line)
	}
	if jd.Analyzer != "chainfact" || !strings.Contains(jd.Message, "FromA") {
		t.Errorf("payload = %+v", jd)
	}
}

// TestTypedFactsFallback: an analyzer with a typed ExportFacts hook
// forces type-checking of VetxOnly module passes; when that fails (here:
// no export data for an import), the syntactic facts must survive
// rather than the pass erroring out.
func TestTypedFactsFallback(t *testing.T) {
	dir := t.TempDir()
	typed := &analysis.Analyzer{
		Name: "typedfact",
		Doc:  "test analyzer with a typed fact hook",
		ExtractFacts: func(fset *token.FileSet, pkgPath string, files []*ast.File) any {
			return "syntactic"
		},
		ExportFacts: func(pass *analysis.Pass) any {
			return "typed"
		},
		Run: func(pass *analysis.Pass) error { return nil },
	}
	all := []*analysis.Analyzer{typed}

	// Package with an unresolvable import: typecheck fails, syntactic
	// facts stand.
	badGo := writeFile(t, dir, "bad.go", "package bad\n\nimport \"nonexistent/dep\"\n\nvar _ = dep.X\n")
	badVetx := filepath.Join(dir, "bad.vetx")
	badCfg := writeCfg(t, dir, "bad.cfg", Config{
		ImportPath: "chain/bad", ModulePath: "chain", GoFiles: []string{badGo},
		VetxOnly: true, VetxOutput: badVetx,
	})
	if _, err := run(badCfg, all, all, false); err != nil {
		t.Fatalf("VetxOnly pass must tolerate typecheck failure: %v", err)
	}
	assertFact(t, badVetx, "typedfact", "chain/bad", `"syntactic"`)

	// Package that typechecks: the typed facts win.
	okGo := writeFile(t, dir, "ok.go", "package ok\n\nfunc OK() {}\n")
	okVetx := filepath.Join(dir, "ok.vetx")
	okCfg := writeCfg(t, dir, "ok.cfg", Config{
		ImportPath: "chain/ok", ModulePath: "chain", GoFiles: []string{okGo},
		VetxOnly: true, VetxOutput: okVetx,
	})
	if _, err := run(okCfg, all, all, false); err != nil {
		t.Fatalf("pass ok: %v", err)
	}
	assertFact(t, okVetx, "typedfact", "chain/ok", `"typed"`)
}

func assertFact(t *testing.T, vetxPath, analyzer, pkg, want string) {
	t.Helper()
	raw, err := os.ReadFile(vetxPath)
	if err != nil {
		t.Fatal(err)
	}
	var v vetx
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if got := string(v[analyzer][pkg]); got != want {
		t.Errorf("%s facts for %s = %s, want %s", analyzer, pkg, got, want)
	}
}

func keys(m map[string]json.RawMessage) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
