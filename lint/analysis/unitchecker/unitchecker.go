// Package unitchecker implements go vet's (unpublished) vet-tool
// protocol for the mini analysis framework, so a binary built from a
// Main() call can be run as
//
//	go vet -vettool=$(which mmdblint) ./...
//
// The protocol, reverse-engineered from cmd/go/internal/work and
// cmd/go/internal/vet (and implemented for x/tools by
// golang.org/x/tools/go/analysis/unitchecker):
//
//  1. The go command probes the tool once with -V=full (a build-ID
//     handshake: the reply must look like "name version ver") and once
//     with -flags (a JSON description of the tool's flags; flags the
//     tool declares here may be passed on the go vet command line and
//     are forwarded to every tool invocation — that is how -json and
//     the per-analyzer enable flags reach us).
//  2. For the target packages and every dependency it then invokes the
//     tool with a single argument: a JSON "vet.cfg" file describing one
//     type-checked package — source files, the import map, and the
//     export-data file for each dependency.
//  3. Dependency invocations carry VetxOnly=true: the tool only computes
//     "facts" and writes them to VetxOutput; diagnostics are reported
//     only for the packages named on the vet command line.
//
// Type-checking uses the gc export data the go command already built for
// the compiler, via go/importer's lookup hook, so no network or module
// proxy access is needed. Facts are syntactic by default; when an
// analyzer declares a typed ExportFacts hook, VetxOnly passes over
// module packages are type-checked too, falling back to the syntactic
// facts if that fails (e.g. stale export data) rather than blocking the
// whole vet run.
package unitchecker

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"mmdb/lint/analysis"
)

// Config mirrors cmd/go/internal/work.vetConfig (the subset we consume).
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// vetx is the on-disk facts format: analyzer name → package path →
// encoded facts. Each pass re-exports the facts it imported, so facts
// flow transitively even though go vet only hands a pass its direct
// dependencies' .vetx files.
type vetx map[string]map[string]json.RawMessage

// merge folds src into v, later entries winning.
func (v vetx) merge(src vetx) {
	for name, byPkg := range src {
		if v[name] == nil {
			v[name] = make(map[string]json.RawMessage)
		}
		for pkg, f := range byPkg {
			v[name][pkg] = f
		}
	}
}

// set records one package's facts for one analyzer.
func (v vetx) set(name, pkg string, raw json.RawMessage) {
	if v[name] == nil {
		v[name] = make(map[string]json.RawMessage)
	}
	v[name][pkg] = raw
}

// readImported loads and merges the .vetx files of the pass's
// dependencies. Absence or corruption is not fatal: facts are an
// optimization and an analyzer must tolerate missing ones.
func readImported(packageVetx map[string]string) vetx {
	facts := make(vetx)
	for _, path := range packageVetx {
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var v vetx
		if json.Unmarshal(raw, &v) != nil {
			continue
		}
		facts.merge(v)
	}
	return facts
}

// Main runs the vet-tool protocol for the given analyzers and exits.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "mmdblint"
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	vFlag := fs.String("V", "", "print version and exit (-V=full for the go command handshake)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON, one object per line, on stdout")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only the "+a.Name+" analyzer (-"+a.Name+"=false to skip it)")
	}
	fs.Parse(os.Args[1:])        //nolint:errcheckwal // ExitOnError
	set := make(map[string]bool) // flags explicitly given, so =false is distinguishable from unset
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *vFlag != "" {
		// The go command parses this line to build the vet action's cache
		// key; it requires the literal word "version" in field two.
		fmt.Printf("%s version v1.0.0\n", progname)
		os.Exit(0)
	}
	if *flagsFlag {
		type flagDesc struct {
			Name  string
			Bool  bool
			Usage string
		}
		descs := []flagDesc{{Name: "json", Bool: true, Usage: "emit diagnostics as JSON lines"}}
		for _, a := range analyzers {
			descs = append(descs, flagDesc{Name: a.Name, Bool: true, Usage: "enable only " + a.Name})
		}
		json.NewEncoder(os.Stdout).Encode(descs) //nolint:errcheckwal // stdout
		os.Exit(0)
	}

	// Per-analyzer flags follow go vet's conventions: naming any analyzer
	// with -name runs just those; -name=false drops it from the default
	// set.
	anyTrue := false
	for name := range set {
		if on, ok := enabled[name]; ok && *on {
			anyTrue = true
		}
	}
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		switch {
		case anyTrue && *enabled[a.Name]:
			selected = append(selected, a)
		case !anyTrue && !set[a.Name]:
			selected = append(selected, a)
		}
	}

	if fs.NArg() == 1 && fs.Arg(0) == "help" {
		// go vet's generic usage message tells the user to run
		// "<vettool> help for a full list of flags and analyzers".
		fmt.Printf("%s is a suite of mmdb invariant analyzers run via go vet -vettool.\n\nRegistered analyzers:\n\n", progname)
		for _, a := range analyzers {
			fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("\nBy default all analyzers run; -<name> runs only the named ones, and\n-<name>=false skips one. -json prints machine-readable diagnostics.\nSilence a justified finding with a trailing //nolint:<name> // reason\ncomment; the reason is mandatory.\n")
		os.Exit(0)
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "%s: expected one vet.cfg argument, got %d (run via go vet -vettool)\n", progname, fs.NArg())
		os.Exit(1)
	}
	diags, err := run(fs.Arg(0), analyzers, selected, *jsonFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// jsonDiagnostic is the -json wire format: one object per line, the
// fields CI needs to annotate a pull request.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run processes one vet.cfg invocation. all is used for fact extraction
// (facts must exist even for analyzers the user de-selected, so .vetx
// contents don't depend on flag sets); selected are actually run.
func run(cfgPath string, all, selected []*analysis.Analyzer, jsonOut bool) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var parseErr error
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			parseErr = err
			break
		}
		files = append(files, f)
	}

	// Gather facts: imported .vetx files first, then this package's own
	// (skipped for standard-library packages — they carry no mmdb
	// annotations — and for unparseable ones).
	facts := readImported(cfg.PackageVetx)

	// Type-check when this is a target package (diagnostics need types)
	// or when a typed fact hook wants to refine this module package's
	// facts. In the latter case failure is tolerated: the syntactic facts
	// stand and the error surfaces, if at all, on the target pass.
	needTypes := !cfg.VetxOnly
	if !needTypes && cfg.ModulePath != "" && parseErr == nil {
		for _, a := range all {
			if a.ExportFacts != nil {
				needTypes = true
				break
			}
		}
	}
	var tpkg *types.Package
	var info *types.Info
	var typeErr error
	if needTypes && parseErr == nil && len(files) > 0 {
		tpkg, info, typeErr = typecheck(&cfg, fset, files)
	}

	if parseErr == nil && cfg.ModulePath != "" {
		own, err := analysis.ExtractAllFacts(all, fset, cfg.ImportPath, files)
		if err != nil {
			return nil, err
		}
		for name, f := range own {
			facts.set(name, cfg.ImportPath, f)
		}
		if tpkg != nil {
			typed, err := analysis.ExportAllFacts(all, &analysis.Package{
				Path:  cfg.ImportPath,
				Fset:  fset,
				Files: files,
				Types: tpkg,
				Info:  info,
				Facts: facts,
			})
			if err != nil {
				return nil, err
			}
			for name, f := range typed {
				facts.set(name, cfg.ImportPath, f)
			}
		}
	}
	if cfg.VetxOutput != "" {
		raw, err := json.Marshal(facts)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.VetxOutput, raw, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	if parseErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, parseErr
	}
	if len(files) == 0 {
		return nil, nil
	}
	if typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, typeErr
	}

	diags, err := analysis.Run(&analysis.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Facts: facts,
	}, selected)
	if err != nil {
		return nil, err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			enc.Encode(jsonDiagnostic{ //nolint:errcheckwal // stdout
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	} else {
		for _, d := range diags {
			// Absolute positions; the go command re-relativizes them.
			fmt.Fprintf(os.Stderr, "%v: %s\n", fset.Position(d.Pos), d.Message)
		}
	}
	return diags, nil
}

// typecheck type-checks the package against the export data the go
// command supplied in the config.
func typecheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tc := &types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		Error:     func(error) {}, // collect via returned error
	}
	info := analysis.NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}
	return pkg, info, nil
}
