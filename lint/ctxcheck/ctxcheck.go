// Package ctxcheck verifies that context.Context actually flows from
// the public entry points down to the loops that need it. The engine
// grew ExecContext/CheckpointContext in PR 5, but a ctx parameter is
// only as good as its plumbing: a retry loop three calls down that
// never consults ctx.Err() turns cancellation into a no-op, and a
// context.Background() minted in the middle of internal code silently
// detaches everything below it. Four rules:
//
//   - No context.Background()/context.TODO() inside internal packages.
//     The only legitimate mints are the exported wrapper roots
//     (Exec/Checkpoint/Recover), each annotated "ctxcheck:root(reason)"
//     — the reason is mandatory.
//
//   - A context.Context parameter must come first, per convention, so
//     call sites cannot misroute it.
//
//   - A function that has a ctx must not pass context.Background()/
//     TODO() to a callee instead of its own ctx.
//
//   - Every potentially-blocking loop reachable from a context-taking
//     function must consult the context. A loop is potentially
//     blocking when its nearest-loop body contains a channel
//     operation, a select without default, sync.Cond.Wait,
//     sync.WaitGroup.Wait, or time.Sleep; it consults the context when
//     it calls ctx.Err()/ctx.Done() at the same loop level. The check
//     is interprocedural: per-package facts carry each function's
//     blocking loops and a lint/callgraph edge set, and a blocking
//     loop in a ctx-less function is reported when any merged
//     call-graph path (goroutine boundaries excluded — a spawned
//     goroutine owns its own lifecycle) connects a ctx-taking function
//     to it. Condition-variable waits and mandatory joins that cannot
//     observe a ctx by design are declared "ctxcheck:exempt(reason)" —
//     on the function, or on the specific loop — with the reason
//     mandatory.
//
// Test files are exempt.
package ctxcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"mmdb/lint/analysis"
	"mmdb/lint/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:        "ctxcheck",
	Doc:         "checks context propagation: no Background in internal code, ctx first, blocking loops reachable from ctx entry points consult it",
	ExportFacts: exportFacts,
	Run:         run,
}

// Facts is one package's contribution: per-function context shape plus
// the package's call-graph slice.
type Facts struct {
	Funcs map[string]FuncFact `json:"funcs,omitempty"`
	CG    *callgraph.Facts    `json:"cg,omitempty"`
}

// FuncFact describes one declared function.
type FuncFact struct {
	// Ctx is set when the function takes a context.Context.
	Ctx bool `json:"ctx,omitempty"`
	// Exempt carries the ctxcheck:exempt reason ("" = none).
	Exempt string `json:"exempt,omitempty"`
	// Blocking lists printable positions of potentially-blocking loops
	// that neither consult a ctx nor carry a loop-site exemption.
	Blocking []string `json:"blocking,omitempty"`
}

// annotationsEnabled is lowered only by tests, to prove the repository's
// ctxcheck annotations are load-bearing: with them ignored, the sweep
// must report every exempted loop and every annotated root.
var annotationsEnabled = true

var (
	rootRe       = regexp.MustCompile(`ctxcheck:root\(([^)]*)\)`)
	exemptRe     = regexp.MustCompile(`ctxcheck:exempt\(([^)]*)\)`)
	bareRootRe   = regexp.MustCompile(`ctxcheck:root(\b[^(]|$)`)
	bareExemptRe = regexp.MustCompile(`ctxcheck:exempt(\b[^(]|$)`)
)

func exportFacts(pass *analysis.Pass) any {
	funcs, _ := analyze(pass)
	f := &Facts{
		Funcs: make(map[string]FuncFact, len(funcs)),
		CG:    callgraph.Compute(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo),
	}
	for key, lf := range funcs {
		ff := FuncFact{Ctx: lf.ctx, Exempt: lf.exempt}
		for _, lp := range lf.loops {
			if lp.blocking && !lp.consults && lp.exempt == nil {
				ff.Blocking = append(ff.Blocking, pass.Fset.Position(lp.pos).String())
			}
		}
		if ff.Ctx || ff.Exempt != "" || len(ff.Blocking) > 0 {
			f.Funcs[key] = ff
		}
	}
	if len(f.Funcs) == 0 && f.CG == nil {
		return nil
	}
	return f
}

// localFunc is the in-memory, position-bearing form of FuncFact.
type localFunc struct {
	decl      *ast.FuncDecl
	ctx       bool
	root      *string // ctxcheck:root reason; nil = absent
	exemptAll *string // function-level ctxcheck:exempt; nil = absent
	exempt    string  // non-empty reason, function level
	loops     []*localLoop
}

type localLoop struct {
	pos      token.Pos
	blocking bool
	consults bool
	exempt   *string // loop-site exemption reason; nil = absent
}

// bgCall is one context.Background()/TODO() call site.
type bgCall struct {
	pos  token.Pos
	name string     // "Background" or "TODO"
	fn   *localFunc // enclosing declared function
}

// analyze computes the per-function facts and the Background/TODO call
// sites for the current package.
func analyze(pass *analysis.Pass) (map[string]*localFunc, []*bgCall) {
	funcs := make(map[string]*localFunc)
	var bgs []*bgCall
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lf := &localFunc{decl: fn}
			if fn.Doc != nil && annotationsEnabled {
				doc := fn.Doc.Text()
				if m := rootRe.FindStringSubmatch(doc); m != nil {
					s := strings.TrimSpace(m[1])
					lf.root = &s
				} else if bareRootRe.MatchString(doc) {
					s := ""
					lf.root = &s
				}
				if m := exemptRe.FindStringSubmatch(doc); m != nil {
					s := strings.TrimSpace(m[1])
					lf.exemptAll = &s
					lf.exempt = s
				} else if bareExemptRe.MatchString(doc) {
					s := ""
					lf.exemptAll = &s
				}
			}
			for _, param := range fn.Type.Params.List {
				if isContextType(pass.TypesInfo.TypeOf(param.Type)) {
					lf.ctx = true
				}
			}
			sc := &scanner{pass: pass, file: f, fn: lf}
			sc.walk(fn.Body, nil, false)
			key := callgraph.DeclKey(pass.Pkg.Path(), fn)
			funcs[key] = lf
			for _, bg := range sc.bgs {
				bg.fn = lf
				bgs = append(bgs, bg)
			}
		}
	}
	return funcs, bgs
}

// scanner walks one function body, attributing blocking primitives and
// ctx consultations to their nearest enclosing loop.
type scanner struct {
	pass *analysis.Pass
	file *ast.File
	fn   *localFunc
	bgs  []*bgCall
}

// walk visits n. loop is the nearest enclosing loop's record (nil at
// function level); spawned is true inside go-statement closures, whose
// loops belong to the spawned goroutine's lifecycle, not this
// function's context obligation.
func (sc *scanner) walk(n ast.Node, loop *localLoop, spawned bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				sc.walk(a, loop, spawned)
			}
			sc.scanCall(n.Call, loop)
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				sc.walk(lit.Body, nil, true)
			}
			return false
		case *ast.FuncLit:
			// A plain closure executes on this goroutine (the sweeps'
			// worker bodies): its loops join the enclosing function's
			// obligation, scoped to their own nearest loop.
			sc.walk(n.Body, nil, spawned)
			return false
		case *ast.ForStmt:
			l := sc.newLoop(n.Pos(), spawned)
			if n.Cond != nil {
				sc.walk(n.Cond, l, spawned)
			}
			if n.Init != nil {
				sc.walk(n.Init, loop, spawned)
			}
			if n.Post != nil {
				sc.walk(n.Post, l, spawned)
			}
			sc.walk(n.Body, l, spawned)
			return false
		case *ast.RangeStmt:
			l := sc.newLoop(n.Pos(), spawned)
			if t := sc.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					l.blocking = true // ranging over a channel blocks per receive
				}
			}
			sc.walk(n.X, loop, spawned)
			sc.walk(n.Body, l, spawned)
			return false
		case *ast.SendStmt:
			if loop != nil {
				loop.blocking = true
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && loop != nil {
				loop.blocking = true
			}
			return true
		case *ast.SelectStmt:
			// A select's comm clauses are channel operations by nature:
			// only the select as a whole counts (and only without a
			// default), never the individual <-ch inside it. Comm
			// expressions are walked through a shadow record so a
			// `case <-ctx.Done():` still registers as a consultation.
			hasDefault := false
			for _, cc := range n.Body.List {
				if cc, ok := cc.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault && loop != nil {
				loop.blocking = true
			}
			for _, cc := range n.Body.List {
				cc, ok := cc.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm != nil {
					sh := &localLoop{}
					sc.walk(cc.Comm, sh, spawned)
					if loop != nil && sh.consults {
						loop.consults = true
					}
				}
				for _, s := range cc.Body {
					sc.walk(s, loop, spawned)
				}
			}
			return false
		case *ast.CallExpr:
			sc.scanCall(n, loop)
			return true
		}
		return true
	})
}

// scanCall classifies one call: a blocking primitive, a ctx
// consultation, or a context.Background()/TODO() mint.
func (sc *scanner) scanCall(call *ast.CallExpr, loop *localLoop) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := sc.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "context":
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			sc.bgs = append(sc.bgs, &bgCall{pos: call.Pos(), name: fn.Name()})
		}
	case "sync":
		if fn.Name() == "Wait" && loop != nil {
			// Cond.Wait and WaitGroup.Wait both park the goroutine.
			loop.blocking = true
		}
	case "time":
		if fn.Name() == "Sleep" && loop != nil {
			loop.blocking = true
		}
	}
	if (fn.Name() == "Err" || fn.Name() == "Done") && loop != nil {
		if isContextType(sc.pass.TypesInfo.TypeOf(sel.X)) {
			loop.consults = true
		}
	}
}

// newLoop records a loop (unless it runs on a spawned goroutine) with
// any loop-site exemption comment.
func (sc *scanner) newLoop(pos token.Pos, spawned bool) *localLoop {
	l := &localLoop{pos: pos}
	if spawned {
		// Still scanned (so nested state is tracked) but never reported:
		// mark consulted so it drops out of every rule.
		l.consults = true
		return l
	}
	if !annotationsEnabled {
		sc.fn.loops = append(sc.fn.loops, l)
		return l
	}
	p := sc.pass.Fset.Position(pos)
	for _, cg := range sc.file.Comments {
		for _, c := range cg.List {
			cp := sc.pass.Fset.Position(c.Pos())
			if cp.Filename != p.Filename || (cp.Line != p.Line && cp.Line != p.Line-1) {
				continue
			}
			if m := exemptRe.FindStringSubmatch(c.Text); m != nil {
				s := strings.TrimSpace(m[1])
				l.exempt = &s
			} else if bareExemptRe.MatchString(c.Text) {
				s := ""
				l.exempt = &s
			}
		}
	}
	sc.fn.loops = append(sc.fn.loops, l)
	return l
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func internalPath(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/") || strings.HasPrefix(pkgPath, "internal/")
}

func run(pass *analysis.Pass) error {
	funcs, bgs := analyze(pass)

	// Annotation hygiene: every root/exempt carries a reason.
	for _, lf := range funcs {
		if lf.root != nil && *lf.root == "" {
			pass.Reportf(lf.decl.Pos(), "ctxcheck:root needs a reason: ctxcheck:root(<why this function may mint a fresh context>)")
		}
		if lf.exemptAll != nil && *lf.exemptAll == "" {
			pass.Reportf(lf.decl.Pos(), "ctxcheck:exempt needs a reason: ctxcheck:exempt(<why this function's blocking loops cannot observe a ctx>)")
		}
		for _, lp := range lf.loops {
			if lp.exempt != nil && *lp.exempt == "" {
				pass.Reportf(lp.pos, "ctxcheck:exempt needs a reason: ctxcheck:exempt(<why this loop cannot observe a ctx>)")
			}
		}
	}

	// Rule: no Background/TODO inside internal packages except at
	// annotated roots; and a function holding a ctx must pass it, not
	// mint a fresh one, anywhere.
	for _, bg := range bgs {
		switch {
		case bg.fn.ctx:
			pass.Reportf(bg.pos, "context.%s() discards the ctx this function already has; pass ctx through", bg.name)
		case internalPath(pass.Pkg.Path()):
			if bg.fn.root == nil {
				pass.Reportf(bg.pos, "context.%s() inside an internal package detaches cancellation; thread ctx from the caller, or annotate this wrapper root with ctxcheck:root(reason)", bg.name)
			}
		}
	}

	// Rule: ctx parameter comes first.
	for _, lf := range funcs {
		flat := 0
		for _, param := range lf.decl.Type.Params.List {
			isCtx := isContextType(pass.TypesInfo.TypeOf(param.Type))
			n := len(param.Names)
			if n == 0 {
				n = 1
			}
			if isCtx && flat > 0 {
				pass.Reportf(param.Pos(), "context.Context must be the first parameter")
			}
			flat += n
		}
	}

	// Rule: blocking loops in ctx-taking functions consult the ctx.
	for _, lf := range funcs {
		if !lf.ctx || lf.exempt != "" {
			continue
		}
		for _, lp := range lf.loops {
			if lp.blocking && !lp.consults && lp.exempt == nil {
				pass.Reportf(lp.pos, "this loop may block but never consults the function's ctx; check ctx.Err()/ctx.Done() each iteration, or annotate the loop with ctxcheck:exempt(reason)")
			}
		}
	}

	// Interprocedural rule: merge every package's facts and walk the
	// call graph (synchronous edges only) from this package's
	// ctx-taking functions to blocking loops that cannot see any ctx.
	merged := make(map[string]FuncFact)
	cgs := make(map[string]*callgraph.Facts)
	for pkgPath := range pass.Facts {
		var f Facts
		if ok, err := pass.DecodeFacts(pkgPath, &f); err != nil {
			return err
		} else if ok {
			for k, ff := range f.Funcs {
				merged[k] = ff
			}
			cgs[pkgPath] = f.CG
		}
	}
	// The own package's facts are recomputed fresh (the pass's fact map
	// may hold a stale or absent self-entry).
	if own, _ := exportFacts(pass).(*Facts); own != nil {
		for k, ff := range own.Funcs {
			merged[k] = ff
		}
		cgs[pass.Pkg.Path()] = own.CG
	}
	graph := callgraph.Merge(cgs)

	var entries []string
	ownPrefix := pass.Pkg.Path() + "."
	for key, lf := range funcs {
		if lf.ctx {
			entries = append(entries, key)
		}
	}
	sort.Strings(entries)

	reported := make(map[string]bool) // blocking func key → already reported here
	for _, entry := range entries {
		for callee := range graph.Reachable(entry, false) {
			if callee == entry || reported[callee] {
				continue
			}
			ff, ok := merged[callee]
			if !ok || ff.Ctx || ff.Exempt != "" || len(ff.Blocking) == 0 {
				continue
			}
			reported[callee] = true
			path := strings.Join(graph.Path(entry, callee, false), " → ")
			if lf, local := funcs[callee]; local {
				// Report at the loop itself when it lives here.
				for _, lp := range lf.loops {
					if lp.blocking && !lp.consults && lp.exempt == nil {
						pass.Reportf(lp.pos, "this loop may block and is reachable from %s, which takes a ctx this function cannot see (%s); thread context.Context through the path, or annotate ctxcheck:exempt(reason)",
							strings.TrimPrefix(entry, ownPrefix), path)
					}
				}
				continue
			}
			pass.Reportf(funcs[entry].decl.Pos(), "call path %s reaches blocking loop(s) at %s in a function that cannot observe this ctx; thread context.Context through, or annotate %s with ctxcheck:exempt(reason)",
				path, strings.Join(ff.Blocking, ", "), callee)
		}
	}
	return nil
}
