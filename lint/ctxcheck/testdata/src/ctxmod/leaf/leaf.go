// Package leaf holds ctx-less helpers with blocking loops; standalone
// it is clean — the findings belong to the ctx-taking callers in
// ctxmod/top, connected through exported facts.
package leaf

import "time"

type Q struct{ ch chan int }

// Drain blocks per receive and cannot see any ctx. No ctx-taking
// function reaches it, so it stays silent.
func (q *Q) Drain() {
	for v := range q.ch {
		_ = v
	}
}

// Spin is reached from top.Entry, which takes a ctx this loop can
// never observe.
func Spin() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// Poll parks forever by design.
// ctxcheck:exempt(terminates when the owner closes ch; join handled by caller)
func Poll(ch chan int) {
	for {
		<-ch
	}
}

func Quick() int { return 1 }
