// Package db sits on an internal path: minting context.Background or
// context.TODO here detaches cancellation unless the function is an
// annotated wrapper root.
package db

import (
	"context"
)

// Open threads the caller's ctx: clean.
func Open(ctx context.Context) error { return ctx.Err() }

// Exec is the exported convenience wrapper, allowed to mint a root.
// ctxcheck:root(public no-ctx entry point; callers without a context start here)
func Exec(q string) error {
	_ = q
	return Open(context.Background())
}

// sneaky mints a fresh context deep inside the library.
func sneaky() error {
	return Open(context.Background()) // want `context.Background\(\) inside an internal package detaches cancellation`
}

// badRoot carries the annotation but no reason.
// ctxcheck:root
func badRoot() error { // want "ctxcheck:root needs a reason"
	return Open(context.TODO())
}

func todoToo() error {
	return Open(context.TODO()) // want `context.TODO\(\) inside an internal package detaches cancellation`
}
