// Package top exercises the ctxcheck rules in a non-internal package:
// local blocking loops, annotation hygiene, parameter order, and
// interprocedural reach into ctx-less helpers (same package and
// cross-package via ctxmod/leaf facts).
package top

import (
	"context"
	"sync"
	"time"

	"ctxmod/leaf"
)

// --- blocking loops that consult the ctx: clean ---

func waitsOK(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			_ = v
		}
	}
}

func pollsOK(ctx context.Context, ch chan int) {
	for ctx.Err() == nil {
		<-ch
	}
}

// select with a default never parks: not a blocking loop.
func tryRecv(ctx context.Context, ch chan int) {
	for i := 0; i < 3; i++ {
		select {
		case v := <-ch:
			_ = v
		default:
		}
	}
}

// loops inside a spawned goroutine belong to that goroutine's
// lifecycle (goleakcheck's domain), not this function's ctx.
func spawns(ctx context.Context, ch chan int) {
	done := make(chan struct{})
	go func() {
		for v := range ch {
			_ = v
		}
		close(done)
	}()
	<-done
}

// --- blocking loops that ignore the ctx ---

func sleepy(ctx context.Context) {
	for { // want "this loop may block but never consults the function's ctx"
		time.Sleep(time.Millisecond)
	}
}

func sendLoop(ctx context.Context, ch chan int) {
	for i := 0; i < 10; i++ { // want "this loop may block but never consults the function's ctx"
		ch <- i
	}
}

func drains(ctx context.Context, ch chan int) {
	for v := range ch { // want "this loop may block but never consults the function's ctx"
		_ = v
	}
}

func condWait(ctx context.Context, c *sync.Cond) {
	for { // want "this loop may block but never consults the function's ctx"
		c.Wait()
	}
}

// primitives attribute to the nearest enclosing loop only: one
// finding, on the inner loop.
func nested(ctx context.Context, ch chan int) {
	for i := 0; i < 3; i++ {
		for { // want "this loop may block but never consults the function's ctx"
			<-ch
		}
	}
}

// --- exemptions ---

func joinAll(ctx context.Context, done chan struct{}, n int) {
	// ctxcheck:exempt(join is mandatory; each worker sends exactly one token)
	for i := 0; i < n; i++ {
		<-done
	}
}

// waitRound parks on a condition variable that its owner broadcasts.
// ctxcheck:exempt(woken by Broadcast on every state change and on close)
func waitRound(ctx context.Context, c *sync.Cond) {
	for {
		c.Wait()
	}
}

func lazyExempt(ctx context.Context, ch chan int) {
	// ctxcheck:exempt
	for { // want "ctxcheck:exempt needs a reason"
		<-ch
	}
}

// --- parameter order and discarded contexts ---

func badOrder(name string, ctx context.Context) { // want "context.Context must be the first parameter"
	_ = name
	_ = ctx
}

func discards(ctx context.Context) context.Context {
	return context.Background() // want "discards the ctx this function already has"
}

// Run is the Background-at-root regression: a non-internal wrapper may
// mint a fresh context without any annotation.
func Run(ch chan int) {
	waitsOK(context.Background(), ch)
}

// --- interprocedural ---

// Entry's ctx dies at the call boundary: leaf.Spin loops on Sleep and
// has no way to see it. Reported here, at the entry, with the path.
func Entry(ctx context.Context) { // want "call path .*Spin.* in a function that cannot observe this ctx"
	leaf.Quick()
	leaf.Spin()
}

// Exempted callees stay silent even when reached.
func EntryExempt(ctx context.Context, ch chan int) {
	leaf.Poll(ch)
}

// localEntry reaches a same-package ctx-less helper: reported at the
// helper's loop, where the fix belongs.
func localEntry(ctx context.Context, ch chan int) {
	pump(ch)
}

func pump(ch chan int) {
	for { // want "reachable from localEntry, which takes a ctx this function cannot see"
		<-ch
	}
}
