package ctxcheck_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/ctxcheck"
)

func TestCtxCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxcheck.Analyzer,
		"ctxmod/leaf", "ctxmod/internal/db", "ctxmod/top")
}
