package ctxcheck

import (
	"path/filepath"
	"strings"
	"testing"

	"mmdb/lint/analysis/analysistest"
)

// ctxAudited are the packages on the engine's context-propagation
// paths; engine must come after its dependencies so their facts are
// available when it is checked.
var ctxAudited = []string{
	"mmdb/internal/obs",
	"mmdb/internal/storage",
	"mmdb/internal/wal",
	"mmdb/internal/lockmgr",
	"mmdb/internal/engine",
}

// TestRepoContextDiscipline runs ctxcheck over the real engine stack:
// no un-annotated context.Background in internal packages, and every
// blocking loop reachable from ExecContext / CheckpointContext /
// RecoverContext either consults the ctx or carries a reasoned
// exemption.
func TestRepoContextDiscipline(t *testing.T) {
	ld := newRepoLoader(t)
	for _, pkg := range ctxAudited {
		diags, err := ld.Check(Analyzer, pkg)
		if err != nil {
			t.Fatalf("checking %s: %v", pkg, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %v: %s", pkg, ld.Fset().Position(d.Pos), d.Message)
		}
	}
}

// TestRepoExemptionsAreLoadBearing re-runs the sweep with annotation
// recognition disabled: the annotated roots and exempted loops must
// all resurface. This is the violation-reintroduction demonstration —
// deleting any of these annotations (or re-introducing the violation
// they exempt) makes the 10-analyzer sweep fail at exactly these
// sites. The parallel.go hit covers the PR 5 pipeline property:
// fanOut's mandatory join loop is reachable from CheckpointContext.
func TestRepoExemptionsAreLoadBearing(t *testing.T) {
	annotationsEnabled = false
	defer func() { annotationsEnabled = true }()

	ld := newRepoLoader(t)
	wantFrags := map[string]bool{
		"engine.go:context.Background":   false, // Exec's root annotation
		"checkpoint.go:context.Backgrou": false, // Checkpoint's root annotation
		"recovery.go:context.Background": false, // Recover's root annotation
		"engine.go:this loop may block":  false, // Begin / quiesce gate loops
		"parallel.go:this loop may bloc": false, // fanOut's join loop
		"checkpoint.go:grantLocked":      false, // grantLocked's grant loop, via the checkpoint path
	}
	for _, pkg := range ctxAudited {
		diags, err := ld.Check(Analyzer, pkg)
		if err != nil {
			t.Fatalf("checking %s: %v", pkg, err)
		}
		for _, d := range diags {
			pos := ld.Fset().Position(d.Pos)
			for frag := range wantFrags {
				file, msg, _ := strings.Cut(frag, ":")
				if strings.HasSuffix(filepath.Base(pos.Filename), file) && strings.Contains(d.Message, msg) {
					wantFrags[frag] = true
				}
			}
		}
	}
	for frag, hit := range wantFrags {
		if !hit {
			t.Errorf("with annotations disabled, expected diagnostic %q never surfaced: that annotation is not load-bearing", frag)
		}
	}
}

func newRepoLoader(t *testing.T) *analysistest.Loader {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	ld := analysistest.NewLoader("", map[string]string{"mmdb": root})
	for _, pkg := range ctxAudited {
		if err := ld.Load(pkg); err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
	}
	return ld
}
