package use

import "lsn"

func bad(a, b lsn.LSN) lsn.LSN {
	if a < b { // want `raw < on LSN outside its defining package`
		return b
	}
	_ = a + 1 // want `raw \+ on LSN outside its defining package`
	_ = b - a // want `raw - on LSN outside its defining package`
	a += 2    // want `raw \+= on LSN outside its defining package`
	a++       // want `raw \+\+ on LSN outside its defining package`
	return a
}

// good sticks to equality and the typed helpers.
func good(a, b lsn.LSN) bool {
	if a == lsn.NilLSN || a != b {
		return false
	}
	return a.Before(b)
}

func delta(a lsn.LSN, n int64) lsn.LSN {
	return lsn.Advance(a, n)
}

// LSN is a locally defined type of the same name: its arithmetic is
// this package's own business and is not flagged.
type LSN uint64

func local(a LSN) LSN { return a + 1 }

// use keeps the unexported helpers referenced.
var (
	_ = bad
	_ = good
	_ = delta
	_ = local
)
