// Package lsn stands in for mmdb's internal/wal: it defines the LSN
// type, so raw arithmetic here is the implementation of the helpers
// and is exempt.
package lsn

// LSN is a log sequence number.
type LSN uint64

// NilLSN is the "no LSN" sentinel.
const NilLSN = ^LSN(0)

// IsNil reports whether l is the sentinel.
func (l LSN) IsNil() bool { return l == NilLSN }

// Before reports l < o; raw ordering is fine in the defining package.
func (l LSN) Before(o LSN) bool { return l < o }

// Advance moves l forward by n bytes.
func Advance(l LSN, n int64) LSN { return l + LSN(n) }
