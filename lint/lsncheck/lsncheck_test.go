package lsncheck_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/lsncheck"
)

// Test covers raw binary operators, compound assignment, and ++/-- on a
// foreign LSN type. False-positive regressions: equality against the
// sentinel, the typed helpers, raw arithmetic inside the defining
// package itself, and a locally defined LSN type.
func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lsncheck.Analyzer, "lsn", "use")
}
