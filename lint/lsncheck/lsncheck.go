// Package lsncheck keeps log-sequence-number discipline: outside the
// package that defines an LSN type (mmdb's wal.LSN), code must compare
// and advance LSNs through the typed helpers — Before, IsNil, MaxLSN,
// MinLSN, Advance, Sub — never with raw integer arithmetic.
//
// The reason is the sentinel: wal.NilLSN is ^LSN(0), so a raw `a < b`
// silently orders "no LSN" after every real position and a raw `a + n`
// can wrap it back to 0. The helpers centralize the sentinel handling
// (MaxLSN treats NilLSN as unset, MinLSN as +infinity); raw operator
// use outside the defining package is exactly where such bugs breed.
//
// lsncheck reports, in any package other than the one defining the
// type, binary +, -, *, /, %, shifts, bitwise ops and ordered
// comparisons (<, <=, >, >=) with an LSN-typed operand, compound
// assignments (+=, -=, ...) to an LSN-typed lvalue, and ++/--.
// Equality against wal.NilLSN (== and !=) remains idiomatic and
// allowed. The match is by type name: a defined integer type named
// "LSN" from another package. Test files are skipped.
package lsncheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmdb/lint/analysis"
)

// Analyzer is the lsncheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lsncheck",
	Doc:  "forbid raw integer arithmetic and ordered comparison of LSN values outside their defining package",
	Run:  run,
}

// rawOps are the binary operators that bypass the typed helpers.
// Equality (==, !=) is allowed: comparing against wal.NilLSN is safe
// and idiomatic.
var rawOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.SHL: true, token.SHR: true,
	token.AND: true, token.OR: true, token.XOR: true, token.AND_NOT: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
}

// rawAssignOps are the compound assignment forms of rawOps.
var rawAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true,
	token.SHL_ASSIGN: true, token.SHR_ASSIGN: true,
	token.AND_ASSIGN: true, token.OR_ASSIGN: true, token.XOR_ASSIGN: true,
	token.AND_NOT_ASSIGN: true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if rawOps[n.Op] && (isForeignLSN(pass, n.X) || isForeignLSN(pass, n.Y)) {
					pass.Reportf(n.OpPos,
						"raw %s on LSN outside its defining package; use the typed helpers (Before/MaxLSN/MinLSN/Advance/Sub)",
						n.Op)
				}
			case *ast.AssignStmt:
				if rawAssignOps[n.Tok] && len(n.Lhs) == 1 && isForeignLSN(pass, n.Lhs[0]) {
					pass.Reportf(n.TokPos,
						"raw %s on LSN outside its defining package; use the typed helpers (Advance/Sub)",
						n.Tok)
				}
			case *ast.IncDecStmt:
				if isForeignLSN(pass, n.X) {
					pass.Reportf(n.TokPos,
						"raw %s on LSN outside its defining package; use Advance",
						n.Tok)
				}
			}
			return true
		})
	}
	return nil
}

// isForeignLSN reports whether e's type is a defined integer type named
// LSN declared in a package other than the one being checked.
func isForeignLSN(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok || named.Obj().Name() != "LSN" {
		return false
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg != pass.Pkg
}
