package escape

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"mmdb/lint/analysis"
)

// mapImporter resolves fixture imports from already-checked packages.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, &importError{path}
}

type importError struct{ path string }

func (e *importError) Error() string { return "unknown import " + e.path }

// checkSrc parses and type-checks one fixture package.
func checkSrc(t *testing.T, path, src string, imports mapImporter) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: imports}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, pkg, info
}

// computeSrc runs the analysis on one self-contained fixture.
func computeSrc(t *testing.T, src string) *Facts {
	t.Helper()
	fset, files, pkg, info := checkSrc(t, "p", src, nil)
	return Compute(fset, files, pkg, info, nil)
}

func siteKinds(fi FuncInfo) []string {
	var out []string
	for _, s := range fi.Sites {
		out = append(out, string(s.Kind))
	}
	return out
}

func wantSites(t *testing.T, fi FuncInfo, kinds ...Kind) {
	t.Helper()
	if len(fi.Sites) != len(kinds) {
		t.Fatalf("got sites %v, want kinds %v", fi.Sites, kinds)
	}
	for i, k := range kinds {
		if fi.Sites[i].Kind != k {
			t.Errorf("site %d: got %v (%s), want kind %s", i, fi.Sites[i].Kind, fi.Sites[i].Desc, k)
		}
	}
}

// TestConstantMakeStaysStack is the canonical false-positive
// regression: a constant-size make that never escapes is
// stack-allocated by the compiler and must not be a site.
func TestConstantMakeStaysStack(t *testing.T) {
	f := computeSrc(t, `package p
func F() int {
	b := make([]byte, 64)
	b[0] = 1
	return len(b)
}`)
	wantSites(t, f.Funcs["p.F"])
}

func TestNonConstantMakeIsSite(t *testing.T) {
	f := computeSrc(t, `package p
func F(n int) int {
	b := make([]byte, n)
	return len(b)
}`)
	wantSites(t, f.Funcs["p.F"], KindMake)
}

func TestEscapingMakeViaReturn(t *testing.T) {
	f := computeSrc(t, `package p
func F() []byte {
	b := make([]byte, 8)
	return b
}`)
	wantSites(t, f.Funcs["p.F"], KindMake)
}

func TestParamLeakVectors(t *testing.T) {
	f := computeSrc(t, `package p
func Leaky(p []byte) []byte { return p }
func Clean(p []byte) int    { return len(p) }
func Store(m map[int][]byte, p []byte) { m[0] = p }
`)
	if got := f.Funcs["p.Leaky"].ParamLeaks; len(got) != 1 || !got[0] {
		t.Errorf("Leaky: got %v, want [true]", got)
	}
	if got := f.Funcs["p.Clean"].ParamLeaks; len(got) != 1 || got[0] {
		t.Errorf("Clean: got %v, want [false]", got)
	}
	if got := f.Funcs["p.Store"].ParamLeaks; len(got) != 2 || got[0] || !got[1] {
		t.Errorf("Store: got %v, want [false true]", got)
	}
}

// TestIntraPackageStackProof: &T{} passed to a non-leaking callee in
// the same package stays on the stack — the fixpoint must prove it.
func TestIntraPackageStackProof(t *testing.T) {
	f := computeSrc(t, `package p
type R struct{ n int }
func consume(r *R) int { return r.n }
func F() int {
	r := &R{n: 1}
	return consume(r)
}`)
	wantSites(t, f.Funcs["p.F"])
}

// TestTransitiveLeak: the leak must propagate through a chain.
func TestTransitiveLeak(t *testing.T) {
	f := computeSrc(t, `package p
type R struct{ n int }
var sink *R
func keep(r *R)    { sink = r }
func forward(r *R) { keep(r) }
func F() int {
	r := &R{n: 1}
	forward(r)
	return 0
}`)
	wantSites(t, f.Funcs["p.F"], KindNew)
	if got := f.Funcs["p.forward"].ParamLeaks; len(got) != 1 || !got[0] {
		t.Errorf("forward: got %v, want [true]", got)
	}
}

// TestCrossPackageStackProof: the same proof through dependency facts
// (the .vetx channel).
func TestCrossPackageStackProof(t *testing.T) {
	depSrc := `package escdep
type Rec struct{ N int }
func Consume(r *Rec) int { return r.N }
func Keep(r *Rec) *Rec   { return r }
`
	fsetD, filesD, pkgD, infoD := checkSrc(t, "escdep", depSrc, nil)
	depFacts := Compute(fsetD, filesD, pkgD, infoD, nil)
	if got := depFacts.Funcs["escdep.Consume"].ParamLeaks; len(got) != 1 || got[0] {
		t.Fatalf("Consume: got %v, want [false]", got)
	}

	modSrc := `package escmod
import "escdep"
func Stack() int {
	r := &escdep.Rec{N: 1}
	return escdep.Consume(r)
}
func Heap() *escdep.Rec {
	r := &escdep.Rec{N: 1}
	return escdep.Keep(r)
}`
	fset, files, pkg, info := checkSrc(t, "escmod", modSrc, mapImporter{"escdep": pkgD})

	// Without dependency facts the callee is unknown and leaks.
	noFacts := Compute(fset, files, pkg, info, nil)
	wantSites(t, noFacts.Funcs["escmod.Stack"], KindNew)

	// With facts, Stack's &Rec{} is proved stack-resident; Heap's is not.
	withFacts := Compute(fset, files, pkg, info, map[string]*Facts{"escdep": depFacts})
	wantSites(t, withFacts.Funcs["escmod.Stack"])
	wantSites(t, withFacts.Funcs["escmod.Heap"], KindNew)
}

// TestNonEscapingClosure is a named false-positive regression: a
// closure called locally and never stored does not allocate.
func TestNonEscapingClosure(t *testing.T) {
	f := computeSrc(t, `package p
func F() int {
	n := 0
	inc := func() { n++ }
	inc()
	return n
}`)
	wantSites(t, f.Funcs["p.F"])
}

func TestEscapingClosureAndCapture(t *testing.T) {
	f := computeSrc(t, `package p
func F() func() []byte {
	b := make([]byte, 16)
	return func() []byte { return b }
}`)
	// The make escapes via the captured reference, and the closure
	// itself is returned.
	kinds := siteKinds(f.Funcs["p.F"])
	if len(kinds) != 2 || !strings.Contains(strings.Join(kinds, ","), "make") || !strings.Contains(strings.Join(kinds, ","), "closure") {
		t.Errorf("got %v, want a make and a closure site", f.Funcs["p.F"].Sites)
	}
}

func TestImmediatelyInvokedLiteral(t *testing.T) {
	f := computeSrc(t, `package p
func F() int {
	v := func(x int) int { return x + 1 }(41)
	return v
}`)
	wantSites(t, f.Funcs["p.F"])
}

func TestBoxingOnReturnAndCall(t *testing.T) {
	f := computeSrc(t, `package p
type T struct{ a, b int }
func Box(n int) interface{} { return n }
func NoBoxPointer(p *T) interface{} { return p }
func sinkAny(v interface{}) {}
func CallBox(t T) { sinkAny(t) }
func ConstNoBox() interface{} { return 42 }
`)
	wantSites(t, f.Funcs["p.Box"], KindBox)
	wantSites(t, f.Funcs["p.NoBoxPointer"]) // pointer-shaped: no box
	wantSites(t, f.Funcs["p.CallBox"], KindBox)
	wantSites(t, f.Funcs["p.ConstNoBox"]) // constants box from static data
}

func TestVariadicInterfaceCall(t *testing.T) {
	f := computeSrc(t, `package p
func logf(args ...interface{}) {}
func F(n int) { logf("x", n) }
func Pass(args []interface{}) { logf(args...) }
`)
	wantSites(t, f.Funcs["p.F"], KindVariadic)
	wantSites(t, f.Funcs["p.Pass"]) // spread of an existing slice: no new backing
}

func TestStringConvAndMapKeyIdiom(t *testing.T) {
	f := computeSrc(t, `package p
func Conv(b []byte) string { return string(b) }
func Idiom(m map[string]int, b []byte) int { return m[string(b)] }
func ToBytes(s string) []byte { return []byte(s) }
`)
	wantSites(t, f.Funcs["p.Conv"], KindConv)
	wantSites(t, f.Funcs["p.Idiom"]) // compiler-elided map-key conversion
	wantSites(t, f.Funcs["p.ToBytes"], KindConv)
}

func TestAppendAlwaysSite(t *testing.T) {
	f := computeSrc(t, `package p
func F(xs []int, x int) []int { return append(xs, x) }
`)
	wantSites(t, f.Funcs["p.F"], KindAppend)
}

func TestStringConcat(t *testing.T) {
	f := computeSrc(t, `package p
func F(a, b string) string { return a + b }
func Const() string { return "a" + "b" }
`)
	wantSites(t, f.Funcs["p.F"], KindConcat)
	wantSites(t, f.Funcs["p.Const"]) // constant-folded
}

func TestGoStatement(t *testing.T) {
	f := computeSrc(t, `package p
func F(ch chan int) {
	go func() { ch <- 1 }()
}`)
	wantSites(t, f.Funcs["p.F"], KindGo)
}

func TestMapIterCapture(t *testing.T) {
	f := computeSrc(t, `package p
func F(m map[int]int) []func() int {
	var out []func() int
	for k := range m {
		k := k
		out = append(out, func() int { return k })
	}
	return out
}`)
	kinds := strings.Join(siteKinds(f.Funcs["p.F"]), ",")
	if !strings.Contains(kinds, string(KindMapIter)) {
		t.Errorf("got %v, want a mapiter site", f.Funcs["p.F"].Sites)
	}
}

// TestColdSites: allocations on paths that only reach error returns or
// panics are flagged Cold.
func TestColdSites(t *testing.T) {
	f := computeSrc(t, `package p
type myErr struct{ s string }
func (e *myErr) Error() string { return e.s }
func Parse(b []byte, n int) ([]byte, error) {
	if n < 0 {
		msg := string(b)
		return nil, &myErr{s: msg}
	}
	out := make([]byte, n)
	return out, nil
}`)
	fi := f.Funcs["p.Parse"]
	if len(fi.Sites) != 3 {
		t.Fatalf("got %v, want 3 sites", fi.Sites)
	}
	for _, s := range fi.Sites {
		wantCold := s.Kind == KindConv || s.Kind == KindNew
		if s.Cold != wantCold {
			t.Errorf("site %s (%s): Cold=%v, want %v", s.Kind, s.Desc, s.Cold, wantCold)
		}
	}
}

// TestMethodReceiverLeak: a method that stores its receiver leaks it.
func TestMethodReceiverLeak(t *testing.T) {
	f := computeSrc(t, `package p
type L struct{ n int }
var reg []*L
func (l *L) Register() { reg = append(reg, l) }
func (l *L) Len() int  { return l.n }
func F() int {
	l := &L{n: 2}
	return l.Len()
}
func G() {
	l := &L{n: 2}
	l.Register()
}`)
	if !f.Funcs["p.L.Register"].RecvLeaks {
		t.Error("Register should leak its receiver")
	}
	if f.Funcs["p.L.Len"].RecvLeaks {
		t.Error("Len should not leak its receiver")
	}
	wantSites(t, f.Funcs["p.F"])
	wantSites(t, f.Funcs["p.G"], KindNew)
}

// TestUnknownCalleeIsConservative: calls out of the module leak.
func TestUnknownCalleeIsConservative(t *testing.T) {
	f := computeSrc(t, `package p
type W interface{ Sink(p []byte) }
func F(w W) int {
	b := make([]byte, 4)
	w.Sink(b)
	return len(b)
}`)
	wantSites(t, f.Funcs["p.F"], KindMake)
}

// TestEscapingElementKeepsContainerOnStack is the directed-flow
// regression: a composite literal whose element escapes on its own
// (here, a slice also stored into a heap-visible map) must not be
// dragged to the heap with it — the compiler keeps the container
// stack-resident and only the element's own allocation is heap. This
// is exactly the WAL-record pattern: &Record{Data: img} passed to a
// non-leaking Append while img is retained in the transaction's write
// buffer.
func TestEscapingElementKeepsContainerOnStack(t *testing.T) {
	f := computeSrc(t, `package p
type R struct{ b []byte }
type T struct{ m map[int][]byte }
func consume(r *R) int { return len(r.b) }
func (t *T) F(n int) int {
	img := make([]byte, n) // a site: retained via t.m
	t.m[0] = img
	r := &R{b: img} // not a site: consume does not leak r
	return consume(r)
}`)
	wantSites(t, f.Funcs["p.T.F"], KindMake)
}

// TestEscapingContainerLeaksElement is the sound direction of the same
// edge: when the container escapes, values stored into it escape too.
func TestEscapingContainerLeaksElement(t *testing.T) {
	f := computeSrc(t, `package p
type R struct{ b []byte }
var sink *R
func F(n int) {
	img := make([]byte, n)
	r := &R{b: img}
	sink = r
}`)
	wantSites(t, f.Funcs["p.F"], KindMake, KindNew)
}
