// Package escape is a conservative intra-module escape and allocation
// analysis over the same package-at-a-time pipeline as lint/callgraph.
// It answers the one question the race detector and the other ten
// analyzers cannot: "does this statement allocate on the hot path?"
//
// The analysis has two cooperating halves:
//
//   - A value-flow escape analysis per function. Local variables are
//     tracked through a union-find of aliases ("q := p" joins p and q);
//     a value escapes when it is returned, stored through a pointer,
//     field, index, or map, sent on a channel, captured by an escaping
//     closure, converted to an interface, spawned in a go statement, or
//     passed to a callee parameter that leaks. Parameter-leak vectors
//     are computed by an optimistic intra-package fixpoint and travel
//     across package boundaries as facts (the .vetx channel), so a
//     caller in mmdb/internal/engine can prove that &wal.Record{...}
//     handed to wal's Append never reaches the heap. Unknown callees
//     (the stdlib, interface methods, func-typed variables) leak every
//     pointer-carrying argument — the lattice errs toward "escapes".
//
//   - An allocation-site classifier. Each syntactic construct that can
//     allocate becomes a candidate Site: make/new/&T{} and composite
//     literals (a site only when the value escapes, or for maps and
//     chans and non-constant-size slices, always), append (always — the
//     growth path allocates), interface boxing of non-pointer-shaped
//     concrete values, escaping closures and method values, string ↔
//     []byte/[]rune conversions (except the m[string(b)] map-index
//     idiom the compiler elides), non-constant string concatenation,
//     variadic ...interface{} calls such as fmt.*, go statements, and
//     closures that capture a map-range iteration variable (KindMapIter
//     — ordering capture plus allocation). Sites whose cfg block can
//     only reach panic exits or error returns are flagged Cold so a
//     policy layer (alloccheck) can keep hot-path discipline without
//     outlawing fmt.Errorf on failure paths.
//
// Known, deliberate gaps (all biased toward over-reporting, never
// under-reporting, except where noted): element reads (x[i], s.f) do
// not re-track the extracted pointer, map inserts are not sites (the
// steady state reuses cells and the compiler oracle is equally silent),
// and range copies of pointer-carrying elements are untracked. These
// are documented in DESIGN.md §17 together with the -gcflags=-m oracle
// that cross-checks the verdicts.
package escape

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"mmdb/lint/analysis"
	"mmdb/lint/callgraph"
	"mmdb/lint/cfg"
)

// Kind classifies an allocation site.
type Kind string

const (
	KindMake     Kind = "make"     // make(), slice/map composite literal
	KindNew      Kind = "new"      // new(T), &T{...}
	KindAppend   Kind = "append"   // append growth
	KindBox      Kind = "box"      // interface boxing of a non-pointer-shaped value
	KindClosure  Kind = "closure"  // escaping func literal or method value
	KindConv     Kind = "conv"     // string <-> []byte/[]rune conversion
	KindConcat   Kind = "concat"   // non-constant string concatenation
	KindVariadic Kind = "variadic" // call building a ...interface{} slice (fmt.*)
	KindGo       Kind = "go"       // goroutine spawn
	KindMapIter  Kind = "mapiter"  // escaping closure capturing a map-range variable
)

// Site is one allocation site attributed to its enclosing declared
// function (closure bodies included, like lint/callgraph edges).
type Site struct {
	// Pos is the site position in the local FileSet; zero for sites
	// decoded from another package's facts.
	Pos token.Pos `json:"-"`
	// Posn is the printable "file:line:col" position.
	Posn string `json:"posn"`
	Kind Kind   `json:"kind"`
	Desc string `json:"desc"`
	// Cold is set when the site's cfg block reaches function exit only
	// through panics or error returns.
	Cold bool `json:"cold,omitempty"`
}

// FuncInfo is the escape summary of one declared function.
type FuncInfo struct {
	Sites []Site `json:"sites,omitempty"`
	// RecvLeaks reports whether the receiver escapes the callee.
	RecvLeaks bool `json:"recvLeaks,omitempty"`
	// ParamLeaks has one entry per declared parameter (flattened);
	// true means a pointer passed in that position may be retained.
	ParamLeaks []bool `json:"paramLeaks,omitempty"`
}

// Facts is one package's escape summary, keyed like callgraph
// ("pkgpath.Func" / "pkgpath.Type.Method").
type Facts struct {
	Funcs map[string]FuncInfo `json:"funcs,omitempty"`
}

// intrinsicNoLeak lists the few stdlib callees the hot paths lean on
// whose signatures provably retain nothing; everything else outside the
// module conservatively leaks every pointer-carrying argument.
var intrinsicNoLeak = map[string]bool{
	"encoding/binary.littleEndian.PutUint16": true,
	"encoding/binary.littleEndian.PutUint32": true,
	"encoding/binary.littleEndian.PutUint64": true,
	"encoding/binary.littleEndian.Uint16":    true,
	"encoding/binary.littleEndian.Uint32":    true,
	"encoding/binary.littleEndian.Uint64":    true,
	"encoding/binary.bigEndian.PutUint16":    true,
	"encoding/binary.bigEndian.PutUint32":    true,
	"encoding/binary.bigEndian.PutUint64":    true,
	"encoding/binary.bigEndian.Uint16":       true,
	"encoding/binary.bigEndian.Uint32":       true,
	"encoding/binary.bigEndian.Uint64":       true,
	"hash/crc32.Checksum":                    true,
	"hash/crc32.Update":                      true,
	"bytes.Compare":                          true,
	"bytes.Equal":                            true,
	"time.Since":                             true,
}

// Compute analyzes one package. deps maps dependency package paths to
// their previously computed Facts (the .vetx channel); missing entries
// simply make those callees conservative.
func Compute(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps map[string]*Facts) *Facts {
	c := &computation{
		fset:     fset,
		pkg:      pkg,
		info:     info,
		depFuncs: make(map[string]FuncInfo),
		cur:      make(map[string]*leakVec),
	}
	for _, f := range deps {
		if f == nil {
			continue
		}
		for k, fi := range f.Funcs {
			c.depFuncs[k] = fi
		}
	}
	type declEntry struct {
		key  string
		decl *ast.FuncDecl
	}
	var decls []declEntry
	for _, f := range files {
		if analysis.IsTestFile(fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			key := callgraph.DeclKey(pkg.Path(), fn)
			decls = append(decls, declEntry{key, fn})
			c.cur[key] = &leakVec{params: make([]bool, flatParamCount(fn))}
		}
	}

	// Optimistic fixpoint: leak vectors start all-false and only ever
	// grow, so iteration converges (bounded by total parameter count).
	var scans map[string]*fnScan
	for iter := 0; iter < len(decls)+2; iter++ {
		scans = make(map[string]*fnScan, len(decls))
		changed := false
		for _, de := range decls {
			sc := c.scanFunc(de.decl)
			scans[de.key] = sc
			vec := sc.paramVector(de.decl)
			if !vec.equal(c.cur[de.key]) {
				c.cur[de.key] = vec
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	out := &Facts{Funcs: make(map[string]FuncInfo, len(decls))}
	for _, de := range decls {
		sc := scans[de.key]
		vec := c.cur[de.key]
		fi := FuncInfo{RecvLeaks: vec.recv, ParamLeaks: vec.params}
		fi.Sites = sc.finalize(de.decl)
		// All-false summaries are recorded too: absence means "unknown
		// callee, assume leaks", presence means "proved non-leaking".
		out.Funcs[de.key] = fi
	}
	return out
}

func flatParamCount(fn *ast.FuncDecl) int {
	n := 0
	for _, f := range fn.Type.Params.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// leakVec is one function's parameter-leak summary during the fixpoint.
type leakVec struct {
	recv   bool
	params []bool
}

func (v *leakVec) equal(o *leakVec) bool {
	if o == nil || v.recv != o.recv || len(v.params) != len(o.params) {
		return false
	}
	for i := range v.params {
		if v.params[i] != o.params[i] {
			return false
		}
	}
	return true
}

type computation struct {
	fset     *token.FileSet
	pkg      *types.Package
	info     *types.Info
	depFuncs map[string]FuncInfo
	cur      map[string]*leakVec
}

// leaksFor resolves a callee's leak behavior. known=false means the
// callee could not be summarized and every pointer-carrying argument
// (and the receiver) must be treated as escaping.
func (c *computation) leaksFor(fn *types.Func) (recv bool, params []bool, known bool) {
	if fn == nil {
		return true, nil, false
	}
	key := callgraph.FuncKey(fn)
	if key == "" {
		return true, nil, false
	}
	if fn.Pkg() == c.pkg {
		if v, ok := c.cur[key]; ok {
			return v.recv, v.params, true
		}
		return true, nil, false
	}
	if fi, ok := c.depFuncs[key]; ok {
		return fi.RecvLeaks, fi.ParamLeaks, true
	}
	if intrinsicNoLeak[key] {
		return false, nil, true
	}
	return true, nil, false
}

// dest describes where a value flows.
type destKind int

const (
	dUse    destKind = iota // consumed without retention
	dEscape                 // heap-visible
	dMapKey                 // map-index key position (suppresses string(b) conv sites)
	dInto                   // stored into the container bound (directed: container's escape implies the value's, not vice versa)
)

type dest struct {
	kind destKind
	bind types.Object // when non-nil, flows into this local variable
}

var use = dest{kind: dUse}
var esc = dest{kind: dEscape}

// candidate is a potential allocation site before escape resolution.
type candidate struct {
	pos        token.Pos
	kind       Kind
	desc       string
	obj        types.Object // bound local; nil when anonymous
	escaped    bool         // flowed directly to an escaping destination
	always     bool         // a site regardless of escape (append, boxing, ...)
	suppressed bool         // map-key string conversion idiom
	captures   []types.Object
}

// flowEdge is a directed escape implication: if from's group escapes,
// to's group escapes. Used for composite-literal elements, where the
// container's fate decides the element's but an escaping element must
// not drag a stack-resident container to the heap.
type flowEdge struct {
	from, to types.Object
}

// fnScan is the per-function value-flow state.
type fnScan struct {
	c *computation
	// union-find over local variable objects.
	parent  map[types.Object]types.Object
	escaped map[types.Object]bool // keyed by find() root
	flows   []flowEdge
	cands   []*candidate
	// mapIterVars are iteration variables of map range statements.
	mapIterVars map[types.Object]bool
	// results is a stack of result tuples (function, then nested
	// literals) for return-statement boxing checks.
	results []*types.Tuple
}

func (c *computation) scanFunc(fn *ast.FuncDecl) *fnScan {
	s := &fnScan{
		c:           c,
		parent:      make(map[types.Object]types.Object),
		escaped:     make(map[types.Object]bool),
		mapIterVars: make(map[types.Object]bool),
	}
	if sig, ok := c.info.Defs[fn.Name].(*types.Func); ok {
		s.results = append(s.results, sig.Type().(*types.Signature).Results())
	} else {
		s.results = append(s.results, nil)
	}
	s.walkStmt(fn.Body)
	// Fixpoint over the deferred implications: an escaping closure leaks
	// everything it captured, and an escaping container leaks the values
	// stored into it (dInto edges) — each of which may trigger the other.
	for {
		changed := false
		for _, cd := range s.cands {
			if len(cd.captures) == 0 || !s.candEscaped(cd) {
				continue
			}
			for _, obj := range cd.captures {
				if !s.groupEscaped(obj) {
					s.markEscape(obj)
					changed = true
				}
			}
			cd.captures = nil // processed
		}
		for _, fe := range s.flows {
			if s.groupEscaped(fe.from) && !s.groupEscaped(fe.to) {
				s.markEscape(fe.to)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return s
}

func (s *fnScan) paramVector(fn *ast.FuncDecl) *leakVec {
	v := &leakVec{}
	if fn.Recv != nil && len(fn.Recv.List) > 0 && len(fn.Recv.List[0].Names) > 0 {
		if obj := s.c.info.Defs[fn.Recv.List[0].Names[0]]; obj != nil {
			v.recv = s.groupEscaped(obj)
		}
	}
	for _, f := range fn.Type.Params.List {
		if len(f.Names) == 0 {
			v.params = append(v.params, false)
			continue
		}
		for _, name := range f.Names {
			obj := s.c.info.Defs[name]
			v.params = append(v.params, obj != nil && s.groupEscaped(obj))
		}
	}
	return v
}

// --- union-find ---

func (s *fnScan) find(obj types.Object) types.Object {
	for {
		p, ok := s.parent[obj]
		if !ok || p == obj {
			return obj
		}
		gp, ok := s.parent[p]
		if ok {
			s.parent[obj] = gp // path halving
		}
		obj = p
	}
}

func (s *fnScan) union(a, b types.Object) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	s.parent[ra] = rb
	if s.escaped[ra] {
		s.escaped[rb] = true
	}
}

func (s *fnScan) markEscape(obj types.Object) {
	if !carriesPointer(obj.Type()) {
		return
	}
	s.escaped[s.find(obj)] = true
}

func (s *fnScan) groupEscaped(obj types.Object) bool {
	return s.escaped[s.find(obj)]
}

func (s *fnScan) candEscaped(cd *candidate) bool {
	return cd.escaped || (cd.obj != nil && s.groupEscaped(cd.obj))
}

func (s *fnScan) addCand(cd *candidate) *candidate {
	s.cands = append(s.cands, cd)
	return cd
}

// bindFlow associates an anonymous allocation with its destination. A
// dInto destination ties the candidate to the container: an allocation
// nested in a composite literal escapes exactly when the container does.
func (cd *candidate) bindFlow(d dest) {
	switch {
	case d.bind != nil:
		cd.obj = d.bind
	case d.kind == dEscape:
		cd.escaped = true
	}
}

// --- statement walking ---

func (s *fnScan) walkStmt(stmt ast.Stmt) {
	switch n := stmt.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range n.List {
			s.walkStmt(st)
		}
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			// Multi-value: call / type assert / map read / chan recv.
			// Results are fresh values (callee-side allocations are the
			// callee's sites); lhs binding is not tracked.
			s.evalExpr(n.Rhs[0], use)
			for _, l := range n.Lhs {
				s.evalLHS(l)
			}
			return
		}
		for i, l := range n.Lhs {
			if i < len(n.Rhs) {
				s.assignPair(l, n.Rhs[i])
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Values) == 1 && len(vs.Names) > 1 {
				s.evalExpr(vs.Values[0], use)
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					s.assignPair(name, vs.Values[i])
				}
			}
		}
	case *ast.ReturnStmt:
		res := s.results[len(s.results)-1]
		for i, e := range n.Results {
			s.evalExpr(e, esc)
			if res != nil && i < res.Len() {
				s.boxCheck(e, res.At(i).Type())
			}
		}
	case *ast.SendStmt:
		s.evalExpr(n.Chan, use)
		s.evalExpr(n.Value, esc)
		if t := s.typeOf(n.Chan); t != nil {
			if ch, ok := t.Underlying().(*types.Chan); ok {
				s.boxCheck(n.Value, ch.Elem())
			}
		}
	case *ast.ExprStmt:
		s.evalExpr(n.X, use)
	case *ast.IncDecStmt:
		s.evalExpr(n.X, use)
	case *ast.GoStmt:
		s.addCand(&candidate{pos: n.Pos(), kind: KindGo, desc: "go statement", always: true})
		if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
			// The goroutine outlives the frame: captures escape.
			for _, obj := range s.capturedLocals(lit) {
				s.markEscape(obj)
			}
			s.walkFuncLitBody(lit)
		} else {
			s.evalExpr(n.Call.Fun, use)
		}
		for _, a := range n.Call.Args {
			s.evalExpr(a, esc)
		}
	case *ast.DeferStmt:
		// Deferred call arguments live until return — frame lifetime —
		// so a defer flows like a normal call.
		s.evalExpr(n.Call, use)
	case *ast.IfStmt:
		s.walkStmt(n.Init)
		s.evalExpr(n.Cond, use)
		s.walkStmt(n.Body)
		s.walkStmt(n.Else)
	case *ast.ForStmt:
		s.walkStmt(n.Init)
		if n.Cond != nil {
			s.evalExpr(n.Cond, use)
		}
		s.walkStmt(n.Post)
		s.walkStmt(n.Body)
	case *ast.RangeStmt:
		s.evalExpr(n.X, use)
		if t := s.typeOf(n.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := s.c.info.Defs[id]; obj != nil {
							s.mapIterVars[obj] = true
						}
					}
				}
			}
		}
		s.walkStmt(n.Body)
	case *ast.SwitchStmt:
		s.walkStmt(n.Init)
		if n.Tag != nil {
			s.evalExpr(n.Tag, use)
		}
		for _, cc := range n.Body.List {
			cc, ok := cc.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				s.evalExpr(e, use)
			}
			for _, st := range cc.Body {
				s.walkStmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		s.walkStmt(n.Init)
		s.walkStmt(n.Assign)
		for _, cc := range n.Body.List {
			cc, ok := cc.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, st := range cc.Body {
				s.walkStmt(st)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range n.Body.List {
			cc, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			s.walkStmt(cc.Comm)
			for _, st := range cc.Body {
				s.walkStmt(st)
			}
		}
	case *ast.LabeledStmt:
		s.walkStmt(n.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt, *ast.BadStmt:
	}
}

// evalLHS evaluates an assignment target for its side expressions
// (index computations, base loads) without flowing a value into it.
func (s *fnScan) evalLHS(l ast.Expr) {
	switch l := l.(type) {
	case *ast.Ident:
	case *ast.IndexExpr:
		s.evalExpr(l.X, use)
		s.evalIndex(l)
	case *ast.SelectorExpr:
		s.evalExpr(l.X, use)
	case *ast.StarExpr:
		s.evalExpr(l.X, use)
	default:
		s.evalExpr(l, use)
	}
}

func (s *fnScan) assignPair(lhs, rhs ast.Expr) {
	if id, ok := unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			s.evalExpr(rhs, use)
			return
		}
		obj := s.objOf(id)
		if isLocalVar(obj) {
			s.evalExpr(rhs, dest{bind: obj})
			s.boxCheck(rhs, obj.Type())
			return
		}
		// Package-level variable: heap-visible.
		s.evalExpr(rhs, esc)
		if obj != nil {
			s.boxCheck(rhs, obj.Type())
		}
		return
	}
	// Store through a selector, index, or pointer: conservatively
	// heap-visible (a value parked in s.f or m[k] outlives our ability
	// to track it).
	s.evalLHS(lhs)
	s.evalExpr(rhs, esc)
	if t := s.typeOf(lhs); t != nil {
		s.boxCheck(rhs, t)
	}
}

// --- expression flow ---

func (s *fnScan) evalExpr(e ast.Expr, d dest) {
	switch e := e.(type) {
	case nil:
	case *ast.ParenExpr:
		s.evalExpr(e.X, d)
	case *ast.Ident:
		obj := s.c.info.Uses[e]
		if isLocalVar(obj) && d.bind != nil && s.mapIterVars[obj] {
			// The iteration-order taint survives the `k := k` copy idiom.
			s.mapIterVars[d.bind] = true
		}
		if isLocalVar(obj) && carriesPointer(obj.Type()) {
			switch {
			case d.kind == dInto:
				s.flows = append(s.flows, flowEdge{from: d.bind, to: obj})
			case d.bind != nil:
				s.union(d.bind, obj)
			case d.kind == dEscape:
				s.markEscape(obj)
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := unparen(e.X).(*ast.CompositeLit); ok {
				s.composite(cl, d, true)
				return
			}
			if obj := s.rootLocal(e.X); obj != nil {
				switch {
				case d.kind == dInto:
					s.flows = append(s.flows, flowEdge{from: d.bind, to: obj})
				case d.bind != nil:
					s.union(d.bind, obj)
				case d.kind == dEscape:
					s.markEscape(obj)
				}
			}
			s.evalExpr(e.X, use)
			return
		}
		s.evalExpr(e.X, use)
	case *ast.CompositeLit:
		s.composite(e, d, false)
	case *ast.FuncLit:
		s.funcLit(e, d)
	case *ast.CallExpr:
		s.call(e, d)
	case *ast.SelectorExpr:
		if sel, ok := s.c.info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			// A method value allocates a bound-method closure and
			// captures its receiver.
			cd := s.addCand(&candidate{pos: e.Pos(), kind: KindClosure, desc: "method value " + e.Sel.Name, always: true})
			cd.bindFlow(d)
			s.evalExpr(e.X, esc)
			return
		}
		s.evalExpr(e.X, use)
	case *ast.IndexExpr:
		s.evalExpr(e.X, use)
		s.evalIndex(e)
	case *ast.IndexListExpr:
		s.evalExpr(e.X, use)
		for _, idx := range e.Indices {
			s.evalExpr(idx, use)
		}
	case *ast.SliceExpr:
		s.evalExpr(e.X, d) // slicing aliases the backing array
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				s.evalExpr(b, use)
			}
		}
	case *ast.StarExpr:
		s.evalExpr(e.X, use)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if t := s.typeOf(e); t != nil && isString(t) && !s.isConstant(e) {
				s.addCand(&candidate{pos: e.Pos(), kind: KindConcat, desc: "string concatenation", always: true})
			}
		}
		s.evalExpr(e.X, use)
		s.evalExpr(e.Y, use)
	case *ast.TypeAssertExpr:
		s.evalExpr(e.X, use)
	case *ast.KeyValueExpr:
		s.evalExpr(e.Value, d)
	}
}

// evalIndex flows an index operand, marking map keys so the
// m[string(b)] conversion idiom is not reported.
func (s *fnScan) evalIndex(e *ast.IndexExpr) {
	d := use
	if t := s.typeOf(e.X); t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			d = dest{kind: dMapKey}
		}
	}
	s.evalExpr(e.Index, d)
}

// composite handles T{...}, []T{...}, map[K]V{...} and their
// address-taken forms.
func (s *fnScan) composite(cl *ast.CompositeLit, d dest, addrTaken bool) {
	t := s.typeOf(cl)
	var cd *candidate
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			cd = &candidate{pos: cl.Pos(), kind: KindMake, desc: "map literal " + typeLabel(t), always: true}
		case *types.Slice:
			cd = &candidate{pos: cl.Pos(), kind: KindMake, desc: "slice literal " + typeLabel(t)}
		default:
			if addrTaken {
				cd = &candidate{pos: cl.Pos(), kind: KindNew, desc: "&" + typeLabel(t) + "{...}"}
			}
		}
	} else if addrTaken {
		cd = &candidate{pos: cl.Pos(), kind: KindNew, desc: "&composite literal"}
	}
	if cd != nil {
		cd.bindFlow(d)
		s.addCand(cd)
	}
	// Elements follow the composite's fate — if the composite escapes (or
	// is bound to a local that does), pointers stored in it escape too —
	// but only in that direction: an element that escapes on its own
	// (e.g. it was also stored somewhere heap-visible) must not drag a
	// stack-resident composite to the heap. dInto records the directed
	// implication.
	elemDest := d
	if d.bind != nil {
		elemDest = dest{kind: dInto, bind: d.bind}
	}
	for _, elt := range cl.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if t != nil {
				if m, ok := t.Underlying().(*types.Map); ok {
					s.evalExpr(kv.Key, elemDest)
					s.boxCheck(kv.Key, m.Key())
				}
			}
		}
		s.evalExpr(val, elemDest)
		if et := s.elemTypeFor(t, cl, elt); et != nil {
			s.boxCheck(val, et)
		}
	}
}

// elemTypeFor resolves the expected type of one composite element for
// boxing checks.
func (s *fnScan) elemTypeFor(t types.Type, cl *ast.CompositeLit, elt ast.Expr) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	case *types.Struct:
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				for i := 0; i < u.NumFields(); i++ {
					if u.Field(i).Name() == id.Name {
						return u.Field(i).Type()
					}
				}
			}
			return nil
		}
		for i, e := range cl.Elts {
			if e == elt && i < u.NumFields() {
				return u.Field(i).Type()
			}
		}
	}
	return nil
}

func (s *fnScan) funcLit(lit *ast.FuncLit, d dest) {
	cd := &candidate{pos: lit.Pos(), kind: KindClosure, desc: "func literal", captures: s.capturedLocals(lit)}
	for _, obj := range cd.captures {
		if s.mapIterVars[obj] {
			cd.kind = KindMapIter
			cd.desc = "closure capturing map-range variable " + obj.Name()
			break
		}
	}
	cd.bindFlow(d)
	s.addCand(cd)
	s.walkFuncLitBody(lit)
}

// walkFuncLitBody analyzes a literal's body in the enclosing function's
// value-flow space (locals are distinct objects, so no collision).
func (s *fnScan) walkFuncLitBody(lit *ast.FuncLit) {
	var res *types.Tuple
	if t, ok := s.typeOf(lit).(*types.Signature); ok {
		res = t.Results()
	}
	s.results = append(s.results, res)
	s.walkStmt(lit.Body)
	s.results = s.results[:len(s.results)-1]
}

// capturedLocals lists enclosing-function locals referenced inside lit.
func (s *fnScan) capturedLocals(lit *ast.FuncLit) []types.Object {
	seen := make(map[types.Object]bool)
	var out []types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := s.c.info.Uses[id]
		if !isLocalVar(obj) || seen[obj] {
			return true
		}
		// Declared outside the literal = captured.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// --- calls ---

func (s *fnScan) call(e *ast.CallExpr, d dest) {
	// Conversion?
	if tv, ok := s.c.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
		s.conversion(e, tv.Type, d)
		return
	}
	// Builtin?
	if id, ok := unparen(e.Fun).(*ast.Ident); ok {
		if b, ok := s.c.info.Uses[id].(*types.Builtin); ok {
			s.builtin(e, b.Name(), d)
			return
		}
	}
	// Immediately-invoked literal: arguments bind to parameters, the
	// closure itself never materializes.
	if lit, ok := unparen(e.Fun).(*ast.FuncLit); ok {
		params := litParams(s.c.info, lit)
		for i, a := range e.Args {
			if i < len(params) && isLocalVar(params[i]) && carriesPointer(params[i].Type()) {
				s.evalExpr(a, dest{bind: params[i]})
			} else {
				s.evalExpr(a, use)
			}
		}
		s.walkFuncLitBody(lit)
		return
	}

	fn := calleeFunc(s.c.info, e.Fun)
	recvLeak, paramLeaks, known := s.c.leaksFor(fn)

	var sig *types.Signature
	if tv, ok := s.c.info.Types[e.Fun]; ok {
		sig, _ = tv.Type.(*types.Signature)
	}

	// Receiver flow for method calls.
	if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
		if fn != nil && fn.Type().(*types.Signature).Recv() != nil {
			if !known || recvLeak {
				s.evalExpr(sel.X, esc)
			} else {
				s.evalExpr(sel.X, use)
			}
		} else {
			s.evalExpr(sel.X, use)
		}
	} else if _, isIdent := unparen(e.Fun).(*ast.Ident); !isIdent {
		s.evalExpr(e.Fun, use)
	} else if fn == nil {
		// Call through a func-typed variable: the variable is used.
		s.evalExpr(e.Fun, use)
	}

	// Variadic ...interface{} calls build a fresh boxed slice unless an
	// existing slice is passed through with "...".
	variadicIface := false
	if sig != nil && sig.Variadic() && !e.Ellipsis.IsValid() {
		last := sig.Params().At(sig.Params().Len() - 1)
		if sl, ok := last.Type().Underlying().(*types.Slice); ok {
			if types.IsInterface(sl.Elem()) && len(e.Args) >= sig.Params().Len() {
				name := calleeName(e.Fun)
				s.addCand(&candidate{pos: e.Pos(), kind: KindVariadic, desc: "variadic ...interface{} call to " + name, always: true})
				variadicIface = true
			}
		}
	}

	for i, a := range e.Args {
		leak := true
		if known {
			leak = paramLeakAt(paramLeaks, sig, i, e.Ellipsis.IsValid())
		}
		if pt := paramTypeAt(sig, i, e.Ellipsis.IsValid()); pt != nil && !variadicIface {
			s.boxCheck(a, pt)
		}
		if leak {
			s.evalExpr(a, esc)
		} else {
			s.evalExpr(a, use)
		}
	}
	_ = d // call results are callee-side allocations
}

// paramTypeAt returns the effective parameter type for argument i,
// unwrapping the variadic slice when the call spreads arguments.
func paramTypeAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	if sig == nil {
		return nil
	}
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 && !ellipsis {
		sl, ok := sig.Params().At(n - 1).Type().Underlying().(*types.Slice)
		if !ok {
			return nil
		}
		return sl.Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func paramLeakAt(leaks []bool, sig *types.Signature, i int, ellipsis bool) bool {
	if leaks == nil {
		// Known callee with an all-false (absent) vector: nothing leaks.
		return false
	}
	if sig != nil && sig.Variadic() && i >= sig.Params().Len()-1 && !ellipsis {
		i = sig.Params().Len() - 1
	}
	if i >= len(leaks) {
		return true
	}
	return leaks[i]
}

func (s *fnScan) builtin(e *ast.CallExpr, name string, d dest) {
	switch name {
	case "append":
		s.addCand(&candidate{pos: e.Pos(), kind: KindAppend, desc: "append (growth reallocates)", always: true})
		if len(e.Args) > 0 {
			s.evalExpr(e.Args[0], d) // result aliases the first operand
			for _, a := range e.Args[1:] {
				if t := s.typeOf(a); t != nil && carriesPointer(t) && !isString(t) {
					s.evalExpr(a, esc) // appended pointers land in the backing array
				} else {
					s.evalExpr(a, use)
				}
			}
		}
	case "make":
		t := s.typeOf(e)
		cd := &candidate{pos: e.Pos(), kind: KindMake, desc: "make " + typeLabel(t)}
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Map, *types.Chan:
				cd.always = true
			case *types.Slice:
				for _, a := range e.Args[1:] {
					if !s.isConstant(a) {
						cd.always = true // runtime-sized: never stack-allocated
						cd.desc = "make " + typeLabel(t) + " (non-constant size)"
					}
				}
			}
		}
		cd.bindFlow(d)
		s.addCand(cd)
		for _, a := range e.Args[1:] {
			s.evalExpr(a, use)
		}
	case "new":
		t := s.typeOf(e)
		cd := &candidate{pos: e.Pos(), kind: KindNew, desc: "new " + typeLabel(t)}
		cd.bindFlow(d)
		s.addCand(cd)
	case "panic":
		for _, a := range e.Args {
			s.evalExpr(a, esc)
		}
	default: // len, cap, copy, delete, clear, min, max, ...
		for _, a := range e.Args {
			s.evalExpr(a, use)
		}
	}
}

func (s *fnScan) conversion(e *ast.CallExpr, target types.Type, d dest) {
	arg := e.Args[0]
	at := s.typeOf(arg)
	switch {
	case isString(target) && isByteOrRuneSlice(at):
		cd := &candidate{pos: e.Pos(), kind: KindConv, desc: "string(" + typeLabel(at) + ") conversion", always: true}
		if d.kind == dMapKey {
			cd.suppressed = true // m[string(b)] is compiler-elided
		}
		s.addCand(cd)
		s.evalExpr(arg, use)
	case isByteOrRuneSlice(target) && isString(at):
		s.addCand(&candidate{pos: e.Pos(), kind: KindConv, desc: typeLabel(target) + "(string) conversion", always: true})
		s.evalExpr(arg, use)
	case types.IsInterface(target):
		s.boxCheck(arg, target)
		if at != nil && carriesPointer(at) {
			s.evalExpr(arg, esc) // the converted value is now heap-visible
		} else {
			s.evalExpr(arg, use)
		}
	default:
		s.evalExpr(arg, d) // aliasing conversion ([]T(x), named types)
	}
}

// boxCheck records an interface-boxing site when a non-pointer-shaped,
// non-constant concrete value meets an interface-typed destination.
func (s *fnScan) boxCheck(e ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	e = unparen(e)
	at := s.typeOf(e)
	if at == nil || types.IsInterface(at) {
		return // interface-to-interface carries the existing word pair
	}
	if s.isConstant(e) {
		return // constants box from static data
	}
	if isNilIdent(e) || pointerShaped(at) {
		return
	}
	s.addCand(&candidate{pos: e.Pos(), kind: KindBox, desc: "interface boxing of " + typeLabel(at), always: true})
}

// --- finalize: sites + cold classification ---

func (s *fnScan) finalize(fn *ast.FuncDecl) []Site {
	if len(s.cands) == 0 {
		return nil
	}
	cold := newColdMap(s.c, fn)
	var sites []Site
	for _, cd := range s.cands {
		if cd.suppressed {
			continue
		}
		if !cd.always && !s.candEscaped(cd) {
			continue
		}
		sites = append(sites, Site{
			Pos:  cd.pos,
			Posn: s.c.fset.Position(cd.pos).String(),
			Kind: cd.kind,
			Desc: cd.desc,
			Cold: cold.isCold(cd.pos),
		})
	}
	return sites
}

// coldMap classifies positions by whether their cfg block can reach a
// normal (non-panic, non-error-return) function exit.
type coldMap struct {
	blocks       []*cfg.Block
	reachNormal  map[*cfg.Block]bool
	fset         *token.FileSet
	haveFunction bool
}

func newColdMap(c *computation, fn *ast.FuncDecl) *coldMap {
	cm := &coldMap{fset: c.fset}
	g := cfg.New(fn.Name.Name, fn.Body)
	if g == nil {
		return cm
	}
	cm.haveFunction = true
	cm.blocks = g.Blocks

	lastIsError := false
	if fn.Type.Results != nil && len(fn.Type.Results.List) > 0 {
		rt := c.info.TypeOf(fn.Type.Results.List[len(fn.Type.Results.List)-1].Type)
		lastIsError = rt != nil && implementsError(rt)
	}

	normal := make(map[*cfg.Block]bool)
	for _, b := range g.Blocks {
		if b.Kind == cfg.KindPanic {
			continue
		}
		hasReturn := false
		for _, n := range b.Nodes {
			r, ok := n.(*ast.ReturnStmt)
			if !ok {
				continue
			}
			hasReturn = true
			if !lastIsError || len(r.Results) == 0 {
				normal[b] = true
				continue
			}
			last := r.Results[len(r.Results)-1]
			if tv, ok := c.info.Types[last]; ok && tv.IsNil() {
				normal[b] = true
			}
		}
		if !hasReturn {
			for _, sb := range b.Succs {
				if sb == g.Exit {
					normal[b] = true // fall-off-end implicit return
				}
			}
		}
	}

	// Backward closure: a block reaches a normal exit when it or any
	// successor does.
	cm.reachNormal = make(map[*cfg.Block]bool, len(g.Blocks))
	for b := range normal {
		cm.reachNormal[b] = true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if cm.reachNormal[b] {
				continue
			}
			for _, sb := range b.Succs {
				if cm.reachNormal[sb] {
					cm.reachNormal[b] = true
					changed = true
					break
				}
			}
		}
	}
	return cm
}

// isCold reports whether pos sits in a block that cannot reach a normal
// exit. Positions not found in any block (closure bodies) are hot.
func (cm *coldMap) isCold(pos token.Pos) bool {
	if !cm.haveFunction {
		return false
	}
	var best ast.Node
	var bestBlock *cfg.Block
	for _, b := range cm.blocks {
		for _, n := range b.Nodes {
			if n == nil || pos < n.Pos() || pos > n.End() {
				continue
			}
			if best == nil || (n.End()-n.Pos()) < (best.End()-best.Pos()) {
				best, bestBlock = n, b
			}
		}
	}
	if bestBlock == nil {
		return false
	}
	return !cm.reachNormal[bestBlock]
}

// --- small helpers ---

func (s *fnScan) typeOf(e ast.Expr) types.Type { return s.c.info.TypeOf(e) }

func (s *fnScan) isConstant(e ast.Expr) bool {
	tv, ok := s.c.info.Types[e]
	return ok && tv.Value != nil
}

func (s *fnScan) objOf(id *ast.Ident) types.Object {
	if obj := s.c.info.Defs[id]; obj != nil {
		return obj
	}
	return s.c.info.Uses[id]
}

// rootLocal strips selectors, indexes, parens, and derefs down to a
// local variable, if the expression is rooted in one.
func (s *fnScan) rootLocal(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := s.c.info.Uses[x]
			if isLocalVar(obj) {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func calleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch f := unparen(fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation
		return calleeFunc(info, f.X)
	case *ast.IndexListExpr:
		return calleeFunc(info, f.X)
	}
	return nil
}

func calleeName(fun ast.Expr) string {
	switch f := unparen(fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "func value"
}

func litParams(info *types.Info, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	for _, f := range lit.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, n := range f.Names {
			out = append(out, info.Defs[n])
		}
	}
	return out
}

// isLocalVar reports whether obj is a function-scoped variable
// (parameter, result, or local — never a field or package-level var).
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == nil || v.Parent() != v.Pkg().Scope()
}

// carriesPointer reports whether values of t can hold a pointer into a
// tracked allocation.
func carriesPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesPointer(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return carriesPointer(u.Elem())
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// pointerShaped reports whether t's runtime representation is a single
// pointer word, making interface conversion allocation-free.
func pointerShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func implementsError(t types.Type) bool {
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errType)
}

func typeLabel(t types.Type) string {
	if t == nil {
		return "?"
	}
	return fmt.Sprintf("%s", types.TypeString(t, func(p *types.Package) string { return p.Name() }))
}
