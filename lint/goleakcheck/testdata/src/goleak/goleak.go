// Package goleak exercises every spawn/join shape goleakcheck
// classifies.
package goleak

import (
	"net/http"
	"sync"
)

func work()               {}
func handle(i int)        {}
func fanIn(ch chan<- int) {}

// --- WaitGroup discipline, accepted shapes ---

// canonical pool: Add before each spawn, deferred Done, Wait after.
func pool(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handle(i)
		}(i)
	}
	wg.Wait()
}

// bulk Add before the spawn loop (the recovery pipeline's shape).
func bulkAdd(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// conditional spawn joined by a conditional deferred Wait: the classic
// false positive — the spawn and its join live on the same branch.
func conditionalDefer(async bool) {
	var wg sync.WaitGroup
	if async {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
		defer wg.Wait()
	}
	work()
}

// Wait on both arms of a branch still joins every path.
func branchyWait(fast bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	if fast {
		wg.Wait()
		return
	}
	work()
	wg.Wait()
}

// --- WaitGroup discipline, violations ---

// an early return path skips the Wait.
func leakyEarlyReturn(fail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "not joined on every path"
		defer wg.Done()
		work()
	}()
	if fail {
		return
	}
	wg.Wait()
}

// no Wait at all.
func neverWaits() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "not joined on every path"
		defer wg.Done()
		work()
	}()
}

// Done with no Add on the path to the spawn.
func missingAdd(lucky bool) {
	var wg sync.WaitGroup
	if lucky {
		wg.Add(1)
	}
	go func() { // want `wg.Done\(\) in the spawned goroutine has no wg.Add on every path`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// waiting on the wrong group joins nothing.
func wrongGroup() {
	var wg, other sync.WaitGroup
	wg.Add(1)
	go func() { // want "not joined on every path"
		defer wg.Done()
		work()
	}()
	other.Wait()
}

// --- annotations ---

// a channel join the analyzer cannot prove, declared at the spawn.
func channelJoin() {
	done := make(chan struct{})
	// goleak:joins the receive below takes the worker's single token
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// declared fire-and-forget with a reason.
func metricsServer() {
	go func() { // goleak:fireforget(debug listener for the process lifetime)
		_ = http.ListenAndServe("localhost:0", nil)
	}()
}

// fireforget without a reason is itself a finding.
func lazyFireforget() {
	// goleak:fireforget
	go work() // want "goleak:fireforget needs a reason"
}

// joins without a mechanism is itself a finding.
func lazyJoins() {
	// goleak:joins
	go work() // want "goleak:joins needs a description"
}

// a doc-comment annotation covers the function's spawn.
//
// goleak:joins the caller receives one value per goroutine on ch
func docAnnotated(ch chan<- int) {
	go fanIn(ch)
}

// --- plain violations ---

// a bare spawn with no join evidence at all.
func bare() {
	go work() // want "never joined"
}

// spawning a named function cannot be WaitGroup-inferred: the Done is
// out of sight, so an annotation is required.
func namedSpawn() {
	var wg sync.WaitGroup
	wg.Add(1)
	go waiter(&wg) // want "never joined"
	wg.Wait()
}

func waiter(wg *sync.WaitGroup) { defer wg.Done(); work() }

// spawns inside closures are checked against the closure's own paths.
func insideClosure() func() {
	return func() {
		go work() // want "never joined"
	}
}

// a spawned goroutine that itself spawns: the inner go statement is
// judged on the inner body's paths.
func nestedSpawn() {
	done := make(chan struct{})
	// goleak:joins one token on done covers the outer goroutine
	go func() {
		defer close(done)
		go work() // want "never joined"
	}()
	<-done
}
