package goleakcheck_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/goleakcheck"
)

func TestGoleakCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), goleakcheck.Analyzer, "goleak")
}
