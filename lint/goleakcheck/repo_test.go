package goleakcheck

import (
	"path/filepath"
	"strings"
	"testing"

	"mmdb/lint/analysis/analysistest"
)

// goleakAudited are the packages whose goroutine spawns the sweep
// covers and that carry goleak annotations.
var goleakAudited = []string{
	"mmdb/internal/engine",
	"mmdb/internal/wal",
	"mmdb/internal/testbed",
	"mmdb/cmd/ckptbench",
}

// TestRepoSpawnsJoined runs the analyzer over the real repository
// packages that spawn goroutines: every spawn must be either
// WaitGroup-joined on all paths or annotated. This is the sweep
// `go vet -vettool=bin/mmdblint` runs in CI, pinned as a unit test.
func TestRepoSpawnsJoined(t *testing.T) {
	ld := newRepoLoader(t)
	for _, pkg := range goleakAudited {
		diags, err := ld.Check(Analyzer, pkg)
		if err != nil {
			t.Fatalf("checking %s: %v", pkg, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %v: %s", pkg, ld.Fset().Position(d.Pos), d.Message)
		}
	}
}

// TestRepoAnnotationsAreLoadBearing re-runs the sweep with annotation
// recognition disabled: every annotated spawn site must resurface as a
// diagnostic. Silence here would mean an annotation is decorating a
// spawn the analyzer never saw — i.e. the static guarantee is weaker
// than the annotations advertise. The parallel.go hit is the PR 5
// pipeline property: remove fanOut's join annotation (or its join
// loop) and the 10-analyzer sweep fails.
func TestRepoAnnotationsAreLoadBearing(t *testing.T) {
	annotationsEnabled = false
	defer func() { annotationsEnabled = true }()

	ld := newRepoLoader(t)
	wantSites := map[string]bool{
		"internal/engine/engine.go":   false, // go e.checkpointLoop(...)
		"internal/engine/parallel.go": false, // fanOut's worker spawn
		"internal/wal/log.go":         false, // go l.flushLoop(...)
		"internal/testbed/crash.go":   false, // in-flight checkpoint goroutine
		"cmd/ckptbench/main.go":       false, // metrics server
	}
	for _, pkg := range goleakAudited {
		diags, err := ld.Check(Analyzer, pkg)
		if err != nil {
			t.Fatalf("checking %s: %v", pkg, err)
		}
		for _, d := range diags {
			pos := ld.Fset().Position(d.Pos)
			for site := range wantSites {
				if strings.HasSuffix(filepath.ToSlash(pos.Filename), site) {
					wantSites[site] = true
				}
			}
		}
	}
	for site, hit := range wantSites {
		if !hit {
			t.Errorf("with annotations disabled, no diagnostic surfaced in %s: its goleak annotation is not load-bearing", site)
		}
	}
}

func newRepoLoader(t *testing.T) *analysistest.Loader {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	ld := analysistest.NewLoader("", map[string]string{"mmdb": root})
	for _, pkg := range goleakAudited {
		if err := ld.Load(pkg); err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
	}
	return ld
}
