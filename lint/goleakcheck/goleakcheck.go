// Package goleakcheck verifies that every goroutine spawn has a
// matching join. A checkpointer that leaks a worker per checkpoint, or
// a recovery path that returns while its partition appliers still run,
// corrupts the next phase's invariants long before the leak shows up
// in memory profiles — so the join is checked statically, per spawn
// site, on every control-flow path.
//
// Two join disciplines are recognized without annotation:
//
//   - sync.WaitGroup balance: a go statement whose function literal
//     calls X.Done() (directly or deferred) is charged to group X.
//     A forward may-dataflow over the lint/cfg graph then requires
//     X.Wait() — inline or deferred — on every path from the spawn to
//     the function's exit, and the dominator tree requires an X.Add
//     call on every path leading to the spawn (Add-before-go, the
//     ordering the race detector cannot see until it is too late).
//
//   - nothing else: channel-join idioms (fanOut's one-token-per-worker
//     done channel, the testbed's checkpoint drain) are real joins the
//     analyzer cannot prove, so they are declared.
//
// Annotation vocabulary, in the enclosing function's doc comment, on
// the go statement's line, or on the line above it:
//
//   - "goleak:joins <how>" — the spawn is joined by the described
//     mechanism ("StopCheckpointLoop receives on done"). The
//     description is mandatory: a join claim with no mechanism is
//     itself reported.
//   - "goleak:fireforget(<reason>)" — the goroutine intentionally
//     outlives the function (a metrics listener for the process's
//     lifetime). The reason is mandatory.
//
// Test files are exempt.
package goleakcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"mmdb/lint/analysis"
	"mmdb/lint/cfg"
	"mmdb/lint/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "goleakcheck",
	Doc:  "checks that every goroutine spawn is joined on all paths, via WaitGroup balance or a declared join",
	Run:  run,
}

var (
	joinsRe      = regexp.MustCompile(`goleak:joins\b[ \t]*(.*)`)
	fireforgetRe = regexp.MustCompile(`goleak:fireforget\(([^)]*)\)`)
	// bare fireforget without parens, to demand a reason instead of
	// silently ignoring the annotation
	bareFireforgetRe = regexp.MustCompile(`goleak:fireforget(\b[^(]|$)`)
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			doc := ""
			if fn.Doc != nil {
				doc = fn.Doc.Text()
			}
			ck := &checker{pass: pass, file: f, doc: doc}
			ck.checkBody(fn.Name.Name, fn.Body)
			for _, lit := range funcLits(fn.Body) {
				ck.checkBody(fn.Name.Name+".func", lit.Body)
			}
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	file *ast.File
	doc  string // enclosing declaration's doc text
}

// spawn is one go statement in the body under analysis.
type spawn struct {
	stmt  *ast.GoStmt
	group string // WaitGroup expression text; "" when not WG-joined
}

func (ck *checker) checkBody(name string, body *ast.BlockStmt) {
	spawns := ck.collectSpawns(body)
	if len(spawns) == 0 {
		return
	}

	// Resolve annotations first: an annotated spawn is accounted for
	// (or reported for a missing reason) and leaves the dataflow.
	var tracked []*spawn
	for _, sp := range spawns {
		switch ck.annotation(sp.stmt) {
		case annoJoins:
			continue
		case annoFireforget:
			continue
		case annoBadJoins:
			ck.pass.Reportf(sp.stmt.Pos(), "goleak:joins needs a description of the join mechanism: goleak:joins <how this goroutine is waited for>")
			continue
		case annoBadFireforget:
			ck.pass.Reportf(sp.stmt.Pos(), "goleak:fireforget needs a reason: goleak:fireforget(<why this goroutine may outlive the function>)")
			continue
		}
		if sp.group == "" {
			ck.pass.Reportf(sp.stmt.Pos(), "goroutine spawned here is never joined: use a sync.WaitGroup (Add before go, Done inside, Wait after), or annotate the spawn with goleak:joins <how> or goleak:fireforget(<reason>)")
			continue
		}
		tracked = append(tracked, sp)
	}
	if len(tracked) == 0 {
		return
	}

	g := cfg.New(name, body)
	ck.checkAdds(g, tracked)
	ck.checkWaits(g, tracked)
}

// collectSpawns lists the go statements directly in body (closures get
// their own pass) with their WaitGroup group, if inferable.
func (ck *checker) collectSpawns(body *ast.BlockStmt) []*spawn {
	var out []*spawn
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			sp := &spawn{stmt: g}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				sp.group = ck.doneGroup(lit)
			}
			out = append(out, sp)
			// Do not descend: a go statement spawning a closure that
			// itself spawns is the closure's problem (it is in
			// funcLits' list).
			return false
		}
		return true
	})
	return out
}

// doneGroup finds the WaitGroup a spawned literal signals: the first
// X.Done() call (deferred or not) in its body, excluding nested
// closures. Returns the group's expression text, or "".
func (ck *checker) doneGroup(lit *ast.FuncLit) string {
	group := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if group != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if g, ok := ck.wgOp(call, "Done"); ok {
				group = g
			}
		}
		return true
	})
	return group
}

// wgOp reports whether call is sync.WaitGroup method op, returning the
// receiver expression's text as the group key.
func (ck *checker) wgOp(call *ast.CallExpr, op string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := ck.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != op {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	named := derefNamed(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "WaitGroup" {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// checkAdds verifies Add-before-go: for each tracked spawn there must
// be a block containing group.Add that dominates the spawn's block (or
// precedes the go statement within the same block).
func (ck *checker) checkAdds(g *cfg.Graph, spawns []*spawn) {
	idom := dataflow.Dominators(g)

	// Per group, the blocks with an Add call, and the index of the last
	// Add node within each.
	type addSite struct {
		block *cfg.Block
		index int
	}
	adds := make(map[string][]addSite)
	spawnAt := make(map[*spawn]addSite)
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if gs, ok := n.(*ast.GoStmt); ok {
				for _, sp := range spawns {
					if sp.stmt == gs {
						spawnAt[sp] = addSite{block: b, index: i}
					}
				}
				continue
			}
			for _, call := range calls(n) {
				if grp, ok := ck.wgOp(call, "Add"); ok {
					adds[grp] = append(adds[grp], addSite{block: b, index: i})
				}
			}
		}
	}
	for _, sp := range spawns {
		at, ok := spawnAt[sp]
		if !ok {
			continue // unreachable code
		}
		covered := false
		for _, add := range adds[sp.group] {
			if add.block == at.block && add.index < at.index {
				covered = true
				break
			}
			if add.block != at.block && dataflow.Dominates(idom, add.block, at.block) {
				covered = true
				break
			}
		}
		if !covered {
			ck.pass.Reportf(sp.stmt.Pos(), "%s.Done() in the spawned goroutine has no %s.Add on every path to this spawn; call Add before the go statement", sp.group, sp.group)
		}
	}
}

// checkWaits runs the forward may-dataflow: the state is the set of
// spawn sites whose goroutine may still be unjoined; group.Wait()
// (inline, or deferred — credited at registration like unlockcheck's
// deferred unlocks) clears every pending spawn of that group. Any
// spawn pending at Exit escapes on some path.
func (ck *checker) checkWaits(g *cfg.Graph, spawns []*spawn) {
	byStmt := make(map[*ast.GoStmt]*spawn, len(spawns))
	for _, sp := range spawns {
		byStmt[sp.stmt] = sp
	}
	apply := func(state map[*spawn]bool, n ast.Node) {
		if gs, ok := n.(*ast.GoStmt); ok {
			if sp := byStmt[gs]; sp != nil {
				state[sp] = true
			}
			return
		}
		// A deferred Wait joins at exit on every path through its
		// registration, so it is credited here; calls() sees the defer's
		// call expression either way.
		for _, call := range calls(n) {
			if grp, ok := ck.wgOp(call, "Wait"); ok {
				for sp := range state {
					if sp.group == grp {
						delete(state, sp)
					}
				}
			}
		}
	}
	res := dataflow.Solve(g, dataflow.Problem{
		Dir:      dataflow.Forward,
		Boundary: func() any { return map[*spawn]bool{} },
		Top:      func() any { return map[*spawn]bool{} },
		Merge: func(a, b any) any {
			out := cloneSpawnSet(a.(map[*spawn]bool))
			for sp := range b.(map[*spawn]bool) {
				out[sp] = true
			}
			return out
		},
		Transfer: func(b *cfg.Block, in any) any {
			state := cloneSpawnSet(in.(map[*spawn]bool))
			for _, n := range b.Nodes {
				apply(state, n)
			}
			return state
		},
		Equal: func(a, b any) bool { return equalSpawnSet(a.(map[*spawn]bool), b.(map[*spawn]bool)) },
	})
	for sp := range res.In[g.Exit].(map[*spawn]bool) {
		ck.pass.Reportf(sp.stmt.Pos(), "goroutine spawned here (WaitGroup %s) is not joined on every path: a path reaches return without %s.Wait()", sp.group, sp.group)
	}
}

type annoKind int

const (
	annoNone annoKind = iota
	annoJoins
	annoFireforget
	annoBadJoins
	annoBadFireforget
)

// annotation resolves the goleak annotation governing a go statement:
// trailing on its line, on the line above, or in the enclosing
// declaration's doc comment.
// annotationsEnabled is lowered only by tests, to prove the repository's
// goleak annotations are load-bearing: with them ignored, the sweep must
// report every annotated spawn site.
var annotationsEnabled = true

func (ck *checker) annotation(gs *ast.GoStmt) annoKind {
	if !annotationsEnabled {
		return annoNone
	}
	pos := ck.pass.Fset.Position(gs.Pos())
	texts := []string{ck.doc}
	for _, cg := range ck.file.Comments {
		for _, c := range cg.List {
			cp := ck.pass.Fset.Position(c.Pos())
			if cp.Filename == pos.Filename && (cp.Line == pos.Line || cp.Line == pos.Line-1) {
				texts = append(texts, c.Text)
			}
		}
	}
	kind := annoNone
	for _, text := range texts {
		if m := fireforgetRe.FindStringSubmatch(text); m != nil {
			if strings.TrimSpace(m[1]) == "" {
				return annoBadFireforget
			}
			kind = annoFireforget
			continue
		}
		if bareFireforgetRe.MatchString(text) {
			return annoBadFireforget
		}
		if m := joinsRe.FindStringSubmatch(text); m != nil {
			if strings.TrimSpace(m[1]) == "" {
				return annoBadJoins
			}
			kind = annoJoins
		}
	}
	return kind
}

func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func cloneSpawnSet(s map[*spawn]bool) map[*spawn]bool {
	out := make(map[*spawn]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func equalSpawnSet(a, b map[*spawn]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// calls lists the call expressions under n, skipping nested function
// literals (each body is analyzed on its own).
func calls(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			out = append(out, call)
		}
		return true
	})
	return out
}

func funcLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
		}
		return true
	})
	return out
}
