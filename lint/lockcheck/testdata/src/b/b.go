// Package b accesses package a's guarded fields: the annotations arrive
// through facts, not source, mirroring the vet .vetx plumbing.
package b

import "a"

func Bad(p *a.Pub) int {
	return p.V // want `access to Pub\.V \(guarded_by:Mu\) without holding p\.Mu`
}

func Good(p *a.Pub) int {
	p.Mu.Lock()
	defer p.Mu.Unlock()
	return p.V
}
