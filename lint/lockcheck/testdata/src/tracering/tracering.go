// Package tracering mirrors internal/obs.Tracer: a bounded multi-
// producer ring buffer whose every field is atomic. It proves the
// tracer's shape is correctly exempt from guarded_by checking — atomics
// need no guard annotations, so the ring produces no diagnostics —
// while the mutexRing contrast below shows the analyzer is genuinely
// looking at this package.
package tracering

import (
	"sync"
	"sync/atomic"
)

// slot is one ring entry; the claim/done generation stamps bracket the
// payload stores exactly as internal/obs.traceSlot does.
type slot struct {
	claim atomic.Uint64
	kind  atomic.Uint64
	a     atomic.Uint64
	done  atomic.Uint64
}

// Ring is the atomic-only tracer shape: no mutex, no guarded_by, and
// therefore nothing for lockcheck to report.
type Ring struct {
	mask  uint64
	head  atomic.Uint64
	slots []slot
}

// Record claims a ticket and publishes the payload between the two
// generation stamps. All stores are atomic: clean.
func (r *Ring) Record(kind, a uint64) {
	ticket := r.head.Add(1) - 1
	s := &r.slots[ticket&r.mask]
	s.claim.Store(ticket + 1)
	s.kind.Store(kind)
	s.a.Store(a)
	s.done.Store(ticket + 1)
}

// Dump reads slots with the double stamp re-check: also lock-free and
// clean.
func (r *Ring) Dump() []uint64 {
	var out []uint64
	for i := range r.slots {
		s := &r.slots[i]
		done := s.done.Load()
		if done == 0 {
			continue
		}
		v := s.a.Load()
		if s.claim.Load() != done || s.done.Load() != done {
			continue
		}
		out = append(out, v)
	}
	return out
}

// mutexRing is the contrast case: the same ring guarded by a mutex with
// an annotated buffer. An unguarded access must be reported, proving
// the analyzer processed this package (so the Ring silence above is a
// real pass, not a skip).
type mutexRing struct {
	mu sync.Mutex
	// evs is the event buffer. guarded_by:mu
	evs []uint64
}

func (r *mutexRing) record(v uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evs = append(r.evs, v)
}

func (r *mutexRing) badLen() int {
	return len(r.evs) // want `access to mutexRing\.evs \(guarded_by:mu\) without holding r\.mu`
}
