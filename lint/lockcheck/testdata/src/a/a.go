package a

import "sync"

// Counter has one guarded and one unguarded field.
type Counter struct {
	mu sync.Mutex
	// n is the count. guarded_by:mu
	n int
	// name is unguarded.
	name string
}

// Box guards its value with an embedded RWMutex.
type Box struct {
	sync.RWMutex
	// val is the content. guarded_by:RWMutex
	val int
}

// Pub is shared state with an exported guard and field, accessed from
// package b to exercise cross-package facts.
type Pub struct {
	Mu sync.Mutex
	// V is the shared value. guarded_by:Mu
	V int
}

func (c *Counter) Bad() int {
	return c.n // want `access to Counter\.n \(guarded_by:mu\) without holding c\.mu`
}

func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Unguarded fields need no lock.
func (c *Counter) Unguarded() string { return c.name }

// incLocked runs with the lock already held by the caller.
// lockcheck:held c.mu
func (c *Counter) incLocked() { c.n++ }

// reset runs before c is shared, so the access is suppressed.
func (c *Counter) reset() {
	c.n = 0 //nolint:lockcheck // c is not shared yet
}

// condUnlock is a false-positive regression test: the early branch
// unlocks and returns, and must not poison the fall-through state.
func (c *Counter) condUnlock(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func (b *Box) BadVal() int {
	return b.val // want `access to Box\.val \(guarded_by:RWMutex\) without holding b\.RWMutex`
}

// GoodVal acquires the embedded guard through the promoted method.
func (b *Box) GoodVal() int {
	b.RLock()
	defer b.RUnlock()
	return b.val
}

// use keeps the unexported helpers referenced.
var _ = (*Counter).incLocked
var _ = (*Counter).reset
var _ = (*Counter).condUnlock
