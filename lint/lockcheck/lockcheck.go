// Package lockcheck verifies the repository's guarded_by annotation
// convention: a struct field whose doc or line comment contains
//
//	// guarded_by:mu
//
// may only be read or written while the named sibling mutex is held in
// the enclosing function. The guard may be a named sync.Mutex/RWMutex
// field or an embedded one (guarded_by:RWMutex), in which case the
// promoted x.Lock()/x.RLock() forms count as acquiring it.
//
// The analysis is an intra-procedural, source-order heuristic, not a
// full lockset analysis: a branch that terminates (return, break,
// continue, panic) discards its lock-state effects, and branches that
// fall through merge optimistically, so conditional unlock-and-return
// idioms do not produce false positives. Functions that run with a lock
// already held by their caller declare it:
//
//	// lockcheck:held e.txnMu
//
// Helpers running before a struct is shared (constructors) or after
// concurrency has ceased can silence a line with //nolint:lockcheck.
// Annotations propagate across packages through vet facts, so engine
// code touching storage.Segment fields is checked too. Test files are
// skipped.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"mmdb/lint/analysis"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:         "lockcheck",
	Doc:          "report accesses to guarded_by-annotated struct fields without the guarding mutex held",
	ExtractFacts: extractFacts,
	Run:          run,
}

// Facts maps "StructName.FieldName" to the guard field's name.
type Facts map[string]string

var (
	guardedByRe = regexp.MustCompile(`guarded_by:\s*([A-Za-z_]\w*)`)
	heldRe      = regexp.MustCompile(`lockcheck:held\s+(.+)`)
)

// extractFacts scans struct declarations for guarded_by annotations.
// It is purely syntactic so it can run on dependencies that are parsed
// but not type-checked.
func extractFacts(fset *token.FileSet, pkgPath string, files []*ast.File) any {
	facts := make(Facts)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := fieldGuard(field)
				if guard == "" {
					continue
				}
				for _, name := range fieldNames(field) {
					facts[ts.Name.Name+"."+name] = guard
				}
			}
			return true
		})
	}
	if len(facts) == 0 {
		return nil
	}
	return facts
}

// fieldGuard returns the guard named by the field's annotation, or "".
func fieldGuard(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// fieldNames lists the declared names of a struct field, including the
// implicit name of an embedded field.
func fieldNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		names := make([]string, len(field.Names))
		for i, n := range field.Names {
			names[i] = n.Name
		}
		return names
	}
	// Embedded: name is the type's base identifier.
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return []string{t.Name}
	case *ast.SelectorExpr:
		return []string{t.Sel.Name}
	}
	return nil
}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass, facts: make(map[string]Facts)}
	for pkgPath := range pass.Facts {
		var f Facts
		if ok, err := pass.DecodeFacts(pkgPath, &f); err != nil {
			return err
		} else if ok {
			w.facts[pkgPath] = f
		}
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				held := heldFromDoc(fn.Doc)
				w.stmts(fn.Body.List, held)
			}
		}
	}
	return nil
}

// heldFromDoc seeds the lock state from lockcheck:held annotations.
func heldFromDoc(doc *ast.CommentGroup) map[string]int {
	held := make(map[string]int)
	if doc == nil {
		return held
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if m := heldRe.FindStringSubmatch(line); m != nil {
			for _, expr := range strings.Split(m[1], ",") {
				if expr = strings.TrimSpace(expr); expr != "" {
					held[expr]++
				}
			}
		}
	}
	return held
}

type walker struct {
	pass  *analysis.Pass
	facts map[string]Facts // package path → annotations
}

// copyHeld clones a lock-state map for an isolated branch walk.
func copyHeld(held map[string]int) map[string]int {
	out := make(map[string]int, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// mergeMax folds a fall-through branch's lock state back into the outer
// state, keeping the maximum count per mutex. Taking the max rather
// than the intersection trades false negatives (a conditionally
// acquired lock counts afterwards) for zero false positives on
// branch-and-return idioms.
func mergeMax(into, from map[string]int) {
	for k, v := range from {
		if v > into[k] {
			into[k] = v
		}
	}
}

// stmts walks a statement list in source order, mutating held, and
// reports whether control definitely leaves the enclosing block.
func (w *walker) stmts(list []ast.Stmt, held map[string]int) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, held map[string]int) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := w.stmts(s.Body.List, thenHeld)
		elseTerm := false
		var elseHeld map[string]int
		if s.Else != nil {
			elseHeld = copyHeld(held)
			elseTerm = w.stmt(s.Else, elseHeld)
		}
		if !thenTerm {
			mergeMax(held, thenHeld)
		}
		if elseHeld != nil && !elseTerm {
			mergeMax(held, elseHeld)
		}
		return thenTerm && s.Else != nil && elseTerm
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := copyHeld(held)
		w.stmts(s.Body.List, body)
		w.stmt(s.Post, body)
		mergeMax(held, body)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		body := copyHeld(held)
		w.stmts(s.Body.List, body)
		mergeMax(held, body)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		w.clauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		w.clauses(s.Body, held)
	case *ast.SelectStmt:
		w.clauses(s.Body, held)
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/spawned calls run later: their lock operations must
		// not change the current state (defer mu.Unlock() keeps the lock
		// held to the end of the function), and a function literal body
		// starts from an empty lock state of its own.
		var call *ast.CallExpr
		if d, ok := s.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = s.(*ast.GoStmt).Call
		}
		for _, a := range call.Args {
			w.expr(a, held)
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, heldFromDoc(nil))
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		w.expr(s.Value, held)
		w.expr(s.Chan, held)
	}
	return false
}

// clauses walks each case/comm clause with an isolated copy of held.
func (w *walker) clauses(body *ast.BlockStmt, held map[string]int) {
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, held)
			}
			list = c.Body
		case *ast.CommClause:
			w.stmt(c.Comm, held)
			list = c.Body
		}
		clauseHeld := copyHeld(held)
		if !w.stmts(list, clauseHeld) {
			mergeMax(held, clauseHeld)
		}
	}
}

// expr walks an expression in source order: lock calls update held,
// guarded field accesses are checked, and function literals start fresh.
func (w *walker) expr(e ast.Expr, held map[string]int) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, heldFromDoc(nil))
			return false
		case *ast.CallExpr:
			if key, delta, ok := w.lockOp(n); ok {
				held[key] += delta
				if held[key] < 0 {
					held[key] = 0
				}
			}
		case *ast.SelectorExpr:
			w.checkAccess(n, held)
		}
		return true
	})
}

// lockOp recognizes mu.Lock/RLock/TryLock (+1) and mu.Unlock/RUnlock
// (-1) calls on sync mutexes and returns the canonical receiver string.
func (w *walker) lockOp(call *ast.CallExpr) (key string, delta int, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return "", 0, false
	}
	fn, okFn := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	return types.ExprString(sel.X), delta, true
}

// checkAccess reports a guarded field access made without its mutex.
func (w *walker) checkAccess(sel *ast.SelectorExpr, held map[string]int) {
	s := w.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return
	}
	structName := namedRecvName(s.Recv())
	if structName == "" {
		return
	}
	facts := w.facts[field.Pkg().Path()]
	guard, ok := facts[structName+"."+field.Name()]
	if !ok {
		return
	}
	base := types.ExprString(sel.X)
	if held[base+"."+guard] > 0 || held[base] > 0 {
		return
	}
	w.pass.Reportf(sel.Sel.Pos(),
		"access to %s.%s (guarded_by:%s) without holding %s.%s",
		structName, field.Name(), guard, base, guard)
}

// namedRecvName returns the name of the named struct type behind a
// selection receiver, unwrapping pointers and aliases.
func namedRecvName(t types.Type) string {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
