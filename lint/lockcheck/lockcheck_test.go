package lockcheck_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/lockcheck"
)

// Test exercises the annotation forms (named guard, embedded RWMutex,
// lockcheck:held, nolint), the branch-merge semantics that keep
// unlock-and-return idioms quiet, and cross-package fact propagation
// (package b violates an annotation declared in package a).
func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockcheck.Analyzer, "a", "b")
}
