package lockcheck_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/lockcheck"
)

// Test exercises the annotation forms (named guard, embedded RWMutex,
// lockcheck:held, nolint), the branch-merge semantics that keep
// unlock-and-return idioms quiet, and cross-package fact propagation
// (package b violates an annotation declared in package a). The
// tracering package mirrors internal/obs.Tracer's atomic-only ring
// buffer: atomics carry no guard annotations, so the ring itself must
// produce no diagnostics (its mutexRing contrast proves the package is
// analyzed, not skipped).
func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockcheck.Analyzer, "a", "b", "tracering")
}
