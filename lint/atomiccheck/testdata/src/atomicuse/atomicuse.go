// Package atomicuse exercises the three atomiccheck disciplines.
package atomicuse

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	hits   atomic.Uint64
	cur    atomic.Pointer[stats]
	bucket [8]atomic.Uint64

	// ops is a plain counter updated from several goroutines.
	ops uint64 // atomic_only

	mu sync.Mutex
	// guarded_by:mu
	balance int64

	// plain is used both atomically and plainly below: an undeclared
	// mixed discipline.
	plain uint64

	name string
}

func sink(uint64)            {}
func sinkPtr(*atomic.Uint64) {}

// --- typed atomics, accepted shapes ---

func typedOK(s *stats) uint64 {
	s.hits.Add(1)
	s.cur.Store(s)
	for i := range s.bucket {
		s.bucket[i].Add(1)
	}
	_ = len(s.bucket)
	return s.hits.Load()
}

// the CounterFunc shape: a closure exposing an atomic via its methods
// must stay silent.
func counterFunc(s *stats) func() uint64 {
	return func() uint64 { return s.hits.Load() }
}

// --- typed atomics, violations ---

func typedCopy(s *stats) {
	v := s.hits // want "atomic field atomicuse.stats.hits is accessed without its atomic methods"
	_ = v.Load()
}

func typedAddrEscape(s *stats) {
	p := &s.hits // want "address of atomic field atomicuse.stats.hits escapes"
	sinkPtr(p)
}

func typedBucketPlain(s *stats) uint64 {
	var x atomic.Uint64
	x = s.bucket[3] // want "atomic field atomicuse.stats.bucket is accessed without its atomic methods"
	return x.Load()
}

// --- atomic_only plain fields ---

func opsOK(s *stats) uint64 {
	atomic.AddUint64(&s.ops, 1)
	return atomic.LoadUint64(&s.ops)
}

func opsPlainWrite(s *stats) {
	s.ops++ // want "annotated atomic_only but is accessed non-atomically"
}

func opsPlainRead(s *stats) uint64 {
	return s.ops // want "annotated atomic_only but is accessed non-atomically"
}

func opsAddrEscape(s *stats) *uint64 {
	return &s.ops // want "annotated atomic_only but is accessed non-atomically"
}

// --- guarded fields must not go atomic ---

func balanceOK(s *stats) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.balance
}

func balanceAtomic(s *stats) int64 {
	return atomic.LoadInt64(&s.balance) // want "guarded_by-annotated but accessed via sync/atomic"
}

// --- undeclared mixed discipline ---

func mixedAtomic(s *stats) {
	atomic.AddUint64(&s.plain, 1) // want "mixes sync/atomic and plain access"
}

func mixedPlain(s *stats) uint64 {
	return s.plain
}

// a field used only plainly raises nothing.
func plainOnly(s *stats) string {
	s.name = "x"
	return s.name
}
