// Package atomicclient violates atomichost's exported discipline; the
// annotation arrives here as a fact, not source.
package atomicclient

import (
	"sync/atomic"

	"atomichost"
)

func ReadOK(c *atomichost.Counters) uint64 {
	return atomic.LoadUint64(&c.Requests)
}

func ReadRacy(c *atomichost.Counters) uint64 {
	return c.Requests // want "annotated atomic_only but is accessed non-atomically"
}
