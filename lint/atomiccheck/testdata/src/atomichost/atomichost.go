// Package atomichost declares an exported counter whose atomic_only
// annotation must bind importing packages through the fact pipeline.
package atomichost

import "sync/atomic"

type Counters struct {
	// Requests is sampled concurrently by the exporter.
	Requests uint64 // atomic_only
}

func Bump(c *Counters) {
	atomic.AddUint64(&c.Requests, 1)
}
