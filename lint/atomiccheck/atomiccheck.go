// Package atomiccheck enforces the repository's atomic-access
// discipline on struct fields. The obs registry's 1720-bucket
// histograms, the lock manager's contention counters, and the engine's
// stats block are all sampled while writers run; one plain load of a
// field that every other path updates atomically is a data race the
// checkpointer may ship into a backup. Three rules:
//
//   - A field of a sync/atomic type (atomic.Uint64, atomic.Pointer[T],
//     or an array of them) may only be used as the receiver of its
//     atomic methods (plus len/cap/range over atomic arrays). Copying
//     the value or letting its address escape is reported — a copied
//     atomic is a frozen, unsynchronized snapshot.
//
//   - A plain field annotated "atomic_only" in its comment may only
//     appear as &x.f passed directly to a sync/atomic function. Any
//     other read, write, or address-of is reported. The annotation
//     travels as a fact, so an exported field annotated in one package
//     binds every importing package.
//
//   - Disciplines must not mix: a "guarded_by:"-annotated field
//     accessed through sync/atomic is reported (lockcheck owns the
//     mutex side), and an unannotated plain field accessed both
//     atomically and plainly within a package is reported at each
//     atomic site.
//
// Test files are exempt.
package atomiccheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"mmdb/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:         "atomiccheck",
	Doc:          "checks that atomic fields are accessed only atomically and that atomic/guarded/plain disciplines do not mix",
	ExtractFacts: extractFacts,
	Run:          run,
}

// Facts maps a field class ("pkg.Type.field") to its declared
// discipline: "atomic_only" or "guarded".
type Facts map[string]string

var (
	atomicOnlyRe = regexp.MustCompile(`\batomic_only\b`)
	guardedByRe  = regexp.MustCompile(`guarded_by:\s*[A-Za-z_]\w*`)
)

func extractFacts(fset *token.FileSet, pkgPath string, files []*ast.File) any {
	facts := make(Facts)
	for _, file := range files {
		if strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					disc := disciplineFrom(field.Doc, field.Comment)
					if disc == "" {
						continue
					}
					for _, name := range field.Names {
						facts[pkgPath+"."+ts.Name.Name+"."+name.Name] = disc
					}
				}
			}
		}
	}
	if len(facts) == 0 {
		return nil
	}
	return facts
}

func disciplineFrom(groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		if atomicOnlyRe.MatchString(cg.Text()) {
			return "atomic_only"
		}
		if guardedByRe.MatchString(cg.Text()) {
			return "guarded"
		}
	}
	return ""
}

// useKind classifies the syntactic context of one field access.
type useKind int

const (
	kindPlain        useKind = iota // ordinary read/write/copy
	kindAtomicMethod                // receiver of a sync/atomic method
	kindAtomicArg                   // &x.f passed directly to a sync/atomic function
	kindAddr                        // address taken, not into sync/atomic
	kindBenign                      // len/cap/range over an atomic array
)

type use struct {
	pos  token.Pos
	kind useKind
}

func run(pass *analysis.Pass) error {
	disciplines := make(map[string]string)
	for pkgPath := range pass.Facts {
		var f Facts
		if ok, err := pass.DecodeFacts(pkgPath, &f); err != nil {
			return err
		} else if ok {
			for cls, d := range f {
				disciplines[cls] = d
			}
		}
	}
	// The pass may predate this package's own fact extraction.
	if f, _ := extractFacts(pass.Fset, pass.Pkg.Path(), pass.Files).(Facts); f != nil {
		for cls, d := range f {
			disciplines[cls] = d
		}
	}

	ck := &checker{pass: pass, uses: make(map[string][]use), atomicTyped: make(map[string]bool)}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ck.walkFile(f)
	}

	for cls, uses := range ck.uses {
		disc := disciplines[cls]
		switch {
		case ck.atomicTyped[cls]:
			for _, u := range uses {
				switch u.kind {
				case kindPlain:
					ck.pass.Reportf(u.pos, "atomic field %s is accessed without its atomic methods; a copied atomic value is an unsynchronized snapshot", short(cls))
				case kindAddr, kindAtomicArg:
					ck.pass.Reportf(u.pos, "address of atomic field %s escapes; pass the owning struct and call the field's methods instead", short(cls))
				}
			}
		case disc == "atomic_only":
			for _, u := range uses {
				switch u.kind {
				case kindAtomicArg, kindBenign:
				default:
					ck.pass.Reportf(u.pos, "field %s is annotated atomic_only but is accessed non-atomically here; every access must go through sync/atomic", short(cls))
				}
			}
		case disc == "guarded":
			for _, u := range uses {
				if u.kind == kindAtomicMethod || u.kind == kindAtomicArg {
					ck.pass.Reportf(u.pos, "field %s is guarded_by-annotated but accessed via sync/atomic here; a mutex-guarded field must not mix disciplines", short(cls))
				}
			}
		default:
			// Unannotated plain field: atomic and plain access in the
			// same package is an undeclared mixed discipline.
			var hasAtomic, hasPlain bool
			for _, u := range uses {
				switch u.kind {
				case kindAtomicArg, kindAtomicMethod:
					hasAtomic = true
				case kindPlain, kindAddr:
					hasPlain = true
				}
			}
			if hasAtomic && hasPlain {
				for _, u := range uses {
					if u.kind == kindAtomicArg || u.kind == kindAtomicMethod {
						ck.pass.Reportf(u.pos, "field %s mixes sync/atomic and plain access in this package; make every access atomic and annotate the field atomic_only, or guard it", short(cls))
					}
				}
			}
		}
	}
	return nil
}

type checker struct {
	pass        *analysis.Pass
	uses        map[string][]use
	atomicTyped map[string]bool
}

// walkFile records every struct-field selector use with its context,
// maintaining a parent stack for the classification.
func (ck *checker) walkFile(f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			ck.recordUse(sel, stack)
		}
		stack = append(stack, n)
		return true
	})
}

func (ck *checker) recordUse(sel *ast.SelectorExpr, stack []ast.Node) {
	selection := ck.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	fieldVar, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	cls := fieldClass(selection)
	if cls == "" {
		return
	}
	ck.uses[cls] = append(ck.uses[cls], use{pos: sel.Pos(), kind: ck.classify(sel, stack)})
	if isAtomicType(fieldVar.Type()) {
		ck.atomicTyped[cls] = true
	}
}

// classify inspects the ancestors of sel to decide how the field is
// used. stack holds the ancestors, innermost last.
func (ck *checker) classify(sel *ast.SelectorExpr, stack []ast.Node) useKind {
	parent := parentOf(stack, 0)
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == sel && ck.isAtomicFunc(p.Sel) {
			return kindAtomicMethod
		}
	case *ast.IndexExpr:
		if p.X != sel {
			break
		}
		switch gp := parentOf(stack, 1).(type) {
		case *ast.SelectorExpr:
			if gp.X == p && ck.isAtomicFunc(gp.Sel) {
				return kindAtomicMethod
			}
		case *ast.UnaryExpr:
			if gp.Op == token.AND {
				if ck.atomicCallArg(parentOf(stack, 2), gp) {
					return kindAtomicArg
				}
				return kindAddr
			}
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND && p.X == sel {
			if ck.atomicCallArg(parentOf(stack, 1), p) {
				return kindAtomicArg
			}
			return kindAddr
		}
	case *ast.RangeStmt:
		if p.X == sel {
			return kindBenign
		}
	case *ast.CallExpr:
		if fun, ok := p.Fun.(*ast.Ident); ok && (fun.Name == "len" || fun.Name == "cap") {
			if _, isBuiltin := ck.pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
				return kindBenign
			}
		}
	}
	return kindPlain
}

// atomicCallArg reports whether parent is a call to a sync/atomic
// package function with arg among its arguments.
func (ck *checker) atomicCallArg(parent ast.Node, arg ast.Expr) bool {
	call, ok := parent.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !ck.isAtomicFunc(sel.Sel) {
		return false
	}
	for _, a := range call.Args {
		if a == arg {
			return true
		}
	}
	return false
}

func (ck *checker) isAtomicFunc(id *ast.Ident) bool {
	fn, ok := ck.pass.TypesInfo.Uses[id].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

func parentOf(stack []ast.Node, up int) ast.Node {
	i := len(stack) - 1 - up
	if i < 0 {
		return nil
	}
	return stack[i]
}

// fieldClass names the accessed field by its owning named type,
// walking embedded hops like lockorder does.
func fieldClass(selection *types.Selection) string {
	owner := derefNamed(selection.Recv())
	if owner == nil {
		return ""
	}
	idx := selection.Index()
	for n, i := range idx {
		st, ok := owner.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return ""
		}
		f := st.Field(i)
		if n == len(idx)-1 {
			pkg := owner.Obj().Pkg()
			if pkg == nil {
				return ""
			}
			return fmt.Sprintf("%s.%s.%s", pkg.Path(), owner.Obj().Name(), f.Name())
		}
		owner = derefNamed(f.Type())
		if owner == nil {
			return ""
		}
	}
	return ""
}

// isAtomicType reports whether t is a sync/atomic type or an array of
// them.
func isAtomicType(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isAtomicType(arr.Elem())
	}
	named := derefNamed(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	if named != nil {
		named = named.Origin()
	}
	return named
}

func short(cls string) string {
	if i := strings.LastIndex(cls, "/"); i >= 0 {
		return cls[i+1:]
	}
	return cls
}
