package atomiccheck_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/atomiccheck"
)

func TestAtomicCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomiccheck.Analyzer, "atomicuse", "atomicclient")
}
