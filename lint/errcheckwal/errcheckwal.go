// Package errcheckwal reports discarded error returns from the
// durability-critical packages: wal, storage, backup, engine, kvstore,
// and the top-level mmdb facade. A dropped error from a log append,
// segment flush, sync, commit, or close silently breaks the paper's
// recovery guarantee — the transaction looks durable but its redo
// records may never have reached the disk.
//
// Unlike the general-purpose errcheck, the net is scoped by callee
// package (matched on the import path's last element) rather than by
// call-site package, so a quickstart example that ignores tx.Commit()'s
// error is flagged just like engine-internal code. Flagged forms:
//
//	l.Flush()            // expression statement discarding all results
//	n, _ := l.Append(r)  // error position assigned to blank
//	defer l.Close()      // deferred call discarding the error
//	go bs.WriteSegment() // spawned call discarding the error
//
// Intentional drops (a best-effort append on an already-failing path)
// must say so with //nolint:errcheckwal and a justification. Test files
// are skipped.
package errcheckwal

import (
	"go/ast"
	"go/types"
	"path"

	"mmdb/lint/analysis"
)

// Analyzer is the errcheckwal analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errcheckwal",
	Doc:  "report discarded error returns from WAL, storage, backup, and engine calls",
	Run:  run,
}

// ProtectedPkgs are the import-path bases whose error returns must be
// consumed.
var ProtectedPkgs = map[string]bool{
	"wal":     true,
	"storage": true,
	"backup":  true,
	"engine":  true,
	"kvstore": true,
	"mmdb":    true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardAll(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDiscardAll(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDiscardAll(pass, n.Call, "spawned ")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscardAll flags a statement-position call that returns an error.
func checkDiscardAll(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := protectedCallee(pass, call)
	if fn == nil {
		return
	}
	if errorResultIndex(fn) < 0 {
		return
	}
	pass.Reportf(call.Pos(),
		"%scall to %s discards its error; durability depends on checking %s results",
		how, qualifiedName(fn), path.Base(fn.Pkg().Path()))
}

// checkBlankAssign flags `n, _ := call()` where the blank slot holds the
// error.
func checkBlankAssign(pass *analysis.Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := protectedCallee(pass, call)
	if fn == nil {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	if results.Len() != len(assign.Lhs) {
		return // single-value context or mismatch; not our concern
	}
	for i, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if isErrorType(results.At(i).Type()) {
			pass.Reportf(id.Pos(),
				"error result of %s assigned to blank; durability depends on checking %s results",
				qualifiedName(fn), path.Base(fn.Pkg().Path()))
		}
	}
}

// protectedCallee resolves the callee and returns it only when it
// belongs to a protected package.
func protectedCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || !ProtectedPkgs[path.Base(fn.Pkg().Path())] {
		return nil
	}
	return fn
}

// errorResultIndex returns the index of the first error result, or -1.
func errorResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return i
		}
	}
	return -1
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

func qualifiedName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
