package client

import (
	"plain"
	"wal"
)

func drops(l *wal.Log) {
	l.Flush()             // want `call to Log\.Flush discards its error`
	defer l.Close()       // want `deferred call to Log\.Close discards its error`
	go l.Flush()          // want `spawned call to Log\.Flush discards its error`
	n, _ := l.Append(nil) // want `error result of Log\.Append assigned to blank`
	_ = n
	wal.Open("x") // want `call to wal\.Open discards its error`
}

func handles(l *wal.Log) error {
	if err := l.Flush(); err != nil {
		return err
	}
	n, err := l.Append(nil)
	_ = n
	if err != nil {
		return err
	}
	// Len has no error result: statement position is fine.
	l.Len()
	return l.Close()
}

// bestEffort documents an intentional drop.
func bestEffort(l *wal.Log) {
	l.Flush() //nolint:errcheckwal // best-effort on an already-failing path
}

// unprotected exercises the scope boundary: plain is not a protected
// package, so the identical discard is not flagged.
func unprotected(b *plain.Buf) {
	b.Flush()
}

// use keeps the unexported helpers referenced.
var (
	_ = drops
	_ = handles
	_ = bestEffort
	_ = unprotected
)
