package wal

// Log is a stub write-ahead log.
type Log struct{}

func (l *Log) Flush() error { return nil }

func (l *Log) Close() error { return nil }

func (l *Log) Append(b []byte) (int, error) { return len(b), nil }

// Len returns no error, so discarding its result is fine.
func (l *Log) Len() int { return 0 }

func Open(path string) (*Log, error) { return &Log{}, nil }

// reset drops its own flush error: call sites inside the protected
// package are held to the same rule.
func (l *Log) reset() {
	l.Flush() // want `call to Log\.Flush discards its error`
}

var _ = (*Log).reset
