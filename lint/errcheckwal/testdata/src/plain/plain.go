// Package plain is not a protected package: its errors are outside
// errcheckwal's scope (the general errcheck discipline still applies,
// just not through this analyzer).
package plain

// Buf is a stub buffer with the same method shape as wal.Log.
type Buf struct{}

func (b *Buf) Flush() error { return nil }
