package errcheckwal_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/errcheckwal"
)

// Test covers the four flagged forms (statement discard, deferred
// discard, spawned discard, blank-assigned error) against a stub "wal"
// package, both from inside the protected package and from a consumer.
// False-positive regressions: error-free results in statement position,
// properly consumed errors, and an identical method on a package that
// is not protected.
func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errcheckwal.Analyzer, "wal", "client")
}
