// Package unlockpkg exercises unlockcheck: early-return and panic-path
// leaks, the all-paths-release false-positive regression, dominating
// vs. conditional defers, TryLock, loops that release and reacquire,
// and the lockcheck:held exemption.
package unlockpkg

import "sync"

type S struct {
	mu sync.Mutex
}

// earlyReturnLeak forgets the unlock on the error path.
func earlyReturnLeak(s *S, bad bool) {
	s.mu.Lock() // want `lock s\.mu acquired here is not released on every path out of earlyReturnLeak`
	if bad {
		return
	}
	s.mu.Unlock()
}

// allPathsUnlock is the false-positive regression: both the early
// return and the fallthrough release, so there is nothing to report.
func allPathsUnlock(s *S, bad bool) {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// deferOK releases through a dominating defer.
func deferOK(s *S, bad bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bad {
		return
	}
}

// panicPathLeak: the explicit panic flows to exit with the lock held.
func panicPathLeak(s *S, bad bool) {
	s.mu.Lock() // want `lock s\.mu acquired here is not released on every path out of panicPathLeak`
	if bad {
		panic("corrupt segment")
	}
	s.mu.Unlock()
}

// panicWithDefer is safe: the deferred unlock dominates exit and runs
// during the unwind.
func panicWithDefer(s *S, bad bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bad {
		panic("corrupt segment")
	}
}

// conditionalDefer only covers one arm: the path that skips the defer
// statement never registers the unlock, so the unconditional
// acquisition leaks.
func conditionalDefer(s *S, bad bool) {
	s.mu.Lock() // want `lock s\.mu acquired here is not released on every path out of conditionalDefer`
	if bad {
		defer s.mu.Unlock()
	}
}

// guardedEarlyReturn is the false-positive regression for the repo's
// most common shape: a guard returns before the lock is taken, then the
// acquisition is covered by a defer. The early-return path never holds
// the lock, so nothing leaks.
func guardedEarlyReturn(s *S, stopped bool) {
	if stopped {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !stopped {
		return
	}
}

// tryLockOK is the canonical try shape: the acquisition is conditional
// and uncounted, and the paired unlock clamps at zero.
func tryLockOK(s *S) {
	if s.mu.TryLock() {
		defer s.mu.Unlock()
	}
}

// loopRelock releases and reacquires per iteration (the lock manager's
// wait loop); the counts balance on every path.
func loopRelock(s *S, n int) {
	s.mu.Lock()
	for i := 0; i < n; i++ {
		s.mu.Unlock()
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// relockWindow unlocks and relocks a caller-held mutex; the held
// annotation exempts it from balance checking.
// lockcheck:held s.mu
func relockWindow(s *S) {
	s.mu.Unlock()
	s.mu.Lock()
}

// rwLeak leaks a read latch on the skip path.
func rwLeak(m *sync.RWMutex, skip bool) {
	m.RLock() // want `lock m acquired here is not released on every path out of rwLeak`
	if skip {
		return
	}
	m.RUnlock()
}

// closureLeak: the literal has its own control flow and its own leak.
func closureLeak(s *S) func(bool) {
	return func(bad bool) {
		s.mu.Lock() // want `lock s\.mu acquired here is not released on every path out of closureLeak\.func`
		if bad {
			return
		}
		s.mu.Unlock()
	}
}
