// Package unlockuse consumes unlockdep's wrapper facts: the cross-
// package case for unlockcheck.
package unlockuse

import "unlockdep"

func balanced(l *unlockdep.Latch, bad bool) {
	l.Acquire()
	if bad {
		l.Release()
		return
	}
	l.Release()
}

func leaks(l *unlockdep.Latch, bad bool) {
	l.Acquire() // want `lock l acquired here is not released on every path out of leaks`
	if bad {
		return
	}
	l.Release()
}
