// Package unlockdep declares an annotated latch type: Acquire/Release
// travel as unlockcheck facts so callers in other packages are balanced
// against them.
package unlockdep

import "sync"

type Latch struct {
	mu sync.Mutex
}

// Acquire takes the latch.
// unlockcheck:acquires
func (l *Latch) Acquire() { l.mu.Lock() }

// Release drops it.
// unlockcheck:releases
func (l *Latch) Release() { l.mu.Unlock() }
