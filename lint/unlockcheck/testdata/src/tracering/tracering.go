// Package tracering mirrors internal/obs.Tracer for unlockcheck: the
// ring buffer is atomic-only, so there are no acquisitions to balance
// and the analyzer must stay silent on it. The mutexRing contrast
// leaks a lock on one path, proving the package is really analyzed.
package tracering

import (
	"sync"
	"sync/atomic"
)

type slot struct {
	claim atomic.Uint64
	a     atomic.Uint64
	done  atomic.Uint64
}

// Ring is the atomic-only tracer shape: no Lock/Unlock pairs exist, so
// unlockcheck has nothing to report.
type Ring struct {
	mask  uint64
	head  atomic.Uint64
	slots []slot
}

func (r *Ring) Record(a uint64) {
	ticket := r.head.Add(1) - 1
	s := &r.slots[ticket&r.mask]
	s.claim.Store(ticket + 1)
	s.a.Store(a)
	s.done.Store(ticket + 1)
}

func (r *Ring) Dump() []uint64 {
	var out []uint64
	for i := range r.slots {
		s := &r.slots[i]
		done := s.done.Load()
		if done == 0 {
			continue
		}
		v := s.a.Load()
		if s.claim.Load() != done || s.done.Load() != done {
			continue
		}
		out = append(out, v)
	}
	return out
}

// mutexRing is the contrast case: a guarded ring whose dump leaks the
// lock on the empty path.
type mutexRing struct {
	mu  sync.Mutex
	evs []uint64
}

func (r *mutexRing) record(v uint64) {
	r.mu.Lock()
	r.evs = append(r.evs, v)
	r.mu.Unlock()
}

func (r *mutexRing) badDump() []uint64 {
	r.mu.Lock() // want `lock r\.mu acquired here is not released on every path out of badDump`
	if len(r.evs) == 0 {
		return nil
	}
	out := append([]uint64(nil), r.evs...)
	r.mu.Unlock()
	return out
}
