package unlockcheck_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/unlockcheck"
)

// TestUnlockcheck covers, per package:
//
//   - unlockpkg: early-return/panic/closure leaks, the all-paths-release
//     false-positive regression, dominating vs. conditional defers,
//     TryLock, wait-loop relocking, and the held exemption;
//   - unlockuse: the cross-package facts case — Acquire/Release wrappers
//     declared in unlockdep balance call sites here;
//   - tracering: internal/obs.Tracer's atomic-only ring buffer shape,
//     which has no acquisitions to balance and must stay silent (its
//     mutexRing contrast proves the package is really analyzed).
func TestUnlockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), unlockcheck.Analyzer, "unlockpkg", "unlockuse", "tracering")
}
