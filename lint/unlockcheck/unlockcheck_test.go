package unlockcheck_test

import (
	"testing"

	"mmdb/lint/analysis/analysistest"
	"mmdb/lint/unlockcheck"
)

// TestUnlockcheck covers, per package:
//
//   - unlockpkg: early-return/panic/closure leaks, the all-paths-release
//     false-positive regression, dominating vs. conditional defers,
//     TryLock, wait-loop relocking, and the held exemption;
//   - unlockuse: the cross-package facts case — Acquire/Release wrappers
//     declared in unlockdep balance call sites here.
func TestUnlockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), unlockcheck.Analyzer, "unlockpkg", "unlockuse")
}
