// Package unlockcheck verifies that every sync.(RW)Mutex acquired in a
// function is released on every control-flow path out of it — early
// returns, panics, and loop exits included. A database that parks a
// checkpointer with a segment latch held is wedged, not slow, so this
// is checked statically rather than discovered at the next checkpoint.
//
// The analysis is a forward may-dataflow over the lint/cfg graph: the
// state is a multiset of held locks keyed by the locked expression's
// source text ("e.ckptMu", "seg"), merged by per-key maximum so a leak
// on any one path survives the join. A deferred unlock is accounted at
// its registration point: every path through the defer statement runs
// the unlock on the way out, so the count drops there and only there —
// a defer inside a conditional credits exactly the paths through that
// arm, and a path that returns before the defer (the guard-then-lock
// shape) is judged on its own balance. Explicit panic statements flow
// to exit like returns, so "panic with the latch held" is a finding
// unless a defer registered first covers it.
//
// Vocabulary:
//
//   - TryLock/TryRLock acquisitions are not counted (the canonical
//     "if mu.TryLock() { defer mu.Unlock() ... }" shape would otherwise
//     read as a conditional leak); unlock counts clamp at zero so the
//     paired unlock does not underflow.
//   - "lockcheck:held <expr>" on a function exempts that expression:
//     the caller owns the lock, and an unlock/relock window inside
//     (wal's stopFlusherLocked) is the caller's business.
//   - "unlockcheck:acquires" / "unlockcheck:releases" in a method's doc
//     mark lock/unlock wrappers. A call through them counts against the
//     receiver expression, and the facts travel across packages, so a
//     latch type's Acquire/Release pair defined in one package is
//     balanced in another. The wrappers' own bodies are exempt — they
//     leak (or double-release) by design.
package unlockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"mmdb/lint/analysis"
	"mmdb/lint/cfg"
	"mmdb/lint/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name:         "unlockcheck",
	Doc:          "checks that every acquired mutex is released on all paths out of the function",
	ExtractFacts: extractFacts,
	Run:          run,
}

// Facts maps "Recv.Name" to "acquires" or "releases" for annotated
// lock-wrapper methods.
type Facts map[string]string

var (
	annoRe     = regexp.MustCompile(`unlockcheck:(acquires|releases)\b`)
	heldExprRe = regexp.MustCompile(`lockcheck:held\s+(\S+)`)
)

func extractFacts(fset *token.FileSet, pkgPath string, files []*ast.File) any {
	facts := make(Facts)
	for _, f := range files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			if m := annoRe.FindStringSubmatch(fn.Doc.Text()); m != nil {
				facts[funcKey(fn)] = m[1]
			}
		}
	}
	if len(facts) == 0 {
		return nil
	}
	return facts
}

func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return id.Name + "." + fn.Name.Name
			}
			return fn.Name.Name
		}
	}
}

func run(pass *analysis.Pass) error {
	facts := make(map[string]Facts)
	for pkgPath := range pass.Facts {
		var f Facts
		if ok, err := pass.DecodeFacts(pkgPath, &f); err != nil {
			return err
		} else if ok {
			facts[pkgPath] = f
		}
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			exempt := make(map[string]bool)
			wrapper := false
			if fn.Doc != nil {
				doc := fn.Doc.Text()
				wrapper = annoRe.MatchString(doc)
				for _, m := range heldExprRe.FindAllStringSubmatch(doc, -1) {
					exempt[m[1]] = true
				}
			}
			if wrapper {
				continue // lock/unlock wrappers are unbalanced by design
			}
			ck := &checker{pass: pass, facts: facts, exempt: exempt}
			ck.checkFunc(fn.Name.Name, fn.Body)
			for _, lit := range funcLits(fn.Body) {
				ck.checkFunc(fn.Name.Name+".func", lit.Body)
			}
		}
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	facts  map[string]Facts
	exempt map[string]bool
}

// lockOp classifies one call as a lock-state operation on a keyed
// expression: delta +1 (blocking acquire), -1 (release), or 0 (TryLock:
// tracked expression, no count).
type lockOp struct {
	key   string
	delta int
}

func (ck *checker) checkFunc(name string, body *ast.BlockStmt) {
	g := cfg.New(name, body)
	apply := func(state map[string]int, n ast.Node) {
		switch d := n.(type) {
		case *ast.GoStmt:
			return // runs concurrently; no effect on this function's paths
		case *ast.DeferStmt:
			// A deferred release runs at exit on every path through this
			// statement, so it is accounted here. Deferred acquisitions
			// are ignored (locking on the way out balances nothing).
			if op, ok := ck.opOf(d.Call); ok && op.delta < 0 &&
				!ck.exempt[op.key] && state[op.key] > 0 {
				state[op.key]--
			}
			return
		}
		for _, call := range calls(n) {
			op, ok := ck.opOf(call)
			if !ok || ck.exempt[op.key] {
				continue
			}
			switch {
			case op.delta > 0:
				state[op.key]++
			case op.delta < 0 && state[op.key] > 0:
				state[op.key]--
			}
		}
	}
	res := dataflow.Solve(g, dataflow.Problem{
		Dir:      dataflow.Forward,
		Boundary: func() any { return map[string]int{} },
		Top:      func() any { return map[string]int{} },
		Merge: func(a, b any) any {
			out := cloneCounts(a.(map[string]int))
			for k, v := range b.(map[string]int) {
				if v > out[k] {
					out[k] = v
				}
			}
			return out
		},
		Transfer: func(b *cfg.Block, in any) any {
			state := cloneCounts(in.(map[string]int))
			for _, n := range b.Nodes {
				apply(state, n)
			}
			return state
		},
		Equal: func(a, b any) bool { return equalCounts(a.(map[string]int), b.(map[string]int)) },
	})

	atExit := res.In[g.Exit].(map[string]int)

	// Report each leaked key once, at its first acquisition.
	firstAcq := make(map[string]token.Pos)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				continue
			}
			for _, call := range calls(n) {
				if op, ok := ck.opOf(call); ok && op.delta > 0 {
					if _, seen := firstAcq[op.key]; !seen {
						firstAcq[op.key] = call.Pos()
					}
				}
			}
		}
	}
	for key, n := range atExit {
		if n <= 0 {
			continue
		}
		pos, ok := firstAcq[key]
		if !ok {
			continue
		}
		ck.pass.Reportf(pos, "lock %s acquired here is not released on every path out of %s; unlock it on each path or defer the unlock",
			key, name)
	}
}

// opOf classifies a call: a sync.(RW)Mutex method, or a call through an
// annotated lock wrapper. The key is the locked expression's source
// text — the selector's receiver for both forms.
func (ck *checker) opOf(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := ck.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return lockOp{}, false
	}
	key := types.ExprString(sel.X)
	if fn.Pkg().Path() == "sync" {
		switch fn.Name() {
		case "Lock", "RLock":
			return lockOp{key: key, delta: +1}, true
		case "TryLock", "TryRLock":
			return lockOp{key: key, delta: 0}, true
		case "Unlock", "RUnlock":
			return lockOp{key: key, delta: -1}, true
		}
		return lockOp{}, false
	}
	f := ck.facts[fn.Pkg().Path()]
	if f == nil {
		return lockOp{}, false
	}
	mkey := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return lockOp{}, false
		}
		mkey = named.Obj().Name() + "." + mkey
	}
	switch f[mkey] {
	case "acquires":
		return lockOp{key: key, delta: +1}, true
	case "releases":
		return lockOp{key: key, delta: -1}, true
	}
	return lockOp{}, false
}

func cloneCounts(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		if v > 0 {
			out[k] = v
		}
	}
	return out
}

func equalCounts(a, b map[string]int) bool {
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	for k, v := range b {
		if a[k] != v {
			return false
		}
	}
	return true
}

// calls lists call expressions under n, skipping function literals.
func calls(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			out = append(out, call)
		}
		return true
	})
	return out
}

func funcLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
		}
		return true
	})
	return out
}
