package analytic

import "fmt"

// Point is one evaluated operating point within a figure series.
type Point struct {
	// X is the swept quantity (interval, load, or segment size); its
	// meaning is the figure's XLabel.
	X      float64
	Result *Result
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduction of one of the paper's figures: a set of series
// of model evaluations.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
}

// paperAlgorithms are the five algorithms of Figures 4a–4d (FASTFUZZY only
// appears in Figure 4e, which assumes a stable log tail).
var paperAlgorithms = []Algorithm{FuzzyCopy, TwoColorFlush, TwoColorCopy, COUFlush, COUCopy}

// Figure4a evaluates processor overhead and recovery time for every
// algorithm with checkpoints taken as quickly as possible (no time between
// checkpoints) at the default parameters.
func Figure4a(p Params) (*Figure, error) {
	fig := &Figure{
		ID:     "4a",
		Title:  "Processor Overhead and Recovery Time",
		XLabel: "algorithm",
	}
	for i, alg := range paperAlgorithms {
		res, err := Evaluate(p, Options{Algorithm: alg})
		if err != nil {
			return nil, fmt.Errorf("figure 4a: %v: %w", alg, err)
		}
		fig.Series = append(fig.Series, Series{
			Name:   alg.String(),
			Points: []Point{{X: float64(i), Result: res}},
		})
	}
	return fig, nil
}

// DefaultIntervalFactors are the checkpoint-duration multipliers swept by
// Figure4b, applied to each configuration's minimum duration.
var DefaultIntervalFactors = []float64{1, 1.25, 1.5, 2, 3, 4, 6, 8, 10}

// Figure4b traces the processor-overhead / recovery-time trade-off for
// 2CCOPY and COUCOPY as the checkpoint duration grows from its minimum
// (the solid curves), and repeats the experiment with the backup-disk
// bandwidth doubled (the dotted curves).
func Figure4b(p Params, factors []float64) (*Figure, error) {
	if len(factors) == 0 {
		factors = DefaultIntervalFactors
	}
	fig := &Figure{
		ID:     "4b",
		Title:  "Processor Overhead / Recovery Time Trade-off",
		XLabel: "checkpoint interval (s)",
	}
	for _, bw := range []struct {
		label string
		mult  float64
	}{{"1x-bandwidth", 1}, {"2x-bandwidth", 2}} {
		pp := p
		pp.NDisks = p.NDisks * bw.mult
		for _, alg := range []Algorithm{TwoColorCopy, COUCopy} {
			s := Series{Name: alg.String() + "/" + bw.label}
			dmin := minDuration(pp, Options{Algorithm: alg})
			for _, f := range factors {
				res, err := Evaluate(pp, Options{Algorithm: alg, IntervalSeconds: dmin * f})
				if err != nil {
					return nil, fmt.Errorf("figure 4b: %v at %.1fx: %w", alg, f, err)
				}
				s.Points = append(s.Points, Point{X: res.DurationSeconds, Result: res})
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// DefaultLoadSweep is the transaction arrival-rate sweep of Figure4c
// (transactions/second).
var DefaultLoadSweep = []float64{50, 100, 200, 500, 1000, 2000, 4000}

// Figure4c evaluates per-transaction processor overhead as the transaction
// load varies, with checkpoints taken as quickly as possible.
func Figure4c(p Params, lambdas []float64) (*Figure, error) {
	if len(lambdas) == 0 {
		lambdas = DefaultLoadSweep
	}
	fig := &Figure{
		ID:     "4c",
		Title:  "Effect of Varying Transaction Load",
		XLabel: "transactions/second",
	}
	for _, alg := range paperAlgorithms {
		s := Series{Name: alg.String()}
		for _, lam := range lambdas {
			pp := p
			pp.Lambda = lam
			res, err := Evaluate(pp, Options{Algorithm: alg})
			if err != nil {
				return nil, fmt.Errorf("figure 4c: %v at λ=%v: %w", alg, lam, err)
			}
			s.Points = append(s.Points, Point{X: lam, Result: res})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// DefaultSegmentSweep is the segment-size sweep of Figure4d (words).
var DefaultSegmentSweep = []float64{1024, 2048, 4096, 8192, 16384, 32768, 65536}

// Figure4dFixedInterval is the constant checkpoint interval of the
// figure's dotted curves (seconds).
const Figure4dFixedInterval = 300

// Figure4d evaluates the effect of segment size for 2CCOPY, 2CFLUSH and
// COUCOPY, both with checkpoints run as fast as possible ("asap" series,
// the paper's solid curves) and with the interval held at 300 seconds
// ("fixed300", the dotted curves).
func Figure4d(p Params, segSizes []float64) (*Figure, error) {
	if len(segSizes) == 0 {
		segSizes = DefaultSegmentSweep
	}
	fig := &Figure{
		ID:     "4d",
		Title:  "Effect of Varying Segment Size",
		XLabel: "segment size (words)",
	}
	for _, alg := range []Algorithm{TwoColorFlush, TwoColorCopy, COUCopy} {
		for _, mode := range []struct {
			label    string
			interval float64
		}{{"asap", 0}, {"fixed300", Figure4dFixedInterval}} {
			s := Series{Name: alg.String() + "/" + mode.label}
			for _, seg := range segSizes {
				pp := p
				pp.SSeg = seg
				res, err := Evaluate(pp, Options{Algorithm: alg, IntervalSeconds: mode.interval})
				if err != nil {
					return nil, fmt.Errorf("figure 4d: %v S_seg=%v: %w", alg, seg, err)
				}
				s.Points = append(s.Points, Point{X: seg, Result: res})
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// Figure4e evaluates processor overhead assuming a stable log tail, which
// admits the FASTFUZZY algorithm and removes LSN synchronization from the
// others. Checkpoints run as fast as possible.
func Figure4e(p Params) (*Figure, error) {
	fig := &Figure{
		ID:     "4e",
		Title:  "Processor Overhead with Stable Log Tail",
		XLabel: "algorithm",
	}
	for i, alg := range Algorithms {
		res, err := Evaluate(p, Options{Algorithm: alg, StableTail: true})
		if err != nil {
			return nil, fmt.Errorf("figure 4e: %v: %w", alg, err)
		}
		fig.Series = append(fig.Series, Series{
			Name:   alg.String(),
			Points: []Point{{X: float64(i), Result: res}},
		})
	}
	return fig, nil
}

// PRestartCurve evaluates the checkpoint-induced restart probability of a
// two-color algorithm across checkpoint-interval multipliers (Section 4
// computes p_restart as a function of the checkpoint algorithm).
func PRestartCurve(p Params, alg Algorithm, factors []float64) (*Figure, error) {
	if !alg.TwoColor() {
		return nil, fmt.Errorf("analytic: p_restart is only nonzero for two-color algorithms, not %v", alg)
	}
	if len(factors) == 0 {
		factors = DefaultIntervalFactors
	}
	fig := &Figure{
		ID:     "prestart",
		Title:  "Checkpoint-Induced Restart Probability",
		XLabel: "checkpoint interval (s)",
	}
	s := Series{Name: alg.String()}
	dmin := minDuration(p, Options{Algorithm: alg})
	for _, f := range factors {
		res, err := Evaluate(p, Options{Algorithm: alg, IntervalSeconds: dmin * f})
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{X: res.DurationSeconds, Result: res})
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}
