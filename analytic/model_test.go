package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func eval(t *testing.T, p Params, o Options) *Result {
	t.Helper()
	r, err := Evaluate(p, o)
	if err != nil {
		t.Fatalf("Evaluate(%v): %v", o.Algorithm, err)
	}
	return r
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.NDisks = 0 },
		func(p *Params) { p.TTrans = 0 },
		func(p *Params) { p.SDB = 0 },
		func(p *Params) { p.SSeg = p.SDB * 2 },
		func(p *Params) { p.Lambda = 0 },
		func(p *Params) { p.AbortWorkFraction = 2 },
		func(p *Params) { p.CIO = -1 },
		func(p *Params) { p.MinCheckpointSeconds = 0 },
	}
	for i, mutate := range bad {
		pp := DefaultParams()
		mutate(&pp)
		if err := pp.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Algorithm: Algorithm(0)}).Validate(); err == nil {
		t.Error("zero algorithm accepted")
	}
	if err := (Options{Algorithm: FastFuzzy}).Validate(); err == nil {
		t.Error("FASTFUZZY without stable tail accepted")
	}
	if err := (Options{Algorithm: FastFuzzy, StableTail: true}).Validate(); err != nil {
		t.Errorf("valid FASTFUZZY rejected: %v", err)
	}
	if err := (Options{Algorithm: FuzzyCopy, IntervalSeconds: -1}).Validate(); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestDerivedQuantities(t *testing.T) {
	p := DefaultParams()
	if got := p.NumSegments(); got != 32768 {
		t.Errorf("NumSegments = %v, want 32768", got)
	}
	if got := p.UpdateRate(); got != 5000 {
		t.Errorf("UpdateRate = %v, want 5000", got)
	}
	if got := p.SegmentIOTime(); math.Abs(got-0.054576) > 1e-9 {
		t.Errorf("SegmentIOTime = %v, want 0.054576", got)
	}
	if got := p.LogWordsPerCommit(); got != 5*36+8 {
		t.Errorf("LogWordsPerCommit = %v, want 188", got)
	}
}

func TestDirtySegmentsBehaviour(t *testing.T) {
	p := DefaultParams()
	if got := dirtySegments(p, 0); got != 0 {
		t.Errorf("dirty(0) = %v", got)
	}
	// Monotone and bounded by NumSegments.
	prev := 0.0
	for h := 1.0; h <= 512; h *= 2 {
		d := dirtySegments(p, h)
		if d < prev {
			t.Errorf("dirty not monotone at h=%v", h)
		}
		if d > p.NumSegments() {
			t.Errorf("dirty(%v) = %v exceeds segment count", h, d)
		}
		prev = d
	}
	// Short horizons: nearly every update hits a distinct segment.
	d := dirtySegments(p, 0.01) // 50 updates over 32768 segments
	if d < 49 || d > 50 {
		t.Errorf("dirty(0.01) = %v, want ≈50", d)
	}
}

func TestMinDurationDefaults(t *testing.T) {
	p := DefaultParams()
	d := minDuration(p, Options{Algorithm: FuzzyCopy})
	// At defaults nearly every segment is dirtied within a checkpoint:
	// D_min ≈ N_seg · t_seg / N_disks ≈ 89.4 s.
	if d < 80 || d > 95 {
		t.Errorf("default D_min = %v, want ≈89.4", d)
	}
	// Full checkpoints take exactly the full sweep time.
	df := minDuration(p, Options{Algorithm: FuzzyCopy, Full: true})
	want := p.NumSegments() * p.SegmentIOTime() / p.NDisks
	if math.Abs(df-want) > 0.5 {
		t.Errorf("full D_min = %v, want %v", df, want)
	}
	// Doubling bandwidth at least halves... reduces the minimum duration
	// substantially (partial work also shrinks with shorter horizons).
	p2 := p
	p2.NDisks *= 2
	d2 := minDuration(p2, Options{Algorithm: FuzzyCopy})
	if d2 >= d/1.8 {
		t.Errorf("2x disks D_min = %v, want well below %v", d2, d)
	}
	// At trivial load the floor binds.
	p3 := p
	p3.Lambda = 1
	d3 := minDuration(p3, Options{Algorithm: FuzzyCopy})
	if d3 != p.MinCheckpointSeconds {
		t.Errorf("low-load D_min = %v, want floor %v", d3, p.MinCheckpointSeconds)
	}
}

func TestOldCopyFraction(t *testing.T) {
	if got := oldCopyFraction(0); got != 0 {
		t.Errorf("oldCopyFraction(0) = %v", got)
	}
	// Small-x series: x/2.
	if got := oldCopyFraction(1e-8); math.Abs(got-5e-9) > 1e-12 {
		t.Errorf("oldCopyFraction(1e-8) = %v, want 5e-9", got)
	}
	// Large x approaches 1.
	if got := oldCopyFraction(100); got < 0.98 || got > 1 {
		t.Errorf("oldCopyFraction(100) = %v", got)
	}
	// Monotone in x.
	prev := -1.0
	for x := 0.1; x < 50; x *= 1.7 {
		v := oldCopyFraction(x)
		if v <= prev {
			t.Errorf("oldCopyFraction not monotone at %v", x)
		}
		prev = v
	}
}

func TestInvalidInputsRejected(t *testing.T) {
	p := DefaultParams()
	p.NDisks = 0
	if _, err := Evaluate(p, Options{Algorithm: FuzzyCopy}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Evaluate(DefaultParams(), Options{Algorithm: FastFuzzy}); err == nil {
		t.Error("FASTFUZZY without stable tail accepted")
	}
}

// TestFigure4aShape asserts the paper's headline result: the two-color
// algorithms cost several times the others (dominated by rerunning aborted
// transactions), COU costs about the same as fuzzy, and recovery times are
// nearly equal with the two-color ones slightly longer.
func TestFigure4aShape(t *testing.T) {
	p := DefaultParams()
	res := map[Algorithm]*Result{}
	for _, alg := range paperAlgorithms {
		res[alg] = eval(t, p, Options{Algorithm: alg})
	}

	// Two-color algorithms are by far the most expensive.
	for _, tc := range []Algorithm{TwoColorFlush, TwoColorCopy} {
		for _, other := range []Algorithm{FuzzyCopy, COUFlush, COUCopy} {
			if res[tc].OverheadPerTxn < 3*res[other].OverheadPerTxn {
				t.Errorf("%v overhead %.0f not ≫ %v overhead %.0f",
					tc, res[tc].OverheadPerTxn, other, res[other].OverheadPerTxn)
			}
		}
		// Most of the two-color cost comes from reruns.
		if res[tc].RestartCostPerTxn < 0.5*res[tc].OverheadPerTxn {
			t.Errorf("%v rerun cost %.0f is not the dominant component of %.0f",
				tc, res[tc].RestartCostPerTxn, res[tc].OverheadPerTxn)
		}
	}

	// "Generating a transaction consistent backup with a COU algorithm is
	// no more costly than generating a fuzzy backup" — within 25%.
	fuzzy := res[FuzzyCopy].OverheadPerTxn
	for _, cou := range []Algorithm{COUFlush, COUCopy} {
		if res[cou].OverheadPerTxn > 1.25*fuzzy {
			t.Errorf("%v overhead %.0f exceeds FUZZYCOPY %.0f by >25%%",
				cou, res[cou].OverheadPerTxn, fuzzy)
		}
	}

	// Recovery times vary little; two-color slightly longer (log bulk).
	base := res[FuzzyCopy].RecoverySeconds
	for alg, r := range res {
		if math.Abs(r.RecoverySeconds-base) > 0.15*base {
			t.Errorf("%v recovery %.1fs deviates >15%% from %.1fs", alg, r.RecoverySeconds, base)
		}
	}
	if res[TwoColorCopy].RecoverySeconds <= base {
		t.Error("two-color recovery should be slightly longer than fuzzy")
	}
}

// TestFigure4bShape asserts the trade-off: longer checkpoint intervals
// lower processor overhead and raise recovery time, and doubling the
// bandwidth helps 2CCOPY far more than COUCOPY.
func TestFigure4bShape(t *testing.T) {
	p := DefaultParams()
	fig, err := Figure4b(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	bySeries := map[string][]Point{}
	for _, s := range fig.Series {
		bySeries[s.Name] = s.Points
	}
	for name, pts := range bySeries {
		for i := 1; i < len(pts); i++ {
			if pts[i].Result.OverheadPerTxn > pts[i-1].Result.OverheadPerTxn+1e-9 {
				t.Errorf("%s: overhead not non-increasing in interval at point %d", name, i)
			}
		}
		// Recovery time grows with the interval overall. (For the
		// two-color series it can dip just above the minimum interval:
		// the falling restart probability shrinks the abort log bulk
		// faster than the longer interval grows the log span.)
		last := pts[len(pts)-1].Result.RecoverySeconds
		if last <= pts[0].Result.RecoverySeconds {
			t.Errorf("%s: recovery at max interval (%.1fs) not above minimum-interval value (%.1fs)",
				name, last, pts[0].Result.RecoverySeconds)
		}
	}
	// For the non-aborting algorithm the recovery curve is strictly
	// monotone pointwise.
	cou := bySeries["COUCOPY/1x-bandwidth"]
	for i := 1; i < len(cou); i++ {
		if cou[i].Result.RecoverySeconds <= cou[i-1].Result.RecoverySeconds {
			t.Errorf("COUCOPY recovery not increasing at point %d", i)
		}
	}
	// Doubled bandwidth reaches lower recovery times (curves extend left).
	if bySeries["2CCOPY/2x-bandwidth"][0].Result.RecoverySeconds >=
		bySeries["2CCOPY/1x-bandwidth"][0].Result.RecoverySeconds {
		t.Error("2x bandwidth should reach lower minimum recovery time")
	}
	// At a comparable (long) interval, extra bandwidth cuts 2CCOPY's
	// overhead by more than COUCOPY's: compare relative improvement at the
	// largest common interval factor.
	rel := func(alg string) float64 {
		one := bySeries[alg+"/1x-bandwidth"]
		two := bySeries[alg+"/2x-bandwidth"]
		// Evaluate both at the 1x curve's largest interval.
		d := one[len(one)-1].X
		r1, err := Evaluate(p, Options{Algorithm: mustParse(t, alg), IntervalSeconds: d})
		if err != nil {
			t.Fatal(err)
		}
		p2 := p
		p2.NDisks *= 2
		r2, err := Evaluate(p2, Options{Algorithm: mustParse(t, alg), IntervalSeconds: d})
		if err != nil {
			t.Fatal(err)
		}
		_ = two
		return (r1.OverheadPerTxn - r2.OverheadPerTxn) / r1.OverheadPerTxn
	}
	if rel("2CCOPY") <= rel("COUCOPY") {
		t.Errorf("bandwidth should benefit 2CCOPY (%.3f) more than COUCOPY (%.3f)",
			rel("2CCOPY"), rel("COUCOPY"))
	}
}

func mustParse(t *testing.T, s string) Algorithm {
	t.Helper()
	a, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestFigure4cShape asserts: per-transaction overhead generally decreases
// with load; 2CFLUSH is the cheapest algorithm at the lowest load and
// among the most expensive at the highest.
func TestFigure4cShape(t *testing.T) {
	fig, err := Figure4c(DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	first := map[string]float64{}
	last := map[string]float64{}
	for _, s := range fig.Series {
		first[s.Name] = s.Points[0].Result.OverheadPerTxn
		last[s.Name] = s.Points[len(s.Points)-1].Result.OverheadPerTxn
		if last[s.Name] >= first[s.Name] {
			t.Errorf("%s: overhead did not decrease with load (%.0f → %.0f)",
				s.Name, first[s.Name], last[s.Name])
		}
	}
	for name, v := range first {
		if name != "2CFLUSH" && v <= first["2CFLUSH"] {
			t.Errorf("at low load 2CFLUSH (%.0f) should be cheapest, but %s = %.0f",
				first["2CFLUSH"], name, v)
		}
	}
	// At high load 2CFLUSH is among the most costly: only its two-color
	// sibling may exceed it.
	for name, v := range last {
		if name != "2CCOPY" && name != "2CFLUSH" && v >= last["2CFLUSH"] {
			t.Errorf("at high load %s (%.0f) should be below 2CFLUSH (%.0f)",
				name, v, last["2CFLUSH"])
		}
	}
}

// TestFigure4dShape asserts: with checkpoints as fast as possible, the
// copying algorithms (2CCOPY, COUCOPY) get more expensive as segments grow
// while 2CFLUSH gets cheaper; with the interval fixed at 300 s the
// two-color overheads fall with segment size and COUCOPY varies little.
func TestFigure4dShape(t *testing.T) {
	fig, err := Figure4d(DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := map[string][]Point{}
	for _, s := range fig.Series {
		pts[s.Name] = s.Points
	}
	endsHigher := func(name string) bool {
		p := pts[name]
		return p[len(p)-1].Result.OverheadPerTxn > p[0].Result.OverheadPerTxn
	}
	if !endsHigher("2CCOPY/asap") || !endsHigher("COUCOPY/asap") {
		t.Error("ASAP copying algorithms should get costlier with larger segments")
	}
	if endsHigher("2CFLUSH/asap") {
		t.Error("ASAP 2CFLUSH should get cheaper with larger segments")
	}
	if endsHigher("2CFLUSH/fixed300") || endsHigher("2CCOPY/fixed300") {
		t.Error("fixed-interval two-color overheads should fall with segment size")
	}
	// COUCOPY at fixed interval: "only minor variations" — max/min < 2.5×
	// over the sweep.
	cc := pts["COUCOPY/fixed300"]
	lo, hi := math.Inf(1), 0.0
	for _, pt := range cc {
		v := pt.Result.OverheadPerTxn
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi/lo > 2.5 {
		t.Errorf("COUCOPY/fixed300 varies %.1f× across segment sizes, want minor variation", hi/lo)
	}
}

// TestFigure4eShape asserts: with a stable log tail FASTFUZZY costs only a
// few hundred instructions per transaction, and the other algorithms are
// nearly identical to their Figure 4a values.
func TestFigure4eShape(t *testing.T) {
	p := DefaultParams()
	fig, err := Figure4e(p)
	if err != nil {
		t.Fatal(err)
	}
	stable := map[string]*Result{}
	for _, s := range fig.Series {
		stable[s.Name] = s.Points[0].Result
	}
	ff := stable["FASTFUZZY"].OverheadPerTxn
	if ff < 100 || ff > 1000 {
		t.Errorf("FASTFUZZY overhead = %.0f, want a few hundred instructions", ff)
	}
	if ff > 0.25*stable["FUZZYCOPY"].OverheadPerTxn {
		t.Error("FASTFUZZY should be far cheaper than FUZZYCOPY")
	}
	for _, alg := range paperAlgorithms {
		base := eval(t, p, Options{Algorithm: alg})
		s := stable[alg.String()]
		if s.OverheadPerTxn > base.OverheadPerTxn {
			t.Errorf("%v: stable tail increased overhead", alg)
		}
		if (base.OverheadPerTxn-s.OverheadPerTxn)/base.OverheadPerTxn > 0.05 {
			t.Errorf("%v: stable tail changed overhead by >5%% (%.0f → %.0f); the paper says the savings are not significant",
				alg, base.OverheadPerTxn, s.OverheadPerTxn)
		}
	}
}

// TestPRestartFormula checks p_restart = duty · (1 − 2/(N+1)) and its
// duty-cycle scaling.
func TestPRestartFormula(t *testing.T) {
	p := DefaultParams()
	asap := eval(t, p, Options{Algorithm: TwoColorCopy})
	want := 1 - 2/(p.NRU+1) // duty = 1 at the minimum interval
	if math.Abs(asap.PRestart-want) > 0.02 {
		t.Errorf("ASAP p_restart = %v, want ≈%v", asap.PRestart, want)
	}
	// Doubling the interval halves the duty cycle and thus p_restart.
	relaxed := eval(t, p, Options{Algorithm: TwoColorCopy, IntervalSeconds: 2 * asap.DurationSeconds})
	// Work grows slightly with the longer horizon; allow 10% slack.
	if math.Abs(relaxed.PRestart-asap.PRestart/2)/asap.PRestart > 0.1 {
		t.Errorf("2× interval p_restart = %v, want ≈%v", relaxed.PRestart, asap.PRestart/2)
	}
	// Fuzzy and COU algorithms never restart transactions.
	for _, alg := range []Algorithm{FuzzyCopy, COUFlush, COUCopy} {
		if r := eval(t, p, Options{Algorithm: alg}); r.PRestart != 0 || r.RestartCostPerTxn != 0 {
			t.Errorf("%v has nonzero restart cost", alg)
		}
	}
}

// TestRetryModels: immediate (correlated) retries cluster attempts at
// hostile boundary positions, so they must cost strictly more than the
// paper's independent-retry assumption — and exactly match the closed-form
// integral at full duty.
func TestRetryModels(t *testing.T) {
	p := DefaultParams()
	ind := eval(t, p, Options{Algorithm: TwoColorCopy})
	cor := eval(t, p, Options{Algorithm: TwoColorCopy, Retry: CorrelatedRetries})
	if cor.RestartsPerCommit <= ind.RestartsPerCommit {
		t.Errorf("correlated reruns %.2f not above independent %.2f",
			cor.RestartsPerCommit, ind.RestartsPerCommit)
	}
	if cor.PRestart <= ind.PRestart {
		t.Errorf("correlated p_restart %.3f not above independent %.3f", cor.PRestart, ind.PRestart)
	}
	if cor.OverheadPerTxn <= ind.OverheadPerTxn {
		t.Error("correlated retries should raise two-color overhead")
	}
	// For N=2, p(f) = 2f(1−f): ∫ p/(1−p) df = ∫ 1/(f²+(1−f)²) df − 1
	// = π/2 − 1 exactly.
	if got, want := wastedAttemptsIntegral(2), math.Pi/2-1; math.Abs(got-want) > 1e-6 {
		t.Errorf("wastedAttemptsIntegral(2) = %v, want π/2−1 = %v", got, want)
	}
	// Retry model is irrelevant for non-aborting algorithms.
	a := eval(t, p, Options{Algorithm: COUCopy})
	b := eval(t, p, Options{Algorithm: COUCopy, Retry: CorrelatedRetries})
	if a.OverheadPerTxn != b.OverheadPerTxn {
		t.Error("retry model changed a non-aborting algorithm's overhead")
	}
}

// TestMonotonicityQuick property-tests the interval trade-off over random
// valid operating points: overhead non-increasing and recovery increasing
// in the checkpoint interval.
func TestMonotonicityQuick(t *testing.T) {
	p := DefaultParams()
	f := func(algPick uint8, frac1, frac2 float64) bool {
		alg := paperAlgorithms[int(algPick)%len(paperAlgorithms)]
		f1 := 1 + math.Mod(math.Abs(frac1), 9)
		f2 := f1 + math.Mod(math.Abs(frac2), 9) + 0.05
		if math.IsNaN(f1) || math.IsNaN(f2) {
			return true
		}
		dmin := minDuration(p, Options{Algorithm: alg})
		r1, err1 := Evaluate(p, Options{Algorithm: alg, IntervalSeconds: dmin * f1})
		r2, err2 := Evaluate(p, Options{Algorithm: alg, IntervalSeconds: dmin * f2})
		if err1 != nil || err2 != nil {
			return false
		}
		if r2.OverheadPerTxn > r1.OverheadPerTxn+1e-9 {
			return false
		}
		// Recovery monotonicity holds pointwise for the non-aborting
		// algorithms; two-color recovery can dip near the minimum interval
		// as the abort log bulk shrinks.
		if !alg.TwoColor() && r2.RecoverySeconds <= r1.RecoverySeconds {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOverheadComponentsAddUp checks the component breakdown sums to the
// totals.
func TestOverheadComponentsAddUp(t *testing.T) {
	p := DefaultParams()
	for _, alg := range paperAlgorithms {
		r := eval(t, p, Options{Algorithm: alg})
		sync := r.LSNMaintPerTxn + r.COUCopyPerTxn + r.RestartCostPerTxn
		if math.Abs(sync-r.SyncOverheadPerTxn) > 1e-6 {
			t.Errorf("%v: sync components %.3f != %.3f", alg, sync, r.SyncOverheadPerTxn)
		}
		async := r.FlushCostPerTxn + r.CopyCostPerTxn + r.LockCostPerTxn + r.ScanCostPerTxn
		if math.Abs(async-r.AsyncOverheadPerTxn) > 1e-6 {
			t.Errorf("%v: async components %.3f != %.3f", alg, async, r.AsyncOverheadPerTxn)
		}
		if math.Abs(r.SyncOverheadPerTxn+r.AsyncOverheadPerTxn-r.OverheadPerTxn) > 1e-6 {
			t.Errorf("%v: totals do not add up", alg)
		}
	}
}

// TestLogicalLoggingShrinksRecovery: operation records shrink the log and
// therefore the recovery log-read time, leaving overhead unchanged (the
// model excludes log data movement, as the paper does).
func TestLogicalLoggingShrinksRecovery(t *testing.T) {
	p := DefaultParams()
	phys := eval(t, p, Options{Algorithm: COUCopy})
	logi := eval(t, p, Options{Algorithm: COUCopy, LogicalLogging: true})
	if logi.LogWordsPerSecond >= phys.LogWordsPerSecond/3 {
		t.Errorf("logical log rate %.0f should be far below physical %.0f",
			logi.LogWordsPerSecond, phys.LogWordsPerSecond)
	}
	if logi.LogReadSeconds >= phys.LogReadSeconds {
		t.Error("logical logging should shrink the recovery log read")
	}
	if logi.OverheadPerTxn != phys.OverheadPerTxn {
		t.Error("logical logging should not change modeled CPU overhead")
	}
	// Unsound combinations rejected.
	if _, err := Evaluate(p, Options{Algorithm: FuzzyCopy, LogicalLogging: true}); err == nil {
		t.Error("logical logging with a fuzzy algorithm accepted")
	}
	if _, err := Evaluate(p, Options{Algorithm: TwoColorCopy, LogicalLogging: true}); err == nil {
		t.Error("logical logging with a two-color algorithm accepted")
	}
}

// TestFullVsPartialCheckpoints: full checkpoints flush every segment and
// therefore cannot be cheaper per transaction at the same interval.
func TestFullVsPartialCheckpoints(t *testing.T) {
	p := DefaultParams()
	p.Lambda = 100 // make partial checkpoints meaningfully smaller
	part := eval(t, p, Options{Algorithm: FuzzyCopy, IntervalSeconds: 120})
	full := eval(t, p, Options{Algorithm: FuzzyCopy, IntervalSeconds: 120, Full: true})
	if full.SegmentsPerCheckpoint != p.NumSegments() {
		t.Errorf("full checkpoint writes %v segments, want all %v",
			full.SegmentsPerCheckpoint, p.NumSegments())
	}
	if part.SegmentsPerCheckpoint >= full.SegmentsPerCheckpoint {
		t.Error("partial checkpoint should write fewer segments at low load")
	}
	if part.OverheadPerTxn >= full.OverheadPerTxn {
		t.Error("partial checkpointing should be cheaper at low load")
	}
}
