package analytic

import (
	"errors"
	"fmt"
)

// Params holds the model parameters of Section 2 (Tables 2a–2d) plus the
// handful of reconstruction parameters the paper's companion report
// [Sale87a] would have carried (documented in DESIGN.md §5). All sizes are
// in words (4 bytes each), times in seconds, costs in instructions.
type Params struct {
	// Table 2a — basic operation costs (instructions).
	CLock  float64 // (un)locking overhead
	CAlloc float64 // buffer (de)allocation overhead
	CIO    float64 // I/O initiation overhead
	CLSN   float64 // maintain/check a log sequence number (or timestamp)

	// Table 2b — disk model.
	TSeek  float64 // per-I/O delay time (seconds)
	TTrans float64 // transfer time (seconds/word)
	NDisks float64 // number of backup disks

	// Table 2c — database.
	SDB  float64 // database size (words)
	SRec float64 // record size (words)
	SSeg float64 // segment size (words)

	// Table 2d — transactions.
	Lambda float64 // arrival rate (transactions/second)
	NRU    float64 // updates per transaction (records)
	CTrans float64 // base transaction cost (instructions)

	// Reconstruction parameters (defaults in DefaultParams; see DESIGN.md).

	// CDirtyCheck is the per-segment cost of scanning dirty bits during a
	// partial checkpoint sweep.
	CDirtyCheck float64
	// CCkptFixed is the fixed per-checkpoint cost (begin/end markers,
	// backup metadata writes).
	CCkptFixed float64
	// AbortWorkFraction is the fraction of CTrans wasted by an attempt
	// aborted under the two-color rule (it dies at its first mixed-color
	// access, on average well before completion).
	AbortWorkFraction float64
	// CRestart is the bookkeeping cost of aborting and restarting a
	// transaction.
	CRestart float64
	// LogHeaderWords is the per-update log record overhead beyond the
	// after image; CommitRecWords the size of a commit or abort record.
	LogHeaderWords float64
	CommitRecWords float64
	// LogicalOperandWords is the operand size of a logical (operation)
	// redo record, used when Options.LogicalLogging replaces after images
	// with operations (Section 3.2's advantage of consistent backups).
	LogicalOperandWords float64
	// MinCheckpointSeconds floors the as-fast-as-possible checkpoint
	// interval: a sweep has fixed latency even when almost nothing is
	// dirty. It only binds at very low update rates.
	MinCheckpointSeconds float64
}

// DefaultParams returns the paper's default parameter values (Tables
// 2a–2d) with the reconstruction defaults of DESIGN.md §5.
func DefaultParams() Params {
	return Params{
		CLock:  20,
		CAlloc: 100,
		CIO:    1000,
		CLSN:   20,

		TSeek:  0.03,
		TTrans: 3e-6,
		NDisks: 20,

		SDB:  256 * 1 << 20, // 256 Mwords (2^28) = 1 GB at 4 bytes/word
		SRec: 32,
		SSeg: 8192,

		Lambda: 1000,
		NRU:    5,
		CTrans: 25000,

		CDirtyCheck:          1,
		CCkptFixed:           5000,
		AbortWorkFraction:    0.25,
		CRestart:             1000,
		LogHeaderWords:       4,
		CommitRecWords:       8,
		LogicalOperandWords:  2,
		MinCheckpointSeconds: 1,
	}
}

// Validate checks the parameters for consistency.
func (p Params) Validate() error {
	switch {
	case p.CLock < 0 || p.CAlloc < 0 || p.CIO < 0 || p.CLSN < 0:
		return errors.New("analytic: negative basic operation cost")
	case p.TSeek < 0 || p.TTrans <= 0:
		return errors.New("analytic: disk times must be positive")
	case p.NDisks < 1:
		return fmt.Errorf("analytic: NDisks = %v, want >= 1", p.NDisks)
	case p.SDB <= 0 || p.SRec <= 0 || p.SSeg <= 0:
		return errors.New("analytic: database sizes must be positive")
	case p.SSeg > p.SDB:
		return errors.New("analytic: segment larger than database")
	case p.Lambda <= 0 || p.NRU <= 0 || p.CTrans < 0:
		return errors.New("analytic: transaction parameters must be positive")
	case p.AbortWorkFraction < 0 || p.AbortWorkFraction > 1:
		return errors.New("analytic: AbortWorkFraction must be in [0,1]")
	case p.MinCheckpointSeconds <= 0:
		return errors.New("analytic: MinCheckpointSeconds must be positive")
	}
	return nil
}

// NumSegments returns S_db/S_seg.
func (p Params) NumSegments() float64 { return p.SDB / p.SSeg }

// UpdateRate returns the record update rate u = λ·N_ru (updates/second).
func (p Params) UpdateRate() float64 { return p.Lambda * p.NRU }

// SegmentIOTime returns the service time of one segment transfer on one
// disk: T_seek + T_trans·S_seg (seconds).
func (p Params) SegmentIOTime() float64 { return p.TSeek + p.TTrans*p.SSeg }

// FlushRate returns the aggregate segment flush rate of the disk bank
// (segments/second).
func (p Params) FlushRate() float64 { return p.NDisks / p.SegmentIOTime() }

// LogWordsPerCommit returns the log volume of one committed transaction.
func (p Params) LogWordsPerCommit() float64 {
	return p.NRU*(p.SRec+p.LogHeaderWords) + p.CommitRecWords
}

// RetryModel selects how two-color restarts are assumed to re-execute.
type RetryModel int

const (
	// IndependentRetries assumes a restarted transaction re-runs after a
	// delay, by which time the checkpoint boundary has moved: every
	// attempt samples the black fraction independently. This matches the
	// paper's single-valued p_restart and is the default.
	IndependentRetries RetryModel = iota
	// CorrelatedRetries assumes a restarted transaction re-runs
	// immediately at the same boundary position. Attempts then cluster at
	// boundary positions where conflicts are likely, raising the expected
	// rerun count to ∫ p(f)/(1−p(f)) df — noticeably above the
	// independent p̄/(1−p̄). A reproduction finding: under immediate
	// retries the two-color algorithms look even worse than the paper's
	// model suggests (see EXPERIMENTS.md).
	CorrelatedRetries
)

// String implements fmt.Stringer.
func (m RetryModel) String() string {
	switch m {
	case IndependentRetries:
		return "independent"
	case CorrelatedRetries:
		return "correlated"
	default:
		return fmt.Sprintf("analytic.RetryModel(%d)", int(m))
	}
}

// Options selects an algorithm and operating point for evaluation.
type Options struct {
	// Algorithm to evaluate.
	Algorithm Algorithm
	// Full selects full (every-segment) checkpoints; default partial.
	Full bool
	// StableTail gives the system a stable log tail: LSN synchronization
	// costs vanish, and FASTFUZZY becomes legal.
	StableTail bool
	// IntervalSeconds is the checkpoint duration (begin-to-begin). Zero
	// means as fast as possible (the minimum duration); smaller-than-
	// minimum values are clamped up.
	IntervalSeconds float64
	// Retry selects the two-color restart model (ignored for algorithms
	// that never abort transactions).
	Retry RetryModel
	// LogicalLogging replaces after-image redo records with operation
	// records of LogicalOperandWords each, shrinking the log and hence
	// the recovery log-read time. Requires a copy-on-update algorithm —
	// operation replay is only sound against a backup that is an exact
	// state at a known log position.
	LogicalLogging bool
	// HourglassWindowSegments is the HOURGLASS old-copy window W in
	// segments: the peak old-version buffer is capped at W·S_seg. Zero
	// resolves to DefaultHourglassWindowSegments; ignored by every other
	// algorithm.
	HourglassWindowSegments float64
}

// DefaultHourglassWindowSegments mirrors the engine's
// DefaultHourglassWindow: four preallocated old-copy buffers.
const DefaultHourglassWindowSegments = 4

// hourglassWindow resolves the zero value of HourglassWindowSegments.
func (o Options) hourglassWindow() float64 {
	if o.HourglassWindowSegments == 0 {
		return DefaultHourglassWindowSegments
	}
	return o.HourglassWindowSegments
}

// Validate checks the options against the parameters.
func (o Options) Validate() error {
	if !o.Algorithm.Valid() {
		return fmt.Errorf("analytic: invalid algorithm %d", int(o.Algorithm))
	}
	if o.Algorithm.RequiresStableTail() && !o.StableTail {
		return fmt.Errorf("analytic: %v requires a stable log tail", o.Algorithm)
	}
	if o.IntervalSeconds < 0 {
		return errors.New("analytic: negative checkpoint interval")
	}
	if o.LogicalLogging && !o.Algorithm.CopyOnUpdate() {
		return fmt.Errorf("analytic: logical logging requires a copy-on-update algorithm, not %v", o.Algorithm)
	}
	if o.HourglassWindowSegments < 0 {
		return fmt.Errorf("analytic: negative HourglassWindowSegments %v", o.HourglassWindowSegments)
	}
	return nil
}
