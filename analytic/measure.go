package analytic

import "errors"

// Counts are activity totals measured on a live engine run (package mmdb's
// Stats provides them). MeasuredOverhead prices them with the model's
// basic-operation costs, which lets a real-engine experiment report the
// same "instructions per transaction" metric as Figure 4a without
// depending on wall-clock speed (the paper's point: CPU operations, not
// I/O time, are the cost that matters).
type Counts struct {
	// TxnsCommitted divides the totals into a per-transaction figure.
	TxnsCommitted uint64
	// ColorAborts counts attempts aborted by the two-color rule.
	ColorAborts uint64
	// RecordsWritten counts logged updates (for LSN/timestamp upkeep).
	RecordsWritten uint64
	// SegmentsFlushed counts backup segment writes; LSNWaits the
	// write-ahead checks; CheckpointerCopies the checkpointer's buffer
	// copies; COUCopies the updaters' old-version copies.
	SegmentsFlushed    uint64
	LSNWaits           uint64
	CheckpointerCopies uint64
	COUCopies          uint64
	// ZigzagFlips counts the updaters' Data/Shadow image flips (ZIGZAG
	// only): each moves one segment onto the preallocated shadow slab.
	ZigzagFlips uint64
	// Checkpoints and SegmentsTotal size the per-sweep costs (dirty-bit
	// scans, segment locking).
	Checkpoints   uint64
	SegmentsTotal uint64
	// SegmentWords is the segment size in words (engine bytes / 4).
	SegmentWords float64
	// Algorithm prices algorithm-specific terms (locking sweeps, LSN
	// upkeep); Full disables the dirty-scan term.
	Algorithm Algorithm
	// Full marks full checkpoints (no dirty-bit scan).
	Full bool
	// StableTail disables LSN upkeep pricing.
	StableTail bool
}

// MeasuredOverhead prices measured counts in instructions per committed
// transaction, split into the synchronous and asynchronous components the
// paper's model uses.
func MeasuredOverhead(p Params, c Counts) (perTxn, sync, async float64, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, 0, err
	}
	if c.TxnsCommitted == 0 {
		return 0, 0, 0, errors.New("analytic: no committed transactions to amortize over")
	}
	if !c.Algorithm.Valid() {
		return 0, 0, 0, errors.New("analytic: counts carry no algorithm")
	}
	n := float64(c.TxnsCommitted)

	// Synchronous: LSN/timestamp upkeep, old-version preservation, zigzag
	// flips, aborted attempts.
	lsnActive := c.Algorithm.UsesLSN() && !c.StableTail
	if lsnActive || c.Algorithm.RequiresQuiesce() {
		sync += float64(c.RecordsWritten) * p.CLSN / n
	}
	perCopy := c.SegmentWords + 2*p.CLock
	if c.Algorithm.CopyOnUpdate() {
		perCopy += p.CAlloc // hourglass draws from a preallocated pool
	}
	sync += float64(c.COUCopies) * perCopy / n
	sync += float64(c.ZigzagFlips) * (c.SegmentWords + 2*p.CLock) / n
	sync += float64(c.ColorAborts) * (p.AbortWorkFraction*p.CTrans + p.CRestart) / n

	// Asynchronous: checkpointer flushes, copies, LSN checks, locking
	// sweeps, dirty scans, fixed costs.
	async += float64(c.SegmentsFlushed) * p.CIO / n
	async += float64(c.LSNWaits) * p.CLSN / n
	async += float64(c.CheckpointerCopies) * (c.SegmentWords + p.CAlloc) / n
	if c.Algorithm.LocksSegments() {
		async += float64(c.Checkpoints) * float64(c.SegmentsTotal) * 2 * p.CLock / n
	}
	if !c.Full {
		async += float64(c.Checkpoints) * float64(c.SegmentsTotal) * p.CDirtyCheck / n
	}
	async += float64(c.Checkpoints) * p.CCkptFixed / n

	return sync + async, sync, async, nil
}
