// Package analytic reconstructs the analytic performance model of Salem &
// Garcia-Molina, "Checkpointing Memory-Resident Databases" (Section 4 and
// the companion report [Sale87a]).
//
// The model produces the paper's two metrics for each checkpoint
// algorithm: processor overhead per transaction (instructions) and
// recovery time from a system failure (seconds). Synchronous overhead is
// work done on behalf of a particular transaction (LSN maintenance,
// copy-on-update copies, rerunning two-color aborts); asynchronous
// overhead is the checkpointer's own work, divided by the number of
// transactions that run during one checkpoint interval.
//
// Derivations (DESIGN.md §5):
//
//   - Distinct segments dirtied in time h, with uniform record updates at
//     rate u over N_seg segments: N_seg·(1 − e^(−u·h/N_seg)).
//   - A partial checkpoint into one ping-pong copy must flush the segments
//     dirtied over the last two intervals (the previous checkpoint wrote
//     the other copy), so its work is dirty(2D).
//   - The minimum duration solves D = W(D)/flushRate (a fixed point).
//   - A two-color transaction aborts iff its N_ru uniform updates straddle
//     the black/white boundary: p(f) = 1 − f^N − (1−f)^N at black fraction
//     f. The sweep makes f linear in time, so the time-average over an
//     active checkpoint is 1 − 2/(N+1), scaled by the checkpointer's duty
//     cycle. Expected wasted attempts per commit: p/(1−p).
//   - A copy-on-update transaction copies a segment when it is the first
//     to update it after checkpoint begin and before the sweep cursor
//     passes it; integrating over the sweep gives
//     N_seg·(1 − (1 − e^(−x))/x) copies per checkpoint, x = u·A/N_seg.
//   - Recovery reads the whole backup copy plus the log accumulated since
//     the last completed checkpoint began (expectation 1.5·D).
package analytic

import (
	"fmt"
	"math"
)

// Result reports the model's outputs for one operating point.
type Result struct {
	Algorithm Algorithm
	Params    Params
	Options   Options

	// DurationSeconds is the checkpoint interval D actually used
	// (requested interval clamped up to the minimum); MinDurationSeconds
	// is the as-fast-as-possible duration; ActiveSeconds is the portion of
	// the interval during which the checkpointer is writing; DutyCycle is
	// their ratio.
	DurationSeconds    float64
	MinDurationSeconds float64
	ActiveSeconds      float64
	DutyCycle          float64

	// SegmentsPerCheckpoint is the expected flush count W per checkpoint;
	// TxnsPerInterval is λ·D.
	SegmentsPerCheckpoint float64
	TxnsPerInterval       float64

	// OverheadPerTxn = SyncOverheadPerTxn + AsyncOverheadPerTxn, in
	// instructions — the paper's processor overhead metric (Figure 4a).
	OverheadPerTxn      float64
	SyncOverheadPerTxn  float64
	AsyncOverheadPerTxn float64

	// Overhead components (instructions per transaction).
	LSNMaintPerTxn    float64 // LSN/timestamp upkeep by transactions
	COUCopyPerTxn     float64 // copy-on-update old-version copies
	RestartCostPerTxn float64 // rerunning two-color aborts
	FlushCostPerTxn   float64 // checkpointer I/O initiation + LSN checks
	CopyCostPerTxn    float64 // checkpointer segment copies
	LockCostPerTxn    float64 // checkpointer segment locking
	ScanCostPerTxn    float64 // dirty-bit scan + fixed per-checkpoint cost

	// PRestart is the probability a transaction attempt is aborted by the
	// two-color rule; RestartsPerCommit = p/(1−p) wasted attempts.
	PRestart          float64
	RestartsPerCommit float64

	// COUCopiesPerCkpt is the expected number of old-version copies made
	// per checkpoint; COUOldBufferWords is the expected peak number of
	// words of old copies live at once (copies are released as the sweep
	// cursor passes them): N_seg·max_x (1−x)(1−e^(−x·u·A/N_seg))·S_seg —
	// the quantitative form of the paper's warning that the snapshot
	// buffer "could grow to be as large as the database itself". For
	// HOURGLASS the same copy count applies but the live buffer is capped
	// at the window (Options.HourglassWindowSegments · S_seg).
	COUCopiesPerCkpt  float64
	COUOldBufferWords float64

	// ZigzagFlipsPerCkpt is the expected number of updater-side image
	// flips per ZIGZAG checkpoint (one per segment updated while the
	// sweep is active); ZigzagFlipPerTxn is their per-transaction cost.
	ZigzagFlipsPerCkpt float64
	ZigzagFlipPerTxn   float64

	// RecoverySeconds = BackupReadSeconds + LogReadSeconds (Figure 4a's
	// second panel); LogWordsPerSecond is the log growth rate including
	// two-color abort bulk.
	RecoverySeconds   float64
	BackupReadSeconds float64
	LogReadSeconds    float64
	LogWordsPerSecond float64
}

// dirtySegments returns the expected number of distinct segments dirtied
// in h seconds.
func dirtySegments(p Params, h float64) float64 {
	n := p.NumSegments()
	if h <= 0 {
		return 0
	}
	return n * (1 - math.Exp(-p.UpdateRate()*h/n))
}

// checkpointWork returns the expected number of segments one checkpoint
// writes, at steady-state interval d.
func checkpointWork(p Params, o Options, d float64) float64 {
	if o.Full {
		return p.NumSegments()
	}
	// Partial + ping-pong: everything dirtied since this copy's previous
	// checkpoint, two intervals ago.
	return dirtySegments(p, 2*d)
}

// minDuration solves the fixed point D = W(D)/flushRate by bisection,
// floored at MinCheckpointSeconds.
func minDuration(p Params, o Options) float64 {
	rate := p.FlushRate()
	f := func(d float64) float64 { return checkpointWork(p, o, d)/rate - d }
	// The fixed point, if positive, lies below the full-database sweep
	// time; bracket [ε, hi].
	hi := p.NumSegments()/rate + 1
	lo := 1e-9
	if f(hi) > 0 {
		// Should not happen (work is bounded by NumSegments); fall back.
		return math.Max(hi, p.MinCheckpointSeconds)
	}
	if f(lo) <= 0 {
		// Even infinitesimal intervals keep up: the disks outpace the
		// dirty rate, so only the floor binds.
		return p.MinCheckpointSeconds
	}
	for i := 0; i < 200 && hi-lo > 1e-9*(1+hi); i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Max(hi, p.MinCheckpointSeconds)
}

// wastedAttemptsIntegral numerically evaluates ∫₀¹ p(f)/(1−p(f)) df with
// p(f) = 1 − f^N − (1−f)^N, i.e. ∫₀¹ 1/(f^N + (1−f)^N) df − 1: the
// expected wasted attempts per commit when a restarted transaction re-runs
// at the same boundary position (correlated retries, duty cycle 1).
func wastedAttemptsIntegral(n float64) float64 {
	// Simpson's rule; the integrand is smooth and bounded by 2^(N−1).
	const steps = 2000
	g := func(f float64) float64 {
		return 1 / (math.Pow(f, n) + math.Pow(1-f, n))
	}
	h := 1.0 / steps
	sum := g(0) + g(1)
	for i := 1; i < steps; i++ {
		f := float64(i) * h
		if i%2 == 1 {
			sum += 4 * g(f)
		} else {
			sum += 2 * g(f)
		}
	}
	return sum*h/3 - 1
}

// oneMinusExp returns 1 − e^(−x) with care for tiny x.
func oneMinusExp(x float64) float64 {
	if x < 1e-8 {
		return x
	}
	return 1 - math.Exp(-x)
}

// oldCopyFraction returns 1 − (1 − e^(−x))/x, the probability integrated
// over the sweep that a segment receives an update before the cursor
// reaches it, where x = u·A/N_seg.
func oldCopyFraction(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < 1e-6 {
		return x / 2 // series expansion avoids cancellation
	}
	return 1 - (1-math.Exp(-x))/x
}

// Evaluate runs the model for one algorithm and operating point.
func Evaluate(p Params, o Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}

	r := &Result{Algorithm: o.Algorithm, Params: p, Options: o}
	rate := p.FlushRate()

	r.MinDurationSeconds = minDuration(p, o)
	d := r.MinDurationSeconds
	if o.IntervalSeconds > d {
		d = o.IntervalSeconds
	}
	r.DurationSeconds = d
	w := checkpointWork(p, o, d)
	r.SegmentsPerCheckpoint = w
	r.ActiveSeconds = w / rate
	if r.ActiveSeconds > d {
		// Numerical slack at the fixed point.
		r.ActiveSeconds = d
	}
	r.DutyCycle = r.ActiveSeconds / d
	r.TxnsPerInterval = p.Lambda * d

	alg := o.Algorithm
	lsnActive := alg.UsesLSN() && !o.StableTail

	// --- Synchronous overhead -------------------------------------------

	// LSN (or quiesce-family timestamp) maintenance per update. The
	// quiesce family — COU, ZIGZAG, HOURGLASS — stamps τ (or checks the
	// flip bit) on every installed update.
	if lsnActive || alg.RequiresQuiesce() {
		r.LSNMaintPerTxn = p.NRU * p.CLSN
	}

	// Old-version preservation (COU's heap copies; HOURGLASS's windowed
	// pool draws — no allocation, buffer capped at W). COU's copy count
	// carries the cursor cutoff (a segment stops preserving once the
	// in-order sweep passes it). HOURGLASS drains preserved copies out of
	// sweep order as soon as they appear, which front-loads their I/O and
	// delays the in-order cursor — in steady state nearly every segment
	// first-updated during the sweep preserves before the cursor arrives,
	// so the cutoff vanishes and the count follows the no-cutoff curve
	// N·(1−e^(−x)) (cross-validated against the simulator).
	if alg.PreservesOldVersions() {
		x := p.UpdateRate() * r.ActiveSeconds / p.NumSegments()
		frac := oldCopyFraction(x)
		if alg == Hourglass {
			frac = oneMinusExp(x)
		}
		r.COUCopiesPerCkpt = p.NumSegments() * frac
		perCopy := p.SSeg + 2*p.CLock // move S_seg words, re-latch
		if alg.CopyOnUpdate() {
			perCopy += p.CAlloc // hourglass draws from a preallocated pool instead
		}
		r.COUCopyPerTxn = r.COUCopiesPerCkpt / r.TxnsPerInterval * perCopy
		// Peak live buffer: at cursor fraction c, a segment ahead of the
		// cursor holds an old copy iff it was updated during [0, c·A];
		// live(c) = N·(1−c)·(1−e^(−x·c)). Maximize by sampling.
		peak := 0.0
		for i := 1; i < 200; i++ {
			c := float64(i) / 200
			if v := (1 - c) * oneMinusExp(x*c); v > peak {
				peak = v
			}
		}
		r.COUOldBufferWords = p.NumSegments() * peak * p.SSeg
		if alg == Hourglass {
			if limit := o.hourglassWindow() * p.SSeg; r.COUOldBufferWords > limit {
				r.COUOldBufferWords = limit
			}
		}
	}

	// Zigzag updater-side flips: every segment first-updated while the
	// sweep is active pays one segment copy onto the preallocated shadow
	// slab (no allocation), plus the latch work.
	if alg == Zigzag {
		x := p.UpdateRate() * r.ActiveSeconds / p.NumSegments()
		r.ZigzagFlipsPerCkpt = p.NumSegments() * oneMinusExp(x)
		perFlip := p.SSeg + 2*p.CLock
		r.ZigzagFlipPerTxn = r.ZigzagFlipsPerCkpt / r.TxnsPerInterval * perFlip
	}

	// Two-color restarts.
	if alg.TwoColor() {
		switch o.Retry {
		case IndependentRetries:
			// Every attempt samples the boundary independently:
			// p = duty · ∫₀¹ (1 − f^N − (1−f)^N) df = duty · (1 − 2/(N+1)).
			pMix := 1 - 2/(p.NRU+1)
			r.PRestart = r.DutyCycle * pMix
			if r.PRestart >= 1 {
				return nil, fmt.Errorf("analytic: restart probability %v ≥ 1; system cannot keep up", r.PRestart)
			}
			r.RestartsPerCommit = r.PRestart / (1 - r.PRestart)
		case CorrelatedRetries:
			// Immediate retries re-sample the same boundary: a transaction
			// arriving at black fraction f makes 1/(1−p(f)) attempts, so
			// wasted attempts per commit integrate to
			// duty · ∫₀¹ p(f)/(1−p(f)) df, and the attempt-weighted abort
			// probability is wasted/(1+wasted).
			r.RestartsPerCommit = r.DutyCycle * wastedAttemptsIntegral(p.NRU)
			r.PRestart = r.RestartsPerCommit / (1 + r.RestartsPerCommit)
		default:
			return nil, fmt.Errorf("analytic: unknown retry model %v", o.Retry)
		}
		perAttempt := p.AbortWorkFraction*p.CTrans + p.CRestart
		if lsnActive {
			perAttempt += p.AbortWorkFraction * p.NRU * p.CLSN
		}
		r.RestartCostPerTxn = r.RestartsPerCommit * perAttempt
	}

	r.SyncOverheadPerTxn = r.LSNMaintPerTxn + r.COUCopyPerTxn + r.ZigzagFlipPerTxn + r.RestartCostPerTxn

	// --- Asynchronous (checkpointer) overhead ---------------------------

	// Per flushed segment: I/O initiation, plus an LSN check.
	perFlush := p.CIO
	if lsnActive {
		perFlush += p.CLSN
	}
	asyncPerCkpt := w * perFlush

	// Checkpointer segment copies. Under COU, segments whose old version
	// was preserved by an updater are flushed from that buffer at no extra
	// movement cost; only untouched dirty segments are copied by COUCOPY.
	copiedSegs := 0.0
	switch {
	case alg == FuzzyCopy || alg == TwoColorCopy:
		copiedSegs = w
	case alg == COUCopy:
		x := p.UpdateRate() * r.ActiveSeconds / p.NumSegments()
		copiedSegs = w * (1 - oldCopyFraction(x))
	}
	copyCost := copiedSegs * (p.SSeg + p.CAlloc)
	asyncPerCkpt += copyCost

	// Segment locking: the two-color and COU checkpointers lock and unlock
	// every segment in the database each sweep (clean segments are locked,
	// inspected, and released).
	lockCost := 0.0
	if alg.LocksSegments() {
		lockCost = 2 * p.CLock * p.NumSegments()
	}
	asyncPerCkpt += lockCost

	// Dirty-bit scan (partial checkpoints) and fixed per-checkpoint cost.
	scanCost := p.CCkptFixed
	if !o.Full {
		scanCost += p.CDirtyCheck * p.NumSegments()
	}
	asyncPerCkpt += scanCost

	r.AsyncOverheadPerTxn = asyncPerCkpt / r.TxnsPerInterval
	r.FlushCostPerTxn = w * perFlush / r.TxnsPerInterval
	r.CopyCostPerTxn = copyCost / r.TxnsPerInterval
	r.LockCostPerTxn = lockCost / r.TxnsPerInterval
	r.ScanCostPerTxn = scanCost / r.TxnsPerInterval

	r.OverheadPerTxn = r.SyncOverheadPerTxn + r.AsyncOverheadPerTxn

	// --- Recovery time ---------------------------------------------------

	// Read the whole backup copy back into memory.
	r.BackupReadSeconds = p.NumSegments() * p.SegmentIOTime() / p.NDisks

	// Log volume: committed transactions plus the dead redo of two-color
	// aborts (the paper's "added log bulk"). Logical logging replaces the
	// after image with a small operand.
	redoWords := p.SRec + p.LogHeaderWords
	if o.LogicalLogging {
		redoWords = p.LogicalOperandWords + p.LogHeaderWords
	}
	logRate := p.Lambda * (p.NRU*redoWords + p.CommitRecWords)
	if alg.TwoColor() {
		perAborted := p.AbortWorkFraction*p.NRU*redoWords + p.CommitRecWords
		logRate += p.Lambda * r.RestartsPerCommit * perAborted
	}
	r.LogWordsPerSecond = logRate

	// Expected log span to replay: the last completed checkpoint began
	// between D and 2D ago (uniform failure instant) → 1.5·D on average.
	logSpan := 1.5 * d
	r.LogReadSeconds = p.TSeek + logRate*logSpan*p.TTrans/p.NDisks
	r.RecoverySeconds = r.BackupReadSeconds + r.LogReadSeconds

	return r, nil
}

// MustEvaluate is Evaluate for static configurations known to be valid;
// it panics on error. Used by the figure generators.
func MustEvaluate(p Params, o Options) *Result {
	r, err := Evaluate(p, o)
	if err != nil {
		panic(err)
	}
	return r
}
