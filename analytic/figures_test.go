package analytic

import "testing"

func TestFigure4aStructure(t *testing.T) {
	fig, err := Figure4a(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "4a" || len(fig.Series) != 5 {
		t.Fatalf("figure 4a: id=%q series=%d", fig.ID, len(fig.Series))
	}
	wantOrder := []string{"FUZZYCOPY", "2CFLUSH", "2CCOPY", "COUFLUSH", "COUCOPY"}
	for i, s := range fig.Series {
		if s.Name != wantOrder[i] {
			t.Errorf("series %d = %q, want %q", i, s.Name, wantOrder[i])
		}
		if len(s.Points) != 1 || s.Points[0].Result == nil {
			t.Errorf("series %q malformed", s.Name)
		}
	}
}

func TestFigure4bStructure(t *testing.T) {
	fig, err := Figure4b(DefaultParams(), []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 { // {2CCOPY, COUCOPY} × {1x, 2x}
		t.Fatalf("figure 4b series = %d, want 4", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %q has %d points, want 2", s.Name, len(s.Points))
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].X <= s.Points[i-1].X {
				t.Errorf("series %q X not increasing", s.Name)
			}
		}
	}
	// Default factor set used when none given.
	fig2, err := Figure4b(DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig2.Series[0].Points) != len(DefaultIntervalFactors) {
		t.Errorf("default factors not applied")
	}
}

func TestFigure4cStructure(t *testing.T) {
	lambdas := []float64{100, 1000}
	fig, err := Figure4c(DefaultParams(), lambdas)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("figure 4c series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(lambdas) {
			t.Errorf("series %q has %d points", s.Name, len(s.Points))
		}
		for i, pt := range s.Points {
			if pt.X != lambdas[i] {
				t.Errorf("series %q point %d X=%v, want %v", s.Name, i, pt.X, lambdas[i])
			}
			if pt.Result.Params.Lambda != lambdas[i] {
				t.Errorf("series %q point %d evaluated at λ=%v", s.Name, i, pt.Result.Params.Lambda)
			}
		}
	}
}

func TestFigure4dStructure(t *testing.T) {
	fig, err := Figure4d(DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 { // 3 algorithms × {asap, fixed300}
		t.Fatalf("figure 4d series = %d, want 6", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(DefaultSegmentSweep) {
			t.Errorf("series %q has %d points", s.Name, len(s.Points))
		}
		for i, pt := range s.Points {
			if pt.Result.Params.SSeg != DefaultSegmentSweep[i] {
				t.Errorf("series %q point %d evaluated at S_seg=%v", s.Name, i, pt.Result.Params.SSeg)
			}
		}
	}
}

func TestFigure4eStructure(t *testing.T) {
	fig, err := Figure4e(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(Algorithms) { // all algorithms including FASTFUZZY and the extensions
		t.Fatalf("figure 4e series = %d, want %d", len(fig.Series), len(Algorithms))
	}
	for _, s := range fig.Series {
		if !s.Points[0].Result.Options.StableTail {
			t.Errorf("series %q not evaluated with a stable tail", s.Name)
		}
	}
}

func TestPRestartCurve(t *testing.T) {
	fig, err := PRestartCurve(DefaultParams(), TwoColorFlush, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Series[0].Points
	if len(pts) != len(DefaultIntervalFactors) {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Result.PRestart >= pts[i-1].Result.PRestart {
			t.Errorf("p_restart not decreasing with interval at point %d", i)
		}
	}
	if _, err := PRestartCurve(DefaultParams(), FuzzyCopy, nil); err == nil {
		t.Error("p_restart curve for a non-aborting algorithm accepted")
	}
}

func TestFigureErrorsPropagate(t *testing.T) {
	bad := DefaultParams()
	bad.NDisks = 0
	if _, err := Figure4a(bad); err == nil {
		t.Error("figure 4a with invalid params accepted")
	}
	if _, err := Figure4b(bad, nil); err == nil {
		t.Error("figure 4b with invalid params accepted")
	}
	if _, err := Figure4c(bad, nil); err == nil {
		t.Error("figure 4c with invalid params accepted")
	}
	if _, err := Figure4d(bad, nil); err == nil {
		t.Error("figure 4d with invalid params accepted")
	}
	if _, err := Figure4e(bad); err == nil {
		t.Error("figure 4e with invalid params accepted")
	}
}

func TestMustEvaluatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEvaluate did not panic on invalid input")
		}
	}()
	bad := DefaultParams()
	bad.NDisks = 0
	MustEvaluate(bad, Options{Algorithm: FuzzyCopy})
}

func TestMeasuredOverheadValidation(t *testing.T) {
	p := DefaultParams()
	if _, _, _, err := MeasuredOverhead(p, Counts{}); err == nil {
		t.Error("zero committed transactions accepted")
	}
	if _, _, _, err := MeasuredOverhead(p, Counts{TxnsCommitted: 1}); err == nil {
		t.Error("missing algorithm accepted")
	}
	bad := p
	bad.NDisks = 0
	if _, _, _, err := MeasuredOverhead(bad, Counts{TxnsCommitted: 1, Algorithm: FuzzyCopy}); err == nil {
		t.Error("invalid params accepted")
	}
	// A hand-built count set prices as expected: 10 flushes × C_io over
	// 10 txns = 1000 instr/txn async.
	per, sync, async, err := MeasuredOverhead(p, Counts{
		TxnsCommitted:   10,
		SegmentsFlushed: 10,
		Algorithm:       FastFuzzy,
		StableTail:      true,
		Full:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sync != 0 || async != p.CIO || per != p.CIO {
		t.Errorf("priced %f/%f/%f, want 0/%f/%f", sync, async, per, p.CIO, p.CIO)
	}
}
