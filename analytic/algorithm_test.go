package analytic

import (
	"strings"
	"testing"
)

// TestAlgorithmStringParseRoundTrip: every algorithm's paper name parses
// back to itself, case-insensitively.
func TestAlgorithmStringParseRoundTrip(t *testing.T) {
	for _, a := range Algorithms {
		name := a.String()
		got, err := Parse(name)
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
			continue
		}
		if got != a {
			t.Errorf("Parse(%q) = %v, want %v", name, got, a)
		}
		if got, err := Parse(strings.ToLower(name)); err != nil || got != a {
			t.Errorf("Parse(%q) = %v, %v; want %v", strings.ToLower(name), got, err, a)
		}
	}
}

// TestParseUnknownListsValidNames: the error for a bad name enumerates
// every valid algorithm so callers can self-correct.
func TestParseUnknownListsValidNames(t *testing.T) {
	_, err := Parse("LAZYCOPY")
	if err == nil {
		t.Fatal("Parse of unknown name succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"LAZYCOPY"`) {
		t.Errorf("error %q does not quote the bad name", msg)
	}
	for _, a := range Algorithms {
		if !strings.Contains(msg, a.String()) {
			t.Errorf("error %q does not list %v", msg, a)
		}
	}
}
