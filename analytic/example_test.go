package analytic_test

import (
	"fmt"
	"log"

	"mmdb/analytic"
)

// ExampleEvaluate reproduces one Figure 4a point: COUCOPY at the paper's
// defaults with checkpoints taken as quickly as possible.
func ExampleEvaluate() {
	p := analytic.DefaultParams()
	r, err := analytic.Evaluate(p, analytic.Options{Algorithm: analytic.COUCopy})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint duration: %.1f s\n", r.DurationSeconds)
	fmt.Printf("overhead: %.0f instructions/txn\n", r.OverheadPerTxn)
	fmt.Printf("recovery: %.1f s\n", r.RecoverySeconds)
	// Output:
	// checkpoint duration: 89.4 s
	// overhead: 3534 instructions/txn
	// recovery: 93.2 s
}

// ExampleFigure4a regenerates the headline comparison.
func ExampleFigure4a() {
	fig, err := analytic.Figure4a(analytic.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range fig.Series {
		fmt.Printf("%-10s %6.0f instr/txn\n", s.Name, s.Points[0].Result.OverheadPerTxn)
	}
	// Output:
	// FUZZYCOPY    3513 instr/txn
	// 2CFLUSH     15039 instr/txn
	// 2CCOPY      18078 instr/txn
	// COUFLUSH     3311 instr/txn
	// COUCOPY      3534 instr/txn
}
