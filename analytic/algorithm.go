package analytic

import (
	"fmt"
	"strings"
)

// Algorithm identifies one of the checkpoint algorithms of Section 3 of
// the paper. The analytic model evaluates each algorithm from a small set
// of structural properties (does it copy segments, lock them, need LSN
// checks, abort transactions, quiesce the system).
type Algorithm int

// The paper's checkpoint algorithms. Values parallel the engine's
// internal enumeration; mmdb.Algorithm aliases this type.
const (
	// FuzzyCopy is FUZZYCOPY: fuzzy checkpointing through a main-memory
	// I/O buffer with LSN synchronization against the log.
	FuzzyCopy Algorithm = iota + 1
	// FastFuzzy is FASTFUZZY: direct fuzzy flushes, requiring a stable
	// log tail (Section 4).
	FastFuzzy
	// TwoColorFlush is 2CFLUSH: Pu's black/white algorithm, flushing
	// segments while locked.
	TwoColorFlush
	// TwoColorCopy is 2CCOPY: Pu's algorithm, copying under the lock and
	// flushing after release.
	TwoColorCopy
	// COUFlush is COUFLUSH: copy-on-update with locked direct flushes.
	COUFlush
	// COUCopy is COUCOPY: copy-on-update flushing through a buffer.
	COUCopy
	// Zigzag is ZIGZAG (Cao et al.): two full database images with a
	// per-segment flip bit; the first updater of each segment per
	// checkpoint copies it onto the shadow image, preserving the
	// begin-state snapshot without allocation.
	Zigzag
	// Hourglass is HOURGLASS (Cao et al.): windowed copy-on-update —
	// old versions live in a fixed pool of W preallocated segment
	// buffers, bounding snapshot memory where COU is unbounded.
	Hourglass
)

// Algorithms lists the algorithms in the paper's presentation order,
// followed by the two post-paper extensions.
var Algorithms = []Algorithm{FuzzyCopy, FastFuzzy, TwoColorFlush, TwoColorCopy, COUFlush, COUCopy, Zigzag, Hourglass}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case FuzzyCopy:
		return "FUZZYCOPY"
	case FastFuzzy:
		return "FASTFUZZY"
	case TwoColorFlush:
		return "2CFLUSH"
	case TwoColorCopy:
		return "2CCOPY"
	case COUFlush:
		return "COUFLUSH"
	case COUCopy:
		return "COUCOPY"
	case Zigzag:
		return "ZIGZAG"
	case Hourglass:
		return "HOURGLASS"
	default:
		return fmt.Sprintf("analytic.Algorithm(%d)", int(a))
	}
}

// Parse resolves a case-insensitive paper name to an Algorithm. The
// error for an unknown name lists every valid one.
func Parse(name string) (Algorithm, error) {
	for _, a := range Algorithms {
		if strings.EqualFold(name, a.String()) {
			return a, nil
		}
	}
	valid := make([]string, len(Algorithms))
	for i, a := range Algorithms {
		valid[i] = a.String()
	}
	return 0, fmt.Errorf("analytic: unknown algorithm %q (valid: %s)", name, strings.Join(valid, ", "))
}

// Valid reports whether a names a known algorithm.
func (a Algorithm) Valid() bool { return a >= FuzzyCopy && a <= Hourglass }

// TwoColor reports whether the algorithm aborts transactions under the
// black/white rule.
func (a Algorithm) TwoColor() bool { return a == TwoColorFlush || a == TwoColorCopy }

// CopyOnUpdate reports whether transactions preserve old segment versions.
func (a Algorithm) CopyOnUpdate() bool { return a == COUFlush || a == COUCopy }

// Fuzzy reports whether the backup produced is fuzzy.
func (a Algorithm) Fuzzy() bool { return a == FuzzyCopy || a == FastFuzzy }

// CopiesSegments reports whether the checkpointer moves each flushed
// segment through a main-memory buffer (the S_seg data-movement cost).
func (a Algorithm) CopiesSegments() bool {
	return a == FuzzyCopy || a == TwoColorCopy || a == COUCopy
}

// UsesLSN reports whether the algorithm synchronizes with the log through
// log sequence numbers (dropped when the log tail is stable).
func (a Algorithm) UsesLSN() bool {
	return a == FuzzyCopy || a == TwoColorFlush || a == TwoColorCopy
}

// LocksSegments reports whether the checkpointer locks each segment as it
// processes it (two-color, COU, and the quiesce-family extensions; fuzzy
// checkpoints need "little or no synchronization").
func (a Algorithm) LocksSegments() bool {
	return a.TwoColor() || a.CopyOnUpdate() || a == Zigzag || a == Hourglass
}

// RequiresStableTail reports whether the algorithm is only correct with a
// stable log tail.
func (a Algorithm) RequiresStableTail() bool { return a == FastFuzzy }

// RequiresQuiesce reports whether checkpoint begin quiesces transaction
// processing (COU, Zigzag, Hourglass share the begin protocol: stop
// writers, stamp τ, flush the begin record). They also share its model
// consequence: per-update timestamp maintenance while idle plus the
// begin-quiesce latency, priced like COU's.
func (a Algorithm) RequiresQuiesce() bool {
	return a.CopyOnUpdate() || a == Zigzag || a == Hourglass
}

// PreservesOldVersions reports whether updaters preserve pre-checkpoint
// segment versions for the checkpointer (COU's unbounded heap copies or
// hourglass's bounded window).
func (a Algorithm) PreservesOldVersions() bool {
	return a.CopyOnUpdate() || a == Hourglass
}
