package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
)

// Injected fault errors. ErrInjectedCrash marks the simulated system
// failure (everything after it fails until recovery); ErrInjectedIO is a
// transient device error the engine is expected to survive.
var (
	ErrInjectedCrash = errors.New("faultfs: injected crash")
	ErrInjectedIO    = errors.New("faultfs: injected I/O error")
)

// Op is a mutating filesystem operation the injector can intercept.
type Op uint8

// Intercepted operations.
const (
	OpWrite Op = iota
	OpSync
	OpRename
	OpTruncate
)

// String implements fmt.Stringer.
//
// alloc:allowed(the Sprintf arm handles only an out-of-range Op value; named ops return static strings)
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("faultfs.Op(%d)", uint8(o))
	}
}

// Point is a named crash point: one (file class, operation) pair on the
// engine's write path, or an engine-level hook point (PointCheckpointSeg).
// Rules are armed against points, and hit counts are kept per point.
type Point string

// Engine-level hook points (reported via Injector.Hook rather than
// observed at the filesystem layer).
const (
	// PointCheckpointSeg fires after the checkpointer secures each
	// segment, between segment flushes (wired through the engine's
	// SegmentHook).
	PointCheckpointSeg Point = "checkpoint.segment"
)

// PointCheckpointSegWorker returns the per-worker crash point
// "checkpoint.segment.worker<i>": hit each time parallel checkpoint
// worker i finishes a segment. Tests arm it to crash inside a specific
// worker of the pool; the generic PointCheckpointSeg still counts every
// hit regardless of worker.
func PointCheckpointSegWorker(worker int) Point {
	return Point(fmt.Sprintf("%s.worker%d", PointCheckpointSeg, worker))
}

// PointAt returns the canonical crash-point name for an operation on a
// file class: "wal.write", "wal.sync", "backup.write", "backup.sync",
// "backup.meta.write", "backup.meta.rename", and so on.
//
// alloc:allowed(point names are built only under an armed fault injector — a test-only harness, never wrapped around production files)
func PointAt(class Class, op Op) Point {
	var prefix string
	switch class {
	case ClassLog:
		prefix = "wal"
	case ClassBackupCopy:
		prefix = "backup"
	case ClassBackupMeta:
		prefix = "backup.meta"
	default:
		prefix = "other"
	}
	return Point(prefix + "." + op.String())
}

// Kind selects what a triggered rule does.
type Kind uint8

// Fault kinds.
const (
	// Crash halts the injector before the operation takes effect: the
	// operation fails with ErrInjectedCrash and nothing reaches disk.
	Crash Kind = iota
	// Torn applies to writes: a seeded-PRNG-chosen prefix of the write,
	// truncated to a sector boundary, reaches disk (optionally with the
	// final sector corrupted) and then the injector halts. On non-write
	// operations Torn degrades to Crash.
	Torn
	// ErrIO fails the operation with ErrInjectedIO without halting; the
	// system keeps running and is expected to recover on its own.
	ErrIO
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Torn:
		return "torn"
	case ErrIO:
		return "ioerr"
	default:
		return fmt.Sprintf("faultfs.Kind(%d)", uint8(k))
	}
}

// Rule arms one fault at one crash point.
type Rule struct {
	// Point is the crash point the rule watches.
	Point Point
	// Kind is the fault to inject.
	Kind Kind
	// AtHit triggers the fault on the AtHit-th hit of Point (1-based).
	AtHit uint64
	// Times extends ErrIO faults to that many consecutive hits
	// (defaulting to 1). Crash and Torn always fire once.
	Times uint64
}

// SectorBytes is the torn-write granularity: a crashed device is assumed
// to persist whole sectors of an in-flight write, never partial ones.
const SectorBytes = 512

// Fired describes a rule that has triggered.
type Fired struct {
	Rule Rule
	// Hit is the hit count at which the rule fired (== Rule.AtHit for
	// the first firing).
	Hit uint64
	// TornBytes is the prefix length that reached disk for Torn faults.
	TornBytes int
	// Corrupted reports whether the torn write's last persisted sector
	// was additionally corrupted.
	Corrupted bool
}

// Injector decides, deterministically from its seed, which operations
// fail and how. It is safe for concurrent use; hit counts at a point are
// assigned in operation order, which for the engine's write path is
// deterministic per point (commits hit wal.*, the checkpointer hits
// backup.* and checkpoint.segment).
type Injector struct {
	mu   sync.Mutex // lockorder:level=80
	seed int64
	// rng drives torn-write shapes. guarded_by:mu
	rng *rand.Rand
	// rules holds the armed rules. guarded_by:mu
	rules []Rule
	// hits counts hits per point. guarded_by:mu
	hits map[Point]uint64
	// halted is the fail-stop state. guarded_by:mu
	halted bool
	// exempt marks classes whose mutations survive the halt (stable
	// RAM). guarded_by:mu
	exempt map[Class]bool
	// fired records triggered rules in order. guarded_by:mu
	fired []Fired
}

// New returns an injector whose random choices derive from seed.
func New(seed int64) *Injector {
	return &Injector{
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)), //nolint:gosec // deterministic replay is the point
		hits:   make(map[Point]uint64),
		exempt: make(map[Class]bool),
	}
}

// Seed returns the injector's seed, for failure reports.
func (inj *Injector) Seed() int64 { return inj.seed }

// Arm adds a rule.
//
// lockorder:acquires Injector.mu
// lockorder:releases Injector.mu
func (inj *Injector) Arm(r Rule) {
	if r.Times == 0 {
		r.Times = 1
	}
	inj.mu.Lock()
	inj.rules = append(inj.rules, r)
	inj.mu.Unlock()
}

// ExemptOnHalt marks a file class as surviving the halt: its mutations
// keep succeeding after a crash fault fires. Used to model the paper's
// stable log tail (stable RAM is not lost in a system failure).
//
// lockorder:acquires Injector.mu
// lockorder:releases Injector.mu
func (inj *Injector) ExemptOnHalt(c Class) {
	inj.mu.Lock()
	inj.exempt[c] = true
	inj.mu.Unlock()
}

// Halted reports whether a crash fault has fired.
//
// lockorder:acquires Injector.mu
// lockorder:releases Injector.mu
func (inj *Injector) Halted() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.halted
}

// FiredRules returns the rules that have triggered, in firing order.
//
// lockorder:acquires Injector.mu
// lockorder:releases Injector.mu
func (inj *Injector) FiredRules() []Fired {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]Fired, len(inj.fired))
	copy(out, inj.fired)
	return out
}

// Hits returns the number of times point has been hit.
//
// lockorder:acquires Injector.mu
// lockorder:releases Injector.mu
func (inj *Injector) Hits(p Point) uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.hits[p]
}

// action is the injector's decision for one operation.
type action struct {
	// err, when non-nil, fails the operation. For torn writes the
	// prefix below is persisted first.
	err error
	// tornBytes is the write prefix to persist before failing (torn
	// writes only; -1 means "not a torn write").
	tornBytes int
	// corrupt flips bytes in the final persisted sector.
	corrupt bool
}

// decide registers one hit of (class, op) covering n payload bytes and
// returns what to do. Halted-state checks come first: after a crash, a
// mutation on a non-exempt class fails without counting as a hit (the
// machine is off; there is no schedule left to advance).
//
// lockorder:acquires Injector.mu
// lockorder:releases Injector.mu
func (inj *Injector) decide(class Class, op Op, n int) action {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.halted {
		if inj.exempt[class] {
			return action{tornBytes: -1}
		}
		return action{err: ErrInjectedCrash, tornBytes: -1}
	}
	p := PointAt(class, op)
	return inj.hitLocked(p, op, n)
}

// hitLocked advances the hit counter for p and applies the first
// matching rule.
//
// alloc:allowed(a rule fires at most Times per armed fault — a test-only event, never steady state)
//
// lockcheck:held inj.mu
func (inj *Injector) hitLocked(p Point, op Op, n int) action {
	inj.hits[p]++
	hit := inj.hits[p]
	for _, r := range inj.rules {
		if r.Point != p || hit < r.AtHit || hit >= r.AtHit+r.Times {
			continue
		}
		switch {
		case r.Kind == ErrIO:
			inj.fired = append(inj.fired, Fired{Rule: r, Hit: hit})
			return action{err: ErrInjectedIO, tornBytes: -1}
		case r.Kind == Torn && op == OpWrite && n > 0:
			// Persist a sector-aligned prefix; half the time, corrupt
			// the last persisted sector too.
			sectors := n / SectorBytes
			torn := 0
			if sectors > 0 {
				torn = inj.rng.Intn(sectors+1) * SectorBytes
			}
			corrupt := torn > 0 && inj.rng.Intn(2) == 1
			inj.halted = true
			inj.fired = append(inj.fired, Fired{Rule: r, Hit: hit, TornBytes: torn, Corrupted: corrupt})
			return action{err: ErrInjectedCrash, tornBytes: torn, corrupt: corrupt}
		default: // Crash (and Torn degrading on non-writes)
			inj.halted = true
			inj.fired = append(inj.fired, Fired{Rule: r, Hit: hit})
			return action{err: ErrInjectedCrash, tornBytes: -1}
		}
	}
	return action{tornBytes: -1}
}

// Hook reports one hit of an engine-level point (e.g. PointCheckpointSeg)
// and returns the injected error, if any. It honors the halted state like
// any other mutation.
//
// lockorder:acquires Injector.mu
// lockorder:releases Injector.mu
func (inj *Injector) Hook(p Point) error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.halted {
		return ErrInjectedCrash
	}
	return inj.hitLocked(p, OpWrite, 0).err
}

// FS wraps base (the OS when nil) with this injector.
func (inj *Injector) FS(base FS) FS {
	return &injFS{inj: inj, base: Or(base)}
}

// injFS routes mutations through the injector.
type injFS struct {
	inj  *Injector
	base FS
}

func (f *injFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: f.inj, base: file, class: Classify(name)}, nil
}

func (f *injFS) Rename(oldpath, newpath string) error {
	// The destination names the role: renaming backup.meta.tmp over
	// backup.meta is the metadata commit point.
	if act := f.inj.decide(Classify(newpath), OpRename, 0); act.err != nil {
		return act.err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *injFS) Remove(name string) error {
	if act := f.inj.decide(Classify(name), OpTruncate, 0); act.err != nil {
		return act.err
	}
	return f.base.Remove(name)
}

func (f *injFS) MkdirAll(dir string, perm os.FileMode) error { return f.base.MkdirAll(dir, perm) }

func (f *injFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }

func (f *injFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	act := f.inj.decide(Classify(name), OpWrite, len(data))
	if act.err == nil {
		return f.base.WriteFile(name, data, perm)
	}
	if act.tornBytes >= 0 {
		werr := f.base.WriteFile(name, tornPrefix(data, act), perm)
		if werr != nil {
			return werr
		}
	}
	return act.err
}

func (f *injFS) Truncate(name string, size int64) error {
	if act := f.inj.decide(Classify(name), OpTruncate, 0); act.err != nil {
		return act.err
	}
	return f.base.Truncate(name, size)
}

func (f *injFS) SyncDir(dir string) error {
	if act := f.inj.decide(ClassOther, OpSync, 0); act.err != nil {
		return act.err
	}
	return f.base.SyncDir(dir)
}

// tornPrefix returns the persisted prefix of a torn write, applying the
// sector corruption the decision asked for.
//
// alloc:allowed(runs only when a torn-write fault fires; the injected-fault path is not a hot path)
func tornPrefix(p []byte, act action) []byte {
	out := make([]byte, act.tornBytes)
	copy(out, p[:act.tornBytes])
	if act.corrupt {
		// Invert a byte in the last persisted sector: a checksum-visible
		// scribble, deterministic given the decision.
		i := act.tornBytes - SectorBytes/2
		if i < 0 {
			i = 0
		}
		out[i] = ^out[i]
	}
	return out
}

// injFile routes file mutations through the injector. Reads pass through.
type injFile struct {
	inj   *Injector
	base  File
	class Class
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) { return f.base.ReadAt(p, off) }

func (f *injFile) Stat() (os.FileInfo, error) { return f.base.Stat() }

func (f *injFile) Close() error { return f.base.Close() }

func (f *injFile) WriteAt(p []byte, off int64) (int, error) {
	act := f.inj.decide(f.class, OpWrite, len(p))
	if act.err == nil {
		return f.base.WriteAt(p, off)
	}
	if act.tornBytes >= 0 {
		if n, werr := f.base.WriteAt(tornPrefix(p, act), off); werr != nil {
			return n, werr
		}
	}
	return 0, act.err
}

func (f *injFile) Write(p []byte) (int, error) {
	// Sequential writes are used only for the log-compaction temporary;
	// treat them like WriteAt for injection purposes. A torn sequential
	// write persists its prefix at the current offset.
	act := f.inj.decide(f.class, OpWrite, len(p))
	if act.err == nil {
		return f.base.Write(p)
	}
	if act.tornBytes >= 0 {
		if n, werr := f.base.Write(tornPrefix(p, act)); werr != nil {
			return n, werr
		}
	}
	return 0, act.err
}

func (f *injFile) Sync() error {
	if act := f.inj.decide(f.class, OpSync, 0); act.err != nil {
		return act.err
	}
	return f.base.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if act := f.inj.decide(f.class, OpTruncate, 0); act.err != nil {
		return act.err
	}
	return f.base.Truncate(size)
}
