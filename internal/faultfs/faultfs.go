// Package faultfs is a deterministic fault-injection layer under the
// storage write path (the redo log and the ping-pong backup files). It
// has two halves:
//
//   - A minimal filesystem abstraction (FS, File) that the wal and backup
//     packages write through. The default implementation (OS) is a direct
//     passthrough to the os package and costs one interface dispatch.
//
//   - An Injector (inject.go) that wraps any FS and injects failures at
//     named crash points: whole-system crashes, torn writes that truncate
//     or corrupt the tail sector of one write, and transient I/O errors.
//     Schedules are driven by a seeded PRNG, so every failure replays
//     from its seed.
//
// The crash model is fail-stop: once a crash fault fires, the injector
// "halts" — every subsequent mutating operation fails without touching
// disk, exactly as if the machine lost power — and the test harness
// recovers from whatever reached the disk before the halt. A class of
// files can be exempted from the halt to model stable RAM (the paper's
// stable log tail, Section 4): its writes keep succeeding because the
// memory they model survives the crash.
package faultfs

import (
	"io"
	"os"
	"path/filepath"
	"strings"
)

// File is the subset of *os.File the engine's write path needs.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	io.Closer
	Stat() (os.FileInfo, error)
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem surface the wal and backup packages write through.
// All paths are host paths, as with the os package.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadFile returns the contents of name.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to name, creating or truncating it.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// Truncate resizes the file at name.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory entry metadata of dir (best effort).
	SyncDir(dir string) error
}

// osFS is the passthrough implementation.
type osFS struct{}

// OS returns the direct passthrough FS backed by the os package.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Or returns fsys if non-nil and the OS passthrough otherwise — the
// idiom packages use to default an optional FS parameter.
func Or(fsys FS) FS {
	if fsys != nil {
		return fsys
	}
	return OS()
}

// Class groups files by their role in the engine's on-disk layout, so
// injection rules and halt exemptions can target the log, the backup
// copies, or the backup metadata independently.
type Class uint8

// File classes.
const (
	// ClassOther is any file the classifier does not recognize.
	ClassOther Class = iota
	// ClassLog is the redo log (and its compaction temporary).
	ClassLog
	// ClassBackupCopy is a ping-pong backup database copy.
	ClassBackupCopy
	// ClassBackupMeta is the backup checkpoint metadata (and its
	// write-temp).
	ClassBackupMeta
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassLog:
		return "log"
	case ClassBackupCopy:
		return "backup-copy"
	case ClassBackupMeta:
		return "backup-meta"
	default:
		return "other"
	}
}

// Classify maps a path onto its file class using the engine's on-disk
// naming scheme (redo.log, backup0.db/backup1.db, backup.meta and their
// temporaries).
func Classify(name string) Class {
	base := filepath.Base(name)
	switch {
	case base == "redo.log" || base == "redo.log.compact":
		return ClassLog
	case base == "backup.meta" || base == "backup.meta.tmp":
		return ClassBackupMeta
	case strings.HasPrefix(base, "backup") && strings.HasSuffix(base, ".db"):
		return ClassBackupCopy
	default:
		return ClassOther
	}
}
