package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		want Class
	}{
		{"/db/redo.log", ClassLog},
		{"/db/redo.log.compact", ClassLog},
		{"/db/backup0.db", ClassBackupCopy},
		{"/db/backup1.db", ClassBackupCopy},
		{"/db/backup.meta", ClassBackupMeta},
		{"/db/backup.meta.tmp", ClassBackupMeta},
		{"/db/notes.txt", ClassOther},
		{"/db/back", ClassOther},
		{"/db/backup", ClassOther},
		{"backup.db", ClassBackupCopy},
	}
	for _, c := range cases {
		if got := Classify(c.name); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	name := filepath.Join(dir, "f")
	if err := fsys.WriteFile(name, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(name)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	f, err := fsys.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("H"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
}

// TestCrashHalts checks the fail-stop model: the armed write fails, and
// every later mutation on any class fails too, without touching disk.
func TestCrashHalts(t *testing.T) {
	dir := t.TempDir()
	inj := New(1)
	inj.Arm(Rule{Point: "wal.write", Kind: Crash, AtHit: 2})
	fsys := inj.FS(nil)
	log := filepath.Join(dir, "redo.log")
	f, err := fsys.OpenFile(log, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("first"), 0); err != nil {
		t.Fatalf("hit 1 should pass: %v", err)
	}
	if _, err := f.WriteAt([]byte("second"), 5); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("hit 2 = %v, want ErrInjectedCrash", err)
	}
	if !inj.Halted() {
		t.Fatal("injector not halted after crash fault")
	}
	// Every subsequent mutation fails, on every class.
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("post-halt write = %v", err)
	}
	if err := fsys.WriteFile(filepath.Join(dir, "backup.meta.tmp"), []byte("{}"), 0o644); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("post-halt meta write = %v", err)
	}
	if err := fsys.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("post-halt rename = %v", err)
	}
	// Reads still work (recovery will need them).
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "first" {
		t.Fatalf("post-halt read = %q, %v", buf, err)
	}
	// Nothing past the first write reached disk.
	fi, err := os.Stat(log)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 5 {
		t.Fatalf("file size %d after halt, want 5", fi.Size())
	}
}

func TestExemptOnHalt(t *testing.T) {
	dir := t.TempDir()
	inj := New(1)
	inj.Arm(Rule{Point: "backup.write", Kind: Crash, AtHit: 1})
	inj.ExemptOnHalt(ClassLog)
	fsys := inj.FS(nil)
	bk, err := fsys.OpenFile(filepath.Join(dir, "backup0.db"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := fsys.OpenFile(filepath.Join(dir, "redo.log"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bk.WriteAt([]byte("seg"), 0); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("backup write = %v, want crash", err)
	}
	// The exempt class (stable RAM) keeps writing after the halt.
	if _, err := lg.WriteAt([]byte("rec"), 0); err != nil {
		t.Fatalf("exempt log write after halt: %v", err)
	}
	if err := lg.Sync(); err != nil {
		t.Fatalf("exempt log sync after halt: %v", err)
	}
}

// TestTornWriteShape checks that a torn write persists a sector-aligned
// prefix and then halts, and that the shape is reproducible from the seed.
func TestTornWriteShape(t *testing.T) {
	shape := func(seed int64) (int, bool, []byte) {
		dir := t.TempDir()
		inj := New(seed)
		inj.Arm(Rule{Point: "wal.write", Kind: Torn, AtHit: 1})
		fsys := inj.FS(nil)
		f, err := fsys.OpenFile(filepath.Join(dir, "redo.log"), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 4*SectorBytes+100)
		for i := range payload {
			payload[i] = byte(i)
		}
		if _, err := f.WriteAt(payload, 0); !errors.Is(err, ErrInjectedCrash) {
			t.Fatalf("torn write = %v, want ErrInjectedCrash", err)
		}
		if !inj.Halted() {
			t.Fatal("not halted after torn write")
		}
		fired := inj.FiredRules()
		if len(fired) != 1 {
			t.Fatalf("fired %d rules, want 1", len(fired))
		}
		got, err := os.ReadFile(filepath.Join(dir, "redo.log"))
		if err != nil {
			t.Fatal(err)
		}
		fr := fired[0]
		if len(got) != fr.TornBytes {
			t.Fatalf("persisted %d bytes, Fired says %d", len(got), fr.TornBytes)
		}
		if fr.TornBytes%SectorBytes != 0 {
			t.Fatalf("torn prefix %d not sector-aligned", fr.TornBytes)
		}
		if fr.TornBytes > len(payload) {
			t.Fatalf("torn prefix %d longer than write %d", fr.TornBytes, len(payload))
		}
		if !fr.Corrupted && !bytes.Equal(got, payload[:fr.TornBytes]) {
			t.Fatal("uncorrupted torn prefix differs from the original data")
		}
		if fr.Corrupted && bytes.Equal(got, payload[:fr.TornBytes]) {
			t.Fatal("corrupted torn prefix identical to the original data")
		}
		return fr.TornBytes, fr.Corrupted, got
	}
	// Replaying the same seed reproduces the same torn shape and bytes.
	n1, c1, b1 := shape(42)
	n2, c2, b2 := shape(42)
	if n1 != n2 || c1 != c2 || !bytes.Equal(b1, b2) {
		t.Fatalf("seed 42 not reproducible: (%d,%v) vs (%d,%v)", n1, c1, n2, c2)
	}
}

func TestErrIOIsTransient(t *testing.T) {
	dir := t.TempDir()
	inj := New(1)
	inj.Arm(Rule{Point: "wal.write", Kind: ErrIO, AtHit: 2, Times: 2})
	fsys := inj.FS(nil)
	f, err := fsys.OpenFile(filepath.Join(dir, "redo.log"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("a"), 0); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.WriteAt([]byte("b"), 1); !errors.Is(err, ErrInjectedIO) {
			t.Fatalf("hit %d = %v, want ErrInjectedIO", 2+i, err)
		}
	}
	if _, err := f.WriteAt([]byte("c"), 1); err != nil {
		t.Fatalf("after the rule expires: %v", err)
	}
	if inj.Halted() {
		t.Fatal("ErrIO must not halt the injector")
	}
	if got := inj.Hits("wal.write"); got != 4 {
		t.Fatalf("hits = %d, want 4", got)
	}
}

func TestHookPoint(t *testing.T) {
	inj := New(1)
	inj.Arm(Rule{Point: PointCheckpointSeg, Kind: Crash, AtHit: 3})
	for i := 1; i <= 2; i++ {
		if err := inj.Hook(PointCheckpointSeg); err != nil {
			t.Fatalf("hook hit %d: %v", i, err)
		}
	}
	if err := inj.Hook(PointCheckpointSeg); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("hook hit 3 = %v, want crash", err)
	}
	if err := inj.Hook(PointCheckpointSeg); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("post-halt hook = %v, want crash", err)
	}
}
