package backup

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

const (
	testSegs     = 16
	testSegBytes = 128
)

func openTest(t *testing.T, dir string) *FileStore {
	t.Helper()
	s, err := Open(dir, testSegs, testSegBytes)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func segImage(fill byte) []byte {
	return bytes.Repeat([]byte{fill}, testSegBytes)
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(t.TempDir(), 0, 128); err == nil {
		t.Error("zero segments should fail")
	}
	if _, err := Open(t.TempDir(), 4, 0); err == nil {
		t.Error("zero segment size should fail")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir())
	defer s.Close()
	img := segImage(0x5A)
	if err := s.WriteSegment(0, 3, 1, img); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testSegBytes)
	wb, err := s.ReadSegment(0, 3, got)
	if err != nil {
		t.Fatal(err)
	}
	if wb != 1 {
		t.Errorf("writtenBy = %d, want 1", wb)
	}
	if !bytes.Equal(got, img) {
		t.Error("read-back mismatch")
	}
}

func TestUnwrittenSlotsReadAsZero(t *testing.T) {
	s := openTest(t, t.TempDir())
	defer s.Close()
	got := segImage(0xFF)
	wb, err := s.ReadSegment(1, 7, got)
	if err != nil {
		t.Fatal(err)
	}
	if wb != 0 {
		t.Errorf("unwritten slot writtenBy = %d, want 0", wb)
	}
	if !bytes.Equal(got, make([]byte, testSegBytes)) {
		t.Error("unwritten slot should read back as zeros")
	}
}

func TestCheckpointIDZeroRejected(t *testing.T) {
	s := openTest(t, t.TempDir())
	defer s.Close()
	if err := s.WriteSegment(0, 0, 0, segImage(1)); err == nil {
		t.Error("checkpoint ID 0 must be rejected (reserved for unwritten)")
	}
}

func TestBoundsChecking(t *testing.T) {
	s := openTest(t, t.TempDir())
	defer s.Close()
	img := segImage(1)
	if err := s.WriteSegment(2, 0, 1, img); err == nil {
		t.Error("copy out of range accepted")
	}
	if err := s.WriteSegment(0, testSegs, 1, img); err == nil {
		t.Error("segment out of range accepted")
	}
	if err := s.WriteSegment(0, 0, 1, img[:10]); err == nil {
		t.Error("short segment accepted")
	}
	buf := make([]byte, testSegBytes)
	if _, err := s.ReadSegment(-1, 0, buf); err == nil {
		t.Error("negative copy accepted")
	}
	if _, err := s.ReadSegment(0, -1, buf); err == nil {
		t.Error("negative segment accepted")
	}
	if _, err := s.ReadSegment(0, 0, buf[:5]); err == nil {
		t.Error("short read buffer accepted")
	}
}

func TestPingPongTargets(t *testing.T) {
	s := openTest(t, t.TempDir())
	defer s.Close()

	if got := s.NextTarget(); got != 0 {
		t.Errorf("first target = %d, want 0", got)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Latest on empty store: %v, want ErrNoCheckpoint", err)
	}

	// Checkpoint 1 → copy 0.
	if err := s.BeginCheckpoint(0, CheckpointInfo{ID: 1, Algorithm: "FUZZYCOPY"}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSegment(0, 0, 1, segImage(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishCheckpoint(0, 100, 1, testSegBytes); err != nil {
		t.Fatal(err)
	}
	copyIdx, info, err := s.Latest()
	if err != nil || copyIdx != 0 || info.ID != 1 {
		t.Fatalf("Latest = %d/%+v/%v, want copy 0 id 1", copyIdx, info, err)
	}
	if got := s.NextTarget(); got != 1 {
		t.Errorf("target after ckpt 1 = %d, want 1", got)
	}

	// Checkpoint 2 → copy 1.
	if err := s.BeginCheckpoint(1, CheckpointInfo{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishCheckpoint(1, 200, 0, 0); err != nil {
		t.Fatal(err)
	}
	copyIdx, info, _ = s.Latest()
	if copyIdx != 1 || info.ID != 2 {
		t.Errorf("Latest after ckpt 2 = copy %d id %d, want copy 1 id 2", copyIdx, info.ID)
	}
	if got := s.NextTarget(); got != 0 {
		t.Errorf("target after ckpt 2 = %d, want 0 (ping-pong)", got)
	}
}

func TestIncompleteCheckpointIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if err := s.BeginCheckpoint(0, CheckpointInfo{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishCheckpoint(0, 10, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Checkpoint 2 begins on copy 1 but never finishes (simulated crash).
	if err := s.BeginCheckpoint(1, CheckpointInfo{ID: 2}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openTest(t, dir)
	defer s2.Close()
	copyIdx, info, err := s2.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if copyIdx != 0 || info.ID != 1 {
		t.Errorf("after crash Latest = copy %d id %d, want the complete copy 0 id 1", copyIdx, info.ID)
	}
	// The incomplete copy is the next target again.
	if got := s2.NextTarget(); got != 1 {
		t.Errorf("NextTarget = %d, want 1 (retry incomplete copy)", got)
	}
}

func TestTornWriteDetected(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if err := s.WriteSegment(0, 2, 1, segImage(0x77)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt one byte in the middle of slot 2 of copy 0.
	path := filepath.Join(dir, "backup0.db")
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(2)*(testSegBytes+slotTrailerBytes) + 10
	if _, err := f.WriteAt([]byte{0x00}, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTest(t, dir)
	defer s2.Close()
	buf := make([]byte, testSegBytes)
	if _, err := s2.ReadSegment(0, 2, buf); !errors.Is(err, ErrBadSegment) {
		t.Errorf("corrupted slot read err = %v, want ErrBadSegment", err)
	}
}

func TestGeometryMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Close()
	if _, err := Open(dir, testSegs+1, testSegBytes); err == nil {
		t.Error("segment-count mismatch accepted")
	}
	if _, err := Open(dir, testSegs, testSegBytes*2); err == nil {
		t.Error("segment-size mismatch accepted")
	}
}

func TestReadAllAndVerify(t *testing.T) {
	s := openTest(t, t.TempDir())
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.WriteSegment(0, i*3, 4, segImage(byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	var seen []int
	err := s.ReadAll(0, func(idx int, wb uint64, data []byte) error {
		if wb != 0 {
			seen = append(seen, idx)
			if data[0] == 0 {
				t.Errorf("segment %d content zeroed", idx)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Errorf("ReadAll saw %d written slots, want 5", len(seen))
	}
	n, err := s.Verify(0)
	if err != nil || n != 5 {
		t.Errorf("Verify = %d/%v, want 5/nil", n, err)
	}
	if st := s.Stats(); st.SegmentWrites != 5 {
		t.Errorf("SegmentWrites = %d, want 5", st.SegmentWrites)
	}
}

func TestMetaSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if err := s.BeginCheckpoint(0, CheckpointInfo{
		ID: 7, Algorithm: "COUCOPY", Full: true, BeginLSN: 11, ScanStartLSN: 5, Timestamp: 99,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishCheckpoint(0, 321, 3, 384); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openTest(t, dir)
	defer s2.Close()
	_, info, err := s2.Latest()
	if err != nil {
		t.Fatal(err)
	}
	want := CheckpointInfo{
		ID: 7, Complete: true, Algorithm: "COUCOPY", Full: true,
		BeginLSN: 11, ScanStartLSN: 5, EndLSN: 321, Timestamp: 99,
		SegmentsWritten: 3, BytesWritten: 384,
	}
	if info != want {
		t.Errorf("reloaded info = %+v, want %+v", info, want)
	}
}
