// Package backup implements the secondary (disk-resident) database: two
// ping-pong backup copies of which only one is updated per checkpoint, so
// that a complete checkpoint always survives a crash in the middle of
// another (Section 2.6 of Salem & Garcia-Molina, "Checkpointing
// Memory-Resident Databases").
//
// Each copy is a file of fixed-size segment slots. A slot carries a
// checksum and the ID of the checkpoint that wrote it, so recovery detects
// torn segment writes. Checkpoint status lives in a small metadata file
// replaced atomically (write-temp-then-rename), which is the commit point
// of a checkpoint.
package backup

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"mmdb/internal/faultfs"
	"mmdb/internal/obs"
	"mmdb/internal/storage"
	"mmdb/internal/wal"
)

const (
	// slotTrailerBytes is the per-segment on-disk trailer:
	// crc32 (4) + reserved (4) + writing checkpoint ID (8).
	slotTrailerBytes = 16
	metaName         = "backup.meta"
	copyNameFmt      = "backup%d.db"
	metaVersion      = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadSegment reports a segment slot that failed checksum validation.
var ErrBadSegment = errors.New("backup: segment checksum mismatch (torn write)")

// ErrNoCheckpoint reports that no complete checkpoint exists yet.
var ErrNoCheckpoint = errors.New("backup: no complete checkpoint available")

// CheckpointInfo records the status of the checkpoint most recently taken
// (or underway) into one backup copy.
type CheckpointInfo struct {
	// ID is the checkpoint's monotonically increasing identifier.
	ID uint64 `json:"id"`
	// Complete marks a finished checkpoint; recovery only uses complete
	// copies. It is set by the atomic metadata replace that ends a
	// checkpoint.
	Complete bool `json:"complete"`
	// Algorithm names the checkpoint algorithm, for operators.
	Algorithm string `json:"algorithm"`
	// Full records whether this was a full (not partial) checkpoint.
	Full bool `json:"full"`
	// BeginLSN is the LSN of this checkpoint's begin-checkpoint marker.
	BeginLSN wal.LSN `json:"begin_lsn"`
	// ScanStartLSN is where the redo scan must start when recovering from
	// this checkpoint: min(BeginLSN, first LSN of any transaction active
	// at checkpoint begin). For fuzzy checkpoints this is the "scan
	// backwards even further" point of Section 3.3.
	ScanStartLSN wal.LSN `json:"scan_start_lsn"`
	// EndLSN is the log end when the checkpoint completed.
	EndLSN wal.LSN `json:"end_lsn"`
	// Timestamp is the checkpoint's logical timestamp (τ(CH) for COU).
	Timestamp uint64 `json:"timestamp"`
	// SegmentsWritten and BytesWritten describe the checkpoint's volume.
	SegmentsWritten int   `json:"segments_written"`
	BytesWritten    int64 `json:"bytes_written"`
}

type metaFile struct {
	Version      int                                     `json:"version"`
	NumSegments  int                                     `json:"num_segments"`
	SegmentBytes int                                     `json:"segment_bytes"`
	Copies       [storage.NumBackupCopies]CheckpointInfo `json:"copies"`
}

// FileStore is the file-backed Store: two backup copy files plus a
// metadata file in a directory, written through a faultfs.FS seam.
type FileStore struct {
	dir          string
	fsys         faultfs.FS
	numSegments  int
	segmentBytes int
	slotBytes    int
	files        [storage.NumBackupCopies]faultfs.File
	meta         metaFile

	// Counters for I/O accounting. Atomic: WriteSegment and ReadSegment
	// are called concurrently by parallel checkpoint workers and recovery
	// stripe readers (each on distinct segments/buffers).
	segWrites atomic.Uint64
	segReads  atomic.Uint64

	// segWriteH, when set, records per-segment write latency. Set once
	// via SetMetrics before the store is used concurrently.
	segWriteH *obs.Histogram
}

// SetMetrics installs the segment-write latency histogram. Call it after
// OpenFS and before the store is shared with the checkpointer.
func (s *FileStore) SetMetrics(segmentWriteSeconds *obs.Histogram) {
	s.segWriteH = segmentWriteSeconds
}

// Open creates or opens the backup store in dir for a database of
// numSegments segments of segmentBytes each. Existing metadata must match
// the geometry.
func Open(dir string, numSegments, segmentBytes int) (*FileStore, error) {
	return OpenFS(nil, dir, numSegments, segmentBytes)
}

// OpenFS is Open writing through fsys (nil means the OS directly); tests
// inject a faultfs.Injector here.
func OpenFS(fsys faultfs.FS, dir string, numSegments, segmentBytes int) (*FileStore, error) {
	if numSegments <= 0 || segmentBytes <= 0 {
		return nil, fmt.Errorf("backup: invalid geometry %d segments × %d bytes", numSegments, segmentBytes)
	}
	fsys = faultfs.Or(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("backup: mkdir: %w", err)
	}
	s := &FileStore{
		dir:          dir,
		fsys:         fsys,
		numSegments:  numSegments,
		segmentBytes: segmentBytes,
		slotBytes:    segmentBytes + slotTrailerBytes,
	}
	metaPath := filepath.Join(dir, metaName)
	if raw, err := fsys.ReadFile(metaPath); err == nil {
		if err := json.Unmarshal(raw, &s.meta); err != nil {
			return nil, fmt.Errorf("backup: corrupt metadata: %w", err)
		}
		if s.meta.Version != metaVersion {
			return nil, fmt.Errorf("backup: metadata version %d, want %d", s.meta.Version, metaVersion)
		}
		if s.meta.NumSegments != numSegments || s.meta.SegmentBytes != segmentBytes {
			return nil, fmt.Errorf("backup: geometry mismatch: meta %d×%d, want %d×%d",
				s.meta.NumSegments, s.meta.SegmentBytes, numSegments, segmentBytes)
		}
	} else if errors.Is(err, os.ErrNotExist) {
		s.meta = metaFile{Version: metaVersion, NumSegments: numSegments, SegmentBytes: segmentBytes}
		if err := s.writeMeta(); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("backup: read metadata: %w", err)
	}

	size := int64(numSegments) * int64(s.slotBytes)
	for c := 0; c < storage.NumBackupCopies; c++ {
		f, err := fsys.OpenFile(filepath.Join(dir, fmt.Sprintf(copyNameFmt, c)), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("backup: open copy %d: %w", c, err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			s.closeFiles()
			return nil, fmt.Errorf("backup: stat copy %d: %w", c, err)
		}
		if fi.Size() < size {
			// Extend sparsely; unwritten slots read as zeros with
			// checkpoint ID 0, meaning "never written".
			if err := f.Truncate(size); err != nil {
				f.Close()
				s.closeFiles()
				return nil, fmt.Errorf("backup: size copy %d: %w", c, err)
			}
		}
		s.files[c] = f
	}
	return s, nil
}

func (s *FileStore) closeFiles() {
	for _, f := range s.files {
		if f != nil {
			f.Close()
		}
	}
}

// Close releases the store.
func (s *FileStore) Close() error {
	var err error
	for _, f := range s.files {
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// writeMeta atomically replaces the metadata file.
func (s *FileStore) writeMeta() error {
	raw, err := json.MarshalIndent(&s.meta, "", "  ")
	if err != nil {
		return fmt.Errorf("backup: marshal metadata: %w", err)
	}
	tmp := filepath.Join(s.dir, metaName+".tmp")
	if err := s.fsys.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("backup: write metadata: %w", err)
	}
	if err := s.fsys.Rename(tmp, filepath.Join(s.dir, metaName)); err != nil {
		return fmt.Errorf("backup: replace metadata: %w", err)
	}
	_ = s.fsys.SyncDir(s.dir)
	return nil
}

// NextTarget returns the ping-pong copy the next checkpoint should write:
// successive checkpoints alternate, so the copy holding the older (or no)
// complete checkpoint is the target.
func (s *FileStore) NextTarget() int {
	a, b := s.meta.Copies[0], s.meta.Copies[1]
	switch {
	case !a.Complete:
		return 0
	case !b.Complete:
		return 1
	case a.ID < b.ID:
		return 0
	default:
		return 1
	}
}

// Latest returns the most recent complete checkpoint and its copy index.
func (s *FileStore) Latest() (copyIdx int, info CheckpointInfo, err error) {
	best := -1
	for c := 0; c < storage.NumBackupCopies; c++ {
		ci := s.meta.Copies[c]
		if ci.Complete && (best < 0 || ci.ID > s.meta.Copies[best].ID) {
			best = c
		}
	}
	if best < 0 {
		return 0, CheckpointInfo{}, ErrNoCheckpoint
	}
	return best, s.meta.Copies[best], nil
}

// CopyInfo returns the checkpoint status of one copy.
func (s *FileStore) CopyInfo(copyIdx int) CheckpointInfo { return s.meta.Copies[copyIdx] }

// BeginCheckpoint marks copyIdx as being overwritten by the checkpoint
// described in info (Complete is forced false) and persists the metadata.
// After a crash mid-checkpoint the copy is ignored by recovery.
func (s *FileStore) BeginCheckpoint(copyIdx int, info CheckpointInfo) error {
	if copyIdx < 0 || copyIdx >= storage.NumBackupCopies {
		return fmt.Errorf("backup: copy %d out of range", copyIdx)
	}
	info.Complete = false
	s.meta.Copies[copyIdx] = info
	return s.writeMeta()
}

// WriteSegment writes the image of segment idx (exactly segmentBytes long)
// into copyIdx, stamped with the writing checkpoint's ID.
//
// walorder:write
func (s *FileStore) WriteSegment(copyIdx, idx int, checkpointID uint64, data []byte) error {
	if copyIdx < 0 || copyIdx >= storage.NumBackupCopies {
		return fmt.Errorf("backup: copy %d out of range", copyIdx)
	}
	if idx < 0 || idx >= s.numSegments {
		return fmt.Errorf("backup: segment %d out of range [0,%d)", idx, s.numSegments)
	}
	if len(data) != s.segmentBytes {
		return fmt.Errorf("backup: segment %d write size %d, want %d", idx, len(data), s.segmentBytes)
	}
	if checkpointID == 0 {
		return errors.New("backup: checkpoint ID 0 is reserved for unwritten slots")
	}
	buf := make([]byte, s.slotBytes)
	copy(buf, data)
	binary.LittleEndian.PutUint32(buf[s.segmentBytes:], crc32.Checksum(data, crcTable))
	binary.LittleEndian.PutUint64(buf[s.segmentBytes+8:], checkpointID)
	var began time.Time
	if s.segWriteH != nil {
		began = time.Now()
	}
	if _, err := s.files[copyIdx].WriteAt(buf, int64(idx)*int64(s.slotBytes)); err != nil {
		return fmt.Errorf("backup: write segment %d copy %d: %w", idx, copyIdx, err)
	}
	if !began.IsZero() {
		s.segWriteH.ObserveSince(began)
	}
	s.segWrites.Add(1)
	return nil
}

// FinishCheckpoint durably completes the checkpoint on copyIdx: the data
// file is synced, then the metadata flips Complete — the checkpoint's
// atomic commit point.
func (s *FileStore) FinishCheckpoint(copyIdx int, endLSN wal.LSN, segmentsWritten int, bytesWritten int64) error {
	if copyIdx < 0 || copyIdx >= storage.NumBackupCopies {
		return fmt.Errorf("backup: copy %d out of range", copyIdx)
	}
	if err := s.files[copyIdx].Sync(); err != nil {
		return fmt.Errorf("backup: sync copy %d: %w", copyIdx, err)
	}
	ci := s.meta.Copies[copyIdx]
	ci.Complete = true
	ci.EndLSN = endLSN
	ci.SegmentsWritten = segmentsWritten
	ci.BytesWritten = bytesWritten
	s.meta.Copies[copyIdx] = ci
	return s.writeMeta()
}

// ReadSegment reads segment idx of copyIdx into dst (segmentBytes long).
// It returns the ID of the checkpoint that wrote the slot; 0 means the
// slot was never written and dst is zero-filled (the initial database
// state).
func (s *FileStore) ReadSegment(copyIdx, idx int, dst []byte) (writtenBy uint64, err error) {
	if copyIdx < 0 || copyIdx >= storage.NumBackupCopies {
		return 0, fmt.Errorf("backup: copy %d out of range", copyIdx)
	}
	if idx < 0 || idx >= s.numSegments {
		return 0, fmt.Errorf("backup: segment %d out of range [0,%d)", idx, s.numSegments)
	}
	if len(dst) != s.segmentBytes {
		return 0, fmt.Errorf("backup: segment %d read size %d, want %d", idx, len(dst), s.segmentBytes)
	}
	buf := make([]byte, s.slotBytes)
	if _, err := s.files[copyIdx].ReadAt(buf, int64(idx)*int64(s.slotBytes)); err != nil {
		return 0, fmt.Errorf("backup: read segment %d copy %d: %w", idx, copyIdx, err)
	}
	writtenBy = binary.LittleEndian.Uint64(buf[s.segmentBytes+8:])
	if writtenBy == 0 {
		for i := range dst {
			dst[i] = 0
		}
		s.segReads.Add(1)
		return 0, nil
	}
	if crc32.Checksum(buf[:s.segmentBytes], crcTable) != binary.LittleEndian.Uint32(buf[s.segmentBytes:]) {
		return writtenBy, fmt.Errorf("%w: segment %d copy %d", ErrBadSegment, idx, copyIdx)
	}
	copy(dst, buf[:s.segmentBytes])
	s.segReads.Add(1)
	return writtenBy, nil
}

// ReadAll streams every segment of copyIdx through fn in index order,
// re-using one buffer. fn must not retain data.
func (s *FileStore) ReadAll(copyIdx int, fn func(idx int, writtenBy uint64, data []byte) error) error {
	buf := make([]byte, s.segmentBytes)
	for i := 0; i < s.numSegments; i++ {
		writtenBy, err := s.ReadSegment(copyIdx, i, buf)
		if err != nil {
			return err
		}
		if err := fn(i, writtenBy, buf); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks every written slot of copyIdx against its checksum and
// returns the number of valid written slots.
func (s *FileStore) Verify(copyIdx int) (written int, err error) {
	err = s.ReadAll(copyIdx, func(_ int, writtenBy uint64, _ []byte) error {
		if writtenBy != 0 {
			written++
		}
		return nil
	})
	return written, err
}

// Stats reports I/O counters.
type Stats struct {
	SegmentWrites uint64
	SegmentReads  uint64
}

// Stats returns a snapshot of I/O counters.
func (s *FileStore) Stats() Stats {
	return Stats{SegmentWrites: s.segWrites.Load(), SegmentReads: s.segReads.Load()}
}

// NumSegments returns the configured segment count.
func (s *FileStore) NumSegments() int { return s.numSegments }

// SegmentBytes returns the configured segment size.
func (s *FileStore) SegmentBytes() int { return s.segmentBytes }
