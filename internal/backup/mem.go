package backup

import (
	"fmt"
	"hash/crc32"
	"sync"

	"mmdb/internal/obs"
	"mmdb/internal/storage"
	"mmdb/internal/wal"
)

// MemStore is an in-memory Store: the shape of a remote backup backend
// (an object store, a replica) reduced to a map. It exists to prove the
// pluggable backup seam — the engine's checkpointers and recovery run
// against it unchanged — and as the test double for future backends.
//
// Durability model: the store's contents survive Close (a remote
// backend does not lose data when the database process dies), so a
// MemStore held across an engine Crash/Recover cycle plays the role of
// the surviving disk. Torn-write detection is modeled with the same
// per-slot checksum the file store uses.
type MemStore struct {
	numSegments  int
	segmentBytes int

	mu sync.RWMutex // lockorder:level=85
	// copies[c][idx] is the slot for segment idx of ping-pong copy c;
	// a nil slot was never written. guarded_by:mu
	copies [storage.NumBackupCopies][]*memSlot
	// meta mirrors the file store's metadata file. guarded_by:mu
	meta [storage.NumBackupCopies]CheckpointInfo

	// segWriteH, when set, records per-segment write latency.
	segWriteH *obs.Histogram

	statsMu sync.Mutex // lockorder:level=86
	// stats counts segment I/O. guarded_by:statsMu
	stats Stats
}

type memSlot struct {
	data      []byte
	crc       uint32
	writtenBy uint64
}

// NewMemStore creates an empty in-memory backup store with the given
// geometry.
func NewMemStore(numSegments, segmentBytes int) (*MemStore, error) {
	if numSegments <= 0 || segmentBytes <= 0 {
		return nil, fmt.Errorf("backup: invalid geometry %d segments × %d bytes", numSegments, segmentBytes)
	}
	var copies [storage.NumBackupCopies][]*memSlot
	for c := range copies {
		copies[c] = make([]*memSlot, numSegments)
	}
	return &MemStore{numSegments: numSegments, segmentBytes: segmentBytes, copies: copies}, nil
}

// SetMetrics installs the segment-write latency histogram.
func (s *MemStore) SetMetrics(segmentWriteSeconds *obs.Histogram) {
	s.segWriteH = segmentWriteSeconds
}

// NextTarget returns the ping-pong copy the next checkpoint overwrites.
//
// lockorder:acquires MemStore.mu
// lockorder:releases MemStore.mu
func (s *MemStore) NextTarget() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, b := s.meta[0], s.meta[1]
	switch {
	case !a.Complete:
		return 0
	case !b.Complete:
		return 1
	case a.ID < b.ID:
		return 0
	default:
		return 1
	}
}

// Latest returns the most recent complete checkpoint and its copy.
//
// lockorder:acquires MemStore.mu
// lockorder:releases MemStore.mu
func (s *MemStore) Latest() (copyIdx int, info CheckpointInfo, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	best := -1
	for c := 0; c < storage.NumBackupCopies; c++ {
		ci := s.meta[c]
		if ci.Complete && (best < 0 || ci.ID > s.meta[best].ID) {
			best = c
		}
	}
	if best < 0 {
		return 0, CheckpointInfo{}, ErrNoCheckpoint
	}
	return best, s.meta[best], nil
}

// CopyInfo returns the checkpoint status of one copy.
//
// lockorder:acquires MemStore.mu
// lockorder:releases MemStore.mu
func (s *MemStore) CopyInfo(copyIdx int) CheckpointInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.meta[copyIdx]
}

// BeginCheckpoint marks copyIdx incomplete with the starting info.
//
// lockorder:acquires MemStore.mu
// lockorder:releases MemStore.mu
func (s *MemStore) BeginCheckpoint(copyIdx int, info CheckpointInfo) error {
	if copyIdx < 0 || copyIdx >= storage.NumBackupCopies {
		return fmt.Errorf("backup: copy %d out of range", copyIdx)
	}
	info.Complete = false
	s.mu.Lock()
	s.meta[copyIdx] = info
	s.mu.Unlock()
	return nil
}

// WriteSegment stores the image of segment idx into copyIdx.
//
// walorder:write
//
// lockorder:acquires MemStore.mu
// lockorder:releases MemStore.mu
func (s *MemStore) WriteSegment(copyIdx, idx int, checkpointID uint64, data []byte) error {
	if copyIdx < 0 || copyIdx >= storage.NumBackupCopies {
		return fmt.Errorf("backup: copy %d out of range", copyIdx)
	}
	if idx < 0 || idx >= s.numSegments {
		return fmt.Errorf("backup: segment %d out of range [0,%d)", idx, s.numSegments)
	}
	if len(data) != s.segmentBytes {
		return fmt.Errorf("backup: segment %d write size %d, want %d", idx, len(data), s.segmentBytes)
	}
	if checkpointID == 0 {
		return fmt.Errorf("backup: checkpoint ID 0 is reserved for unwritten slots")
	}
	slot := &memSlot{
		data:      append([]byte(nil), data...),
		crc:       crc32.Checksum(data, crcTable),
		writtenBy: checkpointID,
	}
	s.mu.Lock()
	s.copies[copyIdx][idx] = slot
	s.mu.Unlock()
	s.statsMu.Lock()
	s.stats.SegmentWrites++
	s.statsMu.Unlock()
	return nil
}

// FinishCheckpoint flips the copy's Complete flag — the commit point.
//
// lockorder:acquires MemStore.mu
// lockorder:releases MemStore.mu
func (s *MemStore) FinishCheckpoint(copyIdx int, endLSN wal.LSN, segmentsWritten int, bytesWritten int64) error {
	if copyIdx < 0 || copyIdx >= storage.NumBackupCopies {
		return fmt.Errorf("backup: copy %d out of range", copyIdx)
	}
	s.mu.Lock()
	ci := s.meta[copyIdx]
	ci.Complete = true
	ci.EndLSN = endLSN
	ci.SegmentsWritten = segmentsWritten
	ci.BytesWritten = bytesWritten
	s.meta[copyIdx] = ci
	s.mu.Unlock()
	return nil
}

// ReadSegment reads segment idx of copyIdx into dst.
//
// lockorder:acquires MemStore.mu
// lockorder:releases MemStore.mu
func (s *MemStore) ReadSegment(copyIdx, idx int, dst []byte) (writtenBy uint64, err error) {
	if copyIdx < 0 || copyIdx >= storage.NumBackupCopies {
		return 0, fmt.Errorf("backup: copy %d out of range", copyIdx)
	}
	if idx < 0 || idx >= s.numSegments {
		return 0, fmt.Errorf("backup: segment %d out of range [0,%d)", idx, s.numSegments)
	}
	if len(dst) != s.segmentBytes {
		return 0, fmt.Errorf("backup: segment %d read size %d, want %d", idx, len(dst), s.segmentBytes)
	}
	s.mu.RLock()
	slot := s.copies[copyIdx][idx]
	s.mu.RUnlock()
	if slot == nil {
		for i := range dst {
			dst[i] = 0
		}
		s.bumpReads()
		return 0, nil
	}
	if crc32.Checksum(slot.data, crcTable) != slot.crc {
		return slot.writtenBy, fmt.Errorf("%w: segment %d copy %d", ErrBadSegment, idx, copyIdx)
	}
	copy(dst, slot.data)
	s.bumpReads()
	return slot.writtenBy, nil
}

// lockorder:acquires MemStore.statsMu
// lockorder:releases MemStore.statsMu
func (s *MemStore) bumpReads() {
	s.statsMu.Lock()
	s.stats.SegmentReads++
	s.statsMu.Unlock()
}

// ReadAll streams every segment of copyIdx through fn in index order.
func (s *MemStore) ReadAll(copyIdx int, fn func(idx int, writtenBy uint64, data []byte) error) error {
	buf := make([]byte, s.segmentBytes)
	for i := 0; i < s.numSegments; i++ {
		writtenBy, err := s.ReadSegment(copyIdx, i, buf)
		if err != nil {
			return err
		}
		if err := fn(i, writtenBy, buf); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks every written slot of copyIdx.
func (s *MemStore) Verify(copyIdx int) (written int, err error) {
	err = s.ReadAll(copyIdx, func(_ int, writtenBy uint64, _ []byte) error {
		if writtenBy != 0 {
			written++
		}
		return nil
	})
	return written, err
}

// Stats returns a snapshot of I/O counters.
//
// lockorder:acquires MemStore.statsMu
// lockorder:releases MemStore.statsMu
func (s *MemStore) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// NumSegments returns the configured segment count.
func (s *MemStore) NumSegments() int { return s.numSegments }

// SegmentBytes returns the configured segment size.
func (s *MemStore) SegmentBytes() int { return s.segmentBytes }

// Close is a no-op: a remote backend's data survives the process.
func (s *MemStore) Close() error { return nil }
