package backup

import (
	"bytes"
	"errors"
	"testing"
)

func TestMemStoreGeometryValidation(t *testing.T) {
	if _, err := NewMemStore(0, 64); err == nil {
		t.Error("NewMemStore(0, 64) succeeded, want error")
	}
	if _, err := NewMemStore(4, 0); err == nil {
		t.Error("NewMemStore(4, 0) succeeded, want error")
	}
	s, err := NewMemStore(4, 64)
	if err != nil {
		t.Fatalf("NewMemStore: %v", err)
	}
	if s.NumSegments() != 4 || s.SegmentBytes() != 64 {
		t.Errorf("geometry = %d×%d, want 4×64", s.NumSegments(), s.SegmentBytes())
	}
}

func TestMemStorePingPong(t *testing.T) {
	s, err := NewMemStore(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("fresh Latest err = %v, want ErrNoCheckpoint", err)
	}
	if got := s.NextTarget(); got != 0 {
		t.Fatalf("fresh NextTarget = %d, want 0", got)
	}

	seg := make([]byte, 16)
	ckpt := func(copyIdx int, id uint64) {
		t.Helper()
		if err := s.BeginCheckpoint(copyIdx, CheckpointInfo{ID: id}); err != nil {
			t.Fatalf("BeginCheckpoint(%d, %d): %v", copyIdx, id, err)
		}
		// Mid-checkpoint the copy must not be offered to recovery.
		if ci := s.CopyInfo(copyIdx); ci.Complete {
			t.Fatalf("copy %d Complete mid-checkpoint", copyIdx)
		}
		for i := 0; i < 2; i++ {
			if err := s.WriteSegment(copyIdx, i, id, seg); err != nil {
				t.Fatalf("WriteSegment: %v", err)
			}
		}
		if err := s.FinishCheckpoint(copyIdx, 0, 2, 32); err != nil {
			t.Fatalf("FinishCheckpoint: %v", err)
		}
	}

	ckpt(0, 1)
	if c, ci, err := s.Latest(); err != nil || c != 0 || ci.ID != 1 {
		t.Fatalf("Latest = copy %d id %d err %v, want copy 0 id 1", c, ci.ID, err)
	}
	if got := s.NextTarget(); got != 1 {
		t.Fatalf("NextTarget after ckpt 1 = %d, want 1", got)
	}

	ckpt(1, 2)
	if c, ci, err := s.Latest(); err != nil || c != 1 || ci.ID != 2 {
		t.Fatalf("Latest = copy %d id %d err %v, want copy 1 id 2", c, ci.ID, err)
	}
	// The older copy is the next overwrite target.
	if got := s.NextTarget(); got != 0 {
		t.Fatalf("NextTarget after ckpt 2 = %d, want 0", got)
	}
}

func TestMemStoreSegmentRoundTrip(t *testing.T) {
	s, err := NewMemStore(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := s.WriteSegment(0, 1, 7, data); err != nil {
		t.Fatalf("WriteSegment: %v", err)
	}

	dst := make([]byte, 8)
	wb, err := s.ReadSegment(0, 1, dst)
	if err != nil || wb != 7 || !bytes.Equal(dst, data) {
		t.Fatalf("ReadSegment = id %d data %v err %v, want id 7 data %v", wb, dst, err, data)
	}

	// Unwritten slot: writtenBy 0, dst zero-filled.
	copy(dst, data)
	wb, err = s.ReadSegment(0, 2, dst)
	if err != nil || wb != 0 {
		t.Fatalf("unwritten ReadSegment = id %d err %v, want id 0", wb, err)
	}
	if !bytes.Equal(dst, make([]byte, 8)) {
		t.Fatalf("unwritten slot dst = %v, want zeros", dst)
	}

	// Contract violations all error.
	if err := s.WriteSegment(0, 1, 0, data); err == nil {
		t.Error("WriteSegment with checkpoint ID 0 succeeded")
	}
	if err := s.WriteSegment(0, 1, 7, data[:4]); err == nil {
		t.Error("short WriteSegment succeeded")
	}
	if err := s.WriteSegment(0, 3, 7, data); err == nil {
		t.Error("out-of-range WriteSegment succeeded")
	}
	if err := s.WriteSegment(2, 0, 7, data); err == nil {
		t.Error("out-of-range copy WriteSegment succeeded")
	}
	if _, err := s.ReadSegment(0, 0, dst[:4]); err == nil {
		t.Error("short ReadSegment succeeded")
	}

	// The store holds its own copy: mutating the caller's buffer after
	// the write must not change what is stored.
	data[0] = 99
	if wb, err := s.ReadSegment(0, 1, dst); err != nil || wb != 7 || dst[0] != 1 {
		t.Fatalf("stored data aliased the caller's buffer: %v", dst)
	}

	if st := s.Stats(); st.SegmentWrites != 1 {
		t.Errorf("SegmentWrites = %d, want 1", st.SegmentWrites)
	}
}

func TestMemStoreTornWriteDetection(t *testing.T) {
	s, err := NewMemStore(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := s.WriteSegment(0, 0, 1, data); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored bytes behind the checksum's back — the shape of
	// a torn write on a real device.
	s.copies[0][0].data[3] ^= 0xff
	dst := make([]byte, 8)
	if _, err := s.ReadSegment(0, 0, dst); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("torn ReadSegment err = %v, want ErrBadSegment", err)
	}
}

func TestMemStoreSurvivesClose(t *testing.T) {
	s, err := NewMemStore(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	if err := s.BeginCheckpoint(0, CheckpointInfo{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSegment(0, 0, 1, data); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishCheckpoint(0, 0, 1, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A durable backend keeps its data across Close: recovery reopens
	// the store after a crash and must still find the checkpoint.
	if c, ci, err := s.Latest(); err != nil || c != 0 || ci.ID != 1 {
		t.Fatalf("Latest after Close = copy %d id %d err %v", c, ci.ID, err)
	}
	dst := make([]byte, 8)
	if wb, err := s.ReadSegment(0, 0, dst); err != nil || wb != 1 || !bytes.Equal(dst, data) {
		t.Fatalf("ReadSegment after Close = id %d data %v err %v", wb, dst, err)
	}
	if n, err := s.Verify(0); err != nil || n != 1 {
		t.Fatalf("Verify after Close = %d, %v, want 1 written slot", n, err)
	}
}
