package backup

import (
	"mmdb/internal/obs"
	"mmdb/internal/wal"
)

// Store is the pluggable backup-store seam: everything the engine's
// checkpointers and recovery need from the secondary (disk-resident)
// database, abstracted away from the file-backed implementation so a
// shard, an object store, or a remote replica can stand behind it
// without touching the checkpoint algorithms (ROADMAP item 5).
//
// Semantics every implementation must honor:
//
//   - Two ping-pong copies (storage.NumBackupCopies), addressed by copy
//     index; BeginCheckpoint durably clears a copy's Complete flag
//     before any of its segments are overwritten, and FinishCheckpoint
//     durably sets it after the data is stable — the checkpoint's
//     atomic commit point.
//   - WriteSegment stamps the writing checkpoint's ID; ReadSegment
//     returns it (0 = never written, dst zero-filled) and detects torn
//     writes (ErrBadSegment).
//   - WriteSegment and ReadSegment are called concurrently by parallel
//     checkpoint workers and recovery stripe readers, each on distinct
//     segments and buffers; implementations must support that.
type Store interface {
	// SetMetrics installs the per-segment write-latency histogram (may
	// be a no-op). Called once, before the store is shared.
	SetMetrics(segmentWriteSeconds *obs.Histogram)

	// NextTarget returns the ping-pong copy the next checkpoint should
	// overwrite (the one holding the older, or no, complete checkpoint).
	NextTarget() int
	// Latest returns the most recent complete checkpoint and its copy,
	// or ErrNoCheckpoint.
	Latest() (copyIdx int, info CheckpointInfo, err error)
	// CopyInfo returns the checkpoint status of one copy.
	CopyInfo(copyIdx int) CheckpointInfo

	// BeginCheckpoint durably marks copyIdx incomplete and records the
	// starting checkpoint info.
	BeginCheckpoint(copyIdx int, info CheckpointInfo) error
	// WriteSegment writes segment idx (exactly SegmentBytes long) into
	// copyIdx, stamped with the writing checkpoint's ID (never 0).
	WriteSegment(copyIdx, idx int, checkpointID uint64, data []byte) error
	// FinishCheckpoint makes the copy's data durable and flips its
	// Complete flag — the checkpoint's commit point.
	FinishCheckpoint(copyIdx int, endLSN wal.LSN, segmentsWritten int, bytesWritten int64) error

	// ReadSegment reads segment idx of copyIdx into dst (SegmentBytes
	// long), returning the writing checkpoint's ID (0 = unwritten,
	// dst zero-filled).
	ReadSegment(copyIdx, idx int, dst []byte) (writtenBy uint64, err error)
	// ReadAll streams every segment of copyIdx through fn in index
	// order, reusing one buffer; fn must not retain data.
	ReadAll(copyIdx int, fn func(idx int, writtenBy uint64, data []byte) error) error
	// Verify checks every written slot of copyIdx and returns the
	// number of valid written slots.
	Verify(copyIdx int) (written int, err error)

	// Stats reports I/O counters.
	Stats() Stats
	// NumSegments and SegmentBytes echo the configured geometry.
	NumSegments() int
	SegmentBytes() int
	// Close releases the store. For durable backends the backup data
	// must survive Close (recovery reopens the store after a crash).
	Close() error
}

// The two Store implementations.
var (
	_ Store = (*FileStore)(nil)
	_ Store = (*MemStore)(nil)
)
