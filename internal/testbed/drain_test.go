package testbed

import (
	"runtime"
	"testing"
	"time"

	"mmdb"
	"mmdb/internal/faultfs"
)

// TestRunCrashJoinsCheckpointGoroutine pins the harness's own join
// discipline (the property goleakcheck enforces statically on crash.go):
// every path out of RunCrash — including the injected-crash exits while
// a checkpoint goroutine is in flight — drains ckptDone, so repeated
// runs leave no goroutines behind.
func TestRunCrashJoinsCheckpointGoroutine(t *testing.T) {
	base := runtime.NumGoroutine()
	for seed := int64(1); seed <= 4; seed++ {
		s := CrashScenario{
			Algorithm: mmdb.FuzzyCopy,
			Point:     faultfs.PointCheckpointSeg,
			Kind:      faultfs.Crash,
			Seed:      seed,
			Dir:       t.TempDir(),
		}
		if _, err := RunCrash(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// Timer and test goroutines make the count fuzzy; what must not
	// happen is linear growth with the number of runs.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 4 crash runs: a checkpoint goroutine leaked", base, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
