package testbed

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mmdb"
	"mmdb/internal/backup"
	"mmdb/internal/faultfs"
)

// matrixCell is one (crash point, fault kind) combination of the matrix.
type matrixCell struct {
	point faultfs.Point
	kind  faultfs.Kind
}

// matrixCells covers every named crash point on the write path, with torn
// writes where the operation carries a payload and transient I/O errors on
// the two hottest points.
func matrixCells(short bool) []matrixCell {
	cells := []matrixCell{
		{"wal.write", faultfs.Crash},
		{"wal.sync", faultfs.Crash},
		{"wal.rename", faultfs.Crash},
		{"backup.write", faultfs.Crash},
		{"backup.sync", faultfs.Crash},
		{"backup.meta.write", faultfs.Crash},
		{"backup.meta.rename", faultfs.Crash},
		{faultfs.PointCheckpointSeg, faultfs.Crash},
		{"wal.write", faultfs.Torn},
		{"backup.write", faultfs.Torn},
	}
	if !short {
		cells = append(cells,
			matrixCell{"backup.meta.write", faultfs.Torn},
			matrixCell{"wal.write", faultfs.ErrIO},
			matrixCell{"backup.write", faultfs.ErrIO},
			matrixCell{"backup.sync", faultfs.ErrIO},
		)
	}
	return cells
}

// crashMatrixSeeds returns the seeds each cell runs with.
func crashMatrixSeeds(short bool) []int64 {
	if short {
		return []int64{1}
	}
	return []int64{1, 2, 3}
}

// TestCrashMatrix is the standing correctness gate: every checkpoint
// algorithm × every named crash point must recover to the committed-
// transaction oracle. Each cell prints its seed on failure; re-run a
// single cell with -run 'TestCrashMatrix/<name>'.
func TestCrashMatrix(t *testing.T) {
	for _, alg := range mmdb.Algorithms {
		for _, cell := range matrixCells(testing.Short()) {
			if alg == mmdb.FastFuzzy && (cell.point == "wal.write" || cell.point == "wal.sync" || cell.point == "wal.rename") {
				// FASTFUZZY models a stable log tail: log writes survive
				// the crash by definition, so wal faults cannot fire
				// meaningfully (the class is halt-exempt).
				continue
			}
			for _, seed := range crashMatrixSeeds(testing.Short()) {
				name := fmt.Sprintf("%v/%s/%v/seed%d", alg, cell.point, cell.kind, seed)
				alg, cell, seed := alg, cell, seed
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					rep, err := RunCrash(CrashScenario{
						Algorithm: alg,
						Point:     cell.point,
						Kind:      cell.kind,
						Seed:      seed,
						Dir:       t.TempDir(),
					})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if cell.kind != faultfs.ErrIO && !rep.Crashed {
						t.Fatalf("seed %d: fault never fired", seed)
					}
					t.Logf("seed %d: acked=%d inDoubt=%d recoveredWithInDoubt=%v fired=%+v torn=%dB",
						seed, rep.Acked, rep.InDoubt, rep.RecoveredWithInDoubt,
						rep.Fired, rep.Recovery.TornTailBytes)
				})
			}
		}
	}
}

// TestCrashGenesis crashes the very first write to a fresh database (the
// log file header) and checks that recovery yields the empty database.
func TestCrashGenesis(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(7)
	inj.Arm(faultfs.Rule{Point: "wal.write", Kind: faultfs.Crash, AtHit: 1})
	cfg := mmdb.Config{
		Dir: dir, NumRecords: 64, RecordBytes: 32,
		Algorithm: mmdb.FuzzyCopy, SyncCommit: true,
		FS: inj.FS(nil),
	}
	if _, err := mmdb.Open(cfg); !errors.Is(err, faultfs.ErrInjectedCrash) {
		t.Fatalf("Open = %v, want ErrInjectedCrash", err)
	}
	rcfg := cfg
	rcfg.FS = nil
	db, rep, err := mmdb.Recover(rcfg)
	if err != nil {
		t.Fatalf("genesis recovery: %v", err)
	}
	defer db.Close()
	if rep.UsedCheckpoint || rep.UpdatesApplied != 0 {
		t.Fatalf("genesis recovery applied state: %+v", rep)
	}
	got, err := db.ReadRecord(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("genesis recovery produced non-zero records")
		}
	}
}

// TestCrashGenesisTornHeader simulates a sub-sector torn header write — a
// log file shorter than its header — and checks recovery treats it as the
// empty log (regression for the ErrBadHeader recovery path).
func TestCrashGenesisTornHeader(t *testing.T) {
	dir := t.TempDir()
	// Fresh metadata with no complete checkpoint, as a crashed Open
	// leaves it.
	bs, err := backup.Open(dir, 1, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "redo.log"), []byte("MMDBWAL1")[:8], 0o644); err != nil {
		t.Fatal(err)
	}
	db, rep, err := mmdb.Recover(mmdb.Config{
		Dir: dir, NumRecords: 64, RecordBytes: 32,
		Algorithm: mmdb.FuzzyCopy,
	})
	if err != nil {
		t.Fatalf("torn-header recovery: %v", err)
	}
	defer db.Close()
	if rep.UsedCheckpoint || rep.RecordsScanned != 0 {
		t.Fatalf("torn-header recovery scanned state: %+v", rep)
	}
	// The reset log must accept new work.
	if err := db.Exec(func(tx *mmdb.Txn) error { return tx.Write(1, []byte("x")) }); err != nil {
		t.Fatal(err)
	}
}

// TestCrashTransientIOResolvesInDoubt drives the in-doubt commit path
// directly: a single transient flush failure leaves one commit in doubt,
// and the next successful commit confirms it durable.
func TestCrashTransientIOResolvesInDoubt(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(11)
	// Hit 1 is the header; hit 2 is the first commit's flush.
	inj.Arm(faultfs.Rule{Point: "wal.write", Kind: faultfs.ErrIO, AtHit: 2})
	cfg := mmdb.Config{
		Dir: dir, NumRecords: 64, RecordBytes: 32,
		Algorithm: mmdb.FuzzyCopy, SyncCommit: true,
		FS: inj.FS(nil),
	}
	db, err := mmdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(3, []byte("doubtful")); err != nil {
		t.Fatal(err)
	}
	cerr := tx.Commit()
	if !errors.Is(cerr, mmdb.ErrCommitInDoubt) || !errors.Is(cerr, faultfs.ErrInjectedIO) {
		t.Fatalf("Commit = %v, want ErrCommitInDoubt wrapping ErrInjectedIO", cerr)
	}
	// The in-doubt transaction must be installed in memory (it may prove
	// durable), not rolled back.
	got, err := db.ReadRecord(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) != "doubtful" {
		t.Fatalf("in-doubt txn not installed: %q", got[:8])
	}
	// A following commit's successful flush covers the in-doubt record.
	if err := db.Exec(func(tx *mmdb.Txn) error { return tx.Write(4, []byte("confirm")) }); err != nil {
		t.Fatalf("confirming txn: %v", err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.FS = nil
	rdb, _, err := mmdb.Recover(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	for rid, want := range map[uint64]string{3: "doubtful", 4: "confirm"} {
		got, err := rdb.ReadRecord(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got[:len(want)]) != want {
			t.Fatalf("record %d = %q, want %q", rid, got[:len(want)], want)
		}
	}
}

// TestCommitInDoubtNoAbortRecord is the regression test for the phantom-
// commit bug: Commit used to append an abort record when the durability
// wait failed, after the commit record was already in the log. If the
// commit record was in fact durable, recovery replayed the transaction
// while the engine had rolled it back — memory and disk diverged.
func TestCommitInDoubtNoAbortRecord(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(13)
	inj.Arm(faultfs.Rule{Point: "wal.write", Kind: faultfs.ErrIO, AtHit: 2})
	cfg := mmdb.Config{
		Dir: dir, NumRecords: 64, RecordBytes: 32,
		Algorithm: mmdb.FuzzyCopy, SyncCommit: true,
		FS: inj.FS(nil),
	}
	db, err := mmdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(5, []byte("phantom")); err != nil {
		t.Fatal(err)
	}
	if cerr := tx.Commit(); !errors.Is(cerr, mmdb.ErrCommitInDoubt) {
		t.Fatalf("Commit = %v, want ErrCommitInDoubt", cerr)
	}
	// Close flushes the tail: commit record durable, and crucially no
	// abort record after it.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.FS = nil
	rdb, rep, err := mmdb.Recover(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if rep.TxnsReplayed != 1 {
		t.Fatalf("replayed %d txns, want 1 (the in-doubt commit)", rep.TxnsReplayed)
	}
	got, err := rdb.ReadRecord(5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:7]) != "phantom" {
		t.Fatalf("in-doubt committed txn lost: %q", got[:7])
	}
}
