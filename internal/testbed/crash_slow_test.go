//go:build slow

package testbed

import (
	"fmt"
	"testing"

	"mmdb"
	"mmdb/internal/faultfs"
)

// TestCrashMatrixSoak is the extended matrix behind -tags slow: every
// cell of the full matrix across many seeds and a longer workload, so
// fault hits land in rarer phases (deep into checkpoints, during log
// compaction, across several ping-pong generations). Run it with
//
//	go test -tags slow -run TestCrashMatrixSoak ./internal/testbed/
func TestCrashMatrixSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}
	for _, alg := range mmdb.Algorithms {
		for _, cell := range matrixCells(false) {
			if alg == mmdb.FastFuzzy && (cell.point == "wal.write" || cell.point == "wal.sync" || cell.point == "wal.rename") {
				continue
			}
			for seed := int64(100); seed < 120; seed++ {
				name := fmt.Sprintf("%v/%s/%v/seed%d", alg, cell.point, cell.kind, seed)
				alg, cell, seed := alg, cell, seed
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					rep, err := RunCrash(CrashScenario{
						Algorithm: alg,
						Point:     cell.point,
						Kind:      cell.kind,
						Seed:      seed,
						Dir:       t.TempDir(),
						Txns:      600,
						CkptEvery: 25,
					})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if cell.kind != faultfs.ErrIO && !rep.Crashed {
						t.Fatalf("seed %d: fault never fired", seed)
					}
				})
			}
		}
	}
}
