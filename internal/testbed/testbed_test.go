package testbed

import (
	"testing"

	"mmdb"
)

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{}.withDefaults()
	if s.Records == 0 || s.RecordBytes == 0 || s.SegmentBytes == 0 ||
		s.Lambda == 0 || s.UpdatesPerTxn == 0 || s.Txns == 0 || s.Writers == 0 || s.Speedup == 0 {
		t.Errorf("defaults not filled: %+v", s)
	}
}

func TestModelParamsMapping(t *testing.T) {
	s := Scenario{
		Records: 1 << 14, RecordBytes: 128, SegmentBytes: 32768,
		Lambda: 500, UpdatesPerTxn: 5, Speedup: 10,
	}
	p := s.ModelParams()
	if p.SDB != float64(1<<14*128)/4 {
		t.Errorf("SDB = %v", p.SDB)
	}
	if p.SSeg != 8192 || p.SRec != 32 {
		t.Errorf("SSeg/SRec = %v/%v", p.SSeg, p.SRec)
	}
	if p.TSeek != 0.003 {
		t.Errorf("TSeek = %v (speedup not applied)", p.TSeek)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("mapped params invalid: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Scenario{Algorithm: mmdb.FuzzyCopy, Txns: 2, Writers: 4}); err == nil {
		t.Error("txns < writers accepted")
	}
}

// TestRunAgreesLoosely executes a short scenario and requires the live
// measurements to land within a loose factor of the model's prediction —
// the smoke-test version of the paper's model-verification goal.
func TestRunAgreesLoosely(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock testbed run")
	}
	res, err := Run(Scenario{
		Algorithm:   mmdb.COUCopy,
		Records:     1 << 13, // 32 segments
		RecordBytes: 128,
		Lambda:      400,
		Txns:        600,
		Writers:     2,
		Speedup:     2,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, p := res.Measured, res.Predicted
	if m.Checkpoints == 0 || m.TPS <= 0 {
		t.Fatalf("no activity: %+v", m)
	}
	if p == nil || p.OverheadPerTxn <= 0 {
		t.Fatal("no prediction")
	}
	within := func(name string, got, want, factor float64) {
		if want == 0 {
			return
		}
		if got > want*factor || got < want/factor {
			t.Errorf("%s: measured %.4f vs model %.4f (beyond %.1fx)", name, got, want, factor)
		}
	}
	within("segments/ckpt", m.SegmentsPerCkpt, p.SegmentsPerCheckpoint, 3)
	within("active ckpt secs", m.ActiveCheckpointSecs, p.ActiveSeconds, 3)
	within("instr/txn", m.OverheadPerTxn, p.OverheadPerTxn, 3)
	if m.PRestart != 0 {
		t.Errorf("COUCOPY restarted transactions: %v", m.PRestart)
	}
	t.Logf("measured: %+v", m)
	t.Logf("model: active=%.4fs segs=%.1f instr=%.0f", p.ActiveSeconds, p.SegmentsPerCheckpoint, p.OverheadPerTxn)
}
