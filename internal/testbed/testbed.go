// Package testbed runs the paper's Section 5 promise: "a testbed with
// which we will be able to experimentally evaluate the algorithms
// presented here ... as well as to verify the processor overhead and
// recovery time models". It drives the real engine under a paced version
// of the paper's load model with checkpoint I/O throttled by the Table 2b
// disk model (scaled), measures checkpoint durations, restart
// probabilities and priced CPU overhead, and evaluates the analytic model
// at the equivalent scaled parameters for side-by-side comparison.
package testbed

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"mmdb"
	"mmdb/analytic"
	"mmdb/internal/simdisk"
	"mmdb/workload"
)

// Scenario describes one testbed cell: a scaled-down paper operating
// point mapped onto the live engine.
type Scenario struct {
	// Algorithm under test.
	Algorithm mmdb.Algorithm
	// Database geometry (bytes). SegmentBytes 0 defaults to 256 records.
	Records      int
	RecordBytes  int
	SegmentBytes int
	// Load: target arrival rate (transactions/second of wall time),
	// updates per transaction, total transactions, and concurrent writers.
	Lambda        float64
	UpdatesPerTxn int
	Txns          int
	Writers       int
	// Speedup divides the Table 2b disk-model delays used both to
	// throttle the engine's checkpoint writes and to scale the analytic
	// prediction, so modeled seconds equal wall seconds.
	Speedup float64
	// Seed controls the workload.
	Seed int64
	// Dir is the database directory (a temp dir when empty).
	Dir string
}

// withDefaults fills zero fields.
func (s Scenario) withDefaults() Scenario {
	if s.RecordBytes == 0 {
		s.RecordBytes = 128
	}
	if s.SegmentBytes == 0 {
		s.SegmentBytes = s.RecordBytes * 256
	}
	if s.Records == 0 {
		s.Records = 1 << 14
	}
	if s.Lambda == 0 {
		s.Lambda = 500
	}
	if s.UpdatesPerTxn == 0 {
		s.UpdatesPerTxn = 5
	}
	if s.Txns == 0 {
		s.Txns = 2000
	}
	if s.Writers == 0 {
		s.Writers = 4
	}
	if s.Speedup == 0 {
		// Unscaled Table 2b timings: ~2.7 ms per flushed segment, which
		// dwarfs the local fsync fixed costs, keeps the scaled system deep
		// in the paper's bandwidth-limited regime, and makes the modeled
		// active time directly comparable to the measured one.
		s.Speedup = 1
	}
	return s
}

// Measured holds live-engine measurements.
type Measured struct {
	WallSeconds     float64
	TPS             float64
	PRestart        float64
	Checkpoints     uint64
	SegmentsPerCkpt float64
	// MeanCheckpointSecs is the raw mean checkpoint duration;
	// FixedCheckpointSecs is the calibrated per-checkpoint fixed cost
	// (metadata writes, file syncs) measured with one empty checkpoint,
	// and ActiveCheckpointSecs = mean − fixed is the throttle-governed
	// part comparable to the model's active time.
	MeanCheckpointSecs   float64
	FixedCheckpointSecs  float64
	ActiveCheckpointSecs float64
	OverheadPerTxn       float64 // priced with Table 2a costs
	COUCopies            uint64
}

// Result pairs measurements with the model's prediction at the scaled
// parameters.
type Result struct {
	Scenario  Scenario
	Measured  Measured
	Predicted *analytic.Result
}

// ModelParams maps the scenario onto analytic parameters: sizes in words,
// the disk model divided by Speedup (so predicted seconds are wall
// seconds), and the instruction costs from Table 2a unchanged.
func (s Scenario) ModelParams() analytic.Params {
	p := analytic.DefaultParams()
	p.SDB = float64(s.Records*s.RecordBytes) / simdisk.WordBytes
	p.SRec = float64(s.RecordBytes) / simdisk.WordBytes
	p.SSeg = float64(s.SegmentBytes) / simdisk.WordBytes
	p.Lambda = s.Lambda
	p.NRU = float64(s.UpdatesPerTxn)
	p.TSeek /= s.Speedup
	p.TTrans /= s.Speedup
	p.MinCheckpointSeconds = 1e-3
	return p
}

// Run executes one scenario.
func Run(s Scenario) (res *Result, err error) {
	s = s.withDefaults()
	if s.Writers < 1 || s.Txns < s.Writers {
		return nil, errors.New("testbed: need at least one writer and one transaction per writer")
	}
	dir := s.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "mmdb-testbed-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	cfg := mmdb.Config{
		Dir:                  dir,
		NumRecords:           s.Records,
		RecordBytes:          s.RecordBytes,
		SegmentBytes:         s.SegmentBytes,
		Algorithm:            s.Algorithm,
		StableLogTail:        s.Algorithm == mmdb.FastFuzzy,
		GroupCommitInterval:  2 * time.Millisecond,
		AutoCheckpoint:       true,
		ThrottleCheckpointIO: true,
		ThrottleSpeedup:      s.Speedup,
	}
	// The checkpoint loop starts with Open; stop it for calibration.
	cfg.AutoCheckpoint = false
	db, err := mmdb.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			res, err = nil, cerr
		}
	}()

	// Calibration: an empty partial checkpoint measures the fixed
	// per-checkpoint cost of this machine (metadata writes and syncs),
	// which the Table 2b throttle does not model.
	calib, err := db.Checkpoint()
	if err != nil {
		return nil, err
	}
	fixed := calib.Duration.Seconds()
	base := db.Stats()
	db.StartCheckpointLoop()

	var wg sync.WaitGroup
	errCh := make(chan error, s.Writers)
	start := time.Now()
	perWriter := s.Txns / s.Writers
	for w := 0; w < s.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen, err := workload.NewUniform(s.Records, s.UpdatesPerTxn, s.RecordBytes, s.Seed+int64(w))
			if err != nil {
				errCh <- err
				return
			}
			pacer, err := workload.NewPacer(s.Lambda/float64(s.Writers), true, s.Seed+100+int64(w))
			if err != nil {
				errCh <- err
				return
			}
			for i := 0; i < perWriter; i++ {
				pacer.Wait()
				spec := gen.Next()
				err := db.Exec(func(tx *mmdb.Txn) error {
					for _, u := range spec.Updates {
						if err := tx.Write(u.Record, u.Value); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	db.StopCheckpointLoop()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	st := db.Stats()
	ckpts := st.Checkpoints - base.Checkpoints
	m := Measured{
		WallSeconds:         wall,
		TPS:                 float64(st.TxnsCommitted) / wall,
		PRestart:            st.PRestart(),
		Checkpoints:         ckpts,
		COUCopies:           st.COUCopies,
		FixedCheckpointSecs: fixed,
	}
	if ckpts > 0 {
		m.SegmentsPerCkpt = float64(st.SegmentsFlushed-base.SegmentsFlushed) / float64(ckpts)
		m.MeanCheckpointSecs = (st.TotalCheckpointTime - base.TotalCheckpointTime).Seconds() / float64(ckpts)
		m.ActiveCheckpointSecs = m.MeanCheckpointSecs - fixed
		if m.ActiveCheckpointSecs < 0 {
			m.ActiveCheckpointSecs = 0
		}
	}
	per, _, _, err := analytic.MeasuredOverhead(analytic.DefaultParams(), db.MeasuredCounts())
	if err == nil {
		m.OverheadPerTxn = per
	}

	// Evaluate the model at the operating point the engine actually
	// reached: the achieved arrival rate (pacing sheds backlog when the
	// machine cannot hold the target) and the observed checkpoint
	// interval (which includes local fixed costs — metadata writes and
	// syncs — that the disk-model throttle does not cover).
	params := s.ModelParams()
	if m.TPS > 0 {
		params.Lambda = m.TPS
	}
	// The live engine re-runs an aborted transaction immediately with the
	// same records, so the correlated-retry model is the right comparison
	// (and even it is optimistic: identical record sets re-conflict at a
	// near-static boundary more than fresh draws would).
	pred, err := analytic.Evaluate(params, analytic.Options{
		Algorithm:       s.Algorithm,
		StableTail:      cfg.StableLogTail,
		IntervalSeconds: m.MeanCheckpointSecs,
		Retry:           analytic.CorrelatedRetries,
	})
	if err != nil {
		return nil, fmt.Errorf("testbed: model: %w", err)
	}
	return &Result{Scenario: s, Measured: m, Predicted: pred}, nil
}
