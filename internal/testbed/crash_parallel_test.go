package testbed

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mmdb"
	"mmdb/internal/faultfs"
)

// TestCrashMatrixParallel extends the crash matrix with the parallelism
// axis: every algorithm runs with the serial pipeline (1 worker, armed at
// the worker-0 crash point, which the serial sweeps report) and with a
// 4-worker pool (armed at the worker-1 point, so the fault can only fire
// if the pool really fans out). Torn backup writes are exercised under
// the 4-worker pool, where several workers write the target copy
// concurrently.
func TestCrashMatrixParallel(t *testing.T) {
	type cell struct {
		point faultfs.Point
		kind  faultfs.Kind
	}
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = []int64{1}
	}
	for _, alg := range mmdb.Algorithms {
		for _, par := range []int{1, 4} {
			// The serial sweeps attribute every segment to worker 0; with a
			// pool, arming worker 1 proves a second worker actually ran.
			worker := 0
			if par > 1 {
				worker = 1
			}
			cells := []cell{
				{faultfs.PointCheckpointSegWorker(worker), faultfs.Crash},
			}
			if par > 1 {
				cells = append(cells,
					cell{"backup.write", faultfs.Crash},
					cell{"backup.write", faultfs.Torn},
				)
			}
			for _, c := range cells {
				for _, seed := range seeds {
					name := fmt.Sprintf("%v/par%d/%s/%v/seed%d", alg, par, c.point, c.kind, seed)
					alg, par, c, seed := alg, par, c, seed
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						rep, err := RunCrash(CrashScenario{
							Algorithm:   alg,
							Point:       c.point,
							Kind:        c.kind,
							Seed:        seed,
							Dir:         t.TempDir(),
							Parallelism: par,
						})
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						if !rep.Crashed {
							t.Fatalf("seed %d: fault never fired", seed)
						}
						t.Logf("seed %d: acked=%d inDoubt=%d fired=%+v",
							seed, rep.Acked, rep.InDoubt, rep.Fired)
					})
				}
			}
		}
	}
}

// copyTree duplicates a flat database directory so the same crashed state
// can be recovered twice independently.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			t.Fatalf("unexpected subdirectory %q in database dir", ent.Name())
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestRecoveryParallelEquivalence crashes a database mid-life for every
// algorithm, then recovers two copies of the identical on-disk state —
// one with the serial pipeline, one with 4 loader/apply workers — and
// requires byte-identical databases and matching replay accounting.
func TestRecoveryParallelEquivalence(t *testing.T) {
	const (
		records     = 256
		recordBytes = 64
	)
	for _, alg := range mmdb.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := mmdb.Config{
				Dir:                   dir,
				NumRecords:            records,
				RecordBytes:           recordBytes,
				SegmentBytes:          16 * recordBytes,
				Algorithm:             alg,
				StableLogTail:         alg == mmdb.FastFuzzy,
				SyncCommit:            true,
				CheckpointParallelism: 4,
			}
			db, err := mmdb.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			val := func(i uint64) []byte {
				b := make([]byte, recordBytes)
				binary.LittleEndian.PutUint64(b, i)
				return b
			}
			for i := uint64(0); i < 80; i++ {
				if err := db.Exec(func(tx *mmdb.Txn) error {
					return tx.Write((i*37)%records, val(i+1))
				}); err != nil {
					t.Fatal(err)
				}
				if i%25 == 24 {
					if _, err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// A redo tail past the last checkpoint, so recovery must both
			// load the backup and replay the log.
			for i := uint64(0); i < 20; i++ {
				if err := db.Exec(func(tx *mmdb.Txn) error {
					return tx.Write((i*11)%records, val(10000+i))
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Crash(); err != nil {
				t.Fatal(err)
			}

			dirP := copyTree(t, dir)
			cfgS := cfg
			cfgS.RecoveryParallelism = 1
			dbS, repS, err := mmdb.Recover(cfgS)
			if err != nil {
				t.Fatalf("serial recovery: %v", err)
			}
			defer dbS.Close()
			cfgP := cfg
			cfgP.Dir = dirP
			cfgP.RecoveryParallelism = 4
			dbP, repP, err := mmdb.Recover(cfgP)
			if err != nil {
				t.Fatalf("parallel recovery: %v", err)
			}
			defer dbP.Close()

			if repS.UsedCheckpoint != repP.UsedCheckpoint || repS.UsedCopy != repP.UsedCopy {
				t.Errorf("checkpoint choice differs: serial %+v parallel %+v", repS, repP)
			}
			if repS.SegmentsLoaded != repP.SegmentsLoaded {
				t.Errorf("SegmentsLoaded: serial %d, parallel %d", repS.SegmentsLoaded, repP.SegmentsLoaded)
			}
			if repS.TxnsReplayed != repP.TxnsReplayed {
				t.Errorf("TxnsReplayed: serial %d, parallel %d", repS.TxnsReplayed, repP.TxnsReplayed)
			}
			if repS.UpdatesApplied != repP.UpdatesApplied {
				t.Errorf("UpdatesApplied: serial %d, parallel %d", repS.UpdatesApplied, repP.UpdatesApplied)
			}
			if repS.UpdatesDiscarded != repP.UpdatesDiscarded {
				t.Errorf("UpdatesDiscarded: serial %d, parallel %d", repS.UpdatesDiscarded, repP.UpdatesDiscarded)
			}
			for rid := uint64(0); rid < records; rid++ {
				gotS, err := dbS.ReadRecord(rid)
				if err != nil {
					t.Fatal(err)
				}
				gotP, err := dbP.ReadRecord(rid)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotS, gotP) {
					t.Errorf("record %d: serial %x parallel %x", rid, gotS[:8], gotP[:8])
				}
			}
		})
	}
}
