package testbed

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"mmdb"
	"mmdb/internal/backup"
	"mmdb/internal/faultfs"
)

// CrashScenario is one cell of the crash matrix: run a randomized
// transaction workload against one checkpoint algorithm, inject one fault
// at a named crash point, recover, and check the recovered database
// against an in-memory oracle of acknowledged transactions.
//
// Everything random — record choices, transaction sizes, abort decisions,
// the fault's hit number, torn-write shapes — derives from Seed, so a
// failure replays from its printed seed. (Goroutine interleaving between
// the writer and the checkpointer can still vary between runs; the
// equivalence assertions are interleaving-independent.)
type CrashScenario struct {
	Algorithm mmdb.Algorithm
	// Point names the crash point to arm (see internal/faultfs).
	Point faultfs.Point
	// Kind is the fault to inject at Point.
	Kind faultfs.Kind
	// Seed drives every pseudo-random choice in the run.
	Seed int64

	// Dir is the database directory (required; the caller owns cleanup).
	Dir string

	// Geometry. Zero values default to 256 records × 256 bytes, 16-record
	// segments — small enough that a checkpoint is a few segment writes.
	Records      int
	RecordBytes  int
	SegmentBytes int

	// Txns is the workload length (default 150). CkptEvery starts a
	// checkpoint every that many transactions (default 12). AbortEvery
	// deliberately aborts every that-many-th transaction (default 7).
	Txns       int
	CkptEvery  int
	AbortEvery int

	// Parallelism is the checkpoint worker-pool width and the recovery
	// worker count (default 1: the original serial pipeline, so the base
	// matrix is unchanged). With N > 1, per-worker crash points
	// "checkpoint.segment.worker<i>" become meaningful.
	Parallelism int
}

// CrashReport describes one harness run, successful or not.
type CrashReport struct {
	Scenario CrashScenario
	// Fired lists the injector rules that triggered.
	Fired []faultfs.Fired
	// Crashed reports whether the injected fault halted the system (false
	// for ErrIO cells, which must survive without crashing).
	Crashed bool
	// Acked counts transactions whose Commit returned nil; InDoubt counts
	// transactions whose Commit returned ErrCommitInDoubt and that were
	// still unresolved when the run ended (0 or 1).
	Acked   int
	InDoubt int
	// RecoveredWithInDoubt reports whether the recovered state included
	// the in-doubt transaction (its commit record reached the durable
	// log) or not. Meaningless when InDoubt is 0.
	RecoveredWithInDoubt bool
	// Recovery is the engine's recovery report.
	Recovery *mmdb.RecoveryReport
}

func (s CrashScenario) withDefaults() CrashScenario {
	if s.Records == 0 {
		s.Records = 256
	}
	if s.RecordBytes == 0 {
		// Large enough that a multi-write commit flush spans log sectors,
		// so torn writes can persist a non-empty prefix.
		s.RecordBytes = 256
	}
	if s.SegmentBytes == 0 {
		s.SegmentBytes = 16 * s.RecordBytes
	}
	if s.Txns == 0 {
		s.Txns = 150
	}
	if s.CkptEvery == 0 {
		s.CkptEvery = 12
	}
	if s.AbortEvery == 0 {
		s.AbortEvery = 7
	}
	if s.Parallelism == 0 {
		s.Parallelism = 1
	}
	return s
}

// minHit is the first hit of a point that occurs after Open finishes:
// opening a fresh database itself writes the log header (wal.write) and
// the initial metadata (backup.meta.write + rename), and crashing those
// is the separate genesis test, not the steady-state matrix.
func minHit(p faultfs.Point) uint64 {
	switch p {
	case "wal.write", "backup.meta.write", "backup.meta.rename":
		return 2
	default:
		return 1
	}
}

// hitSpread is the range above minHit from which the armed hit number is
// drawn, sized so the fault lands within the default workload for every
// point (points hit once per checkpoint get a small spread; points hit
// per transaction get a larger one).
func hitSpread(p faultfs.Point) uint64 {
	switch p {
	case "wal.write", "wal.sync":
		return 30
	case "backup.write", "checkpoint.segment":
		return 8
	default:
		if strings.HasPrefix(string(p), string(faultfs.PointCheckpointSeg)+".worker") {
			// One worker of a pool of N sees roughly 1/N of the segment
			// hits, so keep the armed hit early enough to land.
			return 4
		}
		return 3
	}
}

// injectedStop reports an error caused by the injected system halt.
func injectedStop(err error) bool {
	return errors.Is(err, faultfs.ErrInjectedCrash) || errors.Is(err, mmdb.ErrStopped)
}

// txnWrites returns the deterministic write set of transaction i: record
// IDs and values derived from the shared PRNG.
func txnWrites(rng *rand.Rand, s CrashScenario, i int) map[uint64][]byte {
	n := 1 + rng.Intn(4)
	w := make(map[uint64][]byte, n)
	for k := 0; k < n; k++ {
		rid := uint64(rng.Intn(s.Records))
		val := make([]byte, s.RecordBytes)
		binary.LittleEndian.PutUint64(val, uint64(i)<<16|uint64(k))
		binary.LittleEndian.PutUint64(val[8:], rng.Uint64())
		w[rid] = val
	}
	return w
}

// RunCrash executes one crash-matrix cell and verifies:
//
//  1. Acknowledged transactions survive recovery and unacknowledged ones
//     never appear: the recovered database equals the model state of all
//     acked transactions, plus at most the single in-doubt transaction
//     whose Commit returned ErrCommitInDoubt at the crash.
//  2. The ping-pong invariant: at every crash point, the most recent
//     complete backup copy passes full checksum verification (or no
//     checkpoint completed yet and recovery runs from the log alone).
//  3. The recovered engine is live: it runs transactions and a checkpoint.
//
// It returns a report and the first violated invariant as an error.
func RunCrash(s CrashScenario) (*CrashReport, error) {
	s = s.withDefaults()
	if s.Dir == "" {
		return nil, errors.New("testbed: CrashScenario.Dir is required")
	}
	rep := &CrashReport{Scenario: s}
	rng := rand.New(rand.NewSource(s.Seed)) //nolint:gosec // deterministic replay is the point

	inj := faultfs.New(s.Seed)
	stable := s.Algorithm == mmdb.FastFuzzy
	if stable {
		// FASTFUZZY's correctness rests on the stable log tail (stable
		// RAM survives the crash); wal.* faults are not meaningful for it.
		inj.ExemptOnHalt(faultfs.ClassLog)
	}
	inj.Arm(faultfs.Rule{
		Point: s.Point,
		Kind:  s.Kind,
		AtHit: minHit(s.Point) + uint64(rng.Int63n(int64(hitSpread(s.Point)))),
	})

	cfg := mmdb.Config{
		Dir:                   s.Dir,
		NumRecords:            s.Records,
		RecordBytes:           s.RecordBytes,
		SegmentBytes:          s.SegmentBytes,
		Algorithm:             s.Algorithm,
		StableLogTail:         stable,
		SyncCommit:            true,
		SyncOnFlush:           s.Point == "wal.sync" || s.Point == "backup.sync",
		CheckpointParallelism: s.Parallelism,
		RecoveryParallelism:   s.Parallelism,
		FS:                    inj.FS(nil),
		CheckpointSegmentHook: func(_ uint64, worker, _ int) error {
			// The generic point counts every secured segment; the
			// per-worker point lets a scenario crash inside one specific
			// worker of the pool.
			if err := inj.Hook(faultfs.PointCheckpointSeg); err != nil {
				return err
			}
			return inj.Hook(faultfs.PointCheckpointSegWorker(worker))
		},
	}
	db, err := mmdb.Open(cfg)
	if err != nil {
		return rep, fmt.Errorf("testbed: open: %w", err)
	}

	// The oracle: committed values by record ID. pendingInDoubt holds the
	// write set of the one transaction whose commit durability is unknown;
	// a later acknowledged commit resolves it as durable (the log is
	// sequential: a later flushed LSN covers the earlier commit record).
	model := make(map[uint64][]byte)
	var pendingInDoubt map[uint64][]byte

	ckptDone := make(chan error, 1)
	ckptRunning := false
	drainCkpt := func() error {
		if !ckptRunning {
			return nil
		}
		ckptRunning = false
		return <-ckptDone
	}
	// Every early return below must still join an in-flight checkpoint:
	// the failure paths call db.Crash() first, which aborts it promptly,
	// and the buffered ckptDone guarantees the drain cannot hang.
	defer func() { _ = drainCkpt() }()

workload:
	for i := 0; i < s.Txns; i++ {
		if inj.Halted() {
			break
		}
		if i%s.CkptEvery == s.CkptEvery-1 {
			if err := drainCkpt(); err != nil && !injectedStop(err) && !errors.Is(err, faultfs.ErrInjectedIO) {
				_ = db.Crash() //nolint:errcheckwal // best-effort teardown on a failure path; the scenario error takes precedence
				return rep, fmt.Errorf("testbed: checkpoint failed (seed %d): %w", s.Seed, err)
			}
			ckptRunning = true
			// goleak:joins drainCkpt receives on ckptDone at the next checkpoint boundary and via the deferred drain above
			go func() {
				_, cerr := db.Checkpoint()
				ckptDone <- cerr
			}()
		}
		writes := txnWrites(rng, s, i)
		abort := i%s.AbortEvery == s.AbortEvery-1

		// Retry loop for two-color restarts and deadlocks; anything else
		// ends the transaction (and possibly the run).
		const maxAttempts = 10
		for attempt := 0; attempt < maxAttempts; attempt++ {
			tx, err := db.Begin()
			if err != nil {
				if injectedStop(err) {
					break workload
				}
				_ = db.Crash() //nolint:errcheckwal // best-effort teardown on a failure path; the scenario error takes precedence
				return rep, fmt.Errorf("testbed: begin txn %d (seed %d): %w", i, s.Seed, err)
			}
			werr := error(nil)
			for rid, val := range writes {
				if werr = tx.Write(rid, val); werr != nil {
					break
				}
			}
			if werr != nil {
				if errors.Is(werr, mmdb.ErrCheckpointConflict) || errors.Is(werr, mmdb.ErrDeadlock) {
					continue // the engine already aborted the txn; retry
				}
				if injectedStop(werr) {
					break workload
				}
				// A transient injected I/O error aborts this transaction;
				// it stays out of the oracle.
				tx.Abort()
				break
			}
			if abort {
				tx.Abort()
				break
			}
			cerr := tx.Commit()
			switch {
			case cerr == nil:
				// The ack also confirms any earlier in-doubt commit.
				for rid, val := range pendingInDoubt {
					model[rid] = val
				}
				pendingInDoubt = nil
				for rid, val := range writes {
					model[rid] = val
				}
				rep.Acked++
			case errors.Is(cerr, mmdb.ErrCommitInDoubt):
				if pendingInDoubt != nil {
					_ = db.Crash() //nolint:errcheckwal // best-effort teardown on a failure path; the scenario error takes precedence
					return rep, fmt.Errorf("testbed: two unresolved in-doubt txns (seed %d)", s.Seed)
				}
				pendingInDoubt = writes
				if injectedStop(cerr) {
					break workload
				}
			case errors.Is(cerr, mmdb.ErrCheckpointConflict), errors.Is(cerr, mmdb.ErrDeadlock):
				continue
			case injectedStop(cerr):
				break workload
			default:
				_ = db.Crash() //nolint:errcheckwal // best-effort teardown on a failure path; the scenario error takes precedence
				return rep, fmt.Errorf("testbed: commit txn %d (seed %d): %w", i, s.Seed, cerr)
			}
			break
		}
	}
	_ = drainCkpt() //nolint:errcheckwal // the run is over; crash errors are expected

	rep.Fired = inj.FiredRules()
	rep.Crashed = inj.Halted()
	if pendingInDoubt != nil {
		rep.InDoubt = 1
	}

	if s.Kind == faultfs.ErrIO {
		// Transient-error cells must not crash; the engine shuts down
		// cleanly and everything appended — including any unresolved
		// in-doubt commit — is durable.
		if rep.Crashed {
			return rep, fmt.Errorf("testbed: ErrIO fault halted the system (seed %d)", s.Seed)
		}
		if len(rep.Fired) == 0 {
			return rep, fmt.Errorf("testbed: armed ErrIO rule never fired (seed %d)", s.Seed)
		}
		for rid, val := range pendingInDoubt {
			model[rid] = val
		}
		pendingInDoubt = nil
		if err := db.Close(); err != nil {
			return rep, fmt.Errorf("testbed: close after ErrIO (seed %d): %w", s.Seed, err)
		}
	} else {
		if !rep.Crashed {
			return rep, fmt.Errorf("testbed: armed %v rule at %q never fired in %d txns (seed %d)",
				s.Kind, s.Point, s.Txns, s.Seed)
		}
		// Fail-stop: the crashed process abandons the machine. Crash()
		// errors are expected — the halted filesystem refuses the
		// shutdown truncate, exactly as a power loss would.
		_ = db.Crash() //nolint:errcheckwal // see above
	}

	// Ping-pong invariant: whatever instant the crash hit, the most
	// recent complete backup copy must pass full checksum verification.
	if err := verifyPingPong(s); err != nil {
		return rep, fmt.Errorf("testbed: ping-pong invariant (seed %d): %w", s.Seed, err)
	}

	// Recover on a pristine filesystem (the new incarnation's disk works).
	rcfg := cfg
	rcfg.FS = nil
	rcfg.CheckpointSegmentHook = nil
	rcfg.SyncOnFlush = false
	rdb, rrep, err := mmdb.Recover(rcfg)
	if err != nil {
		return rep, fmt.Errorf("testbed: recover (seed %d): %w", s.Seed, err)
	}
	rep.Recovery = rrep
	defer rdb.Close() //nolint:errcheckwal // verification errors take precedence

	// Equivalence: the recovered state must equal the acked model, or the
	// acked model plus the whole in-doubt transaction — never a mixture,
	// and never anything else.
	withDoubt := model
	if pendingInDoubt != nil {
		withDoubt = make(map[uint64][]byte, len(model)+len(pendingInDoubt))
		for rid, val := range model {
			withDoubt[rid] = val
		}
		for rid, val := range pendingInDoubt {
			withDoubt[rid] = val
		}
	}
	mismA, err := diffState(rdb, s, model)
	if err != nil {
		return rep, err
	}
	mismB := mismA
	if pendingInDoubt != nil {
		if mismB, err = diffState(rdb, s, withDoubt); err != nil {
			return rep, err
		}
	}
	if mismA != "" && mismB != "" {
		return rep, fmt.Errorf(
			"testbed: recovered state matches neither oracle (seed %d):\n without in-doubt: %s\n with in-doubt: %s",
			s.Seed, mismA, mismB)
	}
	rep.RecoveredWithInDoubt = pendingInDoubt != nil && mismA != ""

	// Liveness: the recovered engine accepts work and checkpoints.
	if err := rdb.Exec(func(tx *mmdb.Txn) error {
		return tx.Write(0, []byte("post-recovery"))
	}); err != nil {
		return rep, fmt.Errorf("testbed: post-recovery txn (seed %d): %w", s.Seed, err)
	}
	if _, err := rdb.Checkpoint(); err != nil {
		return rep, fmt.Errorf("testbed: post-recovery checkpoint (seed %d): %w", s.Seed, err)
	}
	return rep, nil
}

// verifyPingPong opens the backup store directly and checks that either no
// checkpoint has completed, or the latest complete copy verifies in full.
func verifyPingPong(s CrashScenario) error {
	bs, err := backup.Open(s.Dir, (s.Records*s.RecordBytes+s.SegmentBytes-1)/s.SegmentBytes, s.SegmentBytes)
	if err != nil {
		return err
	}
	defer bs.Close() //nolint:errcheckwal // read-only verification
	copyIdx, info, err := bs.Latest()
	if errors.Is(err, backup.ErrNoCheckpoint) {
		return nil // no complete checkpoint yet: recovery runs from the log
	}
	if err != nil {
		return err
	}
	if _, err := bs.Verify(copyIdx); err != nil {
		return fmt.Errorf("latest complete copy %d (checkpoint %d) failed verification: %w", copyIdx, info.ID, err)
	}
	return nil
}

// diffState compares the recovered database against want and returns a
// description of the first mismatch ("" on equality).
func diffState(db *mmdb.DB, s CrashScenario, want map[uint64][]byte) (string, error) {
	zero := make([]byte, s.RecordBytes)
	for rid := uint64(0); rid < uint64(s.Records); rid++ {
		got, err := db.ReadRecord(rid)
		if err != nil {
			return "", fmt.Errorf("testbed: read recovered record %d: %w", rid, err)
		}
		expect, ok := want[rid]
		if !ok {
			expect = zero
		}
		if !bytes.Equal(got, expect) {
			return fmt.Sprintf("record %d: got %x, want %x", rid, got[:8], expect[:8]), nil
		}
	}
	return "", nil
}
