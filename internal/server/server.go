// Package server is the mmdbd network front end: it serves the
// netproto frame protocol over TCP against any kvstore.Store — in
// production the shard router, in tests sometimes a bare Local.
//
// Per connection, three roles cooperate:
//
//   - a reader decodes request frames and dispatches each to a worker
//     drawn from a bounded per-connection pool, so pipelined requests
//     execute concurrently and complete out of order;
//   - workers run the store operation and hand the encoded response to
//     the writer;
//   - a single writer owns the socket's write side and coalesces: it
//     keeps writing queued responses into one buffered stream and
//     flushes only when the queue goes momentarily empty, so a burst
//     of pipelined commits costs one syscall, mirroring the engine's
//     group commit.
//
// Request IDs are echoed verbatim; ordering guarantees are per-request,
// not per-connection.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"mmdb/internal/netproto"
	"mmdb/kvstore"
)

// maxInflight bounds concurrently executing requests per connection;
// further pipelined frames queue in the kernel socket buffer.
const maxInflight = 64

// writeBufBytes sizes the per-connection coalescing write buffer.
const writeBufBytes = 64 << 10

// Server serves the mmdbd protocol against a Store.
type Server struct {
	store kvstore.Store

	// ctx is cancelled by Shutdown; per-connection workers pass it to
	// store operations.
	ctx    context.Context
	cancel context.CancelFunc

	// wg joins every connection handler goroutine.
	wg sync.WaitGroup

	mu sync.Mutex // lockorder:level=7
	// ln is the accept listener, nil until Serve. guarded_by:mu
	ln net.Listener
	// conns tracks live connections so Shutdown can force-close them.
	// guarded_by:mu
	conns map[net.Conn]struct{}
	// shutdown marks a server that is closing: accept errors become a
	// clean exit and new conns are refused. guarded_by:mu
	shutdown bool
}

// New builds a server around store. The caller retains ownership of the
// store (Shutdown does not close it).
//
// ctxcheck:root(the server is a goroutine root; per-request contexts descend from its lifetime context)
func New(store kvstore.Store) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		store:  store,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error; after Shutdown the error is net.ErrClosed-wrapped and
// expected.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.shutdown
			s.mu.Unlock()
			if closing {
				return fmt.Errorf("server: closed: %w", err)
			}
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close() //nolint:errcheckwal // refusing a conn during shutdown
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		// goleak:joins Shutdown waits on s.wg
		go s.handle(conn)
	}
}

// Shutdown stops accepting, force-closes live connections, cancels
// in-flight request contexts, and waits for the handlers to drain.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.shutdown = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	if ln != nil {
		ln.Close() //nolint:errcheckwal // shutdown path; accept loop reports the close
	}
	for _, c := range conns {
		c.Close() //nolint:errcheckwal // force-closing live conns on shutdown
	}
	s.wg.Wait()
}

// response is one encoded frame headed for a connection's writer.
type response struct {
	buf []byte
}

// handle runs one connection: reader here, writer + workers spawned.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close() //nolint:errcheckwal // socket teardown; the read loop already saw the error
	}()

	respCh := make(chan response, maxInflight)
	writerDone := make(chan struct{})
	s.wg.Add(1)
	// goleak:joins Shutdown waits on s.wg (and handle on writerDone)
	go func() {
		defer s.wg.Done()
		defer close(writerDone)
		s.writeLoop(conn, respCh)
	}()

	var workers sync.WaitGroup
	sem := make(chan struct{}, maxInflight)
	r := bufio.NewReaderSize(conn, writeBufBytes)
	var buf []byte
	for {
		frame, b, err := netproto.ReadFrame(r, buf)
		buf = b
		if err != nil {
			break // clean EOF, torn frame, or forced close — all end the conn
		}
		// The frame payload aliases buf, which the next ReadFrame
		// overwrites; the worker owns a copy.
		req := frame
		req.Pay = append([]byte(nil), frame.Pay...)
		sem <- struct{}{}
		workers.Add(1)
		// goleak:joins workers.Wait below
		go func() {
			defer workers.Done()
			defer func() { <-sem }()
			s.serveOne(req, respCh)
		}()
	}
	workers.Wait()
	close(respCh)
	<-writerDone
}

// writeLoop is the connection's single writer: it drains respCh into a
// buffered stream and flushes only when the queue goes empty, so
// pipelined responses coalesce into few syscalls.
func (s *Server) writeLoop(conn net.Conn, respCh <-chan response) {
	w := bufio.NewWriterSize(conn, writeBufBytes)
	for resp := range respCh {
		if _, err := w.Write(resp.buf); err != nil {
			// The socket is gone; drain the channel so workers never
			// block, then exit when it closes.
			for range respCh {
			}
			return
		}
	coalesce:
		for {
			select {
			case more, ok := <-respCh:
				if !ok {
					w.Flush() //nolint:errcheckwal // conn teardown follows either way
					return
				}
				if _, err := w.Write(more.buf); err != nil {
					for range respCh {
					}
					return
				}
			default:
				break coalesce
			}
		}
		if err := w.Flush(); err != nil {
			for range respCh {
			}
			return
		}
	}
	w.Flush() //nolint:errcheckwal // conn teardown follows either way
}

// serveOne executes one request and queues its response.
func (s *Server) serveOne(req netproto.Frame, respCh chan<- response) {
	typ, pay := s.execute(req)
	respCh <- response{buf: netproto.AppendFrame(nil, typ, req.ReqID, pay)}
}

// execute runs the store operation for one request frame.
func (s *Server) execute(req netproto.Frame) (respType byte, pay []byte) {
	ctx := s.ctx
	switch req.Type {
	case netproto.TGet:
		key, err := netproto.DecodeKey(req.Pay)
		if err != nil {
			return netproto.TErrResp, netproto.AppendErrResp(nil, err)
		}
		val, found, err := s.store.Get(ctx, key)
		if err != nil {
			return netproto.TErrResp, netproto.AppendErrResp(nil, err)
		}
		return netproto.TValueResp, netproto.AppendValueResp(nil, found, val)

	case netproto.TPut:
		key, val, err := netproto.DecodePut(req.Pay)
		if err != nil {
			return netproto.TErrResp, netproto.AppendErrResp(nil, err)
		}
		if err := s.store.Put(ctx, key, val); err != nil {
			return netproto.TErrResp, netproto.AppendErrResp(nil, err)
		}
		return netproto.TOKResp, nil

	case netproto.TDelete:
		key, err := netproto.DecodeKey(req.Pay)
		if err != nil {
			return netproto.TErrResp, netproto.AppendErrResp(nil, err)
		}
		existed, err := s.store.Delete(ctx, key)
		if err != nil {
			return netproto.TErrResp, netproto.AppendErrResp(nil, err)
		}
		return netproto.TOKResp, netproto.AppendOKResp(nil, existed)

	case netproto.TBatch:
		ops, err := netproto.DecodeBatch(req.Pay)
		if err != nil {
			return netproto.TErrResp, netproto.AppendErrResp(nil, err)
		}
		if err := s.store.Batch(ctx, ops); err != nil {
			return netproto.TErrResp, netproto.AppendErrResp(nil, err)
		}
		return netproto.TOKResp, nil

	case netproto.TStats:
		st, err := s.store.Stats(ctx)
		if err != nil {
			return netproto.TErrResp, netproto.AppendErrResp(nil, err)
		}
		js, err := json.Marshal(st)
		if err != nil {
			return netproto.TErrResp, netproto.AppendErrResp(nil, err)
		}
		return netproto.TStatsResp, js

	default:
		return netproto.TErrResp, netproto.AppendErrResp(nil,
			fmt.Errorf("unknown request type 0x%02x", req.Type))
	}
}
