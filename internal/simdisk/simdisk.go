// Package simdisk models the secondary-storage subsystem of the paper's
// MMDBMS: a bank of N identical disks whose transfer bandwidth scales
// linearly with N (Section 2.2 of Salem & Garcia-Molina, "Checkpointing
// Memory-Resident Databases").
//
// A disk transfers d words in T_seek + T_trans*d seconds. The model
// deliberately ignores bus contention and reference locality, as the paper
// does; checkpointer I/O in an MMDB is sequential and well behaved.
package simdisk

import (
	"errors"
	"fmt"
	"time"
)

// WordBytes is the size of one model "word". The paper's bandwidth
// arithmetic (Section 2.3) uses four bytes per word.
const WordBytes = 4

// Model describes a bank of backup disks.
type Model struct {
	// Seek is the per-I/O delay time (the paper's T_seek).
	Seek time.Duration
	// TransferPerWord is the per-word transfer time (the paper's T_trans).
	TransferPerWord time.Duration
	// Disks is the number of devices in the bank (the paper's N_bdisks).
	// Aggregate bandwidth scales linearly with Disks.
	Disks int
}

// Default returns the paper's Table 2b configuration: a 30 ms I/O delay,
// 3 µs/word transfer time, and 20 disks.
func Default() Model {
	return Model{
		Seek:            30 * time.Millisecond,
		TransferPerWord: 3 * time.Microsecond,
		Disks:           20,
	}
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.Disks <= 0 {
		return fmt.Errorf("simdisk: number of disks must be positive, got %d", m.Disks)
	}
	if m.Seek < 0 {
		return errors.New("simdisk: negative seek time")
	}
	if m.TransferPerWord <= 0 {
		return errors.New("simdisk: transfer time must be positive")
	}
	return nil
}

// IOTime returns the service time of a single request transferring the
// given number of words on one device: T_seek + T_trans*words.
func (m Model) IOTime(words int) time.Duration {
	if words < 0 {
		words = 0
	}
	return m.Seek + time.Duration(words)*m.TransferPerWord
}

// IOTimeSeconds is IOTime expressed in seconds, the unit used by the
// analytic model.
func (m Model) IOTimeSeconds(words int) float64 {
	return m.IOTime(words).Seconds()
}

// BulkTime returns the time to execute numIOs independent requests, each
// transferring words words, spread across the bank. Following Section 2.3,
// the time for a series of I/O operations is inversely proportional to the
// number of disks available.
func (m Model) BulkTime(numIOs, words int) time.Duration {
	if numIOs <= 0 {
		return 0
	}
	total := time.Duration(numIOs) * m.IOTime(words)
	return total / time.Duration(m.Disks)
}

// BulkTimeSeconds is BulkTime in seconds.
func (m Model) BulkTimeSeconds(numIOs, words int) float64 {
	return m.BulkTime(numIOs, words).Seconds()
}

// ParallelBulkTime returns the time to execute numIOs requests of words
// words issued by streams concurrent synchronous requesters, each waiting
// out the full per-device service time before issuing its next request.
// With fewer streams than disks the bank is under-driven and the elapsed
// time is ceil(numIOs/streams)*IOTime; at or beyond Disks streams it
// saturates at BulkTime. This prices a parallel checkpoint's K workers
// against the paper's bank (DESIGN.md §15).
func (m Model) ParallelBulkTime(numIOs, words, streams int) time.Duration {
	if numIOs <= 0 {
		return 0
	}
	if streams < 1 {
		streams = 1
	}
	if streams > m.Disks {
		streams = m.Disks
	}
	rounds := (numIOs + streams - 1) / streams
	t := time.Duration(rounds) * m.IOTime(words)
	if bulk := m.BulkTime(numIOs, words); t < bulk {
		return bulk
	}
	return t
}

// SequentialReadTime returns the time to stream totalWords off the bank
// with one request per run of runWords words. It is used for recovery-time
// estimates (reading the backup copy and the log back into memory).
func (m Model) SequentialReadTime(totalWords, runWords int) time.Duration {
	if totalWords <= 0 {
		return 0
	}
	if runWords <= 0 {
		runWords = totalWords
	}
	runs := (totalWords + runWords - 1) / runWords
	return m.BulkTime(runs, runWords)
}

// BandwidthWordsPerSec returns the aggregate streaming bandwidth of the
// bank, in words per second, for transfers of runWords per request.
func (m Model) BandwidthWordsPerSec(runWords int) float64 {
	t := m.IOTimeSeconds(runWords)
	if t <= 0 {
		return 0
	}
	return float64(runWords) * float64(m.Disks) / t
}

// BandwidthBytesPerSec is BandwidthWordsPerSec scaled to bytes.
func (m Model) BandwidthBytesPerSec(runWords int) float64 {
	return m.BandwidthWordsPerSec(runWords) * WordBytes
}

// ServiceRate returns the completion rate, in requests per second, the
// bank sustains for requests of words words. The paper treats disks as
// simple servers, so a bank of N disks completes N requests every IOTime.
func (m Model) ServiceRate(words int) float64 {
	t := m.IOTimeSeconds(words)
	if t <= 0 {
		return 0
	}
	return float64(m.Disks) / t
}

// Scale returns a copy of the model with the disk count multiplied by
// factor (used for the doubled-bandwidth experiment of Figure 4b).
func (m Model) Scale(factor int) Model {
	scaled := m
	scaled.Disks = m.Disks * factor
	return scaled
}

// String implements fmt.Stringer.
func (m Model) String() string {
	return fmt.Sprintf("simdisk.Model{seek=%v, transfer=%v/word, disks=%d}",
		m.Seek, m.TransferPerWord, m.Disks)
}
