package simdisk

import (
	"math"
	"testing"
	"time"
)

func TestDefaultMatchesPaperTable2b(t *testing.T) {
	m := Default()
	if m.Seek != 30*time.Millisecond {
		t.Errorf("Seek = %v, want 30ms", m.Seek)
	}
	if m.TransferPerWord != 3*time.Microsecond {
		t.Errorf("TransferPerWord = %v, want 3µs", m.TransferPerWord)
	}
	if m.Disks != 20 {
		t.Errorf("Disks = %d, want 20", m.Disks)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{Seek: time.Millisecond, TransferPerWord: time.Microsecond, Disks: 0},
		{Seek: -time.Millisecond, TransferPerWord: time.Microsecond, Disks: 1},
		{Seek: time.Millisecond, TransferPerWord: 0, Disks: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted: %v", i, m)
		}
	}
}

func TestIOTime(t *testing.T) {
	m := Default()
	// An 8192-word segment: 30ms + 8192·3µs = 54.576ms.
	got := m.IOTime(8192)
	want := 30*time.Millisecond + 8192*3*time.Microsecond
	if got != want {
		t.Errorf("IOTime(8192) = %v, want %v", got, want)
	}
	if m.IOTime(-5) != m.Seek {
		t.Error("negative word count should cost a bare seek")
	}
	if s := m.IOTimeSeconds(8192); math.Abs(s-0.054576) > 1e-12 {
		t.Errorf("IOTimeSeconds = %v", s)
	}
}

func TestBulkTimeScalesWithDisks(t *testing.T) {
	m := Default()
	one := m.BulkTime(100, 8192)
	double := m.Scale(2).BulkTime(100, 8192)
	if double*2 != one {
		t.Errorf("doubling disks should halve bulk time: %v vs %v", one, double)
	}
	if m.BulkTime(0, 8192) != 0 {
		t.Error("zero I/Os should take no time")
	}
}

func TestSequentialReadTime(t *testing.T) {
	m := Default()
	// Whole-database read: 32768 runs of 8192 words.
	total := 32768 * 8192
	got := m.SequentialReadTime(total, 8192).Seconds()
	want := 32768 * 0.054576 / 20
	if math.Abs(got-want) > 0.01 {
		t.Errorf("SequentialReadTime = %v, want %v", got, want)
	}
	if m.SequentialReadTime(0, 8192) != 0 {
		t.Error("empty read should take no time")
	}
	// runWords <= 0 means a single run.
	if m.SequentialReadTime(100, 0) != m.BulkTime(1, 100) {
		t.Error("zero runWords should mean one run")
	}
}

func TestBandwidthAndServiceRate(t *testing.T) {
	m := Default()
	// 8192-word runs: 8192·20/0.054576 ≈ 3.0 Mwords/s ≈ 12 MB/s, in line
	// with the paper's Section 2.3 estimate that a 1 GB database can be
	// checkpointed in about 100 seconds at ten megabytes per second.
	bw := m.BandwidthBytesPerSec(8192)
	if bw < 10e6 || bw > 14e6 {
		t.Errorf("bandwidth = %.1f MB/s, want ≈12", bw/1e6)
	}
	sr := m.ServiceRate(8192)
	if math.Abs(sr-20/0.054576) > 0.01 {
		t.Errorf("ServiceRate = %v", sr)
	}
	var zero Model
	if zero.ServiceRate(10) != 0 || zero.BandwidthWordsPerSec(10) != 0 {
		t.Error("degenerate model should report zero rates")
	}
}

func TestString(t *testing.T) {
	if Default().String() == "" {
		t.Error("empty String()")
	}
}

func TestParallelBulkTime(t *testing.T) {
	m := Model{Seek: 10 * time.Millisecond, TransferPerWord: time.Microsecond, Disks: 4}
	io := m.IOTime(1000) // 11 ms

	// One stream: strictly sequential, one I/O after another.
	if got, want := m.ParallelBulkTime(8, 1000, 1), 8*io; got != want {
		t.Errorf("1 stream: %v, want %v", got, want)
	}
	// Two streams halve the rounds: ceil(8/2) = 4.
	if got, want := m.ParallelBulkTime(8, 1000, 2), 4*io; got != want {
		t.Errorf("2 streams: %v, want %v", got, want)
	}
	// Streams beyond the bank saturate at the aggregate BulkTime.
	if got, want := m.ParallelBulkTime(8, 1000, 16), m.BulkTime(8, 1000); got != want {
		t.Errorf("16 streams: %v, want %v", got, want)
	}
	// Uneven division rounds the last batch up: ceil(7/3) = 3 rounds.
	if got, want := m.ParallelBulkTime(7, 1000, 3), 3*io; got != want {
		t.Errorf("7 IOs / 3 streams: %v, want %v", got, want)
	}
	// Degenerate inputs.
	if m.ParallelBulkTime(0, 1000, 2) != 0 {
		t.Error("zero IOs should cost nothing")
	}
	if got, want := m.ParallelBulkTime(4, 1000, 0), 4*io; got != want {
		t.Errorf("0 streams clamps to 1: %v, want %v", got, want)
	}
	// ParallelBulkTime never undercuts the bank's aggregate floor.
	if got := m.ParallelBulkTime(100, 1000, 4); got < m.BulkTime(100, 1000) {
		t.Errorf("parallel time %v below aggregate floor %v", got, m.BulkTime(100, 1000))
	}
}
