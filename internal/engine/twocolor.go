package engine

import (
	"context"
	"errors"
	"fmt"

	"mmdb/internal/lockmgr"
	"mmdb/internal/wal"
)

// sweepTwoColor implements the black/white locking checkpoints of Section
// 3.2.1 (after Pu's on-the-fly consistent reading algorithm, Figure 3.1).
//
// Every segment starts white; the checkpointer repeatedly picks a white
// segment that is not exclusively locked (falling back to a blocking wait
// when all remaining white segments are held by writers), locks it in
// shared mode, processes it, paints it black, and unlocks it. The shared
// segment lock conflicts with the intention-exclusive locks writers hold,
// so a processed segment contains no uncommitted data, and the two-color
// abort rule in the transaction path serializes transactions entirely
// before or after the checkpoint.
//
// 2CFLUSH holds the segment lock across the LSN wait and the disk write;
// 2CCOPY copies the segment to a buffer under the lock, releases the lock,
// and flushes the buffer afterwards — trading data movement for shorter
// lock hold times.
//
// lockorder:held Engine.ckptMu
func (e *Engine) sweepTwoColor(ctx context.Context, run *ckptRun) (flushed, skipped int, bytes int64, err error) {
	n := e.store.NumSegments()
	copyMode := e.params.Algorithm == TwoColorCopy
	var buf []byte
	if copyMode {
		buf = make([]byte, e.store.Config().SegmentBytes)
	}

	// handle processes one white segment; the caller must have acquired
	// the checkpointer's shared lock on it. handle releases the lock at
	// the algorithm's prescribed point.
	// lockorder:held Engine.ckptMu
	// lockorder:held mmdb/internal/lockmgr.Manager.table
	handle := func(i int) error {
		seg := e.store.Seg(i)
		if copyMode {
			seg.Lock()
			need := e.params.Full || seg.Dirty[run.target]
			var lsn wal.LSN
			if need {
				lsn = seg.Snapshot(buf)
				seg.Dirty[run.target] = false
				e.ctr.checkpointerCopy.Add(1)
			}
			seg.Paint = run.id // paint black
			seg.Unlock()
			// "The segment can be unlocked as soon as it is copied."
			e.locks.Unlock(checkpointerOwner, segKey(i))
			if !need {
				skipped++
				return nil
			}
			if werr := e.waitLSN(lsn); werr != nil {
				return werr
			}
			if ferr := e.flushSegment(run, i, buf); ferr != nil {
				return ferr
			}
		} else {
			seg.Lock()
			need := e.params.Full || seg.Dirty[run.target]
			lsn := seg.LastLSN
			if need {
				seg.Dirty[run.target] = false
			}
			seg.Paint = run.id
			seg.Unlock()
			if !need {
				e.locks.Unlock(checkpointerOwner, segKey(i))
				skipped++
				return nil
			}
			// "2CFLUSH requires that segments be locked for the duration
			// of a disk I/O operation, plus any delay needed to satisfy
			// the LSN condition." The shared lock excludes writers, so the
			// live image is stable during the write.
			if werr := e.waitLSN(lsn); werr != nil {
				e.locks.Unlock(checkpointerOwner, segKey(i))
				return werr
			}
			ferr := e.flushSegment(run, i, seg.Data) //nolint:lockcheck // stable: the lock-manager S lock excludes writers (see comment above)
			e.locks.Unlock(checkpointerOwner, segKey(i))
			if ferr != nil {
				return ferr
			}
		}
		flushed++
		bytes += int64(e.store.Config().SegmentBytes)
		return nil
	}

	white := make([]int, n)
	for i := range white {
		white[i] = i
	}
	for len(white) > 0 {
		if err = ctx.Err(); err != nil {
			return flushed, skipped, bytes, err
		}
		// Opportunistic pass: process every white segment whose lock is
		// free right now.
		remaining := white[:0]
		for _, i := range white {
			if err = ctx.Err(); err != nil {
				return flushed, skipped, bytes, err
			}
			if e.locks.TryLock(checkpointerOwner, segKey(i), lockmgr.S) {
				if err = handle(i); err != nil {
					return flushed, skipped, bytes, err
				}
				if err = e.segmentDone(run, 0, i); err != nil {
					return flushed, skipped, bytes, err
				}
			} else {
				remaining = append(remaining, i)
			}
		}
		white = remaining
		if len(white) == 0 {
			break
		}
		// Every remaining white segment is locked by a writer: "request
		// read (shared) lock on any white segment and wait."
		i := white[0]
		if lerr := e.locks.Lock(checkpointerOwner, segKey(i), lockmgr.S, 0); lerr != nil {
			if errors.Is(lerr, lockmgr.ErrShutdown) {
				return flushed, skipped, bytes, ErrStopped
			}
			return flushed, skipped, bytes, fmt.Errorf("engine: two-color wait on segment %d: %w", i, lerr)
		}
		if err = handle(i); err != nil {
			return flushed, skipped, bytes, err
		}
		if err = e.segmentDone(run, 0, i); err != nil {
			return flushed, skipped, bytes, err
		}
		white = white[1:]
	}
	return flushed, skipped, bytes, nil
}
