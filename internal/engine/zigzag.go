package engine

// ZIGZAG checkpointing (Cao et al., "A Comparative Study of Consistent
// Snapshot Algorithms for Main-Memory Database Systems", adapted from
// page to segment granularity).
//
// The storage layer keeps two full database images per segment: the live
// slab (Segment.Data) and a shadow slab (Segment.Shadow, allocated by
// Store.EnableShadow when the engine is configured for ZIGZAG). Zigzag's
// two per-segment bits are realised as:
//
//   - ZigPending — "live image still equals the begin-state image". Set
//     for every segment at checkpoint begin (under quiescence, so no
//     writer races the arm pass), cleared by the first writer to touch
//     the segment during the run. That writer flips: it copies the
//     begin-state image onto the shadow slab, swaps Data/Shadow, and
//     installs into the new live image — so the begin-state image parks
//     in Shadow and is never written again until the next begin.
//
//   - SnapNeed — "this run owes the target copy a flush", latched at
//     begin as Full || Dirty[target]. The sweep consults it instead of
//     the live dirty bits because a mid-run flip changes which physical
//     buffer the dirty bits describe.
//
// The sweep latches each segment only long enough to read the two bits
// and capture the begin-state image pointer (Data while ZigPending,
// Shadow after a flip), then flushes WITHOUT the latch: the captured
// buffer is stable — if it was captured while ZigPending, a later flip
// copies from it and parks it as Shadow (never written again this run);
// if captured after a flip, it is already the parked shadow.
//
// The backup is transaction-consistent as of τ(CH), like copy-on-update,
// but the writer-side cost is a segment copy into a preallocated slab —
// no per-update allocation at all.

import (
	"context"
	"time"

	"mmdb/internal/storage"
)

// zigzagArm sets the two zigzag bits on every segment for a new run.
// Called from CheckpointContext with the transaction gate still closed
// (quiesced) and the begin record flushed, before the run is published,
// so no writer can flip before arming completes.
//
// lockorder:held Engine.ckptMu
func (e *Engine) zigzagArm(run *ckptRun) {
	n := e.store.NumSegments()
	for i := 0; i < n; i++ {
		seg := e.store.Seg(i)
		seg.Lock()
		seg.ZigPending = true
		seg.SnapNeed = e.params.Full || seg.Dirty[run.target]
		seg.Unlock()
	}
}

// sweepZigzag is the serial ZIGZAG sweep: capture the begin-state image
// pointer under a brief latch, flush it unlatched.
//
// No LSN checks are needed: every update in a captured image predates
// the begin-checkpoint record, whose log-tail flush made it durable.
//
// lockorder:held Engine.ckptMu
// walorder:stable-tail every captured zigzag image predates the begin-checkpoint record, whose log-tail flush (Engine.CheckpointContext) already made it durable
func (e *Engine) sweepZigzag(ctx context.Context, run *ckptRun) (flushed, skipped int, bytes int64, err error) {
	n := e.store.NumSegments()
	segBytes := e.store.Config().SegmentBytes
	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			return flushed, skipped, bytes, err
		}
		seg := e.store.Seg(i)
		seg.Lock()
		data, need := e.zigzagCapture(seg, run)
		seg.Unlock()
		if !need {
			skipped++
		} else {
			if err = e.flushSegment(run, i, data); err != nil {
				return flushed, skipped, bytes, err
			}
			flushed++
			bytes += int64(segBytes)
		}
		if err = e.segmentDone(run, 0, i); err != nil {
			return flushed, skipped, bytes, err
		}
	}
	return flushed, skipped, bytes, nil
}

// zigzagCapture reads and consumes the segment's zigzag bits for this
// run, returning the begin-state image to flush (nil, false when the
// segment owes nothing). While ZigPending the live image IS the
// begin-state image and the flush covers the segment's current contents,
// so the target dirty bit clears; after a flip the parked shadow is
// begin-state only, and the live image still owes the target a flush at
// the next checkpoint (the dirty bit stays set, as with a COU old copy).
//
// lockcheck:held seg
func (e *Engine) zigzagCapture(seg *storage.Segment, run *ckptRun) (data []byte, need bool) {
	if !seg.SnapNeed {
		return nil, false
	}
	seg.SnapNeed = false
	if seg.ZigPending {
		seg.Dirty[run.target] = false
		return seg.Data, true
	}
	return seg.Shadow, true
}

// sweepZigzagParallel is the parallel ZIGZAG sweep: single-phase like
// FASTFUZZY — no barrier, because no worker ever waits on the log — but
// with the capture-then-flush-unlatched protocol of the serial sweep.
//
// lockorder:held Engine.ckptMu
// walorder:stable-tail every captured zigzag image predates the begin-checkpoint record, whose log-tail flush (Engine.CheckpointContext) already made it durable
func (e *Engine) sweepZigzagParallel(ctx context.Context, run *ckptRun, par int) (flushed, skipped int, bytes int64, err error) {
	n := e.store.NumSegments()
	segBytes := e.store.Config().SegmentBytes
	slots := make([]ckptSlot, par)
	for base := 0; base < n; base += par {
		if err = ctx.Err(); err != nil {
			return flushed, skipped, bytes, err
		}
		count := min(par, n-base)
		e.eo.ckptBatchH.Observe(uint64(count))
		fanOut(count, func(w int) {
			slot := &slots[w]
			*slot = ckptSlot{idx: base + w, began: time.Now()}
			seg := e.store.Seg(slot.idx)
			seg.Lock()
			data, need := e.zigzagCapture(seg, run)
			seg.Unlock()
			if !need {
				slot.skipped = true
			} else {
				if slot.err = e.flushSegment(run, slot.idx, data); slot.err != nil {
					return
				}
				slot.flushed = true
			}
			slot.err = e.segmentDone(run, w, slot.idx)
			e.eo.ckptWorkerH.ObserveSince(slot.began)
		})
		tally(slots, count, segBytes, &flushed, &skipped, &bytes)
		if err = firstSlotErr(slots, count); err != nil {
			return flushed, skipped, bytes, err
		}
	}
	return flushed, skipped, bytes, nil
}
