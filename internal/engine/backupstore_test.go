package engine

import (
	"testing"
	"time"

	"mmdb/internal/backup"
)

// TestOpenBackupHookMemStore runs a full checkpoint → crash → recover
// cycle entirely against an in-memory backup store supplied through the
// Params.OpenBackup seam, over every algorithm: the checkpointers and
// recovery must behave identically no matter what stands behind
// backup.Store.
func TestOpenBackupHookMemStore(t *testing.T) {
	for _, alg := range AllAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			// One MemStore per subtest, shared between Open and Recover:
			// it plays the surviving disk across the crash.
			var mem *backup.MemStore
			p := testParams(t, alg)
			p.OpenBackup = func(_ string, numSegments, segmentBytes int) (backup.Store, error) {
				if mem == nil {
					var err error
					mem, err = backup.NewMemStore(numSegments, segmentBytes)
					if err != nil {
						return nil, err
					}
				}
				return mem, nil
			}

			e := mustOpen(t, p)
			for rid := uint64(0); rid < 64; rid++ {
				if err := e.ExecWrite(rid, encVal(rid*3+1)); err != nil {
					t.Fatalf("ExecWrite(%d): %v", rid, err)
				}
			}
			if _, err := e.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			// Post-checkpoint writes survive only through the WAL.
			for rid := uint64(0); rid < 32; rid++ {
				if err := e.ExecWrite(rid, encVal(rid*7+5)); err != nil {
					t.Fatalf("ExecWrite(%d): %v", rid, err)
				}
			}
			if err := e.Crash(); err != nil {
				t.Fatalf("Crash: %v", err)
			}
			if mem == nil {
				t.Fatal("OpenBackup hook was never called")
			}
			if st := mem.Stats(); st.SegmentWrites == 0 {
				t.Fatal("checkpoint wrote no segments through the MemStore")
			}

			e2, rep, err := Recover(p)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer e2.Close()
			if !rep.UsedCheckpoint {
				t.Error("recovery ignored the MemStore checkpoint")
			}
			for rid := uint64(0); rid < 64; rid++ {
				want := rid*3 + 1
				if rid < 32 {
					want = rid*7 + 5
				}
				if got := readVal(t, e2, rid); got != want {
					t.Errorf("record %d = %d, want %d", rid, got, want)
				}
			}
		})
	}
}

// TestCheckpointStaggerStopsPromptly pins the stagger wait's stop path:
// a loop parked in its phase-shift delay must exit on StopCheckpointLoop
// immediately, not after the (possibly long) stagger elapses.
func TestCheckpointStaggerStopsPromptly(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.CheckpointStagger = time.Hour
	e := mustOpen(t, p)
	defer e.Close()

	e.StartCheckpointLoop()
	done := make(chan struct{})
	// goleak:joins the test receives on done below
	go func() {
		e.StopCheckpointLoop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("StopCheckpointLoop hung in the stagger wait")
	}
	if got := e.Stats().Checkpoints; got != 0 {
		t.Errorf("a staggered loop checkpointed %d times before its delay", got)
	}
}
