package engine

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestWriteSameRecordTwice: the last write in a transaction wins, in the
// primary database and across recovery (log order replay).
func TestWriteSameRecordTwice(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	e := mustOpen(t, p)
	err := e.Exec(func(tx *Txn) error {
		if err := tx.Write(4, encVal(1)); err != nil {
			return err
		}
		if err := tx.Write(4, encVal(2)); err != nil {
			return err
		}
		v, err := tx.Read(4)
		if err != nil {
			return err
		}
		if decVal(v) != 2 {
			t.Errorf("own second write not visible: %d", decVal(v))
		}
		return tx.Write(4, encVal(3))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := readVal(t, e, 4); v != 3 {
		t.Fatalf("installed %d, want 3", v)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, _, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if v := readVal(t, e2, 4); v != 3 {
		t.Errorf("recovered %d, want 3 (replay must honor log order)", v)
	}
}

// TestConcurrentCheckpointCallsSerialize: simultaneous Checkpoint calls
// queue rather than interleave, and both complete.
func TestConcurrentCheckpointCallsSerialize(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	if err := e.Exec(func(tx *Txn) error { return tx.Write(0, encVal(1)) }); err != nil {
		t.Fatal(err)
	}
	const n = 4
	var wg sync.WaitGroup
	ids := make(chan uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Checkpoint()
			if err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			ids <- res.ID
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[uint64]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate checkpoint ID %d", id)
		}
		seen[id] = true
	}
	if len(seen) != n {
		t.Fatalf("%d distinct checkpoints, want %d", len(seen), n)
	}
}

// TestReadRecordBounds: out-of-range non-transactional reads error.
func TestReadRecordBounds(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	buf := make([]byte, e.RecordBytes())
	if err := e.ReadRecord(uint64(e.NumRecords()), buf); err == nil {
		t.Error("out-of-range ReadRecord succeeded")
	}
}

// TestReadOutOfRangeInTxn: a transactional read of a bad record ID aborts
// the transaction.
func TestReadOutOfRangeInTxn(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(1 << 40); err == nil {
		t.Error("out-of-range read succeeded")
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("txn should be aborted: %v", err)
	}
}

// TestEmptyTransactionCommit: a read-only or empty transaction commits
// without touching the log.
func TestEmptyTransactionCommit(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	before := e.Stats().LogAppends
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if after := e.Stats().LogAppends; after != before {
		t.Errorf("read-only commit appended %d log records", after-before)
	}
}

// TestAbortWithoutWritesLogsNothing: aborting a transaction that never
// logged leaves no trace.
func TestAbortWithoutWritesLogsNothing(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	before := e.Stats().LogAppends
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if after := e.Stats().LogAppends; after != before {
		t.Error("empty abort wrote to the log")
	}
}

// TestCOUOldCopyPeakAccounting: the high-water mark of preserved old
// versions is tracked (the paper's warning that the snapshot buffer can
// grow).
func TestCOUOldCopyPeakAccounting(t *testing.T) {
	p := testParams(t, COUCopy)
	hook := newPauseHook(0)
	p.SegmentHook = hook.fn
	e := mustOpen(t, p)
	defer e.Close()

	// Dirty several later segments before the checkpoint.
	for i := 0; i < 4; i++ {
		if err := e.Exec(func(tx *Txn) error {
			return tx.Write(uint64(8*(i+2)), encVal(1))
		}); err != nil {
			t.Fatal(err)
		}
	}
	hook.armed = true
	done := make(chan error, 1)
	go func() {
		_, err := e.Checkpoint()
		done <- err
	}()
	<-hook.paused
	// Update three not-yet-dumped segments: three old copies live at once.
	for i := 0; i < 3; i++ {
		if err := e.Exec(func(tx *Txn) error {
			return tx.Write(uint64(8*(i+2)), encVal(2))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if live := e.Stats().COULiveOld; live != 3 {
		t.Errorf("COULiveOld = %d, want 3", live)
	}
	close(hook.resume)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.COUPeakOld < 3 {
		t.Errorf("COUPeakOld = %d, want >= 3", st.COUPeakOld)
	}
	if st.COULiveOld != 0 {
		t.Errorf("COULiveOld = %d after checkpoint", st.COULiveOld)
	}
}

// TestDirtySegmentsCount tracks the per-copy dirty population.
func TestDirtySegmentsCount(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	if n := e.DirtySegments(0); n != 0 {
		t.Fatalf("fresh database has %d dirty segments", n)
	}
	// Dirty two segments.
	if err := e.Exec(func(tx *Txn) error {
		if err := tx.Write(0, encVal(1)); err != nil {
			return err
		}
		return tx.Write(16, encVal(1))
	}); err != nil {
		t.Fatal(err)
	}
	if n := e.DirtySegments(0); n != 2 {
		t.Errorf("DirtySegments(0) = %d, want 2", n)
	}
	if n := e.DirtySegments(1); n != 2 {
		t.Errorf("DirtySegments(1) = %d, want 2", n)
	}
	if _, err := e.Checkpoint(); err != nil { // copy 0
		t.Fatal(err)
	}
	if n := e.DirtySegments(0); n != 0 {
		t.Errorf("after checkpoint DirtySegments(0) = %d", n)
	}
	if n := e.DirtySegments(1); n != 2 {
		t.Errorf("after checkpoint DirtySegments(1) = %d, want 2 (other copy still stale)", n)
	}
	if e.DirtySegments(-1) != 0 || e.DirtySegments(2) != 0 {
		t.Error("out-of-range copy indexes should count zero")
	}
}

// TestDirtyFractionTriggersEarlyCheckpoint: with a long interval but a low
// dirty threshold, the loop checkpoints as soon as the threshold crosses.
func TestDirtyFractionTriggersEarlyCheckpoint(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.CheckpointInterval = time.Hour // never reached in this test
	p.CheckpointDirtyFraction = 0.1  // 32 segments → threshold 3
	e := mustOpen(t, p)
	defer e.Close()
	e.StartCheckpointLoop()
	defer e.StopCheckpointLoop()
	// The loop's first checkpoint happens immediately; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Checkpoints < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first checkpoint never ran")
		}
		time.Sleep(time.Millisecond)
	}
	// Dirty 4 segments (≥ threshold): a second checkpoint must follow
	// long before the hour elapses.
	if err := e.Exec(func(tx *Txn) error {
		for s := 0; s < 4; s++ {
			if err := tx.Write(uint64(8*s), encVal(9)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for e.Stats().Checkpoints < 2 {
		if time.Now().After(deadline) {
			t.Fatal("dirty threshold did not trigger an early checkpoint")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBadDirtyFractionRejected validates the new parameter.
func TestBadDirtyFractionRejected(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.CheckpointDirtyFraction = 1.5
	if _, err := Open(p); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

// TestBeginAfterCrashFails and other post-crash API behavior.
func TestBeginAfterCrashFails(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Begin(); !errors.Is(err, ErrStopped) {
		t.Errorf("Begin after crash: %v", err)
	}
	if err := e.Crash(); !errors.Is(err, ErrStopped) {
		t.Errorf("second Crash: %v", err)
	}
}

// TestInFlightTxnFailsAcrossCrash: a transaction straddling a crash gets
// clean errors, not corruption.
func TestInFlightTxnFailsAcrossCrash(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(1, encVal(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(2, encVal(2)); !errors.Is(err, ErrStopped) {
		t.Errorf("write after crash: %v", err)
	}
}

// TestRecoverFreshDirFails: Recover needs something to recover.
func TestRecoverFreshDirFails(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	if _, _, err := Recover(p); err == nil {
		t.Error("Recover of an empty directory succeeded")
	}
}

// TestSegmentHookOnlyOnProcessedSegments: the fault-injection hook fires
// once per flushed segment during a partial checkpoint.
func TestSegmentHookRunsPerFlushedSegment(t *testing.T) {
	var calls []int
	p := testParams(t, FuzzyCopy)
	p.SegmentHook = func(_ uint64, _, segIdx int) error {
		calls = append(calls, segIdx)
		return nil
	}
	e := mustOpen(t, p)
	defer e.Close()
	if err := e.Exec(func(tx *Txn) error {
		if err := tx.Write(0, encVal(1)); err != nil { // segment 0
			return err
		}
		return tx.Write(16, encVal(1)) // segment 2
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != 0 || calls[1] != 2 {
		t.Errorf("hook calls = %v, want [0 2]", calls)
	}
}
