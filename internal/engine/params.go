package engine

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"mmdb/internal/backup"
	"mmdb/internal/faultfs"
	"mmdb/internal/simdisk"
	"mmdb/internal/storage"
)

// Throttle paces checkpoint segment writes with the paper's disk model
// (Table 2b): each flushed segment costs IOTime(S_seg)/N_disks of wall
// time, divided by Speedup. It lets a laptop-scale engine reproduce the
// paper's checkpoint-duration arithmetic at a manageable time scale.
type Throttle struct {
	// Disks is the simulated disk bank.
	Disks simdisk.Model
	// Speedup divides the modeled delays (e.g. 1000 runs the modeled
	// schedule a thousand times faster). Must be >= 1.
	Speedup float64
	// PerStream charges each flush the full single-device service time
	// (IOTime) instead of the fully-overlapped bank share (BulkTime). One
	// flusher then models one synchronous disk stream, and K concurrent
	// checkpoint workers model K streams — which is how parallel
	// checkpoints actually buy bandwidth from the bank (aggregate stays
	// below the bank's for K <= Disks). The default BulkTime mode models
	// the paper's fully-overlapped bank and is insensitive to parallelism.
	PerStream bool
}

// delayPerSegment returns the wall-clock pacing delay for one flushed
// segment of segBytes, charged to the flushing worker.
func (th *Throttle) delayPerSegment(segBytes int) time.Duration {
	words := segBytes / simdisk.WordBytes
	var d time.Duration
	if th.PerStream {
		d = th.Disks.IOTime(words)
	} else {
		d = th.Disks.BulkTime(1, words)
	}
	return time.Duration(float64(d) / th.Speedup)
}

// validate checks the throttle configuration.
func (th *Throttle) validate() error {
	if err := th.Disks.Validate(); err != nil {
		return err
	}
	if th.Speedup < 1 {
		return fmt.Errorf("engine: throttle speedup %v, want >= 1", th.Speedup)
	}
	return nil
}

// Params configures an Engine.
type Params struct {
	// Dir is the directory holding the log file and the two backup
	// database copies.
	Dir string

	// Storage is the database geometry.
	Storage storage.Config

	// Algorithm selects the checkpoint algorithm.
	Algorithm Algorithm

	// Full selects full checkpoints: every segment is written each
	// checkpoint. The default is partial checkpoints, which flush only the
	// segments dirtied since the previous checkpoint of the same ping-pong
	// copy (see DESIGN.md §6.1).
	Full bool

	// StableTail simulates stable RAM holding the log tail (Section 4).
	// Required by FASTFUZZY.
	StableTail bool

	// SyncCommit makes Commit wait until the transaction's log records are
	// durable. The paper's MMDBMS avoids synchronous commit I/O; the
	// default is asynchronous group commit.
	SyncCommit bool

	// LogFlushInterval is the group-commit period for the background log
	// flusher. Zero disables it (the tail is then flushed by checkpointer
	// LSN waits, synchronous commits, and Close).
	LogFlushInterval time.Duration

	// CheckpointInterval is the paper's checkpoint duration: the time from
	// the beginning of one checkpoint to the beginning of the next when
	// the engine checkpoints continuously (Run). Zero means back-to-back,
	// as fast as possible.
	CheckpointInterval time.Duration

	// AutoCheckpoint starts the continuous checkpoint loop on Open.
	AutoCheckpoint bool

	// CheckpointDirtyFraction, when in (0,1], makes the checkpoint loop
	// cut its wait short as soon as that fraction of segments is dirty
	// for the next target copy — bounding both recovery log span (via
	// CheckpointInterval) and checkpoint size (via the dirty threshold).
	CheckpointDirtyFraction float64

	// LockTimeout bounds lock waits; expiry aborts the waiting transaction
	// (deadlock resolution). Zero uses DefaultLockTimeout.
	LockTimeout time.Duration

	// SyncOnFlush fsyncs the log on every flush. Off by default: the
	// in-process crash simulation defines durability by the flushed
	// watermark, and the paper's engine would batch syncs anyway.
	SyncOnFlush bool

	// Operations registers custom logical operations (codes above the
	// built-in range) for Txn.ApplyOp. Recovery needs the same map to
	// replay logical records, so pass it to Recover as well.
	Operations map[OpCode]OpFunc

	// CheckpointThrottle, when non-nil, paces checkpoint segment writes
	// with a simulated disk model (see Throttle).
	CheckpointThrottle *Throttle

	// DisableLogCompaction keeps the full log on disk. By default the
	// engine compacts the log head after each checkpoint, dropping records
	// older than any complete checkpoint's redo-scan start (no recovery
	// can need them).
	DisableLogCompaction bool

	// CheckpointParallelism is the number of concurrent segment copy/flush
	// workers a checkpoint sweep fans out to. Zero resolves to
	// min(GOMAXPROCS, 8); 1 runs the original serial sweeps. The
	// per-segment protocol of each algorithm is preserved; only the
	// write-ahead LSN wait and the ping-pong metadata commit are shared
	// barriers (see DESIGN.md §15).
	CheckpointParallelism int

	// RecoveryParallelism is the number of concurrent backup-load stripe
	// readers and partitioned redo-apply workers recovery uses. Zero
	// resolves to min(GOMAXPROCS, 8); 1 recovers serially. Recovered
	// images are byte-identical at any setting: stripes load disjoint
	// segments and redo records are routed by segment range, so per-record
	// log order is preserved where it matters.
	RecoveryParallelism int

	// HourglassWindow is the HOURGLASS old-copy window W: the number of
	// preallocated segment buffers writers may hold old versions in at
	// once. A writer needing a buffer when all W are in use waits for
	// the checkpointer to free one. Zero resolves to
	// DefaultHourglassWindow; ignored by every other algorithm.
	HourglassWindow int

	// SegmentHook, if set, runs after the checkpointer finishes each
	// segment; returning an error aborts the checkpoint with that error.
	// worker is the index of the sweep worker that processed the segment
	// (always 0 in serial sweeps). It exists for fault injection in tests
	// (e.g., crashing mid-checkpoint to exercise ping-pong recovery).
	SegmentHook func(checkpointID uint64, worker, segIdx int) error

	// FS, when non-nil, is the filesystem the log and backup copies are
	// written through. Tests inject a faultfs.Injector here to crash the
	// engine at named points on the write path; nil means the OS directly.
	FS faultfs.FS

	// SpanSampleEvery samples the latency-attribution span tracer: one in
	// every SpanSampleEvery transactions gets a full commit span tree
	// (lock waits, WAL appends, group-commit flush, checkpoint
	// interference). Zero resolves to DefaultSpanSample; 1 traces every
	// transaction; negative disables span tracing. Checkpoint and
	// recovery spans are always recorded (they are rare). Attribution
	// histograms (mmdb_commit_attr_*) are unaffected by sampling.
	SpanSampleEvery int

	// SlowOpCommitThreshold arms the slow-op watchdog for commits: a
	// commit slower than this captures a torn-free flight-recorder dump
	// of the offending span tree (DB.SlowOps / ?slow=1). Zero disables.
	SlowOpCommitThreshold time.Duration

	// SlowOpCheckpointThreshold arms the watchdog for whole checkpoints.
	// Zero disables.
	SlowOpCheckpointThreshold time.Duration

	// OpenBackup, when non-nil, supplies the backup store the engine
	// checkpoints into, replacing the default file-backed store under
	// Dir. Recovery must be given the same hook so it reopens the same
	// backend. The returned store must honor the backup.Store contract
	// (ping-pong copies, durable Begin/Finish flags, torn-write
	// detection); its data must survive Close for recovery to work.
	OpenBackup func(dir string, numSegments, segmentBytes int) (backup.Store, error)

	// CheckpointStagger delays the continuous checkpoint loop's first
	// checkpoint after StartCheckpointLoop. Shards use it to phase-shift
	// otherwise identical schedules (shardID*interval/N) so aggregate
	// backup bandwidth stays bounded instead of spiking N-wide.
	CheckpointStagger time.Duration
}

// DefaultSpanSample is the span-tracer sampling rate used when
// Params.SpanSampleEvery is zero: one traced transaction in every 8.
const DefaultSpanSample = 8

// DefaultLockTimeout is the lock-wait bound used when Params.LockTimeout
// is zero.
const DefaultLockTimeout = 2 * time.Second

// DefaultParallelism resolves the zero value of the parallelism knobs:
// one worker per CPU, capped at 8 (beyond that the backup device, not the
// CPU, is the bottleneck).
func DefaultParallelism() int {
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}
	if p < 1 {
		p = 1
	}
	return p
}

// openBackupStore opens the engine's backup store through the
// OpenBackup hook, defaulting to the file-backed store under Dir.
func (p Params) openBackupStore(numSegments int) (backup.Store, error) {
	if p.OpenBackup != nil {
		return p.OpenBackup(p.Dir, numSegments, p.Storage.SegmentBytes)
	}
	return backup.OpenFS(p.FS, p.Dir, numSegments, p.Storage.SegmentBytes)
}

// withDefaults returns p with zero values replaced by defaults.
func (p Params) withDefaults() Params {
	if p.LockTimeout == 0 {
		p.LockTimeout = DefaultLockTimeout
	}
	if p.CheckpointParallelism == 0 {
		p.CheckpointParallelism = DefaultParallelism()
	}
	if p.RecoveryParallelism == 0 {
		p.RecoveryParallelism = DefaultParallelism()
	}
	if p.HourglassWindow == 0 {
		p.HourglassWindow = DefaultHourglassWindow
	}
	if p.SpanSampleEvery == 0 {
		p.SpanSampleEvery = DefaultSpanSample
	}
	return p
}

// Validate checks the parameter set for consistency.
func (p Params) Validate() error {
	if p.Dir == "" {
		return errors.New("engine: Dir must be set")
	}
	if err := p.Storage.Validate(); err != nil {
		return err
	}
	if !p.Algorithm.Valid() {
		return fmt.Errorf("engine: invalid algorithm %v", p.Algorithm)
	}
	if p.Algorithm.RequiresStableTail() && !p.StableTail {
		return fmt.Errorf("engine: %v requires StableTail (it flushes segments without LSN checks and would otherwise violate the write-ahead rule)", p.Algorithm)
	}
	if p.CheckpointInterval < 0 {
		return errors.New("engine: negative CheckpointInterval")
	}
	if p.CheckpointDirtyFraction < 0 || p.CheckpointDirtyFraction > 1 {
		return errors.New("engine: CheckpointDirtyFraction must be in [0,1]")
	}
	if p.CheckpointThrottle != nil {
		if err := p.CheckpointThrottle.validate(); err != nil {
			return err
		}
	}
	if p.CheckpointParallelism < 0 {
		return fmt.Errorf("engine: negative CheckpointParallelism %d", p.CheckpointParallelism)
	}
	if p.RecoveryParallelism < 0 {
		return fmt.Errorf("engine: negative RecoveryParallelism %d", p.RecoveryParallelism)
	}
	if p.HourglassWindow < 0 {
		return fmt.Errorf("engine: negative HourglassWindow %d", p.HourglassWindow)
	}
	if p.CheckpointStagger < 0 {
		return errors.New("engine: negative CheckpointStagger")
	}
	builtin := builtinOps()
	for code, fn := range p.Operations {
		if fn == nil {
			return fmt.Errorf("engine: nil operation for code %d", code)
		}
		if _, taken := builtin[code]; taken {
			return fmt.Errorf("engine: operation code %d collides with a built-in", code)
		}
	}
	return nil
}
