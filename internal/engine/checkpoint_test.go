package engine

import (
	"errors"
	"testing"
	"time"

	"mmdb/internal/backup"
)

// pauseHook blocks the checkpointer after it finishes a chosen segment,
// letting a test interleave transactions with a half-done checkpoint.
type pauseHook struct {
	pauseAfter int           // segment index to pause after
	paused     chan struct{} // closed when the checkpointer parks
	resume     chan struct{} // test closes to release it
	armed      bool
}

func newPauseHook(after int) *pauseHook {
	return &pauseHook{
		pauseAfter: after,
		paused:     make(chan struct{}),
		resume:     make(chan struct{}),
	}
}

func (h *pauseHook) fn(_ uint64, _, segIdx int) error {
	if h.armed && segIdx == h.pauseAfter {
		h.armed = false
		close(h.paused)
		<-h.resume
	}
	return nil
}

// TestTwoColorConflictAborts pauses a two-color checkpoint after it paints
// segment 0 black and lets a transaction touch segment 0 (black) and the
// last segment (white): the access must abort with ErrCheckpointConflict.
func TestTwoColorConflictAborts(t *testing.T) {
	for _, alg := range []Algorithm{TwoColorFlush, TwoColorCopy} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			hook := newPauseHook(0)
			p := testParams(t, alg)
			p.Full = true // ensure segment 0 is processed (and painted)
			p.SegmentHook = hook.fn
			e := mustOpen(t, p)
			defer e.Close()

			hook.armed = true
			ckptErr := make(chan error, 1)
			go func() {
				_, err := e.Checkpoint()
				ckptErr <- err
			}()
			select {
			case <-hook.paused:
			case <-time.After(5 * time.Second):
				t.Fatal("checkpointer never reached segment 0")
			}

			lastRec := uint64(e.NumRecords() - 1) // in the last (white) segment
			tx, err := e.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Read(0); err != nil { // black
				t.Fatalf("read black record: %v", err)
			}
			_, err = tx.Read(lastRec) // white → mixed → abort
			if !errors.Is(err, ErrCheckpointConflict) {
				t.Fatalf("mixed-color access error = %v, want ErrCheckpointConflict", err)
			}
			if st := e.Stats(); st.ColorRestarts != 1 {
				t.Errorf("ColorRestarts = %d, want 1", st.ColorRestarts)
			}

			// A single-color transaction is unaffected.
			tx2, err := e.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx2.Read(0); err != nil {
				t.Fatalf("black-only read: %v", err)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}

			close(hook.resume)
			if err := <-ckptErr; err != nil {
				t.Fatalf("checkpoint: %v", err)
			}

			// After the checkpoint, mixing the same segments is fine again.
			err = e.Exec(func(tx *Txn) error {
				if _, err := tx.Read(0); err != nil {
					return err
				}
				_, err := tx.Read(lastRec)
				return err
			})
			if err != nil {
				t.Fatalf("post-checkpoint access: %v", err)
			}
		})
	}
}

// TestTwoColorWriterBlocksCheckpointer verifies the lock interplay of Pu's
// algorithm: a segment with an in-flight writer cannot be processed until
// the writer commits (the checkpointer's shared segment lock conflicts
// with the writer's intention-exclusive lock).
func TestTwoColorWriterBlocksCheckpointer(t *testing.T) {
	p := testParams(t, TwoColorFlush)
	p.Full = true
	e := mustOpen(t, p)
	defer e.Close()

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(0, encVal(1)); err != nil { // IX on segment 0 until commit
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := e.Checkpoint()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("checkpoint finished with a writer holding segment 0: %v", err)
	case <-time.After(100 * time.Millisecond):
		// Blocked (or at least not finished), as required.
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("checkpoint after commit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("checkpoint never finished after writer committed")
	}
}

// TestCOUPreservesSnapshot pauses a COU checkpoint after segment 0, then
// commits an update to a later segment. The checkpointer must flush the
// pre-update version (preserved by the updater), keeping the backup
// transaction-consistent as of the checkpoint's begin.
func TestCOUPreservesSnapshot(t *testing.T) {
	for _, alg := range []Algorithm{COUFlush, COUCopy} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			p := testParams(t, alg)
			hook := newPauseHook(0)
			p.SegmentHook = hook.fn
			e := mustOpen(t, p)

			// Pre-checkpoint state: record 100 = 1 (some later segment).
			if err := e.Exec(func(tx *Txn) error { return tx.Write(100, encVal(1)) }); err != nil {
				t.Fatal(err)
			}

			hook.armed = true
			ckptErr := make(chan error, 1)
			go func() {
				_, err := e.Checkpoint()
				ckptErr <- err
			}()
			select {
			case <-hook.paused:
			case <-time.After(5 * time.Second):
				t.Fatal("checkpointer never paused")
			}

			// Update record 100 while the checkpoint is mid-sweep; the
			// transaction must preserve the old version.
			if err := e.Exec(func(tx *Txn) error { return tx.Write(100, encVal(2)) }); err != nil {
				t.Fatal(err)
			}
			if st := e.Stats(); st.COUCopies == 0 {
				t.Error("updater made no copy-on-update old version")
			}
			// Primary database shows the new value immediately.
			if v := readVal(t, e, 100); v != 2 {
				t.Errorf("primary value = %d, want 2", v)
			}

			close(hook.resume)
			if err := <-ckptErr; err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			if st := e.Stats(); st.COULiveOld != 0 {
				t.Errorf("COULiveOld = %d after checkpoint, want 0", st.COULiveOld)
			}

			// The checkpoint (copy 0) must contain the OLD value 1: crash
			// before the log makes value 2 redo-visible... the log does
			// carry value 2 (SyncCommit), so instead inspect the backup
			// directly.
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			bs, err := backup.Open(p.Dir, e.NumSegments(), p.Storage.SegmentBytes)
			if err != nil {
				t.Fatal(err)
			}
			defer bs.Close()
			copyIdx, info, err := bs.Latest()
			if err != nil {
				t.Fatal(err)
			}
			if info.Algorithm != alg.String() {
				t.Errorf("backup algorithm = %q, want %q", info.Algorithm, alg)
			}
			segIdx := 100 * 32 / p.Storage.SegmentBytes // record 100's segment
			buf := make([]byte, p.Storage.SegmentBytes)
			if _, err := bs.ReadSegment(copyIdx, segIdx, buf); err != nil {
				t.Fatal(err)
			}
			off := (100 * 32) % p.Storage.SegmentBytes
			if got := decVal(buf[off:]); got != 1 {
				t.Errorf("backup holds %d for record 100, want the pre-checkpoint value 1", got)
			}
		})
	}
}

// TestCOUQuiesceDrainsTransactions checks that a COU checkpoint's begin
// waits for in-flight transactions and delays new ones.
func TestCOUQuiesceDrainsTransactions(t *testing.T) {
	p := testParams(t, COUCopy)
	e := mustOpen(t, p)
	defer e.Close()

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(0, encVal(9)); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := e.Checkpoint()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("COU checkpoint began with an active transaction: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("checkpoint stuck after quiesce should have released")
	}
	// The committed-before-begin update is part of the snapshot: partial
	// checkpoint flushed exactly one segment.
	if st := e.Stats(); st.SegmentsFlushed != 1 {
		t.Errorf("SegmentsFlushed = %d, want 1", st.SegmentsFlushed)
	}
}

// TestFuzzyTransactionStraddlesCheckpoint builds the paper's motivating
// fuzzy anomaly: a transaction updating records in two segments while the
// checkpointer flushes between the installs. The backup alone is then
// inconsistent, and recovery must repair it from the log (the active-
// transaction list forces the scan back to the transaction's first redo
// record).
func TestFuzzyTransactionStraddlesCheckpoint(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.SyncCommit = false // commit durability comes only from the LSN waits
	hook := newPauseHook(0)
	p.SegmentHook = hook.fn
	e := mustOpen(t, p)

	// Dirty two segments so the sweep will visit both.
	if err := e.Exec(func(tx *Txn) error {
		if err := tx.Write(0, encVal(1)); err != nil { // segment 0
			return err
		}
		return tx.Write(8, encVal(1)) // segment 1
	}); err != nil {
		t.Fatal(err)
	}

	// Start a transaction and log its first update BEFORE the checkpoint
	// begins, so it appears in the active-transaction list.
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(0, encVal(2)); err != nil {
		t.Fatal(err)
	}

	hook.armed = true
	ckptErr := make(chan error, 1)
	go func() {
		_, err := e.Checkpoint()
		ckptErr <- err
	}()
	select {
	case <-hook.paused: // segment 0 already flushed (without tx's update)
	case <-time.After(5 * time.Second):
		t.Fatal("checkpointer never paused")
	}

	// Now the straddling transaction also updates segment 1 and commits;
	// its segment-1 update gets installed before segment 1 is flushed.
	if err := tx.Write(8, encVal(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	close(hook.resume)
	if err := <-ckptErr; err != nil {
		t.Fatal(err)
	}

	// Crash: the backup is fuzzy (segment 0 pre-update, segment 1 post-
	// update). Recovery must replay the straddler from the log even though
	// its first record precedes the begin-checkpoint marker.
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	p.SegmentHook = nil
	e2, rep, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rep.ScanStartLSN >= rep.LogEndLSN {
		t.Error("scan start should precede log end")
	}
	if v := readVal(t, e2, 0); v != 2 {
		t.Errorf("record 0 = %d, want 2 (straddling txn must be replayed)", v)
	}
	if v := readVal(t, e2, 8); v != 2 {
		t.Errorf("record 8 = %d, want 2", v)
	}
}

// TestCheckpointResultFields sanity-checks the per-checkpoint summary.
func TestCheckpointResultFields(t *testing.T) {
	p := testParams(t, FastFuzzy)
	p.StableTail = true
	e := mustOpen(t, p)
	defer e.Close()
	if err := e.Exec(func(tx *Txn) error { return tx.Write(0, encVal(1)) }); err != nil {
		t.Fatal(err)
	}
	res, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 1 || res.TargetCopy != 0 || res.Algorithm != FastFuzzy {
		t.Errorf("result = %+v", res)
	}
	if res.BytesFlushed != int64(p.Storage.SegmentBytes) {
		t.Errorf("BytesFlushed = %d, want %d", res.BytesFlushed, p.Storage.SegmentBytes)
	}
	if res.EndLSN <= res.BeginLSN {
		t.Errorf("EndLSN %d should follow BeginLSN %d", res.EndLSN, res.BeginLSN)
	}
	res2, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res2.ID != 2 || res2.TargetCopy != 1 {
		t.Errorf("second checkpoint = %+v, want ID 2 target 1", res2)
	}
}
