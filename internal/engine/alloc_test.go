package engine

import (
	"testing"
)

// TestExecWriteAllocationFree pins the single-record write+commit path
// at zero heap allocations per operation: the transaction comes from
// the engine's spare slot, before-images from the per-txn freelist, and
// the WAL encode lands in the preallocated tail. A regression here
// breaks the perf:hotpath contract enforced by lint/alloccheck.
func TestExecWriteAllocationFree(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()

	val := encVal(7)
	// Warm up: first write takes the lazy allocations (txn, freelist,
	// lock table entries) that later writes reuse.
	for i := 0; i < 64; i++ {
		if err := e.ExecWrite(3, val); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(512, func() {
		if err := e.ExecWrite(3, val); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ExecWrite: %v allocs/op, want 0", allocs)
	}
}

// TestTxnCommitAllocationBounded pins the explicit Begin/Write/Commit
// cycle's designed cost: a user-held Txn is never recycled (recycleTxn
// covers only ExecWrite-internal transactions, so a caller retaining a
// finished Txn can't observe it mutating under a new identity), which
// leaves the transaction object and its write map as the only per-cycle
// allocations. The bound catches regressions such as re-introduced
// closure captures or before-image boxing without promising the zero
// that only the closure-free ExecWrite path can deliver.
func TestTxnCommitAllocationBounded(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()

	val := encVal(9)
	cycle := func() {
		txn, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := txn.Write(5, val); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(512, cycle)
	if allocs > 4 {
		t.Errorf("Begin/Write/Commit: %v allocs/op, want ≤ 4 (txn object, write map, image copy, map bucket)", allocs)
	}
}
