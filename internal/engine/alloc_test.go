package engine

import (
	"testing"
	"time"

	"mmdb/internal/obs"
)

// TestExecWriteAllocationFree pins the single-record write+commit path
// at zero heap allocations per operation: the transaction comes from
// the engine's spare slot, before-images from the per-txn freelist, and
// the WAL encode lands in the preallocated tail. A regression here
// breaks the perf:hotpath contract enforced by lint/alloccheck.
func TestExecWriteAllocationFree(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()

	val := encVal(7)
	// Warm up: first write takes the lazy allocations (txn, freelist,
	// lock table entries) that later writes reuse.
	for i := 0; i < 64; i++ {
		if err := e.ExecWrite(3, val); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(512, func() {
		if err := e.ExecWrite(3, val); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ExecWrite: %v allocs/op, want 0", allocs)
	}
}

// TestExecWriteAllocationFreeTraced re-pins the zero-allocation contract
// with the full observability surface armed: every transaction sampled
// by the span tracer (SpanSampleEvery 1) and the slow-op watchdog
// enabled. Span begin/end are atomic stores into the preallocated ring
// and the watchdog's under-threshold check is one atomic load, so
// tracing must not cost a single allocation on the hot path.
func TestExecWriteAllocationFreeTraced(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.SpanSampleEvery = 1
	p.SlowOpCommitThreshold = time.Hour // armed but never tripping
	e := mustOpen(t, p)
	defer e.Close()

	val := encVal(7)
	for i := 0; i < 64; i++ {
		if err := e.ExecWrite(3, val); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(512, func() {
		if err := e.ExecWrite(3, val); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ExecWrite with tracing: %v allocs/op, want 0", allocs)
	}
	spans := e.SpanEvents()
	if len(spans) == 0 {
		t.Fatal("no spans recorded with SpanSampleEvery=1")
	}
	var commits, children int
	for _, s := range spans {
		if s.Kind == obs.SpanCommit {
			commits++
		}
		if s.Parent != 0 {
			children++
		}
	}
	if commits == 0 || children == 0 {
		t.Errorf("span ring has %d commit roots and %d children, want both > 0", commits, children)
	}
	if n := e.Watchdog().Trips(); n != 0 {
		t.Errorf("watchdog tripped %d times under an hour-long threshold", n)
	}
}

// TestTxnCommitAllocationBounded pins the explicit Begin/Write/Commit
// cycle's designed cost: a user-held Txn is never recycled (recycleTxn
// covers only ExecWrite-internal transactions, so a caller retaining a
// finished Txn can't observe it mutating under a new identity), which
// leaves the transaction object and its write map as the only per-cycle
// allocations. The bound catches regressions such as re-introduced
// closure captures or before-image boxing without promising the zero
// that only the closure-free ExecWrite path can deliver.
func TestTxnCommitAllocationBounded(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()

	val := encVal(9)
	cycle := func() {
		txn, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := txn.Write(5, val); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(512, cycle)
	if allocs > 4 {
		t.Errorf("Begin/Write/Commit: %v allocs/op, want ≤ 4 (txn object, write map, image copy, map bucket)", allocs)
	}
}
