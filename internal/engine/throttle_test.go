package engine

import (
	"testing"
	"time"

	"mmdb/internal/simdisk"
)

func TestThrottleValidation(t *testing.T) {
	th := &Throttle{Disks: simdisk.Default(), Speedup: 0.5}
	if err := th.validate(); err == nil {
		t.Error("speedup < 1 accepted")
	}
	th = &Throttle{Disks: simdisk.Model{}, Speedup: 10}
	if err := th.validate(); err == nil {
		t.Error("invalid disk model accepted")
	}
	p := testParams(t, FuzzyCopy)
	p.CheckpointThrottle = &Throttle{Disks: simdisk.Default(), Speedup: 0}
	if _, err := Open(p); err == nil {
		t.Error("invalid throttle accepted by Open")
	}
}

func TestThrottleDelayMath(t *testing.T) {
	th := &Throttle{Disks: simdisk.Default(), Speedup: 1}
	// One 8192-word (32768-byte) segment across 20 disks:
	// (30ms + 8192·3µs)/20 = 2.7288 ms.
	got := th.delayPerSegment(32768)
	want := (30*time.Millisecond + 8192*3*time.Microsecond) / 20
	if got != want {
		t.Errorf("delay = %v, want %v", got, want)
	}
	th.Speedup = 1000
	if got := th.delayPerSegment(32768); got != want/1000 {
		t.Errorf("speedup delay = %v, want %v", got, want/1000)
	}
}

// TestThrottlePacesCheckpoints: a throttled full checkpoint must take at
// least the modeled time; unthrottled is far faster.
func TestThrottlePacesCheckpoints(t *testing.T) {
	run := func(th *Throttle) time.Duration {
		p := testParams(t, FastFuzzy)
		p.StableTail = true
		p.Full = true
		p.CheckpointThrottle = th
		e := mustOpen(t, p)
		defer e.Close()
		res, err := e.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if res.SegmentsFlushed != e.NumSegments() {
			t.Fatalf("flushed %d", res.SegmentsFlushed)
		}
		return res.Duration
	}
	// 32 segments of 256 B = 64 words each: modeled delay/segment at
	// speedup 100 is (30ms + 64·3µs)/20/100 ≈ 15.1 µs → ≥ 483 µs total.
	th := &Throttle{Disks: simdisk.Default(), Speedup: 100}
	perSeg := th.delayPerSegment(256)
	throttled := run(th)
	minWant := time.Duration(32) * perSeg
	if throttled < minWant {
		t.Errorf("throttled checkpoint took %v, want >= %v", throttled, minWant)
	}
}
