package engine

import (
	"math/rand"
	"testing"

	"mmdb/internal/faultfs"
)

// TestPaintStateConsistentAfterMetaRenameCrash is the regression test for
// stale per-segment checkpoint state surviving a crash at the narrowest
// completion window: the backup metadata rename that publishes a finished
// checkpoint. For every algorithm it checkpoints, crashes exactly at
// backup.meta.rename, recovers, and asserts the paint state the recovered
// checkpointer observes is pristine — no Paint mark, no zigzag bits, no
// attached old copy, a whole hourglass pool — so the first post-recovery
// run cannot mistake any segment for already-processed, and a full
// checkpoint accounts for every segment.
func TestPaintStateConsistentAfterMetaRenameCrash(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			inj := faultfs.New(int64(alg))
			if alg.RequiresStableTail() {
				// FASTFUZZY's correctness rests on the stable log tail
				// (stable RAM survives the crash), so the halt must not
				// swallow log writes.
				inj.ExemptOnHalt(faultfs.ClassLog)
			}
			// Hit 1 of backup.meta.rename is Open's genesis metadata; hit 2
			// is the rename publishing the first checkpoint's completion.
			inj.Arm(faultfs.Rule{Point: "backup.meta.rename", Kind: faultfs.Crash, AtHit: 2})

			p := testParams(t, alg)
			p.FS = inj.FS(nil)
			e := mustOpen(t, p)
			rng := rand.New(rand.NewSource(int64(alg)))
			oracle := make(map[uint64]uint64)
			applyWorkload(t, e, rng, 40, oracle)

			if _, err := e.Checkpoint(); err == nil {
				t.Fatal("checkpoint completed through the armed rename crash")
			}
			if !inj.Halted() {
				t.Fatal("armed backup.meta.rename rule never fired")
			}
			// Crash errors are expected: the halted filesystem refuses the
			// shutdown I/O, exactly as a power loss would.
			_ = e.Crash()

			p.FS = nil
			e2, rep, err := Recover(p)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer e2.Close()
			if rep.UsedCheckpoint {
				// The completion rename never landed, so the interrupted
				// checkpoint must not be visible to recovery.
				t.Errorf("recovery used checkpoint %d, but no checkpoint completed", rep.CheckpointID)
			}
			verifyOracle(t, e2, oracle)

			n := e2.store.NumSegments()
			for i := 0; i < n; i++ {
				seg := e2.store.Seg(i)
				seg.Lock()
				paint, zig, snap, old := seg.Paint, seg.ZigPending, seg.SnapNeed, seg.Old
				shadow := seg.Shadow
				seg.Unlock()
				if paint != 0 {
					t.Errorf("seg %d: recovered Paint = %d, want 0", i, paint)
				}
				if zig || snap {
					t.Errorf("seg %d: recovered zigzag bits ZigPending=%v SnapNeed=%v, want clear", i, zig, snap)
				}
				if old != nil {
					t.Errorf("seg %d: old copy survived recovery", i)
				}
				if alg == Zigzag && shadow == nil {
					t.Errorf("seg %d: zigzag shadow slab missing after recovery", i)
				}
			}
			if alg == Hourglass {
				e2.hg.mu.Lock()
				free, pend := len(e2.hg.free), len(e2.hg.pending)
				window := e2.hg.window()
				e2.hg.mu.Unlock()
				if free != window || pend != 0 {
					t.Errorf("recovered hourglass pool: %d free (want %d), %d pending (want 0)", free, window, pend)
				}
			}
			st := e2.Stats()
			if st.COULiveOld != 0 {
				t.Errorf("recovered COULiveOld = %d, want 0", st.COULiveOld)
			}

			// The recovered checkpointer must observe every segment: a full
			// checkpoint accounts for flushed + skipped == all segments and
			// completes (the crashed target copy is reusable).
			res, err := e2.Checkpoint()
			if err != nil {
				t.Fatalf("post-recovery checkpoint: %v", err)
			}
			if res.SegmentsFlushed+res.SegmentsSkipped != n {
				t.Errorf("post-recovery checkpoint observed %d+%d segments, want %d",
					res.SegmentsFlushed, res.SegmentsSkipped, n)
			}
			applyWorkload(t, e2, rng, 10, oracle)
			verifyOracle(t, e2, oracle)
		})
	}
}
