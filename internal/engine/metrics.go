package engine

import (
	"mmdb/internal/obs"
	"mmdb/internal/wal"
)

// engineObs bundles the engine's observability surface: one registry and
// one lifecycle tracer per engine, plus the histogram handles the hot
// paths record into. It is assembled before the engine's components so
// the WAL, backup store, and lock manager receive their instruments at
// construction time; the per-subsystem handles live here so metric names
// are declared in exactly one place.
//
// Everything inside is either immutable after newEngineObs or internally
// synchronized (obs types are atomic), so engineObs needs no lock.
type engineObs struct {
	reg      *obs.Registry
	tracer   *obs.Tracer
	spans    *obs.SpanTracer // nil when span tracing is disabled
	watchdog *obs.Watchdog

	// Engine-owned latency histograms.
	commitH  *obs.Histogram // commit latency, Commit entry to return
	ckptH    *obs.Histogram // whole-checkpoint duration
	ckptSegH *obs.Histogram // per-segment flush (write + throttle)
	lsnWaitH *obs.Histogram // write-ahead LSN waits in the checkpointer

	// Commit latency attribution (DESIGN.md §19): per-phase histograms
	// whose in-commit members (wal_append, flush_wait, cou_copy,
	// zigzag_flip, hourglass_stall) nest inside commitH and must sum to
	// at most its total; lock_wait and restart attribute the pre-commit
	// transaction phases and are reported alongside.
	attrLockWaitH  *obs.Histogram // lock waits incurred by transactions (contended only)
	attrWALAppendH *obs.Histogram // the commit record's log append
	attrFlushWaitH *obs.Histogram // group-commit durability wait (SyncCommit)
	attrCouCopyH   *obs.Histogram // copy-on-update old-version preservation
	attrZigzagH    *obs.Histogram // zigzag live→shadow image flips
	attrHgStallH   *obs.Histogram // hourglass window-buffer stalls
	attrRestartH   *obs.Histogram // work discarded by two-color restarts

	// Parallel-pipeline histograms (DESIGN.md §15).
	ckptWorkerH   *obs.Histogram // per-worker wall time inside one batch
	ckptBatchH    *obs.Histogram // segments handed out per parallel batch
	recApplyH     *obs.Histogram // per-worker redo-apply wall time
	recApplyRecsH *obs.Histogram // records applied per redo worker

	// Recovery phase durations (gauges: recovery happens once per engine).
	recBackupLoad *obs.Gauge
	recLogScan    *obs.Gauge
	recRedoApply  *obs.Gauge
	recTotal      *obs.Gauge

	// Instruments handed to the substrates.
	walMetrics *wal.Metrics
	backupSegH *obs.Histogram
	lockWaitH  *obs.Histogram
}

// newEngineObs builds the registry, tracer, span tracer, watchdog, and
// every engine-level instrument. spanSample is the resolved
// Params.SpanSampleEvery (negative disables the span tracer; the
// attribution histograms stay). Counter funcs over the engine's activity
// counters are added later by bind, once the engine struct exists.
func newEngineObs(spanSample int) *engineObs {
	reg := obs.NewRegistry()
	var spans *obs.SpanTracer
	if spanSample >= 0 {
		spans = obs.NewSpanTracer(0, spanSample)
	}
	eo := &engineObs{
		reg:      reg,
		tracer:   obs.NewTracer(0),
		spans:    spans,
		watchdog: obs.NewWatchdog(spans),

		commitH: reg.Histogram("mmdb_engine_commit_seconds",
			"Transaction commit latency (Commit call to return).", obs.ScaleNanosToSeconds),
		ckptH: reg.Histogram("mmdb_engine_checkpoint_seconds",
			"Whole-checkpoint duration, begin marker to end marker.", obs.ScaleNanosToSeconds),
		ckptSegH: reg.Histogram("mmdb_engine_checkpoint_segment_seconds",
			"Per-segment backup flush duration, including the disk-model throttle.", obs.ScaleNanosToSeconds),
		lsnWaitH: reg.Histogram("mmdb_engine_lsn_wait_seconds",
			"Checkpointer write-ahead waits for log durability.", obs.ScaleNanosToSeconds),

		attrLockWaitH: reg.Histogram("mmdb_commit_attr_lock_wait_seconds",
			"Commit attribution: lock waits incurred by transactions (contended acquisitions only).", obs.ScaleNanosToSeconds),
		attrWALAppendH: reg.Histogram("mmdb_commit_attr_wal_append_seconds",
			"Commit attribution: the commit record's log append.", obs.ScaleNanosToSeconds),
		attrFlushWaitH: reg.Histogram("mmdb_commit_attr_flush_wait_seconds",
			"Commit attribution: synchronous-commit group-commit durability wait.", obs.ScaleNanosToSeconds),
		attrCouCopyH: reg.Histogram("mmdb_commit_attr_cou_copy_seconds",
			"Commit attribution: copy-on-update old-version preservation inside install.", obs.ScaleNanosToSeconds),
		attrZigzagH: reg.Histogram("mmdb_commit_attr_zigzag_flip_seconds",
			"Commit attribution: zigzag live-to-shadow image flips inside install.", obs.ScaleNanosToSeconds),
		attrHgStallH: reg.Histogram("mmdb_commit_attr_hourglass_stall_seconds",
			"Commit attribution: waits for a free hourglass window buffer.", obs.ScaleNanosToSeconds),
		attrRestartH: reg.Histogram("mmdb_commit_attr_restart_seconds",
			"Commit attribution: transaction work discarded by a two-color restart.", obs.ScaleNanosToSeconds),

		ckptWorkerH: reg.Histogram("mmdb_ckpt_worker_flush_seconds",
			"Per-worker wall time spent processing one parallel checkpoint batch.", obs.ScaleNanosToSeconds),
		ckptBatchH: reg.Histogram("mmdb_ckpt_worker_batch_segments",
			"Segments handed out per parallel checkpoint batch.", obs.ScaleNone),
		recApplyH: reg.Histogram("mmdb_recovery_apply_worker_seconds",
			"Per-worker wall time in the partitioned redo-apply phase.", obs.ScaleNanosToSeconds),
		recApplyRecsH: reg.Histogram("mmdb_recovery_apply_records",
			"Redo records applied per partitioned apply worker.", obs.ScaleNone),

		recBackupLoad: reg.Gauge("mmdb_recovery_backup_load_seconds",
			"Recovery phase: reading the backup copy into primary memory."),
		recLogScan: reg.Gauge("mmdb_recovery_log_scan_seconds",
			"Recovery phase: locating the log end and the committed set."),
		recRedoApply: reg.Gauge("mmdb_recovery_redo_apply_seconds",
			"Recovery phase: applying committed after-images."),
		recTotal: reg.Gauge("mmdb_recovery_total_seconds",
			"Total wall-clock recovery duration."),

		walMetrics: &wal.Metrics{
			AppendSeconds: reg.Histogram("mmdb_wal_append_seconds",
				"Log append latency (encode into the tail).", obs.ScaleNanosToSeconds),
			FlushSeconds: reg.Histogram("mmdb_wal_flush_seconds",
				"Log flush latency (tail write plus optional sync).", obs.ScaleNanosToSeconds),
			FlushBatchBytes: reg.Histogram("mmdb_wal_flush_batch_bytes",
				"Bytes written per log flush (group-commit batch size).", obs.ScaleNone),
		},
		backupSegH: reg.Histogram("mmdb_backup_segment_write_seconds",
			"Backup segment image write latency.", obs.ScaleNanosToSeconds),
		lockWaitH: reg.Histogram("mmdb_lockmgr_wait_seconds",
			"Lock wait time, enqueue to grant, timeout, or deadlock refusal.", obs.ScaleNanosToSeconds),
	}
	// The commit record's append is measured inside wal.Append (where the
	// clock is already read) and lands in the attribution histogram.
	eo.walMetrics.CommitAppendSeconds = eo.attrWALAppendH
	// Runtime health rides on the same registry so GC pauses and
	// scheduler latency can be read next to checkpoint interference.
	obs.NewRuntimeHarvester(reg)
	return eo
}

// bind registers read-on-gather counters over the engine's existing
// atomic counters and substrate stats, so exposition shows them without
// double-counting the hot-path increments.
func (eo *engineObs) bind(e *Engine) {
	reg := eo.reg
	c := &e.ctr
	reg.CounterFunc("mmdb_engine_txns_begun_total", "Transactions begun.", c.txnsBegun.Load)
	reg.CounterFunc("mmdb_engine_txns_committed_total", "Transactions committed.", c.txnsCommitted.Load)
	reg.CounterFunc("mmdb_engine_txns_aborted_total", "Transactions aborted (including restarts).", c.txnsAborted.Load)
	reg.CounterFunc("mmdb_engine_color_restarts_total", "Aborts forced by the two-color rule.", c.colorRestarts.Load)
	reg.CounterFunc("mmdb_engine_lock_aborts_total", "Aborts caused by lock timeouts.", c.lockAborts.Load)
	reg.CounterFunc("mmdb_engine_records_read_total", "Records read by transactions.", c.recordsRead.Load)
	reg.CounterFunc("mmdb_engine_records_written_total", "Records written by transactions.", c.recordsWritten.Load)
	reg.CounterFunc("mmdb_engine_checkpoints_total", "Checkpoints completed.", c.checkpoints.Load)
	reg.CounterFunc("mmdb_engine_checkpoint_segments_flushed_total", "Segments flushed to the backup.", c.segmentsFlushed.Load)
	reg.CounterFunc("mmdb_engine_checkpoint_segments_skipped_total", "Clean segments skipped by partial checkpoints.", c.segmentsSkipped.Load)
	reg.CounterFunc("mmdb_engine_checkpoint_flushed_bytes_total", "Bytes flushed to the backup.", c.bytesFlushed.Load)
	reg.CounterFunc("mmdb_engine_cou_copies_total", "Copy-on-update old-version copies.", c.couCopies.Load)
	reg.CounterFunc("mmdb_engine_cou_copy_bytes_total", "Bytes copied for copy-on-update old versions.", c.couCopyBytes.Load)
	reg.GaugeFunc("mmdb_engine_cou_live_old", "Old copies currently held.",
		func() float64 { return float64(c.couLive.Load()) })
	reg.CounterFunc("mmdb_engine_zigzag_flips_total", "Zigzag Data/Shadow image flips made by updaters.", c.zigzagFlips.Load)
	reg.CounterFunc("mmdb_engine_zigzag_flip_bytes_total", "Bytes copied by zigzag image flips.", c.zigzagFlipBytes.Load)
	reg.CounterFunc("mmdb_engine_hourglass_waits_total", "Writer waits for an hourglass window buffer.", c.hgWaits.Load)
	reg.CounterFunc("mmdb_engine_lsn_waits_total", "Checkpointer LSN durability waits.", c.lsnWaits.Load)
	reg.CounterFunc("mmdb_engine_log_compactions_total", "Log head compactions.", c.compactions.Load)
	reg.CounterFunc("mmdb_engine_log_compacted_bytes_total", "Log bytes dropped by compaction.", c.compactBytes.Load)

	locks := e.locks
	reg.CounterFunc("mmdb_lockmgr_acquires_total", "Lock acquisitions.",
		func() uint64 { return locks.Stats().Acquires })
	reg.CounterFunc("mmdb_lockmgr_releases_total", "Lock releases.",
		func() uint64 { return locks.Stats().Releases })
	reg.CounterFunc("mmdb_lockmgr_waits_total", "Lock requests that waited.",
		func() uint64 { return locks.Stats().Waits })
	reg.CounterFunc("mmdb_lockmgr_timeouts_total", "Lock waits that timed out.",
		func() uint64 { return locks.Stats().Timeouts })

	lg := e.log
	reg.CounterFunc("mmdb_wal_appends_total", "Log records appended.",
		func() uint64 { return lg.Stats().Appends })
	reg.CounterFunc("mmdb_wal_flushes_total", "Log tail flushes.",
		func() uint64 { return lg.Stats().Flushes })
	reg.CounterFunc("mmdb_wal_flushed_bytes_total", "Log bytes flushed.",
		func() uint64 { return lg.Stats().BytesFlushed })
	reg.GaugeFunc("mmdb_wal_durable_lsn", "Durability watermark LSN.",
		func() float64 { return float64(lg.DurableLSN()) })
	reg.GaugeFunc("mmdb_wal_end_lsn", "Logical end-of-log LSN.",
		func() float64 { return float64(lg.NextLSN()) })
}

// MetricsRegistry returns the engine's metrics registry. Callers may
// register additional metrics (kvstore registers its op latencies here).
func (e *Engine) MetricsRegistry() *obs.Registry { return e.eo.reg }

// Tracer returns the engine's lifecycle-event tracer.
func (e *Engine) Tracer() *obs.Tracer { return e.eo.tracer }

// TraceEvents dumps the currently retained lifecycle events in order.
func (e *Engine) TraceEvents() []obs.Event { return e.eo.tracer.Dump() }

// Spans returns the engine's span tracer (nil when disabled).
func (e *Engine) Spans() *obs.SpanTracer { return e.eo.spans }

// SpanEvents dumps the currently retained completed spans in order.
func (e *Engine) SpanEvents() []obs.Span { return e.eo.spans.Dump() }

// Watchdog returns the engine's slow-op watchdog.
func (e *Engine) Watchdog() *obs.Watchdog { return e.eo.watchdog }

// SlowOps returns the watchdog's retained slow-op dumps, oldest first.
func (e *Engine) SlowOps() []obs.SlowOp { return e.eo.watchdog.SlowOps() }
