package engine

import (
	"os"
	"path/filepath"

	"errors"
	"fmt"
	"math/rand"
	"mmdb/internal/backup"
	"sync"
	"testing"
)

// applyWorkload runs n transactions of 1–5 uniform record updates each
// (the paper's load model) through Exec, maintaining an oracle of
// committed values. With SyncCommit, every committed transaction is
// durable, so after any crash the recovered database must equal the
// oracle exactly.
func applyWorkload(t *testing.T, e *Engine, rng *rand.Rand, n int, oracle map[uint64]uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		updates := map[uint64]uint64{}
		for j := 0; j < 1+rng.Intn(5); j++ {
			updates[uint64(rng.Intn(e.NumRecords()))] = rng.Uint64()
		}
		err := e.Exec(func(tx *Txn) error {
			for rid, v := range updates {
				if err := tx.Write(rid, encVal(v)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		for rid, v := range updates {
			oracle[rid] = v
		}
	}
}

func verifyOracle(t *testing.T, e *Engine, oracle map[uint64]uint64) {
	t.Helper()
	buf := make([]byte, e.RecordBytes())
	for rid := 0; rid < e.NumRecords(); rid++ {
		if err := e.ReadRecord(uint64(rid), buf); err != nil {
			t.Fatalf("ReadRecord(%d): %v", rid, err)
		}
		want := oracle[uint64(rid)]
		if got := decVal(buf); got != want {
			t.Fatalf("record %d = %d, want %d", rid, got, want)
		}
	}
}

// TestCrashRecoveryOracle is the central correctness experiment: for every
// algorithm, run a random workload interleaved with checkpoints, crash,
// recover, and require the recovered primary database to equal the
// committed-transaction oracle. Repeated with full checkpoints and a
// stable log tail.
func TestCrashRecoveryOracle(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Params)
	}{
		{"partial", func(p *Params) {}},
		{"full", func(p *Params) { p.Full = true }},
		{"stable-tail", func(p *Params) { p.StableTail = true }},
	}
	for _, alg := range Algorithms {
		for _, v := range variants {
			alg, v := alg, v
			t.Run(fmt.Sprintf("%s/%s", alg, v.name), func(t *testing.T) {
				p := testParams(t, alg)
				v.mutate(&p)
				e := mustOpen(t, p)
				rng := rand.New(rand.NewSource(int64(alg)*100 + 1))
				oracle := make(map[uint64]uint64)

				applyWorkload(t, e, rng, 40, oracle)
				if _, err := e.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				applyWorkload(t, e, rng, 40, oracle)
				if _, err := e.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				// Updates after the last checkpoint must come from the log.
				applyWorkload(t, e, rng, 40, oracle)

				if err := e.Crash(); err != nil {
					t.Fatalf("Crash: %v", err)
				}
				e2, rep, err := Recover(p)
				if err != nil {
					t.Fatalf("Recover: %v", err)
				}
				defer e2.Close()
				if !rep.UsedCheckpoint {
					t.Error("recovery ignored the checkpoint")
				}
				if rep.UpdatesApplied == 0 {
					t.Error("recovery applied no redo (post-checkpoint updates must replay)")
				}
				verifyOracle(t, e2, oracle)

				// The recovered engine keeps working: more transactions and
				// another checkpoint.
				applyWorkload(t, e2, rng, 20, oracle)
				if _, err := e2.Checkpoint(); err != nil {
					t.Fatalf("post-recovery checkpoint: %v", err)
				}
				verifyOracle(t, e2, oracle)
			})
		}
	}
}

// TestCrashRecoveryConcurrent runs the oracle test with concurrent writer
// goroutines over disjoint key ranges while the checkpoint loop runs
// back-to-back, for every algorithm.
func TestCrashRecoveryConcurrent(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			p := testParams(t, alg)
			p.AutoCheckpoint = true
			p.CheckpointInterval = 0 // back-to-back
			e := mustOpen(t, p)

			const writers = 4
			perWriter := e.NumRecords() / writers
			oracles := make([]map[uint64]uint64, writers)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				oracles[w] = make(map[uint64]uint64)
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					base := uint64(w * perWriter)
					for i := 0; i < 60; i++ {
						updates := map[uint64]uint64{}
						for j := 0; j < 1+rng.Intn(4); j++ {
							updates[base+uint64(rng.Intn(perWriter))] = rng.Uint64()
						}
						err := e.Exec(func(tx *Txn) error {
							for rid, v := range updates {
								if err := tx.Write(rid, encVal(v)); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							t.Errorf("writer %d txn %d: %v", w, i, err)
							return
						}
						for rid, v := range updates {
							oracles[w][rid] = v
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				e.Close()
				return
			}
			// Let at least one checkpoint complete so recovery exercises
			// both the backup and the log.
			for e.Stats().Checkpoints == 0 {
				if _, err := e.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Crash(); err != nil {
				t.Fatal(err)
			}

			oracle := make(map[uint64]uint64)
			for _, o := range oracles {
				for k, v := range o {
					oracle[k] = v
				}
			}
			e2, _, err := Recover(p)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer e2.Close()
			verifyOracle(t, e2, oracle)

			if alg.TwoColor() {
				// Back-to-back two-color checkpoints under load should have
				// induced at least some restarts; Exec hides them but the
				// stats record p_restart's numerator.
				t.Logf("%v: color restarts = %d of %d attempts", alg,
					e2.Stats().ColorRestarts, e2.Stats().TxnsBegun)
			}
		})
	}
}

// TestRecoveryWithoutCheckpoint crashes before any checkpoint completes:
// recovery must rebuild from the zero state plus the whole log.
func TestRecoveryWithoutCheckpoint(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	e := mustOpen(t, p)
	rng := rand.New(rand.NewSource(3))
	oracle := make(map[uint64]uint64)
	applyWorkload(t, e, rng, 30, oracle)
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, rep, err := Recover(p)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer e2.Close()
	if rep.UsedCheckpoint {
		t.Error("no checkpoint existed, but recovery claims to have used one")
	}
	if rep.SegmentsLoaded != 0 {
		t.Errorf("SegmentsLoaded = %d, want 0", rep.SegmentsLoaded)
	}
	verifyOracle(t, e2, oracle)
}

// TestMidCheckpointCrashFallsBack crashes a checkpoint halfway through its
// sweep; the ping-pong discipline must leave the previous checkpoint
// usable, and recovery must still reach the oracle via the log.
func TestMidCheckpointCrashFallsBack(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			crashErr := errors.New("injected crash")
			p := testParams(t, alg)
			var hookArmed bool
			var segsDone int
			p.SegmentHook = func(_ uint64, _, _ int) error {
				if !hookArmed {
					return nil
				}
				segsDone++
				if segsDone >= 3 {
					return crashErr
				}
				return nil
			}
			e := mustOpen(t, p)
			rng := rand.New(rand.NewSource(int64(alg)))
			oracle := make(map[uint64]uint64)

			applyWorkload(t, e, rng, 40, oracle)
			if _, err := e.Checkpoint(); err != nil { // checkpoint 1 completes
				t.Fatal(err)
			}
			applyWorkload(t, e, rng, 40, oracle)

			hookArmed = true
			if _, err := e.Checkpoint(); !errors.Is(err, crashErr) { // checkpoint 2 dies mid-sweep
				t.Fatalf("checkpoint 2 error = %v, want injected crash", err)
			}
			if err := e.Crash(); err != nil {
				t.Fatal(err)
			}

			p.SegmentHook = nil
			e2, rep, err := Recover(p)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer e2.Close()
			if !rep.UsedCheckpoint || rep.CheckpointID != 1 {
				t.Errorf("recovered from checkpoint %d (used=%v), want the completed checkpoint 1",
					rep.CheckpointID, rep.UsedCheckpoint)
			}
			verifyOracle(t, e2, oracle)
		})
	}
}

// TestPingPongPartialStaleness exercises DESIGN.md §6.1: a segment updated
// before the previous checkpoint (of the other copy) and clean since must
// still be flushed into the current copy, or recovery from the current
// copy loses it. The redo log is arranged to not cover the update.
func TestPingPongPartialStaleness(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	e := mustOpen(t, p)

	// Record 0 (segment 0) is updated once, before checkpoint 1.
	if err := e.Exec(func(tx *Txn) error { return tx.Write(0, encVal(111)) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil { // ckpt 1 → copy 0 (has record 0)
		t.Fatal(err)
	}
	// Record 8 (segment 1) is updated between checkpoints 1 and 2.
	if err := e.Exec(func(tx *Txn) error { return tx.Write(8, encVal(222)) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil { // ckpt 2 → copy 1 (must carry both)
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil { // ckpt 3 → copy 0 (must carry record 8!)
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}

	e2, rep, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rep.CheckpointID != 3 || rep.UsedCopy != 0 {
		t.Fatalf("recovered from checkpoint %d copy %d, want 3/0", rep.CheckpointID, rep.UsedCopy)
	}
	// Both updates precede checkpoint 3's begin marker, so neither is
	// replayed from the log; they must be in copy 0 itself.
	if rep.UpdatesApplied != 0 {
		t.Errorf("expected no redo, got %d updates applied", rep.UpdatesApplied)
	}
	if v := readVal(t, e2, 0); v != 111 {
		t.Errorf("record 0 = %d, want 111", v)
	}
	if v := readVal(t, e2, 8); v != 222 {
		t.Errorf("record 8 = %d, want 222 (stale ping-pong copy; see DESIGN.md §6.1)", v)
	}
}

// TestAsyncCommitLostTail shows the durability gap of asynchronous commit
// (the paper's design choice): with a volatile tail and no checkpoint
// forcing the flush, a committed-but-unflushed transaction is lost by a
// crash — and recovery still yields a consistent (older) state.
func TestAsyncCommitLostTail(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.SyncCommit = false
	e := mustOpen(t, p)

	if err := e.Exec(func(tx *Txn) error { return tx.Write(1, encVal(5)) }); err != nil {
		t.Fatal(err)
	}
	if err := e.log.Flush(); err != nil { // make the first txn durable
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Txn) error { return tx.Write(1, encVal(6)) }); err != nil {
		t.Fatal(err)
	}
	// Crash with txn 2 only in the volatile tail.
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, _, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if v := readVal(t, e2, 1); v != 5 {
		t.Errorf("record 1 = %d, want 5 (txn 2 was in the lost volatile tail)", v)
	}
}

// TestStableTailSavesAsyncCommits is the same scenario with a stable log
// tail: nothing is lost.
func TestStableTailSavesAsyncCommits(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.SyncCommit = false
	p.StableTail = true
	e := mustOpen(t, p)
	if err := e.Exec(func(tx *Txn) error { return tx.Write(1, encVal(5)) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Txn) error { return tx.Write(1, encVal(6)) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, _, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if v := readVal(t, e2, 1); v != 6 {
		t.Errorf("record 1 = %d, want 6 (stable tail keeps async commits)", v)
	}
}

// TestCheckpointForcesWriteAhead: with async commit and a volatile tail, a
// checkpoint that flushes a segment must first force the log past the
// segment's last update (the LSN condition), so the committed transaction
// survives even though its commit never waited for the disk.
func TestCheckpointForcesWriteAhead(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.SyncCommit = false
	e := mustOpen(t, p)
	if err := e.Exec(func(tx *Txn) error { return tx.Write(1, encVal(7)) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, _, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if v := readVal(t, e2, 1); v != 7 {
		t.Errorf("record 1 = %d, want 7 (checkpoint must flush the log first)", v)
	}
}

// TestUncommittedNeverRecovered leaves a transaction's redo records in the
// durable log without a commit record; redo-only recovery must discard
// them.
func TestUncommittedNeverRecovered(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	e := mustOpen(t, p)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(2, encVal(13)); err != nil {
		t.Fatal(err)
	}
	if err := e.log.Flush(); err != nil { // redo record durable, no commit
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, rep, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rep.UpdatesDiscarded == 0 {
		t.Error("expected discarded updates from the uncommitted transaction")
	}
	if v := readVal(t, e2, 2); v != 0 {
		t.Errorf("record 2 = %d, want 0 (uncommitted update applied!)", v)
	}
}

// TestCorruptBackupFailsLoudly: a bit flip in a backup slot must fail
// recovery with a checksum error, never silently load garbage.
func TestCorruptBackupFailsLoudly(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	e := mustOpen(t, p)
	rng := rand.New(rand.NewSource(41))
	oracle := make(map[uint64]uint64)
	applyWorkload(t, e, rng, 30, oracle)
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the first backup slot of copy 0.
	f, err := os.OpenFile(filepath.Join(p.Dir, "backup0.db"), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], 3); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], 3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, err = Recover(p)
	if err == nil {
		t.Fatal("recovery from a corrupt backup succeeded")
	}
	if !errors.Is(err, backup.ErrBadSegment) {
		t.Fatalf("err = %v, want ErrBadSegment", err)
	}
}

// TestRecoverGeometryMismatch ensures recovery rejects a different
// database geometry rather than silently misinterpreting the files.
func TestRecoverGeometryMismatch(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	e := mustOpen(t, p)
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.Storage.SegmentBytes *= 2
	if _, _, err := Recover(p2); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

// TestGracefulCloseThenRecover: a clean shutdown (Close flushes the log)
// must recover to the exact pre-shutdown state, including transactions
// that committed asynchronously after the last checkpoint.
func TestGracefulCloseThenRecover(t *testing.T) {
	p := testParams(t, COUFlush)
	p.SyncCommit = false // Close's flush is what makes these durable
	e := mustOpen(t, p)
	rng := rand.New(rand.NewSource(31))
	oracle := make(map[uint64]uint64)
	applyWorkload(t, e, rng, 30, oracle)
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyWorkload(t, e, rng, 30, oracle)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, rep, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rep.UpdatesApplied == 0 {
		t.Error("post-checkpoint async commits should have replayed")
	}
	verifyOracle(t, e2, oracle)
}

// TestConcurrentReadersDuringCheckpoints runs read-only transactions
// against a fixed dataset while every algorithm's checkpointer sweeps;
// readers must always see the committed values (and only two-color
// algorithms may force read retries).
func TestConcurrentReadersDuringCheckpoints(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			p := testParams(t, alg)
			p.AutoCheckpoint = true
			e := mustOpen(t, p)
			defer e.Close()
			// Fixed dataset.
			if err := e.Exec(func(tx *Txn) error {
				for rid := 0; rid < e.NumRecords(); rid++ {
					if err := tx.Write(uint64(rid), encVal(uint64(rid)*3+1)); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(r)))
					for i := 0; i < 200; i++ {
						rid := uint64(rng.Intn(e.NumRecords()))
						err := e.Exec(func(tx *Txn) error {
							v, err := tx.Read(rid)
							if err != nil {
								return err
							}
							if decVal(v) != rid*3+1 {
								t.Errorf("record %d = %d, want %d", rid, decVal(v), rid*3+1)
							}
							return nil
						})
						if err != nil {
							t.Errorf("reader %d: %v", r, err)
							return
						}
					}
				}(r)
			}
			wg.Wait()
		})
	}
}

// TestTxnIDsNotReusedAcrossRecovery is the regression test for a bug the
// randomized soak found: recovery must continue the transaction ID
// sequence past every ID visible in the log. If IDs restart at 1, a new
// committed transaction can alias an old *aborted* one, and the next
// recovery replays the aborted redo records as committed.
func TestTxnIDsNotReusedAcrossRecovery(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	e := mustOpen(t, p)

	// Txn 1 commits (so there is a commit record for ID 1 in the log).
	if err := e.Exec(func(tx *Txn) error { return tx.Write(0, encVal(7)) }); err != nil {
		t.Fatal(err)
	}
	// Crash and recover: the ID sequence must not restart.
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, _, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	// This transaction would get ID 1 again under the bug; it ABORTS
	// after logging a poison value.
	tx, err := e2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID() <= 1 {
		t.Fatalf("post-recovery transaction reused ID %d", tx.ID())
	}
	if err := tx.Write(1, encVal(666)); err != nil {
		t.Fatal(err)
	}
	if err := e2.log.Flush(); err != nil { // make the aborted redo durable
		t.Fatal(err)
	}
	tx.Abort()

	if err := e2.Crash(); err != nil {
		t.Fatal(err)
	}
	e3, _, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if v := readVal(t, e3, 1); v != 0 {
		t.Fatalf("aborted transaction's write replayed: record 1 = %d", v)
	}
	if v := readVal(t, e3, 0); v != 7 {
		t.Fatalf("committed write lost: record 0 = %d", v)
	}
}

// TestLogCompactionAfterCheckpoints: repeated checkpoints compact the log
// head, LSNs stay stable, and recovery still reaches the oracle from the
// compacted log.
func TestLogCompactionAfterCheckpoints(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	e := mustOpen(t, p)
	rng := rand.New(rand.NewSource(21))
	oracle := make(map[uint64]uint64)
	for round := 0; round < 4; round++ {
		applyWorkload(t, e, rng, 30, oracle)
		if _, err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.LogCompactions == 0 || st.LogBytesCompacted == 0 {
		t.Fatalf("no compaction happened: %+v", st)
	}
	if st.LogCompactFailures != 0 {
		t.Fatalf("%d compaction failures", st.LogCompactFailures)
	}
	if base := e.log.Base(); base == 0 {
		t.Error("log base still 0 after compactions")
	}
	applyWorkload(t, e, rng, 20, oracle) // tail to replay
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, rep, err := Recover(p)
	if err != nil {
		t.Fatalf("Recover from compacted log: %v", err)
	}
	defer e2.Close()
	if rep.UpdatesApplied == 0 {
		t.Error("no redo applied")
	}
	verifyOracle(t, e2, oracle)
}

// TestLogCompactionDisabled keeps the whole log when asked.
func TestLogCompactionDisabled(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.DisableLogCompaction = true
	e := mustOpen(t, p)
	defer e.Close()
	rng := rand.New(rand.NewSource(22))
	oracle := make(map[uint64]uint64)
	for round := 0; round < 3; round++ {
		applyWorkload(t, e, rng, 20, oracle)
		if _, err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.LogCompactions != 0 {
		t.Errorf("compactions ran despite DisableLogCompaction: %d", st.LogCompactions)
	}
	if base := e.log.Base(); base != 0 {
		t.Errorf("log base moved to %d with compaction disabled", base)
	}
}

// TestRepeatedCrashRecoverCycles runs several crash/recover cycles,
// extending the workload each time; state must persist across all of them.
func TestRepeatedCrashRecoverCycles(t *testing.T) {
	p := testParams(t, COUCopy)
	rng := rand.New(rand.NewSource(11))
	oracle := make(map[uint64]uint64)

	e := mustOpen(t, p)
	for cycle := 0; cycle < 4; cycle++ {
		applyWorkload(t, e, rng, 25, oracle)
		if cycle%2 == 0 {
			if _, err := e.Checkpoint(); err != nil {
				t.Fatalf("cycle %d checkpoint: %v", cycle, err)
			}
		}
		if err := e.Crash(); err != nil {
			t.Fatalf("cycle %d crash: %v", cycle, err)
		}
		var err error
		e, _, err = Recover(p)
		if err != nil {
			t.Fatalf("cycle %d recover: %v", cycle, err)
		}
		verifyOracle(t, e, oracle)
	}
	e.Close()
}
