package engine

import (
	"fmt"
	"strings"
)

// Algorithm selects a checkpoint algorithm from Section 3 of the paper,
// or one of the two post-paper extensions (Zigzag, Hourglass).
type Algorithm uint8

// The five checkpoint algorithms compared by the paper, plus FASTFUZZY
// (introduced in Section 4 for systems with a stable log tail), plus the
// two consistent-snapshot algorithms of Cao et al., "A Comparative Study
// of Consistent Snapshot Algorithms for Main-Memory Database Systems":
// Zigzag and Hourglass, adapted here from page to segment granularity.
const (
	// FuzzyCopy (the paper's FUZZYCOPY) copies each segment into an I/O
	// buffer and flushes the buffer once the log is durable past the
	// segment's last update, so the write-ahead rule holds without any
	// transaction synchronization.
	FuzzyCopy Algorithm = iota + 1
	// FastFuzzy (FASTFUZZY) flushes segments directly from the database,
	// with no buffer copy and no LSN checks. It is only safe with a
	// stable log tail (Section 4).
	FastFuzzy
	// TwoColorFlush (2CFLUSH) is Pu's black/white algorithm with the
	// segment flushed to the backup disks while its lock is held.
	TwoColorFlush
	// TwoColorCopy (2CCOPY) is Pu's algorithm with the segment copied to a
	// buffer under the lock and flushed after the lock is released.
	TwoColorCopy
	// COUFlush (COUFLUSH) is copy-on-update checkpointing with untouched
	// dirty segments flushed while latched.
	COUFlush
	// COUCopy (COUCOPY) is copy-on-update checkpointing with untouched
	// dirty segments copied to a buffer and flushed after unlatching.
	COUCopy
	// Zigzag (ZIGZAG) keeps two full database images (Data/Shadow) and
	// two bits per segment. At checkpoint begin (under quiescence) every
	// segment is armed; the first writer to touch an armed segment flips
	// its live image onto the shadow slab, preserving the begin-state
	// image, which the checkpointer then flushes without latching. The
	// backup is transaction-consistent at begin, like COU, but the
	// write-path cost is a segment copy instead of a buffer allocation.
	Zigzag
	// Hourglass (HOURGLASS) is windowed copy-on-update: old versions are
	// preserved in a fixed pool of W preallocated segment buffers (the
	// hourglass "waist"). A writer needing a buffer when the pool is
	// empty waits until the checkpointer returns one, bounding snapshot
	// memory at W segments where plain COU is unbounded.
	Hourglass
)

// Algorithms lists every algorithm in presentation order.
var Algorithms = []Algorithm{FuzzyCopy, FastFuzzy, TwoColorFlush, TwoColorCopy, COUFlush, COUCopy, Zigzag, Hourglass}

// AllAlgorithms returns a fresh copy of the full algorithm list. Every
// consumer that sweeps "all algorithms" (the crash matrix, ckptbench
// -matrix, the mmdb package's public Algorithms list) derives from this
// single slice, so adding an algorithm here extends them all.
func AllAlgorithms() []Algorithm {
	out := make([]Algorithm, len(Algorithms))
	copy(out, Algorithms)
	return out
}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case FuzzyCopy:
		return "FUZZYCOPY"
	case FastFuzzy:
		return "FASTFUZZY"
	case TwoColorFlush:
		return "2CFLUSH"
	case TwoColorCopy:
		return "2CCOPY"
	case COUFlush:
		return "COUFLUSH"
	case COUCopy:
		return "COUCOPY"
	case Zigzag:
		return "ZIGZAG"
	case Hourglass:
		return "HOURGLASS"
	default:
		return fmt.Sprintf("engine.Algorithm(%d)", uint8(a))
	}
}

// ParseAlgorithm resolves a (case-insensitive) paper name to an Algorithm.
// The error enumerates every valid name, derived from Algorithms so a new
// algorithm appears without touching this function.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms {
		if strings.EqualFold(s, a.String()) {
			return a, nil
		}
	}
	names := make([]string, len(Algorithms))
	for i, a := range Algorithms {
		names[i] = a.String()
	}
	return 0, fmt.Errorf("engine: unknown checkpoint algorithm %q (want one of %s)", s, strings.Join(names, ", "))
}

// Valid reports whether a names a known algorithm.
func (a Algorithm) Valid() bool { return a >= FuzzyCopy && a <= Hourglass }

// TwoColor reports whether the algorithm is a black/white locking
// algorithm, which aborts transactions that touch both colors.
func (a Algorithm) TwoColor() bool { return a == TwoColorFlush || a == TwoColorCopy }

// CopyOnUpdate reports whether the algorithm requires transactions to
// preserve pre-checkpoint segment versions while a checkpoint runs.
// Hourglass is deliberately excluded: it preserves old versions too, but
// through the bounded buffer pool rather than per-segment allocation, so
// the COU dispatch paths (dropOldCopies, the unbounded-buffer accounting)
// do not apply to it unchanged.
func (a Algorithm) CopyOnUpdate() bool { return a == COUFlush || a == COUCopy }

// Fuzzy reports whether the algorithm produces fuzzy (not
// transaction-consistent) backups.
func (a Algorithm) Fuzzy() bool { return a == FuzzyCopy || a == FastFuzzy }

// CopiesSegments reports whether the checkpointer copies segments into a
// buffer before flushing (the source of the S_seg data-movement cost).
func (a Algorithm) CopiesSegments() bool {
	return a == FuzzyCopy || a == TwoColorCopy || a == COUCopy
}

// UsesLSN reports whether the algorithm must check log sequence numbers
// before flushing a segment to preserve the write-ahead rule. COU
// algorithms never need LSNs (every update they flush predates the
// checkpoint's begin marker, whose log tail flush made it durable), and
// FASTFUZZY relies on a stable tail instead. Zigzag and Hourglass flush
// only begin-state images, so they inherit the COU argument.
func (a Algorithm) UsesLSN() bool {
	return a == FuzzyCopy || a == TwoColorFlush || a == TwoColorCopy
}

// RequiresStableTail reports whether the algorithm is only correct with a
// stable log tail.
func (a Algorithm) RequiresStableTail() bool { return a == FastFuzzy }

// RequiresQuiesce reports whether checkpoint begin must quiesce
// transaction processing. The quiesce family shares the same begin
// protocol: stop writers, stamp τ, flush the begin record, then publish
// the run so writers resume against it.
func (a Algorithm) RequiresQuiesce() bool {
	return a.CopyOnUpdate() || a == Zigzag || a == Hourglass
}
