package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuiltinOpsApply(t *testing.T) {
	rec := make([]byte, 32)
	binary.LittleEndian.PutUint64(rec, 100)
	if err := applyAdd64(rec, Add64Operand(42)); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(rec); got != 142 {
		t.Errorf("after +42: %d", got)
	}
	if err := applyAdd64(rec, Add64Operand(-200)); err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.LittleEndian.Uint64(rec)); got != -58 {
		t.Errorf("after -200: %d", got)
	}

	if err := applyStoreAt(rec, StoreAtOperand(10, []byte("xyz"))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec[10:13], []byte("xyz")) {
		t.Error("OpStoreAt content missing")
	}

	// Error paths.
	if err := applyAdd64(rec, []byte{1, 2}); err == nil {
		t.Error("short Add64 operand accepted")
	}
	if err := applyAdd64(make([]byte, 4), Add64Operand(1)); err == nil {
		t.Error("short record accepted by Add64")
	}
	if err := applyStoreAt(rec, StoreAtOperand(30, []byte("long"))); err == nil {
		t.Error("out-of-bounds StoreAt accepted")
	}
	if err := applyStoreAt(rec, []byte{1}); err == nil {
		t.Error("short StoreAt operand accepted")
	}
}

// TestAdd64TwosComplementQuick: applying +d then −d is the identity for
// arbitrary starting values and deltas.
func TestAdd64TwosComplementQuick(t *testing.T) {
	f := func(start uint64, delta int64) bool {
		rec := make([]byte, 8)
		binary.LittleEndian.PutUint64(rec, start)
		if applyAdd64(rec, Add64Operand(delta)) != nil {
			return false
		}
		if applyAdd64(rec, Add64Operand(-delta)) != nil {
			return false
		}
		return binary.LittleEndian.Uint64(rec) == start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyOpRequiresCOU(t *testing.T) {
	for _, alg := range []Algorithm{FuzzyCopy, TwoColorFlush} {
		e := mustOpen(t, testParams(t, alg))
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		err = tx.ApplyOp(1, OpAdd64, Add64Operand(1))
		if !errors.Is(err, ErrLogicalLoggingUnsupported) {
			t.Errorf("%v: ApplyOp err = %v, want ErrLogicalLoggingUnsupported", alg, err)
		}
		e.Close()
	}
}

func TestApplyOpVisibleInTxnAndAfterCommit(t *testing.T) {
	e := mustOpen(t, testParams(t, COUCopy))
	defer e.Close()
	if err := e.Exec(func(tx *Txn) error { return tx.Write(5, encVal(10)) }); err != nil {
		t.Fatal(err)
	}
	err := e.Exec(func(tx *Txn) error {
		if err := tx.ApplyOp(5, OpAdd64, Add64Operand(7)); err != nil {
			return err
		}
		v, err := tx.Read(5)
		if err != nil {
			return err
		}
		if decVal(v) != 17 {
			t.Errorf("own logical result = %d, want 17", decVal(v))
		}
		// Stack another op on the buffered image.
		return tx.ApplyOp(5, OpAdd64, Add64Operand(3))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := readVal(t, e, 5); v != 20 {
		t.Errorf("committed value = %d, want 20", v)
	}
	if st := e.Stats(); st.LogicalOps != 2 {
		t.Errorf("LogicalOps = %d, want 2", st.LogicalOps)
	}
}

func TestApplyOpAbortDiscards(t *testing.T) {
	e := mustOpen(t, testParams(t, COUFlush))
	defer e.Close()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.ApplyOp(3, OpAdd64, Add64Operand(5)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if v := readVal(t, e, 3); v != 0 {
		t.Errorf("aborted logical op applied: %d", v)
	}
}

func TestUnknownOpRejected(t *testing.T) {
	e := mustOpen(t, testParams(t, COUCopy))
	defer e.Close()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.ApplyOp(1, OpCode(999), nil); !errors.Is(err, ErrUnknownOperation) {
		t.Errorf("unknown op err = %v", err)
	}
}

func TestRegisterOperation(t *testing.T) {
	e := mustOpen(t, testParams(t, COUCopy))
	defer e.Close()
	// Built-in collision rejected.
	if err := e.RegisterOperation(OpAdd64, func(rec, op []byte) error { return nil }); err == nil {
		t.Error("built-in collision accepted")
	}
	if err := e.RegisterOperation(OpCode(100), nil); err == nil {
		t.Error("nil op accepted")
	}
	// Custom op: set every byte to the operand's first byte.
	fill := func(rec, op []byte) error {
		for i := range rec {
			rec[i] = op[0]
		}
		return nil
	}
	if err := e.RegisterOperation(OpCode(100), fill); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterOperation(OpCode(100), fill); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := e.Exec(func(tx *Txn) error { return tx.ApplyOp(2, OpCode(100), []byte{0xAA}) }); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, e.RecordBytes())
	if err := e.ReadRecord(2, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAA || buf[31] != 0xAA {
		t.Error("custom op not applied")
	}
}

// TestLogicalCrashRecovery is the logical-logging oracle: balances updated
// only through OpAdd64 deltas, interleaved with COU checkpoints (including
// one paused mid-sweep with updates landing behind and ahead of the
// cursor), crash, recover, compare.
func TestLogicalCrashRecovery(t *testing.T) {
	for _, alg := range []Algorithm{COUFlush, COUCopy} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			p := testParams(t, alg)
			e := mustOpen(t, p)
			rng := rand.New(rand.NewSource(int64(alg) * 7))
			oracle := make(map[uint64]uint64)

			spin := func(n int) {
				for i := 0; i < n; i++ {
					rid := uint64(rng.Intn(e.NumRecords()))
					delta := int64(rng.Intn(1000) - 500)
					err := e.Exec(func(tx *Txn) error {
						return tx.ApplyOp(rid, OpAdd64, Add64Operand(delta))
					})
					if err != nil {
						t.Fatal(err)
					}
					oracle[rid] += uint64(delta)
				}
			}

			spin(60)
			if _, err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			spin(60)
			if _, err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			spin(60) // tail: replayed as operations
			if err := e.Crash(); err != nil {
				t.Fatal(err)
			}

			e2, rep, err := Recover(p)
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			if rep.LogicalReplayed == 0 {
				t.Error("no logical records replayed")
			}
			buf := make([]byte, e2.RecordBytes())
			for rid, want := range oracle {
				if err := e2.ReadRecord(rid, buf); err != nil {
					t.Fatal(err)
				}
				if got := binary.LittleEndian.Uint64(buf); got != want {
					t.Fatalf("record %d = %d, want %d (double or lost apply)", rid, got, want)
				}
			}
		})
	}
}

// TestLogicalWithConcurrentCheckpointLoop stresses exact-replay soundness:
// logical deltas race a back-to-back COU checkpoint loop, then crash.
func TestLogicalWithConcurrentCheckpointLoop(t *testing.T) {
	p := testParams(t, COUCopy)
	p.AutoCheckpoint = true
	e := mustOpen(t, p)
	rng := rand.New(rand.NewSource(77))
	oracle := make(map[uint64]uint64)
	for i := 0; i < 300; i++ {
		rid := uint64(rng.Intn(e.NumRecords()))
		delta := int64(rng.Intn(100))
		err := e.Exec(func(tx *Txn) error {
			return tx.ApplyOp(rid, OpAdd64, Add64Operand(delta))
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle[rid] += uint64(delta)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, _, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	buf := make([]byte, e2.RecordBytes())
	for rid, want := range oracle {
		if err := e2.ReadRecord(rid, buf); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != want {
			t.Fatalf("record %d = %d, want %d", rid, got, want)
		}
	}
}

// TestRecoveryNeedsOperations: replaying a custom logical op without its
// registration fails loudly instead of corrupting data.
func TestRecoveryNeedsOperations(t *testing.T) {
	p := testParams(t, COUCopy)
	double := func(rec, op []byte) error {
		v := binary.LittleEndian.Uint64(rec)
		binary.LittleEndian.PutUint64(rec, v*2)
		return nil
	}
	p.Operations = map[OpCode]OpFunc{OpCode(50): double}
	e := mustOpen(t, p)
	if err := e.Exec(func(tx *Txn) error { return tx.Write(1, encVal(21)) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Txn) error { return tx.ApplyOp(1, OpCode(50), nil) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}

	missing := p
	missing.Operations = nil
	if _, _, err := Recover(missing); !errors.Is(err, ErrUnknownOperation) {
		t.Fatalf("recovery without op registration: %v, want ErrUnknownOperation", err)
	}
	e2, _, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if v := readVal(t, e2, 1); v != 42 {
		t.Errorf("record 1 = %d, want 42", v)
	}
}

// TestParamsRejectBadOperations validates the Params-level checks.
func TestParamsRejectBadOperations(t *testing.T) {
	p := testParams(t, COUCopy)
	p.Operations = map[OpCode]OpFunc{OpAdd64: func(rec, op []byte) error { return nil }}
	if _, err := Open(p); err == nil {
		t.Error("built-in collision in Params accepted")
	}
	p = testParams(t, COUCopy)
	p.Operations = map[OpCode]OpFunc{OpCode(60): nil}
	if _, err := Open(p); err == nil {
		t.Error("nil op in Params accepted")
	}
}

// TestMixedPhysicalAndLogical interleaves Write and ApplyOp on the same
// record within and across transactions.
func TestMixedPhysicalAndLogical(t *testing.T) {
	p := testParams(t, COUFlush)
	e := mustOpen(t, p)
	err := e.Exec(func(tx *Txn) error {
		if err := tx.Write(9, encVal(100)); err != nil {
			return err
		}
		return tx.ApplyOp(9, OpAdd64, Add64Operand(-30)) // applies to the buffered 100
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := readVal(t, e, 9); v != 70 {
		t.Fatalf("mixed txn result = %d, want 70", v)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, _, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if v := readVal(t, e2, 9); v != 70 {
		t.Errorf("recovered mixed result = %d, want 70", v)
	}
}
