// Package engine implements the paper's MMDBMS core: shadow-copy
// transactions with redo-only logging over a memory-resident segmented
// database, the six asynchronous checkpoint algorithms of Section 3, and
// crash recovery from the ping-pong backup plus the log (Section 3.3).
package engine

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mmdb/internal/backup"
	"mmdb/internal/lockmgr"
	"mmdb/internal/obs"
	"mmdb/internal/storage"
	"mmdb/internal/wal"
)

// Errors returned by engine operations.
var (
	// ErrCheckpointConflict aborts a transaction that touched both white
	// and black records while a two-color checkpoint was in progress. The
	// transaction must be restarted (Section 3.2.1).
	ErrCheckpointConflict = errors.New("engine: transaction touched both checkpoint colors; restart required")
	// ErrTxnDone reports use of a finished (committed or aborted)
	// transaction.
	ErrTxnDone = errors.New("engine: transaction already finished")
	// ErrStopped reports use of a closed or crashed engine.
	ErrStopped = errors.New("engine: engine is stopped")
	// ErrDeadlock aborts a transaction whose lock wait timed out.
	ErrDeadlock = errors.New("engine: lock wait timed out; transaction aborted")
	// ErrCommitInDoubt reports a synchronous commit whose commit record
	// was appended but whose durability could not be confirmed (the log
	// flush failed or the engine stopped mid-commit). The transaction is
	// installed in memory; after a crash, recovery may or may not replay
	// it depending on whether the commit record reached disk.
	ErrCommitInDoubt = errors.New("engine: commit durability unknown; transaction in doubt")
	// ErrExistingDatabase is returned by Open when the directory already
	// holds a recoverable database (use Recover).
	ErrExistingDatabase = errors.New("engine: directory contains a recoverable database; use Recover")
)

// logFileName is the log file inside Params.Dir.
const logFileName = "redo.log"

// ckptRun is the state of an in-progress checkpoint, published to
// transactions through an atomic pointer. Transactions consult it for the
// two-color rule and the copy-on-update trigger.
type ckptRun struct {
	id     uint64
	alg    Algorithm
	target int
	tau    uint64 // τ(CH): the checkpoint's begin timestamp (COU)
	// curSeg is the highest segment index the checkpointer has secured
	// (copied or flushed); updaters of segments at or below it need not
	// preserve old versions. -1 until the first segment is done.
	curSeg atomic.Int64
	// span is the checkpoint's root span. Checkpoints are rare, so they
	// are always traced regardless of the transaction sampling rate.
	span obs.SpanID
}

// Engine is a memory-resident database with asynchronous checkpointing.
type Engine struct {
	params Params
	store  *storage.Store
	log    *wal.Log
	locks  *lockmgr.Manager
	bstore backup.Store

	clock  atomic.Uint64 // logical timestamps (transactions, checkpoints)
	txnSeq atomic.Uint64
	// ckptSeq is the next checkpoint ID. guarded_by:ckptMu
	ckptSeq uint64

	// Transaction registry and quiesce gate.
	txnMu   sync.Mutex // lockorder:level=20
	txnCond *sync.Cond
	// activeTxns is the registry of in-flight transactions. guarded_by:txnMu
	activeTxns map[uint64]*Txn
	// gateClosed blocks Begin while a quiesce is in progress. guarded_by:txnMu
	gateClosed bool
	// spareTxn is a single recycled transaction for the closure-free
	// ExecWrite path: it, its write map, and its image buffers are reused
	// so a steady stream of single-record writes commits without
	// allocating. Only ExecWrite-internal transactions — never user-held
	// Txns — enter the slot. guarded_by:txnMu
	spareTxn *Txn

	// cur is the in-progress checkpoint, nil when idle.
	cur atomic.Pointer[ckptRun]
	// hg is the hourglass window buffer pool; nil unless
	// Params.Algorithm is Hourglass.
	hg *hgPool
	// ckptMu serializes checkpoints (and the backup metadata). It is the
	// outermost engine lock: every other lock nests inside it.
	ckptMu sync.Mutex // lockorder:level=10

	// Continuous checkpoint loop channels. guarded_by:ckptMu
	loopStop chan struct{}
	// guarded_by:ckptMu
	loopDone chan struct{}

	stopped atomic.Bool

	// opsMu guards the logical operation registry (built-ins plus
	// Params.Operations plus RegisterOperation).
	opsMu sync.RWMutex
	// guarded_by:opsMu
	ops map[OpCode]OpFunc

	ctr counters
	// eo is the observability surface (metrics registry, latency
	// histograms, lifecycle tracer); always non-nil.
	eo *engineObs
}

// Open creates or opens the database described by p. A pre-existing
// database directory must be opened with Recover instead; Open fails if a
// complete checkpoint already exists, to prevent silently ignoring
// recoverable state.
func Open(p Params) (*Engine, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	st, err := storage.New(p.Storage)
	if err != nil {
		return nil, err
	}
	bs, err := p.openBackupStore(st.NumSegments())
	if err != nil {
		return nil, err
	}
	if _, _, err := bs.Latest(); err == nil {
		return nil, errors.Join(ErrExistingDatabase, bs.Close())
	}
	if has, err := wal.HasRecords(filepath.Join(p.Dir, logFileName)); err != nil {
		return nil, errors.Join(err, bs.Close())
	} else if has {
		// A crash before the first checkpoint leaves durable log records
		// but no complete backup; that state is recoverable too.
		return nil, errors.Join(ErrExistingDatabase, bs.Close())
	}
	eo := newEngineObs(p.SpanSampleEvery)
	lg, err := wal.Open(filepath.Join(p.Dir, logFileName), wal.Options{
		StableTail:    p.StableTail,
		SyncOnFlush:   p.SyncOnFlush,
		FlushInterval: p.LogFlushInterval,
		FS:            p.FS,
		Metrics:       eo.walMetrics,
	})
	if err != nil {
		return nil, errors.Join(err, bs.Close())
	}
	e := newEngine(p, st, lg, bs, 1, 1, eo)
	e.start()
	return e, nil
}

// newEngine assembles an engine around already-initialized components.
// eo must be the engineObs whose wal.Metrics the log was opened with
// (nil builds a fresh, unconnected one — tests only).
func newEngine(p Params, st *storage.Store, lg *wal.Log, bs backup.Store, nextCkptID, clock0 uint64, eo *engineObs) *Engine {
	if eo == nil {
		eo = newEngineObs(p.SpanSampleEvery)
	}
	eo.watchdog.SetThresholds(p.SlowOpCommitThreshold, p.SlowOpCheckpointThreshold)
	locks := lockmgr.New()
	locks.SetMetrics(eo.lockWaitH, eo.attrLockWaitH)
	bs.SetMetrics(eo.backupSegH)
	e := &Engine{
		params:     p,
		store:      st,
		log:        lg,
		locks:      locks,
		bstore:     bs,
		ckptSeq:    nextCkptID,
		activeTxns: make(map[uint64]*Txn),
		ops:        builtinOps(),
		eo:         eo,
	}
	for code, fn := range p.Operations {
		// Params-supplied operations silently skip built-in collisions;
		// Validate rejected them already.
		e.ops[code] = fn //nolint:lockcheck // e is not shared until newEngine returns
	}
	switch p.Algorithm {
	case Zigzag:
		st.EnableShadow()
	case Hourglass:
		e.hg = newHGPool(p.HourglassWindow, p.Storage.SegmentBytes, st.NumSegments()) //nolint:lockcheck // e is not shared until newEngine returns
	}
	e.clock.Store(clock0)
	e.txnCond = sync.NewCond(&e.txnMu)
	eo.bind(e)
	return e
}

// start launches background services (the continuous checkpoint loop, if
// configured).
func (e *Engine) start() {
	if e.params.AutoCheckpoint {
		e.StartCheckpointLoop()
	}
}

// Params returns the engine's configuration.
func (e *Engine) Params() Params { return e.params }

// NumSegments returns the database segment count.
func (e *Engine) NumSegments() int { return e.store.NumSegments() }

// NumRecords returns the database record count.
func (e *Engine) NumRecords() int { return e.store.Config().NumRecords }

// RecordBytes returns the record size in bytes.
func (e *Engine) RecordBytes() int { return e.store.Config().RecordBytes }

// ReadRecord copies the committed value of record rid into dst (at least
// RecordBytes long) without transactional isolation: it sees the latest
// installed value. Intended for verification, statistics, and read-only
// tooling; use a Txn for isolated reads.
func (e *Engine) ReadRecord(rid uint64, dst []byte) error {
	if e.stopped.Load() {
		return ErrStopped
	}
	return e.store.ReadRecord(rid, dst)
}

// nextTimestamp draws a fresh logical timestamp.
func (e *Engine) nextTimestamp() uint64 { return e.clock.Add(1) }

// segKey namespaces a segment index into the lock manager's key space,
// away from record IDs.
func segKey(segIdx int) uint64 { return 1<<63 | uint64(segIdx) }

// recKey namespaces a record ID into the lock manager's key space.
func recKey(rid uint64) uint64 { return rid }

// Begin starts a transaction. It blocks while a copy-on-update checkpoint
// is quiescing the system (Section 3.2.2: "delaying the start of new
// transactions until all currently executing transactions have
// completed").
func (e *Engine) Begin() (*Txn, error) { return e.begin(false) }

// begin starts a transaction, drawing from the spare-transaction slot
// when reuse is set (the ExecWrite fast path; see recycleTxn).
//
// lockorder:acquires Engine.txnMu
// lockorder:releases Engine.txnMu
func (e *Engine) begin(reuse bool) (*Txn, error) {
	if e.stopped.Load() {
		return nil, ErrStopped
	}
	e.txnMu.Lock()
	// ctxcheck:exempt(woken by finishTxn's Broadcast, unquiesce, and Stop; stop-aware via e.stopped)
	for e.gateClosed {
		e.txnCond.Wait()
		if e.stopped.Load() {
			e.txnMu.Unlock()
			return nil, ErrStopped
		}
	}
	var tx *Txn
	if reuse && e.spareTxn != nil {
		tx = e.spareTxn
		e.spareTxn = nil
		tx.e = e
		tx.id = e.txnSeq.Add(1)
		tx.ts = e.nextTimestamp()
		tx.firstLSN = wal.NilLSN
		tx.done = false
		tx.colorRun, tx.sawWhite, tx.sawBlack = 0, false, false
	} else {
		tx = &Txn{ // alloc:allowed(spare-slot miss: the object is recycled by ExecWrite afterwards)
			e:        e,
			id:       e.txnSeq.Add(1),
			ts:       e.nextTimestamp(),
			firstLSN: wal.NilLSN,
			writes:   make(map[uint64][]byte), // alloc:allowed(spare-slot miss: the map is recycled with the transaction)
		}
	}
	e.activeTxns[tx.id] = tx
	e.txnMu.Unlock()
	e.ctr.txnsBegun.Add(1)
	// The commit root span covers begin→commit so lock-wait children nest
	// inside it; beganNanos additionally feeds the two-color restart
	// attribution histogram for every transaction, sampled or not.
	tx.beganNanos = time.Now().UnixNano()
	tx.span = e.eo.spans.BeginSampled(obs.SpanCommit, tx.id, 0)
	e.eo.tracer.Record(obs.EvTxnBegin, tx.id, 0, 0)
	return tx, nil
}

// recycleTxn parks a finished ExecWrite-internal transaction in the
// spare slot so the next ExecWrite reuses it — object, write map, and
// image buffers — without allocating. Only transactions that never
// escaped to a caller may be recycled; user-held Txns are left to the
// garbage collector, so a caller retaining a finished Txn can never
// observe it mutating under a new identity.
//
// lockorder:acquires Engine.txnMu
// lockorder:releases Engine.txnMu
func (e *Engine) recycleTxn(tx *Txn) {
	if !tx.done {
		return
	}
	for rid, img := range tx.writes {
		delete(tx.writes, rid)
		tx.imgFree = append(tx.imgFree, img) // alloc:allowed(freelist growth is amortized: capacity is retained across recycles)
	}
	e.txnMu.Lock()
	if e.spareTxn == nil {
		e.spareTxn = tx
	}
	e.txnMu.Unlock()
}

// finishTxn removes tx from the active registry and wakes the quiesce
// gate. It must run only after the transaction's installs are complete,
// so that a begin-checkpoint marker's active-transaction list is a
// superset of the transactions whose effects may be partially reflected
// in a fuzzy checkpoint.
//
// lockorder:acquires Engine.txnMu
// lockorder:releases Engine.txnMu
func (e *Engine) finishTxn(tx *Txn) {
	e.txnMu.Lock()
	delete(e.activeTxns, tx.id)
	e.txnCond.Broadcast()
	e.txnMu.Unlock()
}

// quiesce closes the transaction gate and waits for every active
// transaction to finish. On success the caller must later call unquiesce.
// It returns ErrStopped without the gate closed when the engine stops
// while waiting, so Close never deadlocks against a checkpoint stuck
// behind a long-lived user transaction.
//
// lockorder:acquires Engine.txnMu
// lockorder:releases Engine.txnMu
func (e *Engine) quiesce() error {
	e.txnMu.Lock()
	e.gateClosed = true
	// ctxcheck:exempt(woken on every finishTxn Broadcast; returns ErrStopped when the engine stops)
	for len(e.activeTxns) > 0 {
		if e.stopped.Load() {
			e.gateClosed = false
			e.txnCond.Broadcast()
			e.txnMu.Unlock()
			return ErrStopped
		}
		e.txnCond.Wait()
	}
	e.txnMu.Unlock()
	return nil
}

// unquiesce reopens the transaction gate.
//
// lockorder:acquires Engine.txnMu
// lockorder:releases Engine.txnMu
func (e *Engine) unquiesce() {
	e.txnMu.Lock()
	e.gateClosed = false
	e.txnCond.Broadcast()
	e.txnMu.Unlock()
}

// activeTxnList snapshots the active-transaction list for a
// begin-checkpoint marker. The caller must hold no engine locks.
//
// lockorder:acquires Engine.txnMu
// lockorder:releases Engine.txnMu
func (e *Engine) activeTxnList() []wal.ActiveTxn {
	e.txnMu.Lock()
	defer e.txnMu.Unlock()
	return e.activeTxnListLocked()
}

// lockcheck:held e.txnMu
func (e *Engine) activeTxnListLocked() []wal.ActiveTxn {
	list := make([]wal.ActiveTxn, 0, len(e.activeTxns))
	for id, tx := range e.activeTxns {
		list = append(list, wal.ActiveTxn{TxnID: id, FirstLSN: tx.firstLSN})
	}
	return list
}

// Exec runs fn inside a transaction, retrying automatically when the
// two-color rule or a deadlock timeout aborts it. Any other error from fn
// aborts the transaction and is returned.
//
// ctxcheck:root(no-ctx convenience wrapper; ExecContext is the cancellable form)
func (e *Engine) Exec(fn func(tx *Txn) error) error {
	return e.ExecContext(context.Background(), fn)
}

// ExecContext is Exec with cancellation: ctx is consulted before the
// first attempt and between retries, so a transaction restarted forever
// by the two-color rule or deadlock timeouts can be abandoned. A
// transaction already executing is never interrupted mid-flight — its
// commit or abort completes normally.
func (e *Engine) ExecContext(ctx context.Context, fn func(tx *Txn) error) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		tx, err := e.Begin()
		if err != nil {
			return err
		}
		err = fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrCheckpointConflict), errors.Is(err, ErrDeadlock):
			continue // restart, as the paper's aborted transactions do
		default:
			return err
		}
	}
}

// ExecWrite applies a single-record write in its own transaction,
// retrying automatically when the two-color rule or a deadlock timeout
// aborts it, exactly as Exec does. Unlike Exec it takes no closure and
// recycles its transaction through the spare slot, so a steady stream
// of single-record writes commits without heap allocation (the paper's
// premise that transactions run at memory speed; ROADMAP item 4).
//
// perf:hotpath(closure-free single-record write+commit)
func (e *Engine) ExecWrite(rid uint64, data []byte) error {
	for {
		tx, err := e.begin(true)
		if err != nil {
			return err
		}
		err = tx.Write(rid, data)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		e.recycleTxn(tx)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrCheckpointConflict), errors.Is(err, ErrDeadlock):
			continue // restart, as the paper's aborted transactions do
		default:
			return err
		}
	}
}

// StartCheckpointLoop starts the continuous checkpoint loop, which begins
// a checkpoint every CheckpointInterval (back-to-back when zero). It is a
// no-op if the loop is already running.
func (e *Engine) StartCheckpointLoop() {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if e.loopStop != nil || e.stopped.Load() {
		return
	}
	e.loopStop = make(chan struct{})
	e.loopDone = make(chan struct{})
	// goleak:joins StopCheckpointLoop receives on loopDone
	go e.checkpointLoop(e.loopStop, e.loopDone)
}

// StopCheckpointLoop stops the continuous checkpoint loop, waiting for an
// in-progress checkpoint to finish.
func (e *Engine) StopCheckpointLoop() {
	e.ckptMu.Lock()
	stop, done := e.loopStop, e.loopDone
	e.loopStop, e.loopDone = nil, nil
	e.ckptMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (e *Engine) checkpointLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	if d := e.params.CheckpointStagger; d > 0 {
		// Phase-shift the schedule before the first checkpoint so N
		// shards with the same interval hit the backup device at evenly
		// spaced offsets instead of in lockstep.
		select {
		case <-stop:
			return
		case <-time.After(d):
		}
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		began := time.Now()
		if _, err := e.Checkpoint(); err != nil {
			// A stopped engine ends the loop; other errors are recorded
			// and the loop retries after the interval.
			if e.stopped.Load() {
				return
			}
		}
		deadline := began.Add(e.params.CheckpointInterval)
		if !e.waitForNextCheckpoint(stop, deadline) {
			return
		}
	}
}

// waitForNextCheckpoint sleeps until the interval deadline, the dirty
// threshold (if configured), or a stop signal; it reports whether the
// loop should continue.
func (e *Engine) waitForNextCheckpoint(stop <-chan struct{}, deadline time.Time) bool {
	frac := e.params.CheckpointDirtyFraction
	threshold := 0
	if frac > 0 {
		threshold = int(frac * float64(e.store.NumSegments()))
		if threshold < 1 {
			threshold = 1
		}
	}
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return true
		}
		if threshold > 0 && e.DirtySegments(e.bstore.NextTarget()) >= threshold {
			return true
		}
		poll := remaining
		if threshold > 0 {
			if p := e.params.CheckpointInterval / 20; p > 0 && p < poll {
				poll = p
			}
			if poll > 50*time.Millisecond {
				poll = 50 * time.Millisecond
			}
		}
		select {
		case <-stop:
			return false
		case <-time.After(poll):
		}
	}
}

// DirtySegments counts the segments currently dirty for backup copy
// copyIdx — the work the next checkpoint into that copy would flush.
func (e *Engine) DirtySegments(copyIdx int) int {
	if copyIdx < 0 || copyIdx >= storage.NumBackupCopies {
		return 0
	}
	n := 0
	for i := 0; i < e.store.NumSegments(); i++ {
		seg := e.store.Seg(i)
		seg.RLock()
		if seg.Dirty[copyIdx] {
			n++
		}
		seg.RUnlock()
	}
	return n
}

// Close stops checkpointing, flushes the log, and closes the files. Active
// transactions fail when they next touch the log. Close does not take a
// final checkpoint; recovery replays the log tail written since the last
// one.
//
// An in-flight checkpoint — the loop's or a direct Checkpoint call — is
// drained, not raced: its sweep (including every parallel flush worker,
// which the sweep joins before returning) completes or aborts before the
// log and backup files are closed underneath it. The unquiesce and lock
// shutdown come first so a sweep blocked in quiesce or a two-color lock
// wait observes the stop instead of holding ckptMu forever.
func (e *Engine) Close() error {
	if e.stopped.Swap(true) {
		return nil
	}
	e.unquiesce() // wake Begin and quiesce waiters so they observe the stop
	e.locks.Shutdown()
	// StopCheckpointLoop acquires ckptMu, which an in-flight checkpoint
	// holds for its whole duration: returning from it is the drain.
	e.StopCheckpointLoop()
	err := e.log.Close()
	if cerr := e.bstore.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash simulates a system failure (Section 2.7): volatile state — the
// primary database and the unflushed log tail (unless stable) — is lost.
// The on-disk backup copies and the durable log remain for Recover.
func (e *Engine) Crash() error {
	if e.stopped.Swap(true) {
		return ErrStopped
	}
	e.unquiesce()
	e.locks.Shutdown()
	e.StopCheckpointLoop()
	err := e.log.Crash()
	if cerr := e.bstore.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the engine's on-disk directory.
func (e *Engine) Dir() string { return e.params.Dir }

// String implements fmt.Stringer.
func (e *Engine) String() string {
	return fmt.Sprintf("engine.Engine{%v, %d records × %dB, %d segments × %dB}",
		e.params.Algorithm, e.store.Config().NumRecords, e.store.Config().RecordBytes,
		e.store.NumSegments(), e.store.Config().SegmentBytes)
}
