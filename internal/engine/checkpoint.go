package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mmdb/internal/backup"
	"mmdb/internal/obs"
	"mmdb/internal/wal"
)

// checkpointerOwner is the lock-manager owner ID reserved for the
// checkpointer (transaction IDs start at 1).
const checkpointerOwner uint64 = 0

// CheckpointResult summarizes one completed checkpoint.
type CheckpointResult struct {
	ID              uint64
	Algorithm       Algorithm
	TargetCopy      int
	Full            bool
	SegmentsFlushed int
	SegmentsSkipped int
	BytesFlushed    int64
	Duration        time.Duration
	BeginLSN        wal.LSN
	EndLSN          wal.LSN
}

// Checkpoint runs one checkpoint to completion using the engine's
// configured algorithm and returns its summary. Checkpoints are
// serialized; concurrent calls queue.
//
// ctxcheck:root(no-ctx convenience wrapper; CheckpointContext is the cancellable form)
func (e *Engine) Checkpoint() (*CheckpointResult, error) {
	return e.CheckpointContext(context.Background())
}

// CheckpointContext is Checkpoint with cancellation: ctx is consulted
// between segments (serial sweeps) or between worker batches (parallel
// sweeps), never mid-segment, so a cancelled checkpoint leaves the target
// copy incomplete but every flushed segment image intact — exactly the
// state a crash mid-checkpoint leaves, which recovery already handles by
// falling back to the other ping-pong copy.
//
// lockorder:acquires Engine.ckptMu
// lockorder:releases Engine.ckptMu
func (e *Engine) CheckpointContext(ctx context.Context) (*CheckpointResult, error) {
	if e.stopped.Load() {
		return nil, ErrStopped
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if e.stopped.Load() {
		return nil, ErrStopped
	}

	started := time.Now()
	if prev := e.ctr.lastBeginNanos.Swap(started.UnixNano()); prev != 0 {
		e.ctr.lastIntervalNanos.Store(uint64(started.UnixNano() - prev))
	}

	alg := e.params.Algorithm
	id := e.ckptSeq
	target := e.bstore.NextTarget()
	run := &ckptRun{id: id, alg: alg, target: target}
	run.curSeg.Store(-1)
	run.span = e.eo.spans.Begin(obs.SpanCheckpoint, obs.SpanNone, id, uint64(target))

	var beginLSN, scanStart wal.LSN
	var err error
	if alg.RequiresQuiesce() {
		// Copy-on-update begin (Figure 3.3): quiesce transaction
		// processing, stamp the checkpoint, log the begin-checkpoint
		// record, and flush the log tail. The run is published before the
		// gate reopens so every post-begin updater sees it.
		qSpan := e.eo.spans.Begin(obs.SpanCkptQuiesce, run.span, id, 0)
		qerr := e.quiesce()
		e.eo.spans.End(qSpan)
		if qerr != nil {
			e.eo.spans.End(run.span)
			return nil, qerr
		}
		run.tau = e.nextTimestamp()
		beginLSN, _, err = e.log.Append(&wal.Record{
			Type:         wal.TypeBeginCheckpoint,
			CheckpointID: id,
			Timestamp:    run.tau,
			TargetCopy:   uint8(target),
			Algorithm:    uint8(alg),
		})
		if err == nil {
			err = e.log.Flush()
		}
		scanStart = beginLSN
		if err == nil {
			if alg == Zigzag {
				// Arm every segment's zigzag bits while writers are still
				// gated, so no flip can precede the arm.
				e.zigzagArm(run)
			}
			e.cur.Store(run)
		}
		e.unquiesce()
	} else {
		run.tau = e.nextTimestamp()
		// The active-transaction list and the marker's log position must
		// be consistent: both are produced under txnMu, which first-update
		// logging also holds (see Txn.Write).
		e.txnMu.Lock()
		active := e.activeTxnListLocked()
		beginLSN, _, err = e.log.Append(&wal.Record{
			Type:         wal.TypeBeginCheckpoint,
			CheckpointID: id,
			Timestamp:    run.tau,
			TargetCopy:   uint8(target),
			Algorithm:    uint8(alg),
			ActiveTxns:   active,
		})
		e.txnMu.Unlock()
		scanStart = beginLSN
		for _, at := range active {
			// MinLSN treats NilLSN (a transaction that has logged nothing
			// yet) as +infinity, so only real first-update positions pull
			// the scan start back.
			scanStart = wal.MinLSN(scanStart, at.FirstLSN)
		}
		if err == nil {
			e.cur.Store(run)
		}
	}
	if err != nil {
		e.eo.spans.End(run.span)
		if errors.Is(err, wal.ErrClosed) {
			return nil, ErrStopped
		}
		return nil, fmt.Errorf("engine: checkpoint %d begin: %w", id, err)
	}
	e.ckptSeq++
	e.eo.tracer.Record(obs.EvCkptBegin, id, uint64(target), 0)

	if err := e.bstore.BeginCheckpoint(target, backup.CheckpointInfo{
		ID:           id,
		Algorithm:    alg.String(),
		Full:         e.params.Full,
		BeginLSN:     beginLSN,
		ScanStartLSN: scanStart,
		Timestamp:    run.tau,
	}); err != nil {
		e.cur.Store(nil)
		e.endRunCleanup(alg)
		e.eo.spans.End(run.span)
		return nil, err
	}

	var flushed, skipped int
	var bytes int64
	par := e.params.CheckpointParallelism
	switch {
	case par > 1:
		flushed, skipped, bytes, err = e.sweepParallel(ctx, run, par)
	case alg.Fuzzy():
		flushed, skipped, bytes, err = e.sweepFuzzy(ctx, run)
	case alg.TwoColor():
		flushed, skipped, bytes, err = e.sweepTwoColor(ctx, run)
	case alg.CopyOnUpdate():
		flushed, skipped, bytes, err = e.sweepCOU(ctx, run)
	case alg == Zigzag:
		flushed, skipped, bytes, err = e.sweepZigzag(ctx, run)
	case alg == Hourglass:
		flushed, skipped, bytes, err = e.sweepHourglass(ctx, run)
	default:
		err = fmt.Errorf("engine: unknown algorithm %v", alg)
	}

	e.cur.Store(nil)
	e.endRunCleanup(alg)
	if err != nil {
		// The target copy stays marked incomplete; recovery falls back to
		// the other ping-pong copy.
		e.eo.spans.End(run.span)
		return nil, fmt.Errorf("engine: checkpoint %d: %w", id, err)
	}

	_, endLSN, err := e.log.Append(&wal.Record{
		Type:         wal.TypeEndCheckpoint,
		CheckpointID: id,
		TargetCopy:   uint8(target),
	})
	if err == nil {
		err = e.log.Flush()
	}
	if err != nil {
		e.eo.spans.End(run.span)
		if errors.Is(err, wal.ErrClosed) {
			return nil, ErrStopped
		}
		return nil, fmt.Errorf("engine: checkpoint %d end marker: %w", id, err)
	}
	if err := e.bstore.FinishCheckpoint(target, endLSN, flushed, bytes); err != nil {
		e.eo.spans.End(run.span)
		return nil, err
	}

	if !e.params.DisableLogCompaction {
		e.compactLog()
	}

	dur := time.Since(started)
	e.ctr.checkpoints.Add(1)
	e.ctr.ckptLastNanos.Store(uint64(dur))
	e.eo.ckptH.Observe(uint64(dur))
	e.eo.tracer.Record(obs.EvCkptEnd, id, uint64(flushed), uint64(dur))
	e.eo.spans.End(run.span)
	e.eo.watchdog.Check(obs.WatchCheckpoint, run.span, int64(dur))

	return &CheckpointResult{
		ID:              id,
		Algorithm:       alg,
		TargetCopy:      target,
		Full:            e.params.Full,
		SegmentsFlushed: flushed,
		SegmentsSkipped: skipped,
		BytesFlushed:    bytes,
		Duration:        dur,
		BeginLSN:        beginLSN,
		EndLSN:          endLSN,
	}, nil
}

// flushSegment writes one segment image to the target backup copy and
// updates the flush counters, pacing with the configured disk model.
// Safe for concurrent use by distinct workers: the backup store, the
// counters, and the histograms are all internally synchronized, and each
// worker flushes distinct segments.
//
// walorder:write
func (e *Engine) flushSegment(run *ckptRun, idx int, data []byte) error {
	span := e.eo.spans.Begin(obs.SpanCkptSegment, run.span, run.id, uint64(idx))
	began := time.Now()
	if err := e.bstore.WriteSegment(run.target, idx, run.id, data); err != nil {
		e.eo.spans.End(span)
		return err
	}
	e.ctr.segmentsFlushed.Add(1)
	e.ctr.bytesFlushed.Add(uint64(len(data)))
	if th := e.params.CheckpointThrottle; th != nil {
		time.Sleep(th.delayPerSegment(len(data)))
	}
	d := time.Since(began)
	e.eo.spans.End(span)
	e.eo.ckptSegH.Observe(uint64(d))
	e.eo.tracer.Record(obs.EvCkptSegment, run.id, uint64(idx), uint64(d))
	return nil
}

// waitLSN blocks until the log is durable past lsn — the write-ahead check
// the paper charges C_lsn for.
//
// walorder:covers
// lockorder:acquires mmdb/internal/wal.Log.mu
// lockorder:releases mmdb/internal/wal.Log.mu
func (e *Engine) waitLSN(lsn wal.LSN) error {
	if lsn == wal.NilLSN {
		return nil
	}
	e.ctr.lsnWaits.Add(1)
	parent := obs.SpanNone
	if run := e.cur.Load(); run != nil {
		parent = run.span
	}
	span := e.eo.spans.Begin(obs.SpanLSNWait, parent, uint64(lsn), 0)
	began := time.Now()
	err := e.log.WaitDurable(lsn)
	e.eo.spans.End(span)
	e.eo.lsnWaitH.ObserveSince(began)
	return err
}

// segmentDone runs the fault-injection hook, if any, after a segment has
// been processed. worker identifies the sweep worker (0 in serial sweeps)
// so tests can arm per-worker crash points.
func (e *Engine) segmentDone(run *ckptRun, worker, idx int) error {
	if e.params.SegmentHook == nil {
		return nil
	}
	return e.params.SegmentHook(run.id, worker, idx)
}

// compactLog drops the log head that no recovery can need: records before
// the redo-scan start of every complete checkpoint. Failure is non-fatal
// (the uncompacted log is merely larger); it is recorded in the stats.
// Caller holds ckptMu, so no checkpoint races the metadata reads.
//
// lockorder:held Engine.ckptMu
func (e *Engine) compactLog() {
	keep := wal.NilLSN
	for c := 0; c < 2; c++ {
		ci := e.bstore.CopyInfo(c)
		if ci.Complete {
			keep = wal.MinLSN(keep, ci.ScanStartLSN)
		}
	}
	if keep == wal.NilLSN || keep == 0 {
		return
	}
	freed, err := e.log.Compact(keep)
	if err != nil {
		e.ctr.compactErrors.Add(1)
		return
	}
	if freed > 0 {
		e.ctr.compactions.Add(1)
		e.ctr.compactBytes.Add(uint64(freed))
		e.eo.tracer.Record(obs.EvCompaction, uint64(freed), 0, 0)
	}
}

// endRunCleanup releases per-run state after the run is unpublished
// (e.cur is nil): COU drops stray old copies, hourglass reclaims its
// window buffers and wakes waiting writers. It runs on the success path
// AND on every error path that published the run — hourglass writers
// blocked on the buffer pool depend on it to wake.
//
// lockorder:held Engine.ckptMu
func (e *Engine) endRunCleanup(alg Algorithm) {
	switch {
	case alg == Hourglass:
		e.hgEndRun()
	case alg.CopyOnUpdate():
		e.dropOldCopies()
	}
}

// dropOldCopies releases any copy-on-update old versions left attached to
// segments (created in the race window just behind the checkpointer's
// cursor; see sweepCOU).
//
// lockorder:held Engine.ckptMu
func (e *Engine) dropOldCopies() {
	n := e.store.NumSegments()
	for i := 0; i < n; i++ {
		seg := e.store.Seg(i)
		seg.Lock()
		if seg.Old != nil {
			seg.Old = nil
			e.ctr.bumpCOULive(-1)
		}
		seg.Unlock()
	}
}
