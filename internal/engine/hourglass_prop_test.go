package engine

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestHourglassWindowInvariantProperty drives 100 seeded rounds that
// exhaust the hourglass window against a parked checkpointer and checks
// the invariants documented in hourglass.go:
//
//  1. At most W old copies exist at any instant: with the pool drawn dry
//     the writer stalls (HourglassWaits) instead of allocating, so
//     COUPeakOld never exceeds the window.
//  2. A preserved snapshot is never modified while attached: every
//     attached old copy equals the begin-state image of its segment.
//  3. The pool is fully free outside checkpoints, with an empty pending
//     list and no old copy left attached.
func TestHourglassWindowInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))

	const window = 2
	p := testParams(t, Hourglass)
	p.HourglassWindow = window
	p.SyncCommit = false // correctness invariants don't need fsync; keep 100 rounds fast
	hook := &roundHook{}
	p.SegmentHook = hook.fn
	e := mustOpen(t, p)
	defer e.Close()

	n := e.store.NumSegments()
	segBytes := e.store.Config().SegmentBytes
	recs := int(e.NumRecords())
	recsPerSeg := recs / n
	oracle := make([]uint64, recs)

	begin := make([][]byte, n)
	for i := range begin {
		begin[i] = make([]byte, segBytes)
	}

	const rounds = 100
	for round := 0; round < rounds; round++ {
		for k, kn := 0, 4+rng.Intn(8); k < kn; k++ {
			rid := uint64(rng.Intn(recs))
			v := uint64(round+1)<<16 | uint64(k+1)
			if err := e.ExecWrite(rid, encVal(v)); err != nil {
				t.Fatal(err)
			}
			oracle[rid] = v
		}
		// Snapshot the begin-state image: nothing commits between here and
		// the checkpoint's τ, so an attached old copy must equal this.
		for i := 0; i < n; i++ {
			seg := e.store.Seg(i)
			seg.Lock()
			copy(begin[i], seg.Data)
			seg.Unlock()
		}

		// Park the sweep early enough that window+2 distinct un-dumped
		// segments remain beyond the cursor.
		pauseAfter := rng.Intn(n - window - 3)
		hook.arm(pauseAfter)
		waits0 := e.Stats().HourglassWaits
		ckptErr := make(chan error, 1)
		go func() {
			_, err := e.Checkpoint()
			ckptErr <- err
		}()
		hook.waitPaused(t, "hourglass round")

		// Writes to window+2 distinct not-yet-painted segments, chosen and
		// valued up front so the shared rng stays on this goroutine. The
		// first `window` draw the pool dry; the next must stall until the
		// parked checkpointer resumes and recycles a buffer, so the writes
		// run on their own goroutine.
		targets := rng.Perm(n - 1 - pauseAfter)[:window+2]
		rids := make([]uint64, len(targets))
		vals := make([]uint64, len(targets))
		for j, off := range targets {
			seg := pauseAfter + 1 + off
			rids[j] = uint64(seg*recsPerSeg + rng.Intn(recsPerSeg))
			vals[j] = uint64(round+1)<<16 | 0x8000 | uint64(j)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		writeErr := make(chan error, 1)
		go func() {
			defer wg.Done()
			for j := range rids {
				if err := e.ExecWrite(rids[j], encVal(vals[j])); err != nil {
					writeErr <- err
					return
				}
			}
		}()
		for j := range rids {
			oracle[rids[j]] = vals[j]
		}

		// Wait until the writer is parked on the exhausted window: the
		// first `window` preserves succeed without waiting, the next one
		// records a wait and blocks (the parked checkpointer cannot
		// recycle buffers yet).
		for deadline := time.Now().Add(10 * time.Second); e.Stats().HourglassWaits == waits0; {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: writer never stalled on the exhausted window", round)
			}
			time.Sleep(100 * time.Microsecond)
		}

		// Exactly `window` old copies are attached, each an unmodified
		// begin-state image.
		live := 0
		for i := 0; i < n; i++ {
			seg := e.store.Seg(i)
			seg.Lock()
			old := seg.Old
			preserved := old == nil || bytes.Equal(old.Data, begin[i])
			seg.Unlock()
			if old != nil {
				live++
			}
			if !preserved {
				t.Fatalf("round %d seg %d: preserved snapshot modified while attached", round, i)
			}
		}
		if live != window {
			t.Fatalf("round %d: %d old copies attached at the stall, want exactly the window (%d)", round, live, window)
		}
		if st := e.Stats(); st.COUPeakOld > window {
			t.Fatalf("round %d: COUPeakOld = %d exceeds the window (%d)", round, st.COUPeakOld, window)
		}

		hook.release()
		wg.Wait()
		select {
		case err := <-writeErr:
			t.Fatalf("round %d: stalled writer: %v", round, err)
		default:
		}
		if err := <-ckptErr; err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}

		// Outside the checkpoint the pool is whole again: all buffers
		// free, pending list empty, nothing attached.
		e.hg.mu.Lock()
		free, pend := len(e.hg.free), len(e.hg.pending)
		e.hg.mu.Unlock()
		if free != window || pend != 0 {
			t.Fatalf("round %d: pool after checkpoint: %d free (want %d), %d pending (want 0)",
				round, free, window, pend)
		}
		st := e.Stats()
		if st.COULiveOld != 0 {
			t.Fatalf("round %d: %d old copies still attached after the checkpoint", round, st.COULiveOld)
		}
		if st.COUPeakOld > window {
			t.Fatalf("round %d: COUPeakOld = %d exceeds the window (%d)", round, st.COUPeakOld, window)
		}
	}

	for rid := 0; rid < recs; rid++ {
		if got := readVal(t, e, uint64(rid)); got != oracle[rid] {
			t.Fatalf("record %d = %d, want %d", rid, got, oracle[rid])
		}
	}
}
