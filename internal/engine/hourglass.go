package engine

// HOURGLASS checkpointing (Cao et al., "A Comparative Study of
// Consistent Snapshot Algorithms for Main-Memory Database Systems",
// adapted from page to segment granularity): windowed copy-on-update.
//
// Plain COU lets the old-version snapshot buffer grow, in the worst
// case, as large as the database (the paper notes this; Stats.COUPeakOld
// measures it). Hourglass bounds it at a fixed window of W preallocated
// segment buffers — the hourglass "waist". A writer that must preserve a
// not-yet-dumped segment draws a buffer from the pool; when the pool is
// empty it RELEASES the segment latch and waits until the checkpointer
// returns one, then re-validates and retries. The checkpointer, for its
// part, prioritizes segments holding old copies (the pending list) so
// buffers recycle quickly, and paints each processed segment with the
// run ID so processing is idempotent and writers stop preserving the
// moment their segment is dumped.
//
// Invariants (property-tested in hourglass_prop_test.go):
//
//   - at most W old copies exist at any instant (couPeak <= W);
//   - the pool is fully free outside checkpoints;
//   - a preserved snapshot is never modified while attached.
//
// Lock order: a writer holding a segment latch (level 40) may take the
// pool mutex (level 45) to draw a buffer or note a pending segment; the
// checkpointer NEVER latches a segment while holding the pool mutex.

import (
	"context"
	"sync"
	"time"

	"mmdb/internal/obs"
	"mmdb/internal/storage"
)

// DefaultHourglassWindow is the old-copy window used when
// Params.HourglassWindow is zero.
const DefaultHourglassWindow = 4

// hgPool is the fixed window of preallocated old-copy buffers plus the
// drain-priority list. Buffers are *storage.OldCopy values with
// preallocated Data slabs, so attaching an old version on the write path
// allocates nothing.
type hgPool struct {
	mu   sync.Mutex // lockorder:level=45
	cond *sync.Cond
	// w is the window size W, fixed at construction.
	w int
	// free is the available buffer stack. guarded_by:mu
	free []*storage.OldCopy
	// gen is bumped (with a broadcast) at the end of every hourglass
	// checkpoint, waking writers whose run is over. guarded_by:mu
	gen uint64
	// pending lists segment indices that acquired an old copy and await
	// the checkpointer's priority drain. Capacity is the segment count:
	// each segment preserves at most once per run. guarded_by:mu
	pending []int
}

// newHGPool preallocates a pool of window old-copy buffers of segBytes
// each, with a pending list sized for numSegments. The buffer stack is
// fully built before the pool is published, so no lock is needed here.
func newHGPool(window, segBytes, numSegments int) *hgPool {
	free := make([]*storage.OldCopy, 0, window)
	for i := 0; i < window; i++ {
		free = append(free, &storage.OldCopy{Data: make([]byte, segBytes)})
	}
	p := &hgPool{
		w:       window,
		free:    free,
		pending: make([]int, 0, numSegments),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// window returns the pool size W, immutable after construction.
func (p *hgPool) window() int { return p.w }

// tryGet pops a free buffer without blocking, or returns nil. Safe to
// call with a segment latch held (lock order 40 -> 45).
//
// lockorder:acquires hgPool.mu
// lockorder:releases hgPool.mu
func (p *hgPool) tryGet() *storage.OldCopy {
	p.mu.Lock()
	var buf *storage.OldCopy
	if n := len(p.free); n > 0 {
		buf = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	return buf
}

// waitGet blocks until a buffer frees or the run generation moves on
// (hgEndRun), reporting ok=false in the latter case. Callers must NOT
// hold any segment latch — the checkpointer needs latches to return
// buffers.
//
// lockorder:acquires hgPool.mu
// lockorder:releases hgPool.mu
func (p *hgPool) waitGet(gen uint64) (buf *storage.OldCopy, ok bool) {
	p.mu.Lock()
	// ctxcheck:exempt(woken by hgEndRun's broadcast at the end of every hourglass checkpoint, success and error paths alike; the wait cannot outlive the run)
	for len(p.free) == 0 && p.gen == gen {
		p.cond.Wait()
	}
	if p.gen != gen {
		p.mu.Unlock()
		return nil, false
	}
	n := len(p.free)
	buf = p.free[n-1]
	p.free = p.free[:n-1]
	p.mu.Unlock()
	return buf, true
}

// put returns a buffer to the pool and wakes one waiting writer.
//
// lockorder:acquires hgPool.mu
// lockorder:releases hgPool.mu
func (p *hgPool) put(buf *storage.OldCopy) {
	p.mu.Lock()
	p.free = append(p.free, buf) // alloc:allowed(free was allocated with cap=window and never holds more than window buffers; append never grows it)
	p.cond.Signal()
	p.mu.Unlock()
}

// curGen reads the current run generation (for waitGet).
//
// lockorder:acquires hgPool.mu
// lockorder:releases hgPool.mu
func (p *hgPool) curGen() uint64 {
	p.mu.Lock()
	g := p.gen
	p.mu.Unlock()
	return g
}

// noteOld records that segment idx now holds an old copy, for the
// checkpointer's priority drain. Called with the segment latch held
// (lock order 40 -> 45).
//
// lockorder:acquires hgPool.mu
// lockorder:releases hgPool.mu
func (p *hgPool) noteOld(idx int) {
	p.mu.Lock()
	p.pending = append(p.pending, idx) // alloc:allowed(pending was allocated with cap=numSegments and each segment preserves at most once per run; append never grows it)
	p.mu.Unlock()
}

// popPending pops one pending segment index, if any. The checkpointer
// releases the pool mutex before latching the segment.
//
// lockorder:acquires hgPool.mu
// lockorder:releases hgPool.mu
func (p *hgPool) popPending() (idx int, ok bool) {
	p.mu.Lock()
	if n := len(p.pending); n > 0 {
		idx = p.pending[n-1]
		p.pending = p.pending[:n-1]
		ok = true
	}
	p.mu.Unlock()
	return idx, ok
}

// endRun closes out an hourglass run: clears the pending list, bumps the
// generation, and wakes every waiting writer (their run is over; they
// install plainly).
//
// lockorder:acquires hgPool.mu
// lockorder:releases hgPool.mu
func (p *hgPool) endRun() {
	p.mu.Lock()
	p.pending = p.pending[:0]
	p.gen++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// hgEndRun runs after an hourglass checkpoint ends (success OR error),
// with the run already unpublished (e.cur is nil): any old copies still
// attached to segments — left by an aborted sweep, or by writers that
// preserved just before the run ended — are reclaimed into the pool,
// then waiting writers are woken. After it returns the pool is fully
// free again.
//
// lockorder:held Engine.ckptMu
func (e *Engine) hgEndRun() {
	n := e.store.NumSegments()
	for i := 0; i < n; i++ {
		seg := e.store.Seg(i)
		seg.Lock()
		old := seg.TakeOld()
		seg.Unlock()
		if old != nil {
			e.ctr.bumpCOULive(-1)
			e.hg.put(old)
		}
	}
	e.hg.endRun()
}

// hourglassPreserve attaches a windowed old copy to a not-yet-dumped
// segment before tx installs into it. Called with the segment latch
// held; it may release and reacquire the latch while waiting for a
// window buffer, re-validating the preservation condition afterwards.
// Always returns with the latch held.
//
// If the wait ends because the run ended (ok=false), the transaction
// installs plainly — correct, since the checkpoint is over. A NEW run
// cannot have started in the window: hourglass begins with a quiesce,
// which waits for this still-active transaction to finish first.
//
// lockcheck:held seg
func (tx *Txn) hourglassPreserve(run *ckptRun, seg *storage.Segment, segIdx int) {
	e := tx.e
	if seg.Paint == run.id || seg.TS > run.tau || seg.Old != nil {
		return
	}
	buf := e.hg.tryGet()
	if buf == nil {
		// The window is exhausted: release the latch (the checkpointer
		// needs it to return buffers) and wait for a buffer or for the
		// run to end.
		gen := e.hg.curGen()
		seg.Unlock()
		e.ctr.hgWaits.Add(1)
		stallSpan := obs.SpanNone
		if tx.span != obs.SpanNone {
			stallSpan = e.eo.spans.Begin(obs.SpanHourglassStall, tx.span, tx.id, uint64(segIdx))
		}
		stallBegan := time.Now()
		var ok bool
		buf, ok = e.hg.waitGet(gen)
		stalled := time.Since(stallBegan)
		e.eo.attrHgStallH.Observe(uint64(max(stalled, 0)))
		e.eo.spans.End(stallSpan)
		e.eo.tracer.Record(obs.EvHourglassStall, tx.id, uint64(segIdx), uint64(max(stalled, 0)))
		seg.Lock()
		if !ok || e.cur.Load() != run || seg.Paint == run.id || seg.TS > run.tau || seg.Old != nil {
			// The run ended, or the segment was dumped/preserved while we
			// waited; install plainly.
			if buf != nil {
				e.hg.put(buf)
			}
			return
		}
	}
	couSpan := obs.SpanNone
	if tx.span != obs.SpanNone {
		couSpan = e.eo.spans.Begin(obs.SpanCOUCopy, tx.span, tx.id, uint64(segIdx))
	}
	couBegan := time.Now()
	copy(buf.Data, seg.Data)
	buf.Dirty = seg.Dirty
	buf.TS = seg.TS
	seg.Old = buf
	e.eo.attrCouCopyH.Observe(uint64(max(time.Since(couBegan), 0)))
	e.eo.spans.End(couSpan)
	e.hg.noteOld(segIdx)
	e.ctr.couCopies.Add(1)
	e.ctr.couCopyBytes.Add(uint64(len(buf.Data)))
	e.ctr.bumpCOULive(1)
}

// hgProcess secures one segment for the run: it paints the segment with
// the run ID (making processing idempotent and stopping further
// preservation), then flushes either the preserved old copy — returning
// its buffer to the pool — or the live segment while latched (COUFLUSH
// style). As with COU, the live dirty bit stays set after an old-copy
// flush: the newer live contents still owe the target a flush at the
// next checkpoint.
//
// No LSN checks are needed: every flushed image predates the
// begin-checkpoint record, whose log-tail flush made it durable.
//
// lockorder:held Engine.ckptMu
// walorder:stable-tail every hourglass image flushed here predates the begin-checkpoint record, whose log-tail flush (Engine.CheckpointContext) already made it durable
func (e *Engine) hgProcess(run *ckptRun, idx int) (wrote, processed bool, err error) {
	seg := e.store.Seg(idx)
	seg.Lock()
	if seg.Paint == run.id {
		seg.Unlock()
		return false, false, nil // already secured (priority drain vs scan)
	}
	seg.Paint = run.id
	if old := seg.TakeOld(); old != nil {
		seg.Unlock()
		e.ctr.bumpCOULive(-1)
		if e.params.Full || old.Dirty[run.target] {
			err = e.flushSegment(run, idx, old.Data)
			wrote = err == nil
		}
		e.hg.put(old)
		return wrote, true, err
	}
	if !e.params.Full && !seg.Dirty[run.target] {
		seg.Unlock()
		return false, true, nil
	}
	seg.Dirty[run.target] = false
	err = e.flushSegment(run, idx, seg.Data)
	seg.Unlock()
	return err == nil, true, err
}

// hgDrain processes every segment currently on the pending list,
// folding results into the sweep totals. Draining ahead of the in-order
// scan is what recycles window buffers fast enough for writers.
//
// lockorder:held Engine.ckptMu
func (e *Engine) hgDrain(run *ckptRun, segBytes int, flushed, skipped *int, bytes *int64) error {
	for {
		idx, ok := e.hg.popPending()
		if !ok {
			return nil
		}
		wrote, processed, err := e.hgProcess(run, idx)
		if err != nil {
			return err
		}
		if processed {
			if wrote {
				*flushed++
				*bytes += int64(segBytes)
			} else {
				*skipped++
			}
		}
	}
}

// sweepHourglass is the serial HOURGLASS sweep: drain the pending list,
// then secure the next segment in order, repeating. The fault-injection
// hook fires once per segment from the in-order scan only (never from
// the drain), so hook hit counts stay deterministic regardless of writer
// interleaving.
//
// lockorder:held Engine.ckptMu
func (e *Engine) sweepHourglass(ctx context.Context, run *ckptRun) (flushed, skipped int, bytes int64, err error) {
	n := e.store.NumSegments()
	segBytes := e.store.Config().SegmentBytes
	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			return flushed, skipped, bytes, err
		}
		if err = e.hgDrain(run, segBytes, &flushed, &skipped, &bytes); err != nil {
			return flushed, skipped, bytes, err
		}
		wrote, processed, perr := e.hgProcess(run, i)
		if perr != nil {
			return flushed, skipped, bytes, perr
		}
		if processed {
			if wrote {
				flushed++
				bytes += int64(segBytes)
			} else {
				skipped++
			}
		}
		if err = e.segmentDone(run, 0, i); err != nil {
			return flushed, skipped, bytes, err
		}
	}
	// Preservation requires Paint != run.id and the scan painted every
	// segment, so no old copy can appear from here on. The pending list
	// can still name already-processed segments; drain it so hgEndRun
	// starts from an empty list.
	err = e.hgDrain(run, segBytes, &flushed, &skipped, &bytes)
	return flushed, skipped, bytes, err
}

// sweepHourglassParallel is the parallel HOURGLASS sweep: the
// coordinator drains the pending list between batches, and each batch
// fans its segments out to workers running hgProcess — idempotent via
// the paint, so a drain/batch overlap on the same segment is harmless.
//
// lockorder:held Engine.ckptMu
func (e *Engine) sweepHourglassParallel(ctx context.Context, run *ckptRun, par int) (flushed, skipped int, bytes int64, err error) {
	n := e.store.NumSegments()
	segBytes := e.store.Config().SegmentBytes
	slots := make([]ckptSlot, par)
	for base := 0; base < n; base += par {
		if err = ctx.Err(); err != nil {
			return flushed, skipped, bytes, err
		}
		if err = e.hgDrain(run, segBytes, &flushed, &skipped, &bytes); err != nil {
			return flushed, skipped, bytes, err
		}
		count := min(par, n-base)
		e.eo.ckptBatchH.Observe(uint64(count))
		fanOut(count, func(w int) {
			slot := &slots[w]
			*slot = ckptSlot{idx: base + w}
			wrote, processed, perr := e.hgProcess(run, slot.idx)
			if perr != nil {
				slot.err = perr
				return
			}
			if processed {
				slot.flushed = wrote
				slot.skipped = !wrote
			}
			slot.err = e.segmentDone(run, w, slot.idx)
		})
		tally(slots, count, segBytes, &flushed, &skipped, &bytes)
		if err = firstSlotErr(slots, count); err != nil {
			return flushed, skipped, bytes, err
		}
	}
	err = e.hgDrain(run, segBytes, &flushed, &skipped, &bytes)
	return flushed, skipped, bytes, err
}
