package engine

// Parallel checkpoint sweeps (DESIGN.md §15).
//
// Each sweep fans segments out to CheckpointParallelism workers in fixed
// batches: batch b hands segment b*par+w to worker w, so the assignment is
// deterministic and per-worker crash points (faultfs
// "checkpoint.segment.worker<w>") fire reproducibly. Every worker runs the
// complete per-segment protocol of the serial sweep — latch, dirty check,
// copy or direct flush, paint, lock release — so each worker holds at most
// one segment latch and one lock-manager lock at a time, exactly like the
// serial checkpointer, and the lock-level discipline is unchanged.
//
// Only two steps are shared:
//
//   - The write-ahead LSN wait (FUZZYCOPY, 2CCOPY, 2CFLUSH): workers
//     record their segment's LSN in phase A; the coordinator issues ONE
//     waitLSN for the batch maximum — the log flush that covers the whole
//     batch — and only then do workers flush in phase B. FASTFUZZY and the
//     COU algorithms need no LSN check (stable tail / pre-flushed begin
//     record), so they run single-phase.
//
//   - The COU cursor: run.curSeg advances to the batch's last index only
//     after the batch joins. Updaters of batch segments already secured
//     but not yet behind the cursor take spurious old copies; those sit
//     in the same race window the serial sweep has and are released by
//     dropOldCopies at the end of the checkpoint.
//
// Workers are ALWAYS joined before the sweep returns, error or not: an
// engine Close that drains the checkpoint (via ckptMu) is therefore also
// guaranteed to have drained the pool.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mmdb/internal/lockmgr"
	"mmdb/internal/wal"
)

// ckptSlot is the coordinator↔worker exchange for one segment of one
// batch. Slots are touched by exactly one worker between joins, so they
// need no locking.
type ckptSlot struct {
	idx     int     // segment index
	need    bool    // phase A decided the segment owes the target a flush
	lsn     wal.LSN // write-ahead position recorded in phase A
	locked  bool    // 2CFLUSH: worker still holds the lock-manager S lock
	buf     []byte  // per-worker copy buffer (copy-mode algorithms)
	began   time.Time
	flushed bool
	skipped bool
	err     error
}

// fanOut runs fn(w) for w in [0, count) concurrently and joins all of
// them before returning.
func fanOut(count int, fn func(w int)) {
	done := make(chan struct{})
	for w := 0; w < count; w++ {
		// goleak:joins the receive loop below takes exactly one token per worker
		go func(w int) {
			defer func() { done <- struct{}{} }()
			fn(w)
		}(w)
	}
	// ctxcheck:exempt(the join is mandatory: every worker sends exactly one token via its deferred send, so this loop always terminates)
	for w := 0; w < count; w++ {
		<-done
	}
}

// firstSlotErr returns the lowest-slot error, mapping lock-manager
// shutdown to ErrStopped as the serial sweeps do.
func firstSlotErr(slots []ckptSlot, count int) error {
	for s := 0; s < count; s++ {
		if err := slots[s].err; err != nil {
			if errors.Is(err, lockmgr.ErrShutdown) {
				return ErrStopped
			}
			return err
		}
	}
	return nil
}

// tally folds a joined batch's slots into the sweep totals.
func tally(slots []ckptSlot, count int, segBytes int, flushed, skipped *int, bytes *int64) {
	for s := 0; s < count; s++ {
		if slots[s].flushed {
			*flushed++
			*bytes += int64(segBytes)
		}
		if slots[s].skipped {
			*skipped++
		}
	}
}

// sweepParallel dispatches to the parallel sweep for the run's algorithm
// family. par > 1.
//
// lockorder:held Engine.ckptMu
func (e *Engine) sweepParallel(ctx context.Context, run *ckptRun, par int) (flushed, skipped int, bytes int64, err error) {
	switch {
	case run.alg == FastFuzzy:
		return e.sweepFastFuzzyParallel(ctx, run, par)
	case run.alg == FuzzyCopy || run.alg.TwoColor():
		return e.sweepBarrierParallel(ctx, run, par)
	case run.alg.CopyOnUpdate():
		return e.sweepCOUParallel(ctx, run, par)
	case run.alg == Zigzag:
		return e.sweepZigzagParallel(ctx, run, par)
	case run.alg == Hourglass:
		return e.sweepHourglassParallel(ctx, run, par)
	default:
		return 0, 0, 0, fmt.Errorf("engine: unknown algorithm %v", run.alg)
	}
}

// sweepFastFuzzyParallel is the parallel FASTFUZZY sweep: single-phase,
// each worker flushes its segment straight from the database while
// latched. The stable log tail covers every write, so there is no
// barrier at all — batches exist only to bound the pool.
//
// lockorder:held Engine.ckptMu
func (e *Engine) sweepFastFuzzyParallel(ctx context.Context, run *ckptRun, par int) (flushed, skipped int, bytes int64, err error) {
	n := e.store.NumSegments()
	segBytes := e.store.Config().SegmentBytes
	slots := make([]ckptSlot, par)
	for base := 0; base < n; base += par {
		if err = ctx.Err(); err != nil {
			return flushed, skipped, bytes, err
		}
		count := min(par, n-base)
		e.eo.ckptBatchH.Observe(uint64(count))
		fanOut(count, func(w int) {
			slot := &slots[w]
			*slot = ckptSlot{idx: base + w, began: time.Now()}
			seg := e.store.Seg(slot.idx)
			seg.Lock()
			if !e.params.Full && !seg.Dirty[run.target] {
				seg.Unlock()
				slot.skipped = true
				return
			}
			seg.Dirty[run.target] = false
			slot.err = e.flushSegment(run, slot.idx, seg.Data) // walorder:stable-tail FASTFUZZY runs under a stable log tail (Section 4): every logged update is already durable
			seg.Unlock()
			if slot.err != nil {
				return
			}
			slot.flushed = true
			slot.err = e.segmentDone(run, w, slot.idx)
			e.eo.ckptWorkerH.ObserveSince(slot.began)
		})
		tally(slots, count, segBytes, &flushed, &skipped, &bytes)
		if err = firstSlotErr(slots, count); err != nil {
			return flushed, skipped, bytes, err
		}
	}
	return flushed, skipped, bytes, nil
}

// sweepBarrierParallel is the parallel sweep for the three algorithms
// whose write-ahead rule needs an LSN check: FUZZYCOPY, 2CCOPY, and
// 2CFLUSH. Each batch runs two phases around one shared barrier:
//
//	phase A  workers run the pre-flush half of the serial protocol
//	         (lock-manager S lock for the two-color pair, latch, dirty
//	         check, snapshot or LastLSN read, paint) and record the LSN
//	         the write-ahead rule requires.
//	barrier  the coordinator waits once for the batch-maximum LSN — one
//	         log flush covers every segment in the batch.
//	phase B  workers flush and release.
//
// 2CFLUSH workers keep their S lock across the barrier, exactly as the
// serial sweep holds it across its per-segment LSN wait; on a barrier or
// phase-A error the coordinator releases every lock still held before
// returning.
//
// lockorder:held Engine.ckptMu
func (e *Engine) sweepBarrierParallel(ctx context.Context, run *ckptRun, par int) (flushed, skipped int, bytes int64, err error) {
	n := e.store.NumSegments()
	segBytes := e.store.Config().SegmentBytes
	alg := run.alg
	twoColor := alg.TwoColor()
	flushMode := alg == TwoColorFlush
	slots := make([]ckptSlot, par)
	for s := range slots {
		if !flushMode {
			slots[s].buf = make([]byte, segBytes)
		}
	}

	// releaseHeld frees the S locks of slots still holding one (error
	// paths only; the normal phase B releases its own).
	releaseHeld := func(count int) {
		for s := 0; s < count; s++ {
			if slots[s].locked {
				e.locks.Unlock(checkpointerOwner, segKey(slots[s].idx))
				slots[s].locked = false
			}
		}
	}

	for base := 0; base < n; base += par {
		if err = ctx.Err(); err != nil {
			return flushed, skipped, bytes, err
		}
		count := min(par, n-base)
		e.eo.ckptBatchH.Observe(uint64(count))

		// Phase A: prepare. Each worker ends the phase holding no latch;
		// only 2CFLUSH workers with a dirty segment keep their S lock.
		fanOut(count, func(w int) {
			slot := &slots[w]
			buf := slot.buf
			*slot = ckptSlot{idx: base + w, buf: buf, began: time.Now(), lsn: wal.NilLSN}
			i := slot.idx
			if twoColor {
				// "Request read (shared) lock on any white segment and
				// wait." Writer waits against the pool's locks resolve the
				// same way as against the serial checkpointer: the writer's
				// lock timeout aborts and restarts it.
				if lerr := e.locks.Lock(checkpointerOwner, segKey(i), lockmgr.S, 0); lerr != nil {
					slot.err = fmt.Errorf("engine: two-color wait on segment %d: %w", i, lerr)
					return
				}
				slot.locked = true
			}
			seg := e.store.Seg(i)
			seg.Lock()
			slot.need = e.params.Full || seg.Dirty[run.target]
			if slot.need {
				if flushMode {
					slot.lsn = seg.LastLSN
				} else {
					slot.lsn = seg.Snapshot(slot.buf)
				}
				seg.Dirty[run.target] = false
				if !flushMode {
					e.ctr.checkpointerCopy.Add(1)
				}
			}
			if twoColor {
				seg.Paint = run.id // paint black
			}
			seg.Unlock()
			// 2CCOPY: "the segment can be unlocked as soon as it is
			// copied." 2CFLUSH keeps the lock across the barrier and the
			// disk write. Clean two-color segments never need the lock
			// past the paint.
			if slot.locked && (!flushMode || !slot.need) {
				e.locks.Unlock(checkpointerOwner, segKey(i))
				slot.locked = false
			}
		})
		if err = firstSlotErr(slots, count); err != nil {
			releaseHeld(count)
			return flushed, skipped, bytes, err
		}

		// Barrier: one write-ahead wait covers the whole batch.
		batchLSN := wal.NilLSN
		for s := 0; s < count; s++ {
			if slots[s].need {
				batchLSN = wal.MaxLSN(batchLSN, slots[s].lsn)
			}
		}
		if err = e.waitLSN(batchLSN); err != nil {
			releaseHeld(count)
			return flushed, skipped, bytes, err
		}

		// Phase B: flush and release.
		fanOut(count, func(w int) {
			slot := &slots[w]
			i := slot.idx
			if !slot.need {
				slot.skipped = true
				if twoColor {
					// The serial sweep runs the hook for skipped two-color
					// segments too (they were locked and painted).
					slot.err = e.segmentDone(run, w, i)
				}
				return
			}
			if flushMode {
				seg := e.store.Seg(i)
				// The S lock held since phase A excludes writers for the
				// duration of the write, as in the serial 2CFLUSH.
				slot.err = e.flushSegment(run, i, seg.Data) //nolint:lockcheck // stable: the lock-manager S lock excludes writers (see comment above)    walorder:stable-tail the coordinator's batch barrier (sweepBarrierParallel) already waited for this batch's maximum LastLSN
				e.locks.Unlock(checkpointerOwner, segKey(i))
				slot.locked = false
			} else {
				slot.err = e.flushSegment(run, i, slot.buf) // walorder:stable-tail the coordinator's batch barrier (sweepBarrierParallel) already waited for this batch's maximum snapshot LSN
			}
			if slot.err != nil {
				return
			}
			slot.flushed = true
			slot.err = e.segmentDone(run, w, i)
			e.eo.ckptWorkerH.ObserveSince(slot.began)
		})
		tally(slots, count, segBytes, &flushed, &skipped, &bytes)
		if err = firstSlotErr(slots, count); err != nil {
			releaseHeld(count)
			return flushed, skipped, bytes, err
		}
	}
	return flushed, skipped, bytes, nil
}

// sweepCOUParallel is the parallel copy-on-update sweep. Workers run the
// full serial per-segment protocol (old-copy takeover, snapshot or
// latched flush); no LSN checks are needed because every snapshotted
// update predates the begin-checkpoint record, whose log-tail flush
// already made it durable. The cursor advances per batch, after the
// join — see the file comment for why the lag is safe.
//
// lockorder:held Engine.ckptMu
// walorder:stable-tail every snapshotted update predates the begin-checkpoint record, whose log-tail flush (Engine.CheckpointContext) already made it durable
func (e *Engine) sweepCOUParallel(ctx context.Context, run *ckptRun, par int) (flushed, skipped int, bytes int64, err error) {
	n := e.store.NumSegments()
	copyMode := run.alg == COUCopy
	segBytes := e.store.Config().SegmentBytes
	slots := make([]ckptSlot, par)
	if copyMode {
		for s := range slots {
			slots[s].buf = make([]byte, segBytes)
		}
	}

	for base := 0; base < n; base += par {
		if err = ctx.Err(); err != nil {
			return flushed, skipped, bytes, err
		}
		count := min(par, n-base)
		e.eo.ckptBatchH.Observe(uint64(count))
		fanOut(count, func(w int) {
			slot := &slots[w]
			buf := slot.buf
			*slot = ckptSlot{idx: base + w, buf: buf, began: time.Now()}
			i := slot.idx
			seg := e.store.Seg(i)
			seg.Lock()
			if old := seg.TakeOld(); old != nil {
				seg.Unlock()
				e.ctr.bumpCOULive(-1)
				if e.params.Full || old.Dirty[run.target] {
					if slot.err = e.flushSegment(run, i, old.Data); slot.err != nil {
						return
					}
					slot.flushed = true
				}
			} else {
				need := e.params.Full || seg.Dirty[run.target]
				switch {
				case !need:
					seg.Unlock()
				case copyMode:
					seg.Snapshot(slot.buf)
					seg.Dirty[run.target] = false
					seg.Unlock()
					e.ctr.checkpointerCopy.Add(1)
					if slot.err = e.flushSegment(run, i, slot.buf); slot.err != nil {
						return
					}
					slot.flushed = true
				default: // COUFLUSH: write while latched
					seg.Dirty[run.target] = false
					slot.err = e.flushSegment(run, i, seg.Data)
					seg.Unlock()
					if slot.err != nil {
						return
					}
					slot.flushed = true
				}
			}
			if !slot.flushed {
				slot.skipped = true
			}
			slot.err = e.segmentDone(run, w, i)
			e.eo.ckptWorkerH.ObserveSince(slot.began)
		})
		tally(slots, count, segBytes, &flushed, &skipped, &bytes)
		if err = firstSlotErr(slots, count); err != nil {
			return flushed, skipped, bytes, err
		}
		// The whole batch is secured: updaters of segments at or below the
		// cursor skip old-version preservation from here on.
		run.curSeg.Store(int64(base + count - 1))
	}
	return flushed, skipped, bytes, nil
}
