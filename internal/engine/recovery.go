package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mmdb/internal/backup"
	"mmdb/internal/faultfs"
	"mmdb/internal/obs"
	"mmdb/internal/storage"
	"mmdb/internal/wal"
)

// RecoveryReport describes what system-failure recovery did: which backup
// copy it loaded, how much log it scanned, and how much redo it applied.
// The byte volumes feed recovery-time estimates under a disk model (the
// paper takes recovery time to be backup read time plus log read time).
type RecoveryReport struct {
	// UsedCheckpoint is false when no complete checkpoint existed and the
	// database was rebuilt from the initial (zero) state plus the log.
	UsedCheckpoint bool
	// UsedCopy is the ping-pong copy recovered from.
	UsedCopy int
	// CheckpointID and CheckpointAlgorithm identify the checkpoint.
	CheckpointID        uint64
	CheckpointAlgorithm string
	// ScanStartLSN is where the forward redo scan began; for fuzzy
	// checkpoints it precedes the begin-checkpoint marker when
	// transactions were active at checkpoint begin.
	ScanStartLSN wal.LSN
	// LogEndLSN is the end of the intact log prefix.
	LogEndLSN wal.LSN
	// SegmentsLoaded counts backup slots actually written (the rest of the
	// database is its initial zero state).
	SegmentsLoaded int
	// BackupBytesRead and LogBytesRead are the I/O volumes that dominate
	// recovery time.
	BackupBytesRead int64
	LogBytesRead    int64
	// TornTailBytes is the length of the log suffix discarded because a
	// crash tore it (truncated or corrupted the final record frame).
	TornTailBytes int64
	// RecordsScanned counts log records examined; TxnsReplayed counts
	// committed transactions whose updates were applied; UpdatesApplied
	// and UpdatesDiscarded split redo records by commit status (discarded
	// updates belong to uncommitted or aborted transactions — redo-only
	// logging simply ignores them).
	RecordsScanned   int
	TxnsReplayed     int
	UpdatesApplied   int
	UpdatesDiscarded int
	// LogicalReplayed counts the subset of UpdatesApplied that were
	// logical (operation) records.
	LogicalReplayed int
	// Parallelism is the worker count the backup load and redo apply ran
	// with (Params.RecoveryParallelism after defaulting). The recovered
	// image is byte-identical at any setting.
	Parallelism int
	// Elapsed is the wall-clock recovery duration in this process.
	Elapsed time.Duration
	// Phase durations: Elapsed ≈ BackupLoadTime + LogScanTime +
	// RedoApplyTime plus setup. These are the measured counterparts of
	// the paper's recovery-time model (backup read time + log read time);
	// the same values are exposed as mmdb_recovery_*_seconds gauges.
	BackupLoadTime time.Duration
	LogScanTime    time.Duration
	RedoApplyTime  time.Duration
}

// Recover rebuilds the primary database from the backup store and the log
// (Section 3.3): it reads the most recent complete backup copy into main
// memory, then scans the log forward from the checkpoint's scan-start
// position, applying the after-images of committed transactions in log
// order. It returns a running engine.
//
// ctxcheck:root(no-ctx convenience wrapper; RecoverContext is the cancellable form)
func Recover(p Params) (*Engine, *RecoveryReport, error) {
	return RecoverContext(context.Background(), p)
}

// RecoverContext is Recover with cancellation: ctx is consulted between
// backup segments, between log records, and between recovery phases,
// never mid-segment or mid-record. A cancelled recovery returns ctx's
// error with no engine; the on-disk state is untouched except possibly
// a truncated torn log tail, which a later recovery would truncate
// identically — re-running recovery after a cancellation is always
// safe.
func RecoverContext(ctx context.Context, p Params) (*Engine, *RecoveryReport, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	started := time.Now()
	eo := newEngineObs(p.SpanSampleEvery)
	// The recovery span tree ends only on the success path: on error the
	// engineObs (and its span ring) is discarded with the failed recovery.
	recSpan := eo.spans.Begin(obs.SpanRecovery, obs.SpanNone, 0, 0)

	st, err := storage.New(p.Storage)
	if err != nil {
		return nil, nil, err
	}
	bs, err := p.openBackupStore(st.NumSegments())
	if err != nil {
		return nil, nil, err
	}
	ok := false
	defer func() {
		if !ok {
			bs.Close() //nolint:errcheckwal // best-effort cleanup; the recovery error takes precedence
		}
	}()

	rep := &RecoveryReport{}
	copyIdx, info, err := bs.Latest()
	switch {
	case err == nil:
		rep.UsedCheckpoint = true
		rep.UsedCopy = copyIdx
		rep.CheckpointID = info.ID
		rep.CheckpointAlgorithm = info.Algorithm
		rep.ScanStartLSN = info.ScanStartLSN
	case errors.Is(err, backup.ErrNoCheckpoint):
		// Crash before the first checkpoint completed: recover from the
		// initial zero database plus the whole log.
		rep.ScanStartLSN = 0
	default:
		return nil, nil, err
	}

	// Load the backup copy into primary memory: striped across
	// RecoveryParallelism concurrent readers (serially below 2).
	par := p.RecoveryParallelism
	rep.Parallelism = par
	loadSpan := eo.spans.Begin(obs.SpanRecBackupLoad, recSpan, uint64(copyIdx), 0)
	phaseBegan := time.Now()
	writtenBy := make([]uint64, st.NumSegments())
	if rep.UsedCheckpoint {
		if par > 1 {
			err = loadBackupStriped(ctx, bs, st, copyIdx, par, p.Storage.SegmentBytes, writtenBy, rep)
		} else {
			err = bs.ReadAll(copyIdx, func(idx int, wb uint64, data []byte) error {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				writtenBy[idx] = wb
				if wb == 0 {
					return nil
				}
				rep.SegmentsLoaded++
				rep.BackupBytesRead += int64(len(data))
				return st.LoadSegment(idx, data)
			})
		}
		if err != nil {
			return nil, nil, fmt.Errorf("engine: recovery: load backup copy %d: %w", copyIdx, err)
		}
	}
	rep.BackupLoadTime = time.Since(phaseBegan)
	eo.spans.End(loadSpan)
	eo.recBackupLoad.Set(rep.BackupLoadTime.Seconds())
	eo.tracer.Record(obs.EvRecoveryPhase, obs.RecPhaseBackupLoad, uint64(rep.BackupLoadTime), 0)

	// Scan the log. Pass 1 finds committed transactions; pass 2 applies
	// their after-images in log order (record-level X locks held to commit
	// make per-record log order match commit order, so last-in-log wins).
	scanSpan := eo.spans.Begin(obs.SpanRecLogScan, recSpan, 0, 0)
	phaseBegan = time.Now()
	logPath := filepath.Join(p.Dir, logFileName)
	reader, err := wal.OpenReader(logPath)
	if err != nil {
		if os.IsNotExist(err) && !rep.UsedCheckpoint {
			return nil, nil, errors.New("engine: recovery: no log and no checkpoint; nothing to recover (use Open for a new database)")
		}
		if errors.Is(err, wal.ErrBadHeader) && !rep.UsedCheckpoint {
			// A crash tore the very first write to a fresh log (the file
			// header). No record can have been durable — records only
			// follow a complete header — so with no checkpoint either,
			// the durable state is the initial empty database. Reset the
			// file and recover from nothing.
			if terr := wal.Reset(p.FS, logPath, 0); terr != nil {
				return nil, nil, fmt.Errorf("engine: recovery: reset torn log header: %w", terr)
			}
			reader, err = wal.OpenReader(logPath)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	// Walk the whole surviving log once: find the intact end and the
	// highest transaction ID ever used. The re-opened engine must issue
	// IDs above every ID still visible in the log — otherwise a new
	// committed transaction could share an ID with an old aborted one,
	// and a later recovery would replay the aborted redo records as
	// committed.
	var maxTxnID uint64
	validEnd := reader.Base()
	err = reader.Scan(reader.Base(), func(e wal.Entry) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		validEnd = e.Next
		if e.Rec.TxnID > maxTxnID {
			maxTxnID = e.Rec.TxnID
		}
		return nil
	})
	if err != nil {
		return nil, nil, errors.Join(fmt.Errorf("engine: recovery: locate log end: %w", err), reader.Close())
	}
	rep.LogEndLSN = validEnd

	if rep.UsedCheckpoint {
		// Fidelity cross-check of the paper's backward scan: the
		// begin-checkpoint marker for the recovered checkpoint must exist
		// in the durable log and agree with the backup metadata.
		marker, merr := reader.FindCheckpoint(validEnd, info.ID)
		if merr != nil {
			return nil, nil, errors.Join(fmt.Errorf("engine: recovery: %w", merr), reader.Close())
		}
		if marker.LSN != info.BeginLSN || marker.ScanStart != info.ScanStartLSN {
			return nil, nil, errors.Join(
				fmt.Errorf("engine: recovery: marker/metadata mismatch: marker at %d (scan %d), metadata says %d (scan %d)",
					marker.LSN, marker.ScanStart, info.BeginLSN, info.ScanStartLSN),
				reader.Close())
		}
	}

	committed := make(map[uint64]bool)
	err = reader.Scan(rep.ScanStartLSN, func(e wal.Entry) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		rep.RecordsScanned++
		rep.LogBytesRead += e.Next.Sub(e.LSN)
		if e.Rec.Type == wal.TypeCommit {
			committed[e.Rec.TxnID] = true
		}
		return nil
	})
	if err != nil {
		return nil, nil, errors.Join(fmt.Errorf("engine: recovery: commit scan: %w", err), reader.Close())
	}
	rep.TxnsReplayed = len(committed)
	rep.LogScanTime = time.Since(phaseBegan)
	eo.spans.End(scanSpan)
	eo.recLogScan.Set(rep.LogScanTime.Seconds())
	eo.tracer.Record(obs.EvRecoveryPhase, obs.RecPhaseLogScan, uint64(rep.LogScanTime), 0)
	redoSpan := eo.spans.Begin(obs.SpanRecRedoApply, recSpan, 0, 0)
	phaseBegan = time.Now()

	// Operation registry for logical redo (built-ins plus custom ops the
	// caller supplied; they must match the writing engine's).
	ops := builtinOps()
	for code, fn := range p.Operations {
		ops[code] = fn
	}

	touched := make([]bool, st.NumSegments())
	truncateAt := reader.FileOffset(validEnd)
	if par > 1 {
		err = applyRedoPartitioned(ctx, reader, st, ops, committed, par,
			p.Storage.RecordBytes, touched, rep, eo)
	} else {
		recBuf := make([]byte, p.Storage.RecordBytes)
		err = reader.Scan(rep.ScanStartLSN, func(e wal.Entry) error {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			switch e.Rec.Type {
			case wal.TypeUpdate, wal.TypeLogicalUpdate:
				if !committed[e.Rec.TxnID] {
					rep.UpdatesDiscarded++
					return nil
				}
				logical, aerr := applyRedoRecord(st, ops, e.Rec, recBuf)
				if aerr != nil {
					return aerr
				}
				if logical {
					rep.LogicalReplayed++
				}
			default:
				return nil
			}
			touched[st.SegmentIndexOf(e.Rec.RecordID)] = true
			rep.UpdatesApplied++
			return nil
		})
	}
	cerr := reader.Close()
	if err != nil {
		return nil, nil, errors.Join(fmt.Errorf("engine: recovery: redo: %w", err), cerr)
	}
	if cerr != nil {
		return nil, nil, fmt.Errorf("engine: recovery: close log reader: %w", cerr)
	}

	// Discard the torn tail so the re-opened log appends cleanly. Only
	// ever shrink: on a zero-byte log (created but never written) the
	// intact-end offset lies past the physical end, and extending the file
	// would manufacture a garbage header.
	if fi, serr := os.Stat(logPath); serr == nil && fi.Size() > truncateAt {
		rep.TornTailBytes = fi.Size() - truncateAt
		if err := faultfs.Or(p.FS).Truncate(logPath, truncateAt); err != nil {
			return nil, nil, fmt.Errorf("engine: recovery: truncate torn tail: %w", err)
		}
	}
	rep.RedoApplyTime = time.Since(phaseBegan)
	eo.spans.End(redoSpan)
	eo.recRedoApply.Set(rep.RedoApplyTime.Seconds())
	eo.tracer.Record(obs.EvRecoveryPhase, obs.RecPhaseRedoApply, uint64(rep.RedoApplyTime), 0)
	lg, err := wal.Open(logPath, wal.Options{
		StableTail:    p.StableTail,
		SyncOnFlush:   p.SyncOnFlush,
		FlushInterval: p.LogFlushInterval,
		FS:            p.FS,
		Metrics:       eo.walMetrics,
	})
	if err != nil {
		return nil, nil, err
	}

	// Reconstruct per-segment checkpoint bookkeeping.
	nextCkpt := uint64(1)
	for c := 0; c < storage.NumBackupCopies; c++ {
		if ci := bs.CopyInfo(c); ci.ID >= nextCkpt {
			nextCkpt = ci.ID + 1
		}
	}
	clock0 := info.Timestamp + 1
	if !rep.UsedCheckpoint {
		clock0 = 1
	}
	e := newEngine(p, st, lg, bs, nextCkpt, clock0, eo)
	e.txnSeq.Store(maxTxnID)
	other := 1 - copyIdx
	for i := 0; i < st.NumSegments(); i++ {
		seg := st.Seg(i)
		// Recovery is single-threaded here (the engine has not started),
		// so the latch is uncontended; held for the guarded_by invariant.
		seg.Lock()
		if touched[i] {
			// Replayed content is durable (it came from the log), so
			// flushing it to either copy needs no further LSN wait.
			seg.LastLSN = validEnd
		}
		if rep.UsedCheckpoint {
			seg.Dirty[copyIdx] = touched[i]
			// The other (older) copy may be stale for any segment that was
			// ever written into the recovered copy; be conservative.
			seg.Dirty[other] = touched[i] || writtenBy[i] != 0
		} else {
			seg.Dirty[0] = touched[i]
			seg.Dirty[1] = touched[i]
		}
		seg.Unlock()
	}
	rep.Elapsed = time.Since(started)
	eo.spans.End(recSpan)
	eo.recTotal.Set(rep.Elapsed.Seconds())
	ok = true
	e.start()
	return e, rep, nil
}

// applyRedoRecord applies one committed redo record — a physical
// after-image or a logical operation — to the store, using recBuf as the
// logical-op scratch buffer. It reports whether the record was logical.
func applyRedoRecord(st *storage.Store, ops map[OpCode]OpFunc, rec *wal.Record, recBuf []byte) (logical bool, err error) {
	switch rec.Type {
	case wal.TypeUpdate:
		if aerr := st.WriteRecordRaw(rec.RecordID, rec.Data); aerr != nil {
			return false, fmt.Errorf("apply update of record %d: %w", rec.RecordID, aerr)
		}
	case wal.TypeLogicalUpdate:
		fn := ops[OpCode(rec.OpCode)]
		if fn == nil {
			return false, fmt.Errorf("replay logical update of record %d: %w (code %d); pass the operation in Params.Operations",
				rec.RecordID, ErrUnknownOperation, rec.OpCode)
		}
		if aerr := st.ReadRecord(rec.RecordID, recBuf); aerr != nil {
			return false, fmt.Errorf("replay logical update of record %d: %w", rec.RecordID, aerr)
		}
		if aerr := fn(recBuf, rec.Data); aerr != nil {
			return false, fmt.Errorf("replay logical update of record %d: %w", rec.RecordID, aerr)
		}
		if aerr := st.WriteRecordRaw(rec.RecordID, recBuf); aerr != nil {
			return false, fmt.Errorf("replay logical update of record %d: %w", rec.RecordID, aerr)
		}
		return true, nil
	}
	return false, nil
}

// loadBackupStriped reads the backup copy with one reader goroutine per
// contiguous segment stripe (DESIGN.md §15). Stripes are disjoint, each
// reader owns its buffer, and LoadSegment targets distinct segments, so
// the loaded image is byte-identical to the serial ReadAll path.
func loadBackupStriped(ctx context.Context, bs backup.Store, st *storage.Store, copyIdx, par, segBytes int, writtenBy []uint64, rep *RecoveryReport) error {
	n := st.NumSegments()
	stripes := min(par, n)
	type stripeResult struct {
		loaded int
		bytes  int64
		err    error
	}
	res := make([]stripeResult, stripes)
	fanOut(stripes, func(s int) {
		lo, hi := s*n/stripes, (s+1)*n/stripes
		buf := make([]byte, segBytes)
		r := &res[s]
		for i := lo; i < hi; i++ {
			// Cancellation point between segments, never mid-segment: a
			// partially loaded stripe is fine because the engine is never
			// returned on error.
			if err := ctx.Err(); err != nil {
				r.err = err
				return
			}
			wb, err := bs.ReadSegment(copyIdx, i, buf)
			if err != nil {
				r.err = err
				return
			}
			writtenBy[i] = wb
			if wb == 0 {
				continue
			}
			r.loaded++
			r.bytes += int64(segBytes)
			if err := st.LoadSegment(i, buf); err != nil {
				r.err = err
				return
			}
		}
	})
	for s := range res {
		rep.SegmentsLoaded += res[s].loaded
		rep.BackupBytesRead += res[s].bytes
		if res[s].err != nil {
			return res[s].err
		}
	}
	return nil
}

// applyRedoPartitioned is the parallel redo phase (DESIGN.md §15): the log
// is scanned exactly once by this goroutine, which filters for committed
// updates and routes each to a worker chosen by segment range. All
// records of one segment reach the same worker in log order, so
// last-in-log-wins per record is preserved and the applied image is
// byte-identical to the serial scan. Workers that hit an error keep
// draining their channel (recording only the first), so the scanner never
// blocks on a full channel of a dead worker.
func applyRedoPartitioned(ctx context.Context, reader *wal.Reader, st *storage.Store, ops map[OpCode]OpFunc,
	committed map[uint64]bool, par, recordBytes int, touched []bool,
	rep *RecoveryReport, eo *engineObs) error {
	n := st.NumSegments()
	workers := min(par, n)
	type applyResult struct {
		applied, logical int
		err              error
	}
	res := make([]applyResult, workers)
	chans := make([]chan *wal.Record, workers)
	for w := range chans {
		chans[w] = make(chan *wal.Record, 256)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			began := time.Now()
			recBuf := make([]byte, recordBytes)
			r := &res[w]
			for rec := range chans[w] {
				if r.err != nil {
					continue
				}
				logical, err := applyRedoRecord(st, ops, rec, recBuf)
				if err != nil {
					r.err = err
					continue
				}
				if logical {
					r.logical++
				}
				touched[st.SegmentIndexOf(rec.RecordID)] = true
				r.applied++
			}
			eo.recApplyH.ObserveSince(began)
			eo.recApplyRecsH.Observe(uint64(r.applied))
		}(w)
	}
	// The scanner is the only cancellation point: it stops routing and
	// the closed channels below let the workers drain and exit, so
	// cancellation keeps the normal join discipline.
	scanErr := reader.Scan(rep.ScanStartLSN, func(e wal.Entry) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		switch e.Rec.Type {
		case wal.TypeUpdate, wal.TypeLogicalUpdate:
			if !committed[e.Rec.TxnID] {
				rep.UpdatesDiscarded++
				return nil
			}
			// The reader allocates a fresh Record per entry, so e.Rec can
			// cross the channel without copying.
			chans[st.SegmentIndexOf(e.Rec.RecordID)*workers/n] <- e.Rec
		}
		return nil
	})
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	for w := range res {
		rep.UpdatesApplied += res[w].applied
		rep.LogicalReplayed += res[w].logical
		if scanErr == nil && res[w].err != nil {
			scanErr = res[w].err
		}
	}
	return scanErr
}
