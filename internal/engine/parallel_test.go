package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// allAlgorithms is the canonical list — derived, not duplicated, so a new
// algorithm is swept by the parallel/recovery oracles automatically.
var allAlgorithms = AllAlgorithms()

// parallelParams is testParams with the parallel checkpoint and recovery
// pipelines switched on.
func parallelParams(t *testing.T, alg Algorithm, par int) Params {
	t.Helper()
	p := testParams(t, alg)
	p.CheckpointParallelism = par
	p.RecoveryParallelism = par
	return p
}

// parPauseHook is pauseHook for parallel sweeps: the segment hook fires
// from several worker goroutines concurrently, so arming and the
// pause-once transition must be race-free.
type parPauseHook struct {
	pauseAfter int
	armed      atomic.Bool
	once       sync.Once
	paused     chan struct{} // closed when the matching worker parks
	resume     chan struct{} // test closes to release it
}

func newParPauseHook(after int) *parPauseHook {
	return &parPauseHook{
		pauseAfter: after,
		paused:     make(chan struct{}),
		resume:     make(chan struct{}),
	}
}

func (h *parPauseHook) fn(_ uint64, _, segIdx int) error {
	if h.armed.Load() && segIdx == h.pauseAfter {
		h.armed.Store(false)
		h.once.Do(func() { close(h.paused) })
		<-h.resume
	}
	return nil
}

// TestParallelCheckpointRecovery runs every algorithm through several
// checkpoint rounds with 4 workers, crashes, recovers with 4-way
// parallel backup load and redo apply, and verifies every record
// against an oracle of committed values.
func TestParallelCheckpointRecovery(t *testing.T) {
	for _, alg := range allAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			p := parallelParams(t, alg, 4)
			e := mustOpen(t, p)
			oracle := map[uint64]uint64{}

			write := func(rid, v uint64) {
				t.Helper()
				if err := e.Exec(func(tx *Txn) error { return tx.Write(rid, encVal(v)) }); err != nil {
					t.Fatal(err)
				}
				oracle[rid] = v
			}
			for round := uint64(1); round <= 3; round++ {
				// Touch a spread of segments, including re-updates.
				for i := uint64(0); i < 40; i++ {
					write((i*13)%256, round*1000+i)
				}
				res, err := e.Checkpoint()
				if err != nil {
					t.Fatalf("checkpoint round %d: %v", round, err)
				}
				if res.SegmentsFlushed == 0 {
					t.Fatalf("checkpoint round %d flushed nothing", round)
				}
			}
			// Post-checkpoint tail: durable only through the log.
			for i := uint64(0); i < 16; i++ {
				write(200+i, 9000+i)
			}

			if err := e.Crash(); err != nil {
				t.Fatal(err)
			}
			e2, rep, err := Recover(p)
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			if rep.Parallelism != 4 {
				t.Errorf("RecoveryReport.Parallelism = %d, want 4", rep.Parallelism)
			}
			for rid := uint64(0); rid < 256; rid++ {
				if got, want := readVal(t, e2, rid), oracle[rid]; got != want {
					t.Errorf("record %d = %d, want %d", rid, got, want)
				}
			}
		})
	}
}

// TestParallelCheckpointWithConcurrentWriters overlaps a write workload
// with parallel checkpoints for every algorithm, then proves the
// recovered image reflects exactly the committed values.
func TestParallelCheckpointWithConcurrentWriters(t *testing.T) {
	for _, alg := range allAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			p := parallelParams(t, alg, 4)
			e := mustOpen(t, p)

			stop := make(chan struct{})
			committed := make(map[uint64]uint64)
			writerErr := make(chan error, 1)
			go func() {
				defer close(writerErr)
				for i := uint64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					rid, v := (i*29)%256, i+1
					// Exec retries checkpoint-conflict and deadlock
					// aborts internally, so success means committed.
					if err := e.Exec(func(tx *Txn) error { return tx.Write(rid, encVal(v)) }); err != nil {
						writerErr <- err
						return
					}
					committed[rid] = v
				}
			}()

			for c := 0; c < 3; c++ {
				if _, err := e.Checkpoint(); err != nil {
					t.Fatalf("checkpoint %d: %v", c, err)
				}
			}
			close(stop)
			if err, ok := <-writerErr; ok && err != nil {
				t.Fatalf("writer: %v", err)
			}

			if err := e.Crash(); err != nil {
				t.Fatal(err)
			}
			e2, _, err := Recover(p)
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			for rid := uint64(0); rid < 256; rid++ {
				if got, want := readVal(t, e2, rid), committed[rid]; got != want {
					t.Errorf("record %d = %d, want %d", rid, got, want)
				}
			}
		})
	}
}

// TestSerialVsParallelRecoveryEquivalence recovers the same crashed
// directory with the serial and the 4-way parallel pipelines and demands
// byte-identical databases and matching replay counts.
func TestSerialVsParallelRecoveryEquivalence(t *testing.T) {
	for _, alg := range allAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			p := parallelParams(t, alg, 4)
			e := mustOpen(t, p)
			for i := uint64(0); i < 64; i++ {
				if err := e.Exec(func(tx *Txn) error { return tx.Write((i*11)%256, encVal(i+1)) }); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 32; i++ {
				if err := e.Exec(func(tx *Txn) error { return tx.Write((i*7)%256, encVal(1000+i)) }); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Crash(); err != nil {
				t.Fatal(err)
			}

			// Recovery never mutates the backup directory, only the
			// in-memory database, so the same dir can be recovered twice.
			ps := p
			ps.RecoveryParallelism = 1
			es, repS, err := Recover(ps)
			if err != nil {
				t.Fatalf("serial recovery: %v", err)
			}
			defer es.Close()
			ep, repP, err := Recover(p)
			if err != nil {
				t.Fatalf("parallel recovery: %v", err)
			}
			defer ep.Close()

			if repS.SegmentsLoaded != repP.SegmentsLoaded {
				t.Errorf("SegmentsLoaded: serial %d, parallel %d", repS.SegmentsLoaded, repP.SegmentsLoaded)
			}
			if repS.UpdatesApplied != repP.UpdatesApplied {
				t.Errorf("UpdatesApplied: serial %d, parallel %d", repS.UpdatesApplied, repP.UpdatesApplied)
			}
			if repS.UpdatesDiscarded != repP.UpdatesDiscarded {
				t.Errorf("UpdatesDiscarded: serial %d, parallel %d", repS.UpdatesDiscarded, repP.UpdatesDiscarded)
			}
			bufS := make([]byte, es.RecordBytes())
			bufP := make([]byte, ep.RecordBytes())
			for rid := uint64(0); rid < 256; rid++ {
				if err := es.ReadRecord(rid, bufS); err != nil {
					t.Fatal(err)
				}
				if err := ep.ReadRecord(rid, bufP); err != nil {
					t.Fatal(err)
				}
				if decVal(bufS) != decVal(bufP) {
					t.Errorf("record %d: serial %d, parallel %d", rid, decVal(bufS), decVal(bufP))
				}
			}
		})
	}
}

// TestCloseDuringCheckpointDrains is the regression test for the
// Close-vs-Checkpoint race: Close must block until the in-flight parallel
// checkpoint has joined its worker pool, not tear the engine down under
// it. Run with -race.
func TestCloseDuringCheckpointDrains(t *testing.T) {
	p := parallelParams(t, FuzzyCopy, 4)
	hook := newParPauseHook(0)
	p.SegmentHook = hook.fn
	e := mustOpen(t, p)

	if err := e.Exec(func(tx *Txn) error {
		for s := 0; s < 8; s++ {
			if err := tx.Write(uint64(8*s), encVal(1)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	hook.armed.Store(true)
	ckptErr := make(chan error, 1)
	go func() {
		_, err := e.Checkpoint()
		ckptErr <- err
	}()
	select {
	case <-hook.paused:
	case <-time.After(5 * time.Second):
		t.Fatal("checkpoint worker never parked")
	}

	closeErr := make(chan error, 1)
	go func() { closeErr <- e.Close() }()
	select {
	case err := <-closeErr:
		t.Fatalf("Close returned (%v) while a checkpoint worker was still running", err)
	case <-time.After(100 * time.Millisecond):
		// Close is draining, as required.
	}

	close(hook.resume)
	if err := <-closeErr; err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The in-flight checkpoint either completed before Close tore the
	// engine down or observed the stop; it must not report corruption.
	if err := <-ckptErr; err != nil && !errors.Is(err, ErrStopped) {
		t.Fatalf("checkpoint after Close: %v", err)
	}
}

// TestExecContextCancellation: a cancelled context stops the retry loop
// before the next attempt.
func TestExecContextCancellation(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.ExecContext(ctx, func(tx *Txn) error { return tx.Write(0, encVal(1)) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecContext with cancelled ctx = %v, want context.Canceled", err)
	}

	// A live context behaves exactly like Exec.
	if err := e.ExecContext(context.Background(), func(tx *Txn) error {
		return tx.Write(0, encVal(7))
	}); err != nil {
		t.Fatal(err)
	}
	if v := readVal(t, e, 0); v != 7 {
		t.Fatalf("record 0 = %d, want 7", v)
	}
}

// TestCheckpointContextCancelBetweenBatches cancels a parallel checkpoint
// while a worker batch is parked; the sweep must stop at the next batch
// boundary, leave the target copy incomplete, and the next checkpoint
// must succeed from scratch.
func TestCheckpointContextCancelBetweenBatches(t *testing.T) {
	p := parallelParams(t, FuzzyCopy, 4)
	hook := newParPauseHook(0)
	p.SegmentHook = hook.fn
	e := mustOpen(t, p)
	defer e.Close()

	if err := e.Exec(func(tx *Txn) error {
		for s := 0; s < 8; s++ {
			if err := tx.Write(uint64(8*s), encVal(1)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	hook.armed.Store(true)
	ckptErr := make(chan error, 1)
	go func() {
		_, err := e.CheckpointContext(ctx)
		ckptErr <- err
	}()
	select {
	case <-hook.paused:
	case <-time.After(5 * time.Second):
		t.Fatal("checkpoint worker never parked")
	}
	cancel()
	close(hook.resume)
	if err := <-ckptErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled checkpoint = %v, want context.Canceled", err)
	}

	// The engine is fully usable: the next (uncancelled) checkpoint
	// retries the same target copy and completes.
	res, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint after cancellation: %v", err)
	}
	if res.SegmentsFlushed == 0 {
		t.Error("post-cancellation checkpoint flushed nothing")
	}

	// CheckpointContext with an already-cancelled context refuses up front.
	if _, err := e.CheckpointContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled CheckpointContext = %v, want context.Canceled", err)
	}
}

// TestDefaultParallelismResolution: zero-valued knobs resolve to the
// host default and negatives are rejected.
func TestDefaultParallelismResolution(t *testing.T) {
	if d := DefaultParallelism(); d < 1 || d > 8 {
		t.Fatalf("DefaultParallelism() = %d, want 1..8", d)
	}
	p := testParams(t, FuzzyCopy)
	p.CheckpointParallelism = 0
	p.RecoveryParallelism = 0
	e := mustOpen(t, p)
	e.Close()

	p = testParams(t, FuzzyCopy)
	p.CheckpointParallelism = -1
	if _, err := Open(p); err == nil {
		t.Error("negative CheckpointParallelism accepted")
	}
	p = testParams(t, FuzzyCopy)
	p.RecoveryParallelism = -2
	if _, err := Open(p); err == nil {
		t.Error("negative RecoveryParallelism accepted")
	}
}
