package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomizedOperationSoak drives one engine per seed through a random
// interleaving of committing transactions, aborting transactions, reads,
// logical operations (under COU), checkpoints, and full crash/recover
// cycles, checking every read and every recovery against a map oracle.
// This is the repository's broadest single invariant: the database equals
// the committed history, always.
func TestRandomizedOperationSoak(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			soak(t, seed)
		})
	}
}

func soak(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	alg := Algorithms[rng.Intn(len(Algorithms))]
	p := testParams(t, alg)
	p.Full = rng.Intn(4) == 0
	if rng.Intn(3) == 0 {
		p.StableTail = true
	}
	if rng.Intn(4) == 0 {
		p.DisableLogCompaction = true
	}
	t.Logf("seed %d: %v full=%v stable=%v compaction=%v",
		seed, alg, p.Full, p.StableTail, !p.DisableLogCompaction)

	e := mustOpen(t, p)
	defer func() { e.Close() }()
	oracle := make(map[uint64]uint64)
	n := uint64(e.NumRecords())

	commitTxn := func() {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		pending := map[uint64]uint64{}
		for j := 0; j < 1+rng.Intn(6); j++ {
			rid := rng.Uint64() % n
			if alg.CopyOnUpdate() && rng.Intn(3) == 0 {
				// Logical delta against the transaction's own view.
				delta := int64(rng.Intn(2001) - 1000)
				if err := tx.ApplyOp(rid, OpAdd64, Add64Operand(delta)); err != nil {
					t.Fatal(err)
				}
				base, ok := pending[rid]
				if !ok {
					base = oracle[rid]
				}
				pending[rid] = base + uint64(delta)
			} else {
				v := rng.Uint64()
				if err := tx.Write(rid, encVal(v)); err != nil {
					t.Fatal(err)
				}
				pending[rid] = v
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		for rid, v := range pending {
			oracle[rid] = v
		}
	}

	abortTxn := func() {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 1+rng.Intn(4); j++ {
			if err := tx.Write(rng.Uint64()%n, encVal(rng.Uint64())); err != nil {
				t.Fatal(err)
			}
		}
		tx.Abort()
	}

	checkRead := func() {
		rid := rng.Uint64() % n
		if got := readVal(t, e, rid); got != oracle[rid] {
			t.Fatalf("record %d = %d, want %d", rid, got, oracle[rid])
		}
	}

	crashRecover := func() {
		if err := e.Crash(); err != nil {
			t.Fatal(err)
		}
		var err error
		e, _, err = Recover(p)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		verifyOracle(t, e, oracle)
	}

	steps := 400
	if testing.Short() {
		steps = 150
	}
	for step := 0; step < steps; step++ {
		switch r := rng.Intn(100); {
		case r < 55:
			commitTxn()
		case r < 65:
			abortTxn()
		case r < 90:
			checkRead()
		case r < 97:
			if _, err := e.Checkpoint(); err != nil {
				t.Fatalf("step %d checkpoint: %v", step, err)
			}
		default:
			crashRecover()
		}
	}
	crashRecover()
}
