package engine

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mmdb/internal/wal"
)

// Logical (operation) logging — Section 3.2 of the paper: "Another
// advantage of consistent backups is that they permit the use of logical
// logging." A logical redo record carries an operation code and operand
// instead of the record's after image, which can be far smaller (8 bytes
// of delta versus a whole record).
//
// Operation replay is not idempotent, so it is only sound when the backup
// copy is the exact database state at a known log position. Copy-on-update
// checkpoints provide that: the backup is the transaction-consistent state
// at the begin-checkpoint marker, and recovery replays exactly the
// operations logged after it. Fuzzy backups can already contain a logged
// operation's effect (double apply), and a two-color backup's
// serialization point is not a log position (a transaction serialized
// before the checkpoint may commit after the marker), so the engine
// rejects logical updates under those algorithms.

// OpCode identifies a registered logical operation.
type OpCode uint16

// Built-in operations.
const (
	// OpAdd64 adds a two's-complement little-endian 64-bit delta (the
	// 8-byte operand) to the little-endian uint64 at offset 0 of the
	// record. The canonical increment/decrement/transfer operation.
	OpAdd64 OpCode = 1
	// OpStoreAt overwrites part of a record: the operand is a 2-byte
	// little-endian offset followed by the bytes to store there.
	OpStoreAt OpCode = 2
)

// OpFunc applies an operation: it mutates rec (a full record image) in
// place according to operand.
type OpFunc func(rec, operand []byte) error

// Errors of the logical-logging path.
var (
	// ErrLogicalLoggingUnsupported rejects logical updates under
	// algorithms whose backups cannot soundly replay operations.
	ErrLogicalLoggingUnsupported = errors.New("engine: logical logging requires a copy-on-update checkpoint algorithm (COUFLUSH or COUCOPY)")
	// ErrUnknownOperation reports an unregistered operation code.
	ErrUnknownOperation = errors.New("engine: unknown logical operation code")
)

// builtinOps returns the always-available operation table.
func builtinOps() map[OpCode]OpFunc {
	return map[OpCode]OpFunc{
		OpAdd64:   applyAdd64,
		OpStoreAt: applyStoreAt,
	}
}

func applyAdd64(rec, operand []byte) error {
	if len(operand) != 8 {
		return fmt.Errorf("engine: OpAdd64 operand must be 8 bytes, got %d", len(operand))
	}
	if len(rec) < 8 {
		return fmt.Errorf("engine: OpAdd64 needs a record of at least 8 bytes, got %d", len(rec))
	}
	cur := binary.LittleEndian.Uint64(rec)
	delta := binary.LittleEndian.Uint64(operand)
	binary.LittleEndian.PutUint64(rec, cur+delta) // two's complement: works for negatives
	return nil
}

func applyStoreAt(rec, operand []byte) error {
	if len(operand) < 2 {
		return fmt.Errorf("engine: OpStoreAt operand too short (%d bytes)", len(operand))
	}
	off := int(binary.LittleEndian.Uint16(operand))
	data := operand[2:]
	if off+len(data) > len(rec) {
		return fmt.Errorf("engine: OpStoreAt writes [%d,%d) beyond record size %d", off, off+len(data), len(rec))
	}
	copy(rec[off:], data)
	return nil
}

// Add64Operand encodes a delta for OpAdd64.
func Add64Operand(delta int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(delta))
	return b
}

// StoreAtOperand encodes an offset+bytes operand for OpStoreAt.
func StoreAtOperand(offset int, data []byte) []byte {
	b := make([]byte, 2+len(data))
	binary.LittleEndian.PutUint16(b, uint16(offset))
	copy(b[2:], data)
	return b
}

// RegisterOperation adds a custom logical operation. It must be called
// before any transaction uses the code, and the same registrations must
// be in place (via Params.Operations) when the database is recovered.
// Built-in codes cannot be replaced.
func (e *Engine) RegisterOperation(code OpCode, fn OpFunc) error {
	if fn == nil {
		return errors.New("engine: nil operation")
	}
	e.opsMu.Lock()
	defer e.opsMu.Unlock()
	if _, exists := e.ops[code]; exists {
		return fmt.Errorf("engine: operation code %d already registered", code)
	}
	e.ops[code] = fn
	return nil
}

// lookupOp resolves an operation code.
func (e *Engine) lookupOp(code OpCode) (OpFunc, error) {
	e.opsMu.RLock()
	fn := e.ops[code]
	e.opsMu.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownOperation, code)
	}
	return fn, nil
}

// ApplyOp stages a logical update of record rid: the operation is applied
// to the transaction's view of the record immediately (so the transaction
// reads its own result), but the log carries only the operation and
// operand. Requires a copy-on-update checkpoint algorithm (see the package
// comment above).
func (tx *Txn) ApplyOp(rid uint64, code OpCode, operand []byte) error {
	if tx.done {
		return ErrTxnDone
	}
	e := tx.e
	if !e.params.Algorithm.CopyOnUpdate() {
		tx.abortInternal()
		return ErrLogicalLoggingUnsupported
	}
	fn, err := e.lookupOp(code)
	if err != nil {
		tx.abortInternal()
		return err
	}
	if _, _, err := tx.access(rid, true); err != nil {
		return err
	}

	// Compute the post-operation image against the transaction's view.
	rb := e.store.Config().RecordBytes
	img, ok := tx.writes[rid]
	if !ok {
		img = make([]byte, rb)
		seg, _, off, lerr := e.store.Locate(rid)
		if lerr != nil {
			tx.abortInternal()
			return lerr
		}
		seg.RLock()
		copy(img, seg.Data[off:off+rb])
		seg.RUnlock()
	}
	if err := fn(img, operand); err != nil {
		tx.abortInternal()
		return err
	}

	op := append([]byte(nil), operand...)
	rec := &wal.Record{Type: wal.TypeLogicalUpdate, TxnID: tx.id, RecordID: rid, OpCode: uint16(code), Data: op}
	if tx.firstLSN == wal.NilLSN {
		e.txnMu.Lock()
		start, _, aerr := e.log.Append(rec)
		if aerr == nil {
			tx.firstLSN = start
		}
		e.txnMu.Unlock()
		err = aerr
	} else {
		_, _, err = e.log.Append(rec)
	}
	if err != nil {
		tx.abortInternal()
		if errors.Is(err, wal.ErrClosed) {
			return ErrStopped
		}
		return err
	}
	tx.writes[rid] = img
	e.ctr.recordsWritten.Add(1)
	e.ctr.logicalOps.Add(1)
	return nil
}
