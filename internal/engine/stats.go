package engine

import (
	"sync/atomic"
	"time"
)

// counters holds the engine's atomic activity counters.
type counters struct {
	txnsBegun      atomic.Uint64
	txnsCommitted  atomic.Uint64
	txnsAborted    atomic.Uint64 // all aborts, including restarts
	colorRestarts  atomic.Uint64 // aborts caused by the two-color rule
	lockAborts     atomic.Uint64 // aborts caused by lock timeouts
	recordsRead    atomic.Uint64
	recordsWritten atomic.Uint64
	logicalOps     atomic.Uint64

	couCopies    atomic.Uint64 // old-version copies made by updaters (COU and hourglass)
	couCopyBytes atomic.Uint64
	couLive      atomic.Int64 // old copies currently held
	couPeak      atomic.Int64 // high-water mark of old copies

	zigzagFlips     atomic.Uint64 // zigzag Data/Shadow flips made by updaters
	zigzagFlipBytes atomic.Uint64
	hgWaits         atomic.Uint64 // writer waits for an hourglass window buffer

	checkpoints      atomic.Uint64
	segmentsFlushed  atomic.Uint64
	segmentsSkipped  atomic.Uint64 // clean segments skipped by partial checkpoints
	bytesFlushed     atomic.Uint64
	checkpointerCopy atomic.Uint64 // segment copies made by the checkpointer
	lsnWaits         atomic.Uint64
	compactions      atomic.Uint64
	compactBytes     atomic.Uint64
	compactErrors    atomic.Uint64

	// Checkpoint timing. Checkpoint begins and ends are serialized under
	// Engine.ckptMu, so plain atomics suffice for readers; the total
	// checkpoint time lives in the checkpoint-duration histogram
	// (engineObs.ckptH), whose Sum is exact.
	//
	// lastBeginNanos is the UnixNano of the most recent checkpoint begin
	// (0 until the first checkpoint begins).
	lastBeginNanos atomic.Int64
	// ckptLastNanos is the duration of the last completed checkpoint.
	ckptLastNanos atomic.Uint64
	// lastIntervalNanos is the begin-to-begin gap between the two most
	// recent checkpoints (0 until the second checkpoint begins).
	lastIntervalNanos atomic.Uint64
}

// bumpCOULive tracks the live old-copy count and its peak (the paper notes
// the COU snapshot buffer can potentially grow as large as the database).
func (c *counters) bumpCOULive(delta int64) {
	n := c.couLive.Add(delta)
	for {
		peak := c.couPeak.Load()
		if n <= peak || c.couPeak.CompareAndSwap(peak, n) {
			return
		}
	}
}

// Stats is a consistent-enough snapshot of engine activity. Counter pairs
// are read independently and may be skewed by in-flight operations.
type Stats struct {
	// Transactions.
	TxnsBegun     uint64
	TxnsCommitted uint64
	TxnsAborted   uint64
	// ColorRestarts counts transactions aborted for violating the
	// two-color constraint; ColorRestarts/TxnsBegun estimates the paper's
	// p_restart.
	ColorRestarts  uint64
	LockAborts     uint64
	RecordsRead    uint64
	RecordsWritten uint64
	// LogicalOps counts updates staged through Txn.ApplyOp (operation
	// logging) rather than physical after images.
	LogicalOps uint64

	// Copy-on-update activity (COU proper and hourglass's windowed
	// variant share these; hourglass additionally bounds COUPeakOld at
	// Params.HourglassWindow).
	COUCopies    uint64
	COUCopyBytes uint64
	COULiveOld   int64
	COUPeakOld   int64

	// Zigzag activity: updater-side Data/Shadow flips (at most one per
	// segment per checkpoint).
	ZigzagFlips     uint64
	ZigzagFlipBytes uint64
	// HourglassWaits counts writer stalls on an exhausted old-copy
	// window.
	HourglassWaits uint64

	// Checkpointing.
	Checkpoints         uint64
	SegmentsFlushed     uint64
	SegmentsSkipped     uint64
	BytesFlushed        uint64
	CheckpointerCopies  uint64
	LSNWaits            uint64
	LastCheckpointTime  time.Duration
	TotalCheckpointTime time.Duration
	// LastInterval is the begin-to-begin gap between the two most recent
	// checkpoints — the paper's checkpoint interval I. It stays zero
	// through the entire first checkpoint and becomes non-zero only once
	// a second checkpoint has begun (so a snapshot taken after the first
	// checkpoint completes but before the second starts reads 0).
	LastInterval time.Duration
	// Log head compaction.
	LogCompactions     uint64
	LogBytesCompacted  uint64
	LogCompactFailures uint64

	// Substrate counters.
	LockAcquires uint64
	LockReleases uint64
	LockWaits    uint64
	LockTimeouts uint64
	LogAppends   uint64
	LogFlushes   uint64
	LogBytes     uint64
}

// PRestart estimates the checkpoint-induced restart probability: the
// fraction of transaction attempts aborted by the two-color rule.
func (s Stats) PRestart() float64 {
	if s.TxnsBegun == 0 {
		return 0
	}
	return float64(s.ColorRestarts) / float64(s.TxnsBegun)
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	c := &e.ctr
	lastT := time.Duration(c.ckptLastNanos.Load())
	totalT := time.Duration(e.eo.ckptH.Sum())
	lastI := time.Duration(c.lastIntervalNanos.Load())
	ls := e.locks.Stats()
	ws := e.log.Stats()
	return Stats{
		TxnsBegun:      c.txnsBegun.Load(),
		TxnsCommitted:  c.txnsCommitted.Load(),
		TxnsAborted:    c.txnsAborted.Load(),
		ColorRestarts:  c.colorRestarts.Load(),
		LockAborts:     c.lockAborts.Load(),
		RecordsRead:    c.recordsRead.Load(),
		RecordsWritten: c.recordsWritten.Load(),
		LogicalOps:     c.logicalOps.Load(),

		COUCopies:    c.couCopies.Load(),
		COUCopyBytes: c.couCopyBytes.Load(),
		COULiveOld:   c.couLive.Load(),
		COUPeakOld:   c.couPeak.Load(),

		ZigzagFlips:     c.zigzagFlips.Load(),
		ZigzagFlipBytes: c.zigzagFlipBytes.Load(),
		HourglassWaits:  c.hgWaits.Load(),

		Checkpoints:         c.checkpoints.Load(),
		SegmentsFlushed:     c.segmentsFlushed.Load(),
		SegmentsSkipped:     c.segmentsSkipped.Load(),
		BytesFlushed:        c.bytesFlushed.Load(),
		CheckpointerCopies:  c.checkpointerCopy.Load(),
		LSNWaits:            c.lsnWaits.Load(),
		LastCheckpointTime:  lastT,
		TotalCheckpointTime: totalT,
		LastInterval:        lastI,
		LogCompactions:      c.compactions.Load(),
		LogBytesCompacted:   c.compactBytes.Load(),
		LogCompactFailures:  c.compactErrors.Load(),

		LockAcquires: ls.Acquires,
		LockReleases: ls.Releases,
		LockWaits:    ls.Waits,
		LockTimeouts: ls.Timeouts,
		LogAppends:   ws.Appends,
		LogFlushes:   ws.Flushes,
		LogBytes:     ws.BytesFlushed,
	}
}
