package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"mmdb/internal/storage"
)

// Test database geometry: 256 records × 32 B in 32 segments of 256 B.
func testStorage() storage.Config {
	return storage.Config{NumRecords: 256, RecordBytes: 32, SegmentBytes: 256}
}

func testParams(t *testing.T, alg Algorithm) Params {
	t.Helper()
	p := Params{
		Dir:        t.TempDir(),
		Storage:    testStorage(),
		Algorithm:  alg,
		SyncCommit: true,
		// Pin the serial pipeline so tests that depend on the serial
		// sweep's segment order stay deterministic on multicore hosts;
		// parallel_test.go covers the parallel sweeps explicitly.
		CheckpointParallelism: 1,
		RecoveryParallelism:   1,
	}
	if alg.RequiresStableTail() {
		p.StableTail = true
	}
	return p
}

func mustOpen(t *testing.T, p Params) *Engine {
	t.Helper()
	e, err := Open(p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return e
}

func encVal(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func decVal(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// readVal reads record rid's committed value through the engine.
func readVal(t *testing.T, e *Engine, rid uint64) uint64 {
	t.Helper()
	buf := make([]byte, e.RecordBytes())
	if err := e.ReadRecord(rid, buf); err != nil {
		t.Fatalf("ReadRecord(%d): %v", rid, err)
	}
	return decVal(buf)
}

func TestParamsValidation(t *testing.T) {
	base := testParams(t, FuzzyCopy)

	p := base
	p.Dir = ""
	if _, err := Open(p); err == nil {
		t.Error("empty Dir accepted")
	}

	p = base
	p.Algorithm = Algorithm(99)
	if _, err := Open(p); err == nil {
		t.Error("bad algorithm accepted")
	}

	p = base
	p.Algorithm = FastFuzzy
	p.StableTail = false
	if _, err := Open(p); err == nil {
		t.Error("FASTFUZZY without stable tail accepted")
	}

	p = base
	p.Storage.SegmentBytes = 100 // not a record multiple
	if _, err := Open(p); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	// Explicit name table: adding a ninth algorithm must extend this test
	// (and the paper-name mapping) deliberately, not silently.
	names := []struct {
		name string
		want Algorithm
	}{
		{"FUZZYCOPY", FuzzyCopy},
		{"FASTFUZZY", FastFuzzy},
		{"2CFLUSH", TwoColorFlush},
		{"2CCOPY", TwoColorCopy},
		{"COUFLUSH", COUFlush},
		{"COUCOPY", COUCopy},
		{"ZIGZAG", Zigzag},
		{"HOURGLASS", Hourglass},
	}
	if len(names) != len(Algorithms) {
		t.Fatalf("name table has %d entries but Algorithms lists %d; extend the table", len(names), len(Algorithms))
	}
	for _, c := range names {
		got, err := ParseAlgorithm(c.name)
		if err != nil || got != c.want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v, want %v", c.name, got, err, c.want)
		}
		if got.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.want, got.String(), c.name)
		}
	}
	if _, err := ParseAlgorithm("couflush"); err != nil {
		t.Errorf("case-insensitive parse failed: %v", err)
	}
	_, err := ParseAlgorithm("NOPE")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	// The error must enumerate every valid name.
	for _, c := range names {
		if !strings.Contains(err.Error(), c.name) {
			t.Errorf("parse error %q does not list %s", err, c.name)
		}
	}
}

// TestAllAlgorithmsIsolated: AllAlgorithms hands out a copy, so callers
// cannot corrupt the canonical list.
func TestAllAlgorithmsIsolated(t *testing.T) {
	a := AllAlgorithms()
	if len(a) != len(Algorithms) {
		t.Fatalf("AllAlgorithms len = %d, want %d", len(a), len(Algorithms))
	}
	a[0] = Algorithm(99)
	if Algorithms[0] == Algorithm(99) {
		t.Error("mutating the returned slice corrupted the canonical list")
	}
}

func TestAlgorithmProperties(t *testing.T) {
	cases := []struct {
		a                             Algorithm
		twoColor, cou, fuzzy, copies  bool
		usesLSN, stableOnly, quiesces bool
	}{
		{FuzzyCopy, false, false, true, true, true, false, false},
		{FastFuzzy, false, false, true, false, false, true, false},
		{TwoColorFlush, true, false, false, false, true, false, false},
		{TwoColorCopy, true, false, false, true, true, false, false},
		{COUFlush, false, true, false, false, false, false, true},
		{COUCopy, false, true, false, true, false, false, true},
		{Zigzag, false, false, false, false, false, false, true},
		{Hourglass, false, false, false, false, false, false, true},
	}
	if len(cases) != len(Algorithms) {
		t.Fatalf("property table has %d rows but Algorithms lists %d; extend the table", len(cases), len(Algorithms))
	}
	for _, c := range cases {
		if c.a.TwoColor() != c.twoColor || c.a.CopyOnUpdate() != c.cou ||
			c.a.Fuzzy() != c.fuzzy || c.a.CopiesSegments() != c.copies ||
			c.a.UsesLSN() != c.usesLSN || c.a.RequiresStableTail() != c.stableOnly ||
			c.a.RequiresQuiesce() != c.quiesces {
			t.Errorf("%v: property mismatch", c.a)
		}
	}
}

func TestBasicCommitReadback(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(5, encVal(42)); err != nil {
		t.Fatal(err)
	}
	// Own write visible inside the transaction.
	got, err := tx.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if decVal(got) != 42 {
		t.Errorf("own read = %d, want 42", decVal(got))
	}
	// Not installed yet.
	if v := readVal(t, e, 5); v != 0 {
		t.Errorf("pre-commit value = %d, want 0", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := readVal(t, e, 5); v != 42 {
		t.Errorf("post-commit value = %d, want 42", v)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit = %v, want ErrTxnDone", err)
	}
	st := e.Stats()
	if st.TxnsCommitted != 1 || st.RecordsWritten != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAbortInvisible(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(5, encVal(99)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if v := readVal(t, e, 5); v != 0 {
		t.Errorf("aborted write visible: %d", v)
	}
	if _, err := tx.Read(5); !errors.Is(err, ErrTxnDone) {
		t.Errorf("read after abort = %v, want ErrTxnDone", err)
	}
	if st := e.Stats(); st.TxnsAborted != 1 {
		t.Errorf("TxnsAborted = %d, want 1", st.TxnsAborted)
	}
}

func TestReadIsolationFromOtherTxn(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	writer, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Write(7, encVal(1)); err != nil {
		t.Fatal(err)
	}
	// Another transaction reading a different record proceeds; reading the
	// X-locked record would block (strict 2PL), so we only check the
	// uncommitted value is not installed.
	if v := readVal(t, e, 7); v != 0 {
		t.Errorf("uncommitted write installed: %d", v)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTooLargeRejected(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	tx, _ := e.Begin()
	if err := tx.Write(1, make([]byte, 33)); err == nil {
		t.Error("oversized write accepted")
	}
	// The failed write aborted the transaction.
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("commit after failed write = %v, want ErrTxnDone", err)
	}
}

func TestWriteOutOfRangeRejected(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	tx, _ := e.Begin()
	if err := tx.Write(uint64(e.NumRecords()), encVal(1)); err == nil {
		t.Error("out-of-range write accepted")
	}
}

func TestDeadlockResolvedByTimeout(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.LockTimeout = 100 * time.Millisecond
	e := mustOpen(t, p)
	defer e.Close()

	tx1, _ := e.Begin()
	tx2, _ := e.Begin()
	if err := tx1.Write(1, encVal(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(2, encVal(2)); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- tx1.Write(2, encVal(3)) }() // blocks on tx2
	time.Sleep(20 * time.Millisecond)
	err2 := tx2.Write(1, encVal(4)) // deadlock: blocks on tx1
	err1 := <-errCh
	if !errors.Is(err1, ErrDeadlock) && !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("no deadlock victim: err1=%v err2=%v", err1, err2)
	}
	// At least one survivor can finish (its rival was aborted and released
	// its locks).
	if err1 == nil {
		if err := tx1.Commit(); err != nil {
			t.Errorf("survivor tx1 commit: %v", err)
		}
	}
	if err2 == nil {
		if err := tx2.Commit(); err != nil {
			t.Errorf("survivor tx2 commit: %v", err)
		}
	}
	if st := e.Stats(); st.LockAborts == 0 {
		t.Error("LockAborts not counted")
	}
}

func TestExecRetriesAfterDeadlock(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.LockTimeout = 50 * time.Millisecond
	e := mustOpen(t, p)
	defer e.Close()

	// Two goroutines repeatedly transfer between the same two records in
	// opposite orders; Exec must absorb deadlock aborts.
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a, b := uint64(1), uint64(2)
			if g == 1 {
				a, b = b, a
			}
			for i := 0; i < 20; i++ {
				err := e.Exec(func(tx *Txn) error {
					if err := tx.Write(a, encVal(uint64(i))); err != nil {
						return err
					}
					return tx.Write(b, encVal(uint64(i)))
				})
				if err != nil {
					t.Errorf("Exec: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := e.Stats(); st.TxnsCommitted != 40 {
		t.Errorf("committed %d, want 40", st.TxnsCommitted)
	}
}

func TestOpenRefusesExistingDatabase(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	e := mustOpen(t, p)
	if err := e.Exec(func(tx *Txn) error { return tx.Write(1, encVal(1)) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); err == nil {
		t.Fatal("Open over a recoverable database should fail")
	}
	// Recover works.
	e2, rep, err := Recover(p)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer e2.Close()
	if !rep.UsedCheckpoint {
		t.Error("recovery should have used the checkpoint")
	}
}

func TestCheckpointEachAlgorithmRoundTrips(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			e := mustOpen(t, testParams(t, alg))
			defer e.Close()
			rng := rand.New(rand.NewSource(7))
			oracle := make(map[uint64]uint64)
			for i := 0; i < 50; i++ {
				updates := map[uint64]uint64{}
				for j := 0; j < 1+rng.Intn(5); j++ {
					updates[uint64(rng.Intn(e.NumRecords()))] = rng.Uint64()
				}
				err := e.Exec(func(tx *Txn) error {
					for rid, v := range updates {
						if err := tx.Write(rid, encVal(v)); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					t.Fatalf("txn %d: %v", i, err)
				}
				for rid, v := range updates {
					oracle[rid] = v
				}
				if i == 25 {
					if _, err := e.Checkpoint(); err != nil {
						t.Fatalf("mid checkpoint: %v", err)
					}
				}
			}
			res, err := e.Checkpoint()
			if err != nil {
				t.Fatalf("final checkpoint: %v", err)
			}
			if res.Algorithm != alg {
				t.Errorf("result algorithm %v, want %v", res.Algorithm, alg)
			}
			if res.SegmentsFlushed == 0 {
				t.Error("checkpoint flushed nothing")
			}
			// Primary database still matches the oracle after checkpointing.
			for rid, v := range oracle {
				if got := readVal(t, e, rid); got != v {
					t.Fatalf("record %d = %d, want %d", rid, got, v)
				}
			}
			st := e.Stats()
			if st.Checkpoints != 2 {
				t.Errorf("Checkpoints = %d, want 2", st.Checkpoints)
			}
			if alg.UsesLSN() && st.LSNWaits == 0 {
				t.Errorf("%v should perform LSN waits", alg)
			}
			if !alg.UsesLSN() && st.LSNWaits != 0 {
				t.Errorf("%v performed %d LSN waits, want 0", alg, st.LSNWaits)
			}
			if alg.CopiesSegments() && st.CheckpointerCopies == 0 {
				t.Errorf("%v should copy segments", alg)
			}
			if !alg.CopiesSegments() && st.CheckpointerCopies != 0 {
				t.Errorf("%v copied %d segments, want 0", alg, st.CheckpointerCopies)
			}
		})
	}
}

func TestPartialCheckpointSkipsCleanSegments(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	if err := e.Exec(func(tx *Txn) error { return tx.Write(0, encVal(1)) }); err != nil {
		t.Fatal(err)
	}
	// Checkpoint 1 → copy 0: only record 0's segment is dirty.
	r1, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if r1.SegmentsFlushed != 1 || r1.SegmentsSkipped != e.NumSegments()-1 {
		t.Errorf("ckpt1 flushed %d skipped %d, want 1/%d", r1.SegmentsFlushed, r1.SegmentsSkipped, e.NumSegments()-1)
	}
	// Checkpoint 2 → copy 1: the segment is still dirty for copy 1.
	r2, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if r2.SegmentsFlushed != 1 {
		t.Errorf("ckpt2 flushed %d, want 1 (ping-pong copy still stale)", r2.SegmentsFlushed)
	}
	// Checkpoint 3 → copy 0 again: nothing dirty anywhere.
	r3, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if r3.SegmentsFlushed != 0 {
		t.Errorf("ckpt3 flushed %d, want 0", r3.SegmentsFlushed)
	}
}

func TestFullCheckpointFlushesEverything(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.Full = true
	e := mustOpen(t, p)
	defer e.Close()
	r, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if r.SegmentsFlushed != e.NumSegments() {
		t.Errorf("full checkpoint flushed %d, want %d", r.SegmentsFlushed, e.NumSegments())
	}
}

func TestCheckpointLoopRuns(t *testing.T) {
	p := testParams(t, FastFuzzy)
	p.StableTail = true
	p.AutoCheckpoint = true
	p.CheckpointInterval = time.Millisecond
	e := mustOpen(t, p)
	defer e.Close()
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Checkpoints < 3 {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint loop made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	e.StopCheckpointLoop()
	n := e.Stats().Checkpoints
	time.Sleep(10 * time.Millisecond)
	if e.Stats().Checkpoints != n {
		t.Error("checkpoints continued after StopCheckpointLoop")
	}
}

func TestStatsSnapshot(t *testing.T) {
	e := mustOpen(t, testParams(t, COUCopy))
	defer e.Close()
	if err := e.Exec(func(tx *Txn) error { return tx.Write(3, encVal(5)) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.TxnsBegun != 1 || st.TxnsCommitted != 1 {
		t.Errorf("txn counts: %+v", st)
	}
	if st.SegmentsFlushed != 1 || st.BytesFlushed != uint64(e.store.Config().SegmentBytes) {
		t.Errorf("flush counts: flushed=%d bytes=%d", st.SegmentsFlushed, st.BytesFlushed)
	}
	if st.LogAppends == 0 || st.LockAcquires == 0 {
		t.Errorf("substrate counters empty: %+v", st)
	}
	if st.PRestart() != 0 {
		t.Errorf("PRestart = %v, want 0", st.PRestart())
	}
}

func TestCloseIdempotentAndStops(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := e.Begin(); !errors.Is(err, ErrStopped) {
		t.Errorf("Begin after Close = %v, want ErrStopped", err)
	}
	if _, err := e.Checkpoint(); !errors.Is(err, ErrStopped) {
		t.Errorf("Checkpoint after Close = %v, want ErrStopped", err)
	}
	buf := make([]byte, 32)
	if err := e.ReadRecord(0, buf); !errors.Is(err, ErrStopped) {
		t.Errorf("ReadRecord after Close = %v, want ErrStopped", err)
	}
}

func TestReadBufferIsCopy(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()
	if err := e.Exec(func(tx *Txn) error { return tx.Write(1, encVal(10)) }); err != nil {
		t.Fatal(err)
	}
	var got []byte
	err := e.Exec(func(tx *Txn) error {
		v, err := tx.Read(1)
		got = v
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 0xFF // must not corrupt the database
	if v := readVal(t, e, 1); v != 10 {
		t.Errorf("database corrupted through read buffer: %d", v)
	}
	if !bytes.Equal(encVal(10), encVal(10)) {
		t.Fatal("sanity")
	}
}
