package engine

import "context"

// sweepCOU implements the copy-on-update checkpoints of Section 3.2.2
// (Figure 3.3, after DeWitt et al.).
//
// Checkpoint begin has already quiesced the system, stamped the checkpoint
// τ(CH), logged the begin-checkpoint record and flushed the log tail (see
// Engine.Checkpoint). The transaction-consistent state at that instant is
// the snapshot this sweep writes out. Transactions updating a
// not-yet-dumped segment first preserve its old version (Txn.install), so
// the sweep flushes, for each segment in order:
//
//   - the old copy, if one exists (the segment was updated after the
//     checkpoint began), or
//   - the live segment, which provably contains only pre-checkpoint data
//     (any post-begin update ahead of the cursor would have created an old
//     copy first).
//
// COUCOPY copies the live segment to a buffer under the latch and flushes
// after unlatching; COUFLUSH flushes while latched. Old copies are flushed
// without any locking — they are private to the checkpointer once taken.
//
// No LSN checks are needed: every update in the snapshot predates the
// begin-checkpoint record, whose log-tail flush made it durable.
//
// lockorder:held Engine.ckptMu
// walorder:stable-tail every snapshotted update predates the begin-checkpoint record, whose log-tail flush (Engine.Checkpoint) already made it durable
func (e *Engine) sweepCOU(ctx context.Context, run *ckptRun) (flushed, skipped int, bytes int64, err error) {
	n := e.store.NumSegments()
	copyMode := e.params.Algorithm == COUCopy
	segBytes := e.store.Config().SegmentBytes
	var buf []byte
	if copyMode {
		buf = make([]byte, segBytes)
	}

	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			return flushed, skipped, bytes, err
		}
		seg := e.store.Seg(i)
		wrote := false
		seg.Lock()
		if old := seg.TakeOld(); old != nil {
			seg.Unlock()
			e.ctr.bumpCOULive(-1)
			// Flush the preserved pre-checkpoint version if the segment
			// was dirty for the target copy when it was preserved (or on a
			// full checkpoint). The live segment's dirty bit stays set —
			// its newer contents still owe the target copy a flush at the
			// next checkpoint.
			if e.params.Full || old.Dirty[run.target] {
				if err = e.flushSegment(run, i, old.Data); err != nil {
					return flushed, skipped, bytes, err
				}
				wrote = true
			}
		} else {
			need := e.params.Full || seg.Dirty[run.target]
			switch {
			case !need:
				seg.Unlock()
			case copyMode:
				seg.Snapshot(buf)
				seg.Dirty[run.target] = false
				seg.Unlock()
				e.ctr.checkpointerCopy.Add(1)
				if err = e.flushSegment(run, i, buf); err != nil {
					return flushed, skipped, bytes, err
				}
				wrote = true
			default: // COUFLUSH: write while latched
				seg.Dirty[run.target] = false
				err = e.flushSegment(run, i, seg.Data)
				seg.Unlock()
				if err != nil {
					return flushed, skipped, bytes, err
				}
				wrote = true
			}
		}
		if wrote {
			flushed++
			bytes += int64(segBytes)
		} else {
			skipped++
		}
		// Advance the cursor only after the segment is secured: updaters
		// of segments at or below curSeg skip old-version preservation.
		run.curSeg.Store(int64(i))
		if err = e.segmentDone(run, 0, i); err != nil {
			return flushed, skipped, bytes, err
		}
	}
	return flushed, skipped, bytes, nil
}
