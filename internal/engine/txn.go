package engine

import (
	"errors"
	"fmt"
	"time"

	"mmdb/internal/lockmgr"
	"mmdb/internal/obs"
	"mmdb/internal/storage"
	"mmdb/internal/wal"
)

// Txn is a shadow-copy (deferred-update) transaction, modeled on the
// IMS/Fastpath scheme the paper assumes (Section 2.6): updates accumulate
// in a buffer local to the transaction and are installed into the database
// by overwriting only after a positive commit decision, so UNDO logging is
// unnecessary — the log carries redo (after-image) records only.
//
// A Txn must be used by a single goroutine. After Commit or Abort (or any
// error, which aborts the transaction) the Txn is finished and every
// method returns ErrTxnDone.
type Txn struct {
	e  *Engine
	id uint64
	// ts is the transaction's begin timestamp τ(T) (used by COU).
	ts uint64
	// firstLSN is the LSN of the transaction's first logged update,
	// reported in begin-checkpoint markers so recovery can scan back far
	// enough for fuzzy checkpoints.
	firstLSN wal.LSN
	// writes is the local update buffer: record ID → after image.
	writes map[uint64][]byte
	// imgFree is a freelist of full-size after-image buffers harvested by
	// recycleTxn; Write draws from it before allocating. Single-goroutine,
	// like the Txn itself.
	imgFree [][]byte
	done    bool

	// span is the transaction's commit root span, SpanNone when this
	// transaction was not sampled by the span tracer. Child spans (lock
	// waits, WAL appends, checkpoint interference) hang off it.
	span obs.SpanID
	// beganNanos is the wall-clock begin time, stamped for every
	// transaction (sampled or not): the two-color restart attribution
	// histogram charges the whole wasted transaction lifetime.
	beganNanos int64

	// Two-color tracking: the colors of segments touched during checkpoint
	// colorRun.
	colorRun uint64
	sawWhite bool
	sawBlack bool
}

// ID returns the transaction identifier.
func (tx *Txn) ID() uint64 { return tx.id }

// Timestamp returns the transaction's begin timestamp τ(T).
func (tx *Txn) Timestamp() uint64 { return tx.ts }

// lockFail translates a lock manager error, aborts the transaction, and
// returns the engine-level error.
func (tx *Txn) lockFail(err error) error {
	if errors.Is(err, lockmgr.ErrTimeout) || errors.Is(err, lockmgr.ErrDeadlockDetected) {
		tx.e.ctr.lockAborts.Add(1)
		tx.abortInternal()
		return ErrDeadlock
	}
	tx.abortInternal()
	if errors.Is(err, lockmgr.ErrShutdown) {
		return ErrStopped
	}
	return err
}

// checkColor enforces the two-color restriction: no transaction may access
// both white and black records while a two-color checkpoint is in progress
// (Section 3.2.1). On violation the transaction is aborted and
// ErrCheckpointConflict returned; the caller restarts it.
func (tx *Txn) checkColor(seg *storage.Segment) error {
	run := tx.e.cur.Load()
	if run == nil || !run.alg.TwoColor() {
		tx.colorRun = 0
		return nil
	}
	if tx.colorRun != run.id {
		// A new checkpoint resets the palette: at its start every segment
		// is white again, so colors observed under an earlier checkpoint
		// say nothing about this one.
		tx.colorRun = run.id
		tx.sawWhite, tx.sawBlack = false, false
	}
	seg.RLock()
	black := seg.Paint == run.id
	seg.RUnlock()
	if black {
		tx.sawBlack = true
	} else {
		tx.sawWhite = true
	}
	if tx.sawBlack && tx.sawWhite {
		tx.e.ctr.colorRestarts.Add(1)
		tx.e.eo.tracer.Record(obs.EvTxnRestart, tx.id, run.id, 0)
		// The restart throws away the whole transaction so far; attribute
		// its full lifetime, not just this access.
		tx.e.eo.attrRestartH.Observe(uint64(max(time.Now().UnixNano()-tx.beganNanos, 0)))
		if tx.span != obs.SpanNone {
			s := tx.e.eo.spans.Begin(obs.SpanTwoColorRestart, tx.span, tx.id, run.id)
			tx.e.eo.spans.End(s)
		}
		tx.abortInternal()
		return ErrCheckpointConflict
	}
	return nil
}

// access acquires the transaction-side locks for one record access:
// an intention lock on the segment (two-color algorithms only — fuzzy and
// COU checkpointing require "little or no synchronization" with
// transactions) followed by the record lock.
func (tx *Txn) access(rid uint64, write bool) (*storage.Segment, int, error) {
	seg, segIdx, off, err := tx.e.store.Locate(rid)
	if err != nil {
		tx.abortInternal()
		return nil, 0, err
	}
	// Sampled transactions wrap the lock acquisitions in a lock-wait span;
	// the uncontended fast path costs two clock reads, and only when the
	// transaction was sampled. (The attribution histogram is fed by the
	// lock manager itself, contended path only.)
	lockSpan := obs.SpanNone
	if tx.span != obs.SpanNone {
		lockSpan = tx.e.eo.spans.Begin(obs.SpanLockWait, tx.span, tx.id, rid)
	}
	if tx.e.params.Algorithm.TwoColor() {
		segMode := lockmgr.IS
		if write {
			segMode = lockmgr.IX
		}
		if err := tx.e.locks.Lock(tx.id, segKey(segIdx), segMode, tx.e.params.LockTimeout); err != nil {
			tx.e.eo.spans.End(lockSpan)
			return nil, 0, tx.lockFail(err)
		}
	}
	recMode := lockmgr.S
	if write {
		recMode = lockmgr.X
	}
	if err := tx.e.locks.Lock(tx.id, recKey(rid), recMode, tx.e.params.LockTimeout); err != nil {
		tx.e.eo.spans.End(lockSpan)
		return nil, 0, tx.lockFail(err)
	}
	tx.e.eo.spans.End(lockSpan)
	if err := tx.checkColor(seg); err != nil {
		return nil, 0, err
	}
	return seg, off, nil
}

// Read returns a copy of record rid as seen by this transaction (its own
// pending write, if any, else the committed value).
func (tx *Txn) Read(rid uint64) ([]byte, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	if v, ok := tx.writes[rid]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
	seg, off, err := tx.access(rid, false)
	if err != nil {
		return nil, err
	}
	rb := tx.e.store.Config().RecordBytes
	out := make([]byte, rb)
	seg.RLock()
	copy(out, seg.Data[off:off+rb])
	seg.RUnlock()
	tx.e.ctr.recordsRead.Add(1)
	return out, nil
}

// Write stages an update of record rid to data (at most RecordBytes;
// shorter images are zero-padded). The redo record is appended to the log
// immediately; the database itself is only overwritten at commit.
//
// perf:hotpath(per-update log append and buffer staging)
func (tx *Txn) Write(rid uint64, data []byte) error {
	if tx.done {
		return ErrTxnDone
	}
	rb := tx.e.store.Config().RecordBytes
	if len(data) > rb {
		tx.abortInternal()
		return fmt.Errorf("engine: record %d write of %d bytes exceeds record size %d", rid, len(data), rb)
	}
	if _, _, err := tx.access(rid, true); err != nil {
		return err
	}
	// Reuse the record's prior image (rewrite within this transaction),
	// then the freelist, before allocating a fresh buffer.
	img, ok := tx.writes[rid]
	if !ok {
		if n := len(tx.imgFree); n > 0 {
			img = tx.imgFree[n-1][:rb]
			tx.imgFree = tx.imgFree[:n-1]
		} else {
			img = make([]byte, rb) // alloc:allowed(first image for this write slot; recycled through the transaction's freelist afterwards)
		}
	}
	copy(img, data)
	clear(img[len(data):])

	rec := &wal.Record{Type: wal.TypeUpdate, TxnID: tx.id, RecordID: rid, Data: img}
	var start wal.LSN
	var err error
	if tx.firstLSN == wal.NilLSN {
		// The first update is logged under the registry mutex so a
		// concurrent begin-checkpoint marker either precedes this record
		// in the log or sees firstLSN in the active-transaction list —
		// never neither.
		tx.e.txnMu.Lock()
		start, _, err = tx.e.log.Append(rec)
		if err == nil {
			tx.firstLSN = start
		}
		tx.e.txnMu.Unlock()
	} else {
		start, _, err = tx.e.log.Append(rec)
	}
	if err != nil {
		tx.abortInternal()
		if errors.Is(err, wal.ErrClosed) {
			return ErrStopped
		}
		return err
	}
	_ = start
	tx.writes[rid] = img
	tx.e.ctr.recordsWritten.Add(1)
	return nil
}

// Commit logs the commit record, optionally waits for it to become
// durable, installs the transaction's updates into the database, and
// releases its locks.
//
// perf:hotpath(commit append, durability wait, and install)
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	e := tx.e
	began := time.Now()
	var commitEnd wal.LSN
	if len(tx.writes) > 0 {
		walSpan := obs.SpanNone
		if tx.span != obs.SpanNone {
			walSpan = e.eo.spans.Begin(obs.SpanWALAppend, tx.span, tx.id, 0)
		}
		var err error
		_, commitEnd, err = e.log.Append(&wal.Record{Type: wal.TypeCommit, TxnID: tx.id})
		e.eo.spans.End(walSpan)
		if err != nil {
			tx.abortInternal()
			if errors.Is(err, wal.ErrClosed) {
				return ErrStopped
			}
			return err
		}
		if e.params.SyncCommit {
			flushSpan := obs.SpanNone
			if tx.span != obs.SpanNone {
				flushSpan = e.eo.spans.Begin(obs.SpanGroupCommitFlush, tx.span, tx.id, uint64(commitEnd))
			}
			flushBegan := time.Now()
			werr := e.log.WaitDurable(commitEnd)
			e.eo.attrFlushWaitH.Observe(uint64(max(time.Since(flushBegan), 0)))
			e.eo.spans.End(flushSpan)
			if werr != nil {
				// The commit record is appended but its durability is
				// unknown: the flush may have failed after writing part of
				// the tail, or the engine may be stopping. Appending an
				// abort record here would be wrong — if the commit record
				// did reach disk, recovery replays the transaction as
				// committed, and the abort would contradict the recovered
				// state. Treat the transaction as committed in memory
				// (matching the worst case recovery can observe) and report
				// the ambiguity to the caller.
				tx.install(commitEnd)
				tx.done = true
				e.locks.ReleaseAll(tx.id)
				e.finishTxn(tx)
				e.ctr.txnsCommitted.Add(1)
				tx.commitObserved(began, commitEnd)
				if errors.Is(werr, wal.ErrClosed) {
					return fmt.Errorf("%w: %w", ErrCommitInDoubt, ErrStopped)
				}
				return fmt.Errorf("%w: %w", ErrCommitInDoubt, werr)
			}
		}
		tx.install(commitEnd)
	}
	tx.done = true
	e.locks.ReleaseAll(tx.id)
	e.finishTxn(tx)
	e.ctr.txnsCommitted.Add(1)
	tx.commitObserved(began, commitEnd)
	return nil
}

// commitObserved records the commit latency histogram sample and the
// commit trace event, closes the commit root span, and arms the slow-op
// watchdog with the finished commit. The span is ended before the
// watchdog check so a tripped dump contains the complete tree.
func (tx *Txn) commitObserved(began time.Time, commitEnd wal.LSN) {
	d := time.Since(began)
	if d < 0 {
		d = 0
	}
	e := tx.e
	e.eo.spans.End(tx.span)
	e.eo.commitH.Observe(uint64(d))
	e.eo.tracer.Record(obs.EvTxnCommit, tx.id, uint64(commitEnd), uint64(d))
	e.eo.watchdog.Check(obs.WatchCommit, tx.span, int64(d))
	tx.span = obs.SpanNone
}

// install overwrites the old record versions with the transaction's new
// ones (the shadow-copy install of Section 2.6), preserving pre-checkpoint
// segment versions when a copy-on-update checkpoint is in progress
// (Figure 3.2).
func (tx *Txn) install(commitEnd wal.LSN) {
	e := tx.e
	rb := e.store.Config().RecordBytes
	for rid, img := range tx.writes {
		seg, segIdx, off, err := e.store.Locate(rid)
		if err != nil {
			// Locate was validated during Write; this cannot happen.
			panic(fmt.Sprintf("engine: install: %v", err))
		}
		seg.Lock()
		if run := e.cur.Load(); run != nil {
			switch {
			case run.alg.CopyOnUpdate():
				if int64(segIdx) > run.curSeg.Load() && seg.TS <= run.tau && seg.Old == nil {
					// First post-checkpoint update of a not-yet-dumped segment:
					// save the old version so the checkpointer still sees the
					// transaction-consistent snapshot taken at τ(CH).
					couSpan := obs.SpanNone
					if tx.span != obs.SpanNone {
						couSpan = e.eo.spans.Begin(obs.SpanCOUCopy, tx.span, tx.id, uint64(segIdx))
					}
					couBegan := time.Now()
					old := &storage.OldCopy{ // alloc:allowed(copy-on-update old-version preservation: at most one copy per segment per checkpoint, Figure 3.2)
						Data:  append([]byte(nil), seg.Data...), // alloc:allowed(the preserved snapshot must outlive the transaction)
						Dirty: seg.Dirty,
						TS:    seg.TS,
					}
					seg.Old = old
					e.eo.attrCouCopyH.Observe(uint64(max(time.Since(couBegan), 0)))
					e.eo.spans.End(couSpan)
					e.ctr.couCopies.Add(1)
					e.ctr.couCopyBytes.Add(uint64(len(old.Data)))
					e.ctr.bumpCOULive(1)
				}
			case run.alg == Zigzag:
				if seg.ZigPending {
					// First update of an armed segment: flip — park the
					// begin-state image on the shadow slab and install into
					// the other one. At most one flip per segment per run,
					// and no allocation (the shadow slab is preallocated).
					zigSpan := obs.SpanNone
					if tx.span != obs.SpanNone {
						zigSpan = e.eo.spans.Begin(obs.SpanZigzagFlip, tx.span, tx.id, uint64(segIdx))
					}
					zigBegan := time.Now()
					copy(seg.Shadow, seg.Data)
					seg.Data, seg.Shadow = seg.Shadow, seg.Data
					seg.ZigPending = false
					e.eo.attrZigzagH.Observe(uint64(max(time.Since(zigBegan), 0)))
					e.eo.spans.End(zigSpan)
					e.ctr.zigzagFlips.Add(1)
					e.ctr.zigzagFlipBytes.Add(uint64(len(seg.Data)))
					e.eo.tracer.Record(obs.EvZigzagFlip, tx.id, uint64(segIdx), uint64(len(seg.Data)))
				}
			case run.alg == Hourglass:
				tx.hourglassPreserve(run, seg, segIdx)
			}
		}
		copy(seg.Data[off:off+rb], img)
		seg.TS = tx.ts
		seg.LastLSN = wal.MaxLSN(seg.LastLSN, commitEnd)
		seg.Dirty[0] = true
		seg.Dirty[1] = true
		seg.Unlock()
	}
}

// Abort abandons the transaction, logging an abort record if it had
// logged updates (the dead log weight the paper attributes to two-color
// restarts).
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	tx.abortInternal()
}

func (tx *Txn) abortInternal() {
	if tx.done {
		return
	}
	tx.done = true
	e := tx.e
	if tx.firstLSN != wal.NilLSN {
		// Best effort: a failed append means the engine is stopping, and
		// redo-only recovery ignores the transaction anyway (no commit
		// record).
		_, _, _ = e.log.Append(&wal.Record{Type: wal.TypeAbort, TxnID: tx.id}) //nolint:errcheckwal // see above

	}
	e.locks.ReleaseAll(tx.id)
	e.finishTxn(tx)
	e.ctr.txnsAborted.Add(1)
	e.eo.spans.End(tx.span)
	tx.span = obs.SpanNone
	e.eo.tracer.Record(obs.EvTxnAbort, tx.id, 0, 0)
}
