package engine

import (
	"sync"
	"testing"
	"time"

	"mmdb/internal/obs"
)

// TestCommitAttributionReconciles cross-checks the per-phase commit
// attribution histograms against the commit latency histogram on a
// synchronous-commit workload: every committed write transaction feeds
// the WAL-append and flush-wait phases exactly once, and the in-commit
// phase sums can never exceed the total commit time they nest inside
// (allowing a small clock-jitter tolerance; see DESIGN.md §19).
func TestCommitAttributionReconciles(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.SpanSampleEvery = 1
	e := mustOpen(t, p)
	defer e.Close()

	const n = 300
	val := encVal(1)
	for i := 0; i < n; i++ {
		if err := e.ExecWrite(uint64(i%e.NumRecords()), val); err != nil {
			t.Fatal(err)
		}
	}

	commitH := e.eo.commitH
	walH := e.eo.attrWALAppendH
	flushH := e.eo.attrFlushWaitH
	if commitH.Count() != n {
		t.Fatalf("commit histogram count = %d, want %d", commitH.Count(), n)
	}
	// Full coverage, independent of span sampling: one observation per
	// committed write transaction in each in-commit phase.
	if walH.Count() != n {
		t.Errorf("wal_append attribution count = %d, want %d", walH.Count(), n)
	}
	if flushH.Count() != n {
		t.Errorf("flush_wait attribution count = %d (SyncCommit), want %d", flushH.Count(), n)
	}

	// The in-commit phases nest inside Commit(), so their raw sums are
	// bounded by the commit sum. Phase boundaries are stamped by separate
	// clock reads, so allow 5% plus 50µs per commit of jitter.
	nested := walH.Sum() + flushH.Sum() + e.eo.attrCouCopyH.Sum() +
		e.eo.attrZigzagH.Sum() + e.eo.attrHgStallH.Sum()
	limit := commitH.Sum() + commitH.Sum()/20 + 50_000*n
	if nested > limit {
		t.Errorf("nested attribution sum %d ns exceeds commit sum %d ns (+tolerance %d)",
			nested, commitH.Sum(), limit)
	}
	if nested == 0 {
		t.Error("nested attribution sum is zero; phases observed nothing")
	}
}

// TestInterferenceAttributionMatchesCounters pins the coverage invariant
// for the checkpoint-interference phases: the attribution histograms
// observe exactly once per counted event — COU old-version copies,
// zigzag flips, hourglass window stalls — no matter how writers and the
// checkpointer interleave.
func TestInterferenceAttributionMatchesCounters(t *testing.T) {
	for _, alg := range []Algorithm{COUCopy, Zigzag, Hourglass} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			p := testParams(t, alg)
			p.SpanSampleEvery = 1
			e := mustOpen(t, p)
			defer e.Close()

			val := encVal(3)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := e.ExecWrite(uint64(i%e.NumRecords()), val); err != nil {
						t.Errorf("ExecWrite: %v", err)
						return
					}
				}
			}()
			for c := 0; c < 3; c++ {
				if _, err := e.Checkpoint(); err != nil {
					t.Fatalf("Checkpoint: %v", err)
				}
			}
			close(stop)
			wg.Wait()

			st := e.Stats()
			switch alg {
			case COUCopy, Hourglass:
				if got := e.eo.attrCouCopyH.Count(); got != st.COUCopies {
					t.Errorf("cou_copy attribution count = %d, COUCopies counter = %d", got, st.COUCopies)
				}
			case Zigzag:
				if got := e.eo.attrZigzagH.Count(); got != st.ZigzagFlips {
					t.Errorf("zigzag_flip attribution count = %d, ZigzagFlips counter = %d", got, st.ZigzagFlips)
				}
			}
			if alg == Hourglass {
				if got := e.eo.attrHgStallH.Count(); got != st.HourglassWaits {
					t.Errorf("hourglass_stall attribution count = %d, HourglassWaits counter = %d", got, st.HourglassWaits)
				}
			}
		})
	}
}

// TestSpanTreesThroughEngine drives a traced synchronous-commit workload
// plus a checkpoint and checks the span ring holds properly parented
// trees: commit roots with wal_append and group_commit_flush children,
// and a checkpoint root with ckpt_segment children.
func TestSpanTreesThroughEngine(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.SpanSampleEvery = 1
	e := mustOpen(t, p)
	defer e.Close()

	val := encVal(5)
	for i := 0; i < 32; i++ {
		if err := e.ExecWrite(uint64(i%e.NumRecords()), val); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	spans := e.SpanEvents()
	byID := make(map[obs.SpanID]obs.Span, len(spans))
	for _, s := range spans {
		byID[s.ID()] = s
	}
	var commitRoots, walChildren, flushChildren, ckptRoots, segChildren int
	for _, s := range spans {
		switch s.Kind {
		case obs.SpanCommit:
			if s.Parent != obs.SpanNone {
				t.Errorf("commit span %d has parent %d, want root", s.Seq, s.Parent)
			}
			commitRoots++
		case obs.SpanWALAppend, obs.SpanGroupCommitFlush:
			parent, ok := byID[s.Parent]
			if !ok || parent.Kind != obs.SpanCommit {
				t.Errorf("%v span %d: parent %d is not a commit root in the ring", s.Kind, s.Seq, s.Parent)
				continue
			}
			if s.Begin < parent.Begin || s.Begin+s.Dur > parent.Begin+parent.Dur+int64(time.Millisecond) {
				t.Errorf("%v span %d [%d,+%d] does not nest in commit [%d,+%d]",
					s.Kind, s.Seq, s.Begin, s.Dur, parent.Begin, parent.Dur)
			}
			if s.Kind == obs.SpanWALAppend {
				walChildren++
			} else {
				flushChildren++
			}
		case obs.SpanCheckpoint:
			ckptRoots++
		case obs.SpanCkptSegment:
			if parent, ok := byID[s.Parent]; !ok || parent.Kind != obs.SpanCheckpoint {
				t.Errorf("ckpt_segment span %d: parent %d is not a checkpoint root", s.Seq, s.Parent)
			}
			segChildren++
		}
	}
	if commitRoots == 0 || walChildren == 0 || flushChildren == 0 {
		t.Errorf("commit trees incomplete: %d roots, %d wal_append, %d group_commit_flush",
			commitRoots, walChildren, flushChildren)
	}
	if ckptRoots != 1 || segChildren == 0 {
		t.Errorf("checkpoint tree incomplete: %d roots, %d segment children", ckptRoots, segChildren)
	}
}

// TestSlowOpWatchdogThroughEngine arms a zero-distance commit threshold
// (1ns — every commit is "slow") and checks the watchdog captures span
// trees for the offending commits, then verifies a disarmed watchdog
// stays silent.
func TestSlowOpWatchdogThroughEngine(t *testing.T) {
	p := testParams(t, FuzzyCopy)
	p.SpanSampleEvery = 1
	p.SlowOpCommitThreshold = time.Nanosecond
	e := mustOpen(t, p)
	defer e.Close()

	val := encVal(8)
	for i := 0; i < 16; i++ {
		if err := e.ExecWrite(uint64(i), val); err != nil {
			t.Fatal(err)
		}
	}
	if e.Watchdog().Trips() == 0 {
		t.Fatal("watchdog never tripped with a 1ns threshold")
	}
	ops := e.SlowOps()
	if len(ops) == 0 {
		t.Fatal("no slow ops captured")
	}
	for _, op := range ops {
		if op.Kind != obs.WatchCommit {
			t.Errorf("slow op kind = %v, want commit", op.Kind)
		}
		if len(op.Spans) == 0 {
			t.Errorf("slow op (root %d) captured no spans", op.Root)
		}
		for _, s := range op.Spans {
			if s.ID() != op.Root && s.Parent == obs.SpanNone {
				t.Errorf("slow-op dump contains unrelated root span %d (%v)", s.Seq, s.Kind)
			}
		}
	}

	// Disarmed: no further trips.
	p2 := testParams(t, FuzzyCopy)
	p2.Dir = t.TempDir()
	e2 := mustOpen(t, p2)
	defer e2.Close()
	for i := 0; i < 8; i++ {
		if err := e2.ExecWrite(uint64(i), val); err != nil {
			t.Fatal(err)
		}
	}
	if n := e2.Watchdog().Trips(); n != 0 {
		t.Errorf("disarmed watchdog tripped %d times", n)
	}
}
