package engine

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mmdb/internal/obs"
)

// TestLastIntervalZeroUntilSecondCheckpoint pins the documented
// LastInterval semantics: the paper's checkpoint interval I is a
// begin-to-begin gap, so it stays zero through the entire first
// checkpoint and becomes non-zero only once a second checkpoint has
// begun.
func TestLastIntervalZeroUntilSecondCheckpoint(t *testing.T) {
	e := mustOpen(t, testParams(t, FuzzyCopy))
	defer e.Close()

	if err := e.Exec(func(tx *Txn) error { return tx.Write(1, encVal(7)) }); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if st := e.Stats(); st.LastInterval != 0 {
		t.Fatalf("LastInterval = %v before any checkpoint, want 0", st.LastInterval)
	}

	if _, err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint 1: %v", err)
	}
	st := e.Stats()
	if st.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1", st.Checkpoints)
	}
	if st.LastCheckpointTime <= 0 || st.TotalCheckpointTime <= 0 {
		t.Fatalf("checkpoint times not recorded: last %v total %v", st.LastCheckpointTime, st.TotalCheckpointTime)
	}
	if st.LastInterval != 0 {
		t.Fatalf("LastInterval = %v after the first checkpoint, want 0 until a second begins", st.LastInterval)
	}

	time.Sleep(2 * time.Millisecond) // make the begin-to-begin gap visible
	if _, err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	st = e.Stats()
	if st.LastInterval <= 0 {
		t.Fatalf("LastInterval = %v after the second checkpoint, want > 0", st.LastInterval)
	}
	if st.LastInterval < 2*time.Millisecond {
		t.Fatalf("LastInterval = %v, want at least the 2ms gap between begins", st.LastInterval)
	}
}

// TestStatsConcurrentAllAlgorithms hammers Stats, the metrics Gather,
// and the tracer dump while writers and checkpoints run, across all six
// algorithms. Its value is under -race (the race gate runs it): every
// snapshot path must be safe against the hot-path atomics.
func TestStatsConcurrentAllAlgorithms(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			e := mustOpen(t, testParams(t, alg))
			defer e.Close()

			const writerN, txnsPer, ckpts = 3, 40, 5
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writerN; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < txnsPer; i++ {
						rid := uint64((w*txnsPer + i) % e.NumRecords())
						if err := e.Exec(func(tx *Txn) error {
							return tx.Write(rid, encVal(uint64(i)))
						}); err != nil {
							t.Errorf("writer %d: %v", w, err)
							return
						}
					}
				}(w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < ckpts; i++ {
					if _, err := e.Checkpoint(); err != nil {
						t.Errorf("Checkpoint: %v", err)
						return
					}
				}
			}()

			var readers sync.WaitGroup
			for r := 0; r < 3; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						st := e.Stats()
						if st.TxnsCommitted > st.TxnsBegun {
							t.Errorf("committed %d > begun %d", st.TxnsCommitted, st.TxnsBegun)
							return
						}
						_ = e.MetricsRegistry().Gather()
						_ = e.TraceEvents()
					}
				}()
			}

			wg.Wait()
			close(stop)
			readers.Wait()

			st := e.Stats()
			if st.Checkpoints != ckpts {
				t.Errorf("Checkpoints = %d, want %d", st.Checkpoints, ckpts)
			}
			if want := uint64(writerN * txnsPer); st.TxnsCommitted < want {
				t.Errorf("TxnsCommitted = %d, want >= %d", st.TxnsCommitted, want)
			}
			if h := e.eo.commitH; h.Count() < uint64(writerN*txnsPer) {
				t.Errorf("commit histogram count = %d, want >= %d", h.Count(), writerN*txnsPer)
			}
		})
	}
}

// TestMetricNamingConvention guards the exposition namespace: every
// registered metric is mmdb_<subsystem>_<name>[_unit], counters end in
// _total, and histograms carry an explicit unit suffix.
func TestMetricNamingConvention(t *testing.T) {
	e := mustOpen(t, testParams(t, COUCopy))
	defer e.Close()

	nameRe := regexp.MustCompile(`^mmdb(_[a-z0-9]+){2,}$`)
	subsystems := map[string]bool{
		"engine": true, "wal": true, "backup": true,
		"lockmgr": true, "recovery": true, "kvstore": true,
		"ckpt": true,
		// commit_attr_* decompose commit latency per phase; runtime_* are
		// the Go runtime harvester's gauges.
		"commit": true, "runtime": true,
	}
	// Histograms carry either a physical unit (_seconds, _bytes) or a
	// count unit naming the thing counted (_segments, _records).
	histUnits := map[string]bool{
		"seconds": true, "bytes": true,
		"segments": true, "records": true,
	}

	pts := e.MetricsRegistry().Gather()
	if len(pts) == 0 {
		t.Fatal("registry gathered no metrics")
	}
	for _, pt := range pts {
		if !nameRe.MatchString(pt.Name) {
			t.Errorf("metric %q does not match mmdb_<subsystem>_<name>[_unit]", pt.Name)
			continue
		}
		parts := strings.Split(pt.Name, "_")
		if !subsystems[parts[1]] {
			t.Errorf("metric %q: unknown subsystem %q", pt.Name, parts[1])
		}
		switch pt.Kind {
		case obs.KindCounter:
			if parts[len(parts)-1] != "total" {
				t.Errorf("counter %q must end in _total", pt.Name)
			}
		case obs.KindHistogram:
			if !histUnits[parts[len(parts)-1]] {
				t.Errorf("histogram %q must end in a unit suffix (_seconds, _bytes, _segments, or _records)", pt.Name)
			}
		}
	}
}
