package engine

import "context"

// sweepFuzzy implements the fuzzy checkpoints of Section 3.1.
//
// FUZZYCOPY: each (dirty) segment is copied into a main-memory I/O buffer
// under a brief latch; the buffered copy is flushed to the backup disks
// only once the log is durable past the segment's last update (the LSN
// condition), which preserves the write-ahead rule with no transaction
// synchronization at all.
//
// FASTFUZZY: with a stable log tail every logged update is already
// durable, so segments are flushed directly from the database with neither
// the buffer copy nor the LSN check (Section 4).
//
// The resulting backup is fuzzy: a transaction committing during the sweep
// may have some of its updates in flushed segments and others not. The
// begin-checkpoint marker's active-transaction list tells recovery how far
// back the redo scan must start to repair this.
//
// lockorder:held Engine.ckptMu
func (e *Engine) sweepFuzzy(ctx context.Context, run *ckptRun) (flushed, skipped int, bytes int64, err error) {
	n := e.store.NumSegments()
	direct := e.params.Algorithm == FastFuzzy
	var buf []byte
	if !direct {
		buf = make([]byte, e.store.Config().SegmentBytes)
	}
	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			return flushed, skipped, bytes, err
		}
		seg := e.store.Seg(i)
		if direct {
			seg.Lock()
			if !e.params.Full && !seg.Dirty[run.target] {
				seg.Unlock()
				skipped++
				continue
			}
			seg.Dirty[run.target] = false
			// Flush straight from the live segment while latched: the
			// stable tail guarantees the write-ahead rule, and the latch
			// only excludes concurrent installs for the duration of a
			// buffered file write.
			err = e.flushSegment(run, i, seg.Data) // walorder:stable-tail FASTFUZZY runs under a stable log tail (Section 4): every logged update is already durable
			seg.Unlock()
			if err != nil {
				return flushed, skipped, bytes, err
			}
		} else {
			seg.Lock()
			if !e.params.Full && !seg.Dirty[run.target] {
				seg.Unlock()
				skipped++
				continue
			}
			lsn := seg.Snapshot(buf)
			seg.Dirty[run.target] = false
			seg.Unlock()
			e.ctr.checkpointerCopy.Add(1)
			if werr := e.waitLSN(lsn); werr != nil {
				return flushed, skipped, bytes, werr
			}
			if err = e.flushSegment(run, i, buf); err != nil {
				return flushed, skipped, bytes, err
			}
		}
		flushed++
		bytes += int64(e.store.Config().SegmentBytes)
		if err = e.segmentDone(run, 0, i); err != nil {
			return flushed, skipped, bytes, err
		}
	}
	return flushed, skipped, bytes, nil
}
